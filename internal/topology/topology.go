// Package topology models the hierarchical structure of the cluster systems
// used in the paper's evaluation (Section IV): machines composed of SMP
// nodes, nodes composed of chips, chips composed of cores. It wires clock
// oscillators to their physical domains (one oscillator per chip for
// hardware counters, per node for the system clock, one global oscillator
// for a Blue Gene-style network clock) and provides the process-pinning
// setups of Table I.
package topology

import (
	"fmt"

	"tsync/internal/clock"
	"tsync/internal/xrand"
)

// Machine describes a cluster's shape.
type Machine struct {
	Family       string // "xeon", "ppc", "opteron", "itanium"
	Name         string
	Nodes        int
	ChipsPerNode int
	CoresPerChip int
}

// Xeon returns the RWTH Aachen cluster: 62 nodes, 2 quad-core Intel Xeon
// chips at 3.0 GHz per node, InfiniBand.
func Xeon() Machine {
	return Machine{Family: "xeon", Name: "Xeon cluster", Nodes: 62, ChipsPerNode: 2, CoresPerChip: 4}
}

// PowerPC returns MareNostrum: 2560 JS21 blades with 2 dual-core PowerPC
// 970MP chips at 2.3 GHz, Myrinet.
func PowerPC() Machine {
	return Machine{Family: "ppc", Name: "PowerPC cluster", Nodes: 2560, ChipsPerNode: 2, CoresPerChip: 2}
}

// Opteron returns Jaguar's XT3 partition: 3744 nodes with one dual-core
// AMD Opteron at 2.6 GHz, SeaStar 3-D torus.
func Opteron() Machine {
	return Machine{Family: "opteron", Name: "Opteron cluster", Nodes: 3744, ChipsPerNode: 1, CoresPerChip: 2}
}

// Itanium returns the Intel Itanium SMP node used for the OpenMP
// experiments: a single node with 4 chips of 4 cores.
func Itanium() Machine {
	return Machine{Family: "itanium", Name: "Itanium SMP node", Nodes: 1, ChipsPerNode: 4, CoresPerChip: 4}
}

// ParseMachine maps a command-line spelling onto a machine preset.
func ParseMachine(s string) (Machine, error) {
	switch s {
	case "xeon":
		return Xeon(), nil
	case "ppc", "powerpc":
		return PowerPC(), nil
	case "opteron":
		return Opteron(), nil
	case "itanium":
		return Itanium(), nil
	}
	return Machine{}, fmt.Errorf("topology: unknown machine %q", s)
}

// TotalCores returns the machine's core count.
func (m Machine) TotalCores() int { return m.Nodes * m.ChipsPerNode * m.CoresPerChip }

// Validate reports whether the machine shape is usable.
func (m Machine) Validate() error {
	if m.Nodes <= 0 || m.ChipsPerNode <= 0 || m.CoresPerChip <= 0 {
		return fmt.Errorf("topology: machine %q has empty dimensions %d/%d/%d",
			m.Name, m.Nodes, m.ChipsPerNode, m.CoresPerChip)
	}
	return nil
}

// CoreID names one core by its position in the hierarchy.
type CoreID struct {
	Node, Chip, Core int
}

// String formats a core as node:chip:core, matching trace-visualizer
// thread labels such as "1:2" in Fig. 3.
func (c CoreID) String() string { return fmt.Sprintf("%d:%d:%d", c.Node, c.Chip, c.Core) }

// Contains reports whether the core exists on the machine.
func (m Machine) Contains(c CoreID) bool {
	return c.Node >= 0 && c.Node < m.Nodes &&
		c.Chip >= 0 && c.Chip < m.ChipsPerNode &&
		c.Core >= 0 && c.Core < m.CoresPerChip
}

// Relation classifies the proximity of two cores; it selects both the
// message latency (Table II) and the clock-sharing domain.
type Relation int

const (
	// SameCore means the two IDs name the same core.
	SameCore Relation = iota
	// SameChip means distinct cores on one chip (inter-core in Table I).
	SameChip
	// SameNode means distinct chips on one node (inter-chip).
	SameNode
	// CrossNode means distinct nodes (inter-node).
	CrossNode
)

// String names the relation like the paper's measurement setups.
func (r Relation) String() string {
	switch r {
	case SameCore:
		return "same core"
	case SameChip:
		return "inter core"
	case SameNode:
		return "inter chip"
	case CrossNode:
		return "inter node"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Relate classifies two cores.
func Relate(a, b CoreID) Relation {
	switch {
	case a == b:
		return SameCore
	case a.Node != b.Node:
		return CrossNode
	case a.Chip != b.Chip:
		return SameNode
	default:
		return SameChip
	}
}

// Pinning maps process (or thread) ranks to cores.
type Pinning []CoreID

// Validate checks that all pinned cores exist and no core is double-booked.
func (p Pinning) Validate(m Machine) error {
	seen := make(map[CoreID]int, len(p))
	for rank, c := range p {
		if !m.Contains(c) {
			return fmt.Errorf("topology: rank %d pinned to nonexistent core %v", rank, c)
		}
		if prev, dup := seen[c]; dup {
			return fmt.Errorf("topology: ranks %d and %d both pinned to core %v", prev, rank, c)
		}
		seen[c] = rank
	}
	return nil
}

// InterNode pins n processes to n distinct nodes, one process per node
// (Table I, "Inter node": 4 nodes, 1 process per node).
func InterNode(m Machine, n int) (Pinning, error) {
	if n > m.Nodes {
		return nil, fmt.Errorf("topology: inter-node pinning needs %d nodes, machine has %d", n, m.Nodes)
	}
	p := make(Pinning, n)
	for i := range p {
		p[i] = CoreID{Node: i}
	}
	return p, nil
}

// InterChip pins n processes to n distinct chips of node 0, one process per
// chip (Table I, "Inter chip": 1 node, 2 chips, 1 process per chip).
func InterChip(m Machine, n int) (Pinning, error) {
	if n > m.ChipsPerNode {
		return nil, fmt.Errorf("topology: inter-chip pinning needs %d chips, node has %d", n, m.ChipsPerNode)
	}
	p := make(Pinning, n)
	for i := range p {
		p[i] = CoreID{Chip: i}
	}
	return p, nil
}

// InterCore pins n processes to n cores of chip 0 on node 0 (Table I,
// "Inter core": 1 node, 1 chip, 4 processes per chip).
func InterCore(m Machine, n int) (Pinning, error) {
	if n > m.CoresPerChip {
		return nil, fmt.Errorf("topology: inter-core pinning needs %d cores, chip has %d", n, m.CoresPerChip)
	}
	p := make(Pinning, n)
	for i := range p {
		p[i] = CoreID{Core: i}
	}
	return p, nil
}

// Scheduled emulates the paper's FIG7 setup, where no explicit pinning was
// used and the scheduler placed 32 processes itself: ranks fill nodes in
// blocks, but the node order and the core order inside a node are shuffled,
// as batch schedulers do.
func Scheduled(m Machine, n int, rng *xrand.Source) (Pinning, error) {
	if n > m.TotalCores() {
		return nil, fmt.Errorf("topology: %d processes exceed %d cores", n, m.TotalCores())
	}
	coresPerNode := m.ChipsPerNode * m.CoresPerChip
	nodesNeeded := (n + coresPerNode - 1) / coresPerNode
	nodeOrder := rng.Perm(m.Nodes)[:nodesNeeded]
	p := make(Pinning, 0, n)
	for _, node := range nodeOrder {
		slots := rng.Perm(coresPerNode)
		for _, s := range slots {
			if len(p) == n {
				return p, nil
			}
			p = append(p, CoreID{Node: node, Chip: s / m.CoresPerChip, Core: s % m.CoresPerChip})
		}
	}
	return p, nil
}

// SMPThreads pins n OpenMP threads onto the cores of node 0 in chip-major
// order (thread 0 on chip 0 core 0, etc.), the layout of the Itanium
// experiments in Figs. 3 and 8.
func SMPThreads(m Machine, n int) (Pinning, error) {
	if n > m.ChipsPerNode*m.CoresPerChip {
		return nil, fmt.Errorf("topology: %d threads exceed node capacity %d", n, m.ChipsPerNode*m.CoresPerChip)
	}
	p := make(Pinning, n)
	for i := range p {
		p[i] = CoreID{Chip: i / m.CoresPerChip, Core: i % m.CoresPerChip}
	}
	return p, nil
}

// ScatteredThreads places n threads on node 0 round-robin across chips
// (thread i on chip i mod chips), the placement an OS scheduler tends to
// produce when threads cannot be pinned — the situation of the paper's
// Itanium OpenMP experiments, where threads on different chips read
// different, unsynchronized timestamp counters.
func ScatteredThreads(m Machine, n int) (Pinning, error) {
	if n > m.ChipsPerNode*m.CoresPerChip {
		return nil, fmt.Errorf("topology: %d threads exceed node capacity %d", n, m.ChipsPerNode*m.CoresPerChip)
	}
	p := make(Pinning, n)
	for i := range p {
		p[i] = CoreID{Chip: i % m.ChipsPerNode, Core: i / m.ChipsPerNode}
	}
	return p, nil
}

// Cluster instantiates the clock hardware of a machine for one timer
// technology: oscillators per clock domain and one reader per core, all
// deterministic in the seed.
type Cluster struct {
	Machine Machine
	Preset  clock.Preset
	rng     *xrand.Source
	oscs    map[CoreID]*clock.Oscillator // keyed by domain representative
	offsets map[CoreID]float64
	clocks  map[CoreID]*clock.Clock
	global  *clock.Oscillator
	nodeOff map[int]float64
}

// NewCluster builds the clock fabric of machine m with the given timer
// preset and seed.
func NewCluster(m Machine, preset clock.Preset, seed uint64) (*Cluster, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{
		Machine: m,
		Preset:  preset,
		rng:     xrand.NewSource(seed),
		oscs:    make(map[CoreID]*clock.Oscillator),
		offsets: make(map[CoreID]float64),
		clocks:  make(map[CoreID]*clock.Clock),
		nodeOff: make(map[int]float64),
	}, nil
}

// domain returns the representative core of the oscillator domain that
// core c belongs to.
func (cl *Cluster) domain(c CoreID) CoreID {
	if cl.Preset.Kind == clock.GlobalHW {
		return CoreID{}
	}
	if cl.Preset.PerChip {
		return CoreID{Node: c.Node, Chip: c.Chip}
	}
	return CoreID{Node: c.Node}
}

// nodeOffset lazily draws the boot-time offset of a node's clock domain.
func (cl *Cluster) nodeOffset(node int) float64 {
	if off, ok := cl.nodeOff[node]; ok {
		return off
	}
	off := 0.0
	if cl.Preset.NodeOffsetMax > 0 {
		off = cl.rng.Sub(fmt.Sprintf("nodeoff/%d", node)).Uniform(0, cl.Preset.NodeOffsetMax)
	}
	cl.nodeOff[node] = off
	return off
}

// Oscillator returns (building lazily) the oscillator serving core c.
func (cl *Cluster) Oscillator(c CoreID) (*clock.Oscillator, error) {
	if !cl.Machine.Contains(c) {
		return nil, fmt.Errorf("topology: core %v not on machine %q", c, cl.Machine.Name)
	}
	if cl.Preset.Kind == clock.GlobalHW {
		if cl.global == nil {
			cl.global = cl.Preset.NewOscillator(cl.rng.Sub("global"))
		}
		return cl.global, nil
	}
	d := cl.domain(c)
	if osc, ok := cl.oscs[d]; ok {
		return osc, nil
	}
	osc := cl.Preset.NewOscillator(cl.rng.Sub("osc/" + d.String()))
	cl.oscs[d] = osc
	off := cl.nodeOffset(d.Node)
	if cl.Preset.PerChip && cl.Preset.ChipOffsetMax > 0 {
		off += cl.rng.Sub("chipoff/"+d.String()).Uniform(-cl.Preset.ChipOffsetMax, cl.Preset.ChipOffsetMax)
	}
	cl.offsets[d] = off
	return osc, nil
}

// NewReader builds a fresh, uncached clock reader for core c, sharing the
// core's oscillator and offset but with its own noise stream and monotonic
// state. Use it for postmortem sampling of a cluster whose cached per-core
// readers have already advanced past the times of interest.
func (cl *Cluster) NewReader(c CoreID, label string) (*clock.Clock, error) {
	osc, err := cl.Oscillator(c)
	if err != nil {
		return nil, err
	}
	offset := cl.offsets[cl.domain(c)]
	name := cl.Preset.Kind.String() + "@" + c.String() + "/" + label
	return cl.Preset.NewClock(name, offset, osc, cl.rng.Sub("reader/"+label+"/"+c.String())), nil
}

// Clock returns (building lazily) the clock reader of core c. Each core
// owns one reader; repeated calls return the same instance, preserving the
// monotonicity state.
func (cl *Cluster) Clock(c CoreID) (*clock.Clock, error) {
	if ck, ok := cl.clocks[c]; ok {
		return ck, nil
	}
	osc, err := cl.Oscillator(c)
	if err != nil {
		return nil, err
	}
	offset := cl.offsets[cl.domain(c)]
	ck := cl.Preset.NewClock(cl.Preset.Kind.String()+"@"+c.String(), offset, osc, cl.rng.Sub("read/"+c.String()))
	cl.clocks[c] = ck
	return ck, nil
}
