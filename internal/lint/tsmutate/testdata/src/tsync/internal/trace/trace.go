// Package trace is a fixture stub of the repo's internal/trace: just
// enough surface for the tsmutate analyzer to recognise Event.Time.
package trace

// Event mirrors the real event record.
type Event struct {
	Time float64 // local timestamp (the regulated field)
	True float64 // oracle time (unregulated)
	Kind int
}

// SetTime is the sanctioned mutation door; package trace itself is on the
// sanctioned list, so this assignment is not flagged.
func (e *Event) SetTime(t float64) { e.Time = t }
