// Package des is a deterministic discrete-event simulation engine with a
// coroutine programming model. Simulated processes are ordinary Go
// functions that block on simulator calls (Sleep, Park); the engine runs
// exactly one goroutine at a time with strict channel handoff, so Go's
// scheduler cannot introduce nondeterminism while process code keeps a
// natural blocking style. Simultaneous events fire in scheduling order
// (FIFO by sequence number).
//
// The engine carries *true global time*. Higher layers (internal/mpi,
// internal/omp) read simulated processor clocks against it; the divergence
// between the two is the paper's entire subject.
package des

import (
	"container/heap"
	"fmt"
	"sort"
)

// event is one scheduled occurrence.
type event struct {
	at   float64
	seq  uint64
	fire func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Proc is one simulated process (an MPI rank or an OpenMP thread).
type Proc struct {
	ID     int
	Label  string
	eng    *Engine
	resume chan struct{}
	done   bool
	// parked is true while the process is blocked in Park (waiting for an
	// external wake rather than its own timer)
	parked    bool
	parkCause string
}

// Engine is the simulation scheduler. Create with New, add processes with
// Spawn, then call Run.
type Engine struct {
	now       float64
	events    eventHeap
	seq       uint64
	procs     []*Proc
	yield     chan struct{}
	running   bool
	processed uint64
	failure   any // panic value propagated from a process
}

// New creates an empty engine at time 0.
func New() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current true simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events fired so far — simulator
// observability for benchmarks and sanity checks.
func (e *Engine) Processed() uint64 { return e.processed }

// Spawn registers a process whose body fn starts at simulation time
// startAt. It must be called before Run.
func (e *Engine) Spawn(label string, startAt float64, fn func(*Proc)) *Proc {
	if e.running {
		panic("des: Spawn during Run")
	}
	p := &Proc{ID: len(e.procs), Label: label, eng: e, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				e.failure = fmt.Sprintf("des: process %d (%s) panicked: %v", p.ID, p.Label, r) //tsync:locked — strict handoff: the e.yield send below happens-before the scheduler's read in step
			}
			p.done = true //tsync:locked — same handoff edge; exactly one goroutine runs at a time by construction
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.Schedule(startAt, func() { e.step(p) })
	return p
}

// Schedule posts fire to run at absolute time at. It may be called from
// scheduler context (inside a fired event) or from process context. Events
// scheduled for the past fire at the current time (never before it).
func (e *Engine) Schedule(at float64, fire func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fire: fire})
}

// ScheduleIn posts fire to run dt seconds from now.
func (e *Engine) ScheduleIn(dt float64, fire func()) { e.Schedule(e.now+dt, fire) }

// step transfers control to process p until it blocks again or finishes.
// It must only be called from scheduler context.
func (e *Engine) step(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-e.yield
	if e.failure != nil {
		panic(e.failure)
	}
}

// Wake unparks a process blocked in Park, scheduling it to continue at the
// current simulation time. Waking a process that is not parked is a bug in
// the synchronization layer above and panics. Safe to call from scheduler
// or process context; the actual control transfer happens in scheduler
// context.
func (e *Engine) Wake(p *Proc) {
	if p.done {
		panic(fmt.Sprintf("des: Wake of finished process %d (%s)", p.ID, p.Label))
	}
	if !p.parked {
		panic(fmt.Sprintf("des: Wake of non-parked process %d (%s)", p.ID, p.Label))
	}
	p.parked = false
	e.Schedule(e.now, func() { e.step(p) })
}

// Run processes events until none remain. It returns an error if processes
// are still blocked when the event queue drains (deadlock) and re-panics if
// a process panicked.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("des: Run reentered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			panic("des: time went backwards") // heap invariant violated
		}
		e.now = ev.at
		e.processed++
		ev.fire()
	}
	var stuck []string
	for _, p := range e.procs {
		if !p.done {
			stuck = append(stuck, fmt.Sprintf("%d(%s): %s", p.ID, p.Label, p.parkCause))
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return fmt.Errorf("des: deadlock, %d processes blocked: %v", len(stuck), stuck)
	}
	return nil
}

// ---- process-context calls (only valid inside a process body) ----

// Now returns the current simulation time.
func (p *Proc) Now() float64 { return p.eng.now }

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// yieldToScheduler hands control back and waits to be resumed.
func (p *Proc) yieldToScheduler() {
	p.eng.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process's local activity by dt simulated seconds
// (modeling computation or overhead). Negative dt is treated as zero.
func (p *Proc) Sleep(dt float64) {
	if dt < 0 {
		dt = 0
	}
	e := p.eng
	e.Schedule(e.now+dt, func() { e.step(p) })
	p.yieldToScheduler()
}

// Park blocks the process until some other party calls Engine.Wake on it.
// cause is reported in deadlock diagnostics. The caller must have
// registered itself somewhere a waker can find it *before* calling Park.
func (p *Proc) Park(cause string) {
	p.parked = true
	p.parkCause = cause
	p.yieldToScheduler()
	p.parkCause = ""
}
