package clc

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"tsync/internal/clock"
	"tsync/internal/mpi"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// violatedTrace builds a two-rank trace where the receiver's clock is
// 50 µs behind, so every receive is timestamped before its send.
func violatedTrace(nMsgs int) *trace.Trace {
	t := &trace.Trace{}
	t.MinLatency = [4]float64{0, 0.46e-6, 0.84e-6, 4.2e-6}
	var p0, p1 trace.Proc
	p0.Rank, p1.Rank = 0, 1
	p1.Core = topology.CoreID{Node: 1}
	const skew = -50e-6
	tt := 0.0
	for i := 0; i < nMsgs; i++ {
		tt += 100e-6
		p0.Events = append(p0.Events, trace.Event{
			Kind: trace.Send, Time: tt, True: tt, Partner: 1, Tag: int32(i), Region: -1, Root: -1})
		arr := tt + 5e-6
		p1.Events = append(p1.Events, trace.Event{
			Kind: trace.Recv, Time: arr + skew, True: arr, Partner: 0, Tag: int32(i), Region: -1, Root: -1})
		// a local event after each receive, to observe amortization
		p1.Events = append(p1.Events, trace.Event{
			Kind: trace.Enter, Time: arr + skew + 20e-6, True: arr + 20e-6, Region: -1, Partner: -1, Root: -1})
	}
	t.RegionID("work")
	for i := range p1.Events {
		if p1.Events[i].Kind == trace.Enter {
			p1.Events[i].Region = 0
		}
	}
	t.Procs = []trace.Proc{p0, p1}
	return t
}

func checkInvariants(t *testing.T, orig, corr *trace.Trace, opt Options) {
	t.Helper()
	// 1. no violations remain
	v, err := Violations(corr, opt.Gamma)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("%d violations remain after correction", v)
	}
	// 2. timestamps never move backward
	for i := range orig.Procs {
		for j := range orig.Procs[i].Events {
			if corr.Procs[i].Events[j].Time < orig.Procs[i].Events[j].Time-1e-15 {
				t.Fatalf("event %d/%d moved backward: %v -> %v", i, j,
					orig.Procs[i].Events[j].Time, corr.Procs[i].Events[j].Time)
			}
		}
	}
	// 3. local order strictly preserved
	for i := range corr.Procs {
		evs := corr.Procs[i].Events
		for j := 1; j < len(evs); j++ {
			if evs[j].Time <= evs[j-1].Time {
				t.Fatalf("proc %d: local order broken at %d: %v then %v", i, j-1, evs[j-1].Time, evs[j].Time)
			}
		}
	}
	// 4. True times untouched
	for i := range corr.Procs {
		for j := range corr.Procs[i].Events {
			if corr.Procs[i].Events[j].True != orig.Procs[i].Events[j].True {
				t.Fatalf("oracle time rewritten at %d/%d", i, j)
			}
		}
	}
}

func TestCorrectRemovesViolations(t *testing.T) {
	orig := violatedTrace(20)
	opt := DefaultOptions()
	before, err := Violations(orig, opt.Gamma)
	if err != nil {
		t.Fatal(err)
	}
	if before != 20 {
		t.Fatalf("synthetic trace has %d violations, want 20", before)
	}
	corr, rep, err := Correct(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationsBefore != 20 || rep.ViolationsAfter != 0 {
		t.Fatalf("report %+v", rep)
	}
	checkInvariants(t, orig, corr, opt)
	if rep.EventsMoved == 0 || rep.MaxAdvance <= 0 {
		t.Fatalf("nothing moved: %+v", rep)
	}
}

func TestCleanTraceUntouched(t *testing.T) {
	orig := violatedTrace(5)
	// remove the skew so the trace is clean
	for i := range orig.Procs[1].Events {
		orig.Procs[1].Events[i].Time += 50e-6
	}
	opt := DefaultOptions()
	corr, rep, err := Correct(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationsBefore != 0 || rep.EventsMoved != 0 {
		t.Fatalf("clean trace modified: %+v", rep)
	}
	if !reflect.DeepEqual(orig, corr) {
		t.Fatalf("clean trace changed")
	}
}

func TestSequentialAndParallelAgree(t *testing.T) {
	orig := violatedTrace(50)
	opt := DefaultOptions()
	seq, repS, err := Correct(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, repP, err := CorrectParallel(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sequential and parallel corrections differ")
	}
	if repS != repP {
		t.Fatalf("reports differ: %+v vs %+v", repS, repP)
	}
}

func TestForwardAmortizationPreservesIntervals(t *testing.T) {
	orig := violatedTrace(1)
	opt := DefaultOptions()
	opt.BackwardWindow = 0 // isolate forward behaviour
	corr, _, err := Correct(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	// the local event 20 µs after the corrected receive must still be
	// ~20 µs after it (shrunk by at most ForwardDecay fraction)
	evs := corr.Procs[1].Events
	origIv := orig.Procs[1].Events[1].Time - orig.Procs[1].Events[0].Time
	corrIv := evs[1].Time - evs[0].Time
	if corrIv < origIv*(1-10*opt.ForwardDecay) {
		t.Fatalf("interval collapsed: %v -> %v", origIv, corrIv)
	}
	if corrIv > origIv+1e-12 {
		t.Fatalf("interval grew unexpectedly: %v -> %v", origIv, corrIv)
	}
}

func TestForwardDecayReturnsToOriginalClock(t *testing.T) {
	// after a jump, widely spaced later events should converge back to
	// their original timestamps at the decay rate
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0, 0, 4.2e-6}
	send := trace.Event{Kind: trace.Send, Time: 1.0, True: 1.0, Partner: 1, Region: -1, Root: -1}
	p0 := trace.Proc{Rank: 0, Events: []trace.Event{send}}
	p1 := trace.Proc{Rank: 1, Core: topology.CoreID{Node: 1}}
	p1.Events = append(p1.Events, trace.Event{
		Kind: trace.Recv, Time: 1.0 - 100e-6, True: 1.0 + 5e-6, Partner: 0, Region: -1, Root: -1})
	for i := 1; i <= 10; i++ {
		p1.Events = append(p1.Events, trace.Event{
			Kind: trace.Enter, Time: 1.0 - 100e-6 + float64(i), True: 1.0 + 5e-6 + float64(i), Region: 0, Partner: -1, Root: -1})
	}
	tr.RegionID("w")
	tr.Procs = []trace.Proc{p0, p1}
	opt := DefaultOptions()
	corr, _, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	last := corr.Procs[1].Events[len(corr.Procs[1].Events)-1]
	lastOrig := tr.Procs[1].Events[len(tr.Procs[1].Events)-1]
	// 10 seconds at decay 1e-4 removes up to 1 ms of correction — far
	// more than the ~104 µs jump, so the last event must be back on its
	// original clock
	if last.Time != lastOrig.Time { //tsync:exact — decayed correction must return the event to its original clock bit-for-bit
		t.Fatalf("correction did not decay away: %v vs original %v", last.Time, lastOrig.Time)
	}
}

func TestBackwardAmortizationSmoothsJump(t *testing.T) {
	// events shortly before a violated receive should be pre-shifted
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0, 0, 4.2e-6}
	p0 := trace.Proc{Rank: 0, Events: []trace.Event{
		{Kind: trace.Send, Time: 1.0, True: 1.0, Partner: 1, Region: -1, Root: -1},
	}}
	p1 := trace.Proc{Rank: 1, Core: topology.CoreID{Node: 1}}
	tr.RegionID("w")
	// local events leading up to the receive
	for i := 0; i < 5; i++ {
		p1.Events = append(p1.Events, trace.Event{
			Kind: trace.Enter, Time: 0.9998 + float64(i)*40e-6, True: 1.0, Region: 0, Partner: -1, Root: -1})
	}
	p1.Events = append(p1.Events, trace.Event{
		Kind: trace.Recv, Time: 0.9999, True: 1.000005, Partner: 0, Region: -1, Root: -1})
	tr.Procs = []trace.Proc{p0, p1}

	withBackward, _, err := Correct(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noBackward := DefaultOptions()
	noBackward.BackwardWindow = 0
	without, _, err := Correct(tr, noBackward)
	if err != nil {
		t.Fatal(err)
	}
	movedWith := withBackward.Procs[1].Events[4].Time - tr.Procs[1].Events[4].Time
	movedWithout := without.Procs[1].Events[4].Time - tr.Procs[1].Events[4].Time
	if movedWithout != 0 {
		t.Fatalf("no-backward run moved a pre-receive event by %v", movedWithout)
	}
	if movedWith <= 0 {
		t.Fatalf("backward amortization did not pre-shift events")
	}
	checkInvariants(t, tr, withBackward, DefaultOptions())
}

func TestBackwardRespectsSendConstraints(t *testing.T) {
	// a send sitting just before a violated receive must not be pushed
	// past its own receiver's bound
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0, 0, 10e-6}
	p0 := trace.Proc{Rank: 0, Events: []trace.Event{
		{Kind: trace.Send, Time: 1.0, True: 1.0, Partner: 1, Tag: 1, Region: -1, Root: -1},
	}}
	p1 := trace.Proc{Rank: 1, Core: topology.CoreID{Node: 1}, Events: []trace.Event{
		// this send's receive on rank 2 is tight
		{Kind: trace.Send, Time: 0.99995, True: 0.99995, Partner: 2, Tag: 2, Region: -1, Root: -1},
		// violated receive right after
		{Kind: trace.Recv, Time: 0.9999, True: 1.00001, Partner: 0, Tag: 1, Region: -1, Root: -1},
	}}
	p2 := trace.Proc{Rank: 2, Core: topology.CoreID{Node: 2}, Events: []trace.Event{
		{Kind: trace.Recv, Time: 0.99995 + 10.5e-6, True: 0.99997, Partner: 1, Tag: 2, Region: -1, Root: -1},
	}}
	tr.Procs = []trace.Proc{p0, p1, p2}
	opt := DefaultOptions()
	corr, _, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr, corr, opt)
}

func TestCollectiveViolationsCorrected(t *testing.T) {
	// a barrier where one rank's CollEnd is timestamped before another
	// rank's CollBegin (the Fig. 2(d) situation, MPI flavor)
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0.46e-6, 0.84e-6, 4.2e-6}
	mk := func(rank int, node int, skew float64) trace.Proc {
		return trace.Proc{Rank: rank, Core: topology.CoreID{Node: node}, Events: []trace.Event{
			{Kind: trace.CollBegin, Op: trace.OpBarrier, Time: 1.0 + skew, True: 1.0, Comm: 0, Instance: 0, Partner: -1, Region: -1, Root: -1},
			{Kind: trace.CollEnd, Op: trace.OpBarrier, Time: 1.00002 + skew, True: 1.00002, Comm: 0, Instance: 0, Partner: -1, Region: -1, Root: -1},
		}}
	}
	tr.Procs = []trace.Proc{mk(0, 0, 0), mk(1, 1, -60e-6)} // rank 1 ends before rank 0 begins
	opt := DefaultOptions()
	before, err := Violations(tr, opt.Gamma)
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatalf("expected barrier violation")
	}
	corr, rep, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationsAfter != 0 {
		t.Fatalf("barrier violation not corrected: %+v", rep)
	}
	checkInvariants(t, tr, corr, opt)
}

func TestOptionsValidation(t *testing.T) {
	orig := violatedTrace(1)
	bad := []Options{
		{Gamma: 0, MinSpacing: 1e-9},
		{Gamma: 1.5},
		{Gamma: 0.9, MinSpacing: -1},
		{Gamma: 0.9, ForwardDecay: -1},
		{Gamma: 0.9, BackwardWindow: -1},
	}
	for i, opt := range bad {
		if _, _, err := Correct(orig, opt); err == nil {
			t.Fatalf("bad options %d accepted", i)
		}
	}
}

func TestCyclicTraceRejected(t *testing.T) {
	tr := &trace.Trace{Procs: []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.Recv, Partner: 1, Region: -1, Root: -1},
			{Kind: trace.Send, Partner: 1, Region: -1, Root: -1},
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.Recv, Partner: 0, Region: -1, Root: -1},
			{Kind: trace.Send, Partner: 0, Region: -1, Root: -1},
		}},
	}}
	if _, _, err := Correct(tr, DefaultOptions()); err == nil {
		t.Fatalf("cyclic trace accepted by sequential replay")
	}
}

func TestEndToEndSimulatedTrace(t *testing.T) {
	// full pipeline: simulate with badly offset clocks, verify CLC
	// removes every violation the raw timestamps contain
	m := topology.Xeon()
	pin, err := topology.InterNode(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 13, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(r *mpi.Rank) {
		n := r.Size()
		for i := 0; i < 30; i++ {
			dst := (r.Rank() + 1) % n
			src := (r.Rank() - 1 + n) % n
			r.Send(dst, i, 256, nil)
			r.Recv(src, i)
			if i%10 == 0 {
				r.Allreduce(8, nil, nil)
			}
			r.Compute(3e-6)
		}
	}); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	// raw timestamps come from unaligned clocks with seconds-scale
	// offsets: everything is violated
	opt := DefaultOptions()
	before, err := Violations(tr, opt.Gamma)
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatalf("expected violations in raw unaligned trace")
	}
	corr, rep, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationsAfter != 0 {
		t.Fatalf("CLC left %d violations", rep.ViolationsAfter)
	}
	checkInvariants(t, tr, corr, opt)

	// parallel replay agrees on the real trace too
	par, _, err := CorrectParallel(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(corr, par) {
		t.Fatalf("parallel replay disagrees on simulated trace")
	}
}

func TestPropertyRandomTracesInvariants(t *testing.T) {
	rng := xrand.NewSource(21)
	opt := DefaultOptions()
	check := func(seed uint32) bool {
		s := rng.Sub(string(rune(seed)))
		nProcs := 2 + s.Intn(4)
		tr := &trace.Trace{}
		tr.MinLatency = [4]float64{0, 0.5e-6, 1e-6, 4e-6}
		tr.RegionID("w")
		// build a ring of messages with noisy, skewed timestamps
		skews := make([]float64, nProcs)
		for i := range skews {
			skews[i] = s.Normal(0, 100e-6)
		}
		procs := make([]trace.Proc, nProcs)
		for i := range procs {
			procs[i] = trace.Proc{Rank: i, Core: topology.CoreID{Node: i}}
		}
		tt := 0.0
		rounds := 1 + s.Intn(15)
		for round := 0; round < rounds; round++ {
			tt += 50e-6
			for i := range procs {
				dst := (i + 1) % nProcs
				procs[i].Events = append(procs[i].Events, trace.Event{
					Kind: trace.Send, Time: tt + skews[i], True: tt,
					Partner: int32(dst), Tag: int32(round), Region: -1, Root: -1})
			}
			tt += 10e-6
			for i := range procs {
				src := (i - 1 + nProcs) % nProcs
				procs[i].Events = append(procs[i].Events, trace.Event{
					Kind: trace.Recv, Time: tt + skews[i] + s.Normal(0, 5e-6), True: tt,
					Partner: int32(src), Tag: int32(round), Region: -1, Root: -1})
			}
		}
		// per-process Times must be locally ordered for a valid trace
		for i := range procs {
			for j := 1; j < len(procs[i].Events); j++ {
				if procs[i].Events[j].Time <= procs[i].Events[j-1].Time {
					procs[i].Events[j].Time = procs[i].Events[j-1].Time + 1e-9
				}
			}
		}
		tr.Procs = procs
		corr, rep, err := Correct(tr, opt)
		if err != nil {
			return false
		}
		if rep.ViolationsAfter != 0 {
			return false
		}
		// invariants: monotone locally, never backward
		for i := range corr.Procs {
			evs := corr.Procs[i].Events
			for j := range evs {
				if evs[j].Time < tr.Procs[i].Events[j].Time-1e-15 {
					return false
				}
				if j > 0 && evs[j].Time <= evs[j-1].Time {
					return false
				}
			}
		}
		// parallel equality
		par, _, err := CorrectParallel(tr, opt)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(corr, par)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJumpProfile(t *testing.T) {
	orig := violatedTrace(3)
	corr, _, err := Correct(orig, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prof, err := JumpProfile(orig, corr)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 2 {
		t.Fatalf("profile covers %d procs", len(prof))
	}
	maxAdvance := prof[1][len(prof[1])-1]
	if maxAdvance < 40e-6 {
		t.Fatalf("rank 1 max advance %v, expected ~skew magnitude", maxAdvance)
	}
	for _, v := range prof[0] {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("rank 0 (no violations) was moved by %v", v)
		}
	}
}

func BenchmarkCorrectSequential(b *testing.B) {
	orig := violatedTrace(500)
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Correct(orig, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrectParallel(b *testing.B) {
	orig := violatedTrace(500)
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CorrectParallel(orig, opt); err != nil {
			b.Fatal(err)
		}
	}
}
