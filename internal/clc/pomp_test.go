package clc

import (
	"testing"

	"tsync/internal/analysis"
	"tsync/internal/clock"
	"tsync/internal/lclock"
	"tsync/internal/omp"
	"tsync/internal/topology"
	"tsync/internal/trace"
)

// ompTrace runs the Fig. 8 benchmark at 4 threads, where most parallel
// regions violate POMP semantics.
func ompTrace(t testing.TB, seed uint64) *trace.Trace {
	t.Helper()
	tm, err := omp.NewTeam(omp.Config{
		Machine: topology.Itanium(), Timer: clock.TSC, Threads: 4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tm.RunParallelFor("pf", 40, func(int, int) float64 { return 5e-6 })
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSharedMemoryCLCRestoresPOMPSemantics(t *testing.T) {
	// the paper's open limitation, closed: CLC with POMP edges removes
	// every shared-memory violation
	tr := ompTrace(t, 2)
	before, err := analysis.POMPCensusOf(tr)
	if err != nil {
		t.Fatal(err)
	}
	if before.Any == 0 {
		t.Fatalf("expected POMP violations at 4 threads")
	}
	opt := DefaultOptions()
	opt.SharedMemory = true
	corr, rep, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationsBefore == 0 {
		t.Fatalf("shared-memory edges not counted in the report")
	}
	if rep.ViolationsAfter != 0 {
		t.Fatalf("CLC left %d shared-memory violations", rep.ViolationsAfter)
	}
	after, err := analysis.POMPCensusOf(corr)
	if err != nil {
		t.Fatal(err)
	}
	if after.Any != 0 {
		t.Fatalf("POMP census still reports %d violated regions after correction", after.Any)
	}
	checkInvariants(t, tr, corr, opt)
}

func TestSharedMemoryCLCParallelAgrees(t *testing.T) {
	tr := ompTrace(t, 3)
	opt := DefaultOptions()
	opt.SharedMemory = true
	seq, repS, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, repP, err := CorrectParallel(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if repS != repP {
		t.Fatalf("reports differ: %+v vs %+v", repS, repP)
	}
	for i := range seq.Procs {
		for j := range seq.Procs[i].Events {
			if seq.Procs[i].Events[j].Time != par.Procs[i].Events[j].Time { //tsync:exact — determinism: both implementations must agree bit-for-bit
				t.Fatalf("sequential and parallel shared-memory CLC disagree at %d/%d", i, j)
			}
		}
	}
}

func TestWithoutSharedMemoryOptionViolationsRemain(t *testing.T) {
	// the original CLC (message edges only) cannot see POMP violations —
	// exactly the limitation the paper describes
	tr := ompTrace(t, 2)
	corr, rep, err := Correct(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationsBefore != 0 {
		t.Fatalf("message-only CLC saw %d violations in a message-free trace", rep.ViolationsBefore)
	}
	after, err := analysis.POMPCensusOf(corr)
	if err != nil {
		t.Fatal(err)
	}
	if after.Any == 0 {
		t.Fatalf("POMP violations disappeared without shared-memory edges")
	}
}

func TestViolationsShared(t *testing.T) {
	tr := ompTrace(t, 2)
	plain, err := Violations(tr, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := ViolationsShared(tr, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if plain != 0 {
		t.Fatalf("message-edge violations in a message-free trace: %d", plain)
	}
	if shared == 0 {
		t.Fatalf("shared-memory violations not counted")
	}
}

func TestPOMPEdgesStructure(t *testing.T) {
	tr := ompTrace(t, 1)
	edges := lclock.POMPEdges(tr)
	if len(edges) == 0 {
		t.Fatalf("no POMP edges derived")
	}
	// every edge must respect true time (the runtime is causal)
	for _, e := range edges {
		from := tr.Procs[e.From.Rank].Events[e.From.Idx].True
		to := tr.Procs[e.To.Rank].Events[e.To.Idx].True
		if to < from {
			t.Fatalf("POMP edge against true time: %v -> %v", from, to)
		}
	}
	// 40 regions × 4 threads: fork->first (3 workers + master self-skip
	// check), last->join, and 4×3 barrier pairs per region
	perRegion := 3 + 4 + 12 // fork edges (master's first != fork ref → 4), conservatively >= 3+4+12-1
	if len(edges) < 40*perRegion/2 {
		t.Fatalf("suspiciously few POMP edges: %d", len(edges))
	}
}

func BenchmarkSharedMemoryCLC(b *testing.B) {
	tr := ompTrace(b, 2)
	opt := DefaultOptions()
	opt.SharedMemory = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Correct(tr, opt); err != nil {
			b.Fatal(err)
		}
	}
}
