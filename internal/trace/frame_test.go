package trace

// Tests for the v2 checksummed framing: clean round trips must match v1
// semantics exactly, and corruption recovery must be deterministic,
// budgeted, and incapable of fabricating events.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"tsync/internal/topology"
	"tsync/internal/xrand"
)

// genTrace builds a deterministic multi-rank trace of random events.
func genTrace(ranks, events int, seed uint64) *Trace {
	rng := xrand.NewSource(seed)
	t := &Trace{Machine: "m", Timer: "TSC"}
	for r := 0; r < ranks; r++ {
		p := Proc{Rank: r, Core: topology.CoreID{Node: r}, Clock: fmt.Sprintf("TSC@%d", r)}
		for i := 0; i < events; i++ {
			p.Events = append(p.Events, randomEvent(rng))
		}
		t.Procs = append(t.Procs, p)
	}
	return t
}

// v2Bytes encodes tr in the v2 codec.
func v2Bytes(t testing.TB, tr *Trace, frameEvents int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteOpts(&buf, tr, WriterOptions{Version: Version2, FrameEvents: frameEvents}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readAllOpts reads a whole stream through the incremental reader under
// pol, returning per-rank event lists keyed by the rank each process
// header (real or synthesized) declared.
func readAllOpts(t testing.TB, data []byte, pol ResyncPolicy) (map[int][]Event, *CorruptionReport, error) {
	t.Helper()
	er, err := NewEventReaderOpts(bytes.NewReader(data), pol)
	if err != nil {
		return nil, nil, err
	}
	got := map[int][]Event{}
	for {
		ph, err := er.NextProc()
		if err == io.EOF {
			return got, er.Report(), nil
		}
		if err != nil {
			return got, er.Report(), err
		}
		for {
			var ev Event
			err := er.Read(&ev)
			if err == io.EOF {
				break
			}
			if err != nil {
				return got, er.Report(), err
			}
			got[ph.Rank] = append(got[ph.Rank], ev)
		}
	}
}

// TestFrameRoundTrip: a v2 encode/decode cycle must reproduce the trace
// exactly, across frame geometries including degenerate ones.
func TestFrameRoundTrip(t *testing.T) {
	for _, frameEvents := range []int{0, 1, 3, 256} {
		tr := genTrace(3, 50, 11)
		data := v2Bytes(t, tr, frameEvents)
		back, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("frameEvents=%d: %v", frameEvents, err)
		}
		var v1a, v1b bytes.Buffer
		if _, err := Write(&v1a, tr); err != nil {
			t.Fatal(err)
		}
		if _, err := Write(&v1b, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v1a.Bytes(), v1b.Bytes()) {
			t.Fatalf("frameEvents=%d: v2 round trip changed the trace", frameEvents)
		}
	}
}

// TestFrameRoundTripTiny covers the string/collective edge cases of the
// shared tiny fixture, plus the streaming reader interface.
func TestFrameRoundTripTiny(t *testing.T) {
	tr := tinyTrace()
	data := v2Bytes(t, tr, 2)
	got, rep, err := readAllOpts(t, data, ResyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) != 0 {
		t.Fatalf("clean read produced incidents: %+v", rep.Incidents)
	}
	for r, p := range tr.Procs {
		if len(got[r]) != len(p.Events) {
			t.Fatalf("rank %d: got %d events, want %d", r, len(got[r]), len(p.Events))
		}
		for i := range p.Events {
			if !sameEventBits(got[r][i], p.Events[i]) {
				t.Fatalf("rank %d event %d differs", r, i)
			}
		}
	}
}

// findBlocks walks the block structure of a clean v2 file, returning the
// offset and type of every block.
func findBlocks(t testing.TB, data []byte) (offs []int, typs []byte) {
	t.Helper()
	i := bytes.Index(data, frameMarker[:])
	if i < 0 {
		t.Fatal("no blocks in v2 file")
	}
	for i < len(data) {
		typ, plen, hlen, _, err := parseBlockHead(data[i:min(i+blockHeadMax, len(data))])
		if err != nil {
			t.Fatalf("block walk broke at %d: %v", i, err)
		}
		offs = append(offs, i)
		typs = append(typs, typ)
		i += hlen + plen
	}
	return offs, typs
}

// isSubsequence reports whether sub appears in order (not necessarily
// contiguously) within full, comparing canonical encodings.
func isSubsequence(sub, full []Event) bool {
	j := 0
	for i := range sub {
		found := false
		for ; j < len(full); j++ {
			if sameEventBits(sub[i], full[j]) {
				j++
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestFrameSingleFlipSalvage: for single-byte corruptions sampled across
// the block region, strict reads must fail (or be unaffected is
// impossible: every block byte is covered by structure or checksum) and
// resync reads must terminate, report the incident, and deliver a
// per-rank subsequence of the original events — drops allowed,
// fabrications not.
func TestFrameSingleFlipSalvage(t *testing.T) {
	tr := genTrace(3, 120, 23)
	data := v2Bytes(t, tr, 8)
	firstBlock := bytes.Index(data, frameMarker[:])
	rng := xrand.NewSource(99)
	for trial := 0; trial < 60; trial++ {
		off := firstBlock + rng.Intn(len(data)-firstBlock)
		mut := append([]byte(nil), data...)
		mut[off] ^= byte(1 << rng.Intn(8))
		if mut[off] == data[off] {
			continue
		}

		if _, _, err := readAllOpts(t, mut, ResyncPolicy{}); err == nil {
			t.Fatalf("trial %d (byte %d): strict read accepted corrupt input", trial, off)
		} else if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("trial %d: strict error not ErrBadFormat: %v", trial, err)
		}

		got, rep, err := readAllOpts(t, mut, ResyncPolicy{Enabled: true})
		if err != nil {
			t.Fatalf("trial %d (byte %d): resync read failed: %v", trial, off, err)
		}
		if len(rep.Incidents) == 0 {
			t.Fatalf("trial %d (byte %d): corruption recovered without an incident", trial, off)
		}
		total := 0
		for r, p := range tr.Procs {
			if !isSubsequence(got[r], p.Events) {
				t.Fatalf("trial %d (byte %d): rank %d salvaged events are not a subsequence of the original", trial, off, r)
			}
			total += len(got[r])
		}
		if total < 3*120-3*120/4 {
			t.Fatalf("trial %d (byte %d): one flipped byte lost %d of %d events", trial, off, 3*120-total, 3*120)
		}
	}
}

// TestFrameResyncDeterminism: the same corrupt bytes must salvage to the
// same events and the same report, every time.
func TestFrameResyncDeterminism(t *testing.T) {
	tr := genTrace(4, 200, 31)
	data := v2Bytes(t, tr, 16)
	firstBlock := bytes.Index(data, frameMarker[:])
	rng := xrand.NewSource(7)
	mut := append([]byte(nil), data...)
	for i := 0; i < 20; i++ {
		mut[firstBlock+rng.Intn(len(mut)-firstBlock)] ^= byte(1 + rng.Intn(255))
	}
	got1, rep1, err1 := readAllOpts(t, mut, ResyncPolicy{Enabled: true})
	got2, rep2, err2 := readAllOpts(t, mut, ResyncPolicy{Enabled: true})
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
	}
	if !reflect.DeepEqual(got1, got2) {
		t.Fatal("same corrupt input salvaged different events across reads")
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("same corrupt input produced different reports:\n%+v\n%+v", rep1, rep2)
	}
}

// TestFrameProcHeaderLoss: destroying a proc block must synthesize a
// placeholder header in resync mode and still deliver the rank's frames.
func TestFrameProcHeaderLoss(t *testing.T) {
	tr := genTrace(3, 40, 5)
	data := v2Bytes(t, tr, 8)
	offs, typs := findBlocks(t, data)
	// Corrupt the second proc block (rank 1's header).
	procSeen := 0
	target := -1
	for i, typ := range typs {
		if typ == blockProc {
			procSeen++
			if procSeen == 2 {
				target = offs[i]
				break
			}
		}
	}
	if target < 0 {
		t.Fatal("no second proc block found")
	}
	mut := append([]byte(nil), data...)
	mut[target+blockHeadMax] ^= 0xFF // inside the payload: CRC catches it

	er, err := NewEventReaderOpts(bytes.NewReader(mut), ResyncPolicy{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	var phs []ProcHeader
	for {
		ph, err := er.NextProc()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			var ev Event
			if err := er.Read(&ev); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			n++
		}
		if ph.Rank == 1 && n == 0 {
			t.Fatal("rank 1 salvaged no events")
		}
		phs = append(phs, ph)
	}
	if len(phs) != 3 {
		t.Fatalf("got %d processes, want 3", len(phs))
	}
	if phs[1].Rank != 1 || phs[1].EventCount != -1 || phs[1].Clock != "?" {
		t.Fatalf("rank 1 header not synthesized: %+v", phs[1])
	}
	if !er.Report().UnknownLoss {
		t.Fatal("destroyed proc header did not set UnknownLoss")
	}
}

// TestFrameTruncationSalvage: cutting the file mid-stream must salvage
// everything up to the cut and count the declared remainder as lost.
func TestFrameTruncationSalvage(t *testing.T) {
	tr := genTrace(2, 60, 13)
	data := v2Bytes(t, tr, 8)
	cut := len(data) - len(data)/4
	got, rep, err := readAllOpts(t, data[:cut], ResyncPolicy{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 60 {
		t.Fatalf("rank 0: got %d events, want all 60", len(got[0]))
	}
	if len(got[1]) == 60 {
		t.Fatal("truncation lost nothing?")
	}
	if rep.LostEvents != int64(60-len(got[1])) {
		t.Fatalf("LostEvents = %d, want %d", rep.LostEvents, 60-len(got[1]))
	}
	if !isSubsequence(got[1], tr.Procs[1].Events) {
		t.Fatal("salvaged events are not a subsequence")
	}
}

// TestFrameSalvageBudget: both budgets must convert runaway salvage into
// ErrSalvageBudget.
func TestFrameSalvageBudget(t *testing.T) {
	tr := genTrace(2, 60, 17)
	data := v2Bytes(t, tr, 8)
	offs, typs := findBlocks(t, data)
	var frameOff int
	for i, typ := range typs {
		if typ == blockFrame {
			frameOff = offs[i]
			break
		}
	}
	mut := append([]byte(nil), data...)
	mut[frameOff+blockHeadMax] ^= 0xFF

	if _, _, err := readAllOpts(t, mut, ResyncPolicy{Enabled: true, MaxSkipBytes: 1}); !errors.Is(err, ErrSalvageBudget) {
		t.Fatalf("MaxSkipBytes=1: got %v, want ErrSalvageBudget", err)
	}
	if _, _, err := readAllOpts(t, data[:len(data)-40], ResyncPolicy{Enabled: true, MaxSkipEvents: 1}); !errors.Is(err, ErrSalvageBudget) {
		t.Fatalf("MaxSkipEvents=1 on truncated input: got %v, want ErrSalvageBudget", err)
	}
	// Unlimited budgets must accept the same inputs.
	if _, _, err := readAllOpts(t, mut, ResyncPolicy{Enabled: true}); err != nil {
		t.Fatalf("unbudgeted resync failed: %v", err)
	}
}

// TestFrameMarkerCollision: event payloads that contain the sync marker
// byte sequence must not derail resync — a collision candidate fails
// validation and the scan moves on to the real next block.
func TestFrameMarkerCollision(t *testing.T) {
	tr := genTrace(2, 40, 3)
	// Plant the marker inside Time fields throughout rank 0 and 1.
	evil := math.Float64frombits(uint64(frameMarker[0]) | uint64(frameMarker[1])<<8 |
		uint64(frameMarker[2])<<16 | uint64(frameMarker[3])<<24 | uint64(blockFrame)<<32)
	for r := range tr.Procs {
		for i := range tr.Procs[r].Events {
			if i%3 == 0 {
				tr.Procs[r].Events[i].Time = evil
			}
		}
	}
	data := v2Bytes(t, tr, 4)
	offs, typs := findBlocks(t, data)
	var frameOff int
	for i, typ := range typs {
		if typ == blockFrame {
			frameOff = offs[i]
			break
		}
	}
	mut := append([]byte(nil), data...)
	mut[frameOff] ^= 0x01 // destroy the real marker, forcing a scan over collision bytes

	got, rep, err := readAllOpts(t, mut, ResyncPolicy{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) == 0 {
		t.Fatal("no incident recorded")
	}
	for r, p := range tr.Procs {
		if !isSubsequence(got[r], p.Events) {
			t.Fatalf("rank %d: collision scan fabricated or reordered events", r)
		}
	}
	if len(got[0])+len(got[1]) < 2*40-8 {
		t.Fatalf("collision scan lost too much: %d+%d of 80", len(got[0]), len(got[1]))
	}
}

// TestFrameErrorContext: strict v2 errors must carry the byte offset and
// rank, and remain ErrBadFormat.
func TestFrameErrorContext(t *testing.T) {
	tr := genTrace(2, 40, 29)
	data := v2Bytes(t, tr, 8)
	offs, typs := findBlocks(t, data)
	var frameOff int
	for i, typ := range typs {
		if typ == blockFrame {
			frameOff = offs[i]
			break
		}
	}
	mut := append([]byte(nil), data...)
	mut[frameOff+blockHeadMax] ^= 0xFF
	_, _, err := readAllOpts(t, mut, ResyncPolicy{})
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("got %v, want ErrBadFormat", err)
	}
	if !strings.Contains(err.Error(), "at byte") {
		t.Fatalf("error lacks byte offset context: %v", err)
	}
}

// TestFrameV2WriterAllocs pins the v2 framed write hot path to zero
// allocations per event at steady state.
func TestFrameV2WriterAllocs(t *testing.T) {
	ew, err := NewEventWriterOpts(io.Discard, Header{ProcCount: 1}, WriterOptions{Version: Version2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 20
	if err := ew.BeginProc(ProcHeader{EventCount: n}); err != nil {
		t.Fatal(err)
	}
	ev := Event{Kind: Recv, Time: 4.5, True: 5.5, Partner: 0, Tag: 9, Region: -1, Root: -1}
	// Warm the frame buffers to their steady-state capacity first.
	for i := 0; i < 4096; i++ {
		if err := ew.Write(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(4000, func() {
		if err := ew.Write(&ev); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("v2 EventWriter.Write allocates %.2f per event, want 0", avg)
	}
}

// TestFrameDecoderAllocs pins FrameDecoder's strict decode hot path to
// zero allocations per event at steady state.
func TestFrameDecoderAllocs(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	fw := newFrameWriter(bw, 256, false)
	fw.rank = 0
	rng := xrand.NewSource(43)
	for i := 0; i < 1<<15; i++ {
		ev := randomEvent(rng)
		if err := fw.add(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.flushFrame(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	d := NewFrameDecoder(bytes.NewReader(buf.Bytes()), 0, ResyncPolicy{})
	var ev Event
	// Warm the payload buffer.
	for i := 0; i < 1024; i++ {
		if err := d.Decode(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(4000, func() {
		if err := d.Decode(&ev); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("FrameDecoder.Decode allocates %.2f per event, want 0", avg)
	}
}

// TestFrameDecoderSection: FrameDecoder over one rank's byte section
// must deliver exactly that rank's events, and resync within the section
// must skip corrupt frames deterministically.
func TestFrameDecoderSection(t *testing.T) {
	tr := genTrace(3, 60, 37)
	data := v2Bytes(t, tr, 8)
	offs, typs := findBlocks(t, data)
	// Rank 1's section: from the first block after its proc header to the
	// next proc block.
	procSeen, start, end := 0, -1, len(data)
	for i, typ := range typs {
		if typ == blockProc {
			procSeen++
			if procSeen == 2 {
				start = offs[i+1]
			} else if procSeen == 3 {
				end = offs[i]
			}
		}
	}
	section := data[start:end]

	d := NewFrameDecoder(bytes.NewReader(section), 1, ResyncPolicy{})
	var got []Event
	for {
		var ev Event
		if err := d.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if len(got) != 60 {
		t.Fatalf("decoded %d events, want 60", len(got))
	}
	for i := range got {
		if !sameEventBits(got[i], tr.Procs[1].Events[i]) {
			t.Fatalf("event %d differs", i)
		}
	}

	// Corrupt one frame mid-section: resync must drop it and continue.
	mut := append([]byte(nil), section...)
	mut[len(mut)/2] ^= 0x10
	d = NewFrameDecoder(bytes.NewReader(mut), 1, ResyncPolicy{Enabled: true})
	got = got[:0]
	for {
		var ev Event
		if err := d.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if len(d.Report().Incidents) == 0 {
		t.Fatal("corrupt frame recovered without an incident")
	}
	if !isSubsequence(got, tr.Procs[1].Events) {
		t.Fatal("section salvage fabricated events")
	}
	if len(got) < 60-16 {
		t.Fatalf("section salvage lost %d of 60 events", 60-len(got))
	}
}

// TestCorruptionReportLossPct: the percentage guard must never divide
// by a zero or unknowable total — a destroyed header reports (0, false),
// not NaN.
func TestCorruptionReportLossPct(t *testing.T) {
	r := CorruptionReport{LostEvents: 25}
	if pct, ok := r.LossPct(75); !ok || pct != 25 { //tsync:exact — 25/(25+75) is exactly representable
		t.Errorf("LossPct(75) = (%v, %v), want (25, true)", pct, ok)
	}
	if pct, ok := r.LossPct(-25); ok || pct != 0 { //tsync:exact — guard contract: pct is exactly 0 when ok is false
		t.Errorf("LossPct(-25) = (%v, %v), want (0, false)", pct, ok)
	}
	r.UnknownLoss = true
	if pct, ok := r.LossPct(75); ok || pct != 0 { //tsync:exact — guard contract: pct is exactly 0 when ok is false
		t.Errorf("unknown loss: LossPct = (%v, %v), want (0, false)", pct, ok)
	}
	var empty CorruptionReport
	if pct, ok := empty.LossPct(0); ok || pct != 0 { //tsync:exact — guard contract: pct is exactly 0 when ok is false
		t.Errorf("empty: LossPct(0) = (%v, %v), want (0, false)", pct, ok)
	}
}
