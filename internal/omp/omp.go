// Package omp is the shared-memory substrate: a simulated OpenMP runtime
// on one SMP node, emitting traces under the POMP event model (Mohr et
// al.), as the paper's Itanium experiments do (Figs. 3 and 8). A parallel
// region produces, per instance: a Fork and Join on the master thread and
// Enter / BarrierEnter / BarrierExit / Exit on every thread (the implicit
// barrier of a parallel-for construct).
//
// The timing model captures what makes small thread counts vulnerable to
// clock-condition violations (Fig. 8): fork, barrier-release and join
// latencies all grow with the team size because of cache-line contention,
// while the clock offsets between chips stay fixed at a fraction of a
// microsecond. With few threads the synchronization gaps are smaller than
// the inter-chip clock disagreement; with many threads they dominate it.
package omp

import (
	"fmt"

	"tsync/internal/clock"
	"tsync/internal/des"
	"tsync/internal/measure"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// Timing holds the synchronization cost model of the simulated runtime.
// All values are seconds.
type Timing struct {
	// ForkBase + ForkContention*threads is the delay before the first
	// worker observes the fork; ForkStagger*i is added for worker i.
	ForkBase       float64
	ForkContention float64
	ForkStagger    float64
	// ReleaseBase + ReleaseContention*threads is the delay between the
	// last barrier arrival and the first thread leaving; ReleaseStagger*i
	// staggers the remaining threads.
	ReleaseBase       float64
	ReleaseContention float64
	ReleaseStagger    float64
	// JoinBase + JoinContention*threads is the delay between the last
	// thread's region exit and the master's join.
	JoinBase       float64
	JoinContention float64
	// Noise is the exponential-noise mean added to each of the above.
	Noise float64
}

// DefaultTiming is calibrated so that the violation percentages of Fig. 8
// reproduce: >75 % of regions affected at 4 threads, a sharp drop toward
// 8-12 threads, and none at 16.
func DefaultTiming() Timing {
	return Timing{
		ForkBase:          0.10e-6,
		ForkContention:    0.125e-6,
		ForkStagger:       0.10e-6,
		ReleaseBase:       0.12e-6,
		ReleaseContention: 0.125e-6,
		ReleaseStagger:    0.06e-6,
		JoinBase:          0.0,
		JoinContention:    0.11e-6,
		Noise:             0.05e-6,
	}
}

// Config describes a simulated OpenMP run.
type Config struct {
	Machine topology.Machine // must have at least one node
	Timer   clock.Kind
	Threads int
	Seed    uint64
	Timing  *Timing // nil selects DefaultTiming
	// Pinning overrides thread placement; nil selects ScatteredThreads
	// (the unpinned-OS placement of the paper's experiments).
	Pinning topology.Pinning
}

// Team is one simulated OpenMP thread team.
type Team struct {
	cfg     Config
	timing  Timing
	eng     *des.Engine
	cluster *topology.Cluster
	rng     *xrand.Source
	threads []*thread
	tr      *trace.Trace

	// per-region synchronization state
	barrierCount   int
	barrierBlocked []*thread
	doneCount      int
	masterParked   bool
}

type thread struct {
	id     int
	core   topology.CoreID
	clk    *clock.Clock
	proc   *des.Proc
	events []trace.Event
	team   *Team
}

// NewTeam builds the team: clocks per core and one simulated thread per
// team member.
func NewTeam(cfg Config) (*Team, error) {
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("omp: need at least one thread, got %d", cfg.Threads)
	}
	pin := cfg.Pinning
	var err error
	if pin == nil {
		pin, err = topology.ScatteredThreads(cfg.Machine, cfg.Threads)
		if err != nil {
			return nil, err
		}
	}
	if len(pin) != cfg.Threads {
		return nil, fmt.Errorf("omp: pinning covers %d threads, want %d", len(pin), cfg.Threads)
	}
	if err := pin.Validate(cfg.Machine); err != nil {
		return nil, err
	}
	preset := clock.PresetFor(cfg.Timer, cfg.Machine.Family)
	cluster, err := topology.NewCluster(cfg.Machine, preset, cfg.Seed)
	if err != nil {
		return nil, err
	}
	timing := DefaultTiming()
	if cfg.Timing != nil {
		timing = *cfg.Timing
	}
	tm := &Team{
		cfg:     cfg,
		timing:  timing,
		eng:     des.New(),
		cluster: cluster,
		rng:     xrand.NewSource(cfg.Seed ^ 0xabcdef12345),
		tr: &trace.Trace{
			Machine: cfg.Machine.Name,
			Timer:   cfg.Timer.String(),
			// lower bounds of shared-memory synchronization visibility
			// (cache-line transfer costs), the l_min analog for POMP
			// happened-before edges
			MinLatency: [4]float64{0, 0.02e-6, 0.05e-6, 0.2e-6},
		},
	}
	for i, core := range pin {
		clk, err := cluster.Clock(core)
		if err != nil {
			return nil, err
		}
		tm.threads = append(tm.threads, &thread{id: i, core: core, clk: clk, team: tm})
	}
	return tm, nil
}

// noise draws one exponential noise sample.
func (tm *Team) noise() float64 {
	if tm.timing.Noise <= 0 {
		return 0
	}
	return tm.rng.Exponential(tm.timing.Noise)
}

// record appends one POMP event with the thread's clock reading.
func (th *thread) record(kind trace.Kind, region, instance int32) {
	th.proc.Sleep(th.clk.ReadOverhead())
	now := th.proc.Now()
	th.events = append(th.events, trace.Event{
		Kind:     kind,
		Time:     th.clk.Read(now),
		True:     now,
		Region:   region,
		Instance: instance,
		Partner:  -1,
		Root:     -1,
	})
}

// RunParallelFor executes `regions` instances of a parallel-for construct
// (a parallel region with an implicit barrier, the benchmark of Fig. 8).
// work(threadID, region) returns the body duration for one thread in one
// region instance. It returns the recorded trace.
func (tm *Team) RunParallelFor(regionName string, regions int, work func(thread, region int) float64) (*trace.Trace, error) {
	if regions < 1 {
		return nil, fmt.Errorf("omp: need at least one region, got %d", regions)
	}
	regionID := tm.tr.RegionID(regionName)
	n := len(tm.threads)

	for _, th := range tm.threads {
		th := th
		if th.id == 0 {
			th.proc = tm.eng.Spawn("omp-master", 0, func(p *des.Proc) {
				for reg := 0; reg < regions; reg++ {
					inst := int32(reg)
					th.record(trace.Fork, regionID, inst)
					// wake the workers with contention-scaled latency
					for i := 1; i < n; i++ {
						w := tm.threads[i]
						delay := tm.timing.ForkBase + tm.timing.ForkContention*float64(n) +
							tm.timing.ForkStagger*float64(i) + tm.noise()
						tm.eng.Schedule(p.Now()+delay, func() { tm.eng.Wake(w.proc) })
					}
					tm.runBody(th, regionID, inst, work(0, reg))
					// join: wait until every thread left the region
					if tm.doneCount < n {
						tm.masterParked = true
						p.Park("join")
					}
					tm.doneCount = 0
					p.Sleep(tm.timing.JoinBase + tm.timing.JoinContention*float64(n) + tm.noise())
					th.record(trace.Join, regionID, inst)
				}
			})
		} else {
			th.proc = tm.eng.Spawn(fmt.Sprintf("omp-worker%d", th.id), 0, func(p *des.Proc) {
				for reg := 0; reg < regions; reg++ {
					p.Park("waiting for fork")
					tm.runBody(th, regionID, int32(reg), work(th.id, reg))
				}
			})
		}
	}
	if err := tm.eng.Run(); err != nil {
		return nil, err
	}
	tm.tr.Procs = tm.tr.Procs[:0]
	for _, th := range tm.threads {
		tm.tr.Procs = append(tm.tr.Procs, trace.Proc{
			Rank:   th.id,
			Core:   th.core,
			Clock:  th.clk.Name(),
			Events: th.events,
		})
	}
	return tm.tr, nil
}

// runBody executes one thread's share of a region: enter, work, implicit
// barrier, exit, completion signalling.
func (tm *Team) runBody(th *thread, regionID, inst int32, workDur float64) {
	th.record(trace.Enter, regionID, inst)
	th.proc.Sleep(workDur)
	tm.barrier(th, regionID, inst)
	th.record(trace.Exit, regionID, inst)
	tm.doneCount++
	if tm.doneCount == len(tm.threads) && tm.masterParked {
		tm.masterParked = false
		tm.eng.Wake(tm.threads[0].proc)
	}
}

// barrier implements the implicit barrier: a centralized counter with
// contention-scaled release.
func (tm *Team) barrier(th *thread, regionID, inst int32) {
	n := len(tm.threads)
	th.record(trace.BarrierEnter, regionID, inst)
	tm.barrierCount++
	if tm.barrierCount < n {
		tm.barrierBlocked = append(tm.barrierBlocked, th)
		th.proc.Park("barrier")
	} else {
		// last arrival releases everyone
		tm.barrierCount = 0
		blocked := tm.barrierBlocked
		tm.barrierBlocked = nil
		base := th.proc.Now() + tm.timing.ReleaseBase + tm.timing.ReleaseContention*float64(n)
		for k, w := range blocked {
			w := w
			delay := base + tm.timing.ReleaseStagger*float64(k) + tm.noise()
			tm.eng.Schedule(delay, func() { tm.eng.Wake(w.proc) })
		}
		// the releasing thread leaves after the release broadcast cost
		th.proc.Sleep(base + tm.timing.ReleaseStagger*float64(len(blocked)) + tm.noise() - th.proc.Now())
	}
	th.record(trace.BarrierExit, regionID, inst)
}

// MeasureOffsets estimates each thread's clock offset relative to the
// master thread with Cristian-style probes over shared memory (a flag
// bounce through the cache hierarchy instead of a network message). It
// answers the question the paper leaves open for OpenMP: "Whether offset
// alignment or interpolation can alleviate the errors remains to be
// evaluated." The returned table is indexed by thread id; entry 0 is the
// master with offset 0. Call before RunParallelFor on a fresh team, or
// after it completed.
func (tm *Team) MeasureOffsets(reps int) ([]measure.Offset, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("omp: reps must be positive, got %d", reps)
	}
	// cache-line bounce latency between two cores of the node
	bounce := func(a, b topology.CoreID) float64 {
		if topology.Relate(a, b) == topology.SameChip {
			return 0.04e-6
		}
		return 0.09e-6
	}
	table := make([]measure.Offset, len(tm.threads))
	eng := des.New()
	// fresh readers share the threads' oscillators but keep their own
	// monotonic state, so probing never disturbs (and is not disturbed
	// by) the traced run
	readers := make([]*clock.Clock, len(tm.threads))
	for i, th := range tm.threads {
		rd, err := tm.cluster.NewReader(th.core, fmt.Sprintf("probe%d", i))
		if err != nil {
			return nil, err
		}
		readers[i] = rd
	}
	master := tm.threads[0]
	// a dedicated measurement engine: threads respond to probes in turn
	type probeState struct {
		workerParked *des.Proc
		t0           float64
		ready        bool
	}
	states := make([]probeState, len(tm.threads))
	for i := 1; i < len(tm.threads); i++ {
		i := i
		eng.Spawn(fmt.Sprintf("probe-worker%d", i), 0, func(p *des.Proc) {
			for rep := 0; rep < reps; rep++ {
				states[i].workerParked = p
				p.Park("awaiting probe")
				p.Sleep(readers[i].ReadOverhead())
				states[i].t0 = readers[i].Read(p.Now())
				states[i].ready = true
			}
		})
	}
	eng.Spawn("probe-master", 0, func(p *des.Proc) {
		table[0] = measure.Offset{Rank: 0, WorkerTime: readers[0].Read(p.Now())}
		for i := 1; i < len(tm.threads); i++ {
			th := tm.threads[i]
			best := measure.Offset{Rank: i, RTT: -1}
			for rep := 0; rep < reps; rep++ {
				p.Sleep(readers[0].ReadOverhead())
				t1 := readers[0].Read(p.Now())
				// flag travels to the worker's cache
				p.Sleep(bounce(master.core, th.core) + tm.noise())
				eng.Wake(states[i].workerParked)
				// worker stamps; response flag travels back
				for !states[i].ready {
					p.Sleep(0.01e-6)
				}
				states[i].ready = false
				p.Sleep(bounce(th.core, master.core) + tm.noise())
				p.Sleep(readers[0].ReadOverhead())
				t2 := readers[0].Read(p.Now())
				rtt := t2 - t1
				if best.RTT < 0 || rtt < best.RTT {
					best = measure.Offset{Rank: i, WorkerTime: states[i].t0, Offset: t1 + rtt/2 - states[i].t0, RTT: rtt}
				}
			}
			table[i] = best
		}
	})
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return table, nil
}

// Schedule selects the loop work-sharing policy of RunLoop.
type Schedule int

const (
	// Static assigns each thread a contiguous block of iterations up
	// front (OpenMP schedule(static)).
	Static Schedule = iota
	// Dynamic lets threads pull chunks from a shared queue as they
	// finish (OpenMP schedule(dynamic, chunk)); it evens out imbalance
	// at the cost of contention, narrowing the barrier-arrival spread
	// that makes small teams vulnerable to clock-condition violations.
	Dynamic
)

// RunLoop executes parallel-for regions whose body is an iteration space
// shared among the threads under the given schedule. iterTime returns the
// duration of one iteration. Chunk applies to Dynamic (Static ignores it).
func (tm *Team) RunLoop(regionName string, regions, iterations, chunk int, sched Schedule, iterTime func(iter, region int) float64) (*trace.Trace, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("omp: need at least one iteration, got %d", iterations)
	}
	if chunk < 1 {
		chunk = 1
	}
	n := len(tm.threads)
	// the dequeue cost models the synchronized increment of the shared
	// chunk cursor
	const dequeueCost = 0.05e-6
	// Per-thread load per region: Static as contiguous blocks; Dynamic as
	// greedy list scheduling over chunks — the standard approximation of
	// threads pulling work as they finish.
	loads := func(region int) []float64 {
		out := make([]float64, n)
		switch sched {
		case Static:
			per := (iterations + n - 1) / n
			for th := 0; th < n; th++ {
				lo := th * per
				hi := lo + per
				if hi > iterations {
					hi = iterations
				}
				for i := lo; i < hi; i++ {
					out[th] += iterTime(i, region)
				}
			}
		case Dynamic:
			// greedy list scheduling: each chunk goes to the least
			// loaded thread, the classic dynamic-schedule approximation
			for lo := 0; lo < iterations; lo += chunk {
				hi := lo + chunk
				if hi > iterations {
					hi = iterations
				}
				dur := dequeueCost
				for i := lo; i < hi; i++ {
					dur += iterTime(i, region)
				}
				least := 0
				for th := 1; th < n; th++ {
					if out[th] < out[least] {
						least = th
					}
				}
				out[least] += dur
			}
		}
		return out
	}
	perRegion := make([][]float64, regions)
	for reg := 0; reg < regions; reg++ {
		perRegion[reg] = loads(reg)
	}
	return tm.RunParallelFor(regionName, regions, func(thread, region int) float64 {
		return perRegion[region][thread]
	})
}
