// Package errform defines an analyzer that enforces the decode-error
// discipline PR 5 standardized for the trace and streaming layers.
//
// A trace file that fails to decode is not one kind of failure but two:
// structural damage (ErrBadFormat — the bytes are wrong) and exhausted
// salvage (ErrSalvageBudget — the bytes were wrong too often). Callers
// dispatch on that classification: cmd/tracestat picks its exit code
// with errors.Is, the salvage path decides whether to resync or abort,
// and the CI round-trip test asserts exit 3 on partial output. An error
// born on the decode path that is neither classified nor wrapped breaks
// every one of those dispatches silently — errors.Is sees a leaf error
// and answers false.
//
// The second half of the discipline is context: "bad file format" alone
// is useless against a 2 GB trace. PR 5's convention is that every
// decode-path error carries the byte offset, rank, or offending value
// alongside the classification.
//
// Within decode-path functions (by name: Read*, Decode*, Next*, Parse*,
// Scan*, Resync*, Salvage*, Index*, *Source*, *Header*, *Frame*) of
// internal/trace and internal/stream, the analyzer reports:
//
//   - errors.New(...) calls — the error can never satisfy errors.Is on a
//     sentinel; use or wrap ErrBadFormat / ErrSalvageBudget;
//   - fmt.Errorf with a format string that has no %w verb — the
//     classification (or the underlying error) is dropped at this frame;
//   - fmt.Errorf whose only verb is the %w — classified but context-free;
//     include the byte offset, rank, or offending value.
//
// An error constructed directly as an argument to another call —
// badFormat("header", errors.New("...")) — is exempt: the receiving
// wrapper owns classification and context, and is itself checked when
// its name is on the decode path.
//
// Suppression: a "tsync:rawerr" comment on the flagged line, naming why
// an unclassified or context-free error is correct there (e.g. the
// function validates arguments, not bytes).
package errform

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tsync/internal/lint"
)

const doc = `decode-path errors must wrap a classified sentinel (%w) and carry offset/rank context

In internal/trace and internal/stream decode functions, errors.New and
unwrapped fmt.Errorf break the errors.Is dispatch on ErrBadFormat /
ErrSalvageBudget; a bare "%w" with no further verbs drops the byte
offset and rank a 2 GB trace needs to be debuggable.`

// Analyzer is the errform analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "errform",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// directive is the per-line suppression marker.
const directive = "tsync:rawerr"

// decodeFuncRE matches function names on the decode path.
var decodeFuncRE = regexp.MustCompile(`(?i)(read|decode|parse|next|scan|resync|salvage|index|source|header|frame)`)

// decodePkg reports whether the package carries the discipline.
func decodePkg(path string) bool {
	return lint.PathHasSuffix(path, "internal/trace") || lint.PathHasSuffix(path, "internal/stream")
}

func run(pass *analysis.Pass) (any, error) {
	if !decodePkg(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || lint.IsTestFile(pass, fd.Pos()) {
			return
		}
		if !decodeFuncRE.MatchString(fd.Name.Name) {
			return
		}
		// An error constructed directly as an argument to another call is
		// exempt: the receiving function (er.bad, badFormat, ...) owns
		// classification and context, and its own constructors are
		// checked when it is itself a decode-path function.
		wrapped := map[*ast.CallExpr]bool{}
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					wrapped[inner] = true
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !wrapped[call] {
				checkErrorCall(pass, fd.Name.Name, call)
			}
			return true
		})
	})
	return nil, nil
}

// checkErrorCall applies the three rules to one call expression.
func checkErrorCall(pass *analysis.Pass, fn string, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
	if !ok {
		return
	}
	switch {
	case pn.Imported().Path() == "errors" && sel.Sel.Name == "New":
		if lint.HasLineDirective(pass, call.Pos(), directive) {
			return
		}
		pass.Reportf(call.Pos(), "errors.New on the decode path (%s): callers dispatch with errors.Is on ErrBadFormat/ErrSalvageBudget and will not see this error; wrap a classified sentinel with fmt.Errorf(\"%%w: ...\") or annotate the line with a tsync:rawerr comment", fn)
	case pn.Imported().Path() == "fmt" && sel.Sel.Name == "Errorf":
		checkErrorf(pass, fn, call)
	}
}

// checkErrorf inspects a fmt.Errorf call's literal format string.
func checkErrorf(pass *analysis.Pass, fn string, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return // non-literal formats are the printf analyzer's problem
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	wraps, verbs := countVerbs(format)
	if lint.HasLineDirective(pass, call.Pos(), directive) {
		return
	}
	if wraps == 0 {
		pass.Reportf(call.Pos(), "fmt.Errorf without %%w on the decode path (%s): the classification or underlying error is dropped at this frame, so errors.Is(err, ErrBadFormat) fails upstream; wrap with %%w or annotate the line with a tsync:rawerr comment", fn)
		return
	}
	if verbs == 0 {
		pass.Reportf(call.Pos(), "classified but context-free decode error in %s: %%w alone does not say where; include the byte offset, rank, or offending value, or annotate the line with a tsync:rawerr comment", fn)
	}
}

// countVerbs scans a printf format and returns the number of %w verbs
// and the number of other formatting verbs (%% excluded).
func countVerbs(format string) (wraps, verbs int) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		// scan past flags, width, precision, index
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[j])) {
			j++
		}
		if j >= len(format) {
			break
		}
		switch format[j] {
		case '%':
			// literal percent
		case 'w':
			wraps++
		default:
			verbs++
		}
		i = j
	}
	return wraps, verbs
}
