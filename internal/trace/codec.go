package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary trace format (".etr"):
//
//	magic "ETRC" | version u8
//	machine string | timer string
//	minLatency [4]f64
//	regionCount uvarint | region strings
//	procCount uvarint
//	per proc: rank uvarint | core (3 uvarints) | clock string |
//	          eventCount uvarint | events
//	per event: kind u8 | op u8 | time f64 | true f64 |
//	           region varint | instance varint | partner varint |
//	           tag varint | bytes varint | comm varint | root varint
//
// All integers are varints; floats are IEEE-754 bits little-endian.

const (
	codecMagic   = "ETRC"
	codecVersion = 1
)

// maxEventSize bounds one event's encoding: kind and op bytes, two
// 8-byte floats, and seven varints of at most MaxVarintLen64 bytes.
// The fast codec paths use it to decide when a peeked or scratch buffer
// is guaranteed to hold a whole event.
const maxEventSize = 2 + 16 + 7*binary.MaxVarintLen64

// ErrBadFormat reports a malformed or truncated trace file.
var ErrBadFormat = errors.New("trace: bad file format")

// decodeChunk bounds how many elements Read materializes ahead of the
// bytes that back them (64 Ki events ≈ 3 MiB). Counts in the header are
// attacker-controlled varints: a count must never be trusted with a
// pre-allocation before the corresponding payload has actually been
// decoded, or a 12-byte file claiming 2^30 events would allocate ~48 GiB
// up front. Growing chunkwise keeps memory proportional to the bytes
// consumed, and a truncated or corrupt file fails with ErrBadFormat after
// at most one chunk of over-allocation.
const decodeChunk = 1 << 16

// badFormat tags err with ErrBadFormat unless it already is one; io.EOF
// inside a structure whose header promised more data is a truncation, not
// a clean end of stream.
func badFormat(context string, err error) error {
	if errors.Is(err, ErrBadFormat) {
		return err
	}
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("%w: %s: %v", ErrBadFormat, context, err)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func writeFloat(w *bufio.Writer, f float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	_, err := w.Write(buf[:])
	return err
}

// Write encodes the trace to w in the v1 codec. It returns the number of
// bytes written. It is a thin wrapper over EventWriter, so the bytes are
// identical to streaming the same events incrementally.
func Write(w io.Writer, t *Trace) (int64, error) {
	return WriteOpts(w, t, WriterOptions{})
}

// WriteOpts is Write with an explicit codec version and frame geometry.
func WriteOpts(w io.Writer, t *Trace, o WriterOptions) (int64, error) {
	ew, err := NewEventWriterOpts(w, HeaderOf(t), o)
	if err != nil {
		if ew == nil {
			return 0, err
		}
		return ew.cw.n, err
	}
	for _, p := range t.Procs {
		ph := ProcHeader{Rank: p.Rank, Core: p.Core, Clock: p.Clock, EventCount: len(p.Events)}
		if err := ew.BeginProc(ph); err != nil {
			return ew.cw.n, err
		}
		for i := range p.Events {
			if err := ew.Write(&p.Events[i]); err != nil {
				return ew.cw.n, err
			}
		}
	}
	return ew.cw.n, ew.Close()
}

// appendEvent appends ev's canonical encoding to dst and returns the
// extended slice. It is the single source of truth for event bytes:
// every writer encodes through it (into a reused scratch buffer, so the
// steady-state hot path allocates nothing per event).
func appendEvent(dst []byte, ev *Event) []byte {
	dst = append(dst, byte(ev.Kind), byte(ev.Op))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(ev.Time))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(ev.True))
	for _, v := range [7]int32{ev.Region, ev.Instance, ev.Partner, ev.Tag, ev.Bytes, ev.Comm, ev.Root} {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return dst
}

// decodeEvent decodes one event from the front of buf, returning the
// bytes consumed. ok is false when buf may be too short, a varint is
// malformed, or a field overflows int32 — the caller falls back to the
// reader-based slow path, which classifies the failure exactly. A true
// return consumed the same bytes readEvent would have.
func decodeEvent(buf []byte, ev *Event) (n int, ok bool) {
	if len(buf) < 18 {
		return 0, false
	}
	ev.Kind = Kind(buf[0])
	ev.Op = CollOp(buf[1])
	ev.Time = math.Float64frombits(binary.LittleEndian.Uint64(buf[2:]))
	ev.True = math.Float64frombits(binary.LittleEndian.Uint64(buf[10:]))
	pos := 18
	var fields [7]int32
	for i := range fields {
		v, vn := binary.Varint(buf[pos:])
		if vn <= 0 || v > math.MaxInt32 || v < math.MinInt32 {
			return 0, false
		}
		fields[i] = int32(v)
		pos += vn
	}
	ev.Region, ev.Instance, ev.Partner = fields[0], fields[1], fields[2]
	ev.Tag, ev.Bytes, ev.Comm, ev.Root = fields[3], fields[4], fields[5], fields[6]
	return pos, true
}

// readEventFast decodes one event through a peek at the reader's buffer,
// avoiding the per-field reader calls (and the heap-escaping scratch
// arrays they need) of readEvent. Any shortfall — fewer buffered bytes
// than maxEventSize near EOF with an incomplete event, or a malformed
// varint — falls back to readEvent for bit-identical error behavior.
func readEventFast(r *bufio.Reader, ev *Event) error {
	buf, perr := r.Peek(maxEventSize)
	if perr == nil || len(buf) >= 18 {
		if n, ok := decodeEvent(buf, ev); ok {
			_, err := r.Discard(n)
			return err
		}
	}
	return readEvent(r, ev)
}

func readString(r *bufio.Reader, maxLen uint64) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("%w: string length %d exceeds limit", ErrBadFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readFloat(r *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// Read decodes a trace from r. It is a thin wrapper over EventReader, so
// the accepted inputs and failure modes are identical to decoding the
// same stream incrementally.
func Read(r io.Reader) (*Trace, error) {
	er, err := NewEventReader(r)
	if err != nil {
		return nil, err
	}
	h := er.Header()
	t := &Trace{
		Machine:    h.Machine,
		Timer:      h.Timer,
		Regions:    h.Regions,
		MinLatency: h.MinLatency,
		Procs:      make([]Proc, 0, min(h.ProcCount, decodeChunk)),
	}
	for {
		ph, err := er.NextProc()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		p := Proc{Rank: ph.Rank, Core: ph.Core, Clock: ph.Clock}
		if p.Events, err = readEvents(er, ph.EventCount); err != nil {
			return nil, err
		}
		t.Procs = append(t.Procs, p)
	}
}

// readEvents decodes nEvents events, growing the slice one decodeChunk at
// a time so the allocation never runs ahead of the bytes actually read.
func readEvents(er *EventReader, nEvents int) ([]Event, error) {
	var events []Event
	for remaining := nEvents; remaining > 0; {
		n := min(remaining, decodeChunk)
		start := len(events)
		events = append(events, make([]Event, n)...)
		for j := start; j < len(events); j++ {
			if err := er.Read(&events[j]); err != nil {
				return nil, err
			}
		}
		remaining -= n
	}
	return events, nil
}

func readEvent(r *bufio.Reader, ev *Event) error {
	kind, err := r.ReadByte()
	if err != nil {
		return err
	}
	ev.Kind = Kind(kind)
	op, err := r.ReadByte()
	if err != nil {
		return err
	}
	ev.Op = CollOp(op)
	if ev.Time, err = readFloat(r); err != nil {
		return err
	}
	if ev.True, err = readFloat(r); err != nil {
		return err
	}
	dst := [7]*int32{&ev.Region, &ev.Instance, &ev.Partner, &ev.Tag, &ev.Bytes, &ev.Comm, &ev.Root}
	for fi, p := range dst {
		v, err := binary.ReadVarint(r)
		if err != nil {
			return err
		}
		if v > math.MaxInt32 || v < math.MinInt32 {
			return fmt.Errorf("%w: event field %d value %d overflows int32", ErrBadFormat, fi, v)
		}
		*p = int32(v)
	}
	return nil
}
