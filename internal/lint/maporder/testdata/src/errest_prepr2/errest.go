// Package errest_prepr2 reconstructs the pre-PR-2 shape of
// errest.propagate, the nondeterminism bug this analyzer wave exists to
// catch: the minimum-spanning-tree edge scan ranged directly over the
// fitted-pair map, pair weights tie frequently (equal bound counts), and
// ties broke by randomized iteration order — so the spanning tree, and
// with it every error-estimation correction, differed from run to run.
// The bug shipped and was found by hand; TestHistoricalPrePR2Finding
// proves maporder reports it mechanically.
package errest_prepr2

// line is an affine clock map (the shape of stats.Line).
type line struct {
	Slope, Intercept float64
}

type fitted struct {
	line line
	w    float64
}

func compose(g, f line) line {
	return line{Slope: g.Slope * f.Slope, Intercept: g.Slope*f.Intercept + g.Intercept}
}

// propagate is the pre-PR-2 body: the inner edge scan ranges over the
// fits map while selecting the cheapest edge crossing the reached
// frontier into best/bestW/bestNew — a conditional selection whose
// tie-breaks follow the randomized visit order.
func propagate(n int, fits map[[2]int]fitted) []line {
	toMaster := make([]line, n)
	reached := make([]bool, n)
	toMaster[0] = line{Slope: 1}
	reached[0] = true
	for {
		best := [2]int{-1, -1}
		bestW := 1e308
		var bestNew int
		for key, f := range fits {
			a, b := key[0], key[1]
			if reached[a] == reached[b] {
				continue
			}
			if f.w < bestW {
				bestW = f.w    // want `assignment to "bestW" inside map iteration`
				best = key     // want `assignment to "best" inside map iteration`
				if reached[a] {
					bestNew = b // want `assignment to "bestNew" inside map iteration`
				} else {
					bestNew = a // want `assignment to "bestNew" inside map iteration`
				}
			}
		}
		if best[0] < 0 {
			break
		}
		toMaster[bestNew] = compose(toMaster[best[0]], fits[best].line)
		reached[bestNew] = true
	}
	return toMaster
}
