// Package maporder defines an analyzer that flags iteration over a map
// whose visit order can leak into the program's output.
//
// Go randomizes map iteration order on purpose, so any value that depends
// on the order in which a `range m` loop visits its entries differs from
// run to run. In this repository that is not a style nit but a
// correctness bug: every correction pipeline must be a pure function of
// its configuration, bit for bit, or the paper's tables stop being
// checkable and replay debugging (à la replay clocks) is impossible. The
// exact shape has shipped before — errest.propagate ranged over its
// fitted-pair map while selecting the cheapest spanning-tree edge, ties
// broke by iteration order, and every error-estimation correction was
// nondeterministic until PR 2 rewrote the scan over sorted keys.
//
// Inside the body of a range over a map the analyzer reports:
//
//   - plain assignment to a variable declared outside the loop (the
//     errest shape: last-write-wins and conditional selection are both
//     visit-order-dependent);
//   - op-assignment to an outside variable of non-integer type
//     (float accumulation is non-associative, string building is
//     order-dependent; integer counters and sums are commutative and
//     exempt, as is ++/--);
//   - writes through an index expression whose index does not mention a
//     loop variable (compaction by an outer counter reorders entries;
//     writes keyed by the iteration key, like out[k] = f(v), produce the
//     same map or slice contents regardless of order and are exempt);
//   - calls that emit into an outside sink: methods named
//     Write*/Encode*/Append*/Push* on receivers declared outside, and
//     fmt.Fprint* with an outside writer (bytes fed to a writer,
//     checksum, or encoder in map order are different bytes every run);
//   - return statements that mention a loop variable (which entry exits
//     the loop first is itself visit-order-dependent).
//
// The one sanctioned iteration idiom needs no annotation: collecting the
// keys into a slice that is sorted immediately after the loop
// (`keys = append(keys, k)` … `sort.Slice(keys, …)`) is recognized and
// exempt — it is precisely the PR 2 fix.
//
// Genuinely order-independent loops (a pure min/max reduction, an
// any-element-will-do error) are suppressed with a "tsync:unordered"
// comment on the flagged line, or on the range statement's line to cover
// the whole loop; the comment must say why order cannot matter.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tsync/internal/lint"
)

const doc = `flag map iteration whose visit order can leak into output

Map iteration order is randomized; loops that write outside state,
feed writers/checksums, or return early based on the visited entry make
results differ run to run. Iterate sorted keys, or annotate the line
with a tsync:unordered comment saying why order cannot matter.`

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// directive is the per-line suppression marker.
const directive = "tsync:unordered"

// sinkPrefixes are method-name prefixes that emit into their receiver:
// writers, encoders, checksums, accumulating containers.
var sinkPrefixes = []string{"Write", "Encode", "Append", "Push"}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rs := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return
		}
		if lint.HasLineDirective(pass, rs.Pos(), directive) {
			return
		}
		c := &checker{pass: pass, rs: rs, loopVars: loopVars(pass, rs)}
		c.walk(rs.Body)
	})
	return nil, nil
}

// checker carries the state for one map-range loop.
type checker struct {
	pass     *analysis.Pass
	rs       *ast.RangeStmt
	loopVars map[*types.Var]bool
}

// loopVars collects the key/value iteration variables of rs.
func loopVars(pass *analysis.Pass, rs *ast.RangeStmt) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
			vars[v] = true
		}
	}
	return vars
}

// walk visits the loop body. Nested function literals are not entered:
// a closure built inside the loop runs later, under its caller's
// ordering discipline, and deferred/spawned work is the locked
// analyzer's concern.
func (c *checker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				c.checkWrite(n.Tok, lhs, rhs)
			}
		case *ast.CallExpr:
			c.checkSinkCall(n)
		case *ast.ReturnStmt:
			c.checkReturn(n)
		}
		return true
	})
}

// checkWrite reports an assignment inside the loop whose target is
// declared outside it and whose shape makes the final value depend on
// visit order.
func (c *checker) checkWrite(tok token.Token, lhs, rhs ast.Expr) {
	v, root := c.outsideTarget(lhs)
	if v == nil {
		return
	}
	if lint.HasLineDirective(c.pass, lhs.Pos(), directive) {
		return
	}
	// Key-addressed writes (out[k] = ..., out[k] += ...) land each entry
	// in its own cell: the aggregate contents are order-independent.
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && c.mentionsLoopVar(idx.Index) {
		return
	}
	if tok == token.ASSIGN {
		// The collect-then-sort idiom: s = append(s, k) with a sort of s
		// right after the loop is the sanctioned fix, not a finding.
		if c.isSortedAppend(lhs, rhs) {
			return
		}
		c.pass.Reportf(lhs.Pos(), "assignment to %q inside map iteration: visit order is randomized, so last-write-wins and tie-breaks are nondeterministic; iterate sorted keys or annotate the line with a tsync:unordered comment", root.Name)
		return
	}
	// Op-assign: integer reductions (+=, |=, ^=, ...) are commutative;
	// everything else (float accumulation, string building) is not.
	if t := c.pass.TypesInfo.TypeOf(lhs); t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return
		}
	}
	c.pass.Reportf(lhs.Pos(), "%s to %q inside map iteration: the reduction is order-sensitive (float addition is non-associative, string building is ordered); iterate sorted keys or annotate the line with a tsync:unordered comment", tok, root.Name)
}

// outsideTarget resolves lhs to (variable, root identifier) when its root
// is a variable declared outside the range statement; otherwise nils.
func (c *checker) outsideTarget(lhs ast.Expr) (*types.Var, *ast.Ident) {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return nil, nil
	}
	v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || c.declaredWithin(v) {
		return nil, nil
	}
	return v, id
}

// declaredWithin reports whether v is declared inside the range statement
// (loop variables and body locals are loop-private).
func (c *checker) declaredWithin(v *types.Var) bool {
	return v.Pos() >= c.rs.Pos() && v.Pos() < c.rs.End()
}

// mentionsLoopVar reports whether e's subtree uses a loop variable.
func (c *checker) mentionsLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && c.loopVars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSortedAppend recognizes `s = append(s, ...)` — where s may be a
// selector path like f.offs — when s is sorted in a statement following
// the range loop in the same enclosing block.
func (c *checker) isSortedAppend(lhs, rhs ast.Expr) bool {
	id := rootIdent(lhs)
	if id == nil || rhs == nil {
		return false
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if types.ExprString(ast.Unparen(call.Args[0])) != types.ExprString(ast.Unparen(lhs)) {
		return false
	}
	target := c.pass.TypesInfo.ObjectOf(id)
	f := lint.FileOf(c.pass, c.rs.Pos())
	if f == nil {
		return false
	}
	return sortFollowsLoop(c.pass, f, c.rs, target)
}

// sortFollowsLoop reports whether, in the block that contains rs, some
// later statement sorts target (sort.Slice/Strings/Ints/..., sort.Sort,
// or slices.Sort*).
func sortFollowsLoop(pass *analysis.Pass, f *ast.File, rs *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if ok && !found {
			for i, st := range block.List {
				if st != ast.Stmt(rs) {
					continue
				}
				for _, later := range block.List[i+1:] {
					if stmtSorts(pass, later, target) {
						found = true
						return false
					}
				}
			}
		}
		return !found
	})
	return found
}

// stmtSorts reports whether st is a call to a sort function whose first
// argument is rooted at target.
func stmtSorts(pass *analysis.Pass, st ast.Stmt, target types.Object) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort":
		// every sort.* entry point takes the data first
	case "slices":
		if !strings.HasPrefix(sel.Sel.Name, "Sort") {
			return false
		}
	default:
		return false
	}
	arg := rootIdent(call.Args[0])
	return arg != nil && pass.TypesInfo.ObjectOf(arg) == target
}

// checkSinkCall reports calls that emit bytes or elements into a sink
// declared outside the loop.
func (c *checker) checkSinkCall(call *ast.CallExpr) {
	// fmt.Fprint*(w, ...) with an outside writer
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkg, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[pkg].(*types.PkgName); ok {
				if pn.Imported().Path() == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
					if v, root := c.outsideTarget(call.Args[0]); v != nil && !lint.HasLineDirective(c.pass, call.Pos(), directive) {
						c.pass.Reportf(call.Pos(), "fmt.%s to %q inside map iteration: bytes are written in randomized visit order; iterate sorted keys or annotate the line with a tsync:unordered comment", sel.Sel.Name, root.Name)
					}
					return
				}
			}
		}
		// method call on an outside receiver with an emitting name
		for _, p := range sinkPrefixes {
			if strings.HasPrefix(sel.Sel.Name, p) {
				if v, root := c.outsideTarget(sel.X); v != nil && !lint.HasLineDirective(c.pass, call.Pos(), directive) {
					c.pass.Reportf(call.Pos(), "%s.%s inside map iteration: the sink observes entries in randomized visit order; iterate sorted keys or annotate the line with a tsync:unordered comment", root.Name, sel.Sel.Name)
				}
				return
			}
		}
	}
}

// checkReturn reports early returns whose value mentions a loop variable:
// which entry triggers the return is itself order-dependent.
func (c *checker) checkReturn(ret *ast.ReturnStmt) {
	for _, res := range ret.Results {
		if c.mentionsLoopVar(res) {
			if lint.HasLineDirective(c.pass, ret.Pos(), directive) {
				return
			}
			c.pass.Reportf(ret.Pos(), "return mentions map iteration variable: which entry is returned depends on randomized visit order; iterate sorted keys or annotate the line with a tsync:unordered comment")
			return
		}
	}
}

// rootIdent unwraps selectors, indexing, derefs and parens down to the
// base identifier of an expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
