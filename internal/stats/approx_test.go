package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		name    string
		a, b    float64
		tol     float64
		want    bool
	}{
		{"exact", 1.5, 1.5, 0, true},
		{"within absolute tol near zero", 1e-12, -1e-12, 1e-9, true},
		{"outside absolute tol near zero", 2e-9, 0, 1e-9, false},
		{"within relative tol for large timestamps", 1e9, 1e9 + 0.5, 1e-9, true},
		{"outside relative tol for large timestamps", 1e9, 1e9 + 10, 1e-9, false},
		{"microsecond apart at tol 1us", 1.0, 1.0 + 1e-6, 1e-6, true},
		{"millisecond apart at tol 1us", 1.0, 1.001, 1e-6, false},
		{"negative values", -3.25, -3.25 - 1e-8, 1e-6, true},
		{"zero tol is exact", 1.0, 1.0 + 1e-15, 0, false},
		{"nan left", nan, 1, 1, false},
		{"nan right", 1, nan, 1, false},
		{"nan both", nan, nan, 1, false},
		{"equal infinities", inf, inf, 1e-9, true},
		{"opposite infinities", inf, -inf, 1e-9, false},
		{"inf vs finite", inf, 1e300, 1e-3, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("%s: ApproxEqual(%v, %v, %v) = %v, want %v", c.name, c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestApproxEqualSymmetric(t *testing.T) {
	pairs := [][2]float64{{1, 1 + 1e-7}, {1e9, 1e9 + 0.1}, {0, 1e-12}, {-5, -5.0000001}}
	for _, p := range pairs {
		for _, tol := range []float64{0, 1e-12, 1e-9, 1e-6, 1e-3} {
			if ApproxEqual(p[0], p[1], tol) != ApproxEqual(p[1], p[0], tol) {
				t.Errorf("ApproxEqual not symmetric for %v tol %v", p, tol)
			}
		}
	}
}
