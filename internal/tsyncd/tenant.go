package tsyncd

// Per-tenant resource accounting, generalized from faultinject's
// QuotaWriter/FS: every byte a tenant uploads, every event its traces
// index, and every byte its sessions spill charges a shared budget, and
// exhaustion surfaces as a classified protocol error instead of an
// unbounded allocation. Budgets are held while sessions are active and
// released when they end, so N concurrent sessions of one tenant share
// one budget rather than multiplying it.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"tsync/internal/stream"
)

// Quota bounds one tenant's concurrent resource use. Zero fields are
// unlimited, so the zero Quota admits everything.
type Quota struct {
	// MaxBytes caps the trace bytes buffered across the tenant's active
	// sessions.
	MaxBytes int64
	// MaxEvents caps the indexed event count of any single trace.
	MaxEvents int64
	// MaxSpillBytes caps reorder-window spill written across the
	// tenant's active sessions.
	MaxSpillBytes int64
}

// tenant tracks one tenant's in-use resources against its quota.
type tenant struct {
	name string
	q    Quota

	mu    sync.Mutex
	bytes int64
	spill int64
}

// chargeBytes reserves n upload bytes, or reports quota-bytes.
func (t *tenant) chargeBytes(n int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.q.MaxBytes > 0 && t.bytes+n > t.q.MaxBytes {
		return errf(CodeQuotaBytes, "tenant %q: %d+%d bytes exceeds quota %d", t.name, t.bytes, n, t.q.MaxBytes)
	}
	t.bytes += n
	return nil
}

// chargeSpill reserves n spill bytes, or reports quota-spill.
func (t *tenant) chargeSpill(n int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.q.MaxSpillBytes > 0 && t.spill+n > t.q.MaxSpillBytes {
		return errf(CodeQuotaSpill, "tenant %q: %d+%d spill bytes exceeds quota %d", t.name, t.spill, n, t.q.MaxSpillBytes)
	}
	t.spill += n
	return nil
}

// checkEvents validates a trace's event count against the quota. Event
// budgets are per trace, not cumulative: the cost they bound (one
// session's working set) ends with the session.
func (t *tenant) checkEvents(n int64) error {
	if t.q.MaxEvents > 0 && n > t.q.MaxEvents {
		return errf(CodeQuotaEvents, "tenant %q: trace holds %d events, quota %d", t.name, n, t.q.MaxEvents)
	}
	return nil
}

// release returns reserved bytes to the budget at session end.
func (t *tenant) release(bytes, spill int64) {
	t.mu.Lock()
	t.bytes -= bytes
	t.spill -= spill
	t.mu.Unlock()
}

// quotaFS decorates a stream.SpillFS so every spilled byte charges the
// tenant budget. It tracks its own total so the session can release
// exactly what it reserved.
type quotaFS struct {
	fs stream.SpillFS
	tn *tenant

	mu    sync.Mutex
	total int64
}

func (q *quotaFS) Create(name string) (io.WriteCloser, error) {
	w, err := q.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &quotaSpillWriter{w: w, q: q}, nil
}

func (q *quotaFS) Open(name string) (io.ReadCloser, error) { return q.fs.Open(name) }

// spilled reports the bytes this session charged, for release.
func (q *quotaFS) spilled() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

type quotaSpillWriter struct {
	w io.WriteCloser
	q *quotaFS
}

func (w *quotaSpillWriter) Write(p []byte) (int, error) {
	if err := w.q.tn.chargeSpill(int64(len(p))); err != nil {
		return 0, err
	}
	w.q.mu.Lock()
	w.q.total += int64(len(p))
	w.q.mu.Unlock()
	return w.w.Write(p)
}

func (w *quotaSpillWriter) Close() error { return w.w.Close() }

// osSpillFS is the default per-session spill backing: plain files under
// one temp directory the session removes when it ends. It mirrors
// stream's internal default, but lives here so the quota decorator can
// wrap it — stream only skips cleanup for caller-provided FSes, so the
// session owns the directory's lifetime.
type osSpillFS struct{ dir string }

func (fs *osSpillFS) Create(name string) (io.WriteCloser, error) {
	return os.Create(filepath.Join(fs.dir, name))
}

func (fs *osSpillFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(filepath.Join(fs.dir, name))
}

// newSessionSpill builds one session's spill FS: base when configured,
// otherwise a fresh OS temp directory. Either way the result charges tn
// per byte, and cleanup removes whatever the session owned — aborted
// runs must leave the host spill-clean.
func newSessionSpill(base stream.SpillFS, tn *tenant) (*quotaFS, func(), error) {
	cleanup := func() {}
	if base == nil {
		dir, err := os.MkdirTemp("", "tsyncd-spill-")
		if err != nil {
			return nil, nil, err
		}
		base = &osSpillFS{dir: dir}
		cleanup = func() { os.RemoveAll(dir) }
	}
	return &quotaFS{fs: base, tn: tn}, cleanup, nil
}

// tenantFor returns the accounting record for name, creating it with
// the configured (or default) quota on first use.
func (s *Server) tenantFor(name string) *tenant {
	if name == "" {
		name = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t
	}
	q, ok := s.cfg.Tenants[name]
	if !ok {
		q = s.cfg.DefaultQuota
	}
	t := &tenant{name: name, q: q}
	s.tenants[name] = t
	return t
}

// String renders a quota for logs.
func (q Quota) String() string {
	return fmt.Sprintf("bytes=%d events=%d spill=%d", q.MaxBytes, q.MaxEvents, q.MaxSpillBytes)
}
