package faultinject

// The network faults must be exact: a reset fires at the configured
// byte, short writes deliver bit-identical bytes, and a corrupting
// writer flips exactly the scheduled offsets. net.Pipe gives a fully
// synchronous in-memory conn, so every test is timer-free.

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"tsync/internal/xrand"
)

// drain reads everything the peer delivers until EOF or error.
func drain(c net.Conn) ([]byte, error) {
	var got bytes.Buffer
	_, err := io.Copy(&got, c)
	return got.Bytes(), err
}

func TestFaultConnTransparent(t *testing.T) {
	a, b := net.Pipe()
	fc := &FaultConn{Conn: a}
	payload := bytes.Repeat([]byte("transparent?"), 100)

	done := make(chan []byte)
	go func() {
		got, _ := drain(b)
		done <- got
	}()
	n, err := fc.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = (%d, %v), want (%d, nil)", n, err, len(payload))
	}
	fc.Close()
	if got := <-done; !bytes.Equal(got, payload) {
		t.Fatalf("peer received %d bytes, want the %d-byte payload intact", len(got), len(payload))
	}
}

func TestFaultConnShortWritesDeliverIdenticalBytes(t *testing.T) {
	a, b := net.Pipe()
	fc := &FaultConn{Conn: a, ShortWrites: xrand.NewSource(7), ShortMax: 5}
	payload := make([]byte, 4096)
	src := xrand.NewSource(99)
	for i := range payload {
		payload[i] = byte(src.Intn(256))
	}

	done := make(chan []byte)
	go func() {
		got, _ := drain(b)
		done <- got
	}()
	n, err := fc.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = (%d, %v), want (%d, nil)", n, err, len(payload))
	}
	fc.Close()
	if got := <-done; !bytes.Equal(got, payload) {
		t.Fatal("short-chunked delivery altered the byte stream")
	}
}

func TestFaultConnWriteReset(t *testing.T) {
	const cut = 100
	a, b := net.Pipe()
	fc := &FaultConn{Conn: a, WriteResetAfter: cut}
	payload := bytes.Repeat([]byte{0xAB}, 300)

	type recv struct {
		got []byte
		err error
	}
	done := make(chan recv)
	go func() {
		got, err := drain(b)
		done <- recv{got, err}
	}()
	n, err := fc.Write(payload)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("Write past the cut: got %v, want ErrReset", err)
	}
	if n != cut {
		t.Fatalf("Write delivered %d bytes before the reset, want exactly %d", n, cut)
	}
	r := <-done
	if len(r.got) != cut || !bytes.Equal(r.got, payload[:cut]) {
		t.Fatalf("peer received %d bytes, want the first %d intact", len(r.got), cut)
	}
	// The conn is dead: every later operation fails the same way.
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrReset) {
		t.Fatalf("write on dead conn: got %v, want ErrReset", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Fatalf("read on dead conn: got %v, want ErrReset", err)
	}
}

// TestFaultConnWriteResetExactBoundary: a write ending exactly on the
// threshold delivers fully; the next write fails immediately.
func TestFaultConnWriteResetExactBoundary(t *testing.T) {
	a, b := net.Pipe()
	fc := &FaultConn{Conn: a, WriteResetAfter: 64}

	done := make(chan []byte)
	go func() {
		got, _ := drain(b)
		done <- got
	}()
	if n, err := fc.Write(make([]byte, 64)); err != nil || n != 64 {
		t.Fatalf("boundary write = (%d, %v), want (64, nil)", n, err)
	}
	n, err := fc.Write([]byte{1, 2, 3})
	if !errors.Is(err, ErrReset) || n != 0 {
		t.Fatalf("first write past the boundary = (%d, %v), want (0, ErrReset)", n, err)
	}
	if got := <-done; len(got) != 64 {
		t.Fatalf("peer received %d bytes, want 64", len(got))
	}
}

func TestFaultConnReadReset(t *testing.T) {
	const cut = 50
	a, b := net.Pipe()
	fc := &FaultConn{Conn: a, ReadResetAfter: cut}
	payload := bytes.Repeat([]byte{0xCD}, 200)

	go func() {
		b.Write(payload)
		b.Close()
	}()
	got, err := drain(fc)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("read past the cut: got %v, want ErrReset", err)
	}
	if !bytes.Equal(got, payload[:cut]) {
		t.Fatalf("read %d bytes before the reset, want the first %d intact", len(got), cut)
	}
}

func TestCorruptWriter(t *testing.T) {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	fl := NewFlips(0xF00D, int64(len(payload)), 10)

	var direct bytes.Buffer
	cw := &CorruptWriter{W: &direct, F: fl}
	// Write in two uneven pieces: offsets must be tracked across calls.
	if _, err := cw.Write(payload[:100]); err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Write(payload[100:]); err != nil {
		t.Fatal(err)
	}

	// Reference: the same flips applied at rest.
	want := make([]byte, len(payload))
	copy(want, payload)
	fl.Apply(want, 0)
	if !bytes.Equal(direct.Bytes(), want) {
		t.Fatal("in-flight corruption differs from the at-rest reference")
	}
	if bytes.Equal(direct.Bytes(), payload) {
		t.Fatal("CorruptWriter changed nothing")
	}
}
