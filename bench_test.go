// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index), plus ablations of the
// design choices DESIGN.md calls out. Each benchmark regenerates its
// artifact through the same experiment drivers the cmd/ binaries use and
// reports the paper-relevant quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Absolute runtimes measure the
// simulator, not the original testbeds; the custom metrics carry the
// reproduced results (deviations in µs, violation percentages).
package tsync

import (
	"bytes"
	"io"
	"sort"
	"testing"

	"tsync/internal/analysis"
	"tsync/internal/apps"
	"tsync/internal/clc"
	"tsync/internal/clock"
	"tsync/internal/core"
	"tsync/internal/errest"
	"tsync/internal/experiments"
	"tsync/internal/interp"
	"tsync/internal/measure"
	"tsync/internal/mpi"
	"tsync/internal/render"
	"tsync/internal/stream"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// BenchmarkTable1Pinning regenerates the Table I process placements.
func BenchmarkTable1Pinning(b *testing.B) {
	m := topology.Xeon()
	for i := 0; i < b.N; i++ {
		if _, err := topology.InterNode(m, 4); err != nil {
			b.Fatal(err)
		}
		if _, err := topology.InterChip(m, 2); err != nil {
			b.Fatal(err)
		}
		if _, err := topology.InterCore(m, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Latencies regenerates the Table II latency measurements
// on the Xeon cluster and reports the inter-node mean in µs (paper: 4.29).
func BenchmarkTable2Latencies(b *testing.B) {
	var internode float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LatencyStudy(topology.Xeon(), clock.TSC, 500, 7)
		if err != nil {
			b.Fatal(err)
		}
		internode = rows[0].Result.Mean
	}
	b.ReportMetric(internode*1e6, "internode_µs")
}

// BenchmarkFig3Timeline regenerates the Fig. 3 time-line of a violated
// OpenMP barrier.
func BenchmarkFig3Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.OMPStudy(experiments.OMPStudyConfig{
			Machine: topology.Itanium(), Timer: clock.TSC,
			Threads: 4, Regions: 50, Reps: 1, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		reg, inst, ok := render.FirstViolatedRegion(res.Trace)
		if !ok {
			b.Fatal("no violated region at 4 threads")
		}
		if _, err := render.POMPTimeline(res.Trace, reg, inst, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// clockStudyBench runs one deviation panel and reports the maximum
// deviation in µs.
func clockStudyBench(b *testing.B, cfg experiments.ClockStudyConfig) {
	b.Helper()
	var max float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ClockStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		max = res.Series.MaxAbsDeviation()
	}
	b.ReportMetric(max*1e6, "maxdev_µs")
}

// BenchmarkFig4aMPIWtime: MPI_Wtime deviations, 300 s, alignment only.
func BenchmarkFig4aMPIWtime(b *testing.B) {
	cfg, err := experiments.Fig4Config("a", 42)
	if err != nil {
		b.Fatal(err)
	}
	clockStudyBench(b, cfg)
}

// BenchmarkFig4bGettimeofday: gettimeofday deviations, 1800 s.
func BenchmarkFig4bGettimeofday(b *testing.B) {
	cfg, err := experiments.Fig4Config("b", 42)
	if err != nil {
		b.Fatal(err)
	}
	clockStudyBench(b, cfg)
}

// BenchmarkFig4cTSC: TSC deviations, 3600 s, alignment only.
func BenchmarkFig4cTSC(b *testing.B) {
	cfg, err := experiments.Fig4Config("c", 42)
	if err != nil {
		b.Fatal(err)
	}
	clockStudyBench(b, cfg)
}

// BenchmarkFig5aXeonTSC: Xeon TSC after interpolation, 3600 s.
func BenchmarkFig5aXeonTSC(b *testing.B) {
	cfg, err := experiments.Fig5Config("a", 42)
	if err != nil {
		b.Fatal(err)
	}
	clockStudyBench(b, cfg)
}

// BenchmarkFig5bPowerPCTB: PowerPC TB after interpolation, 3600 s.
func BenchmarkFig5bPowerPCTB(b *testing.B) {
	cfg, err := experiments.Fig5Config("b", 42)
	if err != nil {
		b.Fatal(err)
	}
	clockStudyBench(b, cfg)
}

// BenchmarkFig5cOpteronGTOD: Opteron gettimeofday after interpolation.
func BenchmarkFig5cOpteronGTOD(b *testing.B) {
	cfg, err := experiments.Fig5Config("c", 42)
	if err != nil {
		b.Fatal(err)
	}
	clockStudyBench(b, cfg)
}

// BenchmarkFig6ShortRun: Xeon TSC after interpolation over 300 s; the
// deviations slightly exceed the half-latency bound.
func BenchmarkFig6ShortRun(b *testing.B) {
	clockStudyBench(b, experiments.Fig6Config(1))
}

// appBench runs the Fig. 7 census (one repetition, reduced scale keeps a
// benchmark iteration around a second) and reports the reversed-message
// percentage.
func appBench(b *testing.B, app experiments.AppKind) {
	b.Helper()
	var pct float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AppViolations(experiments.AppViolationsConfig{
			App: app, Machine: topology.Xeon(), Timer: clock.TSC,
			Ranks: 32, Reps: 1, Seed: 11, Scale: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		pct = res.PctReversed
	}
	b.ReportMetric(pct, "%reversed")
}

// BenchmarkFig7POP: reversed messages in the POP-like trace.
func BenchmarkFig7POP(b *testing.B) { appBench(b, experiments.AppPOP) }

// BenchmarkFig7SMG: reversed messages in the SMG2000-like trace.
func BenchmarkFig7SMG(b *testing.B) { appBench(b, experiments.AppSMG) }

// BenchmarkFig8OMPRegions: POMP violations across thread counts; reports
// the 4-thread any-violation percentage (paper: 83 %).
func BenchmarkFig8OMPRegions(b *testing.B) {
	var pct4 float64
	for i := 0; i < b.N; i++ {
		for _, threads := range []int{4, 8, 12, 16} {
			res, err := experiments.OMPStudy(experiments.OMPStudyConfig{
				Machine: topology.Itanium(), Timer: clock.TSC,
				Threads: threads, Regions: 100, Reps: 3, Seed: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			if threads == 4 {
				pct4 = res.PctAny
			}
		}
	}
	b.ReportMetric(pct4, "%violated@4")
}

// BenchmarkIntraNodeNoise: deviations between co-located Xeon clocks
// (§IV end); reports the maximum in µs (paper: ~0.1).
func BenchmarkIntraNodeNoise(b *testing.B) {
	m := topology.Xeon()
	pin, err := topology.InterChip(m, 2)
	if err != nil {
		b.Fatal(err)
	}
	var max float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ClockStudy(experiments.ClockStudyConfig{
			Machine: m, Timer: clock.TSC, Procs: 2, Pinning: pin,
			Duration: 300, Interval: 1, Correction: experiments.CorrectAlign,
			Seed: uint64(i) + 2, Measured: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		max = res.Series.MaxAbsDeviation()
	}
	b.ReportMetric(max*1e6, "maxdev_µs")
}

// benchTrace builds one raw POP-like measurement reused by the correction
// benchmarks.
func benchTrace(b *testing.B) (*trace.Trace, []measure.Offset, []measure.Offset) {
	b.Helper()
	m := topology.Xeon()
	pin, err := topology.Scheduled(m, 16, xrand.NewSource(9))
	if err != nil {
		b.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	cfg := apps.POPConfig{
		Px: 4, Py: 4, Iterations: 120, TraceStart: 40, TraceEnd: 80,
		StepTime: 1.0, Imbalance: 0.05, HaloBytes: 4096, AllreduceEvery: 1, Seed: 9,
	}
	body := apps.POP(cfg)
	var init, fin []measure.Offset
	var inner error
	if err := w.Run(func(r *mpi.Rank) {
		i1, err := measure.Offsets(r, 20)
		if err != nil {
			inner = err
			return
		}
		body(r)
		f1, err := measure.Offsets(r, 20)
		if err != nil {
			inner = err
			return
		}
		if r.Rank() == 0 {
			init, fin = i1, f1
		}
	}); err != nil {
		b.Fatal(err)
	}
	if inner != nil {
		b.Fatal(inner)
	}
	return w.Trace(), init, fin
}

// BenchmarkCLCCorrection: the recommended interp+CLC pipeline (Section V);
// reports violations removed per run.
func BenchmarkCLCCorrection(b *testing.B) {
	raw, init, fin := benchTrace(b)
	b.ResetTimer()
	var removed int
	for i := 0; i < b.N; i++ {
		res, err := core.Recommended().Run(raw, init, fin)
		if err != nil {
			b.Fatal(err)
		}
		removed = res.CLCReport.ViolationsBefore - res.CLCReport.ViolationsAfter
	}
	b.ReportMetric(float64(removed), "violations_removed")
}

// BenchmarkErrEstBaselines: the three Section V error-estimation methods.
func BenchmarkErrEstBaselines(b *testing.B) {
	raw, _, _ := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range []errest.Method{errest.Regression, errest.ConvexHull, errest.MinMax} {
			if _, err := errest.Estimate(raw, m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationCLCSequential: sequential vs the default parallel
// replay (compare with BenchmarkCLCCorrection).
func BenchmarkAblationCLCSequential(b *testing.B) {
	raw, init, fin := benchTrace(b)
	corr, err := interp.Linear(init, fin)
	if err != nil {
		b.Fatal(err)
	}
	pre := corr.Apply(raw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := clc.Correct(pre, clc.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoBackwardAmortization: CLC without backward
// amortization — faster but with abrupt jumps before corrected receives;
// reports the mean interval distortion in µs for comparison.
func BenchmarkAblationNoBackwardAmortization(b *testing.B) {
	raw, init, fin := benchTrace(b)
	corr, err := interp.Linear(init, fin)
	if err != nil {
		b.Fatal(err)
	}
	pre := corr.Apply(raw)
	opts := clc.DefaultOptions()
	opts.BackwardWindow = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := clc.Correct(pre, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPiecewiseInterp: the Doleschal-style piecewise
// interpolation extension over three offset measurements.
func BenchmarkAblationPiecewiseInterp(b *testing.B) {
	_, init, fin := benchTrace(b)
	// synthesize a mid-run measurement halfway between the endpoints
	mid := make([]measure.Offset, len(init))
	for i := range mid {
		mid[i] = measure.Offset{
			Rank:       i,
			WorkerTime: (init[i].WorkerTime + fin[i].WorkerTime) / 2,
			Offset:     (init[i].Offset + fin[i].Offset) / 2,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Piecewise(init, mid, fin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlobalClockBaseline: the Blue Gene-style globally accessible
// hardware clock (Section II) — tracing with it needs no correction at
// all; reports the violations in its raw trace (expected: 0).
func BenchmarkGlobalClockBaseline(b *testing.B) {
	m := topology.Xeon()
	pin, err := topology.InterNode(m, 8)
	if err != nil {
		b.Fatal(err)
	}
	var violations int
	for i := 0; i < b.N; i++ {
		w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.GlobalHW, Pinning: pin, Seed: uint64(i), Tracing: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(func(r *mpi.Rank) {
			n := r.Size()
			for k := 0; k < 50; k++ {
				r.Send((r.Rank()+1)%n, k, 64, nil)
				r.Recv((r.Rank()-1+n)%n, k)
				r.Compute(10)
			}
		}); err != nil {
			b.Fatal(err)
		}
		v, err := clc.Violations(w.Trace(), 1.0)
		if err != nil {
			b.Fatal(err)
		}
		violations = v
	}
	b.ReportMetric(float64(violations), "violations")
}

// BenchmarkWaitStateImpact: the Section III "false conclusions" extension —
// how far the Late Sender analysis is off before and after correction;
// reports the post-correction relative error in percent.
func BenchmarkWaitStateImpact(b *testing.B) {
	raw, init, fin := benchTrace(b)
	b.ResetTimer()
	var errPct float64
	for i := 0; i < b.N; i++ {
		impact, err := experiments.WaitStateStudy(raw, init, fin)
		if err != nil {
			b.Fatal(err)
		}
		errPct = impact.CorrectedErrPct
	}
	b.ReportMetric(errPct, "%wait_err_after_clc")
}

// BenchmarkAblationPiecewiseStudy: piecewise interpolation with mid-run
// measurements vs. the two-point Eq. 3 line, on the NTP-disciplined system
// clock; reports the piecewise residual in µs.
func BenchmarkAblationPiecewiseStudy(b *testing.B) {
	cfg := experiments.ClockStudyConfig{
		Machine: topology.Xeon(), Timer: clock.Gettimeofday,
		Procs: 3, Duration: 1200, Interval: 10, Seed: 8,
		Correction: experiments.CorrectPiecewise, MidMeasurements: 7,
	}
	var max float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ClockStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		max = res.Series.MaxAbsDeviation()
	}
	b.ReportMetric(max*1e6, "maxdev_µs")
}

// BenchmarkSharedMemoryCLCExtension: the POMP-aware CLC closing the
// paper's stated limitation; reports remaining violated regions (expected
// 0).
func BenchmarkSharedMemoryCLCExtension(b *testing.B) {
	res, err := experiments.OMPStudy(experiments.OMPStudyConfig{
		Machine: topology.Itanium(), Timer: clock.TSC,
		Threads: 4, Regions: 100, Reps: 1, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	opts := clc.DefaultOptions()
	opts.SharedMemory = true
	b.ResetTimer()
	var remaining int
	for i := 0; i < b.N; i++ {
		corrected, _, err := clc.Correct(res.Trace, opts)
		if err != nil {
			b.Fatal(err)
		}
		census, err := analysis.POMPCensusOf(corrected)
		if err != nil {
			b.Fatal(err)
		}
		remaining = census.Any
	}
	b.ReportMetric(float64(remaining), "violated_regions")
}

// BenchmarkAblationWindowedErrest: windowed vs single-line error
// estimation (extension of the Section V baselines).
func BenchmarkAblationWindowedErrest(b *testing.B) {
	raw, _, _ := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := errest.EstimateWindowed(raw, errest.Regression, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDomainCLC: the synchronized-clock-domain extension on a
// two-node trace, domains grouping ranks per node.
func BenchmarkAblationDomainCLC(b *testing.B) {
	raw, init, fin := benchTrace(b)
	corr, err := interp.Linear(init, fin)
	if err != nil {
		b.Fatal(err)
	}
	pre := corr.Apply(raw)
	// group ranks by node, domains in ascending node order so the
	// benchmark corrects an identical input every run
	byNode := map[int][]int{}
	var nodes []int
	for rank, p := range pre.Procs {
		if _, ok := byNode[p.Core.Node]; !ok {
			nodes = append(nodes, p.Core.Node)
		}
		byNode[p.Core.Node] = append(byNode[p.Core.Node], rank)
	}
	sort.Ints(nodes)
	opts := clc.DefaultOptions()
	for _, node := range nodes {
		opts.Domains = append(opts.Domains, byNode[node])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := clc.Correct(pre, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamPipeline: the full streaming correction engine
// (interp + CLC + amortization + encode) over a synthetic binary trace,
// the hot path cmd/bench measures at scale; reports corrected events per
// second.
func BenchmarkStreamPipeline(b *testing.B) {
	var buf bytes.Buffer
	init, fin, err := stream.Synth(stream.SynthSpec{Ranks: 4, Steps: 2000, CollEvery: 10, Seed: 7}, &buf)
	if err != nil {
		b.Fatal(err)
	}
	src, err := stream.NewSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	p := stream.Pipeline{Base: core.BaseInterp, CLC: true}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := p.Run(src, io.Discard, init, fin)
		if err != nil {
			b.Fatal(err)
		}
		events = res.Stats.Events
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// mergeBenchTrace writes a v2 columnar trace of ranks×perRank local
// events whose oracle-time interleaving follows at(r, i) — each rank's
// stream stays sorted, but the global interleaving is whatever the
// pattern dictates.
func mergeBenchTrace(b *testing.B, ranks, perRank int, at func(r, i int) float64) []byte {
	b.Helper()
	var buf bytes.Buffer
	ew, err := trace.NewEventWriterOpts(&buf, trace.Header{
		Machine: "merge-bench", Timer: "oracle", Regions: []string{"r"}, ProcCount: ranks,
	}, trace.WriterOptions{Version: trace.Version2, Columnar: true})
	if err != nil {
		b.Fatal(err)
	}
	kinds := [2]trace.Kind{trace.Enter, trace.Exit}
	for r := 0; r < ranks; r++ {
		if err := ew.BeginProc(trace.ProcHeader{Rank: r, EventCount: perRank}); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < perRank; i++ {
			t := at(r, i)
			ev := trace.Event{Kind: kinds[i%2], True: t}
			ev.SetTime(t)
			if err := ew.Write(&ev); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := ew.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkMergeTree isolates the deterministic merge (census walk, no
// correction stages) under the interleavings that stress a k-way merge
// hardest, at flat (Shards=1) and two-level (Shards=8) fan-in — compare
// with BenchmarkStreamPipeline for the full-pipeline cost. "hot" pins
// the min on one rank (one sub-merge is always the root's answer),
// "roundrobin" changes the winning rank on every pop (maximum heap
// churn), and "clustered" drains one contiguous shard at a time (the
// other sub-merges sit idle on primed heads).
func BenchmarkMergeTree(b *testing.B) {
	const ranks, perRank = 64, 512
	patterns := []struct {
		name string
		at   func(r, i int) float64
	}{
		// rank 0 owns the dense foreground; the rest tick far apart
		{"hot", func(r, i int) float64 {
			if r == 0 {
				return float64(i) * 1e-6
			}
			return float64(i)*1e-3 + float64(r)*1e-8
		}},
		// global pop order cycles through all ranks every ranks events
		{"roundrobin", func(r, i int) float64 {
			return float64(i*ranks+r) * 1e-6
		}},
		// ranks are active in contiguous blocks of 8, one block at a time
		{"clustered", func(r, i int) float64 {
			return float64(r/8)*1e0 + float64(i)*1e-6 + float64(r%8)*1e-8
		}},
	}
	for _, pat := range patterns {
		data := mergeBenchTrace(b, ranks, perRank, pat.at)
		src, err := stream.NewSource(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for _, shards := range []int{1, 8} {
			name := pat.name + "/flat"
			if shards > 1 {
				name = pat.name + "/tree8"
			}
			b.Run(name, func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				var events int64
				for i := 0; i < b.N; i++ {
					_, stats, err := stream.Census(src, stream.Options{Shards: shards})
					if err != nil {
						b.Fatal(err)
					}
					events = stats.Events
				}
				b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// BenchmarkEventCodec: decode+re-encode round trip of the binary event
// format through the batched public codec, the inner loop of every
// streaming pass.
func BenchmarkEventCodec(b *testing.B) {
	const n = 4096
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{
			Kind: trace.Kind(i % 6), Op: trace.CollOp(i % 4),
			Time: float64(i) * 1e-3, True: float64(i) * 1e-3,
			Region: int32(i % 4), Instance: int32(i / 64),
			Partner: int32(i % 8), Tag: int32(i % 100), Bytes: 1 << 10,
		}
	}
	var raw bytes.Buffer
	enc := trace.NewEventEncoder(&raw)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(raw.Bytes())
	sink := trace.NewEventEncoder(io.Discard)
	out := make([]trace.Event, n)
	b.SetBytes(int64(raw.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		dec := trace.NewEventDecoder(rd)
		got, err := dec.DecodeBatch(out)
		if err != nil && err != io.EOF {
			b.Fatal(err)
		}
		if got != n {
			b.Fatalf("decoded %d of %d events", got, n)
		}
		for j := 0; j < got; j++ {
			if err := sink.Encode(&out[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMapTimeMonotone: the amortized-O(1) monotone cursor over a
// many-piece interpolation, the per-event time mapping of the streaming
// engine (compare with the binary-search Correction.Map it replaces).
func BenchmarkMapTimeMonotone(b *testing.B) {
	const ranks, points = 4, 65
	tables := make([][]measure.Offset, points)
	for k := range tables {
		t := float64(k) * 10
		tab := make([]measure.Offset, ranks)
		for r := range tab {
			tab[r] = measure.Offset{
				Rank:       r,
				WorkerTime: t * (1 + 1e-5*float64(r)),
				Offset:     1e-4*float64(r) + 1e-6*t*float64(r%3),
			}
		}
		tables[k] = tab
	}
	corr, err := interp.Piecewise(tables...)
	if err != nil {
		b.Fatal(err)
	}
	cur := corr.NewCursor()
	const steps = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < ranks; r++ {
			for s := 0; s < steps; s++ {
				cur.Map(r, float64(s)*(points*10.0/steps))
			}
		}
	}
	b.ReportMetric(float64(ranks*steps), "maps/op")
}

// BenchmarkRendezvousTransfer: large-message handshake round trips.
func BenchmarkRendezvousTransfer(b *testing.B) {
	m := topology.Xeon()
	pin, err := topology.InterNode(m, 2)
	if err != nil {
		b.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	const large = 1 << 20
	b.SetBytes(large)
	err = w.Run(func(r *mpi.Rank) {
		for i := 0; i < b.N; i++ {
			if r.Rank() == 0 {
				r.Send(1, i, large, nil)
			} else {
				r.Recv(0, i)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
