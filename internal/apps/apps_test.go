package apps

import (
	"testing"

	"tsync/internal/analysis"
	"tsync/internal/clock"
	"tsync/internal/mpi"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

func newWorld(t testing.TB, n int) *mpi.World {
	t.Helper()
	m := topology.Xeon()
	pin, err := topology.Scheduled(m, n, xrand.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPOPRunsAndTracesWindow(t *testing.T) {
	w := newWorld(t, 8)
	cfg := POPConfig{
		Px: 4, Py: 2,
		Iterations: 30, TraceStart: 10, TraceEnd: 20,
		StepTime: 1e-3, Imbalance: 0.05, HaloBytes: 1024, AllreduceEvery: 1, Seed: 2,
	}
	if err := w.Run(POP(cfg)); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := analysis.CensusOf(tr)
	if err != nil {
		t.Fatal(err)
	}
	// 10 traced iterations × 8 ranks × 4 halo messages
	if c.Messages != 10*8*4 {
		t.Fatalf("traced %d messages, want 320", c.Messages)
	}
	colls, err := tr.Collectives()
	if err != nil {
		t.Fatal(err)
	}
	// one allreduce per traced iteration, plus the window-entry barrier
	// at iter 10 (recorded untraced) — so exactly the 10 allreduces plus
	// the exit barrier at iter 20 are visible... the entry barrier runs
	// before tracing is enabled and the exit barrier runs before
	// disabling, hence 10 allreduce + 1 barrier
	if len(colls) != 11 {
		t.Fatalf("traced %d collectives, want 11", len(colls))
	}
}

func TestPOPValidation(t *testing.T) {
	if err := (POPConfig{Px: 3, Py: 3}).Validate(8); err == nil {
		t.Fatalf("grid mismatch accepted")
	}
	if err := (POPConfig{Px: 2, Py: 4, Iterations: 0}).Validate(8); err == nil {
		t.Fatalf("zero iterations accepted")
	}
	if err := (POPConfig{Px: 2, Py: 4, Iterations: 10, TraceStart: 8, TraceEnd: 4}).Validate(8); err == nil {
		t.Fatalf("inverted window accepted")
	}
}

func TestPOPTrueTimeCausal(t *testing.T) {
	w := newWorld(t, 4)
	cfg := POPConfig{Px: 2, Py: 2, Iterations: 12, TraceStart: 0, TraceEnd: 12,
		StepTime: 1e-4, HaloBytes: 256, AllreduceEvery: 2, Seed: 4}
	if err := w.Run(POP(cfg)); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	msgs, err := tr.Messages()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if tr.Procs[m.To].Events[m.ToIdx].True < tr.Procs[m.From].Events[m.FromIdx].True {
			t.Fatalf("acausal POP message")
		}
	}
}

func TestSMGRuns(t *testing.T) {
	w := newWorld(t, 8)
	cfg := SMGConfig{Cycles: 3, Levels: 5, LevelTime: 1e-3, Imbalance: 0.1,
		CellBytes: 512, IdleBefore: 1, IdleAfter: 1, Seed: 5}
	if err := w.Run(SMG(cfg)); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	msgs, err := tr.Messages()
	if err != nil {
		t.Fatal(err)
	}
	// per cycle: down + up sweeps exchange on every level whose distance
	// 2^l mod 8 is nonzero (coarser levels fall on multiples of the ring
	// size and stay local, as coarse grids do)
	perSweep := 0
	for l := 0; l < 5; l++ {
		if (1<<l)%8 != 0 {
			perSweep++
		}
	}
	want := 3 * 2 * perSweep * 8
	if len(msgs) != want {
		t.Fatalf("SMG traced %d messages, want %d", len(msgs), want)
	}
	// non-nearest-neighbour traffic must exist (distance 4 exchanges)
	far := 0
	for _, m := range msgs {
		d := (m.To - m.From + 8) % 8
		if d > 1 {
			far++
		}
	}
	if far == 0 {
		t.Fatalf("SMG produced only nearest-neighbour traffic")
	}
}

func TestSMGIdlePhasesWidenRun(t *testing.T) {
	w := newWorld(t, 4)
	cfg := SMGConfig{Cycles: 1, Levels: 3, LevelTime: 1e-4,
		CellBytes: 256, IdleBefore: 5, IdleAfter: 5, Seed: 6}
	var endTime float64
	body := SMG(cfg)
	if err := w.Run(func(r *mpi.Rank) {
		body(r)
		if r.Rank() == 0 {
			endTime = r.Now()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if endTime < 10 {
		t.Fatalf("run finished at %v s, idle phases missing", endTime)
	}
}

func TestSMGValidation(t *testing.T) {
	if err := (SMGConfig{Cycles: 0, Levels: 1}).Validate(); err == nil {
		t.Fatalf("zero cycles accepted")
	}
	if err := (SMGConfig{Cycles: 1, Levels: 1, IdleBefore: -1}).Validate(); err == nil {
		t.Fatalf("negative idle accepted")
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	run := func() *trace.Trace {
		w := newWorld(t, 4)
		cfg := POPConfig{Px: 2, Py: 2, Iterations: 8, TraceStart: 2, TraceEnd: 6,
			StepTime: 1e-4, HaloBytes: 128, AllreduceEvery: 1, Seed: 9}
		if err := w.Run(POP(cfg)); err != nil {
			t.Fatal(err)
		}
		return w.Trace()
	}
	a, b := run(), run()
	if a.EventCount() != b.EventCount() {
		t.Fatalf("nondeterministic POP event counts: %d vs %d", a.EventCount(), b.EventCount())
	}
	for i := range a.Procs {
		for j := range a.Procs[i].Events {
			if a.Procs[i].Events[j] != b.Procs[i].Events[j] {
				t.Fatalf("nondeterministic POP event %d/%d", i, j)
			}
		}
	}
}

func BenchmarkPOPIteration32(b *testing.B) {
	m := topology.Xeon()
	pin, err := topology.Scheduled(m, 32, xrand.NewSource(3))
	if err != nil {
		b.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	cfg := POPConfig{Px: 8, Py: 4, Iterations: b.N + 1, TraceStart: 0, TraceEnd: b.N + 1,
		StepTime: 1e-4, HaloBytes: 1024, AllreduceEvery: 1, Seed: 2}
	b.ResetTimer()
	if err := w.Run(POP(cfg)); err != nil {
		b.Fatal(err)
	}
}

func TestTransposeRunsWithCommunicators(t *testing.T) {
	m := topology.Xeon()
	pin, err := topology.Scheduled(m, 8, xrand.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 17, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := TransposeConfig{Px: 4, Py: 2, Steps: 10, StepTime: 1e-4,
		Imbalance: 0.05, CellBytes: 256, Seed: 3}
	if err := w.Run(Transpose(cfg)); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	colls, err := tr.Collectives()
	if err != nil {
		t.Fatal(err)
	}

	// sub-communicator collectives must be present with their own ids
	subComms := map[int32]int{}
	for _, c := range colls {
		if c.Comm > 0 {
			subComms[c.Comm]++
		}
	}
	// 2 row comms + 4 column comms
	if len(subComms) != 6 {
		t.Fatalf("expected 6 sub-communicators, got %d (%v)", len(subComms), subComms)
	}
	if _, err := analysis.CensusOf(tr); err != nil {
		t.Fatalf("census over sub-communicator trace: %v", err)
	}
}

func TestTransposeValidation(t *testing.T) {
	if err := (TransposeConfig{Px: 3, Py: 3, Steps: 1}).Validate(8); err == nil {
		t.Fatalf("grid mismatch accepted")
	}
	if err := (TransposeConfig{Px: 2, Py: 4, Steps: 0}).Validate(8); err == nil {
		t.Fatalf("zero steps accepted")
	}
}
