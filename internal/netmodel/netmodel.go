// Package netmodel provides the interconnect latency substrate. Message
// latency depends on where the endpoints sit in the node/chip/core
// hierarchy (Table II of the paper: 4.29 µs inter-node over InfiniBand,
// 0.86 µs inter-chip, 0.47 µs inter-core on the Xeon cluster), on message
// size, and on stochastic network conditions (Section III.c: "messages
// exchanged between the same pair of locations may take differently long
// each time").
package netmodel

import (
	"fmt"
	"math"

	"tsync/internal/topology"
	"tsync/internal/xrand"
)

// LinkParams describes the latency distribution of one proximity class.
type LinkParams struct {
	Base     float64 // minimum latency l_min in seconds
	Jitter   float64 // mean of the exponential jitter on top of Base
	TailProb float64 // probability of a congestion tail event
	TailMean float64 // mean extra delay of a tail event (exponential)
	PerByte  float64 // bandwidth term, seconds per byte
	// AsymSigma is the scale of the fixed per-directed-route extra delay
	// (half-normal). Routes through a switched fabric differ in length
	// and adapter placement, so the forward and return paths of a pair
	// are not equally long — exactly the asymmetry that bounds the
	// accuracy of Cristian's method (Section III.c: "error correction
	// based on assumptions about the message latency remains
	// challenging").
	AsymSigma float64
}

// Sample draws one latency for a message of the given size.
func (l LinkParams) Sample(bytes int, rng *xrand.Source) float64 {
	d := l.Base + float64(bytes)*l.PerByte
	if l.Jitter > 0 {
		d += rng.Exponential(l.Jitter)
	}
	if l.TailProb > 0 && rng.Bool(l.TailProb) {
		d += rng.Exponential(l.TailMean)
	}
	return d
}

// Min returns the minimum latency for a message of the given size — the
// l_min of the clock condition (Eq. 1).
func (l LinkParams) Min(bytes int) float64 {
	return l.Base + float64(bytes)*l.PerByte
}

// Torus describes an optional 3-D torus interconnect (the Cray SeaStar of
// the Opteron system): inter-node latency grows with the Manhattan hop
// distance between the nodes' positions in the torus.
type Torus struct {
	X, Y, Z int
	// PerHop is the router traversal cost per hop beyond the first.
	PerHop float64
}

// Hops returns the minimal hop count between two node ids placed in the
// torus in x-major order.
func (t Torus) Hops(a, b int) int {
	if t.X <= 0 || t.Y <= 0 || t.Z <= 0 {
		return 1
	}
	coord := func(n int) (int, int, int) {
		return n % t.X, (n / t.X) % t.Y, n / (t.X * t.Y) % t.Z
	}
	wrap := func(d, size int) int {
		if d < 0 {
			d = -d
		}
		if size-d < d {
			d = size - d
		}
		return d
	}
	ax, ay, az := coord(a)
	bx, by, bz := coord(b)
	h := wrap(ax-bx, t.X) + wrap(ay-by, t.Y) + wrap(az-bz, t.Z)
	if h < 1 {
		h = 1
	}
	return h
}

// Model maps core pairs to latency distributions.
type Model struct {
	InterNode LinkParams
	InterChip LinkParams
	InterCore LinkParams
	// TorusNet, when non-zero, adds per-hop router costs to inter-node
	// latency based on torus positions.
	TorusNet Torus
	seed     uint64
	rng      *xrand.Source
	asym     map[[2]topology.CoreID]float64
}

// New builds a model with its private random stream.
func New(interNode, interChip, interCore LinkParams, seed uint64) *Model {
	return &Model{
		InterNode: interNode,
		InterChip: interChip,
		InterCore: interCore,
		seed:      seed,
		rng:       xrand.NewSource(seed),
		asym:      make(map[[2]topology.CoreID]float64),
	}
}

// asymmetry returns the fixed extra delay of the directed route from one
// core to another. It is derived statelessly from the model seed and the
// endpoints, so the value does not depend on the order in which routes are
// first used.
func (m *Model) asymmetry(from, to topology.CoreID, p LinkParams) float64 {
	if p.AsymSigma <= 0 {
		return 0
	}
	key := [2]topology.CoreID{from, to}
	if v, ok := m.asym[key]; ok {
		return v
	}
	label := fmt.Sprintf("route/%v->%v", from, to)
	v := math.Abs(xrand.NewSource(m.seed^0x7fb5d329728ea185).Sub(label).Normal(0, p.AsymSigma))
	m.asym[key] = v
	return v
}

// ForMachine returns the calibrated latency model of a machine family. The
// Xeon numbers reproduce Table II; the other families scale them by their
// interconnect class (Myrinet and SeaStar have slightly higher small-message
// latency than InfiniBand).
func ForMachine(family string, seed uint64) *Model {
	// jitter means are small relative to Base: Table II's standard
	// deviations are tiny, and the Cristian minimum-filtering in
	// internal/measure depends on most samples sitting near l_min.
	xeonNode := LinkParams{Base: 3.0e-6, Jitter: 0.09e-6, TailProb: 2e-3, TailMean: 12e-6, PerByte: 0.8e-9, AsymSigma: 1.8e-6}
	xeonChip := LinkParams{Base: 0.76e-6, Jitter: 0.02e-6, TailProb: 5e-4, TailMean: 4e-6, PerByte: 0.25e-9, AsymSigma: 0.08e-6}
	xeonCore := LinkParams{Base: 0.42e-6, Jitter: 0.01e-6, TailProb: 5e-4, TailMean: 4e-6, PerByte: 0.2e-9, AsymSigma: 0.04e-6}
	switch family {
	case "ppc":
		return New(
			LinkParams{Base: 4.0e-6, Jitter: 0.15e-6, TailProb: 3e-3, TailMean: 15e-6, PerByte: 1.1e-9, AsymSigma: 2.0e-6},
			LinkParams{Base: 0.82e-6, Jitter: 0.03e-6, TailProb: 5e-4, TailMean: 4e-6, PerByte: 0.3e-9, AsymSigma: 0.1e-6},
			LinkParams{Base: 0.46e-6, Jitter: 0.012e-6, TailProb: 5e-4, TailMean: 4e-6, PerByte: 0.22e-9, AsymSigma: 0.05e-6},
			seed)
	case "opteron":
		m := New(
			LinkParams{Base: 4.6e-6, Jitter: 0.2e-6, TailProb: 3e-3, TailMean: 15e-6, PerByte: 0.9e-9, AsymSigma: 2.0e-6},
			LinkParams{Base: 0.82e-6, Jitter: 0.03e-6, TailProb: 5e-4, TailMean: 4e-6, PerByte: 0.3e-9, AsymSigma: 0.1e-6},
			LinkParams{Base: 0.5e-6, Jitter: 0.012e-6, TailProb: 5e-4, TailMean: 4e-6, PerByte: 0.22e-9, AsymSigma: 0.05e-6},
			seed)
		// the XT3's SeaStars form a 3-D torus (~3744 nodes); each extra
		// router hop costs ~50 ns
		m.TorusNet = Torus{X: 16, Y: 16, Z: 15, PerHop: 0.05e-6}
		return m
	case "itanium":
		// a single SMP node: only intra-node classes matter
		return New(
			LinkParams{Base: 3.0e-6, Jitter: 0.09e-6, TailProb: 2e-3, TailMean: 12e-6, PerByte: 0.8e-9, AsymSigma: 1.8e-6},
			LinkParams{Base: 0.72e-6, Jitter: 0.02e-6, TailProb: 5e-4, TailMean: 4e-6, PerByte: 0.25e-9, AsymSigma: 0.08e-6},
			LinkParams{Base: 0.41e-6, Jitter: 0.01e-6, TailProb: 5e-4, TailMean: 4e-6, PerByte: 0.2e-9, AsymSigma: 0.04e-6},
			seed)
	default: // xeon and anything unknown
		return New(xeonNode, xeonChip, xeonCore, seed)
	}
}

// params selects the distribution for a core pair.
func (m *Model) params(from, to topology.CoreID) (LinkParams, error) {
	switch topology.Relate(from, to) {
	case topology.CrossNode:
		return m.InterNode, nil
	case topology.SameNode:
		return m.InterChip, nil
	case topology.SameChip:
		return m.InterCore, nil
	default:
		return LinkParams{}, fmt.Errorf("netmodel: message from core %v to itself", from)
	}
}

// Latency samples the latency of one message between two cores, including
// the route's fixed directional asymmetry and, on torus networks, the
// per-hop router cost.
func (m *Model) Latency(from, to topology.CoreID, bytes int) (float64, error) {
	p, err := m.params(from, to)
	if err != nil {
		return 0, err
	}
	lat := p.Sample(bytes, m.rng) + m.asymmetry(from, to, p)
	if m.TorusNet.PerHop > 0 && from.Node != to.Node {
		lat += float64(m.TorusNet.Hops(from.Node, to.Node)-1) * m.TorusNet.PerHop
	}
	return lat, nil
}

// MinLatency returns l_min for a message between two cores — the bound the
// clock condition (Eq. 1) uses and the correction algorithms assume. It is
// the class minimum without the per-route asymmetry, because a tool only
// knows the conservative lower bound, not the actual route.
func (m *Model) MinLatency(from, to topology.CoreID, bytes int) (float64, error) {
	p, err := m.params(from, to)
	if err != nil {
		return 0, err
	}
	return p.Min(bytes), nil
}
