package tsyncd

// The single place this package touches the host clock. Everything the
// protocol decides — frame contents, session results, fault outcomes —
// is independent of real time; only the *enforcement* of idle and drain
// deadlines needs an absolute wall-clock instant, because net.Conn
// deadlines are absolute by API. Confining the conversion here keeps
// the wallclock analyzer's guarantee meaningful for the rest of the
// package: a test that never hits a deadline is timer-free.

import (
	"net"
	"time"
)

// deadlineAt converts a relative timeout into the absolute instant
// net.Conn deadlines require; d <= 0 means no deadline.
func deadlineAt(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d) //tsync:wallclock — net.Conn deadlines are absolute instants; this is the package's one conversion from a configured timeout to the host clock, and no protocol outcome depends on the value
}

// armRead refreshes c's read deadline to d from now.
func armRead(c net.Conn, d time.Duration) {
	c.SetReadDeadline(deadlineAt(d))
}

// armWrite refreshes c's write deadline to d from now.
func armWrite(c net.Conn, d time.Duration) {
	c.SetWriteDeadline(deadlineAt(d))
}
