// Package b is outside internal/trace and internal/stream: errform does
// not apply, whatever the function names look like.
package b

import "errors"

// ReadConfig may shape its errors however it likes.
func ReadConfig(path string) error {
	if path == "" {
		return errors.New("empty path")
	}
	return nil
}
