// Command latencies regenerates Tables I and II of the paper: the
// process-pinning setups used for intra- and inter-node measurements, and
// the message/collective latency statistics measured with them.
package main

import (
	"flag"
	"fmt"
	"os"

	"tsync/internal/clock"
	"tsync/internal/experiments"
	"tsync/internal/measure"
	"tsync/internal/mpi"
	"tsync/internal/render"
	"tsync/internal/topology"
)

func main() {
	var (
		machine = flag.String("machine", "xeon", "machine: xeon, ppc, opteron, itanium")
		timer   = flag.String("timer", "tsc", "timer used by the latency benchmark")
		reps    = flag.Int("reps", 2000, "ping-pong repetitions")
		seed    = flag.Uint64("seed", 1, "random seed")
		table   = flag.Int("table", 0, "print only table 1 or 2 (0 = both)")
		matrix  = flag.Int("matrix", 0, "additionally measure an NxN inter-node latency matrix with this many nodes")
	)
	flag.Parse()

	m, err := topology.ParseMachine(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latencies:", err)
		os.Exit(1)
	}
	k, err := clock.ParseKind(*timer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latencies:", err)
		os.Exit(1)
	}

	if *table == 0 || *table == 1 {
		fmt.Printf("TABLE I — %s: process pinning for measurements among SMP nodes, chips, and cores\n\n", m.Name)
		fmt.Print(render.Table(
			[]string{"setup", "process pinning"},
			[][]string{
				{"Inter node", "4 nodes, 1 process per node"},
				{"Inter chip", fmt.Sprintf("1 node, %d chips per node, 1 process per chip", m.ChipsPerNode)},
				{"Inter core", fmt.Sprintf("1 node, 1 chip per node, %d processes per chip", m.CoresPerChip)},
			}))
		fmt.Println()
	}
	if *matrix > 1 {
		if err := printMatrix(m, k, *matrix, *reps, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "latencies:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *table == 0 || *table == 2 {
		rows, err := experiments.LatencyStudy(m, k, *reps, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "latencies:", err)
			os.Exit(1)
		}
		fmt.Printf("TABLE II — %s: measured message and collective latencies\n\n", m.Name)
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				r.Name,
				render.Micro(r.Result.Mean),
				fmt.Sprintf("%.2E", r.Result.StdDev*1e6),
			})
		}
		fmt.Print(render.Table([]string{"", "mean [µs]", "std. dev. [µs]"}, cells))
	}
}

// printMatrix measures and prints the pairwise inter-node latency matrix;
// on the Opteron torus the hop gradient is visible along the rows.
func printMatrix(m topology.Machine, k clock.Kind, n, reps int, seed uint64) error {
	pin, err := topology.InterNode(m, n)
	if err != nil {
		return err
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: k, Pinning: pin, Seed: seed})
	if err != nil {
		return err
	}
	var mat [][]float64
	var inner error
	if err := w.Run(func(r *mpi.Rank) {
		got, err := measure.LatencyMatrix(r, reps/10+1, 0)
		if err != nil {
			inner = err
			return
		}
		if r.Rank() == 0 {
			mat = got
		}
	}); err != nil {
		return err
	}
	if inner != nil {
		return inner
	}
	fmt.Printf("pairwise one-way latency matrix [µs] on %s (%d nodes):\n\n", m.Name, n)
	header := []string{"from\\to"}
	for j := 0; j < n; j++ {
		header = append(header, fmt.Sprintf("n%d", j))
	}
	var rows [][]string
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("n%d", i)}
		for j := 0; j < n; j++ {
			if i == j {
				row = append(row, "-")
			} else {
				row = append(row, render.Micro(mat[i][j]))
			}
		}
		rows = append(rows, row)
	}
	fmt.Print(render.Table(header, rows))
	return nil
}
