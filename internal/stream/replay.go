package stream

import (
	"context"

	"tsync/internal/interp"
	"tsync/internal/lclock"
	"tsync/internal/trace"
)

// repclSink stamps the merged event stream with replay clocks. The
// engine delivers events in a topological order of the happened-before
// graph with every incoming cross edge resolved, which is exactly the
// order contract lclock.RepClStamper needs; its final() callback fires
// once an event's out-edges are all consumed, so the sink releases the
// stamp there and the retained-stamp footprint stays proportional to
// the engine's reorder window, not the trace.
type repclSink struct {
	st *lclock.RepClStamper
}

func (s *repclSink) event(rank, idx int, ev *trace.Event, mapped float64, in []InEdge) (EdgeData, error) {
	var srcs []lclock.EventRef
	if len(in) > 0 {
		srcs = make([]lclock.EventRef, len(in))
		for i, e := range in {
			srcs[i] = lclock.EventRef{Rank: e.From.Rank, Idx: e.From.Idx}
		}
	}
	if _, err := s.st.Stamp(rank, idx, mapped, srcs); err != nil {
		return EdgeData{}, err
	}
	return EdgeData{Raw: ev.Time, Mapped: mapped}, nil
}

func (s *repclSink) final(ref EventRef) error {
	s.st.Release(lclock.EventRef{Rank: ref.Rank, Idx: ref.Idx})
	return nil
}
func (s *repclSink) rankDone(int) error { return nil }
func (s *repclSink) flush() error       { return nil }

// ReplayStats summarizes a streaming RepCl stamping pass.
type ReplayStats struct {
	// Events is how many events were stamped.
	Events int64
	// EpochSkew counts ε-window clamps: events whose corrected local
	// time lagged more than Epsilon×Interval behind causally known
	// time under the applied correction.
	EpochSkew int
	// MaxEpoch is the highest epoch any stamp reached.
	MaxEpoch uint64
	// Checksum is the per-rank stamp digest combined in rank order; it
	// matches lclock.StampsDigest of the in-memory stamping pass bit
	// for bit (the differential tests enforce this).
	Checksum string
	// Stats carries the engine-side accounting, including salvage
	// losses.
	Stats Stats
}

// ReplayStamp runs the RepCl stamping pass over src in bounded memory,
// mapping timestamps through corr first when non-nil (the correction a
// replay consumer would trust). It is the streaming counterpart of
// lclock.RepClStamps: same order, same merges, same digest.
func ReplayStamp(src *Source, corr *interp.Correction, cfg lclock.RepClConfig, opt Options) (ReplayStats, error) {
	return ReplayStampContext(context.Background(), src, corr, cfg, opt)
}

// ReplayStampContext is ReplayStamp under a context.
func ReplayStampContext(ctx context.Context, src *Source, corr *interp.Correction, cfg lclock.RepClConfig, opt Options) (ReplayStats, error) {
	opt = opt.Normalize()
	var rs ReplayStats
	rs.Stats.Events = src.Events()
	if opt.Salvage || src.Salvaged() {
		rs.Stats.Loss = src.Losses()
	}
	var m timeMapper = identityMapper{}
	if corr != nil {
		m = newCorrMapper(corr)
	}
	s := &repclSink{st: lclock.NewRepClStamper(src.Ranks(), cfg)}
	if err := walk(ctx, src, m, s, opt, newAccounting(src.Ranks(), opt, &rs.Stats), rs.Stats.Loss); err != nil {
		return rs, err
	}
	rs.Events = s.st.Events()
	rs.EpochSkew = s.st.SkewClamps()
	rs.MaxEpoch = s.st.MaxEpoch()
	rs.Checksum = s.st.Digest()
	return rs, nil
}
