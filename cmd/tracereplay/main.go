// Command tracereplay re-executes a synced trace under seeded
// causally-consistent interleavings drawn from the RepCl-feasible
// order set (DESIGN.md §11) and checks the invariants a sound
// timestamp correction must preserve: happened-before edges are never
// inverted, message sends precede receives, collectives complete
// atomically per communicator, per-rank program order survives, and
// the summary checksum is bit-identical to the canonical order's.
//
// The RepCl stamping pass itself streams in bounded memory
// (stream.ReplayStamp); the interleaving re-execution needs the
// event graph in memory. Salvaged (v2, -salvage) traces replay in
// tolerant mode: severed ranks degrade to a reported partial replay
// and the process exits with status 3, like the other CLIs.
//
// With -score it replays under every correction the repository
// produces (none, align, interp, errest-minmax, interp+clc,
// autoknots) and reports each one's violation counts and feasible-
// interleaving breadth — the consumer-side counterpart of
// tracebench's CompareCorrections ablation. Scoring needs the
// <input>.offsets.json sidecar written by tracegen.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tsync/internal/exitcode"
	"tsync/internal/interp"
	"tsync/internal/lclock"
	"tsync/internal/measure"
	"tsync/internal/replay"
	"tsync/internal/stream"
	"tsync/internal/trace"
)

type sidecar struct {
	Init []measure.Offset `json:"init"`
	Fin  []measure.Offset `json:"fin"`
}

type options struct {
	in       string
	seeds    int
	seed     uint64
	workers  int
	eps      uint
	interval float64
	base     string
	score    bool
	salvage  bool
	maxSkip  int64
	jsonOut  bool
	timeout  time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.in, "i", "trace.etr", "input trace file")
	flag.IntVar(&o.seeds, "seeds", 3, "number of seeded interleavings to replay")
	flag.Uint64Var(&o.seed, "seed", 1, "base seed; replay seeds derive from it")
	flag.IntVar(&o.workers, "workers", 0, "worker pool bound for the replays (0 = all CPUs; results identical for any value)")
	flag.UintVar(&o.eps, "eps", 0, "RepCl skew bound in epochs (0 = default 4)")
	flag.Float64Var(&o.interval, "interval", 0, "RepCl epoch length in seconds (0 = default 1 ms)")
	flag.StringVar(&o.base, "base", "interp", "correction replayed under: none, align, or interp (needs the offsets sidecar except for none)")
	flag.BoolVar(&o.score, "score", false, "replay under every correction and print the scoring table")
	flag.BoolVar(&o.salvage, "salvage", false, "resynchronize past corruption in v2 traces; exits 3 when the replay is partial")
	flag.Int64Var(&o.maxSkip, "max-skip", 0, "salvage budget: max bytes to skip before giving up (0 = unlimited)")
	flag.BoolVar(&o.jsonOut, "json", false, "print results as JSON")
	flag.DurationVar(&o.timeout, "timeout", 0, "abort the run after this long (0 = no limit)")
	flag.Parse()

	partial, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracereplay:", err)
	} else if partial {
		fmt.Fprintln(os.Stderr, "tracereplay: replay is partial (salvaged from a damaged trace)")
	}
	os.Exit(exitcode.From(err, partial))
}

func withTimeout(o options) (context.Context, context.CancelFunc) {
	if o.timeout > 0 {
		return context.WithTimeout(context.Background(), o.timeout)
	}
	return context.WithCancel(context.Background())
}

// loadTrace materializes the source's events into an in-memory trace
// (the interleaving scheduler needs random access to the graph).
func loadTrace(ctx context.Context, src *stream.Source) (*trace.Trace, error) {
	h := src.Header()
	t := &trace.Trace{Machine: h.Machine, Timer: h.Timer, MinLatency: h.MinLatency, Regions: h.Regions}
	for rank, ph := range src.Procs() {
		p := trace.Proc{Rank: ph.Rank, Core: ph.Core, Clock: ph.Clock}
		p.Events = make([]trace.Event, 0, ph.EventCount)
		cur := src.Cursor(rank)
		var ev trace.Event
		for i := 0; i < ph.EventCount; i++ {
			if i&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if err := cur.Next(&ev); err != nil {
				return nil, err
			}
			p.Events = append(p.Events, ev)
		}
		t.Procs = append(t.Procs, p)
	}
	return t, nil
}

func run(o options) (partial bool, err error) {
	ctx, cancel := withTimeout(o)
	defer cancel()

	f, err := os.Open(o.in)
	if err != nil {
		return false, err
	}
	defer f.Close()
	src, err := stream.NewSourceContext(ctx, f, stream.SourceOptions{Salvage: o.salvage, MaxSkipBytes: o.maxSkip})
	if err != nil {
		return false, err
	}

	cfg := lclock.RepClConfig{Interval: o.interval, Epsilon: uint32(o.eps)}.Normalize()
	partial = o.salvage && src.Salvaged()

	var side sidecar
	haveOffsets := false
	if blob, rerr := os.ReadFile(o.in + ".offsets.json"); rerr == nil {
		if err := json.Unmarshal(blob, &side); err != nil {
			return false, fmt.Errorf("offset sidecar: %w", err)
		}
		haveOffsets = true
	}

	// the bounded-memory stamping pass: correction-mapped timestamps in,
	// per-rank RepCl digests and ε-skew counts out
	corr, err := baseCorrection(o.base, side, haveOffsets, src.Ranks())
	if err != nil {
		return false, err
	}
	stamp, err := stream.ReplayStampContext(ctx, src, corr, cfg, stream.Options{Salvage: o.salvage})
	if err != nil {
		return false, err
	}

	t, err := loadTrace(ctx, src)
	if err != nil {
		return false, err
	}

	ropt := replay.Options{Clock: cfg, Tolerant: o.salvage && src.Salvaged()}

	if o.score {
		if !haveOffsets {
			return false, fmt.Errorf("no %s.offsets.json sidecar: -score needs the offset tables", o.in)
		}
		// scoring builds each method's correction itself, so it starts
		// from the raw (uncorrected) trace
		scores, err := replay.Score(t, side.Init, side.Fin, replay.ScoreConfig{
			Options: ropt, Seeds: replay.Seeds(o.seed, o.seeds), Workers: o.workers,
		})
		if err != nil {
			return false, err
		}
		printScores(o, stamp, scores)
		return partial, nil
	}

	if corr != nil {
		t = corr.Apply(t)
	}
	eng, err := replay.New(t, ropt)
	if err != nil {
		return false, err
	}
	canon, err := eng.Canonical()
	if err != nil {
		return false, err
	}
	reps, err := eng.ReplaySeeds(replay.Seeds(o.seed, o.seeds), o.workers)
	if err != nil {
		return false, err
	}
	printReplays(o, stamp, canon, reps)
	for _, r := range reps {
		if r.Checksum != canon.Checksum {
			return false, fmt.Errorf("interleaving checksum %s diverged from canonical %s (seed %d)", r.Checksum, canon.Checksum, r.Seed)
		}
		if r.Partial {
			partial = true
		}
	}
	if canon.Partial {
		partial = true
	}
	return partial, nil
}

// baseCorrection builds the correction the replay trusts. Scoring mode
// rebuilds its own per-method corrections; this one only shapes the
// stamping pass and the default replay.
func baseCorrection(base string, side sidecar, have bool, ranks int) (*interp.Correction, error) {
	switch base {
	case "none":
		return nil, nil
	case "align":
		if !have {
			return nil, fmt.Errorf("-base align needs the offsets sidecar")
		}
		return interp.AlignOnly(side.Init)
	case "interp":
		if !have {
			// traces without a sidecar replay uncorrected rather than
			// failing: the census then reports what raw clocks commit
			return nil, nil
		}
		return interp.Linear(side.Init, side.Fin)
	}
	return nil, fmt.Errorf("unknown -base %q (none, align, interp)", base)
}

func printCounts(c replay.Counts) string {
	return fmt.Sprintf("%d violations (%d message, %d collective, %d program-order, %d ε-skew)",
		c.Total(), c.MessageOrder, c.Collective, c.ProgramOrder, c.EpochSkew)
}

func printReplays(o options, stamp stream.ReplayStats, canon *replay.Result, reps []*replay.Result) {
	if o.jsonOut {
		out := struct {
			Stamp     stream.ReplayStats `json:"stamp"`
			Canonical *replay.Result     `json:"canonical"`
			Replays   []*replay.Result   `json:"replays"`
		}{stamp, canon, reps}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		enc.Encode(out)
		return
	}
	fmt.Printf("stamped %d events: max epoch %d, %d ε-skew clamps, stamp digest %s\n",
		stamp.Events, stamp.MaxEpoch, stamp.EpochSkew, stamp.Checksum)
	fmt.Printf("canonical order: %s, checksum %s\n", printCounts(canon.Counts), canon.Checksum)
	for _, r := range reps {
		fmt.Printf("seed %-20d breadth %9.1f bits, %s, checksum %s\n",
			r.Seed, r.Breadth, printCounts(r.Counts), r.Checksum)
	}
	if canon.DroppedEdges > 0 {
		fmt.Printf("tolerant replay dropped %d edges severed by corruption\n", canon.DroppedEdges)
	}
}

func printScores(o options, stamp stream.ReplayStats, scores []replay.MethodScore) {
	if o.jsonOut {
		out := struct {
			Stamp  stream.ReplayStats   `json:"stamp"`
			Scores []replay.MethodScore `json:"scores"`
		}{stamp, scores}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		enc.Encode(out)
		return
	}
	fmt.Printf("stamped %d events: max epoch %d, stamp digest %s\n", stamp.Events, stamp.MaxEpoch, stamp.Checksum)
	fmt.Printf("%-14s %10s %8s %11s %13s %8s %12s\n",
		"method", "violations", "message", "collective", "program-order", "ε-skew", "breadth/bits")
	for _, s := range scores {
		if s.Err != nil {
			fmt.Printf("%-14s failed: %v\n", s.Method, s.Err)
			continue
		}
		c := s.Counts
		fmt.Printf("%-14s %10d %8d %11d %13d %8d %12.1f\n",
			s.Method, c.Total(), c.MessageOrder, c.Collective, c.ProgramOrder, c.EpochSkew, s.Breadth)
	}
}
