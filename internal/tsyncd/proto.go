// Package tsyncd implements the trace-sync service: a long-lived TCP
// server where each connection runs one streaming correction session
// (merge → base correction → CLC → censuses) over a length-prefixed
// protocol, returning results bit-identical to the one-shot
// cmd/tracesync on the same input. The package carries the robustness
// surface the ROADMAP's production target needs — admission control,
// per-tenant quotas, idle reaping, and graceful drain — while the
// correction itself stays the same stream.Session the CLI uses, which
// is how the determinism contract survives concurrency.
package tsyncd

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"tsync/internal/measure"
	"tsync/internal/stream"
)

// Frame layout: one type byte, a uint32 little-endian payload length,
// then the payload. The cap below bounds what either side will buffer
// for a single frame; DATA/RESULT bodies are chunked under it.
const (
	frameHeaderSize = 5
	// DefaultMaxFrame bounds a single frame payload.
	DefaultMaxFrame = 1 << 20
	// resultChunk is the server's RESULT chunk size: small enough to
	// interleave with deadline refreshes, large enough to amortize the
	// frame header.
	resultChunk = 64 << 10
)

// Client → server frame types.
const (
	fHello byte = 0x01 // JSON Hello: tenant, pipeline config, offsets
	fData  byte = 0x02 // raw trace bytes, chunked
	fEOF   byte = 0x03 // end of trace body; run the session
	fAbort byte = 0x04 // abandon the session
	fPing  byte = 0x05 // keepalive probe
)

// Server → client frame types.
const (
	fAccept byte = 0x11 // session admitted; JSON accept payload
	fReject byte = 0x12 // admission refused; JSON Error
	fResult byte = 0x14 // corrected trace bytes, chunked (WantTrace only)
	fDone   byte = 0x15 // JSON Done: result, checksum, partial flag
	fError  byte = 0x16 // session failed; JSON Error
	fPong   byte = 0x17 // keepalive reply
)

// Code classifies every way a session can be refused or fail. The
// fault-matrix acceptance test counts a session as handled iff its
// outcome is bit-identical completion or one of these.
type Code string

const (
	// CodeBusy: the session queue is full; retry later.
	CodeBusy Code = "busy"
	// CodeQueueTimeout: a slot did not free up within the queue deadline.
	CodeQueueTimeout Code = "queue-timeout"
	// CodeDraining: the server is shutting down and admits no sessions.
	CodeDraining Code = "draining"
	// CodeQuotaBytes: the tenant's upload byte budget is exhausted.
	CodeQuotaBytes Code = "quota-bytes"
	// CodeQuotaEvents: the trace holds more events than the tenant may run.
	CodeQuotaEvents Code = "quota-events"
	// CodeQuotaSpill: the session's spill writes outgrew the tenant budget.
	CodeQuotaSpill Code = "quota-spill"
	// CodeMalformed: a frame violated the protocol (bad type, oversized,
	// undecodable payload).
	CodeMalformed Code = "malformed-frame"
	// CodeBadTrace: the uploaded bytes do not decode as a trace.
	CodeBadTrace Code = "bad-trace"
	// CodeUnsupported: the requested pipeline cannot run streaming.
	CodeUnsupported Code = "unsupported"
	// CodeWindow: the reorder window overflowed under PolicyError.
	CodeWindow Code = "window-overflow"
	// CodeIdleTimeout: the client stalled past the idle deadline.
	CodeIdleTimeout Code = "idle-timeout"
	// CodeAborted: the session was aborted (client fAbort or server drain).
	CodeAborted Code = "aborted"
	// CodeInternal: an unclassified server-side failure.
	CodeInternal Code = "internal"
)

// Error is the classified session error both sides exchange in REJECT
// and ERROR frames. It implements error so client code can errors.As
// straight out of Sync.
type Error struct {
	Code Code   `json:"code"`
	Msg  string `json:"msg,omitempty"`
}

func (e *Error) Error() string {
	if e.Msg == "" {
		return "tsyncd: " + string(e.Code)
	}
	return "tsyncd: " + string(e.Code) + ": " + e.Msg
}

func errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// ErrMalformed reports a frame the reader refused to decode.
var errMalformed = &Error{Code: CodeMalformed}

// Hello is the session request: which tenant is asking, how to run the
// pipeline, and the offset tables the base correction needs. The
// pipeline knobs mirror cmd/tracesync's streaming flags one for one, so
// an equal configuration is guaranteed to produce equal bytes.
type Hello struct {
	Tenant string `json:"tenant"`
	// Base names the base correction (core.ParseBase spellings).
	Base string `json:"base"`
	CLC  bool   `json:"clc"`
	// Window, Policy, Shards, Batch tune the streaming engine; zero
	// values select the same defaults as the CLI. Output is identical
	// for any Shards/Batch, so only Window/Policy can change results
	// (by failing instead of spilling).
	Window int    `json:"window,omitempty"`
	Policy string `json:"policy,omitempty"`
	Shards int    `json:"shards,omitempty"`
	Batch  int    `json:"batch,omitempty"`
	// Salvage tolerates v2 corruption; MaxSkipBytes bounds the skip.
	Salvage      bool  `json:"salvage,omitempty"`
	MaxSkipBytes int64 `json:"max_skip_bytes,omitempty"`
	// WantTrace streams the corrected trace back in RESULT frames; the
	// checksum in Done covers those bytes either way.
	WantTrace bool `json:"want_trace,omitempty"`
	// Init and Fin are the measured offset tables (the CLI reads them
	// from the .offsets.json sidecar).
	Init []measure.Offset `json:"init,omitempty"`
	Fin  []measure.Offset `json:"fin,omitempty"`
}

// Accept acknowledges admission.
type Accept struct {
	Session uint64 `json:"session"`
}

// Done carries the session outcome: the analysis result, the FNV-64a
// checksum over the corrected trace bytes (computed server-side whether
// or not they were returned), and whether salvage made the result
// partial. Checksum uses the same %016x rendering as the bench and
// differential suites, so it compares directly against a checksum of
// cmd/tracesync's output file.
type Done struct {
	Result   *stream.Result `json:"result"`
	Checksum string         `json:"checksum"`
	Partial  bool           `json:"partial,omitempty"`
}

// writeFrame emits one frame. Writes go through a single Write call so
// a deadline or fault splits frames, never interleaves them.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > DefaultMaxFrame {
		return errf(CodeMalformed, "frame payload %d exceeds %d", len(payload), DefaultMaxFrame)
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	buf[0] = typ
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[frameHeaderSize:], payload)
	_, err := w.Write(buf)
	return err
}

// writeJSONFrame marshals v and emits it as a frame of the given type.
func writeJSONFrame(w io.Writer, typ byte, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, blob)
}

// readFrame reads one frame, bounding the payload at max. A short or
// oversized frame returns errMalformed wrapped with detail; io errors
// (including deadline expiry) pass through for the caller to classify.
func readFrame(r io.Reader, max int) (byte, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if n > uint32(max) {
		return 0, nil, errf(CodeMalformed, "frame payload %d exceeds %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return hdr[0], payload, nil
}
