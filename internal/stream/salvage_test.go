package stream_test

// Salvage-mode tests: recovery from deterministic corruption must be
// reproducible (same seed, same losses, same output bytes at any worker
// count), bounded (budget errors), and invisible on clean inputs (v2 +
// salvage-on over an intact file is bit-identical to the strict path).

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"

	"tsync/internal/core"
	"tsync/internal/experiments"
	"tsync/internal/faultinject"
	"tsync/internal/stream"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

const salvageSeed = 0x5a17a6e5

// synthBytes renders a synthetic trace into memory.
func synthBytes(t *testing.T, spec stream.SynthSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, _, err := stream.Synth(spec, &buf); err != nil {
		t.Fatalf("Synth: %v", err)
	}
	return buf.Bytes()
}

func salvageSource(t *testing.T, data []byte, f *faultinject.Flips, o stream.SourceOptions) *stream.Source {
	t.Helper()
	var r = &faultinject.ReaderAt{R: bytes.NewReader(data), F: f}
	src, err := stream.NewSourceOpts(r, o)
	if err != nil {
		t.Fatalf("NewSourceOpts: %v", err)
	}
	return src
}

// TestSalvageCleanIdentity: over an intact file, the v2 codec and the
// salvage machinery must both be invisible — the v1 pipeline, the v2
// pipeline, and the v2+salvage pipeline produce identical output bytes,
// and nothing is reported lost.
func TestSalvageCleanIdentity(t *testing.T) {
	base := stream.SynthSpec{Ranks: 3, Steps: 40, CollEvery: 4, Seed: xrand.SeedAt(salvageSeed, 0)}
	v2 := base
	v2.Version = trace.Version2
	v1Data := synthBytes(t, base)
	v2Data := synthBytes(t, v2)
	if bytes.Equal(v1Data, v2Data) {
		t.Fatal("v1 and v2 encodings are identical; framing is not being exercised")
	}

	type variant struct {
		name string
		data []byte
		opt  stream.SourceOptions
	}
	variants := []variant{
		{"v1", v1Data, stream.SourceOptions{}},
		{"v2", v2Data, stream.SourceOptions{}},
		{"v2-salvage", v2Data, stream.SourceOptions{Salvage: true}},
	}
	var want []byte
	for _, v := range variants {
		for _, workers := range []int{1, 4} {
			for _, window := range []int{1, 4096} {
				for _, shards := range []int{1, 4} {
					t.Run(fmt.Sprintf("%s/k%d/w%d/s%d", v.name, workers, window, shards), func(t *testing.T) {
						src, err := stream.NewSourceOpts(bytes.NewReader(v.data), v.opt)
						if err != nil {
							t.Fatal(err)
						}
						if src.Salvaged() {
							t.Error("clean input reported as salvaged")
						}
						var out bytes.Buffer
						res, err := (stream.Pipeline{
							Base:    core.BaseNone,
							CLC:     true,
							Options: stream.Options{Workers: workers, Window: window, Salvage: v.opt.Salvage, Shards: shards},
						}).Run(src, &out, nil, nil)
						if err != nil {
							t.Fatal(err)
						}
						if want == nil {
							want = append([]byte(nil), out.Bytes()...)
						} else if !bytes.Equal(out.Bytes(), want) {
							t.Fatalf("output bytes differ from v1 baseline: %d vs %d", out.Len(), len(want))
						}
						for _, l := range res.Stats.Loss {
							if l.Any() {
								t.Errorf("clean input reported loss on rank %d: %+v", l.Rank, l)
							}
						}
					})
				}
			}
		}
	}
}

// TestSalvageDeterministic: the same corruption seed must produce the
// same corruption report, the same per-rank losses, and bit-identical
// salvaged output at any worker count.
func TestSalvageDeterministic(t *testing.T) {
	spec := stream.SynthSpec{
		Ranks: 3, Steps: 200, CollEvery: 5,
		Seed: xrand.SeedAt(salvageSeed, 1), Version: trace.Version2, FrameEvents: 16,
	}
	data := synthBytes(t, spec)
	flips := faultinject.NewBurstFlips(xrand.SeedAt(salvageSeed, 2), int64(len(data)), 4, 64)
	if flips.Count() == 0 {
		t.Fatal("no corruption generated")
	}

	type runOut struct {
		rep  trace.CorruptionReport
		loss []stream.RankLoss
		sum  string
	}
	run := func(workers, shards int) runOut {
		t.Helper()
		src := salvageSource(t, data, flips, stream.SourceOptions{Salvage: true})
		if !src.Salvaged() {
			t.Fatal("corrupted input not reported as salvaged")
		}
		var out bytes.Buffer
		res, err := (stream.Pipeline{
			Base:    core.BaseNone,
			Options: stream.Options{Workers: workers, Shards: shards},
		}).Run(src, &out, nil, nil)
		if err != nil {
			t.Fatalf("workers %d shards %d: %v", workers, shards, err)
		}
		sum, err := experiments.ChecksumTraceFile(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("workers %d shards %d: checksum: %v", workers, shards, err)
		}
		return runOut{rep: *src.Report(), loss: res.Stats.Loss, sum: sum}
	}

	first := run(1, 1)
	if len(first.rep.Incidents) == 0 {
		t.Fatal("no incidents recorded for corrupted input")
	}
	if first.loss == nil {
		t.Fatal("no loss records on a salvaged run")
	}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			for rep := 0; rep < 2; rep++ {
				got := run(workers, shards)
				if !reflect.DeepEqual(got.rep, first.rep) {
					t.Fatalf("workers %d shards %d rep %d: corruption report differs:\n got %+v\nwant %+v", workers, shards, rep, got.rep, first.rep)
				}
				if !reflect.DeepEqual(got.loss, first.loss) {
					t.Fatalf("workers %d shards %d rep %d: losses differ:\n got %+v\nwant %+v", workers, shards, rep, got.loss, first.loss)
				}
				if got.sum != first.sum {
					t.Fatalf("workers %d shards %d rep %d: salvaged checksum %s != %s", workers, shards, rep, got.sum, first.sum)
				}
			}
		}
	}
}

// TestSalvageRecoveryRatio: a 1M-event v2 trace with bursty corruption
// totaling 0.01% of its bytes must salvage at least 99% of the events,
// and the CLC stage must still drive clock-condition violations among
// the retained events to zero.
func TestSalvageRecoveryRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-event trace")
	}
	if raceEnabled {
		t.Skip("1M-event trace under the race detector; TestSalvageDeterministic races the same machinery at small scale")
	}
	spec := stream.SynthSpec{
		Ranks: 4, Steps: 62500, // 4 ranks x 62500 steps x 4 events = 1e6
		Seed: xrand.SeedAt(salvageSeed, 3), Version: trace.Version2,
	}
	data := synthBytes(t, spec)
	total := int64(len(data))
	corrupt := total / 10000 // 0.01% of bytes
	const burstLen = 256
	bursts := int(corrupt / burstLen)
	flips := faultinject.NewBurstFlips(xrand.SeedAt(salvageSeed, 4), total, bursts, burstLen)
	t.Logf("trace: %d bytes, corrupting ~%d bytes in %d bursts", total, flips.Count(), bursts)

	src := salvageSource(t, data, flips, stream.SourceOptions{Salvage: true})
	if !src.Salvaged() {
		t.Fatal("corrupted input not reported as salvaged")
	}
	const totalEvents = 1_000_000
	retained := src.Events()
	ratio := float64(retained) / totalEvents
	t.Logf("retained %d/%d events (%.4f)", retained, totalEvents, ratio)
	if ratio < 0.99 {
		t.Fatalf("salvage ratio %.4f < 0.99", ratio)
	}

	var sums []string
	for _, workers := range []int{1, 4} {
		var out bytes.Buffer
		res, err := (stream.Pipeline{
			Base:    core.BaseNone,
			CLC:     true,
			Options: stream.Options{Workers: workers},
		}).Run(src, &out, nil, nil)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if res.CLCReport.ViolationsAfter != 0 {
			t.Errorf("workers %d: %d clock-condition violations remain on retained events",
				workers, res.CLCReport.ViolationsAfter)
		}
		sum, err := experiments.ChecksumTraceFile(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
	}
	if sums[0] != sums[1] {
		t.Fatalf("salvaged output differs across worker counts: %s vs %s", sums[0], sums[1])
	}
}

// TestSalvageBudget: a skip budget smaller than the damage fails the
// index pass with trace.ErrSalvageBudget instead of silently eating an
// unbounded gap.
func TestSalvageBudget(t *testing.T) {
	spec := stream.SynthSpec{
		Ranks: 2, Steps: 100, Seed: xrand.SeedAt(salvageSeed, 5),
		Version: trace.Version2, FrameEvents: 16,
	}
	data := synthBytes(t, spec)
	flips := faultinject.NewBurstFlips(xrand.SeedAt(salvageSeed, 6), int64(len(data)), 3, 128)
	r := &faultinject.ReaderAt{R: bytes.NewReader(data), F: flips}
	_, err := stream.NewSourceOpts(r, stream.SourceOptions{Salvage: true, MaxSkipBytes: 1})
	if !errors.Is(err, trace.ErrSalvageBudget) {
		t.Fatalf("want ErrSalvageBudget, got %v", err)
	}
	// the same damage within budget succeeds
	if _, err := stream.NewSourceOpts(r, stream.SourceOptions{Salvage: true}); err != nil {
		t.Fatalf("unlimited budget: %v", err)
	}
}

// TestSalvageTruncated: cutting the file off mid-stream loses the tail
// ranks entirely; salvage must keep the prefix, synthesize placeholder
// ranks, and mark their loss unknown rather than inventing counts.
func TestSalvageTruncated(t *testing.T) {
	spec := stream.SynthSpec{
		Ranks: 4, Steps: 50, Seed: xrand.SeedAt(salvageSeed, 7),
		Version: trace.Version2, FrameEvents: 16,
	}
	data := synthBytes(t, spec)
	cut := int64(len(data) * 55 / 100)
	r := &faultinject.TruncatedReaderAt{R: bytes.NewReader(data), N: cut}
	src, err := stream.NewSourceOpts(r, stream.SourceOptions{Salvage: true})
	if err != nil {
		t.Fatalf("NewSourceOpts on truncated input: %v", err)
	}
	if !src.Salvaged() {
		t.Fatal("truncated input not reported as salvaged")
	}
	if src.Ranks() != 4 {
		t.Fatalf("got %d ranks, want 4 (placeholders for the lost tail)", src.Ranks())
	}
	loss := src.Losses()
	if !loss[3].Unknown {
		t.Errorf("tail rank loss not marked unknown: %+v", loss[3])
	}
	if src.Events() == 0 {
		t.Fatal("no events retained from the intact prefix")
	}
	sum, lsum, err := stream.Summarize(src)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if sum.Events != int(src.Events()) {
		t.Errorf("summary counted %d events, source retained %d", sum.Events, src.Events())
	}
	if lsum == nil {
		t.Error("Summarize returned no loss records for a salvaged source")
	}
	// strict mode must refuse the same truncated input
	if _, err := stream.NewSourceOpts(r, stream.SourceOptions{}); err == nil {
		t.Fatal("strict mode accepted a truncated trace")
	}
}

// TestSalvageV1Strict: v1 traces carry no checksums, so salvage cannot
// help — corruption in a v1 body must still fail the index pass.
func TestSalvageV1Strict(t *testing.T) {
	spec := stream.SynthSpec{Ranks: 2, Steps: 50, Seed: xrand.SeedAt(salvageSeed, 8)}
	data := append([]byte(nil), synthBytes(t, spec)...)
	// stomp a run of event bytes near the middle
	mid := len(data) / 2
	for i := 0; i < 32; i++ {
		data[mid+i] ^= 0xFF
	}
	_, err := stream.NewSourceOpts(bytes.NewReader(data), stream.SourceOptions{Salvage: true})
	if err == nil {
		t.Fatal("corrupted v1 trace indexed successfully; v1 has no redundancy to salvage with")
	}
}

// TestSpillSalvageInteraction: the window-overflow policies keep their
// semantics under salvage — PolicyError still fails fast on overflow,
// PolicySpill completes with both spill stats and loss records — and an
// injected SpillFS with a byte quota turns spill-volume exhaustion into
// a clean ErrNoSpace failure, not a hang or a partial result.
func TestSpillSalvageInteraction(t *testing.T) {
	spec := stream.SynthSpec{
		Ranks: 3, Steps: 120, CollEvery: 1,
		Seed: xrand.SeedAt(salvageSeed, 9), Version: trace.Version2, FrameEvents: 16,
	}
	data := synthBytes(t, spec)
	flips := faultinject.NewBurstFlips(xrand.SeedAt(salvageSeed, 10), int64(len(data)), 2, 64)
	src := salvageSource(t, data, flips, stream.SourceOptions{Salvage: true})

	// PolicyError still enforces the window bound under salvage
	_, err := (stream.Pipeline{
		Base:    core.BaseNone,
		Options: stream.Options{Window: 1, Policy: stream.PolicyError, Salvage: true},
	}).Run(src, nil, nil, nil)
	if !errors.Is(err, stream.ErrWindowExceeded) {
		t.Fatalf("PolicyError under salvage: want ErrWindowExceeded, got %v", err)
	}

	// PolicySpill completes, reporting both overflow stats and losses
	fs := faultinject.NewFS(-1)
	res, err := (stream.Pipeline{
		Base: core.BaseNone,
		CLC:  true,
		Options: stream.Options{
			Window: 1, Policy: stream.PolicySpill, Salvage: true, SpillFS: fs,
		},
	}).Run(src, nil, nil, nil)
	if err != nil {
		t.Fatalf("PolicySpill under salvage: %v", err)
	}
	if res.Stats.MaxPending <= 1 {
		t.Errorf("MaxPending = %d, want > window", res.Stats.MaxPending)
	}
	anyLoss := false
	for _, l := range res.Stats.Loss {
		anyLoss = anyLoss || l.Any()
	}
	if !anyLoss {
		t.Error("no loss recorded despite corrupted input")
	}
	if creates, _ := fs.Stats(); creates == 0 {
		t.Error("injected SpillFS was never used by the CLC stage")
	}

	// a starved spill store fails the run with ErrNoSpace
	src2 := salvageSource(t, data, flips, stream.SourceOptions{Salvage: true})
	_, err = (stream.Pipeline{
		Base: core.BaseNone,
		CLC:  true,
		Options: stream.Options{
			Window: 1, Policy: stream.PolicySpill, Salvage: true,
			SpillFS: faultinject.NewFS(64),
		},
	}).Run(src2, nil, nil, nil)
	if !errors.Is(err, faultinject.ErrNoSpace) {
		t.Fatalf("starved SpillFS: want ErrNoSpace, got %v", err)
	}
}

// TestSpillAbortCleanup: when a run over the OS spill store aborts —
// here via PolicyError mid-walk with the CLC stage already spilling —
// every temp file and the spill directory itself must be gone.
func TestSpillAbortCleanup(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	path, _, _ := synthFile(t, stream.SynthSpec{
		Ranks: 3, Steps: 30, CollEvery: 1, Seed: xrand.SeedAt(salvageSeed, 11),
	})
	src := openSource(t, path)
	_, err := (stream.Pipeline{
		Base:    core.BaseNone,
		CLC:     true,
		Options: stream.Options{Window: 1, Policy: stream.PolicyError},
	}).Run(src, nil, nil, nil)
	if !errors.Is(err, stream.ErrWindowExceeded) {
		t.Fatalf("want ErrWindowExceeded, got %v", err)
	}
	ents, rerr := os.ReadDir(tmp)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range ents {
		t.Errorf("leftover temp entry after aborted run: %s", e.Name())
	}
}
