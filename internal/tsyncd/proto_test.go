package tsyncd

// White-box frame-codec tests: round trips, the oversized/truncated
// rejections, and the error classification helpers.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"tsync/internal/stream"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("frame"), 1000)}
	for i, p := range payloads {
		if err := writeFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := readFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: type %#x payload %d bytes, want %#x / %d", i, typ, len(got), i+1, len(p))
		}
	}
}

func TestFrameOversized(t *testing.T) {
	if err := writeFrame(io.Discard, fData, make([]byte, DefaultMaxFrame+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
	var buf bytes.Buffer
	buf.Write([]byte{fData, 0xff, 0xff, 0xff, 0xff})
	_, _, err := readFrame(&buf, 0)
	var perr *Error
	if !errors.As(err, &perr) || perr.Code != CodeMalformed {
		t.Fatalf("oversized read: got %v, want malformed", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var whole bytes.Buffer
	if err := writeFrame(&whole, fDone, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	full := whole.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, _, err := readFrame(bytes.NewReader(full[:cut]), 0)
		if err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
}

func TestErrorRendering(t *testing.T) {
	if got := (&Error{Code: CodeBusy}).Error(); got != "tsyncd: busy" {
		t.Errorf("bare error renders %q", got)
	}
	if got := errf(CodeQuotaBytes, "limit %d", 9).Error(); got != "tsyncd: quota-bytes: limit 9" {
		t.Errorf("detailed error renders %q", got)
	}
}

func TestBuildPipelineDefaults(t *testing.T) {
	pipe, perr := buildPipeline(Hello{})
	if perr != nil {
		t.Fatal(perr)
	}
	if pipe.Options.Policy != stream.PolicySpill {
		t.Errorf("default policy %v, want spill (the CLI default)", pipe.Options.Policy)
	}
	if _, perr := buildPipeline(Hello{Base: "bogus"}); perr == nil || perr.Code != CodeMalformed {
		t.Errorf("bogus base: got %v, want malformed", perr)
	}
	if _, perr := buildPipeline(Hello{Policy: "bogus"}); perr == nil || perr.Code != CodeMalformed {
		t.Errorf("bogus policy: got %v, want malformed", perr)
	}
}

func TestClassifyRun(t *testing.T) {
	cases := []struct {
		err  error
		st   stream.SessionState
		want Code
	}{
		{errf(CodeQuotaSpill, "x"), stream.SessionFailed, CodeQuotaSpill},
		{stream.ErrWindowExceeded, stream.SessionFailed, CodeWindow},
		{stream.ErrUnsupported, stream.SessionFailed, CodeUnsupported},
		{context.Canceled, stream.SessionAborted, CodeAborted},
		{errors.New("mystery"), stream.SessionFailed, CodeInternal},
	}
	for _, c := range cases {
		got := classifyRun(c.err, c.st)
		if got == nil || got.Code != c.want {
			t.Errorf("classifyRun(%v) = %v, want %s", c.err, got, c.want)
		}
	}
	if got := classifyRun(io.ErrClosedPipe, stream.SessionFailed); got != nil {
		t.Errorf("conn-level failure classified as %v, want nil (no peer to tell)", got)
	}
}
