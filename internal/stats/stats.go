// Package stats provides the statistical substrate used throughout the
// clock-drift study: descriptive statistics for latency tables (Table II),
// online accumulators for long deviation series (Figs. 4-6), least-squares
// regression and convex hulls for the error-estimation baselines of
// Section V (Duda's estimators), and histogram utilities for the violation
// censuses (Figs. 7-8).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// ApproxEqual reports whether a and b are equal within tol, combining an
// absolute and a relative criterion: |a-b| <= tol, or
// |a-b| <= tol·max(|a|,|b|). The absolute arm handles values near zero,
// the relative arm large timestamps whose representable spacing exceeds
// tol. It is the comparison the floateq analyzer (cmd/tsyncvet) demands
// in place of ==/!= on timestamps: drifting clocks and correction
// arithmetic make bit-for-bit equality of independently derived times
// meaningless. NaN compares unequal to everything; equal infinities
// compare equal. A non-positive tol degenerates to exact comparison.
func ApproxEqual(a, b, tol float64) bool {
	if a == b { // fast path; also equal infinities
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // an infinity only approximates itself, and the fast path took that case
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// anchoredMean computes the mean of xs relative to xs[0] and adds the
// anchor back. At timestamp magnitudes (1e15 ns) a naively summed mean
// loses tens of units to rounding, and a centered second pass built on a
// mean that is off by δ carries an n·δ² bias — enough to swamp a
// µs-scale variance entirely. Summing x−x0 keeps every addend at the
// scale of the data's spread, where the sum is effectively exact.
func anchoredMean(xs []float64) float64 {
	x0 := xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x - x0
	}
	return x0 + sum/float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 for fewer than two samples. The mean used for centering
// is anchored at xs[0] (see anchoredMean): the textbook
// Σx²−(Σx)²/n form — and even a centered pass around a naively summed
// mean — collapses on large-magnitude timestamps.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := anchoredMean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs. It returns ErrEmpty for an
// empty slice.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// MaxAbs returns the maximum absolute value in xs, or 0 for an empty slice.
func MaxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty for an empty
// slice and an error for p outside [0, 100]. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Online is a numerically stable (Welford) accumulator for streaming
// samples. The zero value is ready to use.
type Online struct {
	n        int
	mean     float64
	m2       float64
	min, max float64
}

// Add incorporates one sample.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of samples seen.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 if no samples).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running unbiased variance (0 for fewer than two
// samples).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running unbiased standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest sample seen (0 if no samples).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample seen (0 if no samples).
func (o *Online) Max() float64 { return o.max }

// Merge combines another accumulator into o (parallel Welford merge), so
// per-shard statistics can be reduced across workers.
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n := o.n + other.n
	delta := other.mean - o.mean
	mean := o.mean + delta*float64(other.n)/float64(n)
	m2 := o.m2 + other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(n)
	min := o.min
	if other.min < min {
		min = other.min
	}
	max := o.max
	if other.max > max {
		max = other.max
	}
	*o = Online{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Line is an affine function y = Slope*x + Intercept, the result of the
// regression and hull estimators. Applied to clock synchronization, x is a
// local clock value and y the estimated offset (or master time) at x.
type Line struct {
	Slope     float64
	Intercept float64
}

// At evaluates the line at x.
func (l Line) At(x float64) float64 { return l.Slope*x + l.Intercept }

// LeastSquares fits y = a*x + b to the points by ordinary least squares.
// It returns ErrEmpty if fewer than two points are given and an error if all
// x values coincide. Both means are anchored at the first sample so the
// centered moments stay exact on large-magnitude timestamps (a mean off
// by δ shifts every dx by δ and inflates sxx by n·δ²); for streaming
// fits over such data see OnlineReg, which additionally anchors the
// regression itself.
func LeastSquares(xs, ys []float64) (Line, error) {
	if len(xs) != len(ys) {
		return Line{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return Line{}, ErrEmpty
	}
	mx := anchoredMean(xs)
	my := anchoredMean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return Line{}, errors.New("stats: degenerate regression (constant x)")
	}
	slope := sxy / sxx
	return Line{Slope: slope, Intercept: my - slope*mx}, nil
}

// Point is a 2-D point used by the convex-hull estimators.
type Point struct{ X, Y float64 }

func cross(o, a, b Point) float64 {
	return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
}

// LowerHull returns the lower convex hull of the points in increasing x
// order (Andrew's monotone chain). Duplicate x values keep the lowest y.
// The input is not modified.
func LowerHull(pts []Point) []Point {
	return hull(pts, false)
}

// UpperHull returns the upper convex hull of the points in increasing x
// order. The input is not modified.
func UpperHull(pts []Point) []Point {
	return hull(pts, true)
}

func hull(pts []Point, upper bool) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	var out []Point
	for _, p := range sorted {
		for len(out) >= 2 {
			c := cross(out[len(out)-2], out[len(out)-1], p)
			if (!upper && c <= 0) || (upper && c >= 0) {
				out = out[:len(out)-1]
				continue
			}
			break
		}
		out = append(out, p)
	}
	return out
}

// Histogram counts samples into uniform-width bins over [lo, hi]. Samples
// outside the range are clamped into the first/last bin so that totals are
// preserved (violation censuses must not silently drop events).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bin count over [lo, hi].
// It panics if bins <= 0 or hi <= lo, which would be a programming error in
// experiment configuration.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the x coordinate of the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// Fraction returns the fraction of samples in bin i (0 if no samples).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// AllanDeviation computes the (non-overlapping) Allan deviation of a
// regularly sampled clock-offset series at averaging time tau = m*interval:
// the standard stability measure of oscillators, sigma_y(tau) =
// sqrt(0.5 * <(ybar_{k+1} - ybar_k)^2>) over adjacent fractional-frequency
// averages. samples are clock offsets in seconds at the given sampling
// interval; m is the averaging factor (>= 1). It returns ErrEmpty when the
// series is too short for even one difference.
func AllanDeviation(samples []float64, interval float64, m int) (float64, error) {
	if m < 1 || interval <= 0 {
		return 0, errors.New("stats: AllanDeviation needs m >= 1 and positive interval")
	}
	tau := float64(m) * interval
	// fractional frequency averages over consecutive windows of m steps
	nWindows := (len(samples) - 1) / m
	if nWindows < 2 {
		return 0, ErrEmpty
	}
	freqs := make([]float64, nWindows)
	for k := 0; k < nWindows; k++ {
		freqs[k] = (samples[(k+1)*m] - samples[k*m]) / tau
	}
	sum := 0.0
	for k := 0; k+1 < len(freqs); k++ {
		d := freqs[k+1] - freqs[k]
		sum += d * d
	}
	return math.Sqrt(sum / (2 * float64(len(freqs)-1))), nil
}
