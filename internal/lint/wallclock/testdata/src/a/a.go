// Package a is the positive fixture for the wallclock analyzer: a
// simulation-substrate package that reads ambient time and randomness.
package a

import (
	"math/rand" // want `import of math/rand outside internal/xrand`
	"time"
)

// Step models one simulated step but leaks host nondeterminism.
func Step() float64 {
	start := time.Now() // want `time.Now outside cmd/`
	time.Sleep(time.Millisecond) // want `time.Sleep outside cmd/`
	jitter := rand.Float64()
	_ = time.Since(start) // want `time.Since outside cmd/`
	return jitter
}

// Deadline also leaks, through the timer helpers.
func Deadline() {
	_ = time.After(time.Second)    // want `time.After outside cmd/`
	_ = time.NewTimer(time.Second) // want `time.NewTimer outside cmd/`
}

// Format is fine: time.Duration arithmetic and formatting do not read
// the host clock.
func Format(d time.Duration) string { return d.String() }

// Progress is a diagnostics-only elapsed timer: the directive suppresses
// the finding on its line.
func Progress() func() time.Duration {
	start := time.Now() //tsync:wallclock — diagnostics-only elapsed timer; never feeds a simulation result
	return func() time.Duration {
		return time.Since(start) //tsync:wallclock — diagnostics-only elapsed timer; never feeds a simulation result
	}
}
