package trace

// Tests for the allocation-free codec fast paths: the slice-based
// decodeEvent must agree with the reader-based readEvent on every input
// either accepts, and the steady-state encode/decode hot paths must not
// allocate per event.

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"testing"

	"tsync/internal/xrand"
)

// fastPathEvents covers the encoding's edge cases: extreme varint
// values, negative fields, zero and non-finite floats.
func fastPathEvents() []Event {
	return []Event{
		{},
		{Kind: Send, Op: OpBcast, Time: 1.25, True: -3.5, Region: -1, Instance: 7, Partner: 3, Tag: 99, Bytes: 1 << 20, Comm: 1, Root: -1},
		{Kind: Recv, Time: math.Inf(1), True: math.SmallestNonzeroFloat64, Region: math.MaxInt32, Instance: math.MinInt32, Partner: -1, Tag: math.MaxInt32, Bytes: math.MinInt32, Comm: math.MaxInt32, Root: math.MinInt32},
		{Kind: CollEnd, Op: OpAlltoall, Time: -0.0, True: math.MaxFloat64, Region: 0, Instance: 0, Partner: 0, Tag: 0, Bytes: 0, Comm: 0, Root: 0},
	}
}

func randomEvent(rng *xrand.Source) Event {
	return Event{
		Kind:     Kind(rng.Intn(8)),
		Op:       CollOp(rng.Intn(8)),
		Time:     rng.Uniform(-1e3, 1e3),
		True:     rng.Uniform(0, 1e3),
		Region:   int32(rng.Intn(1<<16) - 1<<15),
		Instance: int32(rng.Intn(1 << 10)),
		Partner:  int32(rng.Intn(64) - 1),
		Tag:      int32(rng.Intn(1 << 12)),
		Bytes:    int32(rng.Intn(1 << 24)),
		Comm:     int32(rng.Intn(4)),
		Root:     int32(rng.Intn(8) - 1),
	}
}

// TestDecodeEventMatchesReadEvent: for a corpus of events, the fast
// slice decoder and the slow reader decoder must consume the same bytes
// and produce identical events.
func TestDecodeEventMatchesReadEvent(t *testing.T) {
	evs := fastPathEvents()
	rng := xrand.NewSource(41)
	for i := 0; i < 200; i++ {
		evs = append(evs, randomEvent(rng))
	}
	for i, want := range evs {
		enc := appendEvent(nil, &want)
		var fast Event
		n, ok := decodeEvent(enc, &fast)
		if !ok || n != len(enc) {
			t.Fatalf("event %d: decodeEvent consumed %d of %d bytes (ok=%v)", i, n, len(enc), ok)
		}
		var slow Event
		if err := readEvent(newTestBufReader(enc), &slow); err != nil {
			t.Fatalf("event %d: readEvent: %v", i, err)
		}
		if fast != slow || !sameEventBits(fast, want) {
			t.Fatalf("event %d: fast %+v slow %+v want %+v", i, fast, slow, want)
		}
	}
}

// sameEventBits compares events with float fields at the bit level, so
// NaN payloads and signed zeros count.
func sameEventBits(a, b Event) bool {
	at, bt := a.Time, b.Time
	aT, bT := a.True, b.True
	a.Time, a.True, b.Time, b.True = 0, 0, 0, 0
	return a == b &&
		math.Float64bits(at) == math.Float64bits(bt) &&
		math.Float64bits(aT) == math.Float64bits(bT)
}

// TestDecodeEventShortBuffer: every strict prefix must be rejected, not
// misdecoded.
func TestDecodeEventShortBuffer(t *testing.T) {
	ev := Event{Kind: Send, Time: 1, True: 2, Region: -1, Partner: 300, Tag: -5000, Root: -1}
	enc := appendEvent(nil, &ev)
	for n := 0; n < len(enc); n++ {
		var got Event
		if _, ok := decodeEvent(enc[:n], &got); ok {
			t.Fatalf("decodeEvent accepted a %d-byte prefix of a %d-byte event", n, len(enc))
		}
	}
}

// TestAppendEventMatchesEventWriter: the scratch-buffer Write path must
// produce exactly appendEvent's bytes on the wire.
func TestAppendEventMatchesEventWriter(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if _, err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !sameEventBits(back.Procs[0].Events[1], tr.Procs[0].Events[1]) {
		t.Fatalf("round trip changed event: %+v vs %+v", back.Procs[0].Events[1], tr.Procs[0].Events[1])
	}
}

func newTestBufReader(b []byte) *bufio.Reader { return bufio.NewReader(bytes.NewReader(b)) }

// encodeN returns n events' canonical encodings concatenated.
func encodeN(t testing.TB, n int) ([]byte, []Event) {
	t.Helper()
	rng := xrand.NewSource(7)
	evs := make([]Event, n)
	var buf bytes.Buffer
	enc := NewEventEncoder(&buf)
	for i := range evs {
		evs[i] = randomEvent(rng)
		if err := enc.Encode(&evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), evs
}

// TestEventCodecAllocs pins the steady-state encode and decode hot paths
// to zero allocations per event.
func TestEventCodecAllocs(t *testing.T) {
	data, _ := encodeN(t, 4096)
	t.Run("decode", func(t *testing.T) {
		dec := NewEventDecoder(bytes.NewReader(data))
		var ev Event
		if avg := testing.AllocsPerRun(4000, func() {
			if err := dec.Decode(&ev); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("EventDecoder.Decode allocates %.2f per event, want 0", avg)
		}
	})
	t.Run("decode-batch", func(t *testing.T) {
		dec := NewEventDecoder(bytes.NewReader(data))
		evs := make([]Event, 64)
		if avg := testing.AllocsPerRun(60, func() {
			if _, err := dec.DecodeBatch(evs); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("EventDecoder.DecodeBatch allocates %.2f per slab, want 0", avg)
		}
	})
	t.Run("encode", func(t *testing.T) {
		enc := NewEventEncoder(io.Discard)
		ev := Event{Kind: Send, Time: 1.5, True: 2.5, Partner: 3, Tag: -7, Bytes: 1 << 16, Root: -1}
		if avg := testing.AllocsPerRun(4000, func() {
			if err := enc.Encode(&ev); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("EventEncoder.Encode allocates %.2f per event, want 0", avg)
		}
	})
	t.Run("writer", func(t *testing.T) {
		ew, err := NewEventWriter(io.Discard, Header{ProcCount: 1})
		if err != nil {
			t.Fatal(err)
		}
		const n = 1 << 20
		if err := ew.BeginProc(ProcHeader{EventCount: n}); err != nil {
			t.Fatal(err)
		}
		ev := Event{Kind: Recv, Time: 4.5, True: 5.5, Partner: 0, Tag: 9, Region: -1, Root: -1}
		if avg := testing.AllocsPerRun(4000, func() {
			if err := ew.Write(&ev); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("EventWriter.Write allocates %.2f per event, want 0", avg)
		}
	})
}

// TestDecodeBatchTruncation: DecodeBatch must classify a mid-event cut
// as ErrBadFormat and a clean boundary as io.EOF.
func TestDecodeBatchTruncation(t *testing.T) {
	data, evs := encodeN(t, 10)
	dec := NewEventDecoder(bytes.NewReader(data))
	got := make([]Event, 16)
	n, err := dec.DecodeBatch(got)
	if n != 10 || err != io.EOF {
		t.Fatalf("DecodeBatch = %d, %v; want 10, io.EOF", n, err)
	}
	for i := range evs {
		if !sameEventBits(got[i], evs[i]) {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[i], evs[i])
		}
	}
	dec = NewEventDecoder(bytes.NewReader(data[:len(data)-3]))
	if n, err := dec.DecodeBatch(got); err == nil || err == io.EOF {
		t.Fatalf("truncated DecodeBatch = %d, %v; want ErrBadFormat", n, err)
	}
}
