// Quickstart: simulate a small MPI job on a cluster with drifting clocks,
// trace it, observe clock-condition violations, and repair them with the
// paper's recommended pipeline (linear offset interpolation + controlled
// logical clock).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"tsync"
	"tsync/internal/mpi"
)

func main() {
	// 16 ranks on the Xeon cluster, placed by the scheduler across two
	// SMP nodes, timestamps from the TSC hardware counter.
	job := tsync.Job{
		Machine: "xeon",
		Timer:   "tsc",
		Ranks:   16,
		Seed:    42,
		Tracing: true,
	}
	if err := run(os.Stdout, job, 50); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, job tsync.Job, iters int) error {
	// A ring exchange with some computation: every rank repeatedly sends
	// to its right neighbour and receives from its left one. The job
	// measures clock offsets at init and finalize around the program,
	// exactly like Scalasca does.
	m, err := job.Run(func(r *mpi.Rank) {
		n := r.Size()
		for i := 0; i < iters; i++ {
			r.Send((r.Rank()+1)%n, i, 1024, nil)
			r.Recv((r.Rank()-1+n)%n, i)
			r.Compute(2.0) // two seconds of "physics"
			if i%10 == 0 {
				r.Allreduce(8, nil, nil)
			}
		}
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "traced %d events on %d ranks\n", m.Trace.EventCount(), len(m.Trace.Procs))

	// Raw timestamps come from unsynchronized clocks: the trace is full
	// of messages that appear to arrive before they were sent.
	raw, err := tsync.Synchronize(m, "none", false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "raw:          %4d of %d messages reversed (%.1f%%)\n",
		raw.After.Reversed, raw.After.Messages, raw.After.PctReversed())

	// Linear offset interpolation (Eq. 3 of the paper) fixes most of it...
	interp, err := tsync.Synchronize(m, "interp", false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "interpolated: %4d of %d messages reversed (%.1f%%), %d clock-condition violations\n",
		interp.After.Reversed, interp.After.Messages, interp.After.PctReversed(),
		interp.After.ClockCondition)

	// ...and the controlled logical clock removes what remains.
	fixed, err := tsync.Synchronize(m, "interp", true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "interp + CLC: %4d reversed, %d clock-condition violations, %d events moved (max %.2f µs)\n",
		fixed.After.Reversed, fixed.After.ClockCondition,
		fixed.CLCReport.EventsMoved, fixed.CLCReport.MaxAdvance*1e6)
	fmt.Fprintf(w, "local intervals disturbed by at most %.2f µs (mean %.3f µs)\n",
		fixed.Distortion.MaxAbs*1e6, fixed.Distortion.MeanAbs*1e6)
	return nil
}
