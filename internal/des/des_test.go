package des

import (
	"strings"
	"testing"
)

func TestSleepAdvancesTime(t *testing.T) {
	e := New()
	var observed []float64
	e.Spawn("a", 0, func(p *Proc) {
		observed = append(observed, p.Now())
		p.Sleep(1.5)
		observed = append(observed, p.Now())
		p.Sleep(0.25)
		observed = append(observed, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1.5, 1.75}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("observed %v, want %v", observed, want)
		}
	}
}

func TestStartAt(t *testing.T) {
	e := New()
	var start float64 = -1
	e.Spawn("late", 3, func(p *Proc) { start = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if start != 3 {
		t.Fatalf("process started at %v, want 3", start)
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	e := New()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, 1, func(p *Proc) { order = append(order, name) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("same-time events ran in order %q, want abc", got)
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := New()
		var log []string
		e.Spawn("a", 0, func(p *Proc) {
			for i := 0; i < 5; i++ {
				log = append(log, "a")
				p.Sleep(0.3)
			}
		})
		e.Spawn("b", 0, func(p *Proc) {
			for i := 0; i < 5; i++ {
				log = append(log, "b")
				p.Sleep(0.2)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := strings.Join(run(), "")
	for i := 0; i < 10; i++ {
		if got := strings.Join(run(), ""); got != first {
			t.Fatalf("run %d interleaving %q differs from %q", i, got, first)
		}
	}
}

func TestParkWake(t *testing.T) {
	e := New()
	var p1 *Proc
	var wokenAt float64 = -1
	p1 = e.Spawn("sleeper", 0, func(p *Proc) {
		p.Park("waiting for signal")
		wokenAt = p.Now()
	})
	e.Spawn("waker", 0, func(p *Proc) {
		p.Sleep(2)
		p.Engine().Wake(p1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt != 2 {
		t.Fatalf("woken at %v, want 2", wokenAt)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New()
	e.Spawn("stuck", 0, func(p *Proc) { p.Park("never woken") })
	err := e.Run()
	if err == nil {
		t.Fatalf("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "never woken") || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error lacks diagnostics: %v", err)
	}
}

func TestWakeNonParkedPanics(t *testing.T) {
	e := New()
	var p1 *Proc
	p1 = e.Spawn("a", 0, func(p *Proc) { p.Sleep(10) })
	e.Spawn("b", 0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Errorf("Wake of non-parked process did not panic")
			}
		}()
		p.Engine().Wake(p1) // p1 is sleeping on a timer, not parked
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := New()
	e.Spawn("bad", 0, func(p *Proc) { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("process panic did not propagate out of Run")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic lost its cause: %v", r)
		}
	}()
	_ = e.Run()
}

func TestScheduleInPastClamps(t *testing.T) {
	e := New()
	var firedAt float64 = -1
	e.Spawn("a", 0, func(p *Proc) {
		p.Sleep(5)
		// from t=5, schedule for t=1: must fire at t=5, not rewind
		p.Engine().Schedule(1, func() { firedAt = p.Engine().Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if firedAt != 5 {
		t.Fatalf("past event fired at %v, want clamped to 5", firedAt)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := New()
	var after float64 = -1
	e.Spawn("a", 0, func(p *Proc) {
		p.Sleep(1)
		p.Sleep(-5)
		after = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if after != 1 {
		t.Fatalf("negative sleep moved time to %v", after)
	}
}

func TestManyProcessesComplete(t *testing.T) {
	e := New()
	const n = 200
	count := 0
	for i := 0; i < n; i++ {
		e.Spawn("p", float64(i%7)*0.01, func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(0.001 * float64(j+1))
			}
			count++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("only %d of %d processes completed", count, n)
	}
}

func TestPingPongViaParkWake(t *testing.T) {
	// two processes strictly alternate via Park/Wake, verifying that
	// Wake from process context defers the control transfer correctly
	e := New()
	var a, b *Proc
	var log []string
	aReady, bReady := false, false
	a = e.Spawn("a", 0, func(p *Proc) {
		for i := 0; i < 3; i++ {
			log = append(log, "a")
			if bReady {
				bReady = false
				p.Engine().Wake(b)
			}
			aReady = true
			p.Park("ping")
		}
	})
	b = e.Spawn("b", 0, func(p *Proc) {
		for i := 0; i < 3; i++ {
			log = append(log, "b")
			if aReady {
				aReady = false
				p.Engine().Wake(a)
			}
			bReady = true
			p.Park("pong")
		}
	})
	err := e.Run()
	// the final Park of one process has no partner left; a deadlock
	// report naming it is expected
	if err == nil {
		t.Fatalf("expected final parked process to be reported")
	}
	if got := strings.Join(log, ""); got != "abab ab"[0:4]+"ab" {
		// expected strict alternation: a b a b a b
		if got != "ababab" {
			t.Fatalf("interleaving %q, want ababab", got)
		}
	}
}

func TestSpawnDuringRunPanics(t *testing.T) {
	e := New()
	e.Spawn("a", 0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Errorf("Spawn during Run did not panic")
			}
		}()
		e.Spawn("b", 0, func(*Proc) {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSleepCycle(b *testing.B) {
	e := New()
	e.Spawn("a", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1e-6)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestProcessedCount(t *testing.T) {
	e := New()
	e.Spawn("a", 0, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 start event + 5 sleep wakeups
	if got := e.Processed(); got != 6 {
		t.Fatalf("Processed = %d, want 6", got)
	}
}
