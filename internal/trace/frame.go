package trace

// Self-synchronizing v2 framing. The v1 codec has no redundancy: one
// flipped byte desynchronizes the varint stream and the rest of the file
// is unreadable. Version 2 keeps the v1 header encoding (after a version
// byte of 2) but groups everything that follows into checksummed blocks:
//
//	marker [4]byte | type u8 | payloadLen uvarint | crc32c u32le | payload
//
// with two block types. A proc block (type 0) carries one process
// header, its payload encoded exactly as in v1 (rank, core, clock,
// eventCount). A frame block (type 1) carries a run of one process's
// events:
//
//	rank uvarint | count uvarint | count canonical event encodings
//
// The CRC-32C (Castagnoli, via the stdlib table) covers the payload
// only; the marker makes the stream self-synchronizing: a reader that
// loses its place scans forward for the next marker and validates the
// candidate block by structure, checksum, and a full payload decode
// before trusting a single byte of it. Writers cut a frame every
// FrameEvents events (default 256, well under 1% byte overhead), so a
// corrupt region costs at most the frames it touches, not the file.
//
// Resync mode (ResyncPolicy.Enabled) turns decode failures into
// CorruptionReport incidents instead of errors: the reader skips forward
// to the next fully-valid block, counting skipped bytes and lost events
// against the policy's budgets. Salvage favors precision over recall —
// a block is accepted only when everything about it validates, so
// resync can drop events but never fabricate them. The file header
// itself is the trust root: corruption before the first block is not
// salvageable.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"tsync/internal/topology"
)

const (
	codecVersion2 = 2

	// Version1 and Version2 name the codec versions for WriterOptions.
	Version1 = codecVersion
	Version2 = codecVersion2

	blockProc     = 0x00 // payload: one process header
	blockFrame    = 0x01 // payload: a run of one process's events
	blockColFrame = 0x02 // payload: a columnar/delta batch of events

	// DefaultFrameEvents is the writer's frame size when
	// WriterOptions.FrameEvents is zero: small enough that one corrupt
	// frame loses little, large enough that the ~13 framing bytes
	// amortize to noise.
	DefaultFrameEvents = 256

	// maxFrameEvents and maxFramePayload bound what a reader buffers
	// for a single block; counts or lengths beyond them are corruption
	// by definition. They also size the resync scan window, so they are
	// kept modest: a frame hits the payload ceiling long before a
	// pathological FrameEvents setting could.
	maxFrameEvents  = 1 << 16
	maxFramePayload = 1 << 18

	markerLen    = 4
	blockHeadMax = markerLen + 1 + binary.MaxVarintLen64 + 4
	maxBlockSize = blockHeadMax + maxFramePayload

	// scanWindow is the resync peek size. Any candidate block starting
	// in the first maxBlockSize bytes of a full window fits entirely
	// inside it, so each scan round definitively accepts or rejects
	// every candidate it considers and can discard maxBlockSize bytes
	// when none survive — bounded progress, no rescanning.
	scanWindow = 2 * maxBlockSize

	// eventMinSize is the smallest canonical event encoding: kind and
	// op bytes, two floats, and seven single-byte varints. Frame counts
	// are sanity-checked against it before any event is decoded.
	eventMinSize = 18 + 7

	// colEventMinSize is the smallest per-event footprint of a columnar
	// frame beyond its fixed prefix: one kind byte, one op byte, one
	// delta byte per timestamp column, one varint byte per field column.
	colEventMinSize = 2 + 2 + 7
	// colFixedSize is a columnar payload's fixed cost after rank and
	// count: the two raw first-value timestamps (their per-event delta
	// bytes are counted in colEventMinSize, so the first event's are
	// subtracted here).
	colFixedSize = 16 - 2

	// colEventMaxSize bounds one event's columnar footprint: two column
	// bytes, two 10-byte timestamp deltas, seven 5-byte field varints.
	colEventMaxSize = 2 + 2*binary.MaxVarintLen64 + 7*binary.MaxVarintLen32
	// maxColFrameEvents keeps a worst-case columnar frame inside
	// maxFramePayload with room for the rank/count prefix.
	maxColFrameEvents = (maxFramePayload - 2*binary.MaxVarintLen64 - 16) / colEventMaxSize
)

// frameMarker opens every v2 block. 0xF4 never appears in ASCII and is
// an invalid UTF-8 start byte, keeping accidental collisions in
// string-bearing payloads rare; real collisions are eliminated by
// validation, not avoidance — a marker found mid-payload fails the
// checksum of whatever follows it.
var frameMarker = [markerLen]byte{0xF4, 'T', 'R', 'F'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrSalvageBudget reports that resync skipped more bytes or lost more
// events than the policy allows.
var ErrSalvageBudget = errors.New("trace: salvage skip budget exceeded")

// ResyncPolicy controls corruption recovery for v2 streams. The zero
// value is strict: any corruption is ErrBadFormat. With Enabled set the
// reader skips to the next valid block instead, within the skip budgets
// (zero budgets mean unlimited). v1 streams have no redundancy to
// resynchronize on; the policy does not affect them.
type ResyncPolicy struct {
	Enabled       bool
	MaxSkipBytes  int64
	MaxSkipEvents int64
}

// Incident is one corruption recovery: where the reader lost sync, how
// many bytes it skipped to regain it, and why.
type Incident struct {
	// Offset is the stream position where the reader lost sync.
	Offset int64
	// Rank is the process being read at the time (-1 before the first
	// process header).
	Rank int
	// SkippedBytes counts the bytes discarded before the next valid
	// block (through end of stream for a final incident).
	SkippedBytes int64
	Reason       string
}

// CorruptionReport aggregates every incident of one reader's pass.
type CorruptionReport struct {
	Incidents    []Incident
	SkippedBytes int64
	// LostEvents counts events known to be lost: declared by an intact
	// process header but never delivered. Losses that cannot be counted
	// — a process header destroyed along with its declared count — set
	// UnknownLoss instead.
	LostEvents  int64
	UnknownLoss bool
}

// LossPct returns the pass's countable event loss as a percentage of
// what the stream should have delivered (lost plus the retained count
// the caller observed), and whether the figure is meaningful. With
// UnknownLoss set — a destroyed process header took its declared event
// count with it — or nothing expected, there is no denominator; ok is
// false instead of the NaN/Inf a naive division would emit, and the
// reported LostEvents remain a lower bound only.
func (r *CorruptionReport) LossPct(retained int64) (pct float64, ok bool) {
	total := retained + r.LostEvents
	if r.UnknownLoss || total <= 0 {
		return 0, false
	}
	return 100 * float64(r.LostEvents) / float64(total), true
}

func (r *CorruptionReport) note(off int64, rank int, skipped int64, reason string) {
	r.Incidents = append(r.Incidents, Incident{Offset: off, Rank: rank, SkippedBytes: skipped, Reason: reason})
	r.SkippedBytes += skipped
}

// lost adds n known-lost events and enforces the event budget.
func (r *CorruptionReport) lost(n int64, pol ResyncPolicy) error {
	r.LostEvents += n
	if pol.MaxSkipEvents > 0 && r.LostEvents > pol.MaxSkipEvents {
		return fmt.Errorf("%w: lost %d events (limit %d)", ErrSalvageBudget, r.LostEvents, pol.MaxSkipEvents)
	}
	return nil
}

// WriterOptions selects the codec version and frame geometry for
// NewEventWriterOpts. The zero value writes v1, bit-identical to
// NewEventWriter.
type WriterOptions struct {
	Version     int  // Version1 (default) or Version2
	FrameEvents int  // v2 events per frame; 0 = DefaultFrameEvents
	Columnar    bool // v2 only: emit columnar/delta frames (blockColFrame)
}

func (o WriterOptions) normalize() (WriterOptions, error) {
	switch o.Version {
	case 0:
		o.Version = Version1
	case Version1, Version2:
	default:
		return o, fmt.Errorf("trace: unsupported codec version %d", o.Version)
	}
	if o.Columnar && o.Version != Version2 {
		return o, fmt.Errorf("trace: columnar frames need the v2 framing (version %d requested)", o.Version)
	}
	if o.FrameEvents <= 0 {
		o.FrameEvents = DefaultFrameEvents
	}
	if o.FrameEvents > maxFrameEvents {
		o.FrameEvents = maxFrameEvents
	}
	if o.Columnar && o.FrameEvents > maxColFrameEvents {
		o.FrameEvents = maxColFrameEvents
	}
	return o, nil
}

// parsed is the payload-level view of one validated block.
type parsed struct {
	typ byte

	// frame fields
	rank   int
	count  int
	events []byte // the encoded events; aliases the reader's payload buffer
	evOff  int    // offset of events within the payload, for re-slicing after a copy

	// columnar frame fields: the fully decoded events (columnar frames
	// cannot be decoded incrementally, so the whole batch materializes
	// at parse time into reader-owned scratch)
	decoded []Event

	// proc fields
	ph ProcHeader
}

// parseBlockHead decodes the fixed block prefix from head, which may be
// shorter than blockHeadMax near end of stream.
func parseBlockHead(head []byte) (typ byte, plen, hlen int, crc uint32, err error) {
	if len(head) < markerLen || !bytes.Equal(head[:markerLen], frameMarker[:]) {
		return 0, 0, 0, 0, errors.New("no block marker") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	if len(head) < markerLen+1 {
		return 0, 0, 0, 0, errors.New("truncated block header") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	typ = head[markerLen]
	if typ != blockProc && typ != blockFrame && typ != blockColFrame {
		return 0, 0, 0, 0, fmt.Errorf("unknown block type %d", typ) //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	v, n := binary.Uvarint(head[markerLen+1:])
	if n <= 0 {
		return 0, 0, 0, 0, errors.New("truncated block header") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	if v == 0 || v > maxFramePayload {
		return 0, 0, 0, 0, fmt.Errorf("block payload length %d out of range", v) //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	hlen = markerLen + 1 + n + 4
	if len(head) < hlen {
		return 0, 0, 0, 0, errors.New("truncated block header") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	crc = binary.LittleEndian.Uint32(head[markerLen+1+n:])
	return typ, int(v), hlen, crc, nil
}

// parsePayload validates a block payload whose checksum already matched.
// With deep set it also decodes every event of a frame — required before
// a resync candidate may be trusted; strict readers leave event decoding
// to the consumer and let the checksum vouch for the bytes. Columnar
// frames decode fully regardless of deep (their events cannot be peeled
// off incrementally) into colBuf, which the caller owns and recycles;
// the decoded slice is returned via parsed.decoded.
func parsePayload(typ byte, p []byte, deep bool, colBuf []Event) (parsed, error) {
	if typ == blockProc {
		ph, err := parseProcPayload(p)
		return parsed{typ: typ, rank: ph.Rank, ph: ph}, err
	}
	if typ == blockColFrame {
		return parseColPayload(p, colBuf)
	}
	rank, n := binary.Uvarint(p)
	if n <= 0 || rank > maxProcs {
		return parsed{}, errors.New("bad frame rank") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	count, m := binary.Uvarint(p[n:])
	if m <= 0 || count == 0 || count > maxFrameEvents {
		return parsed{}, errors.New("bad frame event count") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	evOff := n + m
	events := p[evOff:]
	if int(count)*eventMinSize > len(events) {
		return parsed{}, errors.New("frame too short for its event count") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	if deep {
		var ev Event
		rest := events
		for i := uint64(0); i < count; i++ {
			k, ok := decodeEvent(rest, &ev)
			if !ok {
				return parsed{}, errors.New("malformed event in frame") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
			}
			rest = rest[k:]
		}
		if len(rest) != 0 {
			return parsed{}, errors.New("trailing bytes after frame events") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
		}
	}
	return parsed{typ: typ, rank: int(rank), count: int(count), events: events, evOff: evOff}, nil
}

// parseProcPayload decodes a proc block payload, which must be consumed
// exactly. The field encodings match v1's in-line process header.
func parseProcPayload(p []byte) (ProcHeader, error) {
	var ph ProcHeader
	var ints [4]uint64
	for i := range ints {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return ph, errors.New("bad process header varint") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
		}
		ints[i] = v
		p = p[n:]
	}
	if ints[0] > maxProcs {
		return ph, errors.New("process rank out of range") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	ph.Rank = int(ints[0])
	ph.Core = topology.CoreID{Node: int(ints[1]), Chip: int(ints[2]), Core: int(ints[3])}
	clen, n := binary.Uvarint(p)
	if n <= 0 || clen > maxStringLen || uint64(len(p)-n) < clen {
		return ph, errors.New("bad clock string") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	ph.Clock = string(p[n : n+int(clen)])
	p = p[n+int(clen):]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > maxProcEvents {
		return ph, errors.New("bad event count") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	ph.EventCount = int(count)
	if len(p) != n {
		return ph, errors.New("trailing bytes in process header") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	return ph, nil
}

// Columnar frame payload (blockColFrame):
//
//	rank uvarint | count uvarint |
//	kind  [count]u8 | op [count]u8 |
//	time  f64bits-LE | (count-1) zigzag varint bit-pattern deltas |
//	true  f64bits-LE | (count-1) zigzag varint bit-pattern deltas |
//	7 field columns, count signed varints each
//	(region, instance, partner, tag, bytes, comm, root)
//
// Column-major layout keeps the decode loops branch-light (one tight
// loop per column instead of a nine-field switch per event), and the
// timestamp deltas shrink because consecutive events of one rank have
// nearly equal float bit patterns. The transform is lossless — bits in,
// bits out — so a columnar round-trip is bit-identical to the row
// codec's events.

// appendColFrame appends the columnar encoding of evs (without the
// rank/count prefix) to dst.
func appendColFrame(dst []byte, evs []Event) []byte {
	for i := range evs {
		dst = append(dst, byte(evs[i].Kind))
	}
	for i := range evs {
		dst = append(dst, byte(evs[i].Op))
	}
	for _, get := range [2]func(*Event) float64{
		func(e *Event) float64 { return e.Time },
		func(e *Event) float64 { return e.True },
	} {
		prev := math.Float64bits(get(&evs[0]))
		dst = binary.LittleEndian.AppendUint64(dst, prev)
		for i := 1; i < len(evs); i++ {
			bits := math.Float64bits(get(&evs[i]))
			dst = binary.AppendVarint(dst, int64(bits-prev))
			prev = bits
		}
	}
	for _, get := range colFields {
		for i := range evs {
			dst = binary.AppendVarint(dst, int64(get(&evs[i])))
		}
	}
	return dst
}

// colFields enumerates the seven varint field columns in canonical
// (row-codec) order.
var colFields = [7]func(*Event) int32{
	func(e *Event) int32 { return e.Region },
	func(e *Event) int32 { return e.Instance },
	func(e *Event) int32 { return e.Partner },
	func(e *Event) int32 { return e.Tag },
	func(e *Event) int32 { return e.Bytes },
	func(e *Event) int32 { return e.Comm },
	func(e *Event) int32 { return e.Root },
}

// colFieldSet assigns the seven field columns in the same order.
var colFieldSet = [7]func(*Event, int32){
	func(e *Event, v int32) { e.Region = v },
	func(e *Event, v int32) { e.Instance = v },
	func(e *Event, v int32) { e.Partner = v },
	func(e *Event, v int32) { e.Tag = v },
	func(e *Event, v int32) { e.Bytes = v },
	func(e *Event, v int32) { e.Comm = v },
	func(e *Event, v int32) { e.Root = v },
}

// parseColPayload validates and fully decodes a columnar frame payload
// into colBuf (grown as needed, reused across blocks by the caller).
func parseColPayload(p []byte, colBuf []Event) (parsed, error) {
	rank, n := binary.Uvarint(p)
	if n <= 0 || rank > maxProcs {
		return parsed{}, errors.New("bad frame rank") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	count, m := binary.Uvarint(p[n:])
	if m <= 0 || count == 0 || count > maxColFrameEvents {
		return parsed{}, errors.New("bad frame event count") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	c := int(count)
	body := p[n+m:]
	if c*colEventMinSize+colFixedSize > len(body) {
		return parsed{}, errors.New("frame too short for its event count") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	if cap(colBuf) < c {
		colBuf = make([]Event, c)
	}
	evs := colBuf[:c]
	for i := range evs {
		evs[i] = Event{}
	}
	for i := 0; i < c; i++ {
		evs[i].Kind = Kind(body[i])
	}
	for i := 0; i < c; i++ {
		evs[i].Op = CollOp(body[c+i])
	}
	body = body[2*c:]
	for col := 0; col < 2; col++ {
		if len(body) < 8 {
			return parsed{}, errors.New("truncated timestamp column") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
		}
		bits := binary.LittleEndian.Uint64(body)
		body = body[8:]
		setTS := func(e *Event, b uint64) { e.Time = math.Float64frombits(b) }
		if col == 1 {
			setTS = func(e *Event, b uint64) { e.True = math.Float64frombits(b) }
		}
		setTS(&evs[0], bits)
		for i := 1; i < c; i++ {
			d, k := binary.Varint(body)
			if k <= 0 {
				return parsed{}, errors.New("bad timestamp delta") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
			}
			body = body[k:]
			bits += uint64(d)
			setTS(&evs[i], bits)
		}
	}
	for _, set := range colFieldSet {
		for i := 0; i < c; i++ {
			v, k := binary.Varint(body)
			if k <= 0 || v > math.MaxInt32 || v < math.MinInt32 {
				return parsed{}, errors.New("bad field column varint") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
			}
			body = body[k:]
			set(&evs[i], int32(v))
		}
	}
	if len(body) != 0 {
		return parsed{}, errors.New("trailing bytes after columnar frame") //tsync:rawerr — reason for the caller, which classifies and adds the byte offset (see readBlock/scan)
	}
	return parsed{typ: blockColFrame, rank: int(rank), count: c, decoded: evs}, nil
}

// blockReader reads v2 blocks from a buffered stream, optionally
// resynchronizing past corruption. It is shared by EventReader (whole
// file) and FrameDecoder (one rank's section); the accept hook carries
// each caller's rank-ordering rules, so both passes make identical
// skip-or-accept decisions over identical bytes — the property that
// keeps the index pass and the cursor pass of internal/stream agreeing
// on what was salvaged.
type blockReader struct {
	br     *bufio.Reader
	pos    func() int64       // stream position of the next unconsumed byte
	rank   func() int         // rank to attribute incidents to
	accept func(*parsed) bool // semantic validity beyond the payload itself
	pol    ResyncPolicy
	rep    *CorruptionReport

	payload []byte  // owned storage of the current block's payload
	colBuf  []Event // scratch for columnar frame decodes, recycled per block
}

func (b *blockReader) budgetBytes() error {
	if b.pol.MaxSkipBytes > 0 && b.rep.SkippedBytes > b.pol.MaxSkipBytes {
		return fmt.Errorf("%w: skipped %d bytes (limit %d)", ErrSalvageBudget, b.rep.SkippedBytes, b.pol.MaxSkipBytes)
	}
	return nil
}

// take copies the current block's payload (known to be buffered) into
// owned storage and consumes the whole block.
func (b *blockReader) take(hlen, plen int) ([]byte, error) {
	full, err := b.br.Peek(hlen + plen)
	if err != nil {
		return nil, err
	}
	if cap(b.payload) < plen {
		b.payload = make([]byte, plen)
	}
	b.payload = b.payload[:plen]
	copy(b.payload, full[hlen:])
	_, err = b.br.Discard(hlen + plen)
	return b.payload, err
}

// nextBlock returns the next accepted block and its start offset, io.EOF
// at a clean end of stream, or — in strict mode — ErrBadFormat at the
// first deviation. In resync mode deviations become incidents and the
// scan finds the next block that validates completely.
func (b *blockReader) nextBlock() (parsed, int64, error) {
	start := b.pos()
	p, err := b.readBlock(start)
	if err == nil || err == io.EOF || !b.pol.Enabled {
		return p, start, err
	}
	return b.scan(start, err)
}

// readBlock attempts a block at the current position. The resync path
// consumes nothing unless the whole block validates, so a failure leaves
// every byte in place for the scan; the strict path reads the payload
// directly (the buffer may be smaller than a block) and fails hard.
func (b *blockReader) readBlock(start int64) (parsed, error) {
	head, herr := b.br.Peek(blockHeadMax)
	if len(head) == 0 {
		if herr == nil || herr == io.EOF {
			return parsed{}, io.EOF
		}
		return parsed{}, herr
	}
	typ, plen, hlen, crc, err := parseBlockHead(head)
	if err != nil {
		return parsed{}, badFormat(fmt.Sprintf("block at byte %d", start), err)
	}
	if !b.pol.Enabled {
		if _, err := b.br.Discard(hlen); err != nil {
			return parsed{}, badFormat(fmt.Sprintf("block at byte %d", start), err)
		}
		if cap(b.payload) < plen {
			b.payload = make([]byte, plen)
		}
		b.payload = b.payload[:plen]
		if _, err := io.ReadFull(b.br, b.payload); err != nil {
			return parsed{}, badFormat(fmt.Sprintf("block payload at byte %d", start), err)
		}
		if crc32.Checksum(b.payload, castagnoli) != crc {
			return parsed{}, badFormat(fmt.Sprintf("block at byte %d", start), errors.New("checksum mismatch"))
		}
		p, perr := parsePayload(typ, b.payload, false, b.colBuf)
		if p.decoded != nil {
			b.colBuf = p.decoded
		}
		if perr != nil {
			return parsed{}, badFormat(fmt.Sprintf("block at byte %d", start), perr)
		}
		if b.accept != nil && !b.accept(&p) {
			return parsed{}, badFormat(fmt.Sprintf("block at byte %d", start), errors.New("block out of rank order"))
		}
		return p, nil
	}
	full, _ := b.br.Peek(hlen + plen)
	if len(full) < hlen+plen {
		return parsed{}, badFormat(fmt.Sprintf("block at byte %d", start), errors.New("truncated block"))
	}
	if crc32.Checksum(full[hlen:], castagnoli) != crc {
		return parsed{}, badFormat(fmt.Sprintf("block at byte %d", start), errors.New("checksum mismatch"))
	}
	p, perr := parsePayload(typ, full[hlen:], true, b.colBuf)
	if p.decoded != nil {
		b.colBuf = p.decoded
	}
	if perr != nil {
		return parsed{}, badFormat(fmt.Sprintf("block at byte %d", start), perr)
	}
	if b.accept != nil && !b.accept(&p) {
		return parsed{}, badFormat(fmt.Sprintf("block at byte %d", start), errors.New("block out of rank order"))
	}
	payload, err := b.take(hlen, plen)
	if err != nil {
		return parsed{}, err
	}
	if p.typ == blockFrame {
		p.events = payload[p.evOff:]
	}
	return p, nil
}

// scan recovers from cause: it searches forward for the next block whose
// structure, checksum, full payload decode, and accept hook all pass,
// recording the skipped span as one incident. Candidates are only
// considered at offsets where the whole block provably fits in the
// window, and every rejected full window discards maxBlockSize bytes, so
// the scan always terminates after work linear in the stream length.
func (b *blockReader) scan(start int64, cause error) (parsed, int64, error) {
	rank := b.rank()
	reason := cause.Error()
	var skipped int64
	for {
		win, _ := b.br.Peek(scanWindow)
		full := len(win) == scanWindow
		searchEnd := maxBlockSize
		if !full {
			searchEnd = len(win)
		}
		from := 0
		if skipped == 0 {
			from = 1 // the failed position itself is corrupt
		}
		for from < searchEnd {
			rel := bytes.Index(win[from:searchEnd], frameMarker[:])
			if rel < 0 {
				break
			}
			i := from + rel
			p, hlen, plen, ok := b.validateCandidate(win[i:])
			if !ok {
				from = i + 1
				continue
			}
			skipped += int64(i)
			b.rep.note(start, rank, skipped, reason)
			if err := b.budgetBytes(); err != nil {
				return parsed{}, start, err
			}
			if _, err := b.br.Discard(i); err != nil {
				return parsed{}, start, err
			}
			blockStart := b.pos()
			payload, err := b.take(hlen, plen)
			if err != nil {
				return parsed{}, start, err
			}
			if p.typ == blockFrame {
				p.events = payload[p.evOff:]
			}
			return p, blockStart, nil
		}
		if !full {
			// End of stream with nothing salvageable left.
			skipped += int64(len(win))
			if _, err := b.br.Discard(len(win)); err != nil {
				return parsed{}, start, err
			}
			b.rep.note(start, rank, skipped, reason)
			if err := b.budgetBytes(); err != nil {
				return parsed{}, start, err
			}
			return parsed{}, start, io.EOF
		}
		skipped += int64(searchEnd)
		if _, err := b.br.Discard(searchEnd); err != nil {
			return parsed{}, start, err
		}
		if b.pol.MaxSkipBytes > 0 && b.rep.SkippedBytes+skipped > b.pol.MaxSkipBytes {
			b.rep.note(start, rank, skipped, reason)
			return parsed{}, start, fmt.Errorf("%w: skipped %d bytes (limit %d)", ErrSalvageBudget, b.rep.SkippedBytes, b.pol.MaxSkipBytes)
		}
	}
}

// validateCandidate fully validates a candidate block at the front of
// buf without consuming anything. ok requires the entire block to lie
// within buf.
func (b *blockReader) validateCandidate(buf []byte) (parsed, int, int, bool) {
	head := buf
	if len(head) > blockHeadMax {
		head = head[:blockHeadMax]
	}
	typ, plen, hlen, crc, err := parseBlockHead(head)
	if err != nil || hlen+plen > len(buf) {
		return parsed{}, 0, 0, false
	}
	if crc32.Checksum(buf[hlen:hlen+plen], castagnoli) != crc {
		return parsed{}, 0, 0, false
	}
	p, perr := parsePayload(typ, buf[hlen:hlen+plen], true, b.colBuf)
	if p.decoded != nil {
		b.colBuf = p.decoded
	}
	if perr != nil {
		return parsed{}, 0, 0, false
	}
	if b.accept != nil && !b.accept(&p) {
		return parsed{}, 0, 0, false
	}
	return p, hlen, plen, true
}

// frameWriter is the v2 encoding layer under EventWriter: it batches
// events into frames and emits checksummed blocks. All encoding goes
// through writer-owned buffers, so the per-event hot path allocates
// nothing once the buffers reach steady state.
type frameWriter struct {
	bw       *bufio.Writer
	limit    int  // events per frame
	columnar bool // emit blockColFrame instead of blockFrame

	rank   int
	events []byte // pending frame's encoded events (row mode)
	count  int

	evBuf []Event // pending frame's events (columnar mode buffers
	// structs: the column transform needs the whole batch)

	blockHead []byte // scratch: marker | type | len | crc
	payHead   []byte // scratch: frame/proc payload prefix
	colPay    []byte // scratch: columnar payload body
}

func newFrameWriter(bw *bufio.Writer, frameEvents int, columnar bool) *frameWriter {
	fw := &frameWriter{
		bw:        bw,
		limit:     frameEvents,
		columnar:  columnar,
		blockHead: make([]byte, 0, blockHeadMax),
		payHead:   make([]byte, 0, 64),
	}
	if columnar {
		fw.evBuf = make([]Event, 0, frameEvents)
	} else {
		fw.events = make([]byte, 0, min(frameEvents, 1024)*32)
	}
	return fw
}

// writeBlock emits one block whose payload is the concatenation of
// parts.
func (fw *frameWriter) writeBlock(typ byte, parts ...[]byte) error {
	total := 0
	var crc uint32
	for _, p := range parts {
		total += len(p)
		crc = crc32.Update(crc, castagnoli, p)
	}
	if total > maxFramePayload {
		return fmt.Errorf("trace: block payload of %d bytes exceeds the format limit", total)
	}
	head := fw.blockHead[:0]
	head = append(head, frameMarker[:]...)
	head = append(head, typ)
	head = binary.AppendUvarint(head, uint64(total))
	head = binary.LittleEndian.AppendUint32(head, crc)
	fw.blockHead = head
	if _, err := fw.bw.Write(head); err != nil {
		return err
	}
	for _, p := range parts {
		if _, err := fw.bw.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// flushFrame emits the pending frame, if any.
func (fw *frameWriter) flushFrame() error {
	if fw.columnar {
		if len(fw.evBuf) == 0 {
			return nil
		}
		head := fw.payHead[:0]
		head = binary.AppendUvarint(head, uint64(fw.rank))
		head = binary.AppendUvarint(head, uint64(len(fw.evBuf)))
		fw.payHead = head
		fw.colPay = appendColFrame(fw.colPay[:0], fw.evBuf)
		err := fw.writeBlock(blockColFrame, head, fw.colPay)
		fw.evBuf = fw.evBuf[:0]
		return err
	}
	if fw.count == 0 {
		return nil
	}
	head := fw.payHead[:0]
	head = binary.AppendUvarint(head, uint64(fw.rank))
	head = binary.AppendUvarint(head, uint64(fw.count))
	fw.payHead = head
	err := fw.writeBlock(blockFrame, head, fw.events)
	fw.events = fw.events[:0]
	fw.count = 0
	return err
}

// add appends one event to the pending frame, cutting the frame at the
// event limit or near the payload ceiling. In columnar mode the limit
// alone bounds the payload: normalize clamps it to maxColFrameEvents,
// whose worst-case encoding fits maxFramePayload by construction.
func (fw *frameWriter) add(ev *Event) error {
	if fw.columnar {
		fw.evBuf = append(fw.evBuf, *ev)
		if len(fw.evBuf) >= fw.limit {
			return fw.flushFrame()
		}
		return nil
	}
	fw.events = appendEvent(fw.events, ev)
	fw.count++
	if fw.count >= fw.limit || len(fw.events) >= maxFramePayload-maxEventSize-2*binary.MaxVarintLen64 {
		return fw.flushFrame()
	}
	return nil
}

// beginProc flushes the previous process's tail frame and emits a proc
// block.
func (fw *frameWriter) beginProc(ph ProcHeader) error {
	if err := fw.flushFrame(); err != nil {
		return err
	}
	fw.rank = ph.Rank
	p := fw.payHead[:0]
	p = binary.AppendUvarint(p, uint64(ph.Rank))
	p = binary.AppendUvarint(p, uint64(ph.Core.Node))
	p = binary.AppendUvarint(p, uint64(ph.Core.Chip))
	p = binary.AppendUvarint(p, uint64(ph.Core.Core))
	p = binary.AppendUvarint(p, uint64(len(ph.Clock)))
	p = append(p, ph.Clock...)
	p = binary.AppendUvarint(p, uint64(ph.EventCount))
	fw.payHead = p
	return fw.writeBlock(blockProc, p)
}

// FrameDecoder reads the events of one process's v2 section — the byte
// range internal/stream's index pass attributed to a single rank. It is
// the v2 counterpart of EventDecoder: io.EOF at a clean section end,
// ErrBadFormat (strict) or incident-and-continue (resync) on corruption.
// The accept rule — frame blocks of exactly this rank — matches what the
// index pass accepted inside the section, so both passes skip the same
// bytes and deliver the same events.
type FrameDecoder struct {
	cr     countingReader
	blk    blockReader
	rank   int
	rep    CorruptionReport
	events []byte // undecoded remainder of the current frame (row frames)

	// decoded/dpos serve columnar frames, whose events materialize at
	// block-parse time into the blockReader's scratch; they must drain
	// before the next block is read (the scratch is then recycled).
	decoded []Event
	dpos    int
}

// NewFrameDecoder returns a decoder over r for the given rank's section.
func NewFrameDecoder(r io.Reader, rank int, pol ResyncPolicy) *FrameDecoder {
	d := &FrameDecoder{rank: rank}
	d.cr = countingReader{r: r}
	size := decoderBufSize
	if pol.Enabled {
		size = scanWindow
	}
	br := bufio.NewReaderSize(&d.cr, size)
	d.blk = blockReader{
		br:   br,
		pos:  func() int64 { return d.cr.n - int64(br.Buffered()) },
		rank: func() int { return rank },
		accept: func(p *parsed) bool {
			return (p.typ == blockFrame || p.typ == blockColFrame) && p.rank == rank
		},
		pol: pol,
		rep: &d.rep,
	}
	return d
}

// Report exposes the corruption incidents seen so far. The pointer stays
// valid and updates as decoding proceeds.
func (d *FrameDecoder) Report() *CorruptionReport { return &d.rep }

// Decode reads the next event into ev.
func (d *FrameDecoder) Decode(ev *Event) error {
	if d.dpos < len(d.decoded) {
		*ev = d.decoded[d.dpos]
		d.dpos++
		return nil
	}
	d.decoded, d.dpos = nil, 0
	for len(d.events) == 0 {
		p, _, err := d.blk.nextBlock()
		if err != nil {
			return err
		}
		if p.typ == blockColFrame {
			*ev = p.decoded[0]
			d.decoded, d.dpos = p.decoded, 1
			return nil
		}
		d.events = p.events
	}
	n, ok := decodeEvent(d.events, ev)
	if !ok {
		// Unreachable in resync mode: accepted blocks are deep-validated.
		d.events = nil
		return badFormat(fmt.Sprintf("frame events (at byte %d, rank %d)", d.blk.pos(), d.rank), errors.New("malformed event"))
	}
	d.events = d.events[n:]
	return nil
}

// DecodeBatch decodes up to len(evs) events, returning how many were
// filled; a clean section end surfaces as (n, io.EOF). Columnar frames
// copy in bulk; row frames decode in a tight loop over the validated
// frame bytes.
func (d *FrameDecoder) DecodeBatch(evs []Event) (int, error) {
	i := 0
	for i < len(evs) {
		if d.dpos < len(d.decoded) {
			n := copy(evs[i:], d.decoded[d.dpos:])
			d.dpos += n
			i += n
			continue
		}
		if len(d.events) > 0 {
			if n, ok := decodeEvent(d.events, &evs[i]); ok {
				d.events = d.events[n:]
				i++
				continue
			}
		}
		if err := d.Decode(&evs[i]); err != nil {
			return i, err
		}
		i++
	}
	return len(evs), nil
}
