package tsmutate_test

import (
	"testing"

	"tsync/internal/lint/linttest"
	"tsync/internal/lint/tsmutate"
)

func TestTsmutate(t *testing.T) {
	linttest.Run(t, tsmutate.Analyzer,
		"tsync/internal/replay", // positive: mutation outside the pipeline (tests exempt)
		"tsync/internal/interp", // negative: sanctioned correction package
	)
}
