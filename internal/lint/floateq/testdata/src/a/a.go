// Package a is the fixture for the floateq analyzer: exact comparisons
// on timestamp-named float64 expressions are flagged; zero-sentinel
// checks, NaN tests, annotated bit-for-bit checks, epsilon comparisons
// and non-float or non-timestamp operands are not.
package a

import "math"

// Event mirrors the shape of trace.Event for comparison purposes.
type Event struct {
	Time   float64
	Kind   int
	Name   string
	Offset float64
}

// Bad exercises the flagged forms.
func Bad(a, b Event, sendTime float64, offsets []float64, i int) bool {
	if a.Time == b.Time { // want `exact == comparison on float64 timestamp "Time"`
		return true
	}
	if sendTime != b.Time { // want `exact != comparison on float64 timestamp "sendTime"`
		return true
	}
	if offsets[i] == 0.25 { // want `exact == comparison on float64 timestamp "offsets"`
		return true
	}
	recvLatency := a.Time - b.Time
	return recvLatency == 1e-6 // want `exact == comparison on float64 timestamp "recvLatency"`
}

// Good exercises every exemption.
func Good(a, b Event, eps float64) bool {
	if a.Time != 0 { // zero is the unset sentinel, assigned exactly
		return true
	}
	if a.Time != a.Time { // the portable NaN test
		return true
	}
	if a.Time == b.Time { //tsync:exact — replaying the same pipeline must be bit-for-bit deterministic
		return true
	}
	if a.Kind == b.Kind || a.Name == b.Name { // not floats
		return true
	}
	return math.Abs(a.Time-b.Time) <= eps // the epsilon idiom floateq points to
}
