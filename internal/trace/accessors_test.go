package trace

// Round-trip coverage for the reader/writer position and metadata
// accessors that the streaming layer depends on: offsets must account
// for buffering, the v1 splice path must copy bytes verbatim, and the
// sanctioned SetTime door must actually write the field.

import (
	"bytes"
	"io"
	"testing"

	"tsync/internal/topology"
	"tsync/internal/xrand"
)

func TestSetTimeWritesField(t *testing.T) {
	var ev Event
	ev.SetTime(4.25)
	if ev.Time != 4.25 { //tsync:exact — the sanctioned setter must store the exact bits it was given
		t.Fatalf("SetTime: Time = %v, want 4.25", ev.Time)
	}
}

func TestHeaderMinLatencyBetween(t *testing.T) {
	tr := genTrace(2, 1, 1)
	tr.MinLatency = [4]float64{1e-9, 2e-9, 3e-9, 4e-9}
	h := HeaderOf(tr)
	a := topology.CoreID{Node: 0}
	b := topology.CoreID{Node: 1}
	if got, want := h.MinLatencyBetween(a, b), tr.MinLatencyBetween(0, 1); got != want { //tsync:exact — both sides read the same table entry; no arithmetic involved
		t.Fatalf("MinLatencyBetween: header %v, trace %v", got, want)
	}
}

func TestReaderWriterPositions(t *testing.T) {
	tr := genTrace(2, 32, 9)

	var buf bytes.Buffer
	ew, err := NewEventWriter(&buf, HeaderOf(tr))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Procs {
		ph := ProcHeader{Rank: p.Rank, Core: p.Core, Clock: p.Clock, EventCount: len(p.Events)}
		if err := ew.BeginProc(ph); err != nil {
			t.Fatal(err)
		}
		for i := range p.Events {
			if err := ew.Write(&p.Events[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ew.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ew.Offset(); got != int64(buf.Len()) {
		t.Fatalf("writer Offset = %d, want the %d bytes written", got, buf.Len())
	}

	er, err := NewEventReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v := er.Version(); v != Version1 {
		t.Fatalf("Version = %d, want %d", v, Version1)
	}
	if er.TookGap() {
		t.Fatal("TookGap true on a clean stream")
	}
	var prevEnd int64
	for {
		ph, err := er.NextProc()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ss := er.SectionStart(); ss < prevEnd {
			t.Fatalf("rank %d: SectionStart %d before previous section end %d", ph.Rank, ss, prevEnd)
		}
		var ev Event
		for i := 0; i < ph.EventCount; i++ {
			if err := er.Read(&ev); err != nil {
				t.Fatal(err)
			}
		}
		if pos, off := er.Position(), er.Offset(); pos > off {
			t.Fatalf("rank %d: Position %d beyond Offset %d", ph.Rank, pos, off)
		}
		prevEnd = er.Position()
	}
	if got := er.Offset(); got != int64(buf.Len()) {
		t.Fatalf("reader Offset after EOF = %d, want %d", got, buf.Len())
	}
}

func TestCopyEventsSplicesV1(t *testing.T) {
	// pre-encode a run of events with the standalone encoder
	rng := xrand.NewSource(3)
	events := make([]Event, 16)
	var enc bytes.Buffer
	e := NewEventEncoder(&enc)
	for i := range events {
		events[i] = randomEvent(rng)
		if err := e.Encode(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if e.Count() != len(events) {
		t.Fatalf("encoder Count = %d, want %d", e.Count(), len(events))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	// splice them into a writer without re-encoding
	var buf bytes.Buffer
	ew, err := NewEventWriter(&buf, Header{Machine: "m", Timer: "TSC", ProcCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ew.BeginProc(ProcHeader{Rank: 0, Clock: "TSC@0", EventCount: len(events)}); err != nil {
		t.Fatal(err)
	}
	if err := ew.CopyEvents(bytes.NewReader(enc.Bytes()), len(events)); err != nil {
		t.Fatal(err)
	}
	if err := ew.Close(); err != nil {
		t.Fatal(err)
	}

	// the spliced stream must decode to the original events
	er, err := NewEventReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ph, err := er.NextProc()
	if err != nil {
		t.Fatal(err)
	}
	if ph.EventCount != len(events) {
		t.Fatalf("EventCount = %d, want %d", ph.EventCount, len(events))
	}
	for i := range events {
		var ev Event
		if err := er.Read(&ev); err != nil {
			t.Fatal(err)
		}
		if ev != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, ev, events[i])
		}
	}

	// splicing more events than declared must fail up front
	var buf2 bytes.Buffer
	ew2, err := NewEventWriter(&buf2, Header{Machine: "m", Timer: "TSC", ProcCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ew2.BeginProc(ProcHeader{Rank: 0, Clock: "TSC@0", EventCount: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ew2.CopyEvents(bytes.NewReader(enc.Bytes()), len(events)); err == nil {
		t.Fatal("CopyEvents beyond the declared count succeeded")
	}
}
