package mpi

import (
	"testing"

	"tsync/internal/trace"
)

func TestCommWorldMirrorsRank(t *testing.T) {
	w := newTestWorld(t, 4, false)
	err := w.Run(func(r *Rank) {
		c := r.CommWorld()
		if c.Rank() != r.Rank() || c.Size() != r.Size() {
			t.Errorf("world comm disagrees with rank: %d/%d vs %d/%d",
				c.Rank(), c.Size(), r.Rank(), r.Size())
		}
		v := c.Allreduce(8, 1, func(a, b any) any { return a.(int) + b.(int) })
		if v.(int) != 4 {
			t.Errorf("world-comm allreduce = %v", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRowsAndColumns(t *testing.T) {
	// the grid idiom: 2x4 grid, split into row and column communicators
	w := newTestWorld(t, 8, false)
	rowSums := make([]int, 8)
	colSums := make([]int, 8)
	err := w.Run(func(r *Rank) {
		world := r.CommWorld()
		row := world.Split(r.Rank()/4, r.Rank()%4) // 2 rows of 4
		col := world.Split(r.Rank()%4, r.Rank()/4) // 4 columns of 2
		if row.Size() != 4 || col.Size() != 2 {
			t.Errorf("rank %d: row size %d col size %d", r.Rank(), row.Size(), col.Size())
			return
		}
		if row.Rank() != r.Rank()%4 || col.Rank() != r.Rank()/4 {
			t.Errorf("rank %d: row rank %d col rank %d", r.Rank(), row.Rank(), col.Rank())
		}
		sum := func(a, b any) any { return a.(int) + b.(int) }
		rowSums[r.Rank()] = row.Allreduce(8, r.Rank(), sum).(int)
		colSums[r.Rank()] = col.Allreduce(8, r.Rank(), sum).(int)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		wantRow := 0
		for j := 0; j < 4; j++ {
			wantRow += (i/4)*4 + j
		}
		if rowSums[i] != wantRow {
			t.Fatalf("rank %d row sum %d, want %d", i, rowSums[i], wantRow)
		}
		wantCol := (i % 4) + (i%4 + 4)
		if colSums[i] != wantCol {
			t.Fatalf("rank %d col sum %d, want %d", i, colSums[i], wantCol)
		}
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	w := newTestWorld(t, 4, false)
	err := w.Run(func(r *Rank) {
		color := 0
		if r.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		c := r.CommWorld().Split(color, r.Rank())
		if r.Rank() == 3 {
			if c != nil {
				t.Errorf("undefined color returned a communicator")
			}
			return
		}
		if c.Size() != 3 {
			t.Errorf("rank %d: size %d, want 3", r.Rank(), c.Size())
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommPointToPoint(t *testing.T) {
	w := newTestWorld(t, 6, true)
	err := w.Run(func(r *Rank) {
		// odd/even communicators; ping within each
		c := r.CommWorld().Split(r.Rank()%2, r.Rank())
		if c.Rank() == 0 {
			c.Send(1, 7, 64, "hi from comm "+string(rune('0'+r.Rank()%2)))
		} else if c.Rank() == 1 {
			m := c.Recv(0, 7)
			if m.Source != 0 {
				t.Errorf("comm-rank source %d, want 0", m.Source)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	msgs, err := tr.Messages()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("%d messages traced, want 2", len(msgs))
	}
	// comm ids must distinguish the two channels and appear in events
	comms := map[int32]bool{}
	for _, m := range msgs {
		comms[tr.Procs[m.From].Events[m.FromIdx].Comm] = true
	}
	if len(comms) != 2 {
		t.Fatalf("expected 2 distinct comm ids, got %v", comms)
	}
}

func TestCommCollectivesTraced(t *testing.T) {
	w := newTestWorld(t, 4, true)
	err := w.Run(func(r *Rank) {
		c := r.CommWorld().Split(r.Rank()%2, r.Rank())
		c.Barrier()
		c.Bcast(0, 32, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	colls, err := tr.Collectives()
	if err != nil {
		t.Fatal(err)
	}
	// the two Splits each ran a Gather and Bcast on the world comm (4
	// participants... actually on the parent comm), plus per sub-comm a
	// barrier and bcast: count only sub-comm ops by comm id > 0
	var sub int
	for _, c := range colls {
		if c.Comm > 0 {
			sub++
			if len(c.Begin) != 2 {
				t.Fatalf("sub-comm collective has %d participants", len(c.Begin))
			}
		}
	}
	if sub != 4 { // 2 comms × (barrier + bcast)
		t.Fatalf("%d sub-comm collectives, want 4", sub)
	}
	// roots of sub-comm bcasts must be recorded as world ranks
	for _, c := range colls {
		if c.Comm > 0 && c.Op == trace.OpBcast {
			if c.Root != 0 && c.Root != 1 {
				t.Fatalf("bcast root %d not a world rank of a member", c.Root)
			}
		}
	}
}

func TestNestedSplit(t *testing.T) {
	w := newTestWorld(t, 8, false)
	err := w.Run(func(r *Rank) {
		half := r.CommWorld().Split(r.Rank()/4, r.Rank())
		quarter := half.Split(half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			t.Errorf("nested split size %d", quarter.Size())
		}
		v := quarter.Allreduce(8, 1, func(a, b any) any { return a.(int) + b.(int) })
		if v.(int) != 2 {
			t.Errorf("nested allreduce %v", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommIDsUniqueAcrossSplits(t *testing.T) {
	w := newTestWorld(t, 4, false)
	err := w.Run(func(r *Rank) {
		a := r.CommWorld().Split(0, r.Rank())
		b := r.CommWorld().Split(r.Rank()%2, r.Rank())
		c := a.Split(r.Rank()%2, r.Rank())
		ids := map[int32]bool{0: true, a.ID(): true, b.ID(): true, c.ID(): true}
		if len(ids) != 4 {
			t.Errorf("communicator ids collide: %v %v %v", a.ID(), b.ID(), c.ID())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommRendezvous(t *testing.T) {
	const large = 1 << 20
	w := newTestWorld(t, 4, false)
	var sendDone, recvPosted float64
	err := w.Run(func(r *Rank) {
		c := r.CommWorld().Split(r.Rank()%2, r.Rank())
		if c.Rank() == 0 {
			c.Send(1, 0, large, "bulk")
			if r.Rank() == 0 {
				sendDone = r.Now()
			}
		} else {
			r.Compute(5e-3)
			if r.Rank() == 2 {
				recvPosted = r.Now()
			}
			m := c.Recv(0, 0)
			if m.Data != "bulk" {
				t.Errorf("payload lost")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendDone < recvPosted {
		t.Fatalf("comm rendezvous send completed at %v before receive at %v", sendDone, recvPosted)
	}
}

// TestWildcardAcrossComms: a wildcard receive must match only its own
// communicator, and the deterministic mailbox scan must order channels
// that are equal in (src, tag) and differ only in communicator id.
func TestWildcardAcrossComms(t *testing.T) {
	w := newTestWorld(t, 2, false)
	var worldMsg, subMsg Msg
	err := w.Run(func(r *Rank) {
		sub := r.CommWorld().Split(0, r.Rank())
		if r.Rank() == 0 {
			r.Send(1, 5, 8, "world")
			sub.Send(1, 5, 8, "sub")
		} else {
			// wait until both messages sit in the mailbox: the scan then
			// sorts two channels equal in (src, tag), differing in comm
			r.Compute(1e-2)
			worldMsg = r.Recv(AnySource, AnyTag)
			subMsg = sub.Recv(0, 5)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if worldMsg.Data != "world" {
		t.Fatalf("world wildcard received %v, want the world-comm message", worldMsg.Data)
	}
	if subMsg.Data != "sub" {
		t.Fatalf("sub-comm receive got %v, want the sub-comm message", subMsg.Data)
	}
}
