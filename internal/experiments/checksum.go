package experiments

// Checksums over driver results. The worker-count invariance tests and
// the bench harness (cmd/bench) compare these digests between serial and
// parallel runs to prove the fan-out is bit-identical — which is why the
// float fields are hashed by their IEEE-754 bits, not by a rounded
// rendering.

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"

	"tsync/internal/measure"
	"tsync/internal/trace"
)

func sumU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func sumF64(h hash.Hash, f float64) { sumU64(h, math.Float64bits(f)) }

func sumInt(h hash.Hash, v int) { sumU64(h, uint64(int64(v))) }

func sumTrace(h hash.Hash, t *trace.Trace) error {
	if t == nil {
		sumU64(h, 0)
		return nil
	}
	_, err := trace.Write(h, t)
	return err
}

func sumOffsets(h hash.Hash, tab []measure.Offset) {
	sumInt(h, len(tab))
	for _, o := range tab {
		sumInt(h, o.Rank)
		sumF64(h, o.WorkerTime)
		sumF64(h, o.Offset)
		sumF64(h, o.RTT)
	}
}

// ChecksumTrace digests a trace via its codec encoding (FNV-64a over the
// exact output bytes), so two traces have equal checksums iff trace.Write
// would produce identical files.
func ChecksumTrace(t *trace.Trace) (string, error) {
	h := fnv.New64a()
	if err := sumTrace(h, t); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// ChecksumTraceFile digests an already-encoded trace file byte for byte
// with the same hash as ChecksumTrace, pinning streaming writers to the
// in-memory codec path.
func ChecksumTraceFile(r io.Reader) (string, error) {
	h := fnv.New64a()
	if _, err := io.Copy(h, r); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Checksum digests every field of the result, including the retained
// traces via their codec encoding.
func (r *AppViolationsResult) Checksum() (string, error) {
	h := fnv.New64a()
	h.Write([]byte(r.App))
	sumF64(h, r.PctReversed)
	sumF64(h, r.PctReversedLogical)
	sumF64(h, r.PctMessageEvents)
	for _, v := range []int{
		r.Census.TotalEvents, r.Census.MessageEvents, r.Census.Messages,
		r.Census.Reversed, r.Census.ClockCondition,
		r.Census.LogicalMessages, r.Census.ReversedLogical,
	} {
		sumInt(h, v)
	}
	if err := sumTrace(h, r.Trace); err != nil {
		return "", err
	}
	if err := sumTrace(h, r.RawTrace); err != nil {
		return "", err
	}
	sumOffsets(h, r.InitOffsets)
	sumOffsets(h, r.FinOffsets)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Checksum digests every field of the result, including the retained
// trace via its codec encoding.
func (r *OMPStudyResult) Checksum() (string, error) {
	h := fnv.New64a()
	sumInt(h, r.Threads)
	sumF64(h, r.PctAny)
	sumF64(h, r.PctEntry)
	sumF64(h, r.PctExit)
	sumF64(h, r.PctBarrier)
	if err := sumTrace(h, r.Trace); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// ChecksumMethods digests a Section V ablation table (method names, row
// order, violation counts, distortions and error texts).
func ChecksumMethods(rows []MethodResult) string {
	h := fnv.New64a()
	sumInt(h, len(rows))
	for _, r := range rows {
		h.Write([]byte(r.Method))
		sumInt(h, r.Violations)
		sumF64(h, r.Distortion.MaxAbs)
		sumF64(h, r.Distortion.MeanAbs)
		sumInt(h, r.Distortion.Shrunk)
		sumInt(h, r.Distortion.N)
		if r.Err != nil {
			h.Write([]byte(r.Err.Error()))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
