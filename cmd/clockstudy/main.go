// Command clockstudy regenerates the clock-deviation experiments of
// Figs. 4, 5 and 6: residual deviations of worker clocks from the master
// after offset alignment or linear offset interpolation, across timers,
// machines and run lengths.
//
// Named presets reproduce the paper's panels:
//
//	clockstudy -fig 4a     MPI_Wtime, 300 s, offset alignment (Fig. 4a)
//	clockstudy -fig 5b     PowerPC TB, 3600 s, interpolation (Fig. 5b)
//	clockstudy -fig 6      Xeon TSC, 300 s, interpolation vs latency
//
// Free-form studies combine -machine, -timer, -dur and -correct. Output is
// an ASCII plot plus summary; -csv emits the full series instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"tsync/internal/clock"
	"tsync/internal/experiments"
	"tsync/internal/render"
	"tsync/internal/stats"
	"tsync/internal/topology"
)

func main() {
	var (
		fig      = flag.String("fig", "", "paper preset: 4a, 4b, 4c, 5a, 5b, 5c, 6 (overrides other selectors)")
		machine  = flag.String("machine", "xeon", "machine: xeon, ppc, opteron, itanium")
		timer    = flag.String("timer", "tsc", "timer: tsc, tb, rtc, gtod, mpiwtime, cycle, global")
		dur      = flag.Float64("dur", 300, "run duration in simulated seconds")
		interval = flag.Float64("interval", 0, "sample interval (default dur/300)")
		procs    = flag.Int("procs", 4, "number of simulated processes (one per node)")
		workers  = flag.Int("workers", 0, "parallel worker bound for -rank-timers (0 = all CPUs); results are identical for any value")
		correct  = flag.String("correct", "align", "correction: none, align, interp, piecewise")
		mids     = flag.Int("mids", 3, "mid-run offset measurements for -correct piecewise")
		scope    = flag.String("scope", "node", "process placement scope: node, chip, core")
		seed     = flag.Uint64("seed", 1, "random seed")
		measured = flag.Bool("measured", false, "sample through noisy clock reads instead of ideal drift")
		csv      = flag.Bool("csv", false, "emit the series as CSV instead of a plot")
		adev     = flag.Bool("adev", false, "report Allan deviations of each worker's deviation series")
		rank     = flag.Bool("rank-timers", false, "compare all timer technologies on the machine instead of plotting one")
		width    = flag.Int("width", 100, "plot width")
		height   = flag.Int("height", 24, "plot height")
	)
	flag.Parse()

	if *rank {
		if err := rankTimers(*machine, *dur, *seed, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "clockstudy:", err)
			os.Exit(1)
		}
		return
	}
	cfg, title, err := buildConfig(*fig, *machine, *timer, *dur, *interval, *procs, *correct, *scope, *seed, *measured, *mids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clockstudy:", err)
		os.Exit(1)
	}
	res, err := experiments.ClockStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clockstudy:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(render.SeriesCSV(res.Series, nil))
		return
	}
	if *adev {
		printAllan(res, cfg.Interval)
	}
	fmt.Print(render.SeriesPlot(res.Series, *width, *height, title, res.HalfLatency, -res.HalfLatency))
	fmt.Printf("\nmax |deviation|: %s µs   half l_min bound: %s µs (dashed)\n",
		render.Micro(res.Series.MaxAbsDeviation()), render.Micro(res.HalfLatency))
	if res.Exceeded {
		fmt.Printf("deviation first exceeds the bound at t = %.0f s — clock-condition violations possible from there on\n", res.FirstExceed)
	} else {
		fmt.Println("deviation stayed within the bound for this run and seed")
	}
}

// rankTimers prints the Section VI comparison: residual deviations per
// timer technology after alignment and after interpolation.
func rankTimers(machine string, dur float64, seed uint64, workers int) error {
	m, err := topology.ParseMachine(machine)
	if err != nil {
		return err
	}
	rows, err := experiments.RankTimers(m, nil, dur, seed, workers)
	if err != nil {
		return err
	}
	fmt.Printf("timer ranking on %s over %.0f s (4 processes, one per node), best first:\n\n", m.Name, dur)
	var cells [][]string
	for _, r := range rows {
		verdict := "within bound"
		if r.Exceeded {
			verdict = fmt.Sprintf("exceeds l_min/2 at t=%.0f s", r.FirstExceed)
		}
		cells = append(cells, []string{
			r.Timer.String(),
			render.Micro(r.MaxDevAlign),
			render.Micro(r.MaxDevInterp),
			verdict,
		})
	}
	fmt.Print(render.Table([]string{"timer", "align-only max dev [µs]", "interp max dev [µs]", "clock condition"}, cells))
	return nil
}

// printAllan reports oscillator stability as Allan deviations of each
// worker-vs-master deviation series at a few averaging times.
func printAllan(res *experiments.ClockStudyResult, interval float64) {
	fmt.Println("Allan deviation of worker deviations (oscillator-pair stability):")
	for i, dev := range res.Series.Dev {
		fmt.Printf("  worker %d:", i+1)
		for _, m := range []int{1, 4, 16, 64} {
			s, err := stats.AllanDeviation(dev, interval, m)
			if err != nil {
				continue
			}
			fmt.Printf("  σ(%gs)=%.2e", float64(m)*interval, s)
		}
		fmt.Println()
	}
	fmt.Println()
}

func buildConfig(fig, machine, timer string, dur, interval float64, procs int, correct, scope string, seed uint64, measured bool, mids int) (experiments.ClockStudyConfig, string, error) {
	var cfg experiments.ClockStudyConfig
	var err error
	var title string
	switch fig {
	case "4a", "4b", "4c":
		cfg, err = experiments.Fig4Config(fig[1:], seed)
		title = fmt.Sprintf("Fig. %s: %s deviations after offset alignment (%s)", fig, cfg.Timer, cfg.Machine.Name)
	case "5a", "5b", "5c":
		cfg, err = experiments.Fig5Config(fig[1:], seed)
		title = fmt.Sprintf("Fig. %s: %s deviations after linear interpolation (%s)", fig, cfg.Timer, cfg.Machine.Name)
	case "6":
		cfg = experiments.Fig6Config(seed)
		title = "Fig. 6: Xeon TSC after linear interpolation, short run, vs ±l_min/2"
	case "":
		m, merr := topology.ParseMachine(machine)
		if merr != nil {
			return cfg, "", merr
		}
		k, kerr := clock.ParseKind(timer)
		if kerr != nil {
			return cfg, "", kerr
		}
		if interval <= 0 {
			interval = dur / 300
		}
		cfg = experiments.ClockStudyConfig{
			Machine:         m,
			Timer:           k,
			Duration:        dur,
			Interval:        interval,
			Procs:           procs,
			Correction:      experiments.Correction(correct),
			Seed:            seed,
			Measured:        measured,
			MidMeasurements: mids,
		}
		switch scope {
		case "node":
		case "chip":
			cfg.Pinning, err = topology.InterChip(m, procs)
		case "core":
			cfg.Pinning, err = topology.InterCore(m, procs)
		default:
			return cfg, "", fmt.Errorf("unknown scope %q", scope)
		}
		title = fmt.Sprintf("%s deviations on %s after %s over %.0f s", k, m.Name, correct, dur)
	default:
		return cfg, "", fmt.Errorf("unknown figure preset %q", fig)
	}
	return cfg, title, err
}
