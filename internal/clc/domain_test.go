package clc

import (
	"math"
	"testing"

	"tsync/internal/topology"
	"tsync/internal/trace"
)

// domainTrace: ranks 0 and 1 are co-located on node 0 (synchronized
// clocks); rank 2 is remote. Rank 2 sends to rank 0 with a violated
// receive; rank 1 has local events around the violation time.
func domainTrace() *trace.Trace {
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0.5e-6, 1e-6, 4e-6}
	tr.RegionID("w")
	tr.Procs = []trace.Proc{
		{Rank: 0, Core: topology.CoreID{Node: 0, Chip: 0}, Events: []trace.Event{
			{Kind: trace.Recv, Time: 1.0 - 80e-6, True: 1.0 + 5e-6, Partner: 2, Region: -1, Root: -1},
			{Kind: trace.Enter, Time: 1.0 - 60e-6, True: 1.0 + 25e-6, Region: 0, Partner: -1, Root: -1},
		}},
		{Rank: 1, Core: topology.CoreID{Node: 0, Chip: 1}, Events: []trace.Event{
			// events close in time to rank 0's corrected receive
			{Kind: trace.Enter, Time: 1.0 - 75e-6, True: 1.0 + 10e-6, Region: 0, Partner: -1, Root: -1},
			{Kind: trace.Exit, Time: 1.0 - 55e-6, True: 1.0 + 30e-6, Region: 0, Partner: -1, Root: -1},
		}},
		{Rank: 2, Core: topology.CoreID{Node: 1}, Events: []trace.Event{
			{Kind: trace.Send, Time: 1.0, True: 1.0, Partner: 0, Region: -1, Root: -1},
		}},
	}
	return tr
}

func TestDomainsPropagateCorrections(t *testing.T) {
	tr := domainTrace()
	opt := DefaultOptions()

	// without domains: rank 1 is untouched (no edges reach it)
	plain, _, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.Procs[1].Events[0].Time; got != tr.Procs[1].Events[0].Time { //tsync:exact — without coupling the rank must pass through untouched
		t.Fatalf("rank 1 moved without domain coupling: %v", got)
	}

	// with domains: rank 1's co-located events advance in step
	opt.Domains = [][]int{{0, 1}}
	coupled, rep, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationsAfter != 0 {
		t.Fatalf("violations remain: %+v", rep)
	}
	jump0 := coupled.Procs[0].Events[0].Time - tr.Procs[0].Events[0].Time
	if jump0 <= 0 {
		t.Fatalf("violated receive not advanced")
	}
	moved1 := coupled.Procs[1].Events[1].Time - tr.Procs[1].Events[1].Time
	if moved1 <= 0 {
		t.Fatalf("co-located rank not advanced with its domain")
	}
	// the co-located advance must be comparable to the jump (within the
	// decay over the microseconds between the events)
	if moved1 < jump0/2 {
		t.Fatalf("domain advance %v too small vs jump %v", moved1, jump0)
	}
	// the remote rank must remain untouched
	if coupled.Procs[2].Events[0].Time != tr.Procs[2].Events[0].Time { //tsync:exact — the remote rank must pass through untouched
		t.Fatalf("remote rank moved")
	}
	checkInvariants(t, tr, coupled, opt)
}

func TestDomainsKeepCoLocatedClocksTogether(t *testing.T) {
	// the paper's scenario: after correction, the relative timestamps of
	// co-located processes (which share a synchronized clock) should not
	// be torn apart by a correction applied to only one of them
	tr := domainTrace()
	opt := DefaultOptions()
	opt.Domains = [][]int{{0, 1}}
	coupled, _, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	// original gap between rank0.Enter and rank1.Exit (both on node 0):
	gapBefore := tr.Procs[1].Events[1].Time - tr.Procs[0].Events[1].Time
	gapAfter := coupled.Procs[1].Events[1].Time - coupled.Procs[0].Events[1].Time
	if math.Abs(gapAfter-gapBefore) > 30e-6 {
		t.Fatalf("co-located gap torn from %v to %v", gapBefore, gapAfter)
	}
	// without coupling the gap is torn by the whole jump (~85 µs)
	plain, _, err := Correct(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gapPlain := plain.Procs[1].Events[1].Time - plain.Procs[0].Events[1].Time
	if math.Abs(gapPlain-gapBefore) < 30e-6 {
		t.Fatalf("expected the uncoupled correction to tear the gap (got %v vs %v)", gapPlain, gapBefore)
	}
}

func TestDomainsValidation(t *testing.T) {
	tr := domainTrace()
	opt := DefaultOptions()
	opt.Domains = [][]int{{0, 9}}
	if _, _, err := Correct(tr, opt); err == nil {
		t.Fatalf("invalid rank in domain accepted")
	}
	opt.Domains = [][]int{{0, 1}, {1, 2}}
	if _, _, err := Correct(tr, opt); err == nil {
		t.Fatalf("overlapping domains accepted")
	}
}

func TestDomainsParallelAgrees(t *testing.T) {
	tr := domainTrace()
	opt := DefaultOptions()
	opt.Domains = [][]int{{0, 1}}
	seq, repS, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, repP, err := CorrectParallel(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if repS != repP {
		t.Fatalf("reports differ: %+v vs %+v", repS, repP)
	}
	for i := range seq.Procs {
		for j := range seq.Procs[i].Events {
			if seq.Procs[i].Events[j].Time != par.Procs[i].Events[j].Time { //tsync:exact — determinism: both implementations must agree bit-for-bit
				t.Fatalf("domain-aware sequential and parallel disagree at %d/%d", i, j)
			}
		}
	}
}

func TestDomainsOnCleanTraceNoop(t *testing.T) {
	tr := domainTrace()
	// remove the violation
	tr.Procs[0].Events[0].Time = 1.0 + 5e-6
	tr.Procs[0].Events[1].Time = 1.0 + 25e-6
	opt := DefaultOptions()
	opt.Domains = [][]int{{0, 1}}
	corr, rep, err := Correct(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsMoved != 0 {
		t.Fatalf("clean trace moved %d events", rep.EventsMoved)
	}
	_ = corr
}
