package netmodel

import (
	"math"
	"testing"

	"tsync/internal/stats"
	"tsync/internal/topology"
	"tsync/internal/xrand"
)

func TestLatencyNeverBelowMin(t *testing.T) {
	m := ForMachine("xeon", 1)
	from := topology.CoreID{Node: 0}
	to := topology.CoreID{Node: 1}
	min, err := m.MinLatency(from, to, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		l, err := m.Latency(from, to, 64)
		if err != nil {
			t.Fatal(err)
		}
		if l < min {
			t.Fatalf("sampled latency %v below l_min %v", l, min)
		}
	}
}

func TestTableIIOrdering(t *testing.T) {
	// Table II: inter-node > inter-chip > inter-core on every machine
	for _, fam := range []string{"xeon", "ppc", "opteron", "itanium"} {
		m := ForMachine(fam, 2)
		var means [3]float64
		pairs := []struct {
			a, b topology.CoreID
		}{
			{topology.CoreID{Node: 0}, topology.CoreID{Node: 1}},
			{topology.CoreID{Chip: 0}, topology.CoreID{Chip: 1}},
			{topology.CoreID{Core: 0}, topology.CoreID{Core: 1}},
		}
		for i, p := range pairs {
			var acc stats.Online
			for j := 0; j < 5000; j++ {
				l, err := m.Latency(p.a, p.b, 0)
				if err != nil {
					t.Fatal(err)
				}
				acc.Add(l)
			}
			means[i] = acc.Mean()
		}
		if !(means[0] > means[1] && means[1] > means[2]) {
			t.Fatalf("%s: latency ordering violated: node=%v chip=%v core=%v", fam, means[0], means[1], means[2])
		}
	}
}

func TestXeonMagnitudesMatchTableII(t *testing.T) {
	m := ForMachine("xeon", 3)
	var acc stats.Online
	for i := 0; i < 20000; i++ {
		l, _ := m.Latency(topology.CoreID{Node: 0}, topology.CoreID{Node: 1}, 0)
		acc.Add(l)
	}
	// paper: 4.29 µs mean inter-node; accept ±15%
	if mean := acc.Mean(); mean < 3.6e-6 || mean > 5.0e-6 {
		t.Fatalf("inter-node mean latency %v s, want ~4.29 µs", mean)
	}
}

func TestPerByteTerm(t *testing.T) {
	m := ForMachine("xeon", 4)
	small, _ := m.MinLatency(topology.CoreID{Node: 0}, topology.CoreID{Node: 1}, 0)
	big, _ := m.MinLatency(topology.CoreID{Node: 0}, topology.CoreID{Node: 1}, 1<<20)
	if big <= small {
		t.Fatalf("megabyte message not slower than empty message: %v vs %v", big, small)
	}
}

func TestSelfMessageRejected(t *testing.T) {
	m := ForMachine("xeon", 5)
	c := topology.CoreID{Node: 1, Chip: 1, Core: 1}
	if _, err := m.Latency(c, c, 0); err == nil {
		t.Fatalf("message to self must error")
	}
	if _, err := m.MinLatency(c, c, 0); err == nil {
		t.Fatalf("MinLatency to self must error")
	}
}

func TestJitterTailExists(t *testing.T) {
	m := ForMachine("xeon", 6)
	min, _ := m.MinLatency(topology.CoreID{Node: 0}, topology.CoreID{Node: 1}, 0)
	var max float64
	for i := 0; i < 30000; i++ {
		l, _ := m.Latency(topology.CoreID{Node: 0}, topology.CoreID{Node: 1}, 0)
		if l > max {
			max = l
		}
	}
	if max < min+5e-6 {
		t.Fatalf("congestion tail never fired: max latency %v", max)
	}
}

func TestDeterministicStreams(t *testing.T) {
	sample := func() []float64 {
		m := ForMachine("ppc", 42)
		var out []float64
		for i := 0; i < 100; i++ {
			l, _ := m.Latency(topology.CoreID{Node: 0}, topology.CoreID{Node: 1}, 128)
			out = append(out, l)
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency stream diverged at %d", i)
		}
	}
}

func TestLinkParamsSampleComponents(t *testing.T) {
	rng := xrand.NewSource(9)
	p := LinkParams{Base: 1e-6, PerByte: 1e-9}
	// no jitter configured: sample must equal Base + bytes*PerByte
	if got, want := p.Sample(1000, rng), 1e-6+1000*1e-9; math.Abs(got-want) > 1e-18 {
		t.Fatalf("Sample = %v, want %v", got, want)
	}
	if got, want := p.Min(1000), 1e-6+1000*1e-9; math.Abs(got-want) > 1e-18 {
		t.Fatalf("Min = %v", got)
	}
}

func BenchmarkLatencySample(b *testing.B) {
	m := ForMachine("xeon", 1)
	from := topology.CoreID{Node: 0}
	to := topology.CoreID{Node: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Latency(from, to, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTorusHops(t *testing.T) {
	tor := Torus{X: 4, Y: 4, Z: 4}
	cases := []struct {
		a, b, want int
	}{
		{0, 1, 1},  // +1 in x
		{0, 3, 1},  // wraparound in x
		{0, 4, 1},  // +1 in y
		{0, 5, 2},  // +1 x, +1 y
		{0, 21, 3}, // +1 in each dimension
		{0, 0, 1},  // floor at one hop
		{0, 2, 2},  // two hops in x
	}
	for _, c := range cases {
		if got := tor.Hops(c.a, c.b); got != c.want {
			t.Fatalf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if tor.Hops(c.b, c.a) != tor.Hops(c.a, c.b) {
			t.Fatalf("Hops not symmetric for (%d,%d)", c.a, c.b)
		}
	}
	// zero-size torus degrades to one hop
	if (Torus{}).Hops(0, 99) != 1 {
		t.Fatalf("empty torus not degraded")
	}
}

func TestOpteronTorusDistanceMatters(t *testing.T) {
	m := ForMachine("opteron", 9)
	near := topology.CoreID{Node: 1}
	far := topology.CoreID{Node: 8 + 8*16 + 7*16*16} // ~max distance corner
	src := topology.CoreID{Node: 0}
	var nearAcc, farAcc stats.Online
	for i := 0; i < 3000; i++ {
		l1, err := m.Latency(src, near, 0)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := m.Latency(src, far, 0)
		if err != nil {
			t.Fatal(err)
		}
		nearAcc.Add(l1)
		farAcc.Add(l2)
	}
	// the far corner is 8+8+7=23 hops: ~22*50ns = 1.1 µs above a neighbour
	gap := farAcc.Mean() - nearAcc.Mean()
	if gap < 0.5e-6 || gap > 3e-6 {
		t.Fatalf("torus distance effect %v s out of band", gap)
	}
	// the Xeon fat-tree model has no such effect
	x := ForMachine("xeon", 9)
	var xa, xb stats.Online
	for i := 0; i < 3000; i++ {
		l1, _ := x.Latency(src, near, 0)
		l2, _ := x.Latency(src, topology.CoreID{Node: 50}, 0)
		xa.Add(l1)
		xb.Add(l2)
	}
	if d := math.Abs(xb.Mean() - xa.Mean()); d > 1.5e-6 {
		// per-route asymmetry differs, but there is no systematic
		// distance trend of the torus kind
		t.Logf("xeon route difference %v (asymmetry only)", d)
	}
}
