package fingerprint_test

// The seeded classification-accuracy matrix: for every fault kind ×
// magnitude × position combination, a synthetic trace is distorted via
// faultinject.SynthSpec.DistortClock, fingerprinted through the
// streaming source, and the detected break must carry the right kind
// within a bounded localization error. The acceptance bar is >=95%
// correct classification over the whole matrix with zero false breaks
// on the undistorted ranks.

import (
	"bytes"
	"math"
	"testing"

	"tsync/internal/faultinject"
	"tsync/internal/fingerprint"
	"tsync/internal/stream"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

const matrixSeed = 0xf19e4b7

// matrixSpec is the workload under every matrix cell: 4 ranks, 1.5 s of
// oracle time, 4 events per rank per millisecond.
func matrixSpec(seed uint64, faults []faultinject.ClockFault) stream.SynthSpec {
	return stream.SynthSpec{
		Ranks:        4,
		Steps:        1500,
		Seed:         seed,
		DistortClock: faultinject.Distort(faults),
	}
}

// fingerprintSynth renders the spec to memory and fingerprints it
// through a streaming source.
func fingerprintSynth(t *testing.T, spec stream.SynthSpec, fpo fingerprint.Options) *fingerprint.Report {
	t.Helper()
	var buf bytes.Buffer
	if _, _, err := stream.Synth(spec, &buf); err != nil {
		t.Fatalf("Synth: %v", err)
	}
	src, err := stream.NewSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	rep, _, err := stream.Fingerprint(src, stream.Options{}, fpo)
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	return rep
}

type matrixCase struct {
	name  string
	kind  faultinject.ClockFaultKind
	want  fingerprint.Kind
	delta float64
	// atBound is the acceptable |detected - injected| localization
	// error in oracle seconds.
	atBound float64
}

// TestClassificationMatrix drives the acceptance criterion: >=95%
// correct fault-kind classification with bounded localization error
// across kind × magnitude × position, and no phantom breaks on clean
// ranks.
func TestClassificationMatrix(t *testing.T) {
	const span = 1.5
	positions := []float64{0.25, 0.5, 0.8}
	var cases []matrixCase
	// Steps: abrupt offset discontinuities, detected at the very next
	// sample (250 µs spacing); 5 ms is generous.
	for _, d := range []float64{1e-4, -1e-3, 1e-2} {
		cases = append(cases, matrixCase{
			name: "step", kind: faultinject.Step, want: fingerprint.KindStep,
			delta: d, atBound: 5e-3,
		})
	}
	// Frequency jumps diverge gradually: confirmation lags by roughly
	// threshold/|delta| and the line-intersection refinement recovers
	// most of it; 0.2 s bounds the residual lag for the smallest delta.
	for _, d := range []float64{2e-4, -8e-4, 3e-3} {
		cases = append(cases, matrixCase{
			name: "freq", kind: faultinject.FreqJump, want: fingerprint.KindFreqJump,
			delta: d, atBound: 0.2,
		})
	}
	// Resets restart the clock at Delta; the discontinuity is of order
	// the elapsed time, far beyond any step fault.
	for _, d := range []float64{0, 0.25, 1.0} {
		cases = append(cases, matrixCase{
			name: "reset", kind: faultinject.Reset, want: fingerprint.KindReset,
			delta: d, atBound: 5e-3,
		})
	}

	total, correct := 0, 0
	for ci, mc := range cases {
		for pi, pos := range positions {
			total++
			at := pos * span
			faults := []faultinject.ClockFault{{Rank: 2, Kind: mc.kind, At: at, Delta: mc.delta}}
			spec := matrixSpec(xrand.SeedAt(matrixSeed, uint64(ci*8+pi)), faults)
			rep := fingerprintSynth(t, spec, fingerprint.Options{})

			// undistorted ranks must stay break-free and unflagged
			for _, r := range []int{0, 1, 3} {
				if n := len(rep.Ranks[r].Breaks); n != 0 {
					t.Errorf("%s Δ=%g @%g: clean rank %d got %d phantom breaks", mc.name, mc.delta, pos, r, n)
				}
				if rep.Ranks[r].Anomalous {
					t.Errorf("%s Δ=%g @%g: clean rank %d flagged anomalous", mc.name, mc.delta, pos, r)
				}
			}

			rk := rep.Ranks[2]
			if len(rk.Breaks) != 1 {
				t.Logf("%s Δ=%g @%g: got %d breaks on faulted rank, want 1", mc.name, mc.delta, pos, len(rk.Breaks))
				continue
			}
			if !rk.Anomalous {
				t.Errorf("%s Δ=%g @%g: faulted rank not flagged anomalous", mc.name, mc.delta, pos)
			}
			b := rk.Breaks[0]
			if err := math.Abs(b.At - at); err > mc.atBound {
				t.Errorf("%s Δ=%g @%g: localized at %g, injected %g (err %g > bound %g)",
					mc.name, mc.delta, pos, b.At, at, err, mc.atBound)
			}
			if b.Kind == mc.want {
				correct++
			} else {
				t.Logf("%s Δ=%g @%g: classified %v, want %v (jump %g, dslope %g)",
					mc.name, mc.delta, pos, b.Kind, mc.want, b.Jump, b.DriftChange)
			}
		}
	}
	acc := float64(correct) / float64(total)
	t.Logf("classification accuracy: %d/%d = %.1f%%", correct, total, 100*acc)
	if acc < 0.95 {
		t.Errorf("classification accuracy %.1f%% below the 95%% acceptance bar", 100*acc)
	}
}

// TestCleanTraceNoBreaks: without faults, every rank must fingerprint
// as a single stable segment — drift within the synth model's ±50 ppm,
// full stability, nothing anomalous.
func TestCleanTraceNoBreaks(t *testing.T) {
	rep := fingerprintSynth(t, matrixSpec(xrand.SeedAt(matrixSeed, 99), nil), fingerprint.Options{})
	for _, rk := range rep.Ranks {
		if len(rk.Breaks) != 0 || len(rk.Segments) != 1 {
			t.Errorf("rank %d: %d breaks, %d segments on a clean trace", rk.Rank, len(rk.Breaks), len(rk.Segments))
		}
		if rk.Anomalous {
			t.Errorf("rank %d flagged anomalous on a clean trace", rk.Rank)
		}
		if math.Abs(rk.DriftPPM) > 60 {
			t.Errorf("rank %d drift %.1f ppm outside the synth model's range", rk.Rank, rk.DriftPPM)
		}
		if rk.Stability != 1 {
			t.Errorf("rank %d stability %v, want 1", rk.Rank, rk.Stability)
		}
	}
	if rep.Ranks[0].JitterRMS > 1e-9 {
		t.Errorf("identity-clock rank 0 has jitter %g", rep.Ranks[0].JitterRMS)
	}
}

// TestCompositeFaults: one fault per rank in a single trace, all
// diagnosed independently.
func TestCompositeFaults(t *testing.T) {
	faults := []faultinject.ClockFault{
		{Rank: 1, Kind: faultinject.Step, At: 0.4, Delta: 5e-4},
		{Rank: 2, Kind: faultinject.FreqJump, At: 0.6, Delta: 1e-3},
		{Rank: 3, Kind: faultinject.Reset, At: 0.9, Delta: 0.5},
	}
	rep := fingerprintSynth(t, matrixSpec(xrand.SeedAt(matrixSeed, 100), faults), fingerprint.Options{})
	wants := map[int]fingerprint.Kind{
		1: fingerprint.KindStep,
		2: fingerprint.KindFreqJump,
		3: fingerprint.KindReset,
	}
	if len(rep.Ranks[0].Breaks) != 0 {
		t.Errorf("rank 0 got phantom breaks: %+v", rep.Ranks[0].Breaks)
	}
	for r := 1; r <= 3; r++ {
		rk := rep.Ranks[r]
		if len(rk.Breaks) != 1 {
			t.Fatalf("rank %d: got %d breaks, want 1", r, len(rk.Breaks))
		}
		if rk.Breaks[0].Kind != wants[r] {
			t.Errorf("rank %d classified %v, want %v", r, rk.Breaks[0].Kind, wants[r])
		}
		if rk.Stability >= 1 || rk.Stability <= 0 {
			t.Errorf("rank %d stability %v, want in (0,1) for a broken clock", r, rk.Stability)
		}
	}
	if got := rep.Anomalous(); len(got) != 3 {
		t.Errorf("Anomalous() = %v, want ranks 1..3", got)
	}
	if rep.Breaks() != 3 {
		t.Errorf("Breaks() = %d, want 3", rep.Breaks())
	}
}

// TestAutoKnots: the auto-placed correction must put rank knots at the
// detected breaks and map local clocks back onto the master base. For
// a stepped clock the corrected time must track oracle time on both
// sides of the break (the single-line alternative cannot).
func TestAutoKnots(t *testing.T) {
	const at, delta = 0.6, 2e-3
	faults := []faultinject.ClockFault{{Rank: 2, Kind: faultinject.Step, At: at, Delta: delta}}
	spec := matrixSpec(xrand.SeedAt(matrixSeed, 101), faults)
	rep := fingerprintSynth(t, spec, fingerprint.Options{})

	knots := rep.Knots(2)
	if len(knots) != 1 {
		t.Fatalf("rank 2 knots = %v, want exactly one at the break", knots)
	}
	if rep.Knots(0) != nil {
		t.Errorf("rank 0 has knots %v on a clean clock", rep.Knots(0))
	}

	corr, degraded, err := rep.AutoCorrection()
	if err != nil {
		t.Fatalf("AutoCorrection: %v", err)
	}
	if len(degraded) != 0 {
		t.Errorf("unexpected degraded ranks %v (no resets injected)", degraded)
	}
	if corr.Ranks() != 4 {
		t.Fatalf("correction covers %d ranks, want 4", corr.Ranks())
	}

	// Rebuild the faulted clock and verify correction quality on both
	// sides of the break: corrected local time must track oracle time
	// to sub-threshold error (rank 0 is the identity master).
	var buf bytes.Buffer
	if _, _, err := stream.Synth(spec, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := trace.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, ev := range f.Procs[2].Events {
		if math.Abs(ev.True-at) < 0.05 {
			continue // the knot region itself is transitional
		}
		if e := math.Abs(corr.Map(2, ev.Time) - ev.True); e > worst {
			worst = e
		}
	}
	if worst > 1e-4 {
		t.Errorf("auto-knot correction worst error %g s, want < 1e-4", worst)
	}
}

// TestAutoKnotsResetDegrades: a reset rewinds the local clock, so its
// rank cannot host increasing knots; the correction must degrade that
// rank to a single piece and report it, not fail or emit garbage.
func TestAutoKnotsResetDegrades(t *testing.T) {
	faults := []faultinject.ClockFault{{Rank: 1, Kind: faultinject.Reset, At: 0.75, Delta: 0}}
	rep := fingerprintSynth(t, matrixSpec(xrand.SeedAt(matrixSeed, 102), faults), fingerprint.Options{})
	corr, degraded, err := rep.AutoCorrection()
	if err != nil {
		t.Fatalf("AutoCorrection: %v", err)
	}
	if len(degraded) != 1 || degraded[0] != 1 {
		t.Errorf("degraded = %v, want [1]", degraded)
	}
	if got := corr.Map(1, 0.1); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("degraded rank maps to %v", got)
	}
}
