package trace

// Fuzzing for the incremental decoder. EventReader must classify every
// corrupt input — truncation mid-varint, mid-event, or an overlong count
// — as ErrBadFormat (or a truncation error), never panic, and never
// allocate ahead of the bytes actually decoded. On accepted inputs it
// must agree with the in-memory Read byte for byte.

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// readStreaming decodes data through the incremental EventReader the way
// a streaming consumer would: one proc and one event at a time, growing
// buffers only as bytes are consumed.
func readStreaming(data []byte) (*Trace, error) {
	er, err := NewEventReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	h := er.Header()
	t := &Trace{Machine: h.Machine, Timer: h.Timer, Regions: h.Regions, MinLatency: h.MinLatency}
	for {
		ph, err := er.NextProc()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		p := Proc{Rank: ph.Rank, Core: ph.Core, Clock: ph.Clock}
		for j := 0; j < ph.EventCount; j++ {
			var ev Event
			if err := er.Read(&ev); err != nil {
				return nil, err
			}
			p.Events = append(p.Events, ev)
		}
		t.Procs = append(t.Procs, p)
	}
}

// classified reports whether a decode error is one callers can act on.
func classified(err error) bool {
	return errors.Is(err, ErrBadFormat) || errors.Is(err, io.ErrUnexpectedEOF) || err == io.EOF
}

// salvageRead decodes data with resync enabled (unlimited budgets),
// reading each process to its section end regardless of declared counts.
// Processes are returned in stream order: v1 files need not have unique
// ranks, so keying by rank would conflate duplicates.
func salvageRead(data []byte) ([]Proc, *CorruptionReport, error) {
	er, err := NewEventReaderOpts(bytes.NewReader(data), ResyncPolicy{Enabled: true})
	if err != nil {
		return nil, nil, err
	}
	var procs []Proc
	for {
		ph, err := er.NextProc()
		if err == io.EOF {
			return procs, er.Report(), nil
		}
		if err != nil {
			return procs, er.Report(), err
		}
		p := Proc{Rank: ph.Rank, Core: ph.Core, Clock: ph.Clock}
		for {
			var ev Event
			err := er.Read(&ev)
			if err == io.EOF {
				break
			}
			if err != nil {
				return procs, er.Report(), err
			}
			p.Events = append(p.Events, ev)
		}
		procs = append(procs, p)
	}
}

func FuzzEventReader(f *testing.F) {
	var buf bytes.Buffer
	if _, err := Write(&buf, tinyTrace()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// truncations at awkward places: mid-header, mid-varint, mid-event
	for _, cut := range []int{1, 4, 5, len(valid) / 3, len(valid) / 2, len(valid) - 9, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// FuzzRead's crashers double as seeds here
	f.Add([]byte{})
	f.Add([]byte("NOPE"))
	f.Add([]byte("ETRC\x07"))
	f.Add(append([]byte(nil), "ETRC\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"...))
	f.Add(overlongCountFile())

	// v2 framed seeds: valid, corrupt-CRC, marker-collision payloads, and
	// truncations. Resync must survive all of them.
	var v2buf bytes.Buffer
	if _, err := WriteOpts(&v2buf, tinyTrace(), WriterOptions{Version: Version2, FrameEvents: 2}); err != nil {
		f.Fatal(err)
	}
	v2 := v2buf.Bytes()
	f.Add(v2)
	if i := bytes.Index(v2, frameMarker[:]); i >= 0 {
		flipped := append([]byte(nil), v2...)
		flipped[i+blockHeadMax] ^= 0xFF // inside the first block's payload
		f.Add(flipped)
		broken := append([]byte(nil), v2...)
		broken[i] ^= 0x01 // destroy the first marker itself
		f.Add(broken)
	}
	for _, cut := range []int{len(v2) / 3, len(v2) / 2, len(v2) - 5} {
		if cut > 0 && cut < len(v2) {
			f.Add(v2[:cut])
		}
	}
	collide := tinyTrace()
	collide.Procs[0].Events[1].Time = math.Float64frombits(uint64(frameMarker[0]) |
		uint64(frameMarker[1])<<8 | uint64(frameMarker[2])<<16 | uint64(frameMarker[3])<<24)
	var colBuf bytes.Buffer
	if _, err := WriteOpts(&colBuf, collide, WriterOptions{Version: Version2, FrameEvents: 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(colBuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		st, serr := readStreaming(data)
		mt, merr := Read(bytes.NewReader(data))
		if (serr == nil) != (merr == nil) {
			t.Fatalf("EventReader err = %v, Read err = %v", serr, merr)
		}

		// Resync mode must never panic, must terminate, must be
		// deterministic, and on inputs the strict reader accepts must
		// deliver exactly the strict result with an empty report.
		encodeEvents := func(evs []Event) []byte {
			var b []byte
			for i := range evs {
				b = appendEvent(b, &evs[i])
			}
			return b
		}
		sv1, rep1, rerr1 := salvageRead(data)
		sv2, rep2, rerr2 := salvageRead(data)
		if (rerr1 == nil) != (rerr2 == nil) || len(sv1) != len(sv2) || !reflect.DeepEqual(rep1, rep2) {
			t.Fatalf("resync read nondeterministic: %v vs %v", rerr1, rerr2)
		}
		for i := range sv1 {
			if sv1[i].Rank != sv2[i].Rank || !bytes.Equal(encodeEvents(sv1[i].Events), encodeEvents(sv2[i].Events)) {
				t.Fatalf("resync read nondeterministic at proc %d", i)
			}
		}
		if rerr1 != nil && !classified(rerr1) {
			t.Fatalf("unclassified resync error: %v", rerr1)
		}
		if serr == nil && rerr1 == nil {
			if len(rep1.Incidents) != 0 || rep1.LostEvents != 0 || rep1.UnknownLoss {
				t.Fatalf("resync reported corruption on a strictly-valid input: %+v", rep1)
			}
			if len(sv1) != len(st.Procs) {
				t.Fatalf("resync saw %d procs on a valid input with %d", len(sv1), len(st.Procs))
			}
			for i, p := range st.Procs {
				if sv1[i].Rank != p.Rank || !bytes.Equal(encodeEvents(sv1[i].Events), encodeEvents(p.Events)) {
					t.Fatalf("proc %d: resync fabricated or dropped events on a valid input", i)
				}
			}
		}

		if serr != nil {
			if !classified(serr) {
				t.Fatalf("unclassified streaming error: %v", serr)
			}
			return
		}
		var b1, b2 bytes.Buffer
		if _, err := Write(&b1, st); err != nil {
			t.Fatalf("re-encode of streamed trace: %v", err)
		}
		if _, err := Write(&b2, mt); err != nil {
			t.Fatalf("re-encode of in-memory trace: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("streaming and in-memory decodes disagree: %d vs %d bytes", b1.Len(), b2.Len())
		}

		// the proc-skipping path (NextProc without reading events) must
		// accept the same input, with non-decreasing offsets
		er, err := NewEventReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second NewEventReader rejected accepted input: %v", err)
		}
		last := er.Offset()
		for {
			_, err := er.NextProc()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("NextProc skip pass rejected accepted input: %v", err)
			}
			if off := er.Offset(); off < last {
				t.Fatalf("Offset went backward: %d after %d", off, last)
			} else {
				last = off
			}
		}
	})
}
