package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"tsync/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceBasic(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// population variance is 4; sample variance is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if Variance([]float64{3}) != 0 {
		t.Fatalf("Variance of single sample must be 0")
	}
}

func TestStdDevMatchesVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 10, -4}
	if got, want := StdDev(xs), math.Sqrt(Variance(xs)); got != want {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v,%v,%v)", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatalf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{-5, 2, 4}); got != 5 {
		t.Fatalf("MaxAbs = %v, want 5", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil) = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4}}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v) error: %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("Percentile(nil) err = %v", err)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatalf("Percentile(101) must error")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestMedianSingleton(t *testing.T) {
	m, err := Median([]float64{42})
	if err != nil || m != 42 {
		t.Fatalf("Median([42]) = (%v,%v)", m, err)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	src := xrand.NewSource(99)
	xs := make([]float64, 5000)
	var o Online
	for i := range xs {
		xs[i] = src.Normal(10, 3)
		o.Add(xs[i])
	}
	if !almostEqual(o.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("online mean %v != batch %v", o.Mean(), Mean(xs))
	}
	if !almostEqual(o.Variance(), Variance(xs), 1e-6) {
		t.Fatalf("online variance %v != batch %v", o.Variance(), Variance(xs))
	}
	min, max, _ := MinMax(xs)
	if o.Min() != min || o.Max() != max {
		t.Fatalf("online min/max (%v,%v) != batch (%v,%v)", o.Min(), o.Max(), min, max)
	}
	if o.N() != len(xs) {
		t.Fatalf("online N = %d", o.N())
	}
}

func TestOnlineMerge(t *testing.T) {
	src := xrand.NewSource(100)
	var whole, a, b Online
	for i := 0; i < 4000; i++ {
		x := src.Normal(-2, 5)
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged mean %v != %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-6) {
		t.Fatalf("merged variance %v != %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged min/max mismatch")
	}
}

func TestOnlineMergeEmptySides(t *testing.T) {
	var a, b Online
	b.Add(3)
	b.Add(5)
	a.Merge(&b) // empty receiver
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("merge into empty failed: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Online
	a.Merge(&c) // empty argument
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("merge of empty changed state")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	line, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(line.Slope, 2, 1e-12) || !almostEqual(line.Intercept, 1, 1e-12) {
		t.Fatalf("LeastSquares = %+v, want slope 2 intercept 1", line)
	}
	if !almostEqual(line.At(10), 21, 1e-12) {
		t.Fatalf("Line.At(10) = %v", line.At(10))
	}
}

func TestLeastSquaresRecoversNoisyLine(t *testing.T) {
	src := xrand.NewSource(101)
	var xs, ys []float64
	for i := 0; i < 2000; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 0.5*x-3+src.Normal(0, 0.1))
	}
	line, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(line.Slope, 0.5, 1e-3) || !almostEqual(line.Intercept, -3, 0.05) {
		t.Fatalf("recovered %+v, want slope 0.5 intercept -3", line)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares([]float64{1}, []float64{2}); err != ErrEmpty {
		t.Fatalf("single point err = %v", err)
	}
	if _, err := LeastSquares([]float64{1, 2}, []float64{2}); err == nil {
		t.Fatalf("length mismatch must error")
	}
	if _, err := LeastSquares([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Fatalf("constant x must error")
	}
}

func TestHullsBracketPoints(t *testing.T) {
	src := xrand.NewSource(102)
	check := func(seed uint16) bool {
		s := src.Sub(string(rune(seed)))
		n := 3 + s.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: s.Float64() * 100, Y: s.Normal(0, 10)}
		}
		lower := LowerHull(pts)
		upper := UpperHull(pts)
		if len(lower) == 0 || len(upper) == 0 {
			return false
		}
		// every point must lie on or above the lower hull and on or
		// below the upper hull, within float tolerance
		for _, p := range pts {
			if y, ok := evalHull(lower, p.X); ok && p.Y < y-1e-9 {
				return false
			}
			if y, ok := evalHull(upper, p.X); ok && p.Y > y+1e-9 {
				return false
			}
		}
		return hullXSorted(lower) && hullXSorted(upper)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func hullXSorted(h []Point) bool {
	return sort.SliceIsSorted(h, func(i, j int) bool { return h[i].X < h[j].X })
}

// evalHull linearly interpolates hull height at x; returns ok=false outside
// the hull x-range.
func evalHull(h []Point, x float64) (float64, bool) {
	if len(h) == 1 {
		return h[0].Y, x == h[0].X
	}
	for i := 0; i+1 < len(h); i++ {
		a, b := h[i], h[i+1]
		if x >= a.X && x <= b.X {
			if b.X == a.X {
				return math.Min(a.Y, b.Y), true
			}
			frac := (x - a.X) / (b.X - a.X)
			return a.Y + frac*(b.Y-a.Y), true
		}
	}
	return 0, false
}

func TestHullsOfCollinearPoints(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	lower := LowerHull(pts)
	upper := UpperHull(pts)
	if len(lower) != 2 || len(upper) != 2 {
		t.Fatalf("collinear hulls should reduce to endpoints: lower=%v upper=%v", lower, upper)
	}
}

func TestHullEmpty(t *testing.T) {
	if LowerHull(nil) != nil || UpperHull(nil) != nil {
		t.Fatalf("hull of empty set should be nil")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9.5, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -3 clamps to bin 0, 42 clamps to bin 4
	if h.Counts[0] != 3 { // 0.5, 1 (bin 0 is [0,2)), -3
		t.Fatalf("bin0 = %d, want 3 (counts=%v)", h.Counts[0], h.Counts)
	}
	if h.Counts[4] != 2 { // 9.5, 42
		t.Fatalf("bin4 = %d, want 2 (counts=%v)", h.Counts[4], h.Counts)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if got := h.Fraction(4); got != 0.25 {
		t.Fatalf("Fraction(4) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":   func() { NewHistogram(0, 1, 0) },
		"empty range": func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramFractionEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Fatalf("Fraction on empty histogram must be 0")
	}
}

func TestOnlinePropertyMeanBounded(t *testing.T) {
	// property: the running mean always lies within [min, max]
	check := func(raw []float64) bool {
		var o Online
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				// near-overflow magnitudes lose the invariant to
				// floating-point rounding, not to a logic bug
				continue
			}
			o.Add(x)
		}
		if o.N() == 0 {
			return true
		}
		return o.Mean() >= o.Min()-1e-9 && o.Mean() <= o.Max()+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOnlineAdd(b *testing.B) {
	var o Online
	for i := 0; i < b.N; i++ {
		o.Add(float64(i % 1000))
	}
}

func BenchmarkLeastSquares(b *testing.B) {
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2*float64(i) + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAllanDeviationWhiteFM(t *testing.T) {
	// for white frequency noise, the Allan deviation falls as tau^-1/2:
	// doubling the averaging factor should shrink sigma by ~sqrt(2)
	src := xrand.NewSource(404)
	const n = 40000
	const interval = 1.0
	samples := make([]float64, n)
	phase := 0.0
	for i := 1; i < n; i++ {
		phase += src.Normal(0, 1e-9) // white FM: independent freq per step
		samples[i] = phase
	}
	s1, err := AllanDeviation(samples, interval, 1)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := AllanDeviation(samples, interval, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := s1 / s4
	if ratio < 1.6 || ratio > 2.6 { // expect ~2 for tau ratio 4
		t.Fatalf("white-FM Allan slope wrong: sigma(1)/sigma(4) = %v", ratio)
	}
}

func TestAllanDeviationConstantDrift(t *testing.T) {
	// a perfectly linear offset (constant frequency error) has zero
	// Allan deviation
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 1e-6 * float64(i)
	}
	s, err := AllanDeviation(samples, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s > 1e-15 {
		t.Fatalf("constant drift produced Allan deviation %v", s)
	}
}

func TestAllanDeviationErrors(t *testing.T) {
	if _, err := AllanDeviation([]float64{1, 2}, 1, 0); err == nil {
		t.Fatalf("m=0 accepted")
	}
	if _, err := AllanDeviation([]float64{1, 2}, 0, 1); err == nil {
		t.Fatalf("zero interval accepted")
	}
	if _, err := AllanDeviation([]float64{1, 2}, 1, 5); err != ErrEmpty {
		t.Fatalf("short series error = %v, want ErrEmpty", err)
	}
}
