package stats

import (
	"math"
	"testing"
)

// relErr is the relative error of got against a nonzero want.
func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

// largeXs builds timestamp-magnitude samples near 1e15 ns whose offsets
// from the anchor are exactly representable (1e15 has ulp 0.125), so an
// exact reference can be computed in anchored arithmetic.
func largeXs(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1e15 + 0.25*float64(i%5)
	}
	return xs
}

// TestVarianceLargeMagnitude is the satellite regression test: at 1e15
// ns the naive Σx²−(Σx)²/n variance loses every significant bit, and
// even a centered two-pass around a naively summed mean carries an
// n·δ² bias. The anchored form must agree with the exact reference.
func TestVarianceLargeMagnitude(t *testing.T) {
	xs := largeXs(1000)
	// exact reference, computed at small magnitude
	small := make([]float64, len(xs))
	for i := range xs {
		small[i] = xs[i] - 1e15 // exact: both representable on the 0.25 grid
	}
	m := 0.0
	for _, x := range small {
		m += x
	}
	m /= float64(len(small))
	want := 0.0
	for _, x := range small {
		want += (x - m) * (x - m)
	}
	want /= float64(len(small) - 1)

	if got := Variance(xs); relErr(got, want) > 1e-12 {
		t.Errorf("Variance at 1e15 = %v, want %v (rel err %v)", got, want, relErr(got, want))
	}
	if got := Variance(small); relErr(got, want) > 1e-12 {
		t.Errorf("Variance at small magnitude = %v, want %v", got, want)
	}

	// Demonstrate that the naive sum-of-squares form this test guards
	// against is hopeless here: Σx² ≈ 1e33 has ulp ≈ 1.3e17, ten orders
	// of magnitude above the whole signal.
	var sum, sum2 float64
	for _, x := range xs {
		sum += x
		sum2 += x * x
	}
	n := float64(len(xs))
	naive := (sum2 - sum*sum/n) / (n - 1)
	if relErr(naive, want) < 1e-3 {
		t.Errorf("naive variance unexpectedly accurate (%v vs %v) — regression test is not exercising the failure mode", naive, want)
	}
}

// TestLeastSquaresLargeMagnitude pins the anchored-mean fix: a fit over
// x near 1e15 must recover the same slope as the identical data at
// small magnitude.
func TestLeastSquaresLargeMagnitude(t *testing.T) {
	const slope, intercept = 3e-5, 2.5
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	sxs := make([]float64, n)
	for i := range xs {
		dx := 0.25 * float64(i)
		xs[i] = 1e15 + dx
		sxs[i] = dx
		// deterministic sub-ns jitter so the fit is not exact
		ys[i] = intercept + slope*dx + 1e-7*math.Sin(float64(i))
	}
	ref, err := LeastSquares(sxs, ys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got.Slope, ref.Slope) > 1e-9 {
		t.Errorf("slope at 1e15 = %v, want %v", got.Slope, ref.Slope)
	}
	// The fitted line must pass through the sample means. Evaluating a
	// Line at x = 1e15 re-incurs the slope·x cancellation its absolute
	// intercept carries (~µs of rounding at these magnitudes — which is
	// exactly why OnlineReg.Predict exists), so the check tolerance is
	// µs-scale, not ns-scale.
	mx := anchoredMean(xs)
	my := anchoredMean(ys)
	if !ApproxEqual(got.At(mx), my, 1e-5) {
		t.Errorf("fit at mean x: got %v, want %v", got.At(mx), my)
	}
}

// TestOnlineRegMatchesBatch: the streaming fit must agree with the
// batch LeastSquares on the same data, at both magnitudes.
func TestOnlineRegMatchesBatch(t *testing.T) {
	for _, anchor := range []float64{0, 1e15} {
		n := 500
		xs := make([]float64, n)
		ys := make([]float64, n)
		var r OnlineReg
		for i := range xs {
			dx := 0.25 * float64(i)
			xs[i] = anchor + dx
			ys[i] = 1.5 - 2e-5*dx + 1e-6*math.Sin(0.1*float64(i))
			r.Add(xs[i], ys[i])
		}
		batch, err := LeastSquares(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(r.Slope(), batch.Slope) > 1e-9 {
			t.Errorf("anchor %g: online slope %v, batch %v", anchor, r.Slope(), batch.Slope)
		}
		if r.N() != n {
			t.Errorf("N = %d, want %d", r.N(), n)
		}
		// Residual variance against a direct two-pass computation.
		// The reference evaluates the batch line in anchored form
		// (slope·(x−mx)+my): Line.At at x = 1e15 would re-incur the
		// absolute-intercept cancellation and pollute the reference —
		// the failure mode under test, not a property of OnlineReg.
		mx := anchoredMean(xs)
		my := anchoredMean(ys)
		want := 0.0
		for i := range xs {
			d := ys[i] - (my + batch.Slope*(xs[i]-mx))
			want += d * d
		}
		want /= float64(n - 2)
		if relErr(r.ResidualVariance(), want) > 1e-6 {
			t.Errorf("anchor %g: residual variance %v, want %v", anchor, r.ResidualVariance(), want)
		}
		// Predict agrees with the anchored batch-line evaluation
		at := anchor + 30.0
		if !ApproxEqual(r.Predict(at), my+batch.Slope*(at-mx), 1e-9) {
			t.Errorf("anchor %g: Predict(%v) = %v, batch %v", anchor, at, r.Predict(at), my+batch.Slope*(at-mx))
		}
	}
}

// TestOnlineRegMerge: merging per-shard fits must reproduce the single
// sequential fit.
func TestOnlineRegMerge(t *testing.T) {
	var whole, a, b OnlineReg
	for i := 0; i < 400; i++ {
		x := 1e15 + 0.25*float64(i)
		y := 0.75 + 4e-5*0.25*float64(i) + 1e-6*math.Cos(0.3*float64(i))
		whole.Add(x, y)
		if i < 150 {
			a.Add(x, y)
		} else {
			b.Add(x, y)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if relErr(a.Slope(), whole.Slope()) > 1e-9 {
		t.Errorf("merged slope %v, want %v", a.Slope(), whole.Slope())
	}
	if !ApproxEqual(a.MeanY(), whole.MeanY(), 1e-12) {
		t.Errorf("merged mean y %v, want %v", a.MeanY(), whole.MeanY())
	}
	if relErr(a.ResidualVariance(), whole.ResidualVariance()) > 1e-6 {
		t.Errorf("merged residual variance %v, want %v", a.ResidualVariance(), whole.ResidualVariance())
	}

	// merging into an empty accumulator copies; merging an empty one is
	// a no-op
	var empty OnlineReg
	empty.Merge(&whole)
	if empty.N() != whole.N() || empty.Slope() != whole.Slope() {
		t.Error("merge into empty accumulator did not copy")
	}
	before := whole
	var none OnlineReg
	whole.Merge(&none)
	if whole != before {
		t.Error("merging an empty accumulator changed the fit")
	}
}

// TestOnlineRegDegenerate: undefined quantities stay finite and zero.
func TestOnlineRegDegenerate(t *testing.T) {
	var r OnlineReg
	if r.Slope() != 0 || r.ResidualVariance() != 0 || r.MeanX() != 0 || r.MeanY() != 0 {
		t.Error("zero-value accumulator not all-zero")
	}
	r.Add(5, 7)
	if r.Slope() != 0 {
		t.Error("slope defined after one sample")
	}
	if got := r.Predict(123); got != 7 {
		t.Errorf("Predict with one sample = %v, want the sample's y", got)
	}
	// constant x: degenerate, no NaN
	r.Add(5, 9)
	r.Add(5, 11)
	if s := r.Slope(); s != 0 || math.IsNaN(s) {
		t.Errorf("constant-x slope = %v, want 0", s)
	}
	if v := r.ResidualVariance(); v != 0 || math.IsNaN(v) {
		t.Errorf("constant-x residual variance = %v, want 0", v)
	}
}

// TestOnlineRegLine: the absolute-coordinate line agrees with the
// anchored prediction at small magnitudes, and the residual stddev is
// the square root of the residual variance.
func TestOnlineRegLine(t *testing.T) {
	var r OnlineReg
	for i := 0; i < 50; i++ {
		x := float64(i) * 0.5
		r.Add(x, 2*x+3+0.01*math.Sin(float64(i)))
	}
	l := r.Line()
	if math.Abs(l.Slope-2) > 1e-2 || math.Abs(l.Intercept-3) > 1e-1 {
		t.Errorf("Line() = %+v, want ~{2, 3}", l)
	}
	if math.Abs(l.At(10)-r.Predict(10)) > 1e-9 {
		t.Errorf("Line.At(10) = %v, Predict(10) = %v", l.At(10), r.Predict(10))
	}
	if math.Abs(r.MeanX()-12.25) > 1e-12 {
		t.Errorf("MeanX = %v, want 12.25", r.MeanX())
	}
	sd := r.ResidualStdDev()
	if math.Abs(sd*sd-r.ResidualVariance()) > 1e-18 {
		t.Errorf("ResidualStdDev² = %v, ResidualVariance = %v", sd*sd, r.ResidualVariance())
	}
	if sd <= 0 || sd > 0.02 {
		t.Errorf("ResidualStdDev = %v, want small positive", sd)
	}
	// an exact fit clamps residual variance at 0 even if rounding would
	// drive the numerator negative
	var exact OnlineReg
	exact.Add(1, 2)
	exact.Add(2, 4)
	exact.Add(3, 6)
	if v := exact.ResidualVariance(); v != 0 { //tsync:exact — clamp contract: exact fit reports exactly 0
		t.Errorf("exact-fit residual variance = %v, want 0", v)
	}
}

// TestOnlineStdDev: Online's stddev squares back to its variance.
func TestOnlineStdDev(t *testing.T) {
	var o Online
	for _, x := range []float64{1, 2, 3, 4} {
		o.Add(x)
	}
	if d := o.StdDev(); math.Abs(d*d-o.Variance()) > 1e-15 {
		t.Errorf("StdDev² = %v, Variance = %v", d*d, o.Variance())
	}
}
