// Command ompstudy regenerates the OpenMP experiments: Fig. 8 (percentage
// of parallel regions with POMP-semantics violations across thread counts
// on the Itanium SMP node) and Fig. 3 (a VAMPIR-style time-line of a
// violated barrier, with -timeline).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tsync/internal/clock"
	"tsync/internal/experiments"
	"tsync/internal/render"
	"tsync/internal/topology"
)

func main() {
	var (
		threads  = flag.String("threads", "4,8,12,16", "comma-separated thread counts")
		regions  = flag.Int("regions", 100, "parallel-region instances per run")
		reps     = flag.Int("reps", 3, "repetitions to average (paper used 3)")
		seed     = flag.Uint64("seed", 2, "random seed")
		timer    = flag.String("timer", "tsc", "timer (the Itanium ITC is the tsc model)")
		timeline = flag.Bool("timeline", false, "render a Fig. 3 style time-line of the first violated region")
		correct  = flag.String("correct", "none", "correction before the census: none, align, clc")
		workers  = flag.Int("workers", 0, "parallel worker bound for repetitions (0 = all CPUs); results are identical for any value")
	)
	flag.Parse()

	k, err := clock.ParseKind(*timer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ompstudy:", err)
		os.Exit(1)
	}
	m := topology.Itanium()

	fmt.Printf("FIG. 8 — %s: %% of parallel regions with POMP violations\n", m.Name)
	how := "no offset alignment or interpolation"
	switch *correct {
	case "align":
		how = "after intra-node offset alignment"
	case "clc":
		how = "after the shared-memory controlled logical clock"
	}
	fmt.Printf("(%d regions per run, %d reps averaged, %s)\n\n", *regions, *reps, how)

	var rows [][]string
	var lastViolated *experiments.OMPStudyResult
	for _, spec := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(spec))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ompstudy: bad thread count:", spec)
			os.Exit(1)
		}
		res, err := experiments.OMPStudy(experiments.OMPStudyConfig{
			Machine: m,
			Timer:   k,
			Threads: n,
			Regions: *regions,
			Reps:    *reps,
			Seed:    *seed,
			Correct: *correct,
			Workers: *workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ompstudy:", err)
			os.Exit(1)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", res.Threads),
			fmt.Sprintf("%.1f", res.PctAny),
			fmt.Sprintf("%.1f", res.PctEntry),
			fmt.Sprintf("%.1f", res.PctExit),
			fmt.Sprintf("%.1f", res.PctBarrier),
		})
		if res.PctAny > 0 && lastViolated == nil {
			lastViolated = res
		}
	}
	fmt.Print(render.Table(
		[]string{"threads", "% any", "% region entry", "% region exit", "% barrier"},
		rows))
	var labels []string
	var anyVals []float64
	for _, row := range rows {
		labels = append(labels, row[0]+" threads")
		v, _ := strconv.ParseFloat(row[1], 64)
		anyVals = append(anyVals, v)
	}
	fmt.Println()
	fmt.Print(render.Bars("% parallel regions with violations of any kind", labels, anyVals, 50))

	if *timeline {
		fmt.Println()
		if lastViolated == nil {
			fmt.Println("no violated region to render — all runs were clean")
			return
		}
		reg, inst, ok := render.FirstViolatedRegion(lastViolated.Trace)
		if !ok {
			fmt.Println("the averaged runs had violations, but the retained trace is clean")
			return
		}
		fmt.Printf("FIG. 3 — time-line of the first violated region (%d threads):\n", lastViolated.Threads)
		fmt.Println("F fork  J join  E enter  X exit  [ ] barrier  = inside barrier  - inside region")
		out, err := render.POMPTimeline(lastViolated.Trace, reg, inst, 100)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ompstudy:", err)
			os.Exit(1)
		}
		fmt.Print(out)
	}
}
