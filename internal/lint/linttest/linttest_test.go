package linttest

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// boomAnalyzer flags every call to a function literally named boom. It is
// the minimal analyzer needed to exercise the harness itself.
var boomAnalyzer = &analysis.Analyzer{
	Name: "boom",
	Doc:  "flags calls to boom()",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
						pass.Reportf(call.Pos(), "call to boom")
					}
				}
				return true
			})
		}
		return nil, nil
	},
}

// silentAnalyzer reports nothing, so every want in a fixture goes
// unmatched — the shape of a broken analyzer against a positive fixture.
var silentAnalyzer = &analysis.Analyzer{
	Name: "silent",
	Doc:  "reports nothing",
	Run:  func(pass *analysis.Pass) (any, error) { return nil, nil },
}

// recorder captures harness failures instead of failing the test.
type recorder struct{ errs []string }

func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
	panic("linttest recorder: fatal")
}

// TestHarnessMatches: a correct analyzer against annotated fixtures
// produces no failures.
func TestHarnessMatches(t *testing.T) {
	rec := &recorder{}
	run(rec, boomAnalyzer, "self")
	if len(rec.errs) != 0 {
		t.Fatalf("expected clean run, got: %v", rec.errs)
	}
}

// TestHarnessCatchesSilentAnalyzer: if the analyzer under test stops
// reporting, the positive fixture's want expectations must fail the test.
// This is the property the acceptance criteria lean on: a fixture test
// passing proves the analyzer really fires.
func TestHarnessCatchesSilentAnalyzer(t *testing.T) {
	rec := &recorder{}
	run(rec, silentAnalyzer, "self")
	if len(rec.errs) == 0 {
		t.Fatal("silent analyzer against a positive fixture must fail the harness")
	}
	for _, e := range rec.errs {
		if !strings.Contains(e, "no diagnostic matching") {
			t.Fatalf("unexpected failure kind: %q", e)
		}
	}
}

// TestHarnessCatchesUnexpectedDiagnostic: diagnostics with no want
// expectation fail the test too (no silent over-reporting).
func TestHarnessCatchesUnexpectedDiagnostic(t *testing.T) {
	rec := &recorder{}
	run(rec, boomAnalyzer, "noisy")
	found := false
	for _, e := range rec.errs {
		if strings.Contains(e, "unexpected diagnostic") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an unexpected-diagnostic failure, got: %v", rec.errs)
	}
}

// errAnalyzer fails outright, the shape of an analyzer bug.
var errAnalyzer = &analysis.Analyzer{
	Name: "err",
	Doc:  "always errors",
	Run:  func(pass *analysis.Pass) (any, error) { return nil, fmt.Errorf("deliberate failure") },
}

// base/mid/top form a diamond of Requires: top needs base both directly
// and through mid, so the harness's prerequisite memoization must run
// base exactly once and hand each dependent its result.
var baseAnalyzer = &analysis.Analyzer{
	Name: "base",
	Doc:  "produces a result",
	Run:  func(pass *analysis.Pass) (any, error) { return 7, nil },
}

var midAnalyzer = &analysis.Analyzer{
	Name:     "mid",
	Doc:      "doubles base's result",
	Requires: []*analysis.Analyzer{baseAnalyzer},
	Run: func(pass *analysis.Pass) (any, error) {
		return pass.ResultOf[baseAnalyzer].(int) * 2, nil
	},
}

var topAnalyzer = &analysis.Analyzer{
	Name:     "top",
	Doc:      "checks both prerequisite results",
	Requires: []*analysis.Analyzer{baseAnalyzer, midAnalyzer},
	Run: func(pass *analysis.Pass) (any, error) {
		if pass.ResultOf[baseAnalyzer].(int) != 7 || pass.ResultOf[midAnalyzer].(int) != 14 {
			return nil, fmt.Errorf("prerequisite results not propagated: %v", pass.ResultOf)
		}
		return nil, nil
	},
}

var needsErrAnalyzer = &analysis.Analyzer{
	Name:     "needserr",
	Doc:      "depends on a failing analyzer",
	Requires: []*analysis.Analyzer{errAnalyzer},
	Run:      func(pass *analysis.Pass) (any, error) { return nil, nil },
}

// TestRunPublic drives the exported entry point against the reference
// fixture with the real *testing.T.
func TestRunPublic(t *testing.T) {
	Run(t, boomAnalyzer, "self")
}

// TestHarnessResolvesImports: fixtures may import other fixture packages
// (resolved from testdata/src) and the standard library (resolved by the
// fallback importer).
func TestHarnessResolvesImports(t *testing.T) {
	rec := &recorder{}
	run(rec, boomAnalyzer, "importer")
	if len(rec.errs) != 0 {
		t.Fatalf("expected clean run, got: %v", rec.errs)
	}
}

// TestHarnessReportsLoadErrors: a missing package, a package that does
// not type-check, and a directory without Go files each surface as a
// loading failure rather than a crash.
func TestHarnessReportsLoadErrors(t *testing.T) {
	cases := []struct{ path, want string }{
		{"definitely-missing", "loading definitely-missing"},
		{"broken", "type-checking"},
		{"nogo", "no Go files"},
	}
	for _, c := range cases {
		rec := &recorder{}
		run(rec, boomAnalyzer, c.path)
		if len(rec.errs) != 1 || !strings.Contains(rec.errs[0], c.want) {
			t.Errorf("%s: want one error containing %q, got %v", c.path, c.want, rec.errs)
		}
	}
}

// TestHarnessPropagatesResults: Requires chains run once per
// prerequisite with results visible to dependents.
func TestHarnessPropagatesResults(t *testing.T) {
	rec := &recorder{}
	run(rec, topAnalyzer, "importer")
	if len(rec.errs) != 0 {
		t.Fatalf("expected clean run, got: %v", rec.errs)
	}
}

// TestHarnessReportsAnalyzerErrors: failures of the analyzer itself and
// of its prerequisites surface as running failures.
func TestHarnessReportsAnalyzerErrors(t *testing.T) {
	rec := &recorder{}
	run(rec, errAnalyzer, "importer")
	if len(rec.errs) != 1 || !strings.Contains(rec.errs[0], "running err") {
		t.Fatalf("want one 'running err' failure, got %v", rec.errs)
	}
	rec = &recorder{}
	run(rec, needsErrAnalyzer, "importer")
	if len(rec.errs) != 1 || !strings.Contains(rec.errs[0], "prerequisite err") {
		t.Fatalf("want one 'prerequisite err' failure, got %v", rec.errs)
	}
}

// TestHarnessBadWantRegexp: an unparsable want pattern fails the test
// with a pointer at the offending comment while valid double-quoted
// wants on the same line still match.
func TestHarnessBadWantRegexp(t *testing.T) {
	rec := &recorder{}
	run(rec, boomAnalyzer, "badwant")
	if len(rec.errs) != 1 || !strings.Contains(rec.errs[0], "bad want regexp") {
		t.Fatalf("want one 'bad want regexp' failure, got %v", rec.errs)
	}
}
