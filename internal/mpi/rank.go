package mpi

import (
	"fmt"

	"tsync/internal/clock"
	"tsync/internal/des"
	"tsync/internal/topology"
	"tsync/internal/trace"
)

// Wildcards for Recv.
const (
	// AnySource matches messages from every sender.
	AnySource = -1
	// AnyTag matches every tag.
	AnyTag = -1
)

// Per-call CPU overheads of the MPI library itself (LogP-style o), separate
// from network latency.
const (
	sendOverhead = 0.10e-6
	recvOverhead = 0.10e-6
	// eagerLimit is the rendezvous threshold: messages larger than this
	// block the sender until the receiver has posted a matching receive
	// (RTS/CTS handshake), like real MPI implementations. Below it, the
	// eager protocol buffers and returns immediately.
	eagerLimit = 64 * 1024
	// collOverhead is the software setup cost of a collective call and
	// roundOverhead the progress-engine cost of each message round;
	// together they put a 4-node allreduce in the ~10-13 µs class that
	// Table II reports.
	collOverhead  = 1.5e-6
	roundOverhead = 0.75e-6
)

// worldComm is the communicator id of the world communicator; each
// communicator's internal collective traffic uses internalCommOf(id),
// which never appears in traces.
const worldComm int32 = 0

// Msg is a received message.
type Msg struct {
	Source int
	Tag    int
	Bytes  int
	Data   any
}

// chanKey identifies a matching channel.
type chanKey struct {
	src  int32 // AnySource never appears here; wildcard handled in matching
	tag  int32
	comm int32
}

// inflight is a delivered-but-unconsumed message.
type inflight struct {
	msg     Msg
	arrival float64
	seq     int // delivery order for deterministic wildcard matching
}

// Request is the handle of a non-blocking operation. Send requests
// complete immediately (the eager protocol buffers the payload); receive
// requests complete when a matching message is delivered. Complete a
// request with Rank.Wait or Rank.Waitall.
type Request struct {
	src, tag  int
	comm      int32
	isRecv    bool
	completed bool
	msg       Msg
}

// Completed reports whether the request has finished (test-without-wait,
// like MPI_Test without the blocking path).
func (q *Request) Completed() bool { return q.completed }

// Rank is one simulated MPI process. All methods must be called from
// within the rank's own program function.
type Rank struct {
	world      *World
	proc       *des.Proc
	rank       int
	core       topology.CoreID
	clk        *clock.Clock
	tracing    bool
	mailbox    map[chanKey][]*inflight
	deliverSeq int
	// posted holds uncompleted receive requests in post order (MPI
	// matches incoming messages against posted receives in that order);
	// awaited is the request the rank is currently parked on.
	posted   []*Request
	awaited  *Request
	events   []trace.Event
	collSeq  map[int32]int32
	splitSeq map[int32]int32
}

// Rank returns this process's rank in the world communicator.
func (r *Rank) Rank() int { return r.rank }

// Size returns the job size.
func (r *Rank) Size() int { return len(r.world.ranks) }

// Core returns the core this rank is pinned to.
func (r *Rank) Core() topology.CoreID { return r.core }

// World returns the enclosing job.
func (r *Rank) World() *World { return r.world }

// Now returns the true simulation time — the oracle, unavailable to real
// applications but invaluable in tests.
func (r *Rank) Now() float64 { return r.proc.Now() }

// Clock returns the rank's processor clock.
func (r *Rank) Clock() *clock.Clock { return r.clk }

// SetTracing toggles event recording for this rank, e.g. to trace only
// pivotal iterations as the POP experiment does (Fig. 7). Toggle only at
// points where no traced message is in flight (after a barrier), or the
// trace will contain half-recorded messages.
func (r *Rank) SetTracing(on bool) { r.tracing = on }

// Tracing reports whether events are currently recorded.
func (r *Rank) Tracing() bool { return r.tracing }

// Compute advances the rank's local computation by dt simulated seconds.
func (r *Rank) Compute(dt float64) { r.proc.Sleep(dt) }

// Wtime reads the rank's clock like MPI_Wtime: it costs read overhead and
// returns the (drifting, quantized, noisy) local time.
func (r *Rank) Wtime() float64 {
	r.proc.Sleep(r.clk.ReadOverhead())
	return r.clk.Read(r.proc.Now())
}

// record appends one trace event, paying the clock-read overhead and
// stamping both the local timestamp and the oracle time.
func (r *Rank) record(ev trace.Event) {
	if !r.tracing {
		return
	}
	r.proc.Sleep(r.clk.ReadOverhead())
	now := r.proc.Now()
	ev.SetTime(r.clk.Read(now))
	ev.True = now
	r.events = append(r.events, ev)
}

// EnterRegion records entry into a named code region.
func (r *Rank) EnterRegion(name string) {
	r.record(trace.Event{Kind: trace.Enter, Region: r.world.tr.RegionID(name), Partner: -1, Root: -1})
}

// ExitRegion records exit from a named code region.
func (r *Rank) ExitRegion(name string) {
	r.record(trace.Event{Kind: trace.Exit, Region: r.world.tr.RegionID(name), Partner: -1, Root: -1})
}

// Send transmits a message. Small messages use the eager protocol (the
// call returns after the send overhead; delivery happens asynchronously
// after the sampled network latency); messages above the rendezvous
// threshold first handshake with the receiver, so the call blocks until
// the receiver has arrived at a matching receive — the protocol switch
// real MPI implementations make, and a timing effect visible in traces. A
// traced Send records Enter/Send/Exit like a PMPI wrapper.
func (r *Rank) Send(dst, tag, bytes int, data any) {
	if dst < 0 || dst >= r.Size() || dst == r.rank {
		panic(fmt.Sprintf("mpi: rank %d: Send to invalid destination %d", r.rank, dst))
	}
	traced := r.tracing
	if traced {
		r.EnterRegion("MPI_Send")
		r.record(trace.Event{Kind: trace.Send, Partner: int32(dst), Tag: int32(tag),
			Bytes: int32(bytes), Comm: worldComm, Region: -1, Root: -1})
	}
	if bytes > eagerLimit {
		r.rendezvous(dst, tag, worldComm, bytes, data)
	} else {
		r.post(dst, tag, worldComm, bytes, data)
	}
	if traced {
		r.ExitRegion("MPI_Send")
	}
}

// rtsCommOf and ctsCommOf reserve per-communicator channel spaces for the
// rendezvous control messages (request-to-send and clear-to-send).
func rtsCommOf(comm int32) int32 { return -1000000 - comm }
func ctsCommOf(comm int32) int32 { return -2000000 - comm }

// isRTSComm reports whether a channel id belongs to the RTS space and
// returns the application communicator it announces.
func isRTSComm(comm int32) (int32, bool) {
	if comm <= -1000000 && comm > -2000000 {
		return -1000000 - comm, true
	}
	return 0, false
}

// rendezvous implements the large-message handshake: a small RTS travels
// to the receiver; the receiving side answers with a CTS as soon as it has
// a matching receive (either already posted, or when it posts one); only
// then does the payload move. The payload transfer reuses the ordinary
// channel, so matching and tracing are unchanged.
func (r *Rank) rendezvous(dst, tag int, comm int32, bytes int, data any) {
	r.post(dst, tag, rtsCommOf(comm), 0, nil)
	r.recvFrom(dst, tag, ctsCommOf(comm))
	r.post(dst, tag, comm, bytes, data)
}

// post performs the untraced mechanics of message transmission on the
// given communicator.
func (r *Rank) post(dst, tag int, comm int32, bytes int, data any) {
	r.proc.Sleep(sendOverhead)
	w := r.world
	lat, err := w.net.Latency(r.core, w.ranks[dst].core, bytes)
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d: %v", r.rank, err))
	}
	arrival := w.nonOvertaking(r.rank, dst, r.proc.Now()+lat)
	src := r.rank
	target := w.ranks[dst]
	w.eng.Schedule(arrival, func() {
		target.deliver(Msg{Source: src, Tag: tag, Bytes: bytes, Data: data}, comm, arrival)
	})
}

// deliver runs in scheduler context: match the message against posted
// receives (in post order, per MPI matching rules) or file it into the
// mailbox, and wake the receiver if it was parked on the completed
// request. An arriving RTS that already has a matching posted receive is
// answered with a CTS immediately instead of being filed.
func (r *Rank) deliver(m Msg, comm int32, arrival float64) {
	if appComm, ok := isRTSComm(comm); ok {
		for _, q := range r.posted {
			if matches(q, m, appComm) {
				r.world.sendControl(r.rank, m.Source, m.Tag, ctsCommOf(appComm))
				return
			}
		}
		// no receive yet: file the RTS; postRecv answers it later
	}
	for i, q := range r.posted {
		if !matches(q, m, comm) {
			continue
		}
		q.completed = true
		q.msg = m
		r.posted = append(r.posted[:i:i], r.posted[i+1:]...)
		if r.awaited == q {
			r.awaited = nil
			r.world.eng.Wake(r.proc)
		}
		return
	}
	inf := &inflight{msg: m, arrival: arrival, seq: r.deliverSeq}
	r.deliverSeq++
	k := chanKey{src: int32(m.Source), tag: int32(m.Tag), comm: comm}
	r.mailbox[k] = append(r.mailbox[k], inf)
}

func matches(q *Request, m Msg, comm int32) bool {
	if q.comm != comm {
		return false
	}
	if q.src != AnySource && q.src != m.Source {
		return false
	}
	if q.tag != AnyTag && q.tag != m.Tag {
		return false
	}
	return true
}

func (r *Rank) removeFromMailbox(k chanKey, inf *inflight) {
	q := r.mailbox[k]
	for i, e := range q {
		if e == inf {
			r.mailbox[k] = append(q[:i:i], q[i+1:]...)
			return
		}
	}
	panic("mpi: inflight message vanished from mailbox")
}

// findDelivered returns the earliest-delivered mailbox entry matching the
// (src, tag, comm) pattern, or nil.
func (r *Rank) findDelivered(src, tag int, comm int32) (chanKey, *inflight) {
	// Wildcard matches pick the earliest-delivered entry. deliverSeq is
	// unique per rank, so the minimum below is unique and map visit order
	// cannot leak into which message a wildcard receive returns. Keep the
	// scan O(channels) per receive: sorting the keys on every call is
	// measurably quadratic on mailboxes with thousands of live channels.
	var bestKey chanKey
	var best *inflight
	for k, q := range r.mailbox { //tsync:unordered — min-reduction over per-rank-unique delivery seqs; the minimum is unique, so every visit order yields the same entry
		if len(q) == 0 || k.comm != comm {
			continue
		}
		if src != AnySource && int32(src) != k.src {
			continue
		}
		if tag != AnyTag && int32(tag) != k.tag {
			continue
		}
		if best == nil || q[0].seq < best.seq {
			bestKey, best = k, q[0]
		}
	}
	return bestKey, best
}

// Recv blocks until a matching message arrives and returns it. src may be
// AnySource and tag may be AnyTag. A traced Recv records Enter/Recv/Exit.
func (r *Rank) Recv(src, tag int) Msg {
	traced := r.tracing
	if traced {
		r.EnterRegion("MPI_Recv")
	}
	m := r.recvFrom(src, tag, worldComm)
	if traced {
		r.record(trace.Event{Kind: trace.Recv, Partner: int32(m.Source), Tag: int32(m.Tag),
			Bytes: int32(m.Bytes), Comm: worldComm, Region: -1, Root: -1})
		r.ExitRegion("MPI_Recv")
	}
	return m
}

// postRecv registers a receive request: it consumes an already-delivered
// matching message if one exists (earliest delivery first), otherwise the
// request joins the posted list.
func (r *Rank) postRecv(src, tag int, comm int32) *Request {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic(fmt.Sprintf("mpi: rank %d: receive from invalid source %d", r.rank, src))
	}
	q := &Request{src: src, tag: tag, comm: comm, isRecv: true}
	// answer one pending rendezvous announcement for this signature, so
	// the blocked sender may start the payload transfer
	if comm >= 0 {
		if k, inf := r.findDelivered(src, tag, rtsCommOf(comm)); inf != nil {
			r.removeFromMailbox(k, inf)
			r.post(inf.msg.Source, inf.msg.Tag, ctsCommOf(comm), 0, nil)
		}
	}
	if k, inf := r.findDelivered(src, tag, comm); inf != nil {
		r.removeFromMailbox(k, inf)
		q.completed = true
		q.msg = inf.msg
		return q
	}
	r.posted = append(r.posted, q)
	return q
}

// await blocks until the request completes.
func (r *Rank) await(q *Request) Msg {
	if !q.completed {
		if r.awaited != nil {
			panic(fmt.Sprintf("mpi: rank %d: nested waits", r.rank))
		}
		r.awaited = q
		r.proc.Park(fmt.Sprintf("Wait(src=%d, tag=%d, comm=%d)", q.src, q.tag, q.comm))
		if !q.completed {
			panic("mpi: woken waiter has an incomplete request")
		}
	}
	return q.msg
}

// recvFrom performs the untraced mechanics of a blocking receive.
func (r *Rank) recvFrom(src, tag int, comm int32) Msg {
	r.proc.Sleep(recvOverhead)
	return r.await(r.postRecv(src, tag, comm))
}

// ---- collectives ----

// nextInstance returns this rank's next collective sequence number on a
// communicator. SPMD programs call collectives in the same order on every
// rank, so the per-rank counters agree globally.
func (r *Rank) nextInstance(comm int32) int32 {
	n := r.collSeq[comm]
	r.collSeq[comm] = n + 1
	return n
}

// beginColl records CollBegin and pays the collective setup cost.
func (r *Rank) beginColl(op trace.CollOp, comm, instance int32, bytes, root int) {
	r.record(trace.Event{Kind: trace.CollBegin, Op: op, Instance: instance,
		Bytes: int32(bytes), Comm: comm, Root: int32(root), Partner: -1, Region: -1})
	r.proc.Sleep(collOverhead)
}

// endColl records CollEnd.
func (r *Rank) endColl(op trace.CollOp, comm, instance int32, bytes, root int) {
	r.record(trace.Event{Kind: trace.CollEnd, Op: op, Instance: instance,
		Bytes: int32(bytes), Comm: comm, Root: int32(root), Partner: -1, Region: -1})
}

// worldGroup is the group view of the world communicator.
func (r *Rank) worldGroup() group {
	members := make([]int, r.Size())
	for i := range members {
		members[i] = i
	}
	return group{r: r, members: members, vrank: r.rank, comm: worldComm}
}

// Barrier blocks until all ranks have entered it.
func (r *Rank) Barrier() {
	r.worldGroup().Barrier()
}

// Bcast broadcasts data from root; every rank returns the root's data.
func (r *Rank) Bcast(root, bytes int, data any) any {
	return r.worldGroup().Bcast(root, bytes, data)
}

// Reduce combines data toward root; the root returns the combined value,
// other ranks return their partial accumulations. combine may be nil when
// only timing matters.
func (r *Rank) Reduce(root, bytes int, data any, combine func(a, b any) any) any {
	return r.worldGroup().Reduce(root, bytes, data, combine)
}

// Allreduce combines data across all ranks. Like production MPI libraries
// it uses recursive doubling for power-of-two sizes (log2 N exchange
// rounds, the latency class of Table II's "inter node collective latency")
// and reduce-to-0 followed by broadcast otherwise.
func (r *Rank) Allreduce(bytes int, data any, combine func(a, b any) any) any {
	return r.worldGroup().Allreduce(bytes, data, combine)
}

// Gather collects every rank's data at root; the root returns a slice
// indexed by rank, others return nil.
func (r *Rank) Gather(root, bytes int, data any) []any {
	return r.worldGroup().Gather(root, bytes, data)
}

// Scatter distributes per-rank data from root; every rank returns its
// piece. At non-root ranks the pieces argument is ignored.
func (r *Rank) Scatter(root, bytes int, pieces []any) any {
	return r.worldGroup().Scatter(root, bytes, pieces)
}

// Allgather distributes every rank's data to all ranks via dissemination
// timing; returns nothing (payloads are synthetic).
func (r *Rank) Allgather(bytes int) {
	r.worldGroup().Allgather(bytes)
}

// Alltoall exchanges bytes between every rank pair using the pairwise
// rounds algorithm.
func (r *Rank) Alltoall(bytes int) {
	r.worldGroup().Alltoall(bytes)
}

// Scan computes an inclusive prefix reduction: rank i returns the
// combination of the data of ranks 0..i. Implemented with the standard
// recursive-doubling prefix algorithm.
func (r *Rank) Scan(bytes int, data any, combine func(a, b any) any) any {
	return r.worldGroup().Scan(bytes, data, combine)
}

// ---- non-blocking point-to-point ----

// Isend starts a non-blocking send. The model always buffers eagerly for
// non-blocking sends (the rendezvous handshake applies to blocking Send
// only), so the returned request is already complete; it exists so codes
// written against the MPI idiom (post all sends, then wait) run unchanged.
// A traced Isend records Enter/Send/Exit.
func (r *Rank) Isend(dst, tag, bytes int, data any) *Request {
	if dst < 0 || dst >= r.Size() || dst == r.rank {
		panic(fmt.Sprintf("mpi: rank %d: Isend to invalid destination %d", r.rank, dst))
	}
	traced := r.tracing
	if traced {
		r.EnterRegion("MPI_Isend")
		r.record(trace.Event{Kind: trace.Send, Partner: int32(dst), Tag: int32(tag),
			Bytes: int32(bytes), Comm: worldComm, Region: -1, Root: -1})
	}
	r.post(dst, tag, worldComm, bytes, data)
	if traced {
		r.ExitRegion("MPI_Isend")
	}
	return &Request{src: r.rank, tag: tag, comm: worldComm, completed: true}
}

// Irecv posts a non-blocking receive and returns its request. The message
// is obtained with Wait (which records the Recv event, as real tracers do
// in MPI_Wait).
func (r *Rank) Irecv(src, tag int) *Request {
	traced := r.tracing
	if traced {
		r.EnterRegion("MPI_Irecv")
	}
	r.proc.Sleep(recvOverhead)
	q := r.postRecv(src, tag, worldComm)
	if traced {
		r.ExitRegion("MPI_Irecv")
	}
	return q
}

// Wait blocks until the request completes and returns its message (zero
// Msg for send requests). A traced Wait on a receive records the Recv
// event at completion.
func (r *Rank) Wait(q *Request) Msg {
	traced := r.tracing
	if traced {
		r.EnterRegion("MPI_Wait")
	}
	m := r.await(q)
	if traced {
		if q.isRecv {
			r.record(trace.Event{Kind: trace.Recv, Partner: int32(m.Source), Tag: int32(m.Tag),
				Bytes: int32(m.Bytes), Comm: worldComm, Region: -1, Root: -1})
		}
		r.ExitRegion("MPI_Wait")
	}
	return m
}

// Waitall completes all requests and returns their messages in request
// order.
func (r *Rank) Waitall(reqs ...*Request) []Msg {
	out := make([]Msg, len(reqs))
	for i, q := range reqs {
		out[i] = r.Wait(q)
	}
	return out
}

// Sendrecv performs a simultaneous send and receive, the deadlock-free
// exchange idiom of halo codes. The send side is always eager (a
// rendezvous handshake inside a symmetric exchange would deadlock).
func (r *Rank) Sendrecv(dst, sendTag, bytes int, data any, src, recvTag int) Msg {
	traced := r.tracing
	if traced {
		r.EnterRegion("MPI_Sendrecv")
		r.record(trace.Event{Kind: trace.Send, Partner: int32(dst), Tag: int32(sendTag),
			Bytes: int32(bytes), Comm: worldComm, Region: -1, Root: -1})
	}
	r.post(dst, sendTag, worldComm, bytes, data)
	r.proc.Sleep(recvOverhead)
	m := r.await(r.postRecv(src, recvTag, worldComm))
	if traced {
		r.record(trace.Event{Kind: trace.Recv, Partner: int32(m.Source), Tag: int32(m.Tag),
			Bytes: int32(m.Bytes), Comm: worldComm, Region: -1, Root: -1})
		r.ExitRegion("MPI_Sendrecv")
	}
	return m
}

// Probe reports whether a message matching (src, tag) has been delivered
// and is waiting to be received (MPI_Iprobe semantics: non-blocking,
// wildcards allowed). It costs a small query overhead.
func (r *Rank) Probe(src, tag int) bool {
	r.proc.Sleep(0.02e-6)
	_, inf := r.findDelivered(src, tag, worldComm)
	return inf != nil
}
