package fingerprint

import (
	"fmt"

	"tsync/internal/interp"
	"tsync/internal/stats"
)

// Knots returns the auto-placed interpolation knots for one rank: the
// local-clock reading at the start of every post-break segment. A rank
// a single affine model explains has no knots.
func (r *Report) Knots(rank int) []float64 {
	if rank < 0 || rank >= len(r.Ranks) {
		return nil
	}
	segs := r.Ranks[rank].Segments
	if len(segs) < 2 {
		return nil
	}
	out := make([]float64, 0, len(segs)-1)
	for _, s := range segs[1:] {
		out = append(out, s.StartLocal)
	}
	return out
}

// AutoCorrection builds a piecewise-affine interp correction from the
// fingerprint: each rank's segments become pieces whose knots sit at
// the detected breaks, mapping the rank's local clock onto the master
// time base — rank 0's dominant-segment clock model, extrapolated over
// the whole run. Within segment s of rank r the local clock reads
// c = t + o_r(t), so local time inverts to t(c) = (c − A_r)/(1 + b_r)
// with A_r the segment's absolute offset intercept and b_r its drift;
// composing with the master model c_0(t) = (1 + b_0)·t + A_0 gives one
// affine piece per segment. Rank 0 is handled by the same composition:
// its dominant segment maps to itself with slope exactly 1 and
// intercept exactly 0, and its *other* segments (a faulted master) are
// repaired onto its own dominant model.
//
// A reset rewinds the local clock, breaking the increasing-knot
// invariant piecewise corrections need; such ranks degrade to their
// dominant segment's single affine piece and are returned in degraded.
// The error is non-nil only when no master model exists (rank 0
// produced no segments).
func (r *Report) AutoCorrection() (corr *interp.Correction, degraded []int, err error) {
	if len(r.Ranks) == 0 {
		return nil, nil, fmt.Errorf("fingerprint: report covers no ranks")
	}
	master, ok := r.Ranks[0].Dominant()
	if !ok {
		return nil, nil, fmt.Errorf("fingerprint: rank 0 has no fitted segment to define the master time base")
	}
	b0 := master.Drift
	a0 := master.RefOffset - b0*master.RefT // c_0(t) = (1+b0)·t + a0
	knots := make([][]float64, len(r.Ranks))
	lines := make([][]stats.Line, len(r.Ranks))
	for i := range r.Ranks {
		segs := usable(r.Ranks[i].Segments)
		if len(segs) == 0 {
			// Nothing to fit (an empty or placeholder rank): leave the
			// clock alone.
			knots[i] = []float64{0}
			lines[i] = []stats.Line{{Slope: 1}}
			degraded = append(degraded, i)
			continue
		}
		if !nonOverlapping(segs) {
			dom, _ := r.Ranks[i].Dominant()
			knots[i] = []float64{dom.StartLocal}
			lines[i] = []stats.Line{composePiece(dom, b0, a0)}
			degraded = append(degraded, i)
			continue
		}
		ks := make([]float64, len(segs))
		ls := make([]stats.Line, len(segs))
		for j, s := range segs {
			ks[j] = s.StartLocal
			ls[j] = composePiece(s, b0, a0)
		}
		knots[i] = ks
		lines[i] = ls
	}
	corr, err = interp.FromRankPieces(knots, lines)
	return corr, degraded, err
}

// usable filters out segments too thin to carry a slope (fewer than two
// samples never happens for post-break segments, but a rank with a
// single event produces one).
func usable(segs []Segment) []Segment {
	out := segs[:0:0]
	for _, s := range segs {
		if s.N >= 2 {
			out = append(out, s)
		}
	}
	return out
}

// nonOverlapping reports whether the segments occupy strictly
// increasing, disjoint local-time intervals — the invariant a piecewise
// correction needs. A reset that rewinds the clock violates it even
// when the post-reset start happens to exceed the pre-reset *start*:
// what matters is that each segment begins after the previous one
// ended, or its piece would shadow the earlier one.
func nonOverlapping(segs []Segment) bool {
	for i := 1; i < len(segs); i++ {
		if segs[i].StartLocal <= segs[i-1].EndLocal {
			return false
		}
	}
	return true
}

// composePiece maps one segment's local clock onto the master model
// c_0(t) = (1+b0)·t + a0.
func composePiece(s Segment, b0, a0 float64) stats.Line {
	ar := s.RefOffset - s.Drift*s.RefT // c_r(t) = (1+b_r)·t + ar
	slope := (1 + b0) / (1 + s.Drift)
	return stats.Line{Slope: slope, Intercept: a0 - ar*slope}
}
