package replay_test

// Property and adversarial tests for the replay engine. Property side:
// on clean traces (perfect clocks, or drifted clocks under a sound
// correction) the canonical replay and every seeded ε-feasible
// interleaving must report zero violations with bit-identical summary
// checksums, for any replay seed at any worker count. Adversarial side:
// the corrections a consumer must NOT trust — the identity map on
// drifted clocks, a piecewise correction with two ranks' pieces
// swapped, and the pre-PR-2 off-by-one knot reconstruction that keeps
// applying piece i-1 past knot i — must each be caught with at least
// one happened-before violation.

import (
	"bytes"
	"reflect"
	"testing"

	"tsync/internal/experiments"
	"tsync/internal/interp"
	"tsync/internal/measure"
	"tsync/internal/replay"
	"tsync/internal/stats"
	"tsync/internal/stream"
	"tsync/internal/trace"
)

const replaySeed = 0x4e91a77

// synthTrace renders a synthetic workload and returns the in-memory
// trace with its exact offset tables.
func synthTrace(t *testing.T, spec stream.SynthSpec) (*trace.Trace, []measure.Offset, []measure.Offset) {
	t.Helper()
	var buf bytes.Buffer
	init, fin, err := stream.Synth(spec, &buf)
	if err != nil {
		t.Fatalf("Synth: %v", err)
	}
	tr, err := trace.Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return tr, init, fin
}

// checkCleanReplay asserts the full order-invariance property on one
// trace: zero violations and one checksum across the canonical order
// and every (seed, workers) combination.
func checkCleanReplay(t *testing.T, tr *trace.Trace, label string) {
	t.Helper()
	eng, err := replay.New(tr, replay.Options{})
	if err != nil {
		t.Fatalf("%s: New: %v", label, err)
	}
	canon, err := eng.Canonical()
	if err != nil {
		t.Fatalf("%s: Canonical: %v", label, err)
	}
	if canon.Counts.Total() != 0 {
		t.Fatalf("%s: canonical order has violations: %+v", label, canon.Counts)
	}
	seeds := replay.Seeds(replaySeed, 3)
	var prev []*replay.Result
	for _, workers := range []int{1, 4} {
		reps, err := eng.ReplaySeeds(seeds, workers)
		if err != nil {
			t.Fatalf("%s: ReplaySeeds(workers=%d): %v", label, workers, err)
		}
		for _, r := range reps {
			if r.Counts.Total() != 0 {
				t.Errorf("%s: seed %d workers %d: violations %+v", label, r.Seed, workers, r.Counts)
			}
			if r.Checksum != canon.Checksum {
				t.Errorf("%s: seed %d workers %d: checksum %s != canonical %s",
					label, r.Seed, workers, r.Checksum, canon.Checksum)
			}
			if r.Breadth <= 0 {
				t.Errorf("%s: seed %d: no scheduling freedom measured", label, r.Seed)
			}
		}
		if prev != nil && !reflect.DeepEqual(prev, reps) {
			t.Errorf("%s: results differ between worker counts", label)
		}
		prev = reps
	}
}

// TestCleanReplayOrderInvariance: random seeded topologies, replayed
// with perfect clocks and with drifted clocks under the linear
// interpolation correction — both must be indistinguishable from the
// canonical order for every seed at every worker count.
func TestCleanReplayOrderInvariance(t *testing.T) {
	specs := []stream.SynthSpec{
		{Ranks: 3, Steps: 120, CollEvery: 7, Seed: 0x11},
		{Ranks: 5, Steps: 80, CollEvery: 5, Seed: 0x22},
	}
	for _, spec := range specs {
		perfect := spec
		perfect.DistortClock = func(rank int, tm, c float64) float64 { return tm }
		tr, _, _ := synthTrace(t, perfect)
		checkCleanReplay(t, tr, "perfect clocks")

		drifted, init, fin := synthTrace(t, spec)
		corr, err := interp.Linear(init, fin)
		if err != nil {
			t.Fatal(err)
		}
		checkCleanReplay(t, corr.Apply(drifted), "interp-corrected")
	}
}

// adversarialSpec is the workload the wrong-correction tests share: a
// frequency jump halfway through pushes every non-master clock onto a
// second linear piece, so a sound reconstruction genuinely needs two
// pieces per rank.
const advJump = 0.15 // oracle time of the frequency jump, mid-trace

func adversarialTrace(t *testing.T) (*trace.Trace, []measure.Offset, []measure.Offset) {
	t.Helper()
	spec := stream.SynthSpec{
		Ranks: 4, Steps: 300, CollEvery: 6, Seed: 0x1, // seed picked for well-separated rank offsets, so swapping two ranks' pieces is observable
		DistortClock: func(rank int, tm, c float64) float64 {
			if rank != 0 && tm > advJump {
				return c + 0.05*(tm-advJump) // 50 ms/s frequency error
			}
			return c
		},
	}
	return synthTrace(t, spec)
}

// reconstructPieces rebuilds each rank's two-piece correction from the
// trace itself: piece 1 through the init sample and the last pre-jump
// event, piece 2 through that event and the fin sample — the knot
// placement a correct fingerprint reconstruction would produce.
func reconstructPieces(t *testing.T, tr *trace.Trace, init, fin []measure.Offset) (knots [][]float64, lines [][]stats.Line) {
	t.Helper()
	lineThrough := func(w1, m1, w2, m2 float64) stats.Line {
		slope := (m2 - m1) / (w2 - w1)
		return stats.Line{Slope: slope, Intercept: m1 - slope*w1}
	}
	for r, p := range tr.Procs {
		var last *trace.Event
		for i := range p.Events {
			if p.Events[i].True <= advJump {
				last = &p.Events[i]
			}
		}
		if last == nil {
			t.Fatalf("rank %d has no pre-jump events", r)
		}
		w0, m0 := init[r].WorkerTime, init[r].WorkerTime+init[r].Offset
		wk, mk := last.Time, last.True
		w1, m1 := fin[r].WorkerTime, fin[r].WorkerTime+fin[r].Offset
		knots = append(knots, []float64{w0, wk})
		lines = append(lines, []stats.Line{lineThrough(w0, m0, wk, mk), lineThrough(wk, mk, w1, m1)})
	}
	return knots, lines
}

func canonicalCounts(t *testing.T, tr *trace.Trace) replay.Counts {
	t.Helper()
	eng, err := replay.New(tr, replay.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	canon, err := eng.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	return canon.Counts
}

// TestAdversarialCorrectionsDetected: each wrong correction must leave
// at least one happened-before violation for the canonical replay to
// catch, while the correct reconstruction of the same trace leaves
// none.
func TestAdversarialCorrectionsDetected(t *testing.T) {
	tr, init, fin := adversarialTrace(t)
	knots, lines := reconstructPieces(t, tr, init, fin)

	correct, err := interp.FromRankPieces(knots, lines)
	if err != nil {
		t.Fatal(err)
	}
	if c := canonicalCounts(t, correct.Apply(tr)); c.HB() != 0 {
		t.Fatalf("correct reconstruction still violates: %+v", c)
	}

	t.Run("identity map", func(t *testing.T) {
		if c := canonicalCounts(t, tr); c.HB() < 1 {
			t.Fatalf("uncorrected drifted trace reported clean: %+v", c)
		}
	})

	t.Run("swapped-rank pieces", func(t *testing.T) {
		sk := append([][]float64(nil), knots...)
		sl := append([][]stats.Line(nil), lines...)
		sk[1], sk[2] = sk[2], sk[1]
		sl[1], sl[2] = sl[2], sl[1]
		swapped, err := interp.FromRankPieces(sk, sl)
		if err != nil {
			t.Fatal(err)
		}
		if c := canonicalCounts(t, swapped.Apply(tr)); c.HB() < 1 {
			t.Fatalf("swapped-rank correction reported clean: %+v", c)
		}
	})

	t.Run("off-by-one knots", func(t *testing.T) {
		// the pre-PR-2 lookup bug: past knot i the previous piece keeps
		// being applied, so every rank's second interval gets piece 1
		bl := make([][]stats.Line, len(lines))
		for r := range lines {
			bl[r] = []stats.Line{lines[r][0], lines[r][0]}
		}
		buggy, err := interp.FromRankPieces(knots, bl)
		if err != nil {
			t.Fatal(err)
		}
		if c := canonicalCounts(t, buggy.Apply(tr)); c.HB() < 1 {
			t.Fatalf("off-by-one reconstruction reported clean: %+v", c)
		}
	})
}

// TestScoreRanksLikeCompareCorrections: the replay scoring table must
// rank corrections consistently with the residual-violation ranking of
// experiments.CompareCorrections — the uncorrected trace is strictly
// worst in both, and every shared corrected method beats it in both.
func TestScoreRanksLikeCompareCorrections(t *testing.T) {
	tr, init, fin := synthTrace(t, stream.SynthSpec{Ranks: 4, Steps: 200, CollEvery: 10, Seed: 0x44})

	scores, err := replay.Score(tr, init, fin, replay.ScoreConfig{Seeds: replay.Seeds(replaySeed, 2)})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]replay.MethodScore{}
	for _, s := range scores {
		if s.Err != nil {
			t.Fatalf("method %s failed: %v", s.Method, s.Err)
		}
		byName[s.Method] = s
	}

	cc, err := experiments.CompareCorrections(tr, init, fin, 0)
	if err != nil {
		t.Fatal(err)
	}
	ccByName := map[string]int{}
	for _, m := range cc {
		if m.Err == nil {
			ccByName[m.Method] = m.Violations
		}
	}

	if ccByName["none"] == 0 {
		t.Fatal("drifted trace has no residual violations to rank")
	}
	if byName["none"].Counts.HB() == 0 {
		t.Fatal("replay sees no violations on the uncorrected trace")
	}
	for _, m := range []string{"align", "interp", "interp+clc"} {
		if ccByName[m] >= ccByName["none"] {
			t.Errorf("CompareCorrections: %s (%d) not better than none (%d)", m, ccByName[m], ccByName["none"])
		}
		if byName[m].Counts.HB() >= byName["none"].Counts.HB() {
			t.Errorf("replay score: %s (%d) not better than none (%d)",
				m, byName[m].Counts.HB(), byName["none"].Counts.HB())
		}
	}
	// breadth is a property of the stamped trace, not the seed list, so
	// it must come back positive for every method
	for name, s := range byName {
		if s.Breadth <= 0 {
			t.Errorf("method %s: breadth %g", name, s.Breadth)
		}
	}
}

// TestReplaySeedsDeterministic: one seed list, many invocations — the
// same results every time, and Seeds itself is a pure function.
func TestReplaySeedsDeterministic(t *testing.T) {
	if !reflect.DeepEqual(replay.Seeds(7, 4), replay.Seeds(7, 4)) {
		t.Fatal("Seeds not deterministic")
	}
	tr, init, fin := synthTrace(t, stream.SynthSpec{Ranks: 3, Steps: 60, CollEvery: 4, Seed: 0x55})
	corr, err := interp.Linear(init, fin)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := replay.New(corr.Apply(tr), replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Replay(99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Replay(99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
