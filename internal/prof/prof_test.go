package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// allocate a little so the profiles have content
	buf := make([][]byte, 100)
	for i := range buf {
		buf[i] = make([]byte, 1<<10)
	}
	_ = buf
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("want error for uncreatable profile path")
	}
}
