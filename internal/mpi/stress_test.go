package mpi

import (
	"testing"
	"testing/quick"

	"tsync/internal/clock"
	"tsync/internal/topology"
	"tsync/internal/xrand"
)

// TestRandomCommunicationPatterns generates random message schedules and
// verifies the simulation terminates with a fully matched, causally valid
// trace — failure injection for the matching and scheduling machinery.
func TestRandomCommunicationPatterns(t *testing.T) {
	rng := xrand.NewSource(77)
	check := func(seedRaw uint16) bool {
		s := rng.Sub(string(rune(seedRaw)))
		n := 2 + s.Intn(6)
		nMsgs := 1 + s.Intn(40)
		type msg struct{ from, to int }
		schedule := make([]msg, nMsgs)
		recvCount := make([]int, n)
		for i := range schedule {
			from := s.Intn(n)
			to := s.Intn(n - 1)
			if to >= from {
				to++
			}
			schedule[i] = msg{from, to}
			recvCount[to]++
		}
		m := topology.Xeon()
		pin, err := topology.Scheduled(m, n, s.Sub("pin"))
		if err != nil {
			return false
		}
		w, err := NewWorld(Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: uint64(seedRaw), Tracing: true})
		if err != nil {
			return false
		}
		if err := w.Run(func(r *Rank) {
			// interleave: send own messages, then drain with wildcards
			for i, sc := range schedule {
				if sc.from == r.Rank() {
					r.Send(sc.to, i, 16, i)
				}
			}
			for k := 0; k < recvCount[r.Rank()]; k++ {
				r.Recv(AnySource, AnyTag)
			}
		}); err != nil {
			return false
		}
		tr := w.Trace()
		if err := tr.Validate(); err != nil {
			return false
		}
		msgs, err := tr.Messages()
		if err != nil {
			return false
		}
		if len(msgs) != nMsgs {
			return false
		}
		// causality in true time always holds
		for _, mm := range msgs {
			if tr.Procs[mm.To].Events[mm.ToIdx].True < tr.Procs[mm.From].Events[mm.FromIdx].True {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomNonblockingPatterns exercises Isend/Irecv/Waitall under random
// pair exchanges.
func TestRandomNonblockingPatterns(t *testing.T) {
	rng := xrand.NewSource(88)
	check := func(seedRaw uint16) bool {
		s := rng.Sub(string(rune(seedRaw)))
		n := 2 + 2*s.Intn(3) // even sizes: 2, 4, 6
		rounds := 1 + s.Intn(10)
		m := topology.Xeon()
		pin, err := topology.InterNode(m, n)
		if err != nil {
			return false
		}
		w, err := NewWorld(Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: uint64(seedRaw) + 1, Tracing: true})
		if err != nil {
			return false
		}
		ok := true
		if err := w.Run(func(r *Rank) {
			partner := r.Rank() ^ 1
			for round := 0; round < rounds; round++ {
				rq := r.Irecv(partner, round)
				sq := r.Isend(partner, round, 64, r.Rank()*1000+round)
				msgs := r.Waitall(rq, sq)
				if msgs[0].Data.(int) != partner*1000+round {
					ok = false
				}
			}
		}); err != nil {
			return false
		}
		if !ok {
			return false
		}
		msgs, err := w.Trace().Messages()
		return err == nil && len(msgs) == n*rounds
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveStorm runs every collective back to back across odd and
// even sizes, checking the engine drains completely.
func TestCollectiveStorm(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		w := newTestWorld(t, n, true)
		err := w.Run(func(r *Rank) {
			for i := 0; i < 5; i++ {
				r.Barrier()
				r.Allreduce(8, nil, nil)
				r.Bcast(i%n, 64, nil)
				r.Reduce((i+1)%n, 8, nil, nil)
				r.Gather(0, 8, nil)
				r.Scatter(0, 8, make([]any, n))
				r.Allgather(32)
				r.Alltoall(16)
				r.Scan(8, nil, nil)
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		tr := w.Trace()
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		colls, err := tr.Collectives()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(colls) != 5*9 {
			t.Fatalf("n=%d: %d collectives, want 45", n, len(colls))
		}
	}
}
