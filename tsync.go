// Package tsync is a laboratory for studying — and repairing — the effects
// of non-constant clock drifts on the timestamps of concurrent events in
// event traces of parallel applications. It reproduces, in simulation, the
// study of Becker, Rabenseifner and Wolf, "Implications of non-constant
// clock drifts for the timestamps of concurrent events" (IEEE CLUSTER 2008).
//
// The library simulates the full measurement stack of the paper: processor
// clocks with realistic drift processes (constant drift, random-walk
// wander, NTP slew discipline, power-managed cycle counters), hierarchical
// cluster topologies with per-chip or per-node oscillator domains, an
// interconnect latency model, a deterministic discrete-event MPI with
// point-to-point and collective operations, an OpenMP runtime emitting
// POMP events, PMPI-style trace recording, Cristian offset measurement,
// and the postmortem correction algorithms: offset alignment, linear
// offset interpolation (Eq. 3), the Duda/Hofmann/Jézéquel error-estimation
// family, Lamport and vector logical clocks, and the controlled logical
// clock (CLC) with forward/backward amortization — in both sequential and
// parallel-replay implementations.
//
// This file is a convenience facade over the implementation packages under
// internal/: topology, clock, netmodel, des, mpi, omp, trace, measure,
// interp, lclock, errest, clc, analysis, apps, render, experiments and
// core. The cmd/ binaries regenerate every table and figure of the paper;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results.
package tsync

import (
	"fmt"
	"io"

	"tsync/internal/clock"
	"tsync/internal/core"
	"tsync/internal/experiments"
	"tsync/internal/measure"
	"tsync/internal/mpi"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// Version identifies the library release.
const Version = "1.0.0"

// Job describes one simulated MPI measurement run.
type Job struct {
	// Machine is one of "xeon", "ppc", "opteron", "itanium".
	Machine string
	// Timer is a clock spelling accepted by clock.ParseKind: "tsc",
	// "tb", "rtc", "gtod", "mpiwtime", "cycle", "global".
	Timer string
	// Ranks is the number of MPI processes; placement follows Placement.
	Ranks int
	// Placement is "scheduled" (default), "internode", "interchip" or
	// "intercore".
	Placement string
	// Seed makes the run reproducible.
	Seed uint64
	// Tracing enables event recording from the start.
	Tracing bool
	// OffsetProbes is the number of Cristian probes per offset
	// measurement (default 20).
	OffsetProbes int
}

// Measurement is the outcome of a traced run: the raw trace plus the
// offset tables taken at initialization and finalization, i.e. everything
// Scalasca-style postmortem synchronization needs.
type Measurement struct {
	Trace *trace.Trace
	Init  []measure.Offset
	Fin   []measure.Offset
}

// Run executes program on every rank of a simulated job, measuring clock
// offsets at initialization and finalization around it.
func (j Job) Run(program func(*mpi.Rank)) (*Measurement, error) {
	m, err := topology.ParseMachine(orDefault(j.Machine, "xeon"))
	if err != nil {
		return nil, err
	}
	timer, err := clock.ParseKind(orDefault(j.Timer, "tsc"))
	if err != nil {
		return nil, err
	}
	if j.Ranks < 1 {
		return nil, fmt.Errorf("tsync: job needs at least one rank")
	}
	var pin topology.Pinning
	switch orDefault(j.Placement, "scheduled") {
	case "scheduled":
		pin, err = topology.Scheduled(m, j.Ranks, xrand.NewSource(j.Seed^0x9b4fb1))
	case "internode":
		pin, err = topology.InterNode(m, j.Ranks)
	case "interchip":
		pin, err = topology.InterChip(m, j.Ranks)
	case "intercore":
		pin, err = topology.InterCore(m, j.Ranks)
	default:
		return nil, fmt.Errorf("tsync: unknown placement %q", j.Placement)
	}
	if err != nil {
		return nil, err
	}
	w, err := mpi.NewWorld(mpi.Config{
		Machine: m, Timer: timer, Pinning: pin, Seed: j.Seed, Tracing: j.Tracing,
	})
	if err != nil {
		return nil, err
	}
	probes := j.OffsetProbes
	if probes <= 0 {
		probes = 20
	}
	out := &Measurement{}
	var inner error
	err = w.Run(func(r *mpi.Rank) {
		init, err := measure.Offsets(r, probes)
		if err != nil {
			inner = err
			return
		}
		program(r)
		fin, err := measure.Offsets(r, probes)
		if err != nil {
			inner = err
			return
		}
		if r.Rank() == 0 {
			out.Init, out.Fin = init, fin
		}
	})
	if err != nil {
		return nil, err
	}
	if inner != nil {
		return nil, inner
	}
	out.Trace = w.Trace()
	return out, nil
}

// Synchronize applies a postmortem synchronization pipeline to a
// measurement. base is a core.Base spelling ("none", "align", "interp",
// "duda-regression", "duda-convex-hull", "hofmann-minmax"); withCLC adds
// the controlled logical clock stage. The paper's recommended combination
// is ("interp", true).
func Synchronize(m *Measurement, base string, withCLC bool) (*core.Result, error) {
	if m == nil || m.Trace == nil {
		return nil, fmt.Errorf("tsync: nil measurement")
	}
	b, err := core.ParseBase(base)
	if err != nil {
		return nil, err
	}
	p := core.Pipeline{Base: b, CLC: withCLC, Parallel: true}
	return p.Run(m.Trace, m.Init, m.Fin)
}

// WriteTrace encodes a trace to w in the binary .etr format.
func WriteTrace(w io.Writer, t *trace.Trace) error {
	_, err := trace.Write(w, t)
	return err
}

// ReadTrace decodes a trace from r.
func ReadTrace(r io.Reader) (*trace.Trace, error) {
	return trace.Read(r)
}

// Fig4 runs one panel ("a", "b", "c") of the paper's Fig. 4 (clock
// deviations after offset alignment only).
func Fig4(panel string, seed uint64) (*experiments.ClockStudyResult, error) {
	cfg, err := experiments.Fig4Config(panel, seed)
	if err != nil {
		return nil, err
	}
	return experiments.ClockStudy(cfg)
}

// Fig5 runs one panel ("a", "b", "c") of Fig. 5 (deviations after linear
// offset interpolation over one hour).
func Fig5(panel string, seed uint64) (*experiments.ClockStudyResult, error) {
	cfg, err := experiments.Fig5Config(panel, seed)
	if err != nil {
		return nil, err
	}
	return experiments.ClockStudy(cfg)
}

// Fig6 runs the short-run interpolation study of Fig. 6.
func Fig6(seed uint64) (*experiments.ClockStudyResult, error) {
	return experiments.ClockStudy(experiments.Fig6Config(seed))
}

// TableII measures the message and collective latencies of Table II on a
// machine ("xeon", "ppc", "opteron", "itanium").
func TableII(machine string, seed uint64) ([]experiments.LatencyRow, error) {
	m, err := topology.ParseMachine(machine)
	if err != nil {
		return nil, err
	}
	return experiments.LatencyStudy(m, clock.TSC, 1000, seed)
}

// Fig7 runs the application violation census of Fig. 7 for "pop" or "smg".
func Fig7(app string, seed uint64) (*experiments.AppViolationsResult, error) {
	return experiments.AppViolations(experiments.AppViolationsConfig{
		App:     experiments.AppKind(app),
		Machine: topology.Xeon(),
		Timer:   clock.TSC,
		Ranks:   32,
		Reps:    3,
		Seed:    seed,
	})
}

// Fig8 runs the OpenMP POMP violation study of Fig. 8 for one thread
// count.
func Fig8(threads int, seed uint64) (*experiments.OMPStudyResult, error) {
	return experiments.OMPStudy(experiments.OMPStudyConfig{
		Machine: topology.Itanium(),
		Timer:   clock.TSC,
		Threads: threads,
		Regions: 100,
		Reps:    3,
		Seed:    seed,
	})
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}
