// Package suite aggregates the tsyncvet analyzer set: the nine
// domain-specific analyzers that machine-check the repository's
// clock-correctness and concurrency invariants, plus the stock
// go/analysis vet passes that are useful on this codebase. cmd/tsyncvet
// runs the whole set; the domain analyzers are also individually
// testable via their own packages.
//
// The domain set comes in two waves. The first (PR 1) guards the
// simulation substrate: wallclock, floateq, tsmutate, locked. The second
// machine-enforces the contracts PRs 2–5 established by hand: maporder
// (the errest MST tie-break bug class), seedsrc (splitmix64-only
// randomness), ctxflow (the streaming cancellation contract), poolcheck
// (the slab-recycling contract), and errform (classified, located decode
// errors).
//
// Two stock passes are deliberately load-bearing rather than incidental:
// lostcancel backs the ctxflow story (a context.WithCancel whose cancel
// func is dropped leaks the very goroutines ctxflow exists to stop), and
// unusedresult is configured below with the repository's own
// must-consume functions (a discarded runner.Seed or xrand.SeedAt is a
// determinism bug: the caller meant to derive a seed and silently kept
// using another stream).
package suite

import (
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/assign"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/buildtag"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/ifaceassert"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/printf"
	"golang.org/x/tools/go/analysis/passes/shift"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/tests"
	"golang.org/x/tools/go/analysis/passes/unmarshal"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unusedresult"

	"tsync/internal/lint/ctxflow"
	"tsync/internal/lint/errform"
	"tsync/internal/lint/floateq"
	"tsync/internal/lint/locked"
	"tsync/internal/lint/maporder"
	"tsync/internal/lint/poolcheck"
	"tsync/internal/lint/seedsrc"
	"tsync/internal/lint/tsmutate"
	"tsync/internal/lint/wallclock"
)

// mustConsume lists repository functions whose discarded result is a
// bug, appended to unusedresult's stock set: pure seed/offset derivation
// helpers where dropping the result means the caller kept an unseeded or
// stale stream.
var mustConsume = []string{
	"tsync/internal/xrand.SeedAt",
	"tsync/internal/runner.Seed",
	"tsync/internal/stats.ApproxEqual",
}

func init() {
	f := unusedresult.Analyzer.Flags.Lookup("funcs")
	if f == nil {
		panic("suite: unusedresult lost its funcs flag")
	}
	// Set clobbers the previous set, so merge the stock list with ours in
	// a single call.
	merged := append([]string{f.Value.String()}, mustConsume...)
	if err := f.Value.Set(strings.Join(merged, ",")); err != nil {
		panic("suite: configuring unusedresult: " + err.Error())
	}
}

// Domain returns the nine tsync-specific analyzers.
func Domain() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		wallclock.Analyzer,
		floateq.Analyzer,
		tsmutate.Analyzer,
		locked.Analyzer,
		maporder.Analyzer,
		seedsrc.Analyzer,
		ctxflow.Analyzer,
		poolcheck.Analyzer,
		errform.Analyzer,
	}
}

// Analyzers returns the full tsyncvet set: domain analyzers plus the
// stock vet passes (the same set `go vet` runs by default, minus passes
// that need build-system integration we don't use, like cgocall).
func Analyzers() []*analysis.Analyzer {
	return append(Domain(),
		assign.Analyzer,
		atomic.Analyzer,
		bools.Analyzer,
		buildtag.Analyzer,
		copylock.Analyzer,
		defers.Analyzer,
		errorsas.Analyzer,
		ifaceassert.Analyzer,
		loopclosure.Analyzer,
		lostcancel.Analyzer,
		nilfunc.Analyzer,
		printf.Analyzer,
		shift.Analyzer,
		sigchanyzer.Analyzer,
		stdmethods.Analyzer,
		stringintconv.Analyzer,
		structtag.Analyzer,
		tests.Analyzer,
		unmarshal.Analyzer,
		unreachable.Analyzer,
		unusedresult.Analyzer,
	)
}
