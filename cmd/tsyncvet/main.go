// Command tsyncvet runs the repository's clock-correctness and
// concurrency analyzers (wallclock, floateq, tsmutate, locked, maporder,
// seedsrc, ctxflow, poolcheck, errform — see internal/lint) together
// with the stock go/analysis vet passes.
//
// It is both a standalone driver and a `go vet` vettool:
//
//	go run ./cmd/tsyncvet ./...          # lint the whole module
//	go run ./cmd/tsyncvet -json ./...    # machine-readable diagnostics
//	go vet -vettool=$(which tsyncvet) ./...
//
// Given package patterns, tsyncvet re-executes itself through
// `go vet -vettool`, which hands each package to the unitchecker protocol
// with full type information and cross-package facts from the standard
// build system. (The usual multichecker driver lives in parts of x/tools
// that the Go distribution does not vendor; the unitchecker route needs
// only what `go vet` itself ships with, and behaves identically in CI.)
//
// With -json, diagnostics are re-emitted as one JSON object per line on
// stdout — {"file", "line", "col", "analyzer", "message"} — sorted by
// position, so CI annotators and future tooling can consume findings
// without scraping the human format. The exit code is 1 when any
// diagnostic was reported, 0 on a clean sweep.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"tsync/internal/lint/suite"
)

func main() {
	args := os.Args[1:]
	if isVettoolInvocation(args) {
		unitchecker.Main(suite.Analyzers()...) // exits
	}
	jsonOut := false
	var patterns []string
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonOut = true
			continue
		}
		patterns = append(patterns, a)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if jsonOut {
		os.Exit(driveJSON(patterns))
	}
	os.Exit(drive(patterns))
}

// isVettoolInvocation reports whether the process was started by the go
// command's vet machinery rather than by a human: the go command probes
// the tool with -V=full and -flags, then runs it on unitchecker *.cfg
// files; human invocations carry package patterns (or only driver flags
// like -json, which the probe never passes).
func isVettoolInvocation(args []string) bool {
	if len(args) == 0 {
		return false
	}
	probed := false
	for _, a := range args {
		switch {
		case strings.HasSuffix(a, ".cfg"), strings.HasPrefix(a, "-V"), a == "-flags":
			probed = true
		case strings.HasPrefix(a, "-"):
			// analyzer flag: compatible with either mode
		default:
			return false // a package pattern: human invocation
		}
	}
	return probed
}

// drive re-runs the analysis through `go vet -vettool=<self> patterns`,
// streaming output through and propagating the exit code.
func drive(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsyncvet: cannot locate own binary: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "tsyncvet: running go vet: %v\n", err)
		return 1
	}
	return 0
}

// diagnostic is one flattened finding, the -json output unit.
type diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// driveJSON runs `go vet -json -vettool=<self>` and re-emits the
// per-package JSON as a flat, position-sorted stream of diagnostics.
func driveJSON(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsyncvet: cannot locate own binary: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-json", "-vettool=" + exe}, patterns...)...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	runErr := cmd.Run()

	diags, perr := parseVetJSON(errBuf.String() + out.String())
	if perr != nil {
		// Build failures and driver errors arrive as plain text; pass
		// them through so the cause is visible.
		fmt.Fprint(os.Stderr, errBuf.String())
		fmt.Fprintf(os.Stderr, "tsyncvet: parsing go vet -json output: %v\n", perr)
		return 1
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if err := enc.Encode(d); err != nil {
			fmt.Fprintf(os.Stderr, "tsyncvet: %v\n", err)
			return 1
		}
	}
	if len(diags) > 0 {
		return 1
	}
	if runErr != nil {
		if ee, ok := runErr.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "tsyncvet: running go vet: %v\n", runErr)
		return 1
	}
	return 0
}

// parseVetJSON decodes the `go vet -json` stream: "# package" comment
// lines separating one JSON object per package of the shape
// {"pkg": {"analyzer": [{"posn": "file:line:col", "message": "..."}]}}.
func parseVetJSON(s string) ([]diagnostic, error) {
	var diags []diagnostic
	dec := json.NewDecoder(strings.NewReader(stripComments(s)))
	for dec.More() {
		var perPkg map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := dec.Decode(&perPkg); err != nil {
			return nil, err
		}
		for _, pkg := range sortedKeys(perPkg) {
			byAnalyzer := perPkg[pkg]
			for _, analyzer := range sortedKeys(byAnalyzer) {
				for _, d := range byAnalyzer[analyzer] {
					file, line, col := splitPosn(d.Posn)
					diags = append(diags, diagnostic{
						File: file, Line: line, Col: col,
						Analyzer: analyzer, Message: d.Message,
					})
				}
			}
		}
	}
	return diags, nil
}

// stripComments drops the "# package" separator lines go vet interleaves
// with the JSON objects.
func stripComments(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// sortedKeys returns m's keys in sorted order, so diagnostics accumulate
// deterministically regardless of map visit order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// splitPosn parses "file:line:col" (column optional).
func splitPosn(posn string) (file string, line, col int) {
	parts := strings.Split(posn, ":")
	var nums []int
	for len(parts) > 1 && len(nums) < 2 {
		n, err := strconv.Atoi(parts[len(parts)-1])
		if err != nil {
			break
		}
		nums = append(nums, n)
		parts = parts[:len(parts)-1]
	}
	switch len(nums) {
	case 2: // trailing ...:line:col
		line, col = nums[1], nums[0]
	case 1: // trailing ...:line
		line = nums[0]
	}
	return strings.Join(parts, ":"), line, col
}
