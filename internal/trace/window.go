package trace

import "fmt"

// Window extracts the sub-trace whose events fall inside [from, to) in
// oracle true time, keeping the trace self-consistent: a message or
// collective survives only if all of its events lie inside the window
// (half-recorded communication would break postmortem matching, the same
// reason partial tracing must toggle at quiescent points). Region
// Enter/Exit events are kept individually — analyses that need balanced
// nesting should widen the window to region boundaries.
func Window(t *Trace, from, to float64) (*Trace, error) {
	if to <= from {
		return nil, fmt.Errorf("trace: empty window [%v, %v)", from, to)
	}
	inside := func(ev *Event) bool { return ev.True >= from && ev.True < to }

	// a message survives if both endpoints are inside
	msgs, err := t.Messages()
	if err != nil {
		return nil, err
	}
	dropMsg := map[[2]int]bool{} // (rank, idx) of message events to drop
	for _, m := range msgs {
		s := &t.Procs[m.From].Events[m.FromIdx]
		r := &t.Procs[m.To].Events[m.ToIdx]
		if inside(s) != inside(r) || !inside(s) {
			dropMsg[[2]int{m.From, m.FromIdx}] = true
			dropMsg[[2]int{m.To, m.ToIdx}] = true
		}
	}
	// a collective survives if every participant's begin and end are in
	colls, err := t.Collectives()
	if err != nil {
		return nil, err
	}
	dropColl := map[[2]int32]bool{} // (comm, instance)
	for _, c := range colls {
		keep := true
		for rank, idx := range c.Begin { //tsync:unordered — monotone boolean AND: keep only ever falls to false, so every visit order agrees
			if !inside(&t.Procs[rank].Events[idx]) {
				keep = false
			}
		}
		for rank, idx := range c.End { //tsync:unordered — monotone boolean AND: keep only ever falls to false, so every visit order agrees
			if !inside(&t.Procs[rank].Events[idx]) {
				keep = false
			}
		}
		if !keep {
			dropColl[[2]int32{c.Comm, c.Instance}] = true
		}
	}

	out := &Trace{
		Machine:    t.Machine,
		Timer:      t.Timer,
		Regions:    append([]string(nil), t.Regions...),
		MinLatency: t.MinLatency,
	}
	for rank, p := range t.Procs {
		np := Proc{Rank: p.Rank, Core: p.Core, Clock: p.Clock}
		for idx := range p.Events {
			ev := &p.Events[idx]
			switch ev.Kind {
			case Send, Recv:
				if dropMsg[[2]int{rank, idx}] || !inside(ev) {
					continue
				}
			case CollBegin, CollEnd:
				if dropColl[[2]int32{ev.Comm, ev.Instance}] || !inside(ev) {
					continue
				}
			default:
				if !inside(ev) {
					continue
				}
			}
			np.Events = append(np.Events, *ev)
		}
		out.Procs = append(out.Procs, np)
	}
	return out, nil
}
