package core

import (
	"testing"

	"tsync/internal/apps"
	"tsync/internal/clock"
	"tsync/internal/measure"
	"tsync/internal/mpi"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// tracedRun produces a raw trace with offset tables, like a Scalasca
// measurement of a small POP run.
func tracedRun(t testing.TB, seed uint64) (*trace.Trace, []measure.Offset, []measure.Offset) {
	t.Helper()
	m := topology.Xeon()
	// 16 ranks span two nodes, so raw timestamps come from different
	// oscillators and are guaranteed to violate the clock condition
	pin, err := topology.Scheduled(m, 16, xrand.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.POPConfig{
		Px: 4, Py: 4, Iterations: 60, TraceStart: 20, TraceEnd: 40,
		StepTime: 0.4, Imbalance: 0.05, HaloBytes: 2048, AllreduceEvery: 1, Seed: seed,
	}
	body := apps.POP(cfg)
	var init, fin []measure.Offset
	var inner error
	if err := w.Run(func(r *mpi.Rank) {
		i1, err := measure.Offsets(r, 20)
		if err != nil {
			inner = err
			return
		}
		body(r)
		f1, err := measure.Offsets(r, 20)
		if err != nil {
			inner = err
			return
		}
		if r.Rank() == 0 {
			init, fin = i1, f1
		}
	}); err != nil {
		t.Fatal(err)
	}
	if inner != nil {
		t.Fatal(inner)
	}
	return w.Trace(), init, fin
}

func TestRecommendedPipelineRemovesViolations(t *testing.T) {
	raw, init, fin := tracedRun(t, 3)
	res, err := Recommended().Run(raw, init, fin)
	if err != nil {
		t.Fatal(err)
	}
	// raw unaligned clocks guarantee violations
	if res.Before.ClockCondition == 0 {
		t.Fatalf("raw trace unexpectedly clean")
	}
	if res.After.Reversed != 0 {
		t.Fatalf("%d reversed messages remain", res.After.Reversed)
	}
	if res.CLCReport.ViolationsAfter != 0 {
		t.Fatalf("CLC left %d violations", res.CLCReport.ViolationsAfter)
	}
	if res.Trace == raw {
		t.Fatalf("pipeline returned the input trace")
	}
	if res.Distortion.N == 0 {
		t.Fatalf("distortion not computed")
	}
}

func TestAllBasesRun(t *testing.T) {
	raw, init, fin := tracedRun(t, 5)
	for _, base := range []Base{BaseNone, BaseAlign, BaseInterp, BaseRegression, BaseConvexHull, BaseMinMax} {
		res, err := (Pipeline{Base: base}).Run(raw, init, fin)
		if err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		if res.Trace == nil || res.After.Messages != res.Before.Messages {
			t.Fatalf("%s: malformed result", base)
		}
	}
}

func TestBaseCorrectionsReduceViolations(t *testing.T) {
	raw, init, fin := tracedRun(t, 7)
	noneRes, err := (Pipeline{Base: BaseNone}).Run(raw, init, fin)
	if err != nil {
		t.Fatal(err)
	}
	interpRes, err := (Pipeline{Base: BaseInterp}).Run(raw, init, fin)
	if err != nil {
		t.Fatal(err)
	}
	if interpRes.After.Reversed >= noneRes.After.Reversed && noneRes.After.Reversed > 0 {
		t.Fatalf("interp (%d) did not reduce reversed messages vs none (%d)",
			interpRes.After.Reversed, noneRes.After.Reversed)
	}
}

func TestSequentialMatchesParallelPipeline(t *testing.T) {
	raw, init, fin := tracedRun(t, 9)
	seq, err := (Pipeline{Base: BaseInterp, CLC: true}).Run(raw, init, fin)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (Pipeline{Base: BaseInterp, CLC: true, Parallel: true}).Run(raw, init, fin)
	if err != nil {
		t.Fatal(err)
	}
	if seq.CLCReport != par.CLCReport {
		t.Fatalf("sequential and parallel pipelines disagree: %+v vs %+v", seq.CLCReport, par.CLCReport)
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := (Pipeline{}).Run(nil, nil, nil); err == nil {
		t.Fatalf("nil trace accepted")
	}
	raw, _, _ := tracedRun(t, 11)
	if _, err := (Pipeline{Base: "nonsense"}).Run(raw, nil, nil); err == nil {
		t.Fatalf("bad base accepted")
	}
	if _, err := (Pipeline{Base: BaseInterp}).Run(raw, nil, nil); err == nil {
		t.Fatalf("interp without offsets accepted")
	}
}

func TestParseBase(t *testing.T) {
	for _, s := range []string{"none", "align", "interp", "duda-regression", "duda-convex-hull", "hofmann-minmax"} {
		if _, err := ParseBase(s); err != nil {
			t.Fatalf("ParseBase(%q): %v", s, err)
		}
	}
	if _, err := ParseBase("x"); err == nil {
		t.Fatalf("bad spelling accepted")
	}
}

func TestPipelineDoesNotMutateInput(t *testing.T) {
	raw, init, fin := tracedRun(t, 13)
	before := raw.Clone()
	if _, err := Recommended().Run(raw, init, fin); err != nil {
		t.Fatal(err)
	}
	for i := range raw.Procs {
		for j := range raw.Procs[i].Events {
			if raw.Procs[i].Events[j] != before.Procs[i].Events[j] {
				t.Fatalf("input trace mutated at %d/%d", i, j)
			}
		}
	}
}

func BenchmarkRecommendedPipeline(b *testing.B) {
	raw, init, fin := tracedRun(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Recommended().Run(raw, init, fin); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWindowedErrestBase(t *testing.T) {
	raw, init, fin := tracedRun(t, 15)
	plain, err := (Pipeline{Base: BaseRegression}).Run(raw, init, fin)
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := (Pipeline{Base: BaseRegression, Windows: 6}).Run(raw, init, fin)
	if err != nil {
		t.Fatal(err)
	}
	// windowing trades robustness on sparse windows for accuracy on
	// drift kinks (see internal/errest tests for the case it wins); here
	// we assert structural validity and that it stays in the same class
	if windowed.After.Messages != plain.After.Messages {
		t.Fatalf("windowed pipeline altered message structure")
	}
	if windowed.After.Reversed > 2*plain.After.Reversed+10 {
		t.Fatalf("windowed errest catastrophically worse: %d vs %d reversed",
			windowed.After.Reversed, plain.After.Reversed)
	}
}
