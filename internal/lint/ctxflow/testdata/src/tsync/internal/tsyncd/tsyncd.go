// Package tsyncd models the trace-sync service's entry points for the
// ctxflow analyzer: PR 10 added a resident server whose accept loop,
// per-connection spool loops, and client retry loops are exactly the
// shapes the cancellation contract exists for. The path carries the
// "tsyncd" segment, so the long-running rules apply in full.
package tsyncd

import "context"

// --- positives ---

// Serve accepts connections forever but cannot be told to drain.
func Serve(accept func() (int, bool)) { // want `exported Serve runs unbounded work \(a for loop with no condition\) without a context.Context`
	for {
		if _, ok := accept(); !ok {
			return
		}
	}
}

// Spool buffers upload frames until EOF with no way to cut a stalled
// client loose.
func Spool(frames chan []byte) int { // want `exported Spool runs unbounded work \(a range over a channel\) without a context.Context`
	n := 0
	for f := range frames {
		n += len(f)
	}
	return n
}

// Handle spawns a session goroutine that nothing can abort.
func Handle(session func()) { // want `exported Handle runs unbounded work \(a spawned goroutine\) without a context.Context`
	go session()
}

// Retry takes a context but its attempt loop never consults it: a
// client stuck redialing a dead server cannot be cancelled.
func Retry(ctx context.Context, attempt func() bool) {
	for { // want `condition-less loop never observes ctx`
		if attempt() {
			return
		}
	}
}

// server stores the serve context, decoupling the drain signal from the
// sessions it is supposed to reach.
type server struct {
	ctx context.Context // want `context.Context stored in a struct field`
}

// Admit buries the context behind the tenant name.
func Admit(tenant string, ctx context.Context) error { // want `context.Context is parameter 2 of Admit`
	return ctx.Err()
}

// --- negatives ---

// ServeContext is the fixed Serve: the accept loop polls the drain
// signal every iteration, which is how the real server stops admitting.
func ServeContext(ctx context.Context, accept func() (int, bool)) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, ok := accept(); !ok {
			return nil
		}
	}
}

// SpoolContext polls on a frame stride so a drain interrupts even a
// client that keeps the upload flowing.
func SpoolContext(ctx context.Context, next func() ([]byte, bool)) (int, error) {
	n := 0
	for {
		if n&63 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		f, ok := next()
		if !ok {
			return n, nil
		}
		n += len(f)
	}
}

// RetryContext delegates the block to a ctx-taking dial each attempt.
func RetryContext(ctx context.Context, attempt func(context.Context) bool) {
	for {
		if attempt(ctx) {
			return
		}
	}
}

// Sync has no loop of its own: the cancellable work lives in the
// callee, so the convenience wrapper is exempt.
func Sync(attempt func(context.Context) bool) {
	RetryContext(context.Background(), attempt)
}

// reap is unexported: internal helpers inherit their caller's contract.
func reap(conns chan int) {
	for range conns {
	}
}

// --- directive-suppressed ---

// DrainQueue empties the admission queue after the listener has closed;
// the queue is finite and no longer fed, so the loop is bounded by
// construction.
func DrainQueue(pop func() (int, bool)) int {
	n := 0
	for { //tsync:nocancel — the listener is closed before DrainQueue runs; the queue is finite and never refilled, so the loop is bounded by its remaining length
		v, ok := pop()
		if !ok {
			return n
		}
		n++
		_ = v
	}
}
