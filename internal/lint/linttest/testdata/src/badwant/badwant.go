// Package badwant carries a double-quoted want (valid) next to an
// unparsable want regexp, so the harness's error path is exercised while
// the diagnostic itself still matches.
package badwant

func boom() {}

func use() {
	boom() // want "call to boom" `(`
}
