// Package runner is the deterministic fan-out engine behind every
// repetition loop and method sweep in internal/experiments.
//
// The repository's reproducibility contract — a run is a pure function of
// its configuration — must survive parallel execution: averaging three
// repetitions on eight workers has to produce the same bits as averaging
// them serially, or the paper's tables stop being checkable. Replay Clocks
// (Lagwankar & Kulkarni) make the same argument for offline replay: a
// correction pipeline is only trustworthy if re-running it is
// deterministic. The engine therefore guarantees, for any worker count:
//
//  1. per-task randomness is derived from the task *index*, not from
//     execution order, via an O(1)-addressable splitmix64 stream
//     (xrand.SeedAt), so task i sees the same seed whether it runs first
//     or last, on one worker or sixteen;
//  2. results are collected into a slice indexed by task, so the caller
//     observes them in task order regardless of completion order; any
//     order-sensitive reduction (floating-point averaging!) then happens
//     serially on the caller's side over that ordered slice;
//  3. errors are reported deterministically: every task runs to
//     completion and the error of the lowest-index failing task is
//     returned, so a slow worker cannot change which error surfaces.
//
// The worker-count invariance property is enforced by TestMapInvariance in
// this package and, end to end, by the experiment checksum tests in
// internal/experiments.
package runner

import (
	"context"
	"runtime"
	"sync"

	"tsync/internal/xrand"
)

// Pool bounds the number of tasks executing concurrently. The zero value
// and New(0) both default to one worker per CPU. Pool is stateless and
// may be shared by concurrent callers.
type Pool struct {
	workers int
}

// New returns a pool with the given concurrency bound; workers <= 0 means
// runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.NumCPU()
	}
	return p.workers
}

// Seed derives the seed of task i from an experiment's base seed: the i-th
// output of the splitmix64 stream seeded with base. Tasks must draw all
// their randomness from sources seeded this way (never from a generator
// shared across tasks) — that is what makes the fan-out order-independent.
func Seed(base uint64, i int) uint64 {
	return xrand.SeedAt(base, uint64(i))
}

// Map runs task(0..n-1) on the pool and returns their results in task
// order. It is MapContext with a background context, for fan-outs that
// are bounded and short; anything a caller may want to abandon (a method
// sweep, a large repetition loop) should go through MapContext.
func Map[T any](p *Pool, n int, task func(i int) (T, error)) ([]T, error) {
	return MapContext(context.Background(), p, n, task)
}

// MapContext runs task(0..n-1) on the pool and returns their results in
// task order. All tasks are executed even after a failure; if any tasks
// fail, the error of the lowest-index failing task is returned (the
// results slice is still returned, with valid entries for the tasks that
// succeeded). n == 0 returns an empty slice.
//
// Cancelling ctx stops dispatching: tasks already handed to a worker run
// to completion (preserving the disjoint-index write contract), and every
// task not yet dispatched fails with ctx.Err(). Because tasks are
// dispatched in index order, the set of completed tasks after a
// cancellation is always a prefix-closed choice of indices plus the
// in-flight window — determinism per task is unaffected, since each
// task's seed depends only on its index (see Seed).
func MapContext[T any](ctx context.Context, p *Pool, n int, task func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// serial fast path: same semantics, no goroutines
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			results[i], errs[i] = task(i)
		}
		return results, firstError(errs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = task(i) //tsync:locked — each task index i is claimed by exactly one worker via the next channel; results[i]/errs[i] are disjoint and read only after wg.Wait
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		// poll before select: an already-cancelled ctx must deterministically
		// dispatch nothing more (select alone would race Done against send)
		if ctx.Err() != nil {
			for j := i; j < n; j++ {
				errs[j] = ctx.Err() //tsync:locked — indices >= i were never sent on next, so no worker writes them; disjoint from the in-flight window
			}
			break dispatch
		}
		select {
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = ctx.Err() //tsync:locked — indices >= i were never sent on next, so no worker writes them; disjoint from the in-flight window
			}
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	return results, firstError(errs)
}

// firstError returns the lowest-index non-nil error.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
