package runner

// Dynamic half of the goroutine-hygiene argument for the fan-out engine
// (the static half is the tsync:locked annotation in Map): `make race`
// replays the pool under the race detector with enough tasks, workers and
// nesting that an unsafe schedule of the results/errs writes or of the
// index channel would be observed.

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRaceMapManyTasks(t *testing.T) {
	var calls atomic.Int64
	got, err := Map(New(8), 500, func(i int) (float64, error) {
		calls.Add(1)
		return simulate(Seed(99, i)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 || calls.Load() != 500 {
		t.Fatalf("%d results, %d calls", len(got), calls.Load())
	}
}

func TestRaceMapNested(t *testing.T) {
	// experiments nest fan-outs (CompareCorrections inside a rep loop;
	// clc.CorrectParallel inside a method task) — exercise that shape
	outer, err := Map(New(4), 8, func(i int) ([]uint64, error) {
		return Map(New(3), 16, func(j int) (uint64, error) {
			return Seed(Seed(7, i), j), nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, inner := range outer {
		for j, v := range inner {
			if want := Seed(Seed(7, i), j); v != want {
				t.Fatalf("outer %d inner %d: %#x want %#x", i, j, v, want)
			}
		}
	}
}

func TestRaceMapErrors(t *testing.T) {
	for round := 0; round < 20; round++ {
		_, err := Map(New(6), 64, func(i int) (int, error) {
			if i%7 == 1 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 1 failed" {
			t.Fatalf("round %d: err = %v", round, err)
		}
	}
}
