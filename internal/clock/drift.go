package clock

import (
	"math"

	"tsync/internal/xrand"
)

// ConstantDrift is the textbook model of Figure 1 in the paper: a clock
// whose rate differs from true time by a fixed dimensionless factor.
type ConstantDrift struct {
	Rate float64
}

// NextSegment implements DriftProcess with a single infinite segment,
// delivered in large chunks.
func (c ConstantDrift) NextSegment(seg int, trueStart, offsetSoFar float64) (float64, float64) {
	return c.Rate, 1 << 20 // ~12 days per segment; effectively unbounded
}

// RandomWalkDrift models the slow, non-deterministic wander of a free
// running hardware oscillator (temperature and power-management effects,
// Section III.c). The rate performs a clamped Gaussian random walk around a
// constant base rate. This is what makes hardware counters "approximately
// but not exactly" constant-drift (Figs. 5a/5b): the residual after linear
// interpolation over an hour is the integral of this wander.
type RandomWalkDrift struct {
	Base     float64       // intrinsic constant drift rate
	Step     float64       // std dev of the rate increment per segment
	Interval float64       // true-time length of each segment
	MaxDelta float64       // clamp of |rate - Base|; 0 means ±100*Step
	rng      *xrand.Source // drawn once per segment
	cur      float64       // current deviation from Base
	inited   bool
}

// NewRandomWalkDrift constructs the wander process with its private random
// stream.
func NewRandomWalkDrift(base, step, interval float64, rng *xrand.Source) *RandomWalkDrift {
	if interval <= 0 {
		panic("clock: RandomWalkDrift interval must be positive")
	}
	return &RandomWalkDrift{Base: base, Step: step, Interval: interval, rng: rng}
}

// NextSegment implements DriftProcess.
func (w *RandomWalkDrift) NextSegment(seg int, trueStart, offsetSoFar float64) (float64, float64) {
	if !w.inited {
		w.inited = true
	} else {
		w.cur += w.rng.Normal(0, w.Step)
	}
	limit := w.MaxDelta
	if limit == 0 {
		limit = 100 * w.Step
	}
	if w.cur > limit {
		w.cur = limit
	}
	if w.cur < -limit {
		w.cur = -limit
	}
	return w.Base + w.cur, w.Interval
}

// NTPDrift models a software clock disciplined by the Network Time
// Protocol. NTP avoids jumps by *slewing*: at every poll it estimates the
// offset to its reference (with network-limited accuracy of order a
// millisecond, Section II) and adjusts the rate, leaving the value
// continuous. The result is the signature shape of Figs. 4a/4b: stretches
// of constant drift separated by abrupt slope changes — deliberately
// non-constant drift that defeats linear offset interpolation.
//
// The discipline is a proportional-integral controller, like the kernel
// PLL: the proportional term removes the measured offset over TimeConstant
// seconds and the integral term learns the intrinsic frequency error.
type NTPDrift struct {
	Intrinsic    float64 // intrinsic oscillator drift rate
	ServerError  float64 // std dev of the offset measurement (s), ~1e-3
	PollMin      float64 // minimum poll interval (s)
	PollMax      float64 // maximum poll interval (s)
	TimeConstant float64 // proportional loop time constant (s)
	FreqGain     float64 // integral gain (per second of poll interval)
	MaxSlew      float64 // slew clamp, e.g. 500e-6 (500 ppm, adjtime limit)
	// InitialFreqError is the residual frequency error of the
	// already-settled PLL when the run starts: the daemon has been
	// disciplining the clock since boot, so it knows the intrinsic rate
	// to about a ppm — the residual is what drives Figs. 4a/4b.
	InitialFreqError float64

	rng      *xrand.Source
	freqCorr float64 // learned frequency correction (integral state)
	started  bool
}

// NewNTPDrift constructs the NTP discipline with its private random stream.
func NewNTPDrift(intrinsic float64, rng *xrand.Source) *NTPDrift {
	return &NTPDrift{
		Intrinsic:        intrinsic,
		ServerError:      1e-3,
		PollMin:          64,
		PollMax:          1024,
		TimeConstant:     900,
		FreqGain:         0.3,
		MaxSlew:          500e-6,
		InitialFreqError: 1.5e-6,
		rng:              rng,
	}
}

// NextSegment implements DriftProcess.
func (n *NTPDrift) NextSegment(seg int, trueStart, offsetSoFar float64) (float64, float64) {
	if !n.started {
		n.started = true
		// warm-started PLL: the intrinsic rate is mostly learned
		n.freqCorr = -n.Intrinsic + n.rng.Normal(0, n.InitialFreqError)
	}
	poll := n.rng.Uniform(n.PollMin, n.PollMax)
	// the daemon's view of the current offset is corrupted by network
	// latency asymmetry
	estOffset := offsetSoFar + n.rng.Normal(0, n.ServerError)
	// integral term: learn the frequency error implied by the residual
	// offset accumulating over this poll interval
	n.freqCorr -= n.FreqGain * estOffset / n.TimeConstant
	// proportional term: slew the measured offset away over TimeConstant
	prop := -estOffset / n.TimeConstant
	corr := n.freqCorr + prop
	if corr > n.MaxSlew {
		corr = n.MaxSlew
	}
	if corr < -n.MaxSlew {
		corr = -n.MaxSlew
	}
	return n.Intrinsic + corr, poll
}

// PowerManagedDrift models a cycle counter driven by the CPU clock signal
// under dynamic frequency scaling (Section II): the effective rate jumps
// between discrete frequency levels as power management throttles the core.
// Such counters are useless for cross-CPU comparison; the model exists so
// the study can demonstrate that (and so the substrate covers every clock
// type the paper enumerates).
type PowerManagedDrift struct {
	Levels    []float64 // rate at each frequency level, e.g. 0, -0.25, -0.5
	DwellMean float64   // mean dwell time per level (s), exponential
	rng       *xrand.Source
	level     int
}

// NewPowerManagedDrift constructs the frequency-stepping process. levels
// must be non-empty.
func NewPowerManagedDrift(levels []float64, dwellMean float64, rng *xrand.Source) *PowerManagedDrift {
	if len(levels) == 0 {
		panic("clock: PowerManagedDrift needs at least one level")
	}
	return &PowerManagedDrift{Levels: levels, DwellMean: dwellMean, rng: rng}
}

// NextSegment implements DriftProcess.
func (p *PowerManagedDrift) NextSegment(seg int, trueStart, offsetSoFar float64) (float64, float64) {
	if seg > 0 && len(p.Levels) > 1 {
		// move to a uniformly chosen different level
		next := p.rng.Intn(len(p.Levels) - 1)
		if next >= p.level {
			next++
		}
		p.level = next
	}
	dwell := p.rng.Exponential(p.DwellMean)
	if dwell < 1e-3 {
		dwell = 1e-3
	}
	return p.Levels[p.level], dwell
}

// CompositeDrift sums the rates of several processes, segmenting at every
// boundary of any component. It lets the hardware-counter model combine a
// constant base drift with random-walk wander, or an NTP model add wander
// on top of the discipline.
type CompositeDrift struct {
	parts []DriftProcess
	// per-part generated segment queues
	queues []compQueue
}

type compQueue struct {
	rate    float64
	until   float64 // true time at which the current segment ends
	seg     int
	started bool
}

// NewCompositeDrift combines the given processes. At least one is required.
func NewCompositeDrift(parts ...DriftProcess) *CompositeDrift {
	if len(parts) == 0 {
		panic("clock: CompositeDrift needs at least one part")
	}
	return &CompositeDrift{parts: parts, queues: make([]compQueue, len(parts))}
}

// NextSegment implements DriftProcess. Each component process sees the same
// offsetSoFar feedback; this is an approximation (each contributes only part
// of the offset) acceptable because composites pair feedback-free processes
// with at most one disciplined process.
func (c *CompositeDrift) NextSegment(seg int, trueStart, offsetSoFar float64) (float64, float64) {
	total := 0.0
	minUntil := math.Inf(1)
	for i := range c.parts {
		q := &c.queues[i]
		if !q.started || q.until <= trueStart {
			rate, dur := c.parts[i].NextSegment(q.seg, trueStart, offsetSoFar)
			q.rate = rate
			q.until = trueStart + dur
			q.seg++
			q.started = true
		}
		total += q.rate
		if q.until < minUntil {
			minUntil = q.until
		}
	}
	return total, minUntil - trueStart
}
