package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"tsync/internal/interp"
	"tsync/internal/trace"
)

// timeMapper produces the pipeline's current timestamp for an event. The
// engine and the assembly/distortion passes consume events of each rank
// strictly in order, so mappers may be sequential readers.
type timeMapper interface {
	// mapTime returns the mapped timestamp of rank's idx-th event.
	mapTime(rank, idx int, ev *trace.Event) (float64, error)
}

// identityMapper keeps raw local timestamps (BaseNone).
type identityMapper struct{}

func (identityMapper) mapTime(_, _ int, ev *trace.Event) (float64, error) { return ev.Time, nil }

// corrMapper applies an interp correction — the exact mapTime calls the
// in-memory Correction.Apply makes, so values are bit-identical.
type corrMapper struct{ c *interp.Correction }

func (m corrMapper) mapTime(rank, _ int, ev *trace.Event) (float64, error) {
	return m.c.Map(rank, ev.Time), nil
}

// spillSet is a directory of per-rank float64 streams holding finalized
// corrected timestamps: the CLC and Lamport sinks write them as entries
// finalize, and later passes read them back in lockstep with the events.
type spillSet struct {
	dir   string
	paths []string
}

func newSpillSet(ranks int) (*spillSet, error) {
	dir, err := os.MkdirTemp("", "tsync-stream-")
	if err != nil {
		return nil, err
	}
	s := &spillSet{dir: dir, paths: make([]string, ranks)}
	for i := range s.paths {
		s.paths[i] = filepath.Join(dir, fmt.Sprintf("rank%06d.t", i))
	}
	return s, nil
}

func (s *spillSet) Close() error { return os.RemoveAll(s.dir) }

// spillWriter appends float64s to one rank's stream.
type spillWriter struct {
	f  *os.File
	bw *bufio.Writer
	n  int64
}

func (s *spillSet) writer(rank int) (*spillWriter, error) {
	f, err := os.Create(s.paths[rank])
	if err != nil {
		return nil, err
	}
	return &spillWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

func (w *spillWriter) write(v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, err := w.bw.Write(buf[:])
	w.n++
	return err
}

func (w *spillWriter) close() error {
	err := w.bw.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// spillMapper replays a spillSet as a timeMapper: each rank's floats are
// read sequentially, one per event.
type spillMapper struct {
	set     *spillSet
	readers []*bufio.Reader
	files   []*os.File
	next    []int
}

func (s *spillSet) mapper() *spillMapper {
	return &spillMapper{
		set:     s,
		readers: make([]*bufio.Reader, len(s.paths)),
		files:   make([]*os.File, len(s.paths)),
		next:    make([]int, len(s.paths)),
	}
}

func (m *spillMapper) mapTime(rank, idx int, _ *trace.Event) (float64, error) {
	if m.readers[rank] == nil {
		f, err := os.Open(m.set.paths[rank])
		if err != nil {
			return 0, err
		}
		m.files[rank] = f
		m.readers[rank] = bufio.NewReader(f)
	}
	if idx != m.next[rank] {
		return 0, fmt.Errorf("stream: spill read out of order: rank %d idx %d (want %d)", rank, idx, m.next[rank])
	}
	m.next[rank]++
	var buf [8]byte
	if _, err := io.ReadFull(m.readers[rank], buf[:]); err != nil {
		return 0, fmt.Errorf("stream: spill read rank %d idx %d: %w", rank, idx, err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func (m *spillMapper) close() error {
	var err error
	for _, f := range m.files {
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
