package main

// Run the trace-file walkthrough end to end at a reduced size under
// go test ./... so the example keeps compiling and running as the
// library evolves.

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracefilesRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 8, 4, 2, 12); err != nil {
		t.Fatalf("tracefiles: %v", err)
	}
	for _, want := range []string{
		"trace serialized to ",
		"middle-half window keeps ",
		"apparent message latencies:",
		"after interp+CLC:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}
