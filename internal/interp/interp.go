// Package interp implements the postmortem timestamp corrections of
// Section III.b of the paper: offset alignment (subtracting the offsets
// measured at initialization so all clocks start together) and linear
// offset interpolation between offset measurements taken at initialization
// and finalization (Eq. 3). A piecewise variant over more than two
// measurement points is provided as the extension the paper cites
// (Doleschal et al., periodic offset measurements).
package interp

import (
	"fmt"
	"math"
	"sort"

	"tsync/internal/measure"
	"tsync/internal/stats"
	"tsync/internal/trace"
)

// Correction maps each rank's local timestamps onto the master (rank 0)
// time base. It is piecewise affine; the plain Eq. 3 correction has a
// single piece per rank.
type Correction struct {
	// perRank[r] holds breakpoints (in local time) and the affine map of
	// each piece; pieces[i] applies for t >= knots[i] (the first piece
	// also covers earlier times, the last also later times).
	perRank []pieces
}

type pieces struct {
	knots []float64
	lines []stats.Line
}

// search returns the index of the piece covering t: the last piece
// whose knot is <= t, per the contract "pieces[i] applies for t >=
// knots[i]". SearchFloat64s returns the first knot >= t, so when t hits a
// knot exactly that index is already the piece that starts there and must
// not be decremented — stepping back would evaluate the preceding piece,
// which disagrees at any discontinuous breakpoint (e.g. the windowed
// error-estimation corrections). Times before the first knot extrapolate
// the first piece; times past the last knot extrapolate the last.
func (p pieces) search(t float64) int {
	i := sort.SearchFloat64s(p.knots, t)
	if i == len(p.knots) || p.knots[i] > t {
		if i > 0 {
			i--
		}
	}
	return i
}

// mapTime applies the correction to one local time value via a fresh
// O(log k) piece lookup.
func (p pieces) mapTime(t float64) float64 {
	if len(p.lines) == 0 {
		return t
	}
	return p.lines[p.search(t)].At(t)
}

// Ranks returns the number of ranks the correction covers.
func (c *Correction) Ranks() int { return len(c.perRank) }

// Map converts rank's local time t to master time.
func (c *Correction) Map(rank int, t float64) float64 {
	if rank < 0 || rank >= len(c.perRank) {
		return t
	}
	return c.perRank[rank].mapTime(t)
}

// MonotoneCursor maps local times to master time like Correction.Map,
// but remembers the last piece used per rank. Callers that feed each
// rank's times in nondecreasing order (the streaming merge does: every
// rank's events are validated nondecreasing in local time) pay an
// amortized O(1) forward scan instead of an O(log k) binary search per
// lookup. A time that regresses below the previous one falls back to the
// exact binary search, so the cursor returns bit-identical results to
// Correction.Map for every input sequence, monotone or not.
//
// A cursor is not safe for concurrent use; create one per goroutine.
type MonotoneCursor struct {
	c    *Correction
	idx  []int
	last []float64
}

// NewCursor returns a fresh cursor over c with all ranks positioned
// before the first piece.
func (c *Correction) NewCursor() *MonotoneCursor {
	n := len(c.perRank)
	m := &MonotoneCursor{c: c, idx: make([]int, n), last: make([]float64, n)}
	for i := range m.last {
		m.last[i] = math.Inf(-1)
	}
	return m
}

// Map converts rank's local time t to master time. It returns the same
// bits Correction.Map would for any call sequence.
func (m *MonotoneCursor) Map(rank int, t float64) float64 {
	if rank < 0 || rank >= len(m.c.perRank) {
		return t
	}
	p := &m.c.perRank[rank]
	if len(p.lines) == 0 {
		return t
	}
	i := m.idx[rank]
	if t < m.last[rank] {
		// Regression: the remembered piece may lie past t; redo the
		// exact lookup so non-monotone callers still get Map's answer.
		i = p.search(t)
	} else {
		for i+1 < len(p.knots) && p.knots[i+1] <= t {
			i++
		}
	}
	m.idx[rank] = i
	m.last[rank] = t
	return p.lines[i].At(t)
}

// Apply returns a corrected copy of the trace with every event's Time
// mapped onto the master time base. The oracle True times are untouched.
func (c *Correction) Apply(t *trace.Trace) *trace.Trace {
	out := t.Clone()
	for rank := range out.Procs {
		if rank >= len(c.perRank) {
			continue
		}
		evs := out.Procs[rank].Events
		for i := range evs {
			evs[i].Time = c.perRank[rank].mapTime(evs[i].Time)
		}
	}
	return out
}

// AlignOnly builds the "offset alignment at initialization" correction the
// paper uses as its first baseline (clocks start from zero together, drift
// uncorrected): each rank's time is shifted by its measured initial offset.
func AlignOnly(init []measure.Offset) (*Correction, error) {
	if len(init) == 0 {
		return nil, fmt.Errorf("interp: empty offset table")
	}
	c := &Correction{perRank: make([]pieces, len(init))}
	for i, o := range init {
		if o.Rank != i {
			return nil, fmt.Errorf("interp: offset table entry %d has rank %d", i, o.Rank)
		}
		c.perRank[i] = pieces{
			knots: []float64{o.WorkerTime},
			lines: []stats.Line{{Slope: 1, Intercept: o.Offset}},
		}
	}
	return c, nil
}

// Linear builds the Eq. 3 correction from offset tables measured at
// initialization and finalization:
//
//	m(t) = t + (o2-o1)/(w2-w1) * (t - w1) + o1
//
// i.e. slope 1 + drift-estimate, anchored at the first measurement.
func Linear(init, fin []measure.Offset) (*Correction, error) {
	if len(init) == 0 || len(init) != len(fin) {
		return nil, fmt.Errorf("interp: offset tables have sizes %d and %d", len(init), len(fin))
	}
	c := &Correction{perRank: make([]pieces, len(init))}
	for i := range init {
		o1, o2 := init[i], fin[i]
		if o1.Rank != i || o2.Rank != i {
			return nil, fmt.Errorf("interp: offset tables disagree on rank at entry %d", i)
		}
		w1, w2 := o1.WorkerTime, o2.WorkerTime
		if i == 0 {
			// the master defines the time base
			c.perRank[i] = pieces{knots: []float64{w1}, lines: []stats.Line{{Slope: 1}}}
			continue
		}
		if w2 <= w1 {
			return nil, fmt.Errorf("interp: rank %d: finalization measurement (%v) not after initialization (%v)", i, w2, w1)
		}
		drift := (o2.Offset - o1.Offset) / (w2 - w1)
		// m(t) = (1+drift)*t + (o1 - drift*w1)
		c.perRank[i] = pieces{
			knots: []float64{w1},
			lines: []stats.Line{{Slope: 1 + drift, Intercept: o1.Offset - drift*w1}},
		}
	}
	return c, nil
}

// Piecewise builds a piecewise-linear correction from three or more offset
// tables taken during the run (the Doleschal-style extension discussed in
// Section III.b): between consecutive measurements the offset is
// interpolated linearly; outside the measured range the nearest piece
// extrapolates.
func Piecewise(tables ...[]measure.Offset) (*Correction, error) {
	if len(tables) < 2 {
		return nil, fmt.Errorf("interp: piecewise needs at least two offset tables, got %d", len(tables))
	}
	n := len(tables[0])
	for k, tab := range tables {
		if len(tab) != n {
			return nil, fmt.Errorf("interp: offset table %d has %d entries, want %d", k, len(tab), n)
		}
	}
	c := &Correction{perRank: make([]pieces, n)}
	for i := 0; i < n; i++ {
		if i == 0 {
			c.perRank[0] = pieces{knots: []float64{0}, lines: []stats.Line{{Slope: 1}}}
			continue
		}
		var p pieces
		for k := 0; k+1 < len(tables); k++ {
			o1, o2 := tables[k][i], tables[k+1][i]
			if o1.Rank != i || o2.Rank != i {
				return nil, fmt.Errorf("interp: table %d entry %d has wrong rank", k, i)
			}
			w1, w2 := o1.WorkerTime, o2.WorkerTime
			if w2 <= w1 {
				return nil, fmt.Errorf("interp: rank %d: measurements %d and %d not increasing", i, k, k+1)
			}
			drift := (o2.Offset - o1.Offset) / (w2 - w1)
			p.knots = append(p.knots, w1)
			p.lines = append(p.lines, stats.Line{Slope: 1 + drift, Intercept: o1.Offset - drift*w1})
		}
		c.perRank[i] = p
	}
	return c, nil
}

// FromLines builds a single-piece correction from one affine map per rank
// (local time -> master time). Used by the error-estimation baselines in
// internal/errest.
func FromLines(lines []stats.Line) *Correction {
	c := &Correction{perRank: make([]pieces, len(lines))}
	for i, l := range lines {
		c.perRank[i] = pieces{knots: []float64{0}, lines: []stats.Line{l}}
	}
	return c
}

// FromPiecewiseLines builds a piecewise correction from shared knots (in
// local time) and one line per knot per rank. Used by the windowed
// error-estimation extension in internal/errest.
func FromPiecewiseLines(knots []float64, perRank [][]stats.Line) (*Correction, error) {
	if len(knots) == 0 {
		return nil, fmt.Errorf("interp: no knots")
	}
	for i := 1; i < len(knots); i++ {
		if knots[i] <= knots[i-1] {
			return nil, fmt.Errorf("interp: knots not increasing at %d", i)
		}
	}
	c := &Correction{perRank: make([]pieces, len(perRank))}
	for r, lines := range perRank {
		if len(lines) != len(knots) {
			return nil, fmt.Errorf("interp: rank %d has %d pieces for %d knots", r, len(lines), len(knots))
		}
		c.perRank[r] = pieces{knots: append([]float64(nil), knots...), lines: append([]stats.Line(nil), lines...)}
	}
	return c, nil
}

// FromRankPieces builds a piecewise correction whose knots differ per
// rank: knots[r] are rank r's breakpoints (in local time, strictly
// increasing) and lines[r] the affine map of each piece. It is the
// constructor behind fingerprint knot auto-placement, where each rank's
// change points land at different clock readings — unlike
// FromPiecewiseLines, which shares one knot vector across ranks.
func FromRankPieces(knots [][]float64, lines [][]stats.Line) (*Correction, error) {
	if len(knots) != len(lines) {
		return nil, fmt.Errorf("interp: %d knot vectors for %d line vectors", len(knots), len(lines))
	}
	c := &Correction{perRank: make([]pieces, len(knots))}
	for r := range knots {
		if len(knots[r]) == 0 {
			return nil, fmt.Errorf("interp: rank %d has no pieces", r)
		}
		if len(knots[r]) != len(lines[r]) {
			return nil, fmt.Errorf("interp: rank %d has %d lines for %d knots", r, len(lines[r]), len(knots[r]))
		}
		for i := 1; i < len(knots[r]); i++ {
			if knots[r][i] <= knots[r][i-1] {
				return nil, fmt.Errorf("interp: rank %d knots not increasing at %d", r, i)
			}
		}
		c.perRank[r] = pieces{
			knots: append([]float64(nil), knots[r]...),
			lines: append([]stats.Line(nil), lines[r]...),
		}
	}
	return c, nil
}

// Identity returns a no-op correction for n ranks (the "no correction"
// baseline).
func Identity(n int) *Correction {
	c := &Correction{perRank: make([]pieces, n)}
	for i := range c.perRank {
		c.perRank[i] = pieces{knots: []float64{0}, lines: []stats.Line{{Slope: 1}}}
	}
	return c
}
