package stream_test

// Differential tests for the streaming RepCl stamping pass: the
// bounded-memory walk must produce the exact per-rank stamp digests of
// the in-memory lclock.RepClStamps pass — for any worker count, any
// batch size, any window, with and without a correction — and must
// survive a salvaged source without panicking while still counting
// every retained event.

import (
	"bytes"
	"testing"

	"tsync/internal/faultinject"
	"tsync/internal/interp"
	"tsync/internal/lclock"
	"tsync/internal/stream"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

const replayStampSeed = 0x9e7a11

func TestReplayStampMatchesInMemory(t *testing.T) {
	spec := stream.SynthSpec{Ranks: 4, Steps: 150, CollEvery: 6, Seed: xrand.SeedAt(replayStampSeed, 1)}
	data := synthBytes(t, spec)
	tr, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	init, fin, err := stream.Synth(spec, &buf)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := interp.Linear(init, fin)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lclock.RepClConfig{}.Normalize()

	for _, tc := range []struct {
		name string
		corr *interp.Correction
	}{
		{"uncorrected", nil},
		{"interp", corr},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := tr
			if tc.corr != nil {
				ref = tc.corr.Apply(tr)
			}
			stamps, skew, err := lclock.RepClStamps(ref, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := lclock.StampsDigest(stamps)

			for _, opt := range []stream.Options{
				{},
				{Workers: 4},
				{Batch: 7},
				{Window: 64, Workers: 2, Batch: 3},
				{Shards: 4},
				{Window: 64, Workers: 4, Batch: 3, Shards: 4},
			} {
				src, err := stream.NewSource(bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}
				rs, err := stream.ReplayStamp(src, tc.corr, cfg, opt)
				if err != nil {
					t.Fatalf("opt %+v: %v", opt, err)
				}
				if rs.Checksum != want {
					t.Errorf("opt %+v: stream digest %s != in-memory %s", opt, rs.Checksum, want)
				}
				if rs.EpochSkew != skew {
					t.Errorf("opt %+v: ε-skew %d != in-memory %d", opt, rs.EpochSkew, skew)
				}
				if wantEvents := int64(len(tr.Procs) * len(tr.Procs[0].Events)); rs.Events != wantEvents {
					t.Errorf("opt %+v: stamped %d events, want %d", opt, rs.Events, wantEvents)
				}
				if rs.MaxEpoch == 0 {
					t.Errorf("opt %+v: no epoch progress recorded", opt)
				}
			}
		})
	}
}

// TestReplayStampSalvaged: the stamping pass over a burst-corrupted,
// salvage-recovered v2 source completes, stamps exactly the surviving
// events, and is deterministic across engine configurations.
func TestReplayStampSalvaged(t *testing.T) {
	spec := stream.SynthSpec{
		Ranks: 3, Steps: 200, CollEvery: 5,
		Seed: xrand.SeedAt(replayStampSeed, 2), Version: trace.Version2, FrameEvents: 16,
	}
	data := synthBytes(t, spec)
	flips := faultinject.NewBurstFlips(xrand.SeedAt(replayStampSeed, 3), int64(len(data)), 3, 64)
	if flips.Count() == 0 {
		t.Fatal("no corruption generated")
	}

	run := func(opt stream.Options) stream.ReplayStats {
		t.Helper()
		src := salvageSource(t, data, flips, stream.SourceOptions{Salvage: true})
		rs, err := stream.ReplayStamp(src, nil, lclock.RepClConfig{}, opt)
		if err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		return rs
	}

	first := run(stream.Options{})
	if first.Events == 0 {
		t.Fatal("nothing stamped")
	}
	total := int64(0)
	src := salvageSource(t, data, flips, stream.SourceOptions{Salvage: true})
	for _, ph := range src.Procs() {
		total += int64(ph.EventCount)
	}
	if first.Events != total {
		t.Fatalf("stamped %d events, source retains %d", first.Events, total)
	}
	for _, opt := range []stream.Options{{Workers: 4}, {Batch: 5, Workers: 2}, {Shards: 4}, {Batch: 5, Workers: 4, Shards: 4}} {
		got := run(opt)
		if got.Checksum != first.Checksum || got.Events != first.Events || got.EpochSkew != first.EpochSkew {
			t.Fatalf("salvaged stamping diverged across configs: %+v vs %+v", got, first)
		}
	}
}
