package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"tsync/internal/measure"
)

// SessionState is the lifecycle position of a Session. A session moves
// strictly forward: New → Running → one of Done, Failed, or Aborted.
// There are no cycles — a Session runs at most once, so a *Result can
// never be confused about which run produced it.
type SessionState int32

const (
	// SessionNew is the state of a freshly constructed session: Run has
	// not been called.
	SessionNew SessionState = iota
	// SessionRunning means Run is executing the pipeline right now.
	SessionRunning
	// SessionDone means Run completed and Result holds the outcome.
	SessionDone
	// SessionFailed means Run returned an error other than an abort.
	SessionFailed
	// SessionAborted means Abort canceled the session, either before Run
	// started or while it was executing.
	SessionAborted
)

// String names the state for diagnostics and typed protocol errors.
func (s SessionState) String() string {
	switch s {
	case SessionNew:
		return "new"
	case SessionRunning:
		return "running"
	case SessionDone:
		return "done"
	case SessionFailed:
		return "failed"
	case SessionAborted:
		return "aborted"
	}
	return fmt.Sprintf("SessionState(%d)", int32(s))
}

// ErrSessionState reports a lifecycle violation: Run on a session that
// is not New, or Result on one that has not finished.
var ErrSessionState = errors.New("stream: invalid session state")

// Session is one full streaming correction run with an explicit
// lifecycle: construct it over a source, Run it exactly once, and
// observe or Abort it from other goroutines. It is the unit a long-lived
// server schedules — admission control admits Sessions, drain aborts
// them — while Pipeline remains the pure configuration. Pipeline.Run and
// Pipeline.RunContext are thin wrappers that construct a Session and run
// it immediately, so the two paths cannot diverge.
//
// Concurrency: Run must be called at most once; State, Result, and Abort
// are safe from any goroutine at any time. Abort on a running session
// cancels its context — the pipeline unwinds promptly (ctx is polled on
// a stride), releases its decode goroutines, and removes every spill
// temp file, exactly as an external cancellation would.
type Session struct {
	pipe Pipeline
	src  *Source

	mu      sync.Mutex
	state   SessionState
	cancel  context.CancelFunc
	aborted bool
	res     *Result
	err     error
}

// NewSession prepares a session that will run p over src. Nothing
// executes until Run.
func NewSession(p Pipeline, src *Source) *Session {
	return &Session{pipe: p, src: src}
}

// Source returns the source the session runs over.
func (s *Session) Source() *Source { return s.src }

// State reports the session's current lifecycle position.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Run executes the pipeline over the session's source, writing the
// corrected trace to out unless out is nil (analysis only); the offset
// tables serve the base corrections exactly as in Pipeline.Run. It may
// be called only on a New session: a second Run, or a Run after Abort,
// fails with ErrSessionState without touching the source.
func (s *Session) Run(ctx context.Context, out io.Writer, init, fin []measure.Offset) (*Result, error) {
	s.mu.Lock()
	if s.state != SessionNew {
		state := s.state
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: Run on a %s session", ErrSessionState, state)
	}
	runCtx, cancel := context.WithCancel(ctx)
	s.state = SessionRunning
	s.cancel = cancel
	s.mu.Unlock()
	defer cancel()

	res, err := s.pipe.runContext(runCtx, s.src, out, init, fin)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.res, s.err = res, err
	switch {
	case err == nil:
		s.state = SessionDone
	case s.aborted && errors.Is(err, context.Canceled):
		s.state = SessionAborted
	default:
		s.state = SessionFailed
	}
	return res, err
}

// Abort cancels the session. On a running session it cancels Run's
// context and returns immediately — Run itself returns context.Canceled
// shortly after, with all resources released. On a New session it moves
// straight to Aborted, so a subsequent Run refuses to start. Aborting a
// finished session is a no-op.
func (s *Session) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case SessionNew:
		s.aborted = true
		s.state = SessionAborted
		s.err = context.Canceled
	case SessionRunning:
		s.aborted = true
		s.cancel()
	}
}

// Result returns the finished session's outcome: the pipeline result on
// Done, the run's error on Failed or Aborted. On a New or Running
// session it fails with ErrSessionState.
func (s *Session) Result() (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case SessionDone, SessionFailed:
		return s.res, s.err
	case SessionAborted:
		if s.err != nil {
			return s.res, s.err
		}
		return nil, context.Canceled
	}
	return nil, fmt.Errorf("%w: Result on a %s session", ErrSessionState, s.state)
}
