// Package imported exists to be imported by the importer fixture,
// proving the loader resolves fixture-tree imports.
package imported

// Name is read by the importing fixture.
const Name = "imported"
