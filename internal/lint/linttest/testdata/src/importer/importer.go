// Package importer pulls in another fixture package and a stdlib package,
// exercising both arms of the loader's import resolution.
package importer

import (
	"strings"

	"imported"
)

// Upper combines the two imports so neither is unused.
func Upper() string { return strings.ToUpper(imported.Name) }
