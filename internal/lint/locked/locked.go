// Package locked defines an analyzer for goroutine hygiene in the
// packages that fan work out (internal/clc's parallel replay,
// internal/des's coroutine engine). It is the static complement of
// `go test -race ./...`: the race detector only sees schedules that
// actually execute, while these checks hold on every path.
//
// Three patterns are reported inside `go func(...) {...}` literals:
//
//  1. use of an enclosing loop's iteration variable. Even with Go >= 1.22
//     per-iteration semantics this is flagged: replay determinism wants
//     the goroutine's inputs pinned at spawn time, as arguments, the way
//     internal/clc passes its rank. (Pre-1.22 toolchains make the same
//     code an aliasing bug, so the rule also keeps backports safe.)
//  2. a write through a captured variable — plain assignment, op-assign,
//     ++/-- or range-assign whose left-hand side is rooted at a variable
//     declared outside the literal. The analyzer cannot prove a mutex or
//     a happens-before edge guards the write, so the author must either
//     restructure (channels, per-goroutine results joined after Wait) or
//     annotate the line with a "tsync:locked" comment naming the
//     synchronization that makes it safe.
//  3. sync.WaitGroup.Add called on a captured WaitGroup inside the
//     goroutine it accounts for — the classic Add/Wait race; Add must
//     happen before the `go` statement.
package locked

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tsync/internal/lint"
)

const doc = `flag goroutine-captured loop variables and unsynchronized shared writes

Inside go func literals: loop-variable capture, writes through captured
variables without a "tsync:locked" justification, and WaitGroup.Add
inside the goroutine it accounts for.`

// Analyzer is the locked analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "locked",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		gs := n.(*ast.GoStmt)
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		loopVars := enclosingLoopVars(pass, stack)
		checkLiteral(pass, lit, loopVars)
		return true
	})
	return nil, nil
}

// enclosingLoopVars collects the iteration variables of every for/range
// statement on the stack between the go statement and the function that
// lexically contains it.
func enclosingLoopVars(pass *analysis.Pass, stack []ast.Node) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	add := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if v, ok := obj.(*types.Var); ok {
			vars[v] = true
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.RangeStmt:
			if s.Key != nil {
				add(s.Key)
			}
			if s.Value != nil {
				add(s.Value)
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					add(lhs)
				}
			}
		case *ast.FuncDecl:
			return vars
		}
	}
	return vars
}

// checkLiteral walks the body of a go-spawned function literal and reports
// the three racy patterns. Nested function literals are still goroutine
// context and are walked too; nested go statements are handled by their
// own WithStack visit, so recursion stops there.
func checkLiteral(pass *analysis.Pass, lit *ast.FuncLit, loopVars map[*types.Var]bool) {
	reportedLoopVar := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(n)
			if v, ok := obj.(*types.Var); ok && loopVars[v] && !declaredWithin(v, lit) && !reportedLoopVar[v] {
				reportedLoopVar[v] = true
				pass.Reportf(n.Pos(), "goroutine captures loop variable %q: pass it as an argument to the go func so its value is pinned at spawn time", n.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkSharedWrite(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkSharedWrite(pass, lit, n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					checkSharedWrite(pass, lit, n.Key)
				}
				if n.Value != nil {
					checkSharedWrite(pass, lit, n.Value)
				}
			}
		case *ast.CallExpr:
			checkWaitGroupAdd(pass, lit, n)
		}
		return true
	})
}

// checkSharedWrite reports lhs when its root identifier is a variable
// declared outside the literal — shared state written from the goroutine.
func checkSharedWrite(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr) {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || declaredWithin(v, lit) {
		return
	}
	if lint.HasLineDirective(pass, lhs.Pos(), "tsync:locked") {
		return
	}
	pass.Reportf(lhs.Pos(), "write to captured %q inside goroutine without visible synchronization: use a channel or per-goroutine result, or annotate the line with a tsync:locked comment naming the guard", id.Name)
}

// checkWaitGroupAdd reports wg.Add(...) on a captured sync.WaitGroup.
func checkWaitGroupAdd(pass *analysis.Pass, lit *ast.FuncLit, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return
	}
	id := rootIdent(sel.X)
	if id == nil {
		return
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || declaredWithin(v, lit) {
		return
	}
	if !isWaitGroup(pass.TypesInfo.TypeOf(sel.X)) {
		return
	}
	pass.Reportf(call.Pos(), "sync.WaitGroup.Add inside the goroutine it accounts for races with Wait: call Add before the go statement")
}

// rootIdent unwraps selectors, indexing, derefs and parens down to the
// base identifier of an lvalue (out[rank][idx] -> out, e.failure -> e).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether v's declaration lies inside lit — such
// variables (parameters, locals) are goroutine-private.
func declaredWithin(v *types.Var, lit *ast.FuncLit) bool {
	return v.Pos() >= lit.Pos() && v.Pos() < lit.End()
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
