// Package trace defines the event-trace data model of the study: the event
// records a Scalasca/VAMPIR-style measurement system produces (Section III
// of the paper), per-process event streams, postmortem message matching,
// and a compact binary codec for trace files.
//
// Each event carries two times. Time is the *local timestamp* the traced
// process obtained from its processor clock — the quantity whose accuracy
// the paper investigates, and the one correction algorithms rewrite. True
// is the simulation oracle: the exact global time at which the event
// happened. Real traces do not have True; it exists so experiments can
// report exact errors and tests can verify algorithms against ground truth.
package trace

import (
	"fmt"
	"sort"

	"tsync/internal/topology"
)

// Kind enumerates event types (point-to-point, collective, and the POMP
// shared-memory events of Fig. 2).
type Kind uint8

const (
	// Enter marks entry into a code region.
	Enter Kind = iota
	// Exit marks exit from a code region.
	Exit
	// Send marks the sending of a point-to-point message.
	Send
	// Recv marks the receipt of a point-to-point message.
	Recv
	// CollBegin marks entry into a collective operation.
	CollBegin
	// CollEnd marks completion of a collective operation.
	CollEnd
	// Fork marks the master thread opening a parallel region (POMP).
	Fork
	// Join marks the master thread closing a parallel region (POMP).
	Join
	// BarrierEnter marks a thread entering a barrier (POMP).
	BarrierEnter
	// BarrierExit marks a thread leaving a barrier (POMP).
	BarrierExit
)

var kindNames = [...]string{
	"Enter", "Exit", "Send", "Recv", "CollBegin", "CollEnd",
	"Fork", "Join", "BarrierEnter", "BarrierExit",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// CollOp enumerates collective operations. Their semantics determine how
// they map onto point-to-point happened-before edges (Section V: 1-to-N,
// N-to-1, N-to-N).
type CollOp uint8

const (
	// OpNone is the zero value for non-collective events.
	OpNone CollOp = iota
	// OpBarrier is MPI_Barrier (N-to-N).
	OpBarrier
	// OpBcast is MPI_Bcast (1-to-N).
	OpBcast
	// OpReduce is MPI_Reduce (N-to-1).
	OpReduce
	// OpAllreduce is MPI_Allreduce (N-to-N).
	OpAllreduce
	// OpGather is MPI_Gather (N-to-1).
	OpGather
	// OpScatter is MPI_Scatter (1-to-N).
	OpScatter
	// OpAllgather is MPI_Allgather (N-to-N).
	OpAllgather
	// OpAlltoall is MPI_Alltoall (N-to-N).
	OpAlltoall
)

var collNames = [...]string{
	"none", "barrier", "bcast", "reduce", "allreduce",
	"gather", "scatter", "allgather", "alltoall",
}

// String names the collective operation.
func (o CollOp) String() string {
	if int(o) < len(collNames) {
		return collNames[o]
	}
	return fmt.Sprintf("CollOp(%d)", uint8(o))
}

// Event is one trace record.
type Event struct {
	Kind Kind
	// Time is the local timestamp (seconds) from the process's clock;
	// correction algorithms rewrite this field.
	Time float64
	// True is the oracle global time (seconds); never rewritten.
	True float64
	// Region indexes the trace's region-name table (Enter/Exit and POMP
	// events); -1 when unused.
	Region int32
	// Instance is the dynamic instance number of the region (POMP) or
	// the per-communicator sequence number of the collective.
	Instance int32
	// Partner is the peer rank of a Send (destination) or Recv (source);
	// -1 when unused.
	Partner int32
	// Tag is the message tag.
	Tag int32
	// Bytes is the message or collective payload size.
	Bytes int32
	// Comm identifies the communicator.
	Comm int32
	// Op is the collective operation of CollBegin/CollEnd.
	Op CollOp
	// Root is the root rank of rooted collectives; -1 otherwise.
	Root int32
}

// SetTime rewrites the event's local timestamp. It is the sanctioned
// mutation door for code outside the correction pipeline: the tsmutate
// analyzer (cmd/tsyncvet) forbids direct assignment to Time outside
// internal/{clc,interp,errest,core,trace}, so every other writer calls
// SetTime, keeping timestamp rewrites greppable and auditable. Callers
// own the clock condition: after rewriting, Time must still be a stream a
// drifting-but-sane clock could have produced (CheckOrder verifies the
// cross-process part).
func (e *Event) SetTime(t float64) { e.Time = t }

// Proc is one process's (or thread's) event stream.
type Proc struct {
	Rank   int
	Core   topology.CoreID
	Clock  string // name of the clock the timestamps came from
	Events []Event
}

// Trace is a complete multi-process event trace.
type Trace struct {
	Machine string
	Timer   string
	// Regions is the region-name table indexed by Event.Region.
	Regions []string
	Procs   []Proc
	// MinLatency gives l_min (seconds) by topology.Relation, used by the
	// clock condition (Eq. 1) and the correction algorithms. Indexed by
	// the Relation constants; SameCore is unused.
	MinLatency [4]float64
}

// RegionID interns a region name, returning its table index.
func (t *Trace) RegionID(name string) int32 {
	for i, r := range t.Regions {
		if r == name {
			return int32(i)
		}
	}
	t.Regions = append(t.Regions, name)
	return int32(len(t.Regions) - 1)
}

// RegionName returns the name for a region id, or "?" when out of range.
func (t *Trace) RegionName(id int32) string {
	if id >= 0 && int(id) < len(t.Regions) {
		return t.Regions[id]
	}
	return "?"
}

// MinLatencyBetween returns l_min for a message between the cores of two
// ranks.
func (t *Trace) MinLatencyBetween(a, b int) float64 {
	if a < 0 || a >= len(t.Procs) || b < 0 || b >= len(t.Procs) {
		return 0
	}
	return t.MinLatency[topology.Relate(t.Procs[a].Core, t.Procs[b].Core)]
}

// EventCount returns the total number of events across all processes.
func (t *Trace) EventCount() int {
	n := 0
	for _, p := range t.Procs {
		n += len(p.Events)
	}
	return n
}

// Clone returns a deep copy (correction algorithms work on copies so the
// original measurement is preserved for before/after comparison).
func (t *Trace) Clone() *Trace {
	out := &Trace{
		Machine:    t.Machine,
		Timer:      t.Timer,
		Regions:    append([]string(nil), t.Regions...),
		Procs:      make([]Proc, len(t.Procs)),
		MinLatency: t.MinLatency,
	}
	for i, p := range t.Procs {
		out.Procs[i] = Proc{
			Rank:   p.Rank,
			Core:   p.Core,
			Clock:  p.Clock,
			Events: append([]Event(nil), p.Events...),
		}
	}
	return out
}

// Validate checks structural integrity: ranks are dense and ordered, True
// times are non-decreasing per process (the simulation guarantee), and
// message/region fields are in range. It does NOT check the clock
// condition on Time — violating it is the phenomenon under study.
func (t *Trace) Validate() error {
	for i, p := range t.Procs {
		if p.Rank != i {
			return fmt.Errorf("trace: proc %d has rank %d", i, p.Rank)
		}
		prev := -1.0
		for j, ev := range p.Events {
			if ev.True < prev {
				return fmt.Errorf("trace: rank %d event %d: true time regressed (%v after %v)", i, j, ev.True, prev)
			}
			prev = ev.True
			switch ev.Kind {
			case Send, Recv:
				if int(ev.Partner) < 0 || int(ev.Partner) >= len(t.Procs) {
					return fmt.Errorf("trace: rank %d event %d: partner %d out of range", i, j, ev.Partner)
				}
			case Enter, Exit, Fork, Join, BarrierEnter, BarrierExit:
				if ev.Region >= int32(len(t.Regions)) {
					return fmt.Errorf("trace: rank %d event %d: region %d out of table range", i, j, ev.Region)
				}
			}
		}
	}
	return nil
}

// Message is one matched point-to-point message (or one logical
// point-to-point edge derived from a collective).
type Message struct {
	From, FromIdx int // sender rank and event index of the Send
	To, ToIdx     int // receiver rank and event index of the Recv
}

// Messages matches Send and Recv events postmortem using MPI's
// non-overtaking rule: messages between the same (sender, receiver, tag,
// communicator) quadruple are received in the order they were sent.
// Unmatched events are an error — the simulator always produces complete
// communication records.
func (t *Trace) Messages() ([]Message, error) {
	type chanKey struct {
		from, to, tag, comm int32
	}
	pending := make(map[chanKey][]Message) // sends awaiting their receive
	var out []Message
	// Walk sends in per-process order (which respects per-channel send
	// order) and receives in per-process order.
	for rank, p := range t.Procs {
		for idx, ev := range p.Events {
			if ev.Kind != Send {
				continue
			}
			k := chanKey{from: int32(rank), to: ev.Partner, tag: ev.Tag, comm: ev.Comm}
			pending[k] = append(pending[k], Message{From: rank, FromIdx: idx})
		}
	}
	for rank, p := range t.Procs {
		for idx, ev := range p.Events {
			if ev.Kind != Recv {
				continue
			}
			k := chanKey{from: ev.Partner, to: int32(rank), tag: ev.Tag, comm: ev.Comm}
			q := pending[k]
			if len(q) == 0 {
				return nil, fmt.Errorf("trace: rank %d event %d: Recv from %d tag %d has no matching Send", rank, idx, ev.Partner, ev.Tag)
			}
			m := q[0]
			pending[k] = q[1:]
			m.To, m.ToIdx = rank, idx
			out = append(out, m)
		}
	}
	// report the first leftover channel in key order, not map order, so
	// an incomplete trace fails with the same error on every run
	leftover := make([]chanKey, 0, len(pending))
	for k, q := range pending {
		if len(q) > 0 {
			leftover = append(leftover, k)
		}
	}
	sort.Slice(leftover, func(i, j int) bool {
		a, b := leftover[i], leftover[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		if a.tag != b.tag {
			return a.tag < b.tag
		}
		return a.comm < b.comm
	})
	if len(leftover) > 0 {
		k := leftover[0]
		return nil, fmt.Errorf("trace: %d unmatched Sends from %d to %d tag %d", len(pending[k]), k.from, k.to, k.tag)
	}
	// deterministic order: by receiver, then receive index
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].ToIdx < out[j].ToIdx
	})
	return out, nil
}

// Collective is one matched collective operation instance across its
// participants.
type Collective struct {
	Op       CollOp
	Comm     int32
	Instance int32
	Root     int32 // -1 for unrooted
	// Begin and End give, per participating rank, the event index of its
	// CollBegin and CollEnd records.
	Begin map[int]int
	End   map[int]int
}

// Collectives groups CollBegin/CollEnd events by (communicator, instance).
// Every instance must have matching begin/end pairs on every participant.
func (t *Trace) Collectives() ([]Collective, error) {
	type key struct {
		comm, inst int32
	}
	m := map[key]*Collective{}
	var order []key
	for rank, p := range t.Procs {
		for idx, ev := range p.Events {
			if ev.Kind != CollBegin && ev.Kind != CollEnd {
				continue
			}
			k := key{ev.Comm, ev.Instance}
			c, ok := m[k]
			if !ok {
				c = &Collective{Op: ev.Op, Comm: ev.Comm, Instance: ev.Instance, Root: ev.Root,
					Begin: map[int]int{}, End: map[int]int{}}
				m[k] = c
				order = append(order, k)
			}
			if c.Op != ev.Op {
				return nil, fmt.Errorf("trace: collective comm %d instance %d mixes ops %v and %v", ev.Comm, ev.Instance, c.Op, ev.Op)
			}
			if ev.Kind == CollBegin {
				if _, dup := c.Begin[rank]; dup {
					return nil, fmt.Errorf("trace: rank %d has duplicate CollBegin for comm %d instance %d", rank, ev.Comm, ev.Instance)
				}
				c.Begin[rank] = idx
			} else {
				if _, dup := c.End[rank]; dup {
					return nil, fmt.Errorf("trace: rank %d has duplicate CollEnd for comm %d instance %d", rank, ev.Comm, ev.Instance)
				}
				c.End[rank] = idx
			}
		}
	}
	out := make([]Collective, 0, len(order))
	for _, k := range order {
		c := m[k]
		if len(c.Begin) != len(c.End) {
			return nil, fmt.Errorf("trace: collective comm %d instance %d has %d begins but %d ends", k.comm, k.inst, len(c.Begin), len(c.End))
		}
		// check ranks in ascending order so the reported straggler is
		// stable across runs
		ranks := make([]int, 0, len(c.Begin))
		for rank := range c.Begin {
			ranks = append(ranks, rank)
		}
		sort.Ints(ranks)
		for _, rank := range ranks {
			if _, ok := c.End[rank]; !ok {
				return nil, fmt.Errorf("trace: rank %d began collective comm %d instance %d but never ended it", rank, k.comm, k.inst)
			}
		}
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Comm != out[j].Comm {
			return out[i].Comm < out[j].Comm
		}
		return out[i].Instance < out[j].Instance
	})
	return out, nil
}
