package stats_test

import (
	"fmt"

	"tsync/internal/stats"
)

// ExampleOnline shows streaming statistics with the Welford accumulator.
func ExampleOnline() {
	var acc stats.Online
	for _, latency := range []float64{4.2e-6, 4.3e-6, 4.25e-6, 4.4e-6} {
		acc.Add(latency)
	}
	fmt.Printf("mean %.2f µs over %d samples\n", acc.Mean()*1e6, acc.N())
	// Output: mean 4.29 µs over 4 samples
}

// ExampleAllanDeviation distinguishes a constant-drift clock (zero Allan
// deviation) from one with frequency noise.
func ExampleAllanDeviation() {
	offsets := make([]float64, 10)
	for i := range offsets {
		offsets[i] = 2e-6 * float64(i) // perfectly linear: 2 ppm drift
	}
	sigma, err := stats.AllanDeviation(offsets, 1.0, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("drift-only clock is stable: %v\n", sigma < 1e-15)
	// Output: drift-only clock is stable: true
}
