// Command tsyncctl runs one trace-sync session against a tsyncd server:
// it uploads a trace, waits for the correction to run remotely, prints
// the same violation report cmd/tracesync prints, and (with -o) writes
// the corrected trace — bytes bit-identical to the one-shot CLI on the
// same input, verified against the server's FNV checksum on the way.
//
// Connection failures and busy/queue-timeout rejections retry under
// seeded exponential backoff (-seed, -attempts); classified session
// errors are final.
//
// Exit status follows the repository's CLI contract: 0 clean, 1 error,
// 3 when the result is partial (salvaged from a damaged trace) — even
// though the partial verdict here arrives over the wire.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tsync/internal/exitcode"
	"tsync/internal/measure"
	"tsync/internal/render"
	"tsync/internal/tsyncd"
)

type sidecar struct {
	Init []measure.Offset `json:"init"`
	Fin  []measure.Offset `json:"fin"`
}

type options struct {
	addr     string
	in, out  string
	tenant   string
	base     string
	withCLC  bool
	window   int
	batch    int
	shards   int
	spill    string
	salvage  bool
	maxSkip  int64
	seed     uint64
	attempts int
	timeout  time.Duration
	jsonOut  bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:7474", "tsyncd server address")
	flag.StringVar(&o.in, "i", "trace.etr", "input trace file")
	flag.StringVar(&o.out, "o", "", "write the corrected trace here (optional)")
	flag.StringVar(&o.tenant, "tenant", "", "tenant name for server-side quota accounting")
	flag.StringVar(&o.base, "base", "interp", "base correction: none, align, interp")
	flag.BoolVar(&o.withCLC, "clc", true, "apply the controlled logical clock after the base correction")
	flag.IntVar(&o.window, "window", 0, "streaming reorder window (0 = server default)")
	flag.IntVar(&o.batch, "batch", 0, "streaming slab size (0 = default); output is identical for any value")
	flag.IntVar(&o.shards, "shards", 0, "merge-tree fan-out (0 = automatic); output is identical for any value")
	flag.StringVar(&o.spill, "spill", "spill", "window overflow policy: spill or error")
	flag.BoolVar(&o.salvage, "salvage", false, "resynchronize past corruption in v2 traces; exits 3 when data was lost")
	flag.Int64Var(&o.maxSkip, "max-skip", 0, "salvage budget: max bytes to skip before giving up (0 = unlimited)")
	flag.Uint64Var(&o.seed, "seed", 1, "backoff jitter seed for reconnect attempts")
	flag.IntVar(&o.attempts, "attempts", 5, "total connection attempts before giving up")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-frame wire timeout")
	flag.BoolVar(&o.jsonOut, "json", false, "print the session result as JSON")
	flag.Parse()

	partial, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsyncctl:", err)
	} else if partial {
		fmt.Fprintln(os.Stderr, "tsyncctl: output is partial (salvaged from a damaged trace)")
	}
	os.Exit(exitcode.From(err, partial))
}

func loadSidecar(in string) (sidecar, error) {
	var side sidecar
	blob, err := os.ReadFile(in + ".offsets.json")
	if err != nil {
		return side, nil // no sidecar: fine for -base none
	}
	if err := json.Unmarshal(blob, &side); err != nil {
		return side, fmt.Errorf("offset sidecar: %w", err)
	}
	return side, nil
}

func run(o options) (bool, error) {
	side, err := loadSidecar(o.in)
	if err != nil {
		return false, err
	}
	if (o.base == "align" || o.base == "interp") && len(side.Init) == 0 {
		return false, fmt.Errorf("no %s.offsets.json sidecar: alignment/interpolation need the offset tables", o.in)
	}

	f, err := os.Open(o.in)
	if err != nil {
		return false, err
	}
	defer f.Close()

	h := tsyncd.Hello{
		Tenant: o.tenant, Base: o.base, CLC: o.withCLC,
		Window: o.window, Policy: o.spill, Shards: o.shards, Batch: o.batch,
		Salvage: o.salvage, MaxSkipBytes: o.maxSkip,
		WantTrace: o.out != "",
		Init:      side.Init, Fin: side.Fin,
	}

	var outF *os.File
	if o.out != "" {
		if outF, err = os.Create(o.out); err != nil {
			return false, err
		}
	}
	cl := tsyncd.NewClient(tsyncd.ClientConfig{
		Addr: o.addr, Seed: o.seed, Attempts: o.attempts, Timeout: o.timeout,
	})
	var done *tsyncd.Done
	if outF != nil {
		done, err = cl.Sync(context.Background(), h, f, outF)
		if cerr := outF.Close(); err == nil {
			err = cerr
		}
	} else {
		done, err = cl.Sync(context.Background(), h, f, nil)
	}
	if err != nil {
		return false, err
	}

	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(done); err != nil {
			return false, err
		}
		return done.Partial, nil
	}
	printDone(o, done)
	return done.Partial, nil
}

func printDone(o options, d *tsyncd.Done) {
	res := d.Result
	fmt.Printf("trace: %s synced by %s, %d events (remote session)\n\n", o.in, o.addr, res.Stats.Events)
	fmt.Printf("%-8s %6d messages, %5d reversed (%.2f%%), %5d clock-condition violations (incl. %d logical reversed)\n",
		"before:", res.Before.Messages, res.Before.Reversed, res.Before.PctReversed(), res.Before.ClockCondition, res.Before.ReversedLogical)
	fmt.Printf("%-8s %6d messages, %5d reversed (%.2f%%), %5d clock-condition violations (incl. %d logical reversed)\n",
		"after:", res.After.Messages, res.After.Reversed, res.After.PctReversed(), res.After.ClockCondition, res.After.ReversedLogical)
	if o.withCLC {
		fmt.Printf("\nCLC: %d -> %d violations (γ-scaled), %d events moved, max advance %s µs\n",
			res.CLCReport.ViolationsBefore, res.CLCReport.ViolationsAfter, res.CLCReport.EventsMoved, render.Micro(res.CLCReport.MaxAdvance))
	}
	fmt.Printf("interval distortion: max %s µs, mean %s µs, %d of %d intervals shrunk\n",
		render.Micro(res.Distortion.MaxAbs), render.Micro(res.Distortion.MeanAbs), res.Distortion.Shrunk, res.Distortion.N)
	fmt.Printf("\nchecksum: %s\n", d.Checksum)
	if o.out != "" {
		fmt.Printf("corrected trace written to %s (checksum verified)\n", o.out)
	}
}
