// Package xrand models the repository's sanctioned randomness choke
// point: the one package allowed to touch math/rand (here: adapting an
// xrand source to the stdlib interface for shuffling helpers). seedsrc
// must stay silent on this whole package.
package xrand

import "math/rand"

// Source is the xoshiro-backed generator (modelled).
type Source struct{ s uint64 }

// Uint64 advances the stream.
func (s *Source) Uint64() uint64 {
	s.s += 0x9e3779b97f4a7c15
	return s.s
}

// Int63 adapts Source to math/rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed is required by math/rand.Source; xrand sources are seeded at
// construction.
func (s *Source) Seed(seed int64) { s.s = uint64(seed) }

// StdRand wraps a Source for stdlib helpers that want *rand.Rand.
func StdRand(s *Source) *rand.Rand { return rand.New(s) }
