package analysis

import (
	"math"
	"testing"

	"tsync/internal/clock"
	"tsync/internal/interp"
	"tsync/internal/stats"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// msgTrace builds a 2-rank trace with a configurable receive skew.
func msgTrace(skew float64) *trace.Trace {
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0.5e-6, 1e-6, 4e-6}
	tr.Procs = []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.Enter, Time: 0.5, True: 0.5, Region: -1, Partner: -1, Root: -1},
			{Kind: trace.Send, Time: 1, True: 1, Partner: 1, Region: -1, Root: -1},
			{Kind: trace.CollBegin, Time: 2, True: 2, Op: trace.OpBarrier, Partner: -1, Region: -1, Root: -1},
			{Kind: trace.CollEnd, Time: 2.00004, True: 2.00004, Op: trace.OpBarrier, Partner: -1, Region: -1, Root: -1},
		}},
		{Rank: 1, Core: topology.CoreID{Node: 1}, Events: []trace.Event{
			{Kind: trace.Recv, Time: 1.000005 + skew, True: 1.000005, Partner: 0, Region: -1, Root: -1},
			{Kind: trace.CollBegin, Time: 2 + skew, True: 2, Op: trace.OpBarrier, Partner: -1, Region: -1, Root: -1},
			{Kind: trace.CollEnd, Time: 2.00004 + skew, True: 2.00004, Op: trace.OpBarrier, Partner: -1, Region: -1, Root: -1},
		}},
	}
	return tr
}

func TestCensusClean(t *testing.T) {
	c, err := CensusOf(msgTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	if c.Messages != 1 || c.Reversed != 0 || c.ClockCondition != 0 {
		t.Fatalf("clean census %+v", c)
	}
	if c.TotalEvents != 7 || c.MessageEvents != 2 {
		t.Fatalf("event counts %+v", c)
	}
	if c.LogicalMessages != 2 { // barrier: 2 cross edges between 2 ranks
		t.Fatalf("logical messages %d", c.LogicalMessages)
	}
	if got := c.PctMessageEvents(); math.Abs(got-100*2.0/7.0) > 1e-9 {
		t.Fatalf("PctMessageEvents %v", got)
	}
}

func TestCensusReversed(t *testing.T) {
	c, err := CensusOf(msgTrace(-50e-6))
	if err != nil {
		t.Fatal(err)
	}
	if c.Reversed != 1 || c.ClockCondition != 1 {
		t.Fatalf("census %+v", c)
	}
	if c.PctReversed() != 100 {
		t.Fatalf("PctReversed %v", c.PctReversed())
	}
	if c.ReversedLogical != 1 { // rank1's CollEnd is now before rank0's CollBegin
		t.Fatalf("reversed logical %d", c.ReversedLogical)
	}
	if got := c.PctReversedLogical(); math.Abs(got-100*2.0/3.0) > 1e-9 {
		t.Fatalf("PctReversedLogical %v", got)
	}
}

func TestCensusClockConditionOnly(t *testing.T) {
	// receive after the send but inside l_min: clock condition violated,
	// order not reversed
	c, err := CensusOf(msgTrace(-3e-6))
	if err != nil {
		t.Fatal(err)
	}
	if c.Reversed != 0 {
		t.Fatalf("reversed %d, want 0", c.Reversed)
	}
	if c.ClockCondition != 1 {
		t.Fatalf("clock-condition count %d, want 1", c.ClockCondition)
	}
}

func TestCensusEmptyTrace(t *testing.T) {
	c, err := CensusOf(&trace.Trace{})
	if err != nil {
		t.Fatal(err)
	}
	if c.PctReversed() != 0 || c.PctMessageEvents() != 0 || c.PctReversedLogical() != 0 {
		t.Fatalf("empty census percentages nonzero")
	}
}

// pompTrace builds one parallel region with adjustable skews.
type pompSkews struct {
	forkLate    bool // a thread's Enter before the Fork
	joinEarly   bool // a thread's Exit after the Join
	barrierSkew bool // one thread's BarrierExit before another's BarrierEnter
}

func pompTrace(s pompSkews) *trace.Trace {
	tr := &trace.Trace{}
	reg := tr.RegionID("par")
	mk := func(rank int, events ...trace.Event) trace.Proc {
		return trace.Proc{Rank: rank, Events: events}
	}
	ev := func(k trace.Kind, tt float64) trace.Event {
		return trace.Event{Kind: k, Time: tt, True: tt, Region: reg, Instance: 0, Partner: -1, Root: -1}
	}
	forkT := 1.0
	enter0, enter1 := 1.0001, 1.0002
	barEnter0, barEnter1 := 1.001, 1.0011
	barExit0, barExit1 := 1.0012, 1.0013
	exit0, exit1 := 1.0014, 1.0015
	joinT := 1.002
	if s.forkLate {
		enter1 = forkT - 1e-5
	}
	if s.joinEarly {
		exit1 = joinT + 1e-5
	}
	if s.barrierSkew {
		barExit0 = barEnter1 - 1e-6 // thread 0 leaves before thread 1 enters
	}
	tr.Procs = []trace.Proc{
		mk(0,
			ev(trace.Fork, forkT), ev(trace.Enter, enter0),
			ev(trace.BarrierEnter, barEnter0), ev(trace.BarrierExit, barExit0),
			ev(trace.Exit, exit0), ev(trace.Join, joinT)),
		mk(1,
			ev(trace.Enter, enter1),
			ev(trace.BarrierEnter, barEnter1), ev(trace.BarrierExit, barExit1),
			ev(trace.Exit, exit1)),
	}
	// fix local ordering of Time within each proc (the census does not
	// require it, but keep the trace realistic)
	return tr
}

func TestPOMPCensusClean(t *testing.T) {
	c, err := POMPCensusOf(pompTrace(pompSkews{}))
	if err != nil {
		t.Fatal(err)
	}
	if c.Regions != 1 || c.Any != 0 {
		t.Fatalf("clean POMP census %+v", c)
	}
}

func TestPOMPCensusClasses(t *testing.T) {
	cases := []struct {
		s       pompSkews
		entry   int
		exit    int
		barrier int
	}{
		{pompSkews{forkLate: true}, 1, 0, 0},
		{pompSkews{joinEarly: true}, 0, 1, 0},
		{pompSkews{barrierSkew: true}, 0, 0, 1},
		{pompSkews{forkLate: true, joinEarly: true, barrierSkew: true}, 1, 1, 1},
	}
	for i, cse := range cases {
		c, err := POMPCensusOf(pompTrace(cse.s))
		if err != nil {
			t.Fatal(err)
		}
		if c.Entry != cse.entry || c.Exit != cse.exit || c.Barrier != cse.barrier {
			t.Fatalf("case %d: census %+v", i, c)
		}
		if c.Any != 1 {
			t.Fatalf("case %d: Any = %d", i, c.Any)
		}
		anyPct, entry, exit, barrier := c.Pct()
		if anyPct != 100 {
			t.Fatalf("case %d: anyPct %v", i, anyPct)
		}
		_ = entry
		_ = exit
		_ = barrier
	}
}

func TestPOMPCensusRejectsIncompleteRegion(t *testing.T) {
	tr := pompTrace(pompSkews{})
	// drop the Join
	tr.Procs[0].Events = tr.Procs[0].Events[:5]
	if _, err := POMPCensusOf(tr); err == nil {
		t.Fatalf("missing join accepted")
	}
}

func TestPOMPPctEmpty(t *testing.T) {
	var c POMPCensus
	a, b, cc, d := c.Pct()
	if a != 0 || b != 0 || cc != 0 || d != 0 {
		t.Fatalf("empty census pct nonzero")
	}
}

func TestDeviationSeriesWithConstantDrift(t *testing.T) {
	osc0 := clock.NewOscillator(clock.ConstantDrift{Rate: 0})
	osc1 := clock.NewOscillator(clock.ConstantDrift{Rate: 1e-6})
	rng := xrand.NewSource(1)
	c0 := clock.New(clock.Config{}, osc0, rng.Sub("a"))
	c1 := clock.New(clock.Config{}, osc1, rng.Sub("b"))
	s, err := DeviationSeries([]*clock.Clock{c0, c1}, nil, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.T) != 11 || len(s.Dev) != 1 {
		t.Fatalf("series shape %d x %d", len(s.T), len(s.Dev))
	}
	// deviation grows linearly: 1e-6 * t
	for k, tt := range s.T {
		want := 1e-6 * tt
		if math.Abs(s.Dev[0][k]-want) > 1e-12 {
			t.Fatalf("dev at %v = %v, want %v", tt, s.Dev[0][k], want)
		}
	}
	if got := s.MaxAbsDeviation(); math.Abs(got-1e-4) > 1e-12 {
		t.Fatalf("MaxAbsDeviation %v", got)
	}
	at, ok := s.FirstExceeds(4.5e-5)
	if !ok || at != 50 {
		t.Fatalf("FirstExceeds = (%v,%v)", at, ok)
	}
	if _, ok := s.FirstExceeds(1); ok {
		t.Fatalf("FirstExceeds(1) should not trigger")
	}
}

func TestDeviationSeriesWithCorrection(t *testing.T) {
	osc0 := clock.NewOscillator(clock.ConstantDrift{Rate: 0})
	osc1 := clock.NewOscillator(clock.ConstantDrift{Rate: 1e-6})
	rng := xrand.NewSource(2)
	c0 := clock.New(clock.Config{}, osc0, rng.Sub("a"))
	c1 := clock.New(clock.Config{}, osc1, rng.Sub("b"))
	// a perfect linear correction for the drifting clock
	corr := interp.FromLines([]stats.Line{{Slope: 1}, {Slope: 1 / (1 + 1e-6)}})
	s, err := DeviationSeries([]*clock.Clock{c0, c1}, corr, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxAbsDeviation() > 1e-9 {
		t.Fatalf("corrected deviation %v", s.MaxAbsDeviation())
	}
}

func TestDeviationSeriesErrors(t *testing.T) {
	osc := clock.NewOscillator(clock.ConstantDrift{})
	c := clock.New(clock.Config{}, osc, xrand.NewSource(3))
	if _, err := DeviationSeries([]*clock.Clock{c}, nil, 10, 1); err == nil {
		t.Fatalf("single clock accepted")
	}
	c2 := clock.New(clock.Config{}, osc, xrand.NewSource(4))
	if _, err := DeviationSeries([]*clock.Clock{c, c2}, nil, 0, 1); err == nil {
		t.Fatalf("zero duration accepted")
	}
	if _, err := DeviationSeries([]*clock.Clock{c, c2}, nil, 10, 0); err == nil {
		t.Fatalf("zero interval accepted")
	}
}

func TestDistortion(t *testing.T) {
	orig := msgTrace(0)
	corr := orig.Clone()
	// stretch one interval by 2 µs and shrink another by 1 µs
	corr.Procs[0].Events[1].Time += 2e-6
	corr.Procs[0].Events[2].Time += 1e-6
	d, err := DistortionBetween(orig, corr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.MaxAbs-2e-6) > 1e-12 {
		t.Fatalf("MaxAbs %v", d.MaxAbs)
	}
	// the +2 µs shift shrinks the following interval and the +1 µs shift
	// shrinks the one after it
	if d.Shrunk != 2 {
		t.Fatalf("Shrunk %d", d.Shrunk)
	}
	if d.N != 5 {
		t.Fatalf("N %d", d.N)
	}
	if d.MeanAbs <= 0 {
		t.Fatalf("MeanAbs %v", d.MeanAbs)
	}
}

func TestDistortionShapeMismatch(t *testing.T) {
	orig := msgTrace(0)
	other := msgTrace(0)
	other.Procs = other.Procs[:1]
	if _, err := DistortionBetween(orig, other); err == nil {
		t.Fatalf("proc-count mismatch accepted")
	}
	other2 := msgTrace(0)
	other2.Procs[0].Events = other2.Procs[0].Events[:2]
	if _, err := DistortionBetween(orig, other2); err == nil {
		t.Fatalf("event-count mismatch accepted")
	}
}

func TestTrueError(t *testing.T) {
	tr := msgTrace(0)
	// rank 1's timestamps are biased +10 µs relative to true
	for i := range tr.Procs[1].Events {
		tr.Procs[1].Events[i].Time = tr.Procs[1].Events[i].True + 10e-6
	}
	acc := TrueError(tr)
	if acc.Max() < 9e-6 {
		t.Fatalf("TrueError missed the bias: max %v", acc.Max())
	}
}

func TestProfileRegions(t *testing.T) {
	tr := &trace.Trace{}
	outer := tr.RegionID("outer")
	inner := tr.RegionID("inner")
	ev := func(k trace.Kind, reg int32, tt float64) trace.Event {
		return trace.Event{Kind: k, Region: reg, Time: tt, True: tt, Partner: -1, Root: -1}
	}
	tr.Procs = []trace.Proc{{Rank: 0, Events: []trace.Event{
		ev(trace.Enter, outer, 0),
		ev(trace.Enter, inner, 1),
		ev(trace.Exit, inner, 3),
		ev(trace.Exit, outer, 10),
		ev(trace.Enter, outer, 20),
		ev(trace.Exit, outer, 25),
	}}}
	prof, err := ProfileRegions(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RegionProfile{}
	for _, p := range prof {
		byName[p.Region] = p
	}
	o := byName["outer"]
	if o.Visits != 2 || o.Inclusive != 15 || o.Exclusive != 13 || o.Negative != 0 {
		t.Fatalf("outer profile %+v", o)
	}
	i := byName["inner"]
	if i.Visits != 1 || i.Inclusive != 2 || i.Exclusive != 2 {
		t.Fatalf("inner profile %+v", i)
	}
}

func TestProfileRegionsNegativeDurations(t *testing.T) {
	tr := &trace.Trace{}
	reg := tr.RegionID("r")
	tr.Procs = []trace.Proc{{Rank: 0, Events: []trace.Event{
		{Kind: trace.Enter, Region: reg, Time: 5, True: 1, Partner: -1, Root: -1},
		{Kind: trace.Exit, Region: reg, Time: 4, True: 2, Partner: -1, Root: -1},
	}}}
	prof, err := ProfileRegions(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if prof[0].Negative != 1 {
		t.Fatalf("negative-duration visit not flagged: %+v", prof[0])
	}
	oracle, err := ProfileRegions(tr, true)
	if err != nil {
		t.Fatal(err)
	}
	if oracle[0].Negative != 0 {
		t.Fatalf("oracle profile flagged a negative duration")
	}
}

func TestProfileRegionsUnbalanced(t *testing.T) {
	tr := &trace.Trace{}
	reg := tr.RegionID("r")
	tr.Procs = []trace.Proc{{Rank: 0, Events: []trace.Event{
		{Kind: trace.Enter, Region: reg, Partner: -1, Root: -1},
	}}}
	if _, err := ProfileRegions(tr, false); err == nil {
		t.Fatalf("unbalanced Enter accepted")
	}
	tr.Procs[0].Events = []trace.Event{{Kind: trace.Exit, Region: reg, Partner: -1, Root: -1}}
	if _, err := ProfileRegions(tr, false); err == nil {
		t.Fatalf("Exit without Enter accepted")
	}
}

func TestMessageLatencies(t *testing.T) {
	tr := msgTrace(-50e-6)
	c, err := MessageLatencies(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Negative != 1 || c.Stats.N() != 1 {
		t.Fatalf("measured census %+v", c)
	}
	o, err := MessageLatencies(tr, true)
	if err != nil {
		t.Fatal(err)
	}
	if o.Negative != 0 {
		t.Fatalf("oracle census reported negative latency")
	}
	if o.Stats.Mean() <= 0 {
		t.Fatalf("oracle latency %v", o.Stats.Mean())
	}
}

func TestDeviationSeriesMeasuredIncludesNoise(t *testing.T) {
	osc := clock.NewOscillator(clock.ConstantDrift{})
	rng := xrand.NewSource(9)
	a := clock.New(clock.Config{ReadNoise: 1e-7, Monotonic: false}, osc, rng.Sub("a"))
	b := clock.New(clock.Config{ReadNoise: 1e-7, Monotonic: false}, osc, rng.Sub("b"))
	s, err := DeviationSeriesMeasured([]*clock.Clock{a, b}, nil, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// shared oscillator: deviations are pure read noise, nonzero but tiny
	max := s.MaxAbsDeviation()
	if max == 0 || max > 1e-6 {
		t.Fatalf("measured noise deviation %v out of band", max)
	}
	if _, err := DeviationSeriesMeasured([]*clock.Clock{a}, nil, 10, 1); err == nil {
		t.Fatalf("single clock accepted")
	}
	if _, err := DeviationSeriesMeasured([]*clock.Clock{a, b}, nil, 0, 1); err == nil {
		t.Fatalf("zero duration accepted")
	}
}

func TestLateSenderDirect(t *testing.T) {
	tr := &trace.Trace{}
	tr.RegionID("MPI_Recv")
	tr.Procs = []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			// sender sends 30 µs after the receiver entered its receive
			{Kind: trace.Send, Time: 1.00003, True: 1.00003, Partner: 1, Region: -1, Root: -1},
		}},
		{Rank: 1, Core: topology.CoreID{Node: 1}, Events: []trace.Event{
			{Kind: trace.Enter, Time: 1.0, True: 1.0, Region: 0, Partner: -1, Root: -1},
			{Kind: trace.Recv, Time: 1.000035, True: 1.000035, Partner: 0, Region: -1, Root: -1},
			{Kind: trace.Exit, Time: 1.00004, True: 1.00004, Region: 0, Partner: -1, Root: -1},
		}},
	}
	ws, err := LateSender(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if ws.LateSenders != 1 || ws.Messages != 1 {
		t.Fatalf("stats %+v", ws)
	}
	if got := ws.TotalWait; got < 29e-6 || got > 31e-6 {
		t.Fatalf("wait %v, want ~30 µs", got)
	}
	if ws.MaxWait != ws.TotalWait {
		t.Fatalf("max %v != total %v for one instance", ws.MaxWait, ws.TotalWait)
	}
	// oracle view agrees here (truthful timestamps)
	oracle, err := LateSender(tr, true)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.LateSenders != 1 {
		t.Fatalf("oracle stats %+v", oracle)
	}
}
