package trace

// Fuzzing for the incremental decoder. EventReader must classify every
// corrupt input — truncation mid-varint, mid-event, or an overlong count
// — as ErrBadFormat (or a truncation error), never panic, and never
// allocate ahead of the bytes actually decoded. On accepted inputs it
// must agree with the in-memory Read byte for byte.

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// readStreaming decodes data through the incremental EventReader the way
// a streaming consumer would: one proc and one event at a time, growing
// buffers only as bytes are consumed.
func readStreaming(data []byte) (*Trace, error) {
	er, err := NewEventReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	h := er.Header()
	t := &Trace{Machine: h.Machine, Timer: h.Timer, Regions: h.Regions, MinLatency: h.MinLatency}
	for {
		ph, err := er.NextProc()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		p := Proc{Rank: ph.Rank, Core: ph.Core, Clock: ph.Clock}
		for j := 0; j < ph.EventCount; j++ {
			var ev Event
			if err := er.Read(&ev); err != nil {
				return nil, err
			}
			p.Events = append(p.Events, ev)
		}
		t.Procs = append(t.Procs, p)
	}
}

// classified reports whether a decode error is one callers can act on.
func classified(err error) bool {
	return errors.Is(err, ErrBadFormat) || errors.Is(err, io.ErrUnexpectedEOF) || err == io.EOF
}

func FuzzEventReader(f *testing.F) {
	var buf bytes.Buffer
	if _, err := Write(&buf, tinyTrace()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// truncations at awkward places: mid-header, mid-varint, mid-event
	for _, cut := range []int{1, 4, 5, len(valid) / 3, len(valid) / 2, len(valid) - 9, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// FuzzRead's crashers double as seeds here
	f.Add([]byte{})
	f.Add([]byte("NOPE"))
	f.Add([]byte("ETRC\x07"))
	f.Add(append([]byte(nil), "ETRC\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"...))
	f.Add(overlongCountFile())
	f.Fuzz(func(t *testing.T, data []byte) {
		st, serr := readStreaming(data)
		mt, merr := Read(bytes.NewReader(data))
		if (serr == nil) != (merr == nil) {
			t.Fatalf("EventReader err = %v, Read err = %v", serr, merr)
		}
		if serr != nil {
			if !classified(serr) {
				t.Fatalf("unclassified streaming error: %v", serr)
			}
			return
		}
		var b1, b2 bytes.Buffer
		if _, err := Write(&b1, st); err != nil {
			t.Fatalf("re-encode of streamed trace: %v", err)
		}
		if _, err := Write(&b2, mt); err != nil {
			t.Fatalf("re-encode of in-memory trace: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("streaming and in-memory decodes disagree: %d vs %d bytes", b1.Len(), b2.Len())
		}

		// the proc-skipping path (NextProc without reading events) must
		// accept the same input, with non-decreasing offsets
		er, err := NewEventReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second NewEventReader rejected accepted input: %v", err)
		}
		last := er.Offset()
		for {
			_, err := er.NextProc()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("NextProc skip pass rejected accepted input: %v", err)
			}
			if off := er.Offset(); off < last {
				t.Fatalf("Offset went backward: %d after %d", off, last)
			} else {
				last = off
			}
		}
	})
}
