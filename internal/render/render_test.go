package render

import (
	"strings"
	"testing"

	"tsync/internal/analysis"
	"tsync/internal/clock"
	"tsync/internal/omp"
	"tsync/internal/topology"
	"tsync/internal/trace"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "22222"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name ") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[3], "22222") {
		t.Fatalf("rows lost: %q", out)
	}
	// no-header table
	out = Table(nil, [][]string{{"x"}})
	if strings.Contains(out, "---") {
		t.Fatalf("separator without header: %q", out)
	}
}

func TestMicro(t *testing.T) {
	if got := Micro(4.29e-6); got != "4.29" {
		t.Fatalf("Micro = %q", got)
	}
}

func seriesFixture() analysis.Series {
	return analysis.Series{
		T:   []float64{0, 1, 2, 3},
		Dev: [][]float64{{0, 1e-6, 2e-6, 3e-6}, {0, -1e-6, -2e-6, -3e-6}},
	}
}

func TestSeriesCSV(t *testing.T) {
	out := SeriesCSV(seriesFixture(), []string{"w1"})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "t_s,w1,worker2_us" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1,1.0000,-1.0000") {
		t.Fatalf("row %q", lines[2])
	}
}

func TestSeriesPlot(t *testing.T) {
	out := SeriesPlot(seriesFixture(), 40, 10, "test", 2e-6, -2e-6)
	if !strings.Contains(out, "test") {
		t.Fatalf("title missing")
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Fatalf("worker marks missing:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("reference lines missing")
	}
	// empty series must not panic
	if out := SeriesPlot(analysis.Series{}, 40, 10, "empty"); !strings.Contains(out, "empty") {
		t.Fatalf("empty series render: %q", out)
	}
}

func ompTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tm, err := omp.NewTeam(omp.Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tm.RunParallelFor("pf", 20, func(int, int) float64 { return 5e-6 })
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPOMPTimeline(t *testing.T) {
	tr := ompTrace(t)
	out, err := POMPTimeline(tr, 0, 0, 72)
	if err != nil {
		t.Fatal(err)
	}
	for _, mark := range []string{"F", "J", "E", "X", "[", "]", "thread 0:0", "thread 3:0"} {
		if !strings.Contains(out, mark) {
			t.Fatalf("timeline lacks %q:\n%s", mark, out)
		}
	}
	if _, err := POMPTimeline(tr, 0, 9999, 72); err == nil {
		t.Fatalf("missing instance accepted")
	}
}

func TestFirstViolatedRegion(t *testing.T) {
	tr := ompTrace(t)
	c, err := analysis.POMPCensusOf(tr)
	if err != nil {
		t.Fatal(err)
	}
	reg, inst, ok := FirstViolatedRegion(tr)
	if c.Any > 0 != ok {
		t.Fatalf("census Any=%d but FirstViolatedRegion ok=%v", c.Any, ok)
	}
	if ok {
		// rendering the violated instance must work (the Fig. 3 use)
		if _, err := POMPTimeline(tr, reg, inst, 72); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFirstViolatedRegionCleanTrace(t *testing.T) {
	tr := &trace.Trace{Procs: []trace.Proc{{Rank: 0}}}
	if _, _, ok := FirstViolatedRegion(tr); ok {
		t.Fatalf("clean trace reported a violation")
	}
}

func TestMessageTimeline(t *testing.T) {
	tr := &trace.Trace{}
	tr.Procs = []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.Send, Time: 1.0, True: 1.0, Partner: 1, Tag: 0},
			{Kind: trace.Send, Time: 2.0, True: 2.0, Partner: 1, Tag: 1},
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.Recv, Time: 1.1, True: 1.1, Partner: 0, Tag: 0},
			{Kind: trace.Recv, Time: 1.9, True: 2.1, Partner: 0, Tag: 1}, // reversed
		}},
	}
	out, err := MessageTimeline(tr, 0, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "S") || !strings.Contains(out, "R") {
		t.Fatalf("marks missing:\n%s", out)
	}
	if !strings.Contains(out, "!") || !strings.Contains(out, "1 reversed") {
		t.Fatalf("reversed message not flagged:\n%s", out)
	}
	if _, err := MessageTimeline(tr, 10, 11, 60); err == nil {
		t.Fatalf("empty window accepted")
	}
}

func TestBars(t *testing.T) {
	out := Bars("violations", []string{"pop", "smg"}, []float64{1.7, 3.3}, 20)
	if !strings.Contains(out, "violations") || !strings.Contains(out, "pop") {
		t.Fatalf("bars output %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	// the larger value gets the longer bar
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
	// all-zero values must not divide by zero
	if out := Bars("z", []string{"a"}, []float64{0}, 20); !strings.Contains(out, "0.00") {
		t.Fatalf("zero bars broken: %q", out)
	}
}
