package stream

import (
	"io"

	"tsync/internal/trace"
)

// Summarize computes the same trace.Summary as trace.Summarize without
// materializing the trace: one rank-major pass over the source, holding a
// single event at a time. Every Summary field is either an integer count
// or a running min/max, so the result is bit-identical to the in-memory
// one regardless of traversal order; rank-major is used anyway to mirror
// trace.Summarize exactly.
func Summarize(src *Source) (trace.Summary, error) {
	h := src.Header()
	s := trace.Summary{
		Machine: h.Machine,
		Timer:   h.Timer,
		Procs:   src.Ranks(),
		ByKind:  map[string]int{},
		Regions: map[string]int{},
	}
	regionName := func(id int32) string {
		if id >= 0 && int(id) < len(h.Regions) {
			return h.Regions[id]
		}
		return "?"
	}
	minT, maxT := 0.0, 0.0
	minTrue, maxTrue := 0.0, 0.0
	first := true
	for rank := 0; rank < src.Ranks(); rank++ {
		cur := src.Cursor(rank)
		for {
			var ev trace.Event
			if err := cur.Next(&ev); err == io.EOF {
				break
			} else if err != nil {
				return trace.Summary{}, err
			}
			s.Events++
			s.ByKind[ev.Kind.String()]++
			if ev.Kind == trace.Enter {
				s.Regions[regionName(ev.Region)]++
			}
			if ev.Kind == trace.Send {
				s.Bytes += int64(ev.Bytes)
			}
			if first {
				minT, maxT = ev.Time, ev.Time
				minTrue, maxTrue = ev.True, ev.True
				first = false
				continue
			}
			if ev.Time < minT {
				minT = ev.Time
			}
			if ev.Time > maxT {
				maxT = ev.Time
			}
			if ev.True < minTrue {
				minTrue = ev.True
			}
			if ev.True > maxTrue {
				maxTrue = ev.True
			}
		}
	}
	s.SpanTime = maxT - minT
	s.SpanTrue = maxTrue - minTrue
	return s, nil
}
