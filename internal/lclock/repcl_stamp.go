package lclock

import (
	"fmt"
	"sort"

	"tsync/internal/trace"
)

// RepClStamper assigns RepCl stamps to a trace's events incrementally,
// in any topological order of the happened-before graph. It is the
// shared core of the in-memory RepClStamps pass and the streaming
// repclSink in internal/stream: both feed it the same per-rank event
// sequences with the same resolved in-edges, so their per-rank digests
// are bit-identical — the differential tests pin that down.
//
// Memory is bounded by the caller: Stamp retains each event's stamp
// (an edge tail may be merged later) until Release is called for it,
// which the streaming engine does exactly when an event's out-edges
// have all been delivered.
type RepClStamper struct {
	cfg  RepClConfig
	cur  []RepCl
	held map[EventRef]RepCl

	skew     int
	maxEpoch uint64
	events   int64
	digests  []uint64
}

// fnvOffset64 / fnvPrime64 are the FNV-64a parameters, matching the
// checksum conventions of internal/experiments.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWord folds one 64-bit word into an FNV-64a digest byte by byte.
func fnvWord(d, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		d = (d ^ (w & 0xff)) * fnvPrime64
		w >>= 8
	}
	return d
}

// NewRepClStamper returns a stamper for n ranks.
func NewRepClStamper(n int, cfg RepClConfig) *RepClStamper {
	cfg = cfg.Normalize()
	cur := make([]RepCl, n)
	for i := range cur {
		cur[i] = NewRepCl(n)
	}
	digests := make([]uint64, n)
	for i := range digests {
		digests[i] = fnvOffset64
	}
	return &RepClStamper{cfg: cfg, cur: cur, held: map[EventRef]RepCl{}, digests: digests}
}

// Config returns the normalized configuration the stamper runs under.
func (s *RepClStamper) Config() RepClConfig { return s.cfg }

// Stamp advances rank's clock for its event idx at (corrected) local
// time t, merging the retained stamps of the given in-edge sources
// (sources whose stamp was never seen or already released — possible
// only on salvaged traces — are skipped). The resulting stamp is
// retained for later merges until Release(ref) and folded into the
// rank's running digest.
func (s *RepClStamper) Stamp(rank, idx int, t float64, sources []EventRef) (RepCl, error) {
	if rank < 0 || rank >= len(s.cur) {
		return RepCl{}, fmt.Errorf("lclock: RepClStamper rank %d out of range [0,%d)", rank, len(s.cur))
	}
	c := s.cur[rank].Clone()
	var clamped bool
	var err error
	if len(sources) == 0 {
		clamped, err = c.Tick(s.cfg, rank, t)
	} else {
		remotes := make([]RepCl, 0, len(sources))
		for _, src := range sources {
			if st, ok := s.held[src]; ok {
				remotes = append(remotes, st)
			}
		}
		clamped, err = c.MergeRecv(s.cfg, rank, t, remotes...)
	}
	if err != nil {
		return RepCl{}, err
	}
	if clamped {
		s.skew++
	}
	if c.Mx > s.maxEpoch {
		s.maxEpoch = c.Mx
	}
	s.cur[rank] = c
	s.held[EventRef{rank, idx}] = c
	s.events++
	d := fnvWord(s.digests[rank], c.Mx)
	for _, o := range c.Off {
		d = fnvWord(d, uint64(o))
	}
	s.digests[rank] = fnvWord(d, uint64(c.Ctr))
	return c, nil
}

// Release drops the retained stamp of an event whose out-edges have
// all been consumed; this is what keeps the stamper's footprint
// proportional to the engine's reorder window, not the trace.
func (s *RepClStamper) Release(ref EventRef) { delete(s.held, ref) }

// Held reports how many stamps are currently retained (test hook for
// the bounded-memory contract).
func (s *RepClStamper) Held() int { return len(s.held) }

// SkewClamps returns how many events had to be clamped into the ε
// window — each one is a spot where the trace's corrected local time
// lagged more than Epsilon×Interval behind causally-known time.
func (s *RepClStamper) SkewClamps() int { return s.skew }

// MaxEpoch returns the largest epoch any stamp reached.
func (s *RepClStamper) MaxEpoch() uint64 { return s.maxEpoch }

// Events returns how many events have been stamped.
func (s *RepClStamper) Events() int64 { return s.events }

// RankDigests returns a copy of the per-rank FNV-64a digests over the
// stamp stream (Mx, offsets, Ctr per event, in per-rank event order).
func (s *RepClStamper) RankDigests() []uint64 {
	return append([]uint64(nil), s.digests...)
}

// Digest combines the per-rank digests in rank order into one
// hex-printed FNV-64a checksum. Because every valid replay delivers
// each rank's events in program order, the digest is invariant across
// ε-feasible interleavings — and across engine configurations (worker
// counts, batch sizes) of the streaming pass.
func (s *RepClStamper) Digest() string {
	d := uint64(fnvOffset64)
	for _, rd := range s.digests {
		d = fnvWord(d, rd)
	}
	return fmt.Sprintf("%016x", d)
}

// RepClStamps stamps every event of an in-memory trace, processing
// events in merged (True, rank, idx) order — the same topological
// order the streaming engine uses — with message and collective edges
// resolved through CrossEdges. It returns the per-rank stamp arrays
// and the number of ε-skew clamps.
func RepClStamps(t *trace.Trace, cfg RepClConfig) ([][]RepCl, int, error) {
	edges, err := CrossEdges(t)
	if err != nil {
		return nil, 0, err
	}
	return RepClStampsEdges(t, cfg, edges)
}

// RepClStampsEdges is RepClStamps over a prebuilt edge set — the
// replay engine reuses it with salvage-tolerant edge sets whose
// unmatched messages and broken collectives have been dropped.
func RepClStampsEdges(t *trace.Trace, cfg RepClConfig, edges []Edge) ([][]RepCl, int, error) {
	in := map[EventRef][]EventRef{}
	for _, e := range edges {
		in[e.To] = append(in[e.To], e.From)
	}
	type ordered struct {
		tru  float64
		ref  EventRef
		time float64
	}
	var evs []ordered
	for rank, p := range t.Procs {
		for idx, ev := range p.Events {
			evs = append(evs, ordered{tru: ev.True, ref: EventRef{rank, idx}, time: ev.Time})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].tru != evs[j].tru { //tsync:exact — merge order on oracle times, ties broken by (rank, idx) below
			return evs[i].tru < evs[j].tru
		}
		if evs[i].ref.Rank != evs[j].ref.Rank {
			return evs[i].ref.Rank < evs[j].ref.Rank
		}
		return evs[i].ref.Idx < evs[j].ref.Idx
	})
	st := NewRepClStamper(len(t.Procs), cfg)
	out := make([][]RepCl, len(t.Procs))
	for i, p := range t.Procs {
		out[i] = make([]RepCl, len(p.Events))
	}
	for _, e := range evs {
		stamp, err := st.Stamp(e.ref.Rank, e.ref.Idx, e.time, in[e.ref])
		if err != nil {
			return nil, st.SkewClamps(), err
		}
		out[e.ref.Rank][e.ref.Idx] = stamp
	}
	return out, st.SkewClamps(), nil
}

// StampsDigest folds prebuilt per-rank stamp arrays into the same
// checksum RepClStamper.Digest would produce, for comparing an
// in-memory pass against a streaming one.
func StampsDigest(stamps [][]RepCl) string {
	d := uint64(fnvOffset64)
	for _, rank := range stamps {
		rd := uint64(fnvOffset64)
		for _, c := range rank {
			rd = fnvWord(rd, c.Mx)
			for _, o := range c.Off {
				rd = fnvWord(rd, uint64(o))
			}
			rd = fnvWord(rd, uint64(c.Ctr))
		}
		d = fnvWord(d, rd)
	}
	return fmt.Sprintf("%016x", d)
}
