// Package fingerprint turns the paper's core finding — clock drift is
// non-constant, so a single linear offset model mis-timestamps
// concurrent events — into an observability layer: a streaming per-rank
// drift analyzer that characterizes each rank's clock instead of merely
// correcting it. For every rank it maintains an online linear
// regression of the clock offset against oracle time (drift rate in
// ppm, residual jitter signature, stability score) using anchored
// Welford accumulators (stats.OnlineReg) that stay exact at timestamp
// magnitudes, plus a change-point detector that localizes and
// classifies the clock faults internal/faultinject injects — offset
// steps, frequency jumps, and clock resets — and auto-places
// interpolation knots at the detected breaks (internal/interp).
//
// Look-back is bounded like the CLC amortization deques: per rank the
// tracker holds one O(1) committed fit, at most Confirm pending
// outliers, and one O(1) post-break fit — state is O(ranks + breaks)
// regardless of trace length.
//
// Determinism: the tracker is a pure fold over each rank's
// (oracle, local) sample sequence. The streaming merge delivers every
// rank's events in file order no matter how many assembly workers or
// what slab size the pipeline uses, so fingerprint reports are
// bit-identical across workers/batch — the differential tests in
// internal/stream enforce that.
package fingerprint

import (
	"math"

	"tsync/internal/stats"
)

// Kind classifies a detected clock break, mirroring the fault taxonomy
// of internal/faultinject.
type Kind int

const (
	// KindUnknown marks a confirmed break the detector could not
	// classify (typically too few post-break samples before the trace
	// ended).
	KindUnknown Kind = iota
	// KindStep is an offset discontinuity with unchanged drift rate.
	KindStep
	// KindFreqJump is a drift-rate change with a continuous offset.
	KindFreqJump
	// KindReset is a clock restart: a large discontinuity, after which
	// the previous drift and jitter signature are gone.
	KindReset
)

// String names the kind (report spelling).
func (k Kind) String() string {
	switch k {
	case KindStep:
		return "step"
	case KindFreqJump:
		return "freq-jump"
	case KindReset:
		return "reset"
	}
	return "unknown"
}

// Options tune the fingerprint tracker. The zero value selects the
// defaults via Normalize; all thresholds are in seconds (offsets) or
// s/s (drift rates) unless noted.
type Options struct {
	// SampleEvery decimates the input: only every n-th event per rank
	// feeds the regression. 0 or 1 means every event.
	SampleEvery int
	// MinSegment is how many post-break samples the detector gathers
	// before classifying the break (the post-break fit's slope needs a
	// baseline). Zero selects 64.
	MinSegment int
	// Confirm is how many consecutive outliers confirm a change point;
	// fewer are treated as jitter and folded back into the fit. Zero
	// selects 4.
	Confirm int
	// ResidK scales the outlier threshold: a sample is an outlier when
	// its residual against the committed fit exceeds
	// max(MinResid, ResidK·residual-stddev). Zero selects 12.
	ResidK float64
	// MinResid floors the outlier threshold so near-perfect clocks do
	// not flag float noise as breaks. Zero selects 1e-5 s.
	MinResid float64
	// JumpTol is the smallest offset discontinuity called a
	// discontinuity when classifying a confirmed break. Zero selects
	// 5e-5 s (above the apparent jump a frequency change's detection lag
	// produces, below any step worth reporting).
	JumpTol float64
	// SlopeTol is the smallest drift-rate change called a frequency
	// jump. Zero selects 5e-5 s/s.
	SlopeTol float64
	// ResetJumpMin is the discontinuity magnitude at or above which a
	// jump is classified as a reset outright. Zero selects 5e-2 s —
	// far beyond any plausible step fault, but small against a clock
	// restarting from zero mid-run.
	ResetJumpMin float64
	// ResetSlopeTol and ResetResidTol classify smaller discontinuities
	// as resets when the post-break clock lost its drift and jitter
	// signature (a restarted clock tracks oracle time exactly). Zeros
	// select 1e-6 s/s and 1e-7 s.
	ResetSlopeTol float64
	ResetResidTol float64
	// DriftPPMMax and JitterMax flag a rank anomalous even without
	// breaks: drift rate beyond DriftPPMMax ppm or residual jitter RMS
	// beyond JitterMax seconds. Zeros select 500 ppm and 1e-4 s.
	DriftPPMMax float64
	JitterMax   float64
}

// Normalize fills zero fields with defaults and clamps nonsensical
// values, mirroring stream.Options.Normalize: every entry point
// normalizes once up front.
func (o Options) Normalize() Options {
	if o.SampleEvery < 1 {
		o.SampleEvery = 1
	}
	if o.MinSegment <= 0 {
		o.MinSegment = 64
	}
	if o.Confirm <= 0 {
		o.Confirm = 4
	}
	if o.ResidK <= 0 {
		o.ResidK = 12
	}
	if o.MinResid <= 0 {
		o.MinResid = 1e-5
	}
	if o.JumpTol <= 0 {
		o.JumpTol = 5e-5
	}
	if o.SlopeTol <= 0 {
		o.SlopeTol = 5e-5
	}
	if o.ResetJumpMin <= 0 {
		o.ResetJumpMin = 5e-2
	}
	if o.ResetSlopeTol <= 0 {
		o.ResetSlopeTol = 1e-6
	}
	if o.ResetResidTol <= 0 {
		o.ResetResidTol = 1e-7
	}
	if o.DriftPPMMax <= 0 {
		o.DriftPPMMax = 500
	}
	if o.JitterMax <= 0 {
		o.JitterMax = 1e-4
	}
	return o
}

// minFit is how many committed samples a segment fit needs before the
// outlier test arms: predictions from fewer samples would flag ordinary
// jitter at the start of every segment.
const minFit = 8

// snapEvery is how many committed samples pass between shadow-fit
// snapshots. The adaptive segment fit absorbs a slow frequency ramp —
// each sample deviates by only Δ·(sample spacing), so the fit tilts and
// its residual threshold inflates instead of triggering. Testing each
// sample against a fit frozen one to two snapEvery intervals ago defeats
// that: the frozen fit never absorbs the ramp, so the deviation grows as
// Δ·(t − fault) until it crosses the threshold. The synth sinusoid
// (amplitude ≤ 2e-6, period ≥ 5 s) moves far less than MinResid over a
// 2·snapEvery look-back, so the shadow test adds no false positives.
const snapEvery = 128

// Segment is one maximal stretch of a rank's clock that a single affine
// offset model fits: offset(t) ≈ RefOffset + Drift·(t − RefT) for
// oracle times t in [StartT, EndT].
type Segment struct {
	// StartT and EndT bound the segment's samples in oracle time.
	StartT, EndT float64
	// StartLocal and EndLocal are the rank's clock readings at the
	// segment boundaries — StartLocal of a non-first segment is where
	// the auto-placed interpolation knot goes.
	StartLocal, EndLocal float64
	// N is the number of samples committed to the fit.
	N int
	// Drift is the fitted d(offset)/d(oracle-time) in s/s; ppm is
	// Drift·1e6.
	Drift float64
	// RefT and RefOffset are the fit's reference point (the sample
	// means); the fitted line passes through it, so evaluating around
	// it avoids materializing a cancellation-prone absolute intercept.
	RefT, RefOffset float64
	// ResidRMS is the jitter signature: RMS of the offset residuals
	// about the fitted line.
	ResidRMS float64
}

// OffsetAt evaluates the segment's fitted offset model at oracle time t.
func (s Segment) OffsetAt(t float64) float64 {
	return s.RefOffset + s.Drift*(t-s.RefT)
}

// Break is one confirmed change point in a rank's clock behavior.
type Break struct {
	// Kind classifies the break against the faultinject taxonomy.
	Kind Kind
	// At is the localized fault time (oracle). Discontinuities are
	// placed midway between the last in-model sample and the first
	// outlier; frequency jumps are refined to the intersection of the
	// pre- and post-break fit lines, which compensates the detection
	// lag a gradual divergence incurs.
	At float64
	// AtLocal is the rank's clock reading at the first post-break
	// sample.
	AtLocal float64
	// Jump is the offset discontinuity at At (post-fit minus pre-fit
	// prediction) and DriftChange the drift-rate change across the
	// break.
	Jump, DriftChange float64
}

// Rank is one rank's fingerprint.
type Rank struct {
	Rank int
	// Samples counts the (decimated) samples consumed.
	Samples int
	// Segments are the affine stretches between breaks, in time order.
	Segments []Segment
	// Breaks are the confirmed change points, in time order
	// (Breaks[i] separates Segments[i] and Segments[i+1]).
	Breaks []Break
	// DriftPPM and JitterRMS summarize the dominant (longest) segment:
	// the rank's steady-state drift rate in parts per million and
	// residual jitter RMS in seconds.
	DriftPPM  float64
	JitterRMS float64
	// Stability is the fraction of committed samples belonging to the
	// dominant segment: 1.0 for a clock one affine model explains,
	// lower the more of the trace its breaks fragment.
	Stability float64
	// Anomalous flags the rank for attention: it has breaks, or its
	// drift/jitter exceed the Options thresholds.
	Anomalous bool
}

// Dominant returns the rank's longest segment (most committed samples,
// earliest wins ties) and false when the rank produced no segments.
func (r *Rank) Dominant() (Segment, bool) {
	if len(r.Segments) == 0 {
		return Segment{}, false
	}
	best := 0
	for i, s := range r.Segments {
		if s.N > r.Segments[best].N {
			best = i
		}
	}
	return r.Segments[best], true
}

// Report is the full per-rank fingerprint of one trace.
type Report struct {
	// Opt echoes the (normalized) options the report was built with.
	Opt Options
	// Ranks holds one fingerprint per rank, indexed by rank.
	Ranks []Rank
}

// Anomalous lists the flagged ranks in rank order.
func (r *Report) Anomalous() []int {
	var out []int
	for i := range r.Ranks {
		if r.Ranks[i].Anomalous {
			out = append(out, i)
		}
	}
	return out
}

// Breaks returns the total number of confirmed change points across all
// ranks.
func (r *Report) Breaks() int {
	n := 0
	for i := range r.Ranks {
		n += len(r.Ranks[i].Breaks)
	}
	return n
}

// sample is one pending (oracle, local) observation.
type sample struct{ t, c float64 }

// pendingBreak is a confirmed change point whose classification waits
// for the post-break fit to mature.
type pendingBreak struct {
	at             float64       // provisional localization (midpoint)
	firstT, firstC float64       // first post-break sample
	lastT, lastC   float64       // latest post-break sample
	pre            stats.OnlineReg // frozen pre-break fit
	preEndT        float64
	preEndC        float64
	post           stats.OnlineReg
}

// rankState is the tracker's bounded per-rank state.
type rankState struct {
	events  int // raw events seen (pre-decimation)
	samples int // decimated samples consumed
	// current committed segment
	seg                  stats.OnlineReg
	segStartT, segStartC float64
	lastT, lastC         float64 // latest committed sample
	// shadow fit: a frozen copy of seg from 1–2 snapEvery intervals
	// back, immune to slow-ramp absorption (see snapEvery)
	snap, prevSnap stats.OnlineReg
	sinceSnap      int
	// bounded look-back
	pend []sample      // consecutive outliers, capacity Confirm
	brk  *pendingBreak // confirmed break awaiting classification
	// results
	segs   []Segment
	breaks []Break
}

// Tracker folds per-rank (oracle, local) samples into a drift Report.
// It is not safe for concurrent use; the streaming merge is sequential,
// which is exactly what makes the report deterministic.
type Tracker struct {
	opt    Options
	ranks  []rankState
	sealed bool
}

// NewTracker returns a tracker for the given rank count.
func NewTracker(ranks int, opt Options) *Tracker {
	if ranks < 0 {
		ranks = 0
	}
	return &Tracker{opt: opt.Normalize(), ranks: make([]rankState, ranks)}
}

// Add feeds one observation: rank's clock read local at oracle time
// oracle. Out-of-range ranks and post-Report adds are ignored.
func (tr *Tracker) Add(rank int, oracle, local float64) {
	if tr.sealed || rank < 0 || rank >= len(tr.ranks) {
		return
	}
	st := &tr.ranks[rank]
	st.events++
	if tr.opt.SampleEvery > 1 && (st.events-1)%tr.opt.SampleEvery != 0 {
		return
	}
	tr.step(st, oracle, local)
}

// step routes one decimated sample through the per-rank state machine.
func (tr *Tracker) step(st *rankState, t, c float64) {
	st.samples++
	off := c - t
	if b := st.brk; b != nil {
		// A confirmed break is maturing: grow the post-break fit until
		// it can be classified.
		b.post.Add(t, off)
		b.lastT, b.lastC = t, c
		if b.post.N() >= tr.opt.MinSegment {
			tr.resolve(st)
		}
		return
	}
	if st.seg.N() == 0 && len(st.pend) == 0 {
		st.segStartT, st.segStartC = t, c
	}
	if tr.outlier(st, t, off) {
		st.pend = append(st.pend, sample{t, c})
		if len(st.pend) >= tr.opt.Confirm {
			tr.confirm(st)
		}
		return
	}
	// In-model: any pending outliers were a transient, not a break —
	// fold them back into the fit in arrival order.
	tr.commitPending(st)
	st.seg.Add(t, off)
	st.lastT, st.lastC = t, c
	st.sinceSnap++
	if st.sinceSnap >= snapEvery {
		st.prevSnap = st.snap
		st.snap = st.seg
		st.sinceSnap = 0
	}
}

// outlier tests one sample against the committed fit (catches abrupt
// faults at the next sample) and against the shadow fit (catches slow
// ramps the adaptive fit would absorb). Both tests compare squared
// deviations, keeping sqrt off the per-event hot path.
func (tr *Tracker) outlier(st *rankState, t, off float64) bool {
	minR2 := tr.opt.MinResid * tr.opt.MinResid
	k2 := tr.opt.ResidK * tr.opt.ResidK
	if st.seg.N() >= minFit {
		thresh2 := math.Max(minR2, k2*st.seg.ResidualVariance())
		if d := off - st.seg.Predict(t); d*d > thresh2 {
			return true
		}
	}
	if st.prevSnap.N() >= minFit {
		thresh2 := math.Max(minR2, k2*st.prevSnap.ResidualVariance())
		if d := off - st.prevSnap.Predict(t); d*d > thresh2 {
			return true
		}
	}
	return false
}

// commitPending folds unconfirmed outliers back into the committed fit.
func (tr *Tracker) commitPending(st *rankState) {
	for _, p := range st.pend {
		st.seg.Add(p.t, p.c-p.t)
		st.lastT, st.lastC = p.t, p.c
	}
	st.pend = st.pend[:0]
}

// confirm promotes Confirm consecutive outliers into a pending break:
// the committed fit freezes as the pre-break model and the outliers
// seed the post-break fit.
func (tr *Tracker) confirm(st *rankState) {
	b := &pendingBreak{
		pre:     st.seg,
		preEndT: st.lastT,
		preEndC: st.lastC,
		firstT:  st.pend[0].t,
		firstC:  st.pend[0].c,
	}
	// Provisional localization: between the last in-model sample and
	// the first outlier the fault must have happened.
	b.at = st.lastT + (b.firstT-st.lastT)/2
	for _, p := range st.pend {
		b.post.Add(p.t, p.c-p.t)
		b.lastT, b.lastC = p.t, p.c
	}
	st.pend = st.pend[:0]
	st.brk = b
}

// resolve classifies a matured pending break, closes the pre-break
// segment, and promotes the post-break fit to the committed segment.
func (tr *Tracker) resolve(st *rankState) {
	b := st.brk
	st.brk = nil
	kind, jump, dslope := tr.classify(b)
	at := b.at
	if kind == KindFreqJump {
		// A gradual divergence is confirmed only after the offset
		// difference outgrows the outlier threshold; the pre/post fit
		// lines intersect where the fault actually happened.
		if x := at - jump/dslope; !math.IsNaN(x) && x > st.segStartT && x < b.firstT {
			at = x
		}
	}
	st.segs = append(st.segs, segFrom(&b.pre, st.segStartT, st.segStartC, b.preEndT, b.preEndC))
	st.breaks = append(st.breaks, Break{Kind: kind, At: at, AtLocal: b.firstC, Jump: jump, DriftChange: dslope})
	st.seg = b.post
	st.segStartT, st.segStartC = b.firstT, b.firstC
	st.lastT, st.lastC = b.lastT, b.lastC
	// the shadow fits belonged to the closed segment
	st.snap = stats.OnlineReg{}
	st.prevSnap = stats.OnlineReg{}
	st.sinceSnap = 0
}

// classify decides what kind of fault a matured break was.
//
// The jump is evaluated at the provisional break time from both fits;
// drift change is the slope difference. Discontinuities win over slope
// evidence — a short post-break fit estimates slopes noisily but jumps
// robustly, and a frequency jump's apparent discontinuity (from
// detection lag) stays below JumpTol by construction. A discontinuity
// is a reset when it is implausibly large for a step (ResetJumpMin) or
// when the post-break clock lost its drift and jitter signature; it is
// a step otherwise. No discontinuity and a slope change is a frequency
// jump.
func (tr *Tracker) classify(b *pendingBreak) (Kind, float64, float64) {
	o := tr.opt
	jump := b.post.Predict(b.at) - b.pre.Predict(b.at)
	dslope := b.post.Slope() - b.pre.Slope()
	aj, as := math.Abs(jump), math.Abs(dslope)
	slopeKnown := b.post.N() >= minFit
	switch {
	case aj >= o.JumpTol:
		clean := math.Abs(b.post.Slope()) <= o.ResetSlopeTol && b.post.ResidualStdDev() <= o.ResetResidTol
		if aj >= o.ResetJumpMin || (slopeKnown && clean) {
			return KindReset, jump, dslope
		}
		return KindStep, jump, dslope
	case slopeKnown && as >= o.SlopeTol:
		return KindFreqJump, jump, dslope
	}
	return KindUnknown, jump, dslope
}

// segFrom snapshots a fit into a Segment.
func segFrom(reg *stats.OnlineReg, startT, startC, endT, endC float64) Segment {
	return Segment{
		StartT:     startT,
		EndT:       endT,
		StartLocal: startC,
		EndLocal:   endC,
		N:          reg.N(),
		Drift:      reg.Slope(),
		RefT:       reg.MeanX(),
		RefOffset:  reg.MeanY(),
		ResidRMS:   reg.ResidualStdDev(),
	}
}

// finalize closes a rank's open state at end of trace.
func (tr *Tracker) finalize(st *rankState) {
	if b := st.brk; b != nil {
		// The trace ended while a break was maturing: classify with
		// what we have (classify degrades to KindUnknown when the
		// post-break evidence is too thin).
		tr.resolve(st)
	} else {
		// Trailing unconfirmed outliers are indistinguishable from a
		// transient; fold them in.
		tr.commitPending(st)
	}
	if st.seg.N() > 0 {
		st.segs = append(st.segs, segFrom(&st.seg, st.segStartT, st.segStartC, st.lastT, st.lastC))
	}
}

// Report finalizes every rank and builds the fingerprint report. The
// tracker seals: further Adds are ignored, and calling Report again
// rebuilds the same summaries from the sealed state.
func (tr *Tracker) Report() *Report {
	if !tr.sealed {
		for i := range tr.ranks {
			tr.finalize(&tr.ranks[i])
		}
		tr.sealed = true
	}
	rep := &Report{Opt: tr.opt, Ranks: make([]Rank, len(tr.ranks))}
	for i := range tr.ranks {
		st := &tr.ranks[i]
		rk := Rank{
			Rank:     i,
			Samples:  st.samples,
			Segments: st.segs,
			Breaks:   st.breaks,
		}
		if dom, ok := rk.Dominant(); ok {
			rk.DriftPPM = dom.Drift * 1e6
			rk.JitterRMS = dom.ResidRMS
			committed := 0
			for _, s := range st.segs {
				committed += s.N
			}
			if committed > 0 {
				rk.Stability = float64(dom.N) / float64(committed)
			}
		}
		rk.Anomalous = len(rk.Breaks) > 0 ||
			math.Abs(rk.DriftPPM) > tr.opt.DriftPPMMax ||
			rk.JitterRMS > tr.opt.JitterMax
		rep.Ranks[i] = rk
	}
	return rep
}
