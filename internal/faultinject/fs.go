package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"sync"
)

// FS is an in-memory spill filesystem with an optional shared byte
// quota. It structurally implements stream.SpillFS, so tests can run
// the spill path without touching disk and can make it fail with
// ErrNoSpace at an exact byte count. A FailCreates budget makes the
// first n Create calls fail outright, modeling an unwritable spill
// directory.
type FS struct {
	mu          sync.Mutex
	files       map[string][]byte
	quota       int64 // remaining bytes; < 0 means unlimited
	failCreates int
	creates     int
	opens       int
}

// NewFS returns an FS with the given shared quota; quota < 0 means
// unlimited.
func NewFS(quota int64) *FS {
	return &FS{files: map[string][]byte{}, quota: quota}
}

// FailCreates makes the next n Create calls return ErrNoSpace.
func (fs *FS) FailCreates(n int) {
	fs.mu.Lock()
	fs.failCreates = n
	fs.mu.Unlock()
}

// Stats reports how many files were created and opened.
func (fs *FS) Stats() (creates, opens int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.creates, fs.opens
}

// Len reports the stored size of a file, or -1 if it does not exist.
func (fs *FS) Len(name string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if b, ok := fs.files[name]; ok {
		return len(b)
	}
	return -1
}

func (fs *FS) Create(name string) (io.WriteCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failCreates > 0 {
		fs.failCreates--
		return nil, ErrNoSpace
	}
	fs.creates++
	fs.files[name] = nil
	return &fsWriter{fs: fs, name: name}, nil
}

func (fs *FS) Open(name string) (io.ReadCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	b, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("faultinject: open %s: no such file", name)
	}
	fs.opens++
	return io.NopCloser(bytes.NewReader(b)), nil
}

type fsWriter struct {
	fs     *FS
	name   string
	closed bool
}

func (w *fsWriter) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("faultinject: write %s: file closed", w.name)
	}
	n := len(p)
	if w.fs.quota >= 0 {
		if int64(n) > w.fs.quota {
			n = int(w.fs.quota)
		}
		w.fs.quota -= int64(n)
	}
	w.fs.files[w.name] = append(w.fs.files[w.name], p[:n]...)
	if n < len(p) {
		return n, ErrNoSpace
	}
	return n, nil
}

func (w *fsWriter) Close() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.closed = true
	return nil
}
