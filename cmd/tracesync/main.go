// Command tracesync applies postmortem timestamp synchronization to a
// trace file produced by tracegen: a base correction (offset alignment,
// linear interpolation, or an error-estimation method) optionally followed
// by the controlled logical clock, reporting clock-condition violations
// before and after. With -all it compares every method side by side.
//
// Binary traces stream by default: events are decoded incrementally and
// the corrections run online in memory bounded by the reorder window, not
// the trace length. -legacy forces the in-memory path, which is also the
// automatic fallback for JSON traces, -all, the error-estimation bases,
// and CLC variants the streaming engine does not support.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tsync/internal/analysis"
	"tsync/internal/clc"
	"tsync/internal/core"
	"tsync/internal/exitcode"
	"tsync/internal/experiments"
	"tsync/internal/fingerprint"
	"tsync/internal/measure"
	"tsync/internal/prof"
	"tsync/internal/render"
	"tsync/internal/stream"
	"tsync/internal/trace"
)

type sidecar struct {
	Init []measure.Offset `json:"init"`
	Fin  []measure.Offset `json:"fin"`
}

type options struct {
	in, out, base string
	withCLC       bool
	all           bool
	legacy        bool
	window        int
	batch         int
	shards        int
	spill         string
	workers       int
	salvage       bool
	maxSkip       int64
	fingerprint   bool
	autoknots     bool
	timeout       time.Duration
	cpuprofile    string
	memprofile    string
}

func main() {
	var o options
	flag.StringVar(&o.in, "i", "trace.etr", "input trace file")
	flag.StringVar(&o.out, "o", "", "write the corrected trace here (optional)")
	flag.StringVar(&o.base, "base", "interp", "base correction: none, align, interp, duda-regression, duda-convex-hull, hofmann-minmax")
	flag.BoolVar(&o.withCLC, "clc", true, "apply the controlled logical clock after the base correction")
	flag.BoolVar(&o.all, "all", false, "compare all correction methods instead (in-memory)")
	flag.BoolVar(&o.legacy, "legacy", false, "force the in-memory path instead of streaming")
	flag.IntVar(&o.window, "window", 0, "streaming reorder window: max pending items per rank (0 = default 65536)")
	flag.IntVar(&o.batch, "batch", 0, "streaming slab size in events per stage hand-off (0 = default 4096); output is identical for any value")
	flag.IntVar(&o.shards, "shards", 0, "streaming merge-tree fan-out: sub-merges feeding the root merge (0 = automatic from the rank count, 1 = flat); output is identical for any value")
	flag.StringVar(&o.spill, "spill", "spill", "streaming window overflow policy: spill (unbounded, recorded) or error (fail fast)")
	flag.IntVar(&o.workers, "workers", 0, "parallel worker bound for -all and streaming assembly (0 = all CPUs); results are identical for any value")
	flag.BoolVar(&o.salvage, "salvage", false, "resynchronize past corruption in v2 traces (streaming only); exits 3 when data was lost")
	flag.Int64Var(&o.maxSkip, "max-skip", 0, "salvage budget: max bytes to skip before giving up (0 = unlimited)")
	flag.BoolVar(&o.fingerprint, "fingerprint", false, "print the per-rank drift fingerprint alongside the correction report (streaming only)")
	flag.BoolVar(&o.autoknots, "autoknots", false, "replace -base with a piecewise correction whose knots sit at fingerprint-detected clock breaks (streaming only)")
	flag.DurationVar(&o.timeout, "timeout", 0, "abort the run after this long (0 = no limit)")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
	flag.StringVar(&o.memprofile, "memprofile", "", "write an allocation profile to this file after the run")
	flag.Parse()

	stop, err := prof.Start(o.cpuprofile, o.memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesync:", err)
		os.Exit(1)
	}
	partial, err := run(o)
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesync:", err)
	} else if partial {
		fmt.Fprintln(os.Stderr, "tracesync: output is partial (salvaged from a damaged trace)")
	}
	os.Exit(exitcode.From(err, partial))
}

func loadSidecar(in string) (sidecar, bool, error) {
	var side sidecar
	blob, err := os.ReadFile(in + ".offsets.json")
	if err != nil {
		return side, false, nil
	}
	if err := json.Unmarshal(blob, &side); err != nil {
		return side, false, fmt.Errorf("offset sidecar: %w", err)
	}
	return side, true, nil
}

func printCensus(label string, c analysis.Census) {
	fmt.Printf("%-8s %6d messages, %5d reversed (%.2f%%), %5d clock-condition violations (incl. %d logical reversed)\n",
		label, c.Messages, c.Reversed, c.PctReversed(), c.ClockCondition, c.ReversedLogical)
}

func printReport(before, after analysis.Census, rep clc.Report, dist analysis.Distortion, withCLC bool) {
	printCensus("before:", before)
	printCensus("after:", after)
	if withCLC {
		fmt.Printf("\nCLC: %d -> %d violations (γ-scaled), %d events moved, max advance %s µs\n",
			rep.ViolationsBefore, rep.ViolationsAfter, rep.EventsMoved, render.Micro(rep.MaxAdvance))
	}
	fmt.Printf("interval distortion: max %s µs, mean %s µs, %d of %d intervals shrunk\n",
		render.Micro(dist.MaxAbs), render.Micro(dist.MeanAbs), dist.Shrunk, dist.N)
}

func run(o options) (bool, error) {
	side, haveOffsets, err := loadSidecar(o.in)
	if err != nil {
		return false, err
	}
	needsOffsets := o.all || o.base == "align" || o.base == "interp"
	if needsOffsets && !haveOffsets {
		return false, fmt.Errorf("no %s.offsets.json sidecar: alignment/interpolation need the offset tables (generate traces with tracegen, or use -base none/duda-*/hofmann-minmax)", o.in)
	}

	if !o.legacy && !o.all && !strings.HasSuffix(o.in, ".json") {
		partial, err := runStreaming(o, side)
		if err == nil || !errors.Is(err, stream.ErrUnsupported) {
			return partial, err
		}
		fmt.Fprintf(os.Stderr, "tracesync: falling back to the in-memory path: %v\n", err)
	}
	if o.salvage {
		return false, errors.New("-salvage needs the streaming path; it cannot combine with -legacy, -all, or JSON input")
	}
	if o.fingerprint || o.autoknots {
		return false, errors.New("-fingerprint and -autoknots need the streaming path; they cannot combine with -legacy, -all, or JSON input")
	}
	return false, runLegacy(o, side)
}

// printLoss reports what salvage could not recover, one line per
// affected rank. retained carries each rank's retained event count so
// losses can be expressed as percentages; a rank whose expected total
// is unknowable (destroyed header) prints "?" instead of a number.
func printLoss(rep *trace.CorruptionReport, loss []stream.RankLoss, retained []trace.ProcHeader) {
	fmt.Printf("\nsalvage: %d incidents, %d bytes skipped", len(rep.Incidents), rep.SkippedBytes)
	if rep.LostEvents > 0 {
		fmt.Printf(", %d events known lost", rep.LostEvents)
	}
	if rep.UnknownLoss {
		fmt.Printf(", further loss uncountable")
	}
	fmt.Println()
	for _, l := range loss {
		if !l.Any() {
			continue
		}
		fmt.Printf("  rank %d:", l.Rank)
		if l.LostEvents > 0 {
			fmt.Printf(" %d events lost", l.LostEvents)
			if l.Rank >= 0 && l.Rank < len(retained) {
				if pct, ok := l.LossPct(int64(retained[l.Rank].EventCount)); ok {
					fmt.Printf(" (%.1f%%)", pct)
				} else {
					fmt.Printf(" (?%%)")
				}
			}
		}
		if l.Unknown {
			fmt.Printf(" unknown loss")
		}
		if l.SkippedBytes > 0 {
			fmt.Printf(" %d bytes skipped (%d incidents)", l.SkippedBytes, l.Incidents)
		}
		if l.DroppedSends > 0 {
			fmt.Printf(" %d sends dropped", l.DroppedSends)
		}
		if l.OrphanRecvs > 0 {
			fmt.Printf(" %d receives orphaned", l.OrphanRecvs)
		}
		if l.BrokenCollectives > 0 {
			fmt.Printf(" %d collective records broken", l.BrokenCollectives)
		}
		fmt.Println()
	}
}

func runStreaming(o options, side sidecar) (bool, error) {
	b, err := core.ParseBase(o.base)
	if err != nil {
		return false, err
	}
	policy, err := stream.ParsePolicy(o.spill)
	if err != nil {
		return false, err
	}
	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	f, err := os.Open(o.in)
	if err != nil {
		return false, err
	}
	defer f.Close()
	src, err := stream.NewSourceOpts(f, stream.SourceOptions{Salvage: o.salvage, MaxSkipBytes: o.maxSkip})
	if err != nil {
		return false, err
	}
	p := stream.Pipeline{
		Base: b, CLC: o.withCLC,
		Options: stream.Options{Window: o.window, Policy: policy, Workers: o.workers, Batch: o.batch, Shards: o.shards, Salvage: o.salvage},
	}
	if o.fingerprint {
		p.Fingerprint = &fingerprint.Options{}
	}
	if o.autoknots {
		// A fingerprint pre-pass places the interpolation knots at the
		// detected clock breaks; the resulting piecewise correction
		// replaces the -base mapping.
		rep, _, err := stream.FingerprintContext(ctx, src, p.Options, fingerprint.Options{})
		if err != nil {
			return false, err
		}
		corr, degraded, err := rep.AutoCorrection()
		if err != nil {
			return false, err
		}
		p.Correction = corr
		knots := 0
		for r := 0; r < src.Ranks(); r++ {
			knots += len(rep.Knots(r))
		}
		fmt.Printf("autoknots: %d breaks diagnosed, %d knots placed (replacing -base %s)\n", rep.Breaks(), knots, o.base)
		if len(degraded) > 0 {
			fmt.Printf("autoknots: ranks %v degraded to a single affine piece (clock resets rewind local time)\n", degraded)
		}
	}
	var outW *os.File
	if o.out != "" {
		if outW, err = os.Create(o.out); err != nil {
			return false, err
		}
	}
	res, err := p.RunContext(ctx, src, writerOrNil(outW), side.Init, side.Fin)
	if outW != nil {
		if cerr := outW.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return false, err
	}
	h := src.Header()
	window := o.window
	if window <= 0 {
		window = stream.DefaultWindow
	}
	fmt.Printf("trace: %s on %s with %s timer, %d events (streaming, window %d, policy %s)\n\n",
		o.in, h.Machine, h.Timer, res.Stats.Events, window, policy)
	printReport(res.Before, res.After, res.CLCReport, res.Distortion, o.withCLC)
	fmt.Printf("streaming: peak %d pending items on one rank", res.Stats.MaxPending)
	if res.Stats.SpilledEvents > 0 {
		fmt.Printf(", %d insertions spilled past the window", res.Stats.SpilledEvents)
	}
	fmt.Println()
	if res.Fingerprint != nil {
		fmt.Println()
		if err := res.Fingerprint.WriteText(os.Stdout); err != nil {
			return false, err
		}
	}
	if o.out != "" {
		fmt.Printf("corrected trace written to %s\n", o.out)
	}
	if src.Salvaged() {
		printLoss(src.Report(), res.Stats.Loss, src.Procs())
		return true, nil
	}
	return false, nil
}

// writerOrNil keeps the nil check on the interface value honest: a nil
// *os.File inside a non-nil io.Writer interface would defeat the
// "out == nil means analysis only" contract.
func writerOrNil(f *os.File) io.Writer {
	if f == nil {
		return nil
	}
	return f
}

func runLegacy(o options, side sidecar) error {
	f, err := os.Open(o.in)
	if err != nil {
		return err
	}
	var tr *trace.Trace
	if strings.HasSuffix(o.in, ".json") {
		tr, err = trace.ReadJSON(f)
	} else {
		tr, err = trace.Read(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	if o.all {
		rows, err := experiments.CompareCorrections(tr, side.Init, side.Fin, o.workers)
		if err != nil {
			return err
		}
		var cells [][]string
		for _, r := range rows {
			if r.Err != nil {
				cells = append(cells, []string{r.Method, "error: " + r.Err.Error(), "", ""})
				continue
			}
			cells = append(cells, []string{
				r.Method,
				fmt.Sprintf("%d", r.Violations),
				render.Micro(r.Distortion.MaxAbs),
				render.Micro(r.Distortion.MeanAbs),
			})
		}
		fmt.Print(render.Table(
			[]string{"method", "violations left", "max |Δinterval| µs", "mean |Δinterval| µs"},
			cells))
		return nil
	}

	b, err := core.ParseBase(o.base)
	if err != nil {
		return err
	}
	res, err := (core.Pipeline{Base: b, CLC: o.withCLC, Parallel: true}).Run(tr, side.Init, side.Fin)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %s on %s with %s timer, %d events\n\n", o.in, tr.Machine, tr.Timer, tr.EventCount())
	printReport(res.Before, res.After, res.CLCReport, res.Distortion, o.withCLC)

	if o.out != "" {
		g, err := os.Create(o.out)
		if err != nil {
			return err
		}
		_, err = trace.Write(g, res.Trace)
		if cerr := g.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("corrected trace written to %s\n", o.out)
	}
	return nil
}
