package stream_test

// Cancellation tests: a canceled context must surface promptly as
// ctx.Err(), release every decode goroutine, and leave no spill temp
// files behind. The trigger is a deterministic read hook, not a timer —
// the tests contain no wall-clock sleeps at all.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"

	"tsync/internal/core"
	"tsync/internal/faultinject"
	"tsync/internal/stream"
	"tsync/internal/xrand"
)

const cancelSeed = 0xcafe1e7e

// waitGoroutines yields until the goroutine count drops back to base,
// bounded by a generous retry budget instead of a timer.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if runtime.NumGoroutine() <= base {
			return
		}
		runtime.Gosched()
	}
	t.Errorf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestCancelPipeline: canceling mid-decode stops the run with
// context.Canceled, releases the decode goroutines, and removes the
// spill directory.
func TestCancelPipeline(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := stream.Synth(stream.SynthSpec{
		Ranks: 3, Steps: 2000, CollEvery: 4, Seed: xrand.SeedAt(cancelSeed, 0),
	}, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, workers := range []int{1, 4} {
		tmp := t.TempDir()
		t.Setenv("TMPDIR", tmp)
		base := runtime.NumGoroutine()

		var cancel context.CancelFunc
		hook := &faultinject.HookReaderAt{
			R:      bytes.NewReader(data),
			Offset: math.MaxInt64, // inert while the index pass scans the file
			Fn:     func() { cancel() },
		}
		src, err := stream.NewSource(hook)
		if err != nil {
			t.Fatal(err)
		}
		// arm the hook: the walk's cursors re-read the event sections, so
		// the first decode to cross the middle of the file cancels the run
		hook.Offset = int64(len(data)) / 2
		var ctx context.Context
		ctx, cancel = context.WithCancel(context.Background())

		var out bytes.Buffer
		_, err = (stream.Pipeline{
			Base:    core.BaseNone,
			CLC:     true,
			Options: stream.Options{Workers: workers},
		}).RunContext(ctx, src, &out, nil, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers %d: want context.Canceled, got %v", workers, err)
		}
		cancel()
		waitGoroutines(t, base)
		ents, rerr := os.ReadDir(tmp)
		if rerr != nil {
			t.Fatal(rerr)
		}
		for _, e := range ents {
			t.Errorf("workers %d: leftover spill entry after cancellation: %s", workers, e.Name())
		}
	}
}

// TestCancelBeforeStart: an already-canceled context fails every
// streaming entry point without doing any work.
func TestCancelBeforeStart(t *testing.T) {
	path, _, _ := synthFile(t, stream.SynthSpec{
		Ranks: 2, Steps: 20, Seed: xrand.SeedAt(cancelSeed, 1),
	})
	src := openSource(t, path)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := (stream.Pipeline{Base: core.BaseNone}).RunContext(ctx, src, nil, nil, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext: want context.Canceled, got %v", err)
	}
	if _, _, err := stream.SummarizeContext(ctx, src); !errors.Is(err, context.Canceled) {
		t.Errorf("SummarizeContext: want context.Canceled, got %v", err)
	}
	if _, _, err := stream.CensusContext(ctx, src, stream.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("CensusContext: want context.Canceled, got %v", err)
	}
	var out bytes.Buffer
	if _, err := stream.LamportScheduleContext(ctx, src, 1e-6, &out, stream.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("LamportScheduleContext: want context.Canceled, got %v", err)
	}
}

// cancelWriter cancels a context on its first Write, putting the
// cancellation inside the fused assemble/encode stage.
type cancelWriter struct {
	out  bytes.Buffer
	fn   func()
	once sync.Once
}

func (w *cancelWriter) Write(p []byte) (int, error) {
	w.once.Do(w.fn)
	return w.out.Write(p)
}

// cancelFS cancels a context on its first Create, putting the
// cancellation inside the parallel assembly stage.
type cancelFS struct {
	*faultinject.FS
	fn   func()
	once *sync.Once
}

func (c cancelFS) Create(name string) (io.WriteCloser, error) {
	c.once.Do(c.fn)
	return c.FS.Create(name)
}

// TestCancelAssemble: cancellation that first lands during the
// output-assembly sweep — after the analysis walk already finished —
// still aborts with ctx.Err(), serial (fused measure+encode) and
// parallel (per-rank temp blocks) alike.
func TestCancelAssemble(t *testing.T) {
	path, _, _ := synthFile(t, stream.SynthSpec{
		Ranks: 3, Steps: 3000, Seed: xrand.SeedAt(cancelSeed, 2),
	})
	src := openSource(t, path)

	// serial: the encode stage's first header write cancels; the next
	// slab boundary notices
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	w := &cancelWriter{fn: cancel}
	_, err := (stream.Pipeline{Base: core.BaseNone}).RunContext(ctx, src, w, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("serial: want context.Canceled, got %v", err)
	}
	cancel()
	waitGoroutines(t, base)

	// parallel: the first per-rank block Create cancels; the per-event
	// context checks in the rank workers notice
	base = runtime.NumGoroutine()
	ctx, cancel = context.WithCancel(context.Background())
	fs := cancelFS{FS: faultinject.NewFS(-1), fn: cancel, once: &sync.Once{}}
	var out bytes.Buffer
	_, err = (stream.Pipeline{
		Base:    core.BaseNone,
		Options: stream.Options{Workers: 4, SpillFS: fs},
	}).RunContext(ctx, src, &out, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel: want context.Canceled, got %v", err)
	}
	cancel()
	waitGoroutines(t, base)
}

// TestCancelSourceIndex: cancelling during the index pass aborts
// NewSourceContext with ctx.Err(); a pre-cancelled context fails before
// scanning any process section.
func TestCancelSourceIndex(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := stream.Synth(stream.SynthSpec{
		Ranks: 3, Steps: 4000, CollEvery: 4, Seed: xrand.SeedAt(cancelSeed, 99),
	}, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var cancel context.CancelFunc
	hook := &faultinject.HookReaderAt{
		R:      bytes.NewReader(data),
		Offset: int64(len(data)) / 2, // the index pass crosses mid-file
		Fn:     func() { cancel() },
	}
	var ctx context.Context
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	if _, err := stream.NewSourceContext(ctx, hook, stream.SourceOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-index cancel: want context.Canceled, got %v", err)
	}

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := stream.NewSourceContext(pre, bytes.NewReader(data), stream.SourceOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: want context.Canceled, got %v", err)
	}
}
