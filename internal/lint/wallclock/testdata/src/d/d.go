// Package d is the directive fixture for the wallclock analyzer: a
// justified math/rand import stays silent while an unjustified use of the
// same package elsewhere would be flagged (see package a).
package d

import (
	"math/rand" //tsync:wallclock — shuffles display order of a diagnostics report; never feeds a simulation result
	"time"
)

// ShuffleReport permutes diagnostic lines for display only.
func ShuffleReport(lines []string) {
	rand.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
}

// Elapsed is a suppressed diagnostics timer next to an unsuppressed one.
func Elapsed() {
	_ = time.Now() //tsync:wallclock — diagnostics-only; value is discarded above
	_ = time.Now() // want `time.Now outside cmd/`
}
