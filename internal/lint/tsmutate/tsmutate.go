// Package tsmutate defines an analyzer that confines mutation of
// trace.Event.Time to the sanctioned correction packages.
//
// Event.Time is the local timestamp whose violations of the clock
// condition t_recv >= t_send + l_min (Eq. 1 of the paper) are the
// phenomenon under study. The whole value of the repository rests on
// knowing exactly which code is allowed to rewrite it: the controlled
// logical clock (internal/clc, Eq. 3), the offset interpolation layer
// (internal/interp), the error estimators (internal/errest), and the
// shared pipeline kernels (internal/core) — plus internal/trace itself,
// which owns the type and exposes the audited setter
// (*trace.Event).SetTime. A stray `ev.Time = ...` anywhere else silently
// re-introduces the very clock-condition violations the pipeline exists
// to remove, and nothing downstream can tell.
//
// The analyzer reports assignments (including op-assign and ++/--) whose
// left-hand side is the Time field of internal/trace's Event, outside the
// sanctioned packages and outside _test.go files (tests legitimately
// forge broken timestamps to create the scenarios under test).
//
// Suppression: a "tsync:tsmutate" comment on the flagged line, naming
// why the direct write is sound there (e.g. a fault injector that exists
// to forge clock-condition violations).
package tsmutate

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tsync/internal/lint"
)

const doc = `flag writes to trace.Event.Time outside the correction pipeline

Only internal/clc, internal/interp, internal/errest, internal/core and
internal/trace may rewrite the local timestamp; everyone else goes through
(*trace.Event).SetTime so mutation stays greppable and auditable.`

// Analyzer is the tsmutate analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "tsmutate",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// directive is the per-line suppression marker.
const directive = "tsync:tsmutate"

// sanctioned lists the package-path suffixes allowed to assign to
// Event.Time directly: the correction pipeline plus the owning package.
var sanctioned = []string{
	"internal/clc",
	"internal/interp",
	"internal/errest",
	"internal/core",
	"internal/trace",
}

func run(pass *analysis.Pass) (any, error) {
	for _, s := range sanctioned {
		if lint.PathHasSuffix(pass.Pkg.Path(), s) {
			return nil, nil
		}
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.AssignStmt)(nil), (*ast.IncDecStmt)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkLHS(pass, lhs)
			}
		case *ast.IncDecStmt:
			checkLHS(pass, n.X)
		}
	})
	return nil, nil
}

// checkLHS reports lhs if it denotes the Time field of trace.Event.
func checkLHS(pass *analysis.Pass, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Time" {
		return
	}
	if !isTraceEvent(pass.TypesInfo.TypeOf(sel.X)) {
		return
	}
	if lint.IsTestFile(pass, lhs.Pos()) {
		return
	}
	if lint.HasLineDirective(pass, lhs.Pos(), directive) {
		return
	}
	pass.Reportf(lhs.Pos(), "assignment to trace.Event.Time outside the correction pipeline: only internal/{clc,interp,errest,core,trace} may rewrite local timestamps; call (*trace.Event).SetTime and keep the mutation auditable")
}

// isTraceEvent reports whether t is internal/trace's Event struct (or a
// pointer to it).
func isTraceEvent(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Event" || obj.Pkg() == nil {
		return false
	}
	return lint.PathHasSuffix(obj.Pkg().Path(), "internal/trace")
}
