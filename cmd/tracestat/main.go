// Command tracestat inspects a trace file: descriptive statistics, the
// clock-condition violation census, and a Late Sender wait-state analysis
// showing how far the measured waiting times deviate from the simulation's
// ground truth — the "false conclusions" the paper warns about. With
// -json it dumps the full trace as JSON instead.
//
// Binary traces stream by default: the summary and census are computed
// in memory bounded by the reorder window. The wait-state, latency, and
// region-profile analyses accumulate floats in an order defined by the
// in-memory trace, so they (and -json/-timeline) run on the legacy path,
// which -legacy also forces.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tsync/internal/analysis"
	"tsync/internal/exitcode"
	"tsync/internal/fingerprint"
	"tsync/internal/render"
	"tsync/internal/stream"
	"tsync/internal/trace"
)

type options struct {
	in          string
	jsonOut     bool
	timeline    bool
	legacy      bool
	window      int
	spill       string
	shards      int
	salvage     bool
	maxSkip     int64
	fingerprint bool
	timeout     time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.in, "i", "trace.etr", "input trace file")
	flag.BoolVar(&o.jsonOut, "json", false, "dump the trace as JSON to stdout (in-memory)")
	flag.BoolVar(&o.timeline, "timeline", false, "render a message time-line of the densest second (in-memory)")
	flag.BoolVar(&o.legacy, "legacy", false, "force the in-memory path (adds wait-state, latency, and region-profile analyses)")
	flag.IntVar(&o.window, "window", 0, "streaming reorder window: max pending items per rank (0 = default 65536)")
	flag.StringVar(&o.spill, "spill", "spill", "streaming window overflow policy: spill or error")
	flag.IntVar(&o.shards, "shards", 0, "streaming merge-tree fan-out: sub-merges feeding the root merge (0 = automatic from the rank count, 1 = flat); results are identical for any value")
	flag.BoolVar(&o.salvage, "salvage", false, "resynchronize past corruption in v2 traces; exits 3 when data was lost")
	flag.Int64Var(&o.maxSkip, "max-skip", 0, "salvage budget: max bytes to skip before giving up (0 = unlimited)")
	flag.BoolVar(&o.fingerprint, "fingerprint", false, "per-rank drift fingerprint: drift rate, jitter, and clock-fault diagnosis (streaming only)")
	flag.DurationVar(&o.timeout, "timeout", 0, "abort the run after this long (0 = no limit)")
	flag.Parse()

	partial, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
	} else if partial {
		fmt.Fprintln(os.Stderr, "tracestat: output is partial (salvaged from a damaged trace)")
	}
	os.Exit(exitcode.From(err, partial))
}

// withTimeout derives the run context from the -timeout flag.
func withTimeout(o options) (context.Context, context.CancelFunc) {
	if o.timeout > 0 {
		return context.WithTimeout(context.Background(), o.timeout)
	}
	return context.WithCancel(context.Background())
}

// printLoss reports what salvage could not recover, one line per
// affected rank. retained carries each rank's retained event count so
// losses can be expressed as percentages; a rank whose expected total
// is unknowable (destroyed header) prints "?" instead of a number.
func printLoss(rep *trace.CorruptionReport, loss []stream.RankLoss, retained []trace.ProcHeader) {
	fmt.Printf("\nsalvage: %d incidents, %d bytes skipped", len(rep.Incidents), rep.SkippedBytes)
	if rep.LostEvents > 0 {
		fmt.Printf(", %d events known lost", rep.LostEvents)
	}
	if rep.UnknownLoss {
		fmt.Printf(", further loss uncountable")
	}
	fmt.Println()
	for _, l := range loss {
		if !l.Any() {
			continue
		}
		fmt.Printf("  rank %d:", l.Rank)
		if l.LostEvents > 0 {
			fmt.Printf(" %d events lost", l.LostEvents)
			if l.Rank >= 0 && l.Rank < len(retained) {
				if pct, ok := l.LossPct(int64(retained[l.Rank].EventCount)); ok {
					fmt.Printf(" (%.1f%%)", pct)
				} else {
					fmt.Printf(" (?%%)")
				}
			}
		}
		if l.Unknown {
			fmt.Printf(" unknown loss")
		}
		if l.SkippedBytes > 0 {
			fmt.Printf(" %d bytes skipped (%d incidents)", l.SkippedBytes, l.Incidents)
		}
		if l.DroppedSends > 0 {
			fmt.Printf(" %d sends dropped", l.DroppedSends)
		}
		if l.OrphanRecvs > 0 {
			fmt.Printf(" %d receives orphaned", l.OrphanRecvs)
		}
		if l.BrokenCollectives > 0 {
			fmt.Printf(" %d collective records broken", l.BrokenCollectives)
		}
		fmt.Println()
	}
}

func printCensus(c analysis.Census) {
	fmt.Printf("\nclock-condition census (recorded timestamps):\n")
	fmt.Printf("  %d messages, %d reversed (%.2f%%), %d violate t_recv >= t_send + l_min\n",
		c.Messages, c.Reversed, c.PctReversed(), c.ClockCondition)
	fmt.Printf("  %d logical messages from collectives, %d reversed\n",
		c.LogicalMessages, c.ReversedLogical)
}

func run(o options) (bool, error) {
	if o.legacy || o.jsonOut || o.timeline || strings.HasSuffix(o.in, ".json") {
		if o.fingerprint {
			return false, fmt.Errorf("-fingerprint needs the streaming path; it cannot combine with -legacy, -json, -timeline, or JSON input")
		}
		return false, runLegacy(o)
	}
	return runStreaming(o)
}

func runStreaming(o options) (bool, error) {
	policy, err := stream.ParsePolicy(o.spill)
	if err != nil {
		return false, err
	}
	ctx, cancel := withTimeout(o)
	defer cancel()
	f, err := os.Open(o.in)
	if err != nil {
		return false, err
	}
	defer f.Close()
	src, err := stream.NewSourceOpts(f, stream.SourceOptions{Salvage: o.salvage, MaxSkipBytes: o.maxSkip})
	if err != nil {
		return false, err
	}
	sum, _, err := stream.SummarizeContext(ctx, src)
	if err != nil {
		return false, err
	}
	fmt.Print(sum.String())
	census, stats, err := stream.CensusContext(ctx, src, stream.Options{Window: o.window, Policy: policy, Shards: o.shards, Salvage: o.salvage})
	if err != nil {
		return false, err
	}
	printCensus(census)
	fmt.Printf("\nstreaming: peak %d pending items on one rank", stats.MaxPending)
	if stats.SpilledEvents > 0 {
		fmt.Printf(", %d insertions spilled past the window", stats.SpilledEvents)
	}
	fmt.Println("; run with -legacy for wait-state, latency, and region-profile analyses")
	if o.fingerprint {
		rep, _, err := stream.FingerprintContext(ctx, src, stream.Options{Salvage: o.salvage}, fingerprint.Options{})
		if err != nil {
			return false, err
		}
		fmt.Println()
		if err := rep.WriteText(os.Stdout); err != nil {
			return false, err
		}
	}
	if src.Salvaged() {
		printLoss(src.Report(), stats.Loss, src.Procs())
		return true, nil
	}
	return false, nil
}

func runLegacy(o options) error {
	f, err := os.Open(o.in)
	if err != nil {
		return err
	}
	var tr *trace.Trace
	if strings.HasSuffix(o.in, ".json") {
		tr, err = trace.ReadJSON(f)
	} else {
		tr, err = trace.Read(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if o.jsonOut {
		return trace.WriteJSON(os.Stdout, tr)
	}
	fmt.Print(trace.Summarize(tr).String())

	census, err := analysis.CensusOf(tr)
	if err != nil {
		return err
	}
	printCensus(census)

	if prof, err := analysis.ProfileRegions(tr, false); err == nil && len(prof) > 0 {
		fmt.Printf("\nregion profile (recorded timestamps):\n")
		for _, rp := range prof {
			flag := ""
			if rp.Negative > 0 {
				flag = fmt.Sprintf("   <- %d negative durations (clock error!)", rp.Negative)
			}
			fmt.Printf("  %-22q %6d visits, incl %10.1f µs, excl %10.1f µs%s\n",
				rp.Region, rp.Visits, rp.Inclusive*1e6, rp.Exclusive*1e6, flag)
		}
	}

	lat, err := analysis.MessageLatencies(tr, false)
	if err == nil && lat.Stats.N() > 0 {
		fmt.Printf("\napparent one-way latencies (recorded timestamps):\n")
		fmt.Printf("  mean %.2f µs, min %.2f µs, max %.2f µs — %d of %d negative (impossible)\n",
			lat.Stats.Mean()*1e6, lat.Stats.Min()*1e6, lat.Stats.Max()*1e6, lat.Negative, lat.Stats.N())
	}

	measured, err := analysis.LateSender(tr, false)
	if err != nil {
		return err
	}
	oracle, err := analysis.LateSender(tr, true)
	if err != nil {
		return err
	}
	fmt.Printf("\nLate Sender wait states:\n")
	fmt.Printf("  ground truth:  %5d instances, total %.1f µs, max %.2f µs\n",
		oracle.LateSenders, oracle.TotalWait*1e6, oracle.MaxWait*1e6)
	fmt.Printf("  from trace:    %5d instances, total %.1f µs, max %.2f µs\n",
		measured.LateSenders, measured.TotalWait*1e6, measured.MaxWait*1e6)
	if oracle.TotalWait > 0 {
		errPct := 100 * (measured.TotalWait - oracle.TotalWait) / oracle.TotalWait
		fmt.Printf("  quantification error from timestamp inaccuracy: %+.1f%%\n", errPct)
	}

	if o.timeline {
		s := trace.Summarize(tr)
		// render the window around the first recorded event span
		var t0 float64
		found := false
		for _, p := range tr.Procs {
			if len(p.Events) > 0 && (!found || p.Events[0].True < t0) {
				t0 = p.Events[0].True
				found = true
			}
		}
		if found {
			out, err := render.MessageTimeline(tr, t0, t0+s.SpanTrue+1e-9, 100)
			if err != nil {
				fmt.Printf("\n(no message time-line: %v)\n", err)
			} else {
				fmt.Printf("\n%s", out)
			}
		}
	}
	return nil
}
