package locked_test

import (
	"testing"

	"tsync/internal/lint/linttest"
	"tsync/internal/lint/locked"
)

func TestLocked(t *testing.T) {
	linttest.Run(t, locked.Analyzer, "a", "b")
}
