// Ompsemantics reproduces the shared-memory side of the paper (Figs. 3
// and 8): on an SMP node whose chips carry their own unsynchronized
// timestamp counters, traces of OpenMP parallel regions violate POMP event
// semantics — threads appear to leave barriers before others entered, or
// to enter regions before the master forked them. The effect is worst with
// few threads, because OpenMP synchronization latencies are then smaller
// than the inter-chip clock disagreement.
//
// Run with: go run ./examples/ompsemantics
package main

import (
	"fmt"
	"log"

	"tsync"
	"tsync/internal/experiments"
	"tsync/internal/render"
)

func main() {
	fmt.Println("OpenMP parallel-for benchmark on the 4-chip Itanium SMP node,")
	fmt.Println("POMP event traces, no offset alignment or interpolation:")
	fmt.Println()
	fmt.Printf("%8s  %6s  %7s  %6s  %8s\n", "threads", "any%", "entry%", "exit%", "barrier%")
	var show *experiments.OMPStudyResult
	for _, threads := range []int{4, 8, 12, 16} {
		res, err := tsync.Fig8(threads, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %6.1f  %7.1f  %6.1f  %8.1f\n",
			threads, res.PctAny, res.PctEntry, res.PctExit, res.PctBarrier)
		if show == nil && res.PctAny > 0 {
			show = res
		}
	}
	fmt.Println()
	fmt.Println("with only 4 threads most regions are misrepresented; with 16 threads the")
	fmt.Println("barrier costs more than the clocks disagree, and the trace looks clean.")

	if show == nil {
		return
	}
	reg, inst, ok := render.FirstViolatedRegion(show.Trace)
	if !ok {
		return
	}
	fmt.Printf("\ntime-line of a violated region at %d threads (cf. Fig. 3):\n", show.Threads)
	fmt.Println("F fork  J join  E enter  X exit  [ ] barrier  = inside barrier")
	out, err := render.POMPTimeline(show.Trace, reg, inst, 96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	fmt.Println("\nnote threads leaving the barrier (]) before others have entered ([) —")
	fmt.Println("impossible in reality, but that is what the timestamps claim.")
}
