package ctxflow_test

import (
	"testing"

	"tsync/internal/lint/ctxflow"
	"tsync/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer,
		"tsync/internal/stream", // target package: full contract + directive case
		"tsync/internal/tsyncd", // target package: the PR 10 service entry points
		"b",                     // non-target: only the everywhere rules
	)
}
