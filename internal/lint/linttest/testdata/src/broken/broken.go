// Package broken does not type-check: the harness must surface the
// loader's type-checking error instead of crashing.
package broken

var x int = "not an int"
