package tsync

import (
	"bytes"
	"testing"

	"tsync/internal/mpi"
)

func TestJobRunAndSynchronize(t *testing.T) {
	job := Job{Machine: "xeon", Timer: "tsc", Ranks: 16, Seed: 4, Tracing: true}
	m, err := job.Run(func(r *mpi.Rank) {
		n := r.Size()
		for i := 0; i < 10; i++ {
			r.Send((r.Rank()+1)%n, i, 64, nil)
			r.Recv((r.Rank()-1+n)%n, i)
			r.Compute(100)
			r.Allreduce(8, nil, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Trace.EventCount() == 0 || len(m.Init) != 16 || len(m.Fin) != 16 {
		t.Fatalf("measurement incomplete")
	}
	res, err := Synchronize(m, "interp", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Before.ClockCondition == 0 {
		t.Fatalf("raw trace had no violations to fix")
	}
	if res.CLCReport.ViolationsAfter != 0 {
		t.Fatalf("pipeline left violations")
	}
}

func TestJobValidation(t *testing.T) {
	if _, err := (Job{Machine: "bogus", Ranks: 2}).Run(func(*mpi.Rank) {}); err == nil {
		t.Fatalf("bad machine accepted")
	}
	if _, err := (Job{Timer: "sundial", Ranks: 2}).Run(func(*mpi.Rank) {}); err == nil {
		t.Fatalf("bad timer accepted")
	}
	if _, err := (Job{Ranks: 0}).Run(func(*mpi.Rank) {}); err == nil {
		t.Fatalf("zero ranks accepted")
	}
	if _, err := (Job{Ranks: 2, Placement: "orbit"}).Run(func(*mpi.Rank) {}); err == nil {
		t.Fatalf("bad placement accepted")
	}
}

func TestSynchronizeValidation(t *testing.T) {
	if _, err := Synchronize(nil, "interp", false); err == nil {
		t.Fatalf("nil measurement accepted")
	}
	m := &Measurement{}
	if _, err := Synchronize(m, "interp", false); err == nil {
		t.Fatalf("empty measurement accepted")
	}
}

func TestTraceRoundTripFacade(t *testing.T) {
	job := Job{Ranks: 2, Seed: 1, Tracing: true, Placement: "internode"}
	m, err := job.Run(func(r *mpi.Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, 8, nil)
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, m.Trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.EventCount() != m.Trace.EventCount() {
		t.Fatalf("round trip lost events")
	}
}

func TestFacadeExperimentEntryPoints(t *testing.T) {
	if _, err := Fig4("x", 1); err == nil {
		t.Fatalf("bad panel accepted")
	}
	if _, err := Fig5("x", 1); err == nil {
		t.Fatalf("bad panel accepted")
	}
	if _, err := TableII("nope", 1); err == nil {
		t.Fatalf("bad machine accepted")
	}
	if _, err := Fig7("quake", 1); err == nil {
		t.Fatalf("bad app accepted")
	}
	res, err := Fig8(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.PctAny <= 0 {
		t.Fatalf("Fig8 at 4 threads reported no violations")
	}
}

func TestFacadeFigurePanels(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper panels are slow")
	}
	// run one panel of each figure through the facade
	r4, err := Fig4("a", 3)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Series.MaxAbsDeviation() < 10e-6 {
		t.Fatalf("Fig4a deviation %v implausibly small", r4.Series.MaxAbsDeviation())
	}
	r5, err := Fig5("a", 3)
	if err != nil {
		t.Fatal(err)
	}
	if r5.Series.MaxAbsDeviation() >= r4.Series.MaxAbsDeviation() {
		t.Fatalf("interpolated Fig5a (%v) not better than aligned Fig4a (%v)",
			r5.Series.MaxAbsDeviation(), r4.Series.MaxAbsDeviation())
	}
	r6, err := Fig6(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r6.Exceeded {
		t.Fatalf("Fig6 default seed should exceed the bound")
	}
	rows, err := TableII("xeon", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("TableII rows %d", len(rows))
	}
}

func TestFacadePlacements(t *testing.T) {
	for _, placement := range []string{"interchip", "intercore"} {
		job := Job{Ranks: 2, Seed: 1, Placement: placement, Tracing: true}
		m, err := job.Run(func(r *mpi.Rank) {
			if r.Rank() == 0 {
				r.Send(1, 0, 8, nil)
			} else {
				r.Recv(0, 0)
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", placement, err)
		}
		if m.Trace.EventCount() == 0 {
			t.Fatalf("%s: empty trace", placement)
		}
	}
}
