// Package xrand provides deterministic pseudo-random number generation for
// the simulation substrate.
//
// Reproducibility is a hard requirement of every experiment in this
// repository: a run is a pure function of its configuration, so the same
// seed must produce the same trace on every platform and every Go release.
// The standard library's math/rand does not guarantee a stable stream across
// releases for all helpers, and math/rand/v2 seeds cannot be split into
// hierarchically independent sub-streams, so we implement splitmix64 and
// xoshiro256** directly (public-domain algorithms by Vigna et al.).
//
// The package supports cheap, collision-resistant derivation of sub-streams:
// each simulated oscillator, network link, and workload draws from its own
// Source derived from (experiment seed, component label), so adding a new
// consumer of randomness never perturbs the streams of existing components.
package xrand

import "math"

// splitmix64 advances a 64-bit state and returns the next output.
// It is used for seeding and for stream derivation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeedAt returns the i-th output (0-based) of the splitmix64 stream seeded
// with base, in O(1): splitmix64 advances its state by a fixed additive
// constant, so the state before producing output i is base + i*golden and
// any position of the stream can be computed directly. internal/runner uses
// this to derive per-task seeds that are independent of the order in which
// a worker pool happens to execute the tasks.
func SeedAt(base uint64, i uint64) uint64 {
	state := base + i*0x9e3779b97f4a7c15
	return splitmix64(&state)
}

// Source is a xoshiro256** generator. The zero value is not usable; obtain
// instances with NewSource or Source.Sub.
type Source struct {
	s [4]uint64
	// cached second normal variate from the Box-Muller transform
	gauss    float64
	hasGauss bool
}

// NewSource returns a Source seeded from seed via splitmix64, as recommended
// by the xoshiro authors (never seed xoshiro state directly).
func NewSource(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a nonzero state; splitmix64 output is zero for at
	// most one of the four words, but be defensive anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Sub derives an independent child stream from this source's identity and a
// label. Derivation is stateless with respect to the parent: it hashes the
// parent's *initial-style* identity via its current state. To keep child
// derivation independent of how many values the parent already produced,
// prefer deriving all children right after construction.
func (s *Source) Sub(label string) *Source {
	h := s.s[0] ^ 0x632be59bd9b4e019
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001b3
	}
	h ^= s.s[2]
	return NewSource(h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// simple rejection keeps the stream layout obvious and portable.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Uniform returns a uniform float64 in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, using the Box-Muller transform (both variates are
// consumed, one is cached).
func (s *Source) Normal(mean, stddev float64) float64 {
	if s.hasGauss {
		s.hasGauss = false
		return mean + stddev*s.gauss
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.gauss = v * f
	s.hasGauss = true
	return mean + stddev*u*f
}

// Exponential returns an exponentially distributed float64 with the given
// mean (i.e. rate 1/mean). It panics if mean <= 0.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("xrand: Exponential called with mean <= 0")
	}
	// 1-Float64() avoids log(0).
	return -mean * math.Log(1-s.Float64())
}

// LogNormal returns exp(N(mu, sigma)). Useful for heavy-tailed latency
// jitter, where rare slow network traversals dominate Cristian measurement
// error.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly swaps elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}
