package stream

import (
	"fmt"
	"io"
	"math"

	"tsync/internal/measure"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// SynthSpec parameterizes the synthetic ring workload.
type SynthSpec struct {
	Ranks int
	// Steps is the number of ring steps; each contributes four events per
	// rank (Enter, Send to the right neighbor, Recv from the left one,
	// Exit).
	Steps int
	// CollEvery inserts a collective round (op and root rotate) after
	// every n-th step; zero disables collectives.
	CollEvery int
	Seed      uint64
	// Version selects the output codec (trace.Version1 or
	// trace.Version2); zero means v1, matching the historical bytes.
	Version int
	// FrameEvents sets the v2 frame size; zero selects the default.
	FrameEvents int
	// Columnar emits columnar/delta v2 frames (requires Version2). The
	// decoded events are bit-identical to the row encoding's.
	Columnar bool
	// DistortClock, when set, post-processes every clock reading: it
	// receives the rank, the oracle time t, and the clean clock value c,
	// and returns the value actually recorded. Fault-injection tests use
	// it to model NTP steps, counter resets, and frequency jumps. It
	// distorts the offset-table samples too — a real measurement phase
	// would read the same broken clock.
	DistortClock func(rank int, t, c float64) float64
}

// clockParam is one rank's closed-form clock: constant drift b, offset
// a, and a small sinusoidal modulation (the paper's non-constant drift
// model). The zero value is the identity clock (rank 0).
type clockParam struct{ b, a, amp, om, ph float64 }

// synthClockParam derives rank r's clock deterministically from the
// spec seed — O(1) state, no per-rank table. Any caller deriving the
// same (seed, rank) gets the same clock, which is what lets Synth run
// rank-at-a-time over 10k ranks without materializing 10k params.
func synthClockParam(seed uint64, r int) clockParam {
	if r == 0 {
		return clockParam{}
	}
	rng := xrand.NewSource(xrand.SeedAt(seed, uint64(r)))
	return clockParam{
		b:   rng.Uniform(-5e-5, 5e-5),
		a:   rng.Uniform(-1e-3, 1e-3),
		amp: rng.Uniform(0, 2e-6),
		om:  2 * math.Pi / rng.Uniform(5, 20),
		ph:  rng.Uniform(0, 2*math.Pi),
	}
}

// synthOpSeed is the derivation slot of the collective-op sequence,
// outside the rank range (ranks are bounded well below 1<<20).
const synthOpSeed = 1 << 20

// synthEmitter is one rank's event emission state, reused across all
// steps of the rank and re-pointed rank to rank, so a whole Synth run
// keeps O(1) emission scratch regardless of rank and step counts.
type synthEmitter struct {
	ew      *trace.EventWriter
	rank    int
	p       clockParam
	distort func(rank int, t, c float64) float64
}

// reset points the emitter at rank r.
func (em *synthEmitter) reset(seed uint64, r int) {
	em.rank = r
	em.p = synthClockParam(seed, r)
}

// clock evaluates the rank's clock at oracle time t.
func (em *synthEmitter) clock(t float64) float64 {
	p := em.p
	c := (1+p.b)*t + p.a + p.amp*math.Sin(p.om*t+p.ph)
	if em.distort != nil {
		c = em.distort(em.rank, t, c)
	}
	return c
}

// emit stamps ev with the oracle time and the rank's clock reading and
// writes it.
func (em *synthEmitter) emit(ev trace.Event, t float64) error {
	ev.True = t
	ev.SetTime(em.clock(t))
	return em.ew.Write(&ev)
}

// Synth streams a deterministic synthetic trace to w in O(1) working
// state per live rank: a ring of point-to-point messages with optional
// collective rounds, timestamped by per-rank clocks with constant drift
// plus a small sinusoidal modulation (the paper's non-constant drift
// model). Rank 0 keeps the identity clock. Clock parameters and the
// collective-op sequence are re-derived per rank from the seed instead
// of being materialized up front, so 10k-rank topologies cost no more
// working memory than 2-rank ones (the returned offset tables are the
// only O(ranks) allocation, and they are the product). It returns exact
// initialization and finalization offset tables (sampled from the
// closed-form clocks), so base corrections have the same inputs the
// measurement phase would produce. The generated schedule strictly
// increases oracle time along every happened-before edge, satisfying
// the streaming engine's ordering contract by construction.
func Synth(spec SynthSpec, w io.Writer) (init, fin []measure.Offset, err error) {
	if spec.Ranks < 2 {
		return nil, nil, fmt.Errorf("stream: Synth needs at least 2 ranks, got %d", spec.Ranks)
	}
	if spec.Steps < 1 {
		return nil, nil, fmt.Errorf("stream: Synth needs at least 1 step, got %d", spec.Steps)
	}
	nRanks, steps := spec.Ranks, spec.Steps
	rounds := 0
	if spec.CollEvery > 0 {
		rounds = steps / spec.CollEvery
	}
	const (
		stepDur = 1e-3  // one ring step (or collective round) of oracle time
		epsBase = 1e-6  // per-rank skew within a step
		compute = 50e-6 // local work between Enter and Send / Recv and Exit
	)
	// The total rank skew (nRanks·eps) must stay inside the half step
	// separating every Send from its Recv, or the schedule violates its
	// own happened-before contract; shrink eps once the rank count would
	// overflow that budget (≤250 ranks keeps the historical value, so
	// existing traces are byte-identical).
	eps := epsBase
	if lim := stepDur / 4 / float64(nRanks); lim < eps {
		eps = lim
	}

	allOps := [...]trace.CollOp{
		trace.OpBarrier, trace.OpBcast, trace.OpReduce, trace.OpAllreduce,
		trace.OpGather, trace.OpScatter, trace.OpAllgather, trace.OpAlltoall,
	}

	ew, err := trace.NewEventWriterOpts(w, trace.Header{
		Machine:    fmt.Sprintf("synth[%d]", nRanks),
		Timer:      "synth-sin",
		MinLatency: [4]float64{0, 1e-6, 2e-6, 5e-6},
		Regions:    []string{"ring"},
		ProcCount:  nRanks,
	}, trace.WriterOptions{Version: spec.Version, FrameEvents: spec.FrameEvents, Columnar: spec.Columnar})
	if err != nil {
		return nil, nil, err
	}
	em := synthEmitter{ew: ew, distort: spec.DistortClock}
	slots := 0
	for r := 0; r < nRanks; r++ {
		ph := trace.ProcHeader{
			Rank:       r,
			Core:       topology.CoreID{Node: r},
			Clock:      "synth-sin",
			EventCount: steps*4 + rounds*2,
		}
		if err := ew.BeginProc(ph); err != nil {
			return nil, nil, err
		}
		em.reset(spec.Seed, r)
		// Each rank re-derives the shared collective-op sequence from the
		// dedicated slot and draws it in round order — identical values
		// on every rank, no rounds-sized table.
		opRng := xrand.NewSource(xrand.SeedAt(spec.Seed, synthOpSeed))
		slot, round := 0, 0
		to := int32((r + 1) % nRanks)
		from := int32((r - 1 + nRanks) % nRanks)
		for s := 0; s < steps; s++ {
			base := float64(slot) * stepDur
			rs := float64(r) * eps
			if err := em.emit(trace.Event{Kind: trace.Enter, Region: 0}, base+rs); err != nil {
				return nil, nil, err
			}
			if err := em.emit(trace.Event{Kind: trace.Send, Partner: to, Bytes: 1 << 10}, base+rs+compute); err != nil {
				return nil, nil, err
			}
			if err := em.emit(trace.Event{Kind: trace.Recv, Partner: from, Bytes: 1 << 10}, base+stepDur/2+rs); err != nil {
				return nil, nil, err
			}
			if err := em.emit(trace.Event{Kind: trace.Exit, Region: 0}, base+stepDur/2+rs+compute); err != nil {
				return nil, nil, err
			}
			slot++
			if spec.CollEvery > 0 && (s+1)%spec.CollEvery == 0 && round < rounds {
				cb := float64(slot) * stepDur
				root := round % nRanks
				ev := trace.Event{
					Op: allOps[opRng.Intn(len(allOps))], Instance: int32(round), Root: int32(root), Bytes: 1 << 9,
				}
				ev.Kind = trace.CollBegin
				// the root begins first, so rooted 1-to-N edges strictly
				// increase oracle time
				if err := em.emit(ev, cb+float64((r-root+nRanks)%nRanks)*eps); err != nil {
					return nil, nil, err
				}
				ev.Kind = trace.CollEnd
				if err := em.emit(ev, cb+stepDur/2+rs); err != nil {
					return nil, nil, err
				}
				slot++
				round++
			}
		}
		slots = slot
	}
	if err := ew.Close(); err != nil {
		return nil, nil, err
	}

	tInit := -1e-2
	tFin := float64(slots)*stepDur + 1e-2
	init = make([]measure.Offset, nRanks)
	fin = make([]measure.Offset, nRanks)
	// The reference clock (rank 0) is the identity; evaluate it once per
	// table time through the same emitter so DistortClock sees it.
	em.reset(spec.Seed, 0)
	refInit, refFin := em.clock(tInit), em.clock(tFin)
	for r := 0; r < nRanks; r++ {
		em.reset(spec.Seed, r)
		wi, wf := em.clock(tInit), em.clock(tFin)
		init[r] = measure.Offset{Rank: r, WorkerTime: wi, Offset: refInit - wi, RTT: 2e-6}
		fin[r] = measure.Offset{Rank: r, WorkerTime: wf, Offset: refFin - wf, RTT: 2e-6}
	}
	return init, fin, nil
}
