// Package suite aggregates the tsyncvet analyzer set: the four
// domain-specific analyzers that machine-check the repository's
// clock-correctness invariants, plus the stock go/analysis vet passes
// that are useful on this codebase. cmd/tsyncvet runs the whole set; the
// domain analyzers are also individually testable via their own packages.
package suite

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/assign"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/buildtag"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/ifaceassert"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/printf"
	"golang.org/x/tools/go/analysis/passes/shift"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/tests"
	"golang.org/x/tools/go/analysis/passes/unmarshal"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unusedresult"

	"tsync/internal/lint/floateq"
	"tsync/internal/lint/locked"
	"tsync/internal/lint/tsmutate"
	"tsync/internal/lint/wallclock"
)

// Domain returns the four tsync-specific analyzers.
func Domain() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		wallclock.Analyzer,
		floateq.Analyzer,
		tsmutate.Analyzer,
		locked.Analyzer,
	}
}

// Analyzers returns the full tsyncvet set: domain analyzers plus the
// stock vet passes (the same set `go vet` runs by default, minus passes
// that need build-system integration we don't use, like cgocall).
func Analyzers() []*analysis.Analyzer {
	return append(Domain(),
		assign.Analyzer,
		atomic.Analyzer,
		bools.Analyzer,
		buildtag.Analyzer,
		copylock.Analyzer,
		defers.Analyzer,
		errorsas.Analyzer,
		ifaceassert.Analyzer,
		loopclosure.Analyzer,
		lostcancel.Analyzer,
		nilfunc.Analyzer,
		printf.Analyzer,
		shift.Analyzer,
		sigchanyzer.Analyzer,
		stdmethods.Analyzer,
		stringintconv.Analyzer,
		structtag.Analyzer,
		tests.Analyzer,
		unmarshal.Analyzer,
		unreachable.Analyzer,
		unusedresult.Analyzer,
	)
}
