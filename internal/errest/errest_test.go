package errest

import (
	"math"
	"testing"

	"tsync/internal/clock"
	"tsync/internal/mpi"
	"tsync/internal/topology"
	"tsync/internal/trace"
)

// skewedTrace builds a trace with known constant offsets and drifts per
// rank, full bidirectional ring communication, and moderate latency noise.
func skewedTrace(nProcs, rounds int, offsets, drifts []float64) *trace.Trace {
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0.5e-6, 1e-6, 4e-6}
	procs := make([]trace.Proc, nProcs)
	for i := range procs {
		procs[i] = trace.Proc{Rank: i, Core: topology.CoreID{Node: i}}
	}
	local := func(rank int, tt float64) float64 {
		return tt*(1+drifts[rank]) + offsets[rank]
	}
	tt := 1.0
	for round := 0; round < rounds; round++ {
		tt += 500e-6
		// forward ring: i -> i+1
		for i := range procs {
			dst := (i + 1) % nProcs
			procs[i].Events = append(procs[i].Events, trace.Event{
				Kind: trace.Send, Time: local(i, tt), True: tt,
				Partner: int32(dst), Tag: int32(2 * round), Region: -1, Root: -1})
		}
		arr := tt + 5e-6 + 1e-7*float64(round%3)
		for i := range procs {
			src := (i - 1 + nProcs) % nProcs
			procs[i].Events = append(procs[i].Events, trace.Event{
				Kind: trace.Recv, Time: local(i, arr), True: arr,
				Partner: int32(src), Tag: int32(2 * round), Region: -1, Root: -1})
		}
		// backward ring: i -> i-1
		tt = arr + 300e-6
		for i := range procs {
			dst := (i - 1 + nProcs) % nProcs
			procs[i].Events = append(procs[i].Events, trace.Event{
				Kind: trace.Send, Time: local(i, tt), True: tt,
				Partner: int32(dst), Tag: int32(2*round + 1), Region: -1, Root: -1})
		}
		arr = tt + 5e-6
		for i := range procs {
			src := (i + 1) % nProcs
			procs[i].Events = append(procs[i].Events, trace.Event{
				Kind: trace.Recv, Time: local(i, arr), True: arr,
				Partner: int32(src), Tag: int32(2*round + 1), Region: -1, Root: -1})
		}
		tt = arr
	}
	tr.Procs = procs
	return tr
}

func TestEstimateIsDeterministic(t *testing.T) {
	// regression: propagate picked the next spanning-tree edge by ranging
	// over the fits map; pair weights tie for symmetric topologies (equal
	// bound counts), so the tree — and with it every errest correction —
	// depended on randomized map iteration order and differed run to run
	offsets := []float64{0, 250e-6, -400e-6, 80e-6, -120e-6, 60e-6}
	drifts := []float64{0, 2e-6, -3e-6, 1e-6, -1e-6, 4e-6}
	tr := skewedTrace(6, 40, offsets, drifts)
	probes := []float64{0, 0.01, 0.02, 0.05}
	for _, m := range []Method{Regression, ConvexHull, MinMax} {
		base, err := Estimate(tr, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for trial := 0; trial < 10; trial++ {
			corr, err := Estimate(tr, m)
			if err != nil {
				t.Fatalf("%v trial %d: %v", m, trial, err)
			}
			for rank := 0; rank < 6; rank++ {
				for _, p := range probes {
					got, want := corr.Map(rank, p), base.Map(rank, p)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("%v trial %d: Map(%d, %v) = %v, want %v (bit-exact)",
							m, trial, rank, p, got, want)
					}
				}
			}
		}
	}
}

func TestMethodsRecoverConstantOffsets(t *testing.T) {
	offsets := []float64{0, 250e-6, -400e-6, 80e-6}
	drifts := []float64{0, 0, 0, 0}
	tr := skewedTrace(4, 100, offsets, drifts)
	for _, m := range []Method{Regression, ConvexHull, MinMax} {
		corr, err := Estimate(tr, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for rank := 1; rank < 4; rank++ {
			// a local time x on rank should map to ~x - offset (master
			// time base)
			x := 2.0 + offsets[rank]
			got := corr.Map(rank, x)
			want := 2.0
			if math.Abs(got-want) > 8e-6 {
				t.Fatalf("%v: rank %d maps %v -> %v, want ~%v", m, rank, x, got, want)
			}
		}
	}
}

func TestMethodsRecoverDrift(t *testing.T) {
	offsets := []float64{0, 1e-3}
	drifts := []float64{0, 40e-6} // 40 ppm
	tr := skewedTrace(2, 200, offsets, drifts)
	for _, m := range []Method{Regression, ConvexHull, MinMax} {
		corr, err := Estimate(tr, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// corrected clocks should agree at both ends of the run
		for _, tt := range []float64{1.0, 30.0} {
			master := corr.Map(0, tt)
			worker := corr.Map(1, tt*(1+drifts[1])+offsets[1])
			if d := math.Abs(master - worker); d > 10e-6 {
				t.Fatalf("%v: residual %v s at t=%v", m, d, tt)
			}
		}
	}
}

func TestEstimateReducesViolations(t *testing.T) {
	offsets := []float64{0, 300e-6, -200e-6}
	drifts := []float64{0, 10e-6, -15e-6}
	tr := skewedTrace(3, 150, offsets, drifts)
	countBad := func(tt *trace.Trace) int {
		msgs, err := tt.Messages()
		if err != nil {
			t.Fatal(err)
		}
		bad := 0
		for _, m := range msgs {
			if tt.Procs[m.To].Events[m.ToIdx].Time < tt.Procs[m.From].Events[m.FromIdx].Time {
				bad++
			}
		}
		return bad
	}
	if countBad(tr) == 0 {
		t.Fatalf("synthetic trace should contain reversed messages")
	}
	for _, m := range []Method{Regression, ConvexHull, MinMax} {
		corr, err := Estimate(tr, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		fixed := corr.Apply(tr)
		if got := countBad(fixed); got != 0 {
			t.Fatalf("%v: %d reversed messages remain", m, got)
		}
	}
}

func TestOneSidedTopologyRejected(t *testing.T) {
	// rank 0 only ever sends to rank 1: bounds exist in one direction
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0, 0, 4e-6}
	var p0, p1 trace.Proc
	p0.Rank, p1.Rank = 0, 1
	p1.Core = topology.CoreID{Node: 1}
	for i := 0; i < 50; i++ {
		tt := float64(i) * 1e-3
		p0.Events = append(p0.Events, trace.Event{Kind: trace.Send, Time: tt, True: tt, Partner: 1, Tag: int32(i), Region: -1, Root: -1})
		p1.Events = append(p1.Events, trace.Event{Kind: trace.Recv, Time: tt + 5e-6, True: tt + 5e-6, Partner: 0, Tag: int32(i), Region: -1, Root: -1})
	}
	tr.Procs = []trace.Proc{p0, p1}
	for _, m := range []Method{Regression, ConvexHull, MinMax} {
		if _, err := Estimate(tr, m); err == nil {
			t.Fatalf("%v: one-sided topology accepted", m)
		}
	}
}

func TestSpanningTreePropagation(t *testing.T) {
	// chain topology: 0 <-> 1 <-> 2, no direct 0 <-> 2 traffic; rank 2
	// must still be synchronized through rank 1
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0, 0, 4e-6}
	offsets := []float64{0, 200e-6, -300e-6}
	procs := make([]trace.Proc, 3)
	for i := range procs {
		procs[i] = trace.Proc{Rank: i, Core: topology.CoreID{Node: i}}
	}
	tt := 1.0
	for round := 0; round < 100; round++ {
		for _, pair := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
			from, to := pair[0], pair[1]
			tt += 200e-6
			procs[from].Events = append(procs[from].Events, trace.Event{
				Kind: trace.Send, Time: tt + offsets[from], True: tt,
				Partner: int32(to), Tag: int32(round*4 + from*2 + to), Region: -1, Root: -1})
			arr := tt + 5e-6
			procs[to].Events = append(procs[to].Events, trace.Event{
				Kind: trace.Recv, Time: arr + offsets[to], True: arr,
				Partner: int32(from), Tag: int32(round*4 + from*2 + to), Region: -1, Root: -1})
			tt = arr
		}
	}
	tr.Procs = procs
	corr, err := Estimate(tr, Regression)
	if err != nil {
		t.Fatal(err)
	}
	x := 2.0 + offsets[2]
	if got := corr.Map(2, x); math.Abs(got-2.0) > 8e-6 {
		t.Fatalf("chained rank maps %v -> %v, want ~2.0", x, got)
	}
}

func TestDisconnectedRankRejected(t *testing.T) {
	tr := skewedTrace(2, 50, []float64{0, 1e-4}, []float64{0, 0})
	// add an isolated third rank
	tr.Procs = append(tr.Procs, trace.Proc{Rank: 2, Core: topology.CoreID{Node: 2}})
	if _, err := Estimate(tr, Regression); err == nil {
		t.Fatalf("disconnected rank accepted")
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	if _, err := Estimate(&trace.Trace{}, Regression); err == nil {
		t.Fatalf("empty trace accepted")
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range []Method{Regression, ConvexHull, MinMax, Method(9)} {
		if m.String() == "" {
			t.Fatalf("empty method name")
		}
	}
}

func TestOnSimulatedBidirectionalTrace(t *testing.T) {
	m := topology.Xeon()
	pin, err := topology.InterNode(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 99, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(r *mpi.Rank) {
		n := r.Size()
		for i := 0; i < 150; i++ {
			dst := (r.Rank() + 1) % n
			src := (r.Rank() - 1 + n) % n
			r.Send(dst, 2*i, 64, nil)
			r.Recv(src, 2*i)
			r.Send(src, 2*i+1, 64, nil)
			r.Recv(dst, 2*i+1)
			r.Compute(200e-6)
		}
	}); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	corr, err := Estimate(tr, ConvexHull)
	if err != nil {
		t.Fatal(err)
	}
	fixed := corr.Apply(tr)
	// corrected timestamps should be close to true times (up to the
	// master's own drift): compare spans of (Time - True)
	var maxErr float64
	for rank, p := range fixed.Procs {
		for _, ev := range p.Events {
			master := corr.Map(0, tr.Procs[0].Events[0].Time) // anchor
			_ = master
			_ = rank
			d := ev.Time - ev.True
			// all ranks should share nearly the same bias
			if rank == 0 {
				continue
			}
			ref := fixed.Procs[0].Events[0].Time - fixed.Procs[0].Events[0].True
			if e := math.Abs(d - ref); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 50e-6 {
		t.Fatalf("errest residual vs oracle %v s", maxErr)
	}
}

func BenchmarkEstimateConvexHull(b *testing.B) {
	tr := skewedTrace(8, 100, make([]float64, 8), make([]float64, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(tr, ConvexHull); err != nil {
			b.Fatal(err)
		}
	}
}

// kinkedTrace builds a 2-rank trace whose worker clock changes drift rate
// halfway through — a single line cannot fit both halves.
func kinkedTrace(rounds int) *trace.Trace {
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0, 0, 4e-6}
	procs := []trace.Proc{
		{Rank: 0},
		{Rank: 1, Core: topology.CoreID{Node: 1}},
	}
	half := float64(rounds) / 2 * 800e-6
	local := func(tt float64) float64 {
		// worker: +40 ppm drift in the first half, -40 ppm after (an NTP
		// slew adjustment)
		if tt <= half {
			return tt * (1 + 40e-6)
		}
		return half*(1+40e-6) + (tt-half)*(1-40e-6)
	}
	tt := 0.0
	for round := 0; round < rounds; round++ {
		for _, dir := range [2]int{0, 1} {
			tt += 400e-6
			arr := tt + 5e-6
			if dir == 0 {
				procs[0].Events = append(procs[0].Events, trace.Event{
					Kind: trace.Send, Time: tt, True: tt, Partner: 1, Tag: int32(2 * round), Region: -1, Root: -1})
				procs[1].Events = append(procs[1].Events, trace.Event{
					Kind: trace.Recv, Time: local(arr), True: arr, Partner: 0, Tag: int32(2 * round), Region: -1, Root: -1})
			} else {
				procs[1].Events = append(procs[1].Events, trace.Event{
					Kind: trace.Send, Time: local(tt), True: tt, Partner: 0, Tag: int32(2*round + 1), Region: -1, Root: -1})
				procs[0].Events = append(procs[0].Events, trace.Event{
					Kind: trace.Recv, Time: arr, True: arr, Partner: 1, Tag: int32(2*round + 1), Region: -1, Root: -1})
			}
			tt = arr
		}
	}
	tr.Procs = procs
	return tr
}

func TestEstimateWindowedBeatsSingleLineOnKink(t *testing.T) {
	tr := kinkedTrace(400)
	residual := func(corr interface{ Map(int, float64) float64 }) float64 {
		// worst-case disagreement of corrected clocks over the run,
		// sampled at the true times of rank 1's events
		var worst float64
		for _, ev := range tr.Procs[1].Events {
			master := ev.True // rank 0's clock is the truth here
			got := corr.Map(1, ev.Time)
			if d := math.Abs(got - master); d > worst {
				worst = d
			}
		}
		return worst
	}
	single, err := Estimate(tr, Regression)
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := EstimateWindowed(tr, Regression, 8)
	if err != nil {
		t.Fatal(err)
	}
	rs, rw := residual(single), residual(windowed)
	if rw >= rs/2 {
		t.Fatalf("windowed (%v) did not clearly beat single-line (%v) on a drift kink", rw, rs)
	}
}

func TestEstimateWindowedFallsBackToEstimate(t *testing.T) {
	tr := skewedTrace(2, 50, []float64{0, 1e-4}, []float64{0, 0})
	if _, err := EstimateWindowed(tr, ConvexHull, 1); err != nil {
		t.Fatalf("windows=1 fallback failed: %v", err)
	}
	// very many windows: most are sparse and inherit the global fit, but
	// the result must still be valid and finite
	corr, err := EstimateWindowed(tr, ConvexHull, 64)
	if err != nil {
		t.Fatal(err)
	}
	if v := corr.Map(1, 1.0); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("windowed correction produced %v", v)
	}
}

func TestEstimateWindowedEmptyTrace(t *testing.T) {
	if _, err := EstimateWindowed(&trace.Trace{}, Regression, 4); err == nil {
		t.Fatalf("empty trace accepted")
	}
}
