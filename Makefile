# Convenience targets for the tsync repository.

GO ?= go

.PHONY: all build test bench bench-smoke microbench vet lint lint-test lint-json lint-fix-check race cover-check faults fingerprint replay serve figures clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tsyncvet: the stock vet passes plus the repo's nine clock-correctness
# and concurrency analyzers (wallclock, floateq, tsmutate, locked,
# maporder, seedsrc, ctxflow, poolcheck, errform) — see README "Static
# analysis" and internal/lint
lint:
	$(GO) run ./cmd/tsyncvet ./...

# the analyzers' own unit tests (fixture packages under internal/lint)
lint-test:
	$(GO) test ./internal/lint/...

# machine-readable sweep: one JSON object per diagnostic on stdout
lint-json:
	$(GO) run ./cmd/tsyncvet -json ./...

# guard against stale suppressions: every tsync:* directive must carry a
# justification ("—" separator) so a bare marker cannot silence a finding
# without saying why
lint-fix-check:
	@bad=$$(grep -rn '//tsync:[a-z]' --include='*.go' internal cmd bench_test.go 2>/dev/null \
		| grep -v '^internal/lint/' \
		| grep -v '—'); \
	if [ -n "$$bad" ]; then \
		echo "unjustified tsync:* directives (add '— why' to each):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "lint-fix-check: all suppression directives carry justifications"

test:
	$(GO) test ./...

# dynamic complement of the locked analyzer: replay the goroutine
# fan-outs (internal/clc, internal/des) under the race detector
race:
	$(GO) test -race ./...

# coverage ratchet: every internal package must stay at or above the
# percentage recorded in COVERAGE_FLOORS.txt; refresh the floors after
# improving tests with `go run ./cmd/coverfloor -write`
cover-check:
	$(GO) run ./cmd/coverfloor

# the parallel-runner and streaming evaluation: FIG7/FIG8/§V drivers at
# workers=1 vs workers=4 with bit-identical-result verification, plus the
# streaming pipeline cases — streaming-vs-in-memory checksum equality,
# the 1M-event bounded-memory assertion, the batched-vs-legacy (batch=1)
# checksum comparison with allocs/event, the stream-fingerprint overhead
# case (observer checksum + >=90% of baseline throughput), the
# stream-faults salvage case (recovery ratio + cross-worker determinism),
# the replay-1m case (seeded RepCl interleavings must reproduce the
# canonical replay checksum bit for bit), the merge-tree scale cases
# — stream-10k (10,000 ranks under a per-rank heap budget, census equal
# to the flat merge's) and stream-1b (a billion events in window-bounded
# memory) — and the tsyncd-1m service case (concurrent loopback sessions
# against a resident tsyncd, each bit-identical to stream-1m, with
# sessions/sec and p99 latency) (see cmd/bench)
bench:
	$(GO) run ./cmd/bench -workers 4 -o BENCH_PR10.json

# CI-sized bench: 1 rep, tiny workloads, 2 workers — still checks that
# parallel checksums match serial, that the streaming pipeline reproduces
# the in-memory checksums (batched and batch=1 legacy configurations),
# that its peak heap stays window-bounded, that the fingerprint stage is
# a pure observer within its (relaxed) throughput floor, and that the
# stream-faults salvage case recovers >=99% deterministically, plus the
# smoke-scaled merge-tree cases (10k ranks, 1M events) under the same
# budgets; then one iteration of the hot-path microbenchmarks — including
# the adversarial merge-tree interleavings — so their harness code cannot
# rot
bench-smoke:
	$(GO) run ./cmd/bench -smoke -workers 2 -o BENCH_PR10.json
	$(GO) test -run XXX -bench 'BenchmarkStreamPipeline|BenchmarkMergeTree|BenchmarkEventCodec|BenchmarkMapTimeMonotone' -benchtime=1x .

# the fault-tolerance suite on its own: resync framing, salvage,
# cancellation, and fault-injection tests under the race detector
faults:
	$(GO) test -race -run 'Salvage|Cancel|Resync|Corrupt|Frame' ./internal/trace/ ./internal/stream/
	$(GO) test -race ./internal/faultinject/ ./internal/fingerprint/

# the replay-clock suite on its own: RepCl unit/codec/fuzz-seed tests,
# the replay engine's property/adversarial/fault-matrix tests, and the
# streaming-vs-in-memory stamping differential, all under the race
# detector
replay:
	$(GO) test -race ./internal/replay/
	$(GO) test -race -run 'RepCl|Replay' ./internal/lclock/ ./internal/stream/

# the trace-sync service suite on its own: the tsyncd protocol, quota,
# admission, drain, and fault-matrix tests plus the client backoff and
# exit-code contracts, all under the race detector
serve:
	$(GO) test -race ./internal/tsyncd/ ./internal/backoff/ ./internal/exitcode/ ./internal/faultinject/

# the drift-fingerprint suite on its own: the seeded classification
# matrix (kind × magnitude × position), the auto-knot correction tests,
# and the stream-side determinism/observer differential tests
fingerprint:
	$(GO) test -race ./internal/fingerprint/
	$(GO) test -race -run 'Fingerprint|LossPct' ./internal/stream/

# the full evaluation: one go-test benchmark per table and figure of the
# paper
microbench:
	$(GO) test -bench=. -benchmem ./...

# human-readable regenerations of every paper artifact
figures:
	$(GO) run ./cmd/latencies
	$(GO) run ./cmd/clockstudy -fig 4a
	$(GO) run ./cmd/clockstudy -fig 4b
	$(GO) run ./cmd/clockstudy -fig 4c
	$(GO) run ./cmd/clockstudy -fig 5a
	$(GO) run ./cmd/clockstudy -fig 5b
	$(GO) run ./cmd/clockstudy -fig 5c
	$(GO) run ./cmd/clockstudy -fig 6
	$(GO) run ./cmd/appviolations -compare -waitstates
	$(GO) run ./cmd/ompstudy -timeline

clean:
	rm -f trace.etr trace.etr.offsets.json test_output.txt bench_output.txt BENCH_SMOKE.json cpu.pprof mem.pprof
