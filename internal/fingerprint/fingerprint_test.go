package fingerprint_test

import (
	"math"
	"strings"
	"testing"

	"tsync/internal/fingerprint"
)

// feed drives a tracker with a closed-form clock: offset(t) given by f,
// sampled every 250 µs over [0, span).
func feed(tr *fingerprint.Tracker, rank int, span float64, f func(t float64) float64) {
	for t := 0.0; t < span; t += 250e-6 {
		tr.Add(rank, t, t+f(t))
	}
}

func TestTrackerStepDirect(t *testing.T) {
	tr := fingerprint.NewTracker(1, fingerprint.Options{})
	feed(tr, 0, 1.0, func(tt float64) float64 {
		o := 1e-4 + 3e-5*tt
		if tt >= 0.5 {
			o += 2e-3
		}
		return o
	})
	rep := tr.Report()
	rk := rep.Ranks[0]
	if len(rk.Breaks) != 1 {
		t.Fatalf("got %d breaks, want 1: %+v", len(rk.Breaks), rk.Breaks)
	}
	b := rk.Breaks[0]
	if b.Kind != fingerprint.KindStep {
		t.Errorf("kind = %v, want step", b.Kind)
	}
	if math.Abs(b.At-0.5) > 1e-3 {
		t.Errorf("localized at %v, want 0.5", b.At)
	}
	if math.Abs(b.Jump-2e-3) > 1e-4 {
		t.Errorf("jump = %v, want 2e-3", b.Jump)
	}
	if len(rk.Segments) != 2 {
		t.Fatalf("got %d segments, want 2", len(rk.Segments))
	}
	// both segments carry the same 30 ppm drift
	for i, s := range rk.Segments {
		if math.Abs(s.Drift-3e-5) > 2e-6 {
			t.Errorf("segment %d drift %v, want 3e-5", i, s.Drift)
		}
	}
	if math.Abs(rk.DriftPPM-30) > 2 {
		t.Errorf("DriftPPM = %v, want ~30", rk.DriftPPM)
	}
}

func TestTrackerFreqJumpDirect(t *testing.T) {
	tr := fingerprint.NewTracker(1, fingerprint.Options{})
	feed(tr, 0, 2.0, func(tt float64) float64 {
		o := -2e-5 * tt
		if tt >= 1.0 {
			o += 5e-4 * (tt - 1.0)
		}
		return o
	})
	rep := tr.Report()
	rk := rep.Ranks[0]
	if len(rk.Breaks) != 1 {
		t.Fatalf("got %d breaks, want 1: %+v", len(rk.Breaks), rk.Breaks)
	}
	b := rk.Breaks[0]
	if b.Kind != fingerprint.KindFreqJump {
		t.Errorf("kind = %v, want freq-jump (jump %g, dslope %g)", b.Kind, b.Jump, b.DriftChange)
	}
	if math.Abs(b.At-1.0) > 0.1 {
		t.Errorf("localized at %v, want ~1.0", b.At)
	}
	if math.Abs(b.DriftChange-5e-4) > 5e-5 {
		t.Errorf("drift change = %v, want 5e-4", b.DriftChange)
	}
}

func TestTrackerResetDirect(t *testing.T) {
	tr := fingerprint.NewTracker(1, fingerprint.Options{})
	feed(tr, 0, 1.0, func(tt float64) float64 {
		if tt >= 0.6 {
			return -0.6 // clock restarted from zero: local = t - 0.6
		}
		return 2e-5 * tt
	})
	rep := tr.Report()
	rk := rep.Ranks[0]
	if len(rk.Breaks) != 1 || rk.Breaks[0].Kind != fingerprint.KindReset {
		t.Fatalf("breaks = %+v, want one reset", rk.Breaks)
	}
	if !rk.Anomalous {
		t.Error("reset rank not anomalous")
	}
}

// TestTrackerTransientNotABreak: fewer than Confirm consecutive
// outliers are a glitch, folded back into the fit without a break.
func TestTrackerTransientNotABreak(t *testing.T) {
	tr := fingerprint.NewTracker(1, fingerprint.Options{Confirm: 4})
	n := 0
	feed(tr, 0, 1.0, func(tt float64) float64 {
		n++
		if n%500 == 0 { // isolated spikes, never 4 in a row
			return 1e-3
		}
		return 1e-5 * tt
	})
	rep := tr.Report()
	rk := rep.Ranks[0]
	if len(rk.Breaks) != 0 {
		t.Errorf("spikes produced breaks: %+v", rk.Breaks)
	}
	if len(rk.Segments) != 1 {
		t.Errorf("got %d segments, want 1", len(rk.Segments))
	}
	if rk.Stability != 1 {
		t.Errorf("stability = %v, want 1", rk.Stability)
	}
}

// TestTrackerTailBreakUnknown: a fault so close to the end of the trace
// that the post-break fit cannot mature still surfaces as a break, with
// classification degrading gracefully rather than guessing from noise.
func TestTrackerTailBreakUnknown(t *testing.T) {
	tr := fingerprint.NewTracker(1, fingerprint.Options{Confirm: 4, MinSegment: 64})
	// 0.25 s of clean clock, then a step with only 5 samples remaining
	for i := 0; i < 1000; i++ {
		tt := float64(i) * 250e-6
		tr.Add(0, tt, tt+1e-5)
	}
	for i := 1000; i < 1005; i++ {
		tt := float64(i) * 250e-6
		tr.Add(0, tt, tt+1e-5+5e-3)
	}
	rep := tr.Report()
	rk := rep.Ranks[0]
	if len(rk.Breaks) != 1 {
		t.Fatalf("got %d breaks, want 1", len(rk.Breaks))
	}
	// 5 post samples carry a solid jump estimate: step is acceptable;
	// so is unknown. Freq-jump or reset would be misclassification.
	if k := rk.Breaks[0].Kind; k != fingerprint.KindStep && k != fingerprint.KindUnknown {
		t.Errorf("tail break classified %v", k)
	}
}

// TestTrackerDecimation: SampleEvery must reduce samples without
// changing the story.
func TestTrackerDecimation(t *testing.T) {
	full := fingerprint.NewTracker(1, fingerprint.Options{})
	dec := fingerprint.NewTracker(1, fingerprint.Options{SampleEvery: 4})
	// drift and jitter persist across the step (an offset-only fault)
	f := func(tt float64) float64 {
		o := 2e-5*tt + 1e-6*math.Sin(3*tt)
		if tt >= 0.5 {
			o += 3e-3
		}
		return o
	}
	feed(full, 0, 1.0, f)
	feed(dec, 0, 1.0, f)
	fr, dr := full.Report(), dec.Report()
	if dr.Ranks[0].Samples*4 > fr.Ranks[0].Samples+4 {
		t.Errorf("decimated samples %d vs full %d", dr.Ranks[0].Samples, fr.Ranks[0].Samples)
	}
	if len(dr.Ranks[0].Breaks) != 1 || dr.Ranks[0].Breaks[0].Kind != fingerprint.KindStep {
		t.Errorf("decimated tracker breaks = %+v, want one step", dr.Ranks[0].Breaks)
	}
}

// TestTrackerSealedAndBounds: out-of-range adds are ignored, Report
// seals the tracker, and a second Report returns the same content.
func TestTrackerSealedAndBounds(t *testing.T) {
	tr := fingerprint.NewTracker(2, fingerprint.Options{})
	tr.Add(-1, 0, 0)
	tr.Add(2, 0, 0)
	feed(tr, 0, 0.1, func(float64) float64 { return 1e-5 })
	rep1 := tr.Report()
	tr.Add(0, 99, 99) // sealed: ignored
	rep2 := tr.Report()
	if rep1.Ranks[0].Samples != rep2.Ranks[0].Samples {
		t.Error("Report after sealing changed the sample count")
	}
	if rep1.Ranks[1].Samples != 0 || len(rep1.Ranks[1].Segments) != 0 {
		t.Error("untouched rank not empty")
	}
	if _, ok := rep1.Ranks[1].Dominant(); ok {
		t.Error("empty rank reports a dominant segment")
	}
}

// TestTrackerEmptyReport: zero ranks and empty ranks stay well-formed.
func TestTrackerEmptyReport(t *testing.T) {
	rep := fingerprint.NewTracker(0, fingerprint.Options{}).Report()
	if len(rep.Ranks) != 0 || rep.Breaks() != 0 || rep.Anomalous() != nil {
		t.Errorf("empty report not empty: %+v", rep)
	}
	if _, _, err := rep.AutoCorrection(); err == nil {
		t.Error("AutoCorrection on an empty report must fail")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := fingerprint.Options{}.Normalize()
	if o.SampleEvery != 1 || o.MinSegment != 64 || o.Confirm != 4 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.ResidK != 12 || o.MinResid != 1e-5 || o.JumpTol != 5e-5 {
		t.Errorf("threshold defaults wrong: %+v", o)
	}
	// explicit values survive
	o2 := fingerprint.Options{Confirm: 7, MinResid: 1e-4}.Normalize()
	if o2.Confirm != 7 || o2.MinResid != 1e-4 {
		t.Errorf("explicit options clobbered: %+v", o2)
	}
}

func TestKindString(t *testing.T) {
	wants := map[fingerprint.Kind]string{
		fingerprint.KindUnknown:  "unknown",
		fingerprint.KindStep:     "step",
		fingerprint.KindFreqJump: "freq-jump",
		fingerprint.KindReset:    "reset",
	}
	for k, w := range wants {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), w)
		}
	}
}

// TestWriteText: the CLI rendering carries the headline counts, flags
// anomalous ranks, and never emits NaN/Inf.
func TestWriteText(t *testing.T) {
	tr := fingerprint.NewTracker(2, fingerprint.Options{})
	feed(tr, 0, 0.5, func(float64) float64 { return 0 })
	// drift plus sinusoidal jitter on both sides: a stepped clock keeps
	// its signature (zero drift AND zero jitter after the break would
	// legitimately read as a reset)
	feed(tr, 1, 0.5, func(tt float64) float64 {
		o := 1e-5*tt + 1e-6*math.Sin(2*tt)
		if tt >= 0.25 {
			o += 4e-3
		}
		return o
	})
	rep := tr.Report()
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2 ranks", "1 breaks", "1 anomalous", "step@t=", "   1!"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("report contains %s:\n%s", bad, out)
		}
	}
}
