package stats

import "math"

// OnlineReg is a streaming simple-linear-regression accumulator
// (y = a*x + b) built for timestamp-scale inputs: both coordinates are
// anchored at the first sample and the centered second moments are
// updated Welford-style, so neither the 1e15 ns magnitude of raw clock
// readings nor long streams degrade the fit. It is the regression
// counterpart of Online and the substrate of the per-rank drift
// fingerprints (internal/fingerprint).
//
// The zero value is ready to use. An OnlineReg is a plain value: copying
// it snapshots the fit (the fingerprint change-point detector freezes
// pre-break fits exactly this way).
type OnlineReg struct {
	n      int
	x0, y0 float64 // anchors: the first sample
	mx, my float64 // means of (x-x0), (y-y0)
	sxx    float64 // Σ(dx)² about the running mean
	sxy    float64 // Σ(dx)(dy)
	syy    float64 // Σ(dy)² — for residual variance
}

// Add incorporates one (x, y) sample.
func (r *OnlineReg) Add(x, y float64) {
	if r.n == 0 {
		r.x0, r.y0 = x, y
	}
	x -= r.x0
	y -= r.y0
	r.n++
	dx := x - r.mx
	dy := y - r.my
	r.mx += dx / float64(r.n)
	r.my += dy / float64(r.n)
	dx2 := x - r.mx
	r.sxx += dx * dx2
	r.sxy += dx * (y - r.my)
	r.syy += dy * (y - r.my)
}

// N returns the number of samples seen.
func (r *OnlineReg) N() int { return r.n }

// MeanX returns the mean of the x samples (0 if none).
func (r *OnlineReg) MeanX() float64 {
	if r.n == 0 {
		return 0
	}
	return r.x0 + r.mx
}

// MeanY returns the mean of the y samples (0 if none).
func (r *OnlineReg) MeanY() float64 {
	if r.n == 0 {
		return 0
	}
	return r.y0 + r.my
}

// Slope returns the fitted slope, or 0 while the fit is degenerate
// (fewer than two samples, or all x coincide).
func (r *OnlineReg) Slope() float64 {
	if r.n < 2 || r.sxx == 0 {
		return 0
	}
	return r.sxy / r.sxx
}

// Line returns the fitted line in absolute coordinates. The intercept
// is reconstructed from the mean point, which the fitted line always
// passes through; at large anchors the absolute intercept intrinsically
// carries slope·x0 cancellation, so callers that can should evaluate
// via Predict instead.
func (r *OnlineReg) Line() Line {
	s := r.Slope()
	return Line{Slope: s, Intercept: r.MeanY() - s*r.MeanX()}
}

// Predict evaluates the fitted line at x in anchored arithmetic: the
// prediction is formed around the mean point, never materializing an
// absolute intercept, so it stays exact at timestamp magnitudes.
// With fewer than two samples it returns y0 (the only evidence seen).
func (r *OnlineReg) Predict(x float64) float64 {
	return r.y0 + r.my + r.Slope()*((x-r.x0)-r.mx)
}

// ResidualVariance returns the unbiased variance of the fit residuals
// (n-2 denominator), 0 while fewer than three samples make it
// undefined. Rounding can drive the numerator a hair negative on an
// exact fit; it is clamped to 0.
func (r *OnlineReg) ResidualVariance() float64 {
	if r.n < 3 || r.sxx == 0 {
		return 0
	}
	v := (r.syy - r.sxy*r.sxy/r.sxx) / float64(r.n-2)
	if v < 0 {
		return 0
	}
	return v
}

// ResidualStdDev returns the unbiased standard deviation of the fit
// residuals.
func (r *OnlineReg) ResidualStdDev() float64 { return math.Sqrt(r.ResidualVariance()) }

// Merge combines another accumulator into r (parallel Welford merge on
// the centered moments, which are invariant under the anchor shift), so
// per-shard fits can be reduced across workers.
func (r *OnlineReg) Merge(o *OnlineReg) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	// Re-express o's means in r's anchor frame; the centered moments are
	// shift-invariant and merge as-is.
	omx := (o.x0 + o.mx) - r.x0
	omy := (o.y0 + o.my) - r.y0
	n := r.n + o.n
	fn, fr, fo := float64(n), float64(r.n), float64(o.n)
	dx := omx - r.mx
	dy := omy - r.my
	r.sxx += o.sxx + dx*dx*fr*fo/fn
	r.sxy += o.sxy + dx*dy*fr*fo/fn
	r.syy += o.syy + dy*dy*fr*fo/fn
	r.mx += dx * fo / fn
	r.my += dy * fo / fn
	r.n = n
}
