package exitcode_test

import (
	"errors"
	"testing"

	"tsync/internal/exitcode"
)

// TestContract pins the numeric values — scripts depend on them.
func TestContract(t *testing.T) {
	if exitcode.OK != 0 || exitcode.Error != 1 || exitcode.Partial != 3 {
		t.Fatalf("contract drifted: OK=%d Error=%d Partial=%d, want 0/1/3",
			exitcode.OK, exitcode.Error, exitcode.Partial)
	}
}

// TestFrom covers the fold: error dominates partial dominates clean.
func TestFrom(t *testing.T) {
	boom := errors.New("boom")
	cases := []struct {
		err     error
		partial bool
		want    int
	}{
		{nil, false, exitcode.OK},
		{nil, true, exitcode.Partial},
		{boom, false, exitcode.Error},
		{boom, true, exitcode.Error}, // failed runs are not partial successes
	}
	for _, c := range cases {
		if got := exitcode.From(c.err, c.partial); got != c.want {
			t.Errorf("From(%v, %v) = %d, want %d", c.err, c.partial, got, c.want)
		}
	}
}
