package tsyncd_test

// Graceful-drain coverage, extending the PR 5 abort-cleanup style to
// the server: SIGTERM (modeled as the serve context canceling) with
// sessions in flight must leave an empty TMPDIR, zero leaked
// goroutines, and a Serve that actually returns. Two shapes matter:
// a session that can finish within the grace period does, and one that
// cannot is aborted cleanly at the drain deadline.

import (
	"bytes"
	"context"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"tsync/internal/faultinject"
	"tsync/internal/stream"
	"tsync/internal/tsyncd"
	"tsync/internal/xrand"
)

const drainSeed = 0xd4a15

func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if runtime.NumGoroutine() <= base {
			return
		}
		runtime.Gosched()
	}
	t.Errorf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), base)
}

func assertEmptyDir(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("leftover spill entry after drain: %s", e.Name())
	}
}

// TestDrainAbortsStalledSession: a client stops reading its result
// stream, wedging the session mid-assembly with spill files on disk;
// the drain deadline aborts it, and the teardown leaves nothing behind.
func TestDrainAbortsStalledSession(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	base := runtime.NumGoroutine()

	data, _, hello := synthBytes(t, stream.SynthSpec{
		Ranks: 3, Steps: 5000, CollEvery: 4, Seed: xrand.SeedAt(drainSeed, 0),
	})
	ts := startServer(t, tsyncd.Config{
		MaxSessions:  2,
		IdleTimeout:  10 * time.Second,
		DrainTimeout: 100 * time.Millisecond,
	})

	conn := rawConn(t, ts.addr())
	sendJSON(t, conn, 0x01, hello)
	if typ, _ := readReply(t, conn); typ != 0x11 {
		t.Fatal("want ACCEPT")
	}
	for off := 0; off < len(data); off += 64 << 10 {
		end := off + 64<<10
		if end > len(data) {
			end = len(data)
		}
		sendFrame(t, conn, 0x02, data[off:end])
	}
	sendFrame(t, conn, 0x03, nil)

	// Wait for the first corrected byte — proof the session is running
	// and its spill files exist — then stop reading entirely. The
	// server's RESULT writes back up against the socket until drain.
	one := make([]byte, 1)
	if _, err := io.ReadFull(conn, one); err != nil {
		t.Fatalf("no result bytes before drain: %v", err)
	}

	if err := ts.shutdown(); err != nil {
		t.Fatalf("drain with a wedged session: %v", err)
	}
	conn.Close()
	waitGoroutines(t, base)
	assertEmptyDir(t, tmp)
}

// gateFS parks the first spill Create until released, pinning a session
// in a known mid-run state without timers.
type gateFS struct {
	fs      stream.SpillFS
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateFS(fs stream.SpillFS) *gateFS {
	return &gateFS{fs: fs, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateFS) Create(name string) (io.WriteCloser, error) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.fs.Create(name)
}

func (g *gateFS) Open(name string) (io.ReadCloser, error) { return g.fs.Open(name) }

// TestDrainLetsSessionFinish: a session already past admission when the
// drain begins completes within the grace period and delivers its Done,
// bit-identical — drain is graceful, not a kill switch.
func TestDrainLetsSessionFinish(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	base := runtime.NumGoroutine()

	c := &corpus{}
	c.data, _, c.hello = synthBytes(t, stream.SynthSpec{
		Ranks: 3, Steps: 300, CollEvery: 5, Seed: xrand.SeedAt(drainSeed, 1),
	})
	reference(t, c)

	gate := newGateFS(faultinject.NewFS(-1))
	ts := startServer(t, tsyncd.Config{
		MaxSessions:  2,
		DrainTimeout: 10 * time.Second,
		SpillFS:      gate,
	})

	type outcome struct {
		done *tsyncd.Done
		out  bytes.Buffer
		err  error
	}
	res := &outcome{}
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		res.done, res.err = ts.client(1).Sync(context.Background(), c.hello, bytes.NewReader(c.data), &res.out) //tsync:locked — the finished channel: writes happen-before close(finished), reads after <-finished
	}()

	<-gate.entered // the session is mid-run
	ts.cancel()    // SIGTERM: drain begins with the session in flight
	close(gate.release)

	<-finished
	if res.err != nil {
		t.Fatalf("session across a drain: %v", res.err)
	}
	if res.done.Checksum != c.wantChecksum {
		t.Fatalf("checksum %s, want %s", res.done.Checksum, c.wantChecksum)
	}
	if !bytes.Equal(res.out.Bytes(), c.wantBytes) {
		t.Fatal("bytes delivered across a drain differ from the direct pipeline's")
	}
	if err := ts.shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitGoroutines(t, base)
	assertEmptyDir(t, tmp)
}

// TestDrainRejectsNewConnections: once the drain begins the listener is
// closed, so new dials fail outright rather than queueing forever.
func TestDrainRejectsNewConnections(t *testing.T) {
	ts := startServer(t, tsyncd.Config{})
	if err := ts.shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.client(1).Sync(context.Background(), tsyncd.Hello{Base: "none"},
		bytes.NewReader(nil), nil); err == nil {
		t.Fatal("session admitted after drain")
	}
}
