// Package clock models the processor clocks of Section II of the paper:
// cycle counters, hardware timestamp counters (Intel TSC, IBM TB/RTC),
// software clocks (gettimeofday under NTP discipline) and the MPI_Wtime
// wrapper. A clock maps *true* (simulated global) time onto the local time
// value an application would observe, including drift, drift wander, NTP
// slew adjustments, resolution quantization, read noise and read overhead.
//
// All randomness is drawn from deterministic xrand streams, so a clock's
// entire trajectory is a pure function of its construction parameters.
package clock

import (
	"fmt"
	"sort"
)

// DriftProcess produces the piecewise-constant drift-rate trajectory of an
// oscillator. The oscillator asks for one segment at a time, in order;
// implementations may use feedback (the accumulated offset so far) to model
// disciplined clocks such as NTP's PLL.
type DriftProcess interface {
	// NextSegment returns the drift rate (dimensionless; local seconds
	// advance at (1+rate) per true second) and the duration in true
	// seconds of segment index seg, which starts at true time trueStart.
	// offsetSoFar is the accumulated local-minus-true time offset at the
	// segment start, excluding the clock's initial offset.
	NextSegment(seg int, trueStart, offsetSoFar float64) (rate, duration float64)
}

// segment is one constant-rate stretch of an oscillator trajectory.
type segment struct {
	start    float64 // true time at segment start
	rate     float64 // drift rate during the segment
	elapsed  float64 // integrated local elapsed time at segment start
	duration float64 // true-time length of the segment
}

// Oscillator integrates a DriftProcess into a mapping from true time to
// local elapsed time. Segments are generated lazily and cached, so queries
// may arrive in any order as long as they are non-negative.
type Oscillator struct {
	drift DriftProcess
	segs  []segment
}

// NewOscillator creates an oscillator over the given drift process.
func NewOscillator(drift DriftProcess) *Oscillator {
	return &Oscillator{drift: drift}
}

// extendTo generates segments until they cover true time t.
func (o *Oscillator) extendTo(t float64) {
	for {
		var start, elapsed float64
		if n := len(o.segs); n > 0 {
			last := o.segs[n-1]
			start = last.start + last.duration
			elapsed = last.elapsed + (1+last.rate)*last.duration
			if start > t {
				return
			}
		} else if t < 0 {
			return
		}
		rate, dur := o.drift.NextSegment(len(o.segs), start, elapsed-start)
		if dur <= 0 {
			panic(fmt.Sprintf("clock: drift process returned non-positive segment duration %g", dur))
		}
		o.segs = append(o.segs, segment{start: start, rate: rate, elapsed: elapsed, duration: dur})
		if start+dur > t {
			return
		}
	}
}

// Elapsed returns the integrated local elapsed time at true time t >= 0.
// It panics on negative t: the simulation never runs before its epoch, so a
// negative query indicates a caller bug.
func (o *Oscillator) Elapsed(t float64) float64 {
	if t < 0 {
		panic("clock: Elapsed queried before the simulation epoch")
	}
	o.extendTo(t)
	// binary search for the segment containing t
	i := sort.Search(len(o.segs), func(i int) bool { return o.segs[i].start > t }) - 1
	if i < 0 {
		i = 0
	}
	s := o.segs[i]
	return s.elapsed + (1+s.rate)*(t-s.start)
}

// RateAt returns the drift rate in effect at true time t (useful in tests
// and analyses that inspect the drift trajectory).
func (o *Oscillator) RateAt(t float64) float64 {
	if t < 0 {
		panic("clock: RateAt queried before the simulation epoch")
	}
	o.extendTo(t)
	i := sort.Search(len(o.segs), func(i int) bool { return o.segs[i].start > t }) - 1
	if i < 0 {
		i = 0
	}
	return o.segs[i].rate
}

// Segments returns a copy of the segments generated so far (diagnostics).
func (o *Oscillator) Segments() []segmentInfo {
	out := make([]segmentInfo, len(o.segs))
	for i, s := range o.segs {
		out[i] = segmentInfo{Start: s.start, Rate: s.rate, Duration: s.duration}
	}
	return out
}

// segmentInfo is the exported view of one drift segment.
type segmentInfo struct {
	Start    float64
	Rate     float64
	Duration float64
}
