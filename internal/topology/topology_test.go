package topology

import (
	"math"
	"testing"
	"testing/quick"

	"tsync/internal/clock"
	"tsync/internal/xrand"
)

func TestMachinePresets(t *testing.T) {
	cases := []struct {
		m     Machine
		nodes int
		chips int
		cores int
	}{
		{Xeon(), 62, 2, 4},
		{PowerPC(), 2560, 2, 2},
		{Opteron(), 3744, 1, 2},
		{Itanium(), 1, 4, 4},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err != nil {
			t.Fatalf("%s: %v", c.m.Name, err)
		}
		if c.m.Nodes != c.nodes || c.m.ChipsPerNode != c.chips || c.m.CoresPerChip != c.cores {
			t.Fatalf("%s: shape %d/%d/%d", c.m.Name, c.m.Nodes, c.m.ChipsPerNode, c.m.CoresPerChip)
		}
		if c.m.TotalCores() != c.nodes*c.chips*c.cores {
			t.Fatalf("%s: TotalCores = %d", c.m.Name, c.m.TotalCores())
		}
	}
}

func TestParseMachine(t *testing.T) {
	for _, s := range []string{"xeon", "ppc", "powerpc", "opteron", "itanium"} {
		if _, err := ParseMachine(s); err != nil {
			t.Fatalf("ParseMachine(%q): %v", s, err)
		}
	}
	if _, err := ParseMachine("cray-1"); err == nil {
		t.Fatalf("unknown machine must error")
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	bad := Machine{Name: "broken", Nodes: 0, ChipsPerNode: 1, CoresPerChip: 1}
	if bad.Validate() == nil {
		t.Fatalf("zero-node machine passed validation")
	}
}

func TestRelate(t *testing.T) {
	a := CoreID{Node: 0, Chip: 0, Core: 0}
	cases := []struct {
		b    CoreID
		want Relation
	}{
		{CoreID{0, 0, 0}, SameCore},
		{CoreID{0, 0, 1}, SameChip},
		{CoreID{0, 1, 0}, SameNode},
		{CoreID{1, 0, 0}, CrossNode},
	}
	for _, c := range cases {
		if got := Relate(a, c.b); got != c.want {
			t.Fatalf("Relate(%v,%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := Relate(c.b, a); got != c.want {
			t.Fatalf("Relate not symmetric for %v", c.b)
		}
	}
	for _, r := range []Relation{SameCore, SameChip, SameNode, CrossNode, Relation(9)} {
		if r.String() == "" {
			t.Fatalf("empty Relation string")
		}
	}
}

func TestTableIPinnings(t *testing.T) {
	m := Xeon()
	// Table I: inter node = 4 nodes, 1 process per node
	p, err := InterNode(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(m); err != nil {
		t.Fatal(err)
	}
	for i, c := range p {
		if c.Node != i || c.Chip != 0 || c.Core != 0 {
			t.Fatalf("inter-node rank %d on %v", i, c)
		}
	}
	// inter chip = 1 node, 2 chips, 1 process per chip
	p, err = InterChip(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if Relate(p[0], p[1]) != SameNode {
		t.Fatalf("inter-chip pinning produced relation %v", Relate(p[0], p[1]))
	}
	// inter core = 1 node, 1 chip, 4 processes
	p, err = InterCore(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p); i++ {
		if Relate(p[0], p[i]) != SameChip {
			t.Fatalf("inter-core pinning rank %d relation %v", i, Relate(p[0], p[i]))
		}
	}
}

func TestPinningCapacityErrors(t *testing.T) {
	m := Xeon()
	if _, err := InterNode(m, m.Nodes+1); err == nil {
		t.Fatalf("oversubscribed InterNode must error")
	}
	if _, err := InterChip(m, 3); err == nil {
		t.Fatalf("oversubscribed InterChip must error")
	}
	if _, err := InterCore(m, 5); err == nil {
		t.Fatalf("oversubscribed InterCore must error")
	}
	if _, err := SMPThreads(m, 9); err == nil {
		t.Fatalf("oversubscribed SMPThreads must error")
	}
	if _, err := Scheduled(m, m.TotalCores()+1, xrand.NewSource(1)); err == nil {
		t.Fatalf("oversubscribed Scheduled must error")
	}
}

func TestValidateCatchesDoubleBooking(t *testing.T) {
	m := Xeon()
	p := Pinning{{0, 0, 0}, {0, 0, 0}}
	if p.Validate(m) == nil {
		t.Fatalf("double-booked pinning passed validation")
	}
	p = Pinning{{99, 0, 0}}
	if p.Validate(m) == nil {
		t.Fatalf("out-of-range pinning passed validation")
	}
}

func TestScheduledPinningProperties(t *testing.T) {
	m := Xeon()
	rng := xrand.NewSource(5)
	check := func(nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		p, err := Scheduled(m, n, rng)
		if err != nil || len(p) != n {
			return false
		}
		return p.Validate(m) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduledFillsNodesInBlocks(t *testing.T) {
	m := Xeon()
	p, err := Scheduled(m, 32, xrand.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[int]int{}
	for _, c := range p {
		nodes[c.Node]++
	}
	// 32 processes on 8-core nodes: exactly 4 full nodes
	if len(nodes) != 4 {
		t.Fatalf("32 ranks spread over %d nodes, want 4", len(nodes))
	}
	for n, cnt := range nodes {
		if cnt != 8 {
			t.Fatalf("node %d got %d ranks, want 8", n, cnt)
		}
	}
}

func TestSMPThreadsChipMajor(t *testing.T) {
	m := Itanium()
	p, err := SMPThreads(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	// threads 0-3 on chip 0, threads 4-7 on chip 1
	for i, c := range p {
		if c.Node != 0 || c.Chip != i/4 || c.Core != i%4 {
			t.Fatalf("thread %d on %v", i, c)
		}
	}
}

func TestClusterOscillatorDomains(t *testing.T) {
	// Xeon boards clock both sockets from one crystal: the TSC domain is
	// the node
	cl, err := NewCluster(Xeon(), clock.PresetFor(clock.TSC, "xeon"), 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cl.Clock(CoreID{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cl.Clock(CoreID{0, 0, 1}) // same chip
	c, _ := cl.Clock(CoreID{0, 1, 0}) // other chip, same node
	d, _ := cl.Clock(CoreID{1, 0, 0}) // other node
	if a.Oscillator() != b.Oscillator() || a.Oscillator() != c.Oscillator() {
		t.Fatalf("Xeon TSCs within a node must share the oscillator")
	}
	if a.Oscillator() == d.Oscillator() {
		t.Fatalf("nodes must have distinct TSC oscillators")
	}
	if a == b {
		t.Fatalf("each core must own its reader")
	}
	// the Itanium ITC is per chip — the premise of the Fig. 8 experiment
	it, err := NewCluster(Itanium(), clock.PresetFor(clock.TSC, "itanium"), 1)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := it.Clock(CoreID{0, 0, 0})
	y, _ := it.Clock(CoreID{0, 0, 1})
	z, _ := it.Clock(CoreID{0, 1, 0})
	if x.Oscillator() != y.Oscillator() {
		t.Fatalf("Itanium cores of one chip must share the ITC")
	}
	if x.Oscillator() == z.Oscillator() {
		t.Fatalf("Itanium chips must have distinct ITCs")
	}
}

func TestClusterSystemClockPerNode(t *testing.T) {
	cl, err := NewCluster(Xeon(), clock.PresetFor(clock.Gettimeofday, "xeon"), 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := cl.Clock(CoreID{0, 0, 0})
	b, _ := cl.Clock(CoreID{0, 1, 0}) // other chip, same node
	if a.Oscillator() != b.Oscillator() {
		t.Fatalf("gettimeofday must be per node, chips got distinct oscillators")
	}
}

func TestClusterGlobalClockShared(t *testing.T) {
	cl, err := NewCluster(Xeon(), clock.PresetFor(clock.GlobalHW, "xeon"), 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := cl.Clock(CoreID{0, 0, 0})
	b, _ := cl.Clock(CoreID{61, 1, 3})
	if a.Oscillator() != b.Oscillator() {
		t.Fatalf("global clock must be machine-wide")
	}
	if a.Offset() != 0 || b.Offset() != 0 {
		t.Fatalf("global clock must have zero offsets")
	}
}

func TestClusterClockCached(t *testing.T) {
	cl, _ := NewCluster(Xeon(), clock.PresetFor(clock.TSC, "xeon"), 1)
	a, _ := cl.Clock(CoreID{0, 0, 0})
	b, _ := cl.Clock(CoreID{0, 0, 0})
	if a != b {
		t.Fatalf("Clock not cached per core")
	}
}

func TestClusterRejectsBadCore(t *testing.T) {
	cl, _ := NewCluster(Xeon(), clock.PresetFor(clock.TSC, "xeon"), 1)
	if _, err := cl.Clock(CoreID{99, 0, 0}); err == nil {
		t.Fatalf("nonexistent core must error")
	}
}

func TestClusterDeterministic(t *testing.T) {
	read := func() float64 {
		cl, _ := NewCluster(Xeon(), clock.PresetFor(clock.TSC, "xeon"), 42)
		c, _ := cl.Clock(CoreID{3, 1, 2})
		return c.Read(100)
	}
	if read() != read() {
		t.Fatalf("cluster clocks not deterministic")
	}
}

func TestIntraNodeOffsetsSmall(t *testing.T) {
	// §IV end: co-located clocks differ by far less than across nodes
	// (on Itanium, where chips have their own oscillators)
	cl, _ := NewCluster(Itanium(), clock.PresetFor(clock.TSC, "itanium"), 3)
	a, _ := cl.Clock(CoreID{0, 0, 0})
	b, _ := cl.Clock(CoreID{0, 1, 0})
	xe, _ := NewCluster(Xeon(), clock.PresetFor(clock.TSC, "xeon"), 3)
	d, _ := xe.Clock(CoreID{1, 0, 0})
	a2, _ := xe.Clock(CoreID{0, 0, 0})
	_ = a2
	intra := math.Abs(a.Ideal(0) - b.Ideal(0))
	inter := math.Abs(a2.Ideal(0) - d.Ideal(0))
	if intra > 5e-6 {
		t.Fatalf("intra-node offset %v s too large", intra)
	}
	if inter < 1e-3 {
		t.Fatalf("inter-node offset %v s suspiciously small", inter)
	}
}

func TestCoreIDString(t *testing.T) {
	if got := (CoreID{1, 2, 3}).String(); got != "1:2:3" {
		t.Fatalf("CoreID.String = %q", got)
	}
}
