package replay_test

// Fault matrix: replay after salvage. A burst-corrupted v2 trace loses
// events, which severs messages and tears collective instances; the
// tolerant replay must degrade those to reported dropped edges and a
// Partial result — never panic, never fail — while the surviving graph
// still replays with interleaving-invariant checksums. The strict
// engine must refuse the same trace, which is what forces callers to
// opt in to partial verdicts.

import (
	"bytes"
	"io"
	"testing"

	"tsync/internal/faultinject"
	"tsync/internal/replay"
	"tsync/internal/stream"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// salvagedTrace corrupts a v2 synth trace with burst flips and
// materializes whatever a salvage-enabled source recovers.
func salvagedTrace(t *testing.T, spec stream.SynthSpec, bursts, burstLen int) (*trace.Trace, *stream.Source) {
	t.Helper()
	var buf bytes.Buffer
	if _, _, err := stream.Synth(spec, &buf); err != nil {
		t.Fatalf("Synth: %v", err)
	}
	data := buf.Bytes()
	flips := faultinject.NewBurstFlips(xrand.SeedAt(replaySeed, 9), int64(len(data)), bursts, burstLen)
	if flips.Count() == 0 {
		t.Fatal("no corruption generated")
	}
	src, err := stream.NewSourceOpts(&faultinject.ReaderAt{R: bytes.NewReader(data), F: flips},
		stream.SourceOptions{Salvage: true})
	if err != nil {
		t.Fatalf("salvage source: %v", err)
	}
	if !src.Salvaged() {
		t.Fatal("corrupted input not reported as salvaged")
	}
	h := src.Header()
	tr := &trace.Trace{Machine: h.Machine, Timer: h.Timer, MinLatency: h.MinLatency, Regions: h.Regions}
	for rank, ph := range src.Procs() {
		p := trace.Proc{Rank: ph.Rank, Core: ph.Core, Clock: ph.Clock}
		cur := src.Cursor(rank)
		var ev trace.Event
		for {
			if err := cur.Next(&ev); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("rank %d: cursor: %v", rank, err)
			}
			p.Events = append(p.Events, ev)
		}
		tr.Procs = append(tr.Procs, p)
	}
	return tr, src
}

func TestTolerantReplayAfterSalvage(t *testing.T) {
	spec := stream.SynthSpec{
		Ranks: 4, Steps: 250, CollEvery: 5,
		Seed: xrand.SeedAt(replaySeed, 8), Version: trace.Version2, FrameEvents: 16,
	}
	tr, _ := salvagedTrace(t, spec, 4, 96)

	// the strict engine refuses a trace with severed edges
	if _, err := replay.New(tr, replay.Options{}); err == nil {
		t.Fatal("strict engine accepted a salvaged trace with severed edges")
	}

	eng, err := replay.New(tr, replay.Options{Tolerant: true})
	if err != nil {
		t.Fatalf("tolerant engine: %v", err)
	}
	if eng.DroppedEdges() == 0 {
		t.Fatal("burst corruption severed no edges — the fault case is not exercised")
	}
	canon, err := eng.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if !canon.Partial || canon.DroppedEdges != eng.DroppedEdges() {
		t.Fatalf("partial replay not reported: %+v", canon)
	}
	reps, err := eng.ReplaySeeds(replay.Seeds(replaySeed, 3), 4)
	if err != nil {
		t.Fatalf("ReplaySeeds: %v", err)
	}
	for _, r := range reps {
		if !r.Partial {
			t.Errorf("seed %d: partial flag lost", r.Seed)
		}
		if r.Checksum != canon.Checksum {
			t.Errorf("seed %d: checksum %s != canonical %s", r.Seed, r.Checksum, canon.Checksum)
		}
		// the surviving graph still has to replay in a valid order
		if r.Counts.ProgramOrder != 0 {
			t.Errorf("seed %d: replay broke program order: %+v", r.Seed, r.Counts)
		}
	}
}

// TestTolerantReplayCleanTrace: tolerance must cost nothing on intact
// input — same counts, same checksum, nothing dropped.
func TestTolerantReplayCleanTrace(t *testing.T) {
	tr, _, _ := synthTrace(t, stream.SynthSpec{Ranks: 3, Steps: 100, CollEvery: 5, Seed: 0x66})
	strict, err := replay.New(tr, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tolerant, err := replay.New(tr, replay.Options{Tolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	if tolerant.DroppedEdges() != 0 {
		t.Fatalf("tolerant build dropped %d edges on a clean trace", tolerant.DroppedEdges())
	}
	cs, err := strict.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tolerant.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Checksum != ct.Checksum || cs.Counts != ct.Counts || ct.Partial {
		t.Fatalf("tolerant mode changed a clean replay: %+v vs %+v", cs, ct)
	}
}
