package faultinject

// Deterministic network faults for exercising tsyncd's robustness
// surface: a connection that dies mid-stream after an exact byte count,
// writes delivered in awkward partial chunks, and reads cut off the same
// way. Like every fault in this package, the schedule is a pure function
// of its configuration — byte thresholds and xrand seeds — never of
// wall-clock time, so a failing session reproduces exactly. Stalled
// ("slow-loris") peers are modeled by simply not writing: the server's
// idle deadline, not a fault primitive, decides when they die.

import (
	"errors"
	"io"
	"net"

	"tsync/internal/xrand"
)

// ErrReset is the error FaultConn injects when a connection passes its
// byte budget, standing in for ECONNRESET. The kernel-level error text a
// real peer would see varies by platform; protocol code must treat any
// read/write error as a dead peer, so one sentinel suffices.
var ErrReset = errors.New("faultinject: injected connection reset")

// FaultConn wraps a net.Conn with deterministic byte-level faults. The
// zero thresholds disable each fault, so a zero-configured FaultConn is
// a transparent wrapper. FaultConn is not safe for concurrent Writes (or
// concurrent Reads); tsyncd's client issues both sequentially, as real
// protocol code does.
type FaultConn struct {
	net.Conn
	// WriteResetAfter kills the connection once that many bytes have
	// been written: the write that crosses the threshold delivers the
	// bytes up to it, closes the underlying conn (so the peer observes
	// EOF/RST mid-frame), and every later write fails with ErrReset.
	WriteResetAfter int64
	// ReadResetAfter does the same on the read side.
	ReadResetAfter int64
	// ShortWrites, when non-nil, splits every Write into chunks of
	// 1..ShortMax bytes drawn from this source — the classic partial
	// write a loaded kernel produces. The bytes themselves are
	// unchanged, so a correct peer must see no difference.
	ShortWrites *xrand.Source
	// ShortMax bounds the chunk size; <= 0 selects 7, the same awkward
	// prime ShortReader uses.
	ShortMax int

	written, read int64
	dead          bool
}

func (c *FaultConn) chunk(n int) int {
	max := c.ShortMax
	if max <= 0 {
		max = 7
	}
	k := 1 + c.ShortWrites.Intn(max)
	if k > n {
		k = n
	}
	return k
}

// Write delivers p through the fault schedule. A reset mid-p reports the
// bytes actually delivered with ErrReset, exactly like a real socket
// dying under a partially-flushed buffer.
func (c *FaultConn) Write(p []byte) (int, error) {
	if c.dead {
		return 0, ErrReset
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		if c.ShortWrites != nil {
			n = c.chunk(n)
		}
		if c.WriteResetAfter > 0 && c.written+int64(n) > c.WriteResetAfter {
			n = int(c.WriteResetAfter - c.written)
			if n > 0 {
				m, err := c.Conn.Write(p[:n])
				total += m
				c.written += int64(m)
				if err != nil {
					return total, err
				}
			}
			c.dead = true
			c.Conn.Close()
			return total, ErrReset
		}
		m, err := c.Conn.Write(p[:n])
		total += m
		c.written += int64(m)
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

// Read mirrors Write's reset schedule on the inbound side.
func (c *FaultConn) Read(p []byte) (int, error) {
	if c.dead {
		return 0, ErrReset
	}
	if c.ReadResetAfter > 0 {
		if c.read >= c.ReadResetAfter {
			c.dead = true
			c.Conn.Close()
			return 0, ErrReset
		}
		if int64(len(p)) > c.ReadResetAfter-c.read {
			p = p[:c.ReadResetAfter-c.read]
		}
	}
	n, err := c.Conn.Read(p)
	c.read += int64(n)
	return n, err
}

// CorruptWriter XORs F's flips into the byte stream as it is written —
// the wire-level counterpart of ReaderAt, for corrupting a trace body in
// flight rather than at rest. Offsets are relative to the bytes passed
// through this writer.
type CorruptWriter struct {
	W   io.Writer
	F   *Flips
	off int64
}

func (w *CorruptWriter) Write(p []byte) (int, error) {
	buf := make([]byte, len(p))
	copy(buf, p)
	w.F.Apply(buf, w.off)
	n, err := w.W.Write(buf)
	w.off += int64(n)
	return n, err
}
