package main

// The quickstart must keep working as the API evolves: run it end to end
// at a reduced size under go test ./... and check the narrative output
// reaches its conclusion.

import (
	"bytes"
	"strings"
	"testing"

	"tsync"
)

func TestQuickstartRuns(t *testing.T) {
	job := tsync.Job{Machine: "xeon", Timer: "tsc", Ranks: 4, Seed: 42, Tracing: true}
	var out bytes.Buffer
	if err := run(&out, job, 10); err != nil {
		t.Fatalf("quickstart: %v", err)
	}
	for _, want := range []string{"traced ", "raw:", "interpolated:", "interp + CLC:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}
