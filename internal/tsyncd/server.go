package tsyncd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"time"

	"tsync/internal/core"
	"tsync/internal/stream"
	"tsync/internal/trace"
)

// Config tunes the server. The zero value selects the defaults below;
// durations are relative timeouts (the package converts to absolute
// conn deadlines in exactly one place, clock.go).
type Config struct {
	// MaxSessions bounds the sessions running concurrently; default 4.
	MaxSessions int
	// MaxQueue bounds the admissions waiting for a slot beyond the
	// running ones; further arrivals are rejected busy. Default 16;
	// negative means no queue (reject immediately when full).
	MaxQueue int
	// QueueTimeout bounds the wait for a slot; default 5s.
	QueueTimeout time.Duration
	// IdleTimeout reaps clients that stall between frames ("slow
	// loris"); it also bounds each outbound frame write. Default 30s.
	IdleTimeout time.Duration
	// DrainTimeout is the grace in-flight sessions get after Serve's
	// context cancels before they are aborted. Default 10s.
	DrainTimeout time.Duration
	// DefaultQuota applies to tenants absent from Tenants. The zero
	// quota is unlimited.
	DefaultQuota Quota
	// Tenants maps tenant names to their quotas.
	Tenants map[string]Quota
	// SpillFS overrides the filesystem sessions spill reorder-window
	// overflow to; nil selects OS temp files, exactly like the CLI.
	SpillFS stream.SpillFS
	// Logf, when non-nil, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Server runs trace-sync sessions over a listener. Construct with New,
// run with Serve; Serve returns only after a full drain, so a returned
// Serve means no session goroutines remain and every spill file is
// gone.
type Server struct {
	cfg   Config
	slots chan struct{}

	mu       sync.Mutex
	tenants  map[string]*tenant
	sessions map[uint64]*stream.Session
	conns    map[net.Conn]struct{}
	nextID   uint64
	queued   int
	draining bool

	wg sync.WaitGroup
}

// New returns an idle server with cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.MaxSessions),
		tenants:  map[string]*tenant{},
		sessions: map[uint64]*stream.Session{},
		conns:    map[net.Conn]struct{}{},
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until ctx cancels, then drains: the
// listener closes, new admissions are rejected with CodeDraining,
// in-flight sessions get DrainTimeout to finish before they are
// aborted, and Serve returns once every connection handler has exited.
// The listener error that ends the accept loop is returned only when it
// was not the shutdown path's own Close.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-stop:
		}
		ln.Close()
	}()
	var serveErr error
	for ctx.Err() == nil {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil {
				serveErr = err
			}
			break
		}
		s.wg.Add(1)
		go s.handle(ctx, conn)
	}
	close(stop)
	s.drain()
	return serveErr
}

// drain finishes every in-flight handler: a grace period first, then
// abort. It runs on Serve's goroutine after the accept loop ends.
func (s *Server) drain() {
	s.mu.Lock()
	s.draining = true
	n := len(s.sessions)
	s.mu.Unlock()
	s.logf("draining: %d sessions in flight", n)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	grace, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	select {
	case <-done:
	case <-grace.Done():
		s.abortAll()
		<-done
	}
	s.logf("drain complete")
}

// abortAll cancels every registered session and closes every tracked
// connection, unblocking handlers stuck in conn reads or writes.
func (s *Server) abortAll() {
	s.mu.Lock()
	sessions := make([]*stream.Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess) //tsync:unordered — every session is aborted and every conn closed; the visit order cannot change any outcome
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c) //tsync:unordered — every session is aborted and every conn closed; the visit order cannot change any outcome
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.Abort()
	}
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// admit acquires a session slot: immediately, or by queueing up to
// MaxQueue waiters for at most QueueTimeout. A nil return means the
// caller holds a slot and must releaseSlot.
func (s *Server) admit(ctx context.Context) *Error {
	if ctx.Err() != nil || s.isDraining() {
		return errf(CodeDraining, "server is shutting down")
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	s.mu.Lock()
	if s.queued >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return errf(CodeBusy, "%d sessions running, %d queued", s.cfg.MaxSessions, s.cfg.MaxQueue)
	}
	s.queued++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
	}()
	wait, cancel := context.WithTimeout(ctx, s.cfg.QueueTimeout)
	defer cancel()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-wait.Done():
		if ctx.Err() != nil {
			return errf(CodeDraining, "server is shutting down")
		}
		return errf(CodeQueueTimeout, "no session slot within %s", s.cfg.QueueTimeout)
	}
}

func (s *Server) releaseSlot() { <-s.slots }

func (s *Server) trackConn(c net.Conn) {
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) register(id uint64, sess *stream.Session) {
	s.mu.Lock()
	s.sessions[id] = sess
	s.mu.Unlock()
}

func (s *Server) unregister(id uint64) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

// handle owns one connection end to end.
func (s *Server) handle(ctx context.Context, conn net.Conn) {
	defer s.wg.Done()
	s.trackConn(conn)
	defer s.untrackConn(conn)
	defer conn.Close()
	if err := s.session(ctx, conn); err != nil {
		s.logf("session %s: %v", conn.RemoteAddr(), err)
	}
}

// reply sends a typed JSON frame under a fresh write deadline, best
// effort: the peer may already be gone.
func (s *Server) reply(conn net.Conn, typ byte, v any) {
	armWrite(conn, s.cfg.IdleTimeout)
	if err := writeJSONFrame(conn, typ, v); err != nil {
		s.logf("reply %s: %v", conn.RemoteAddr(), err)
	}
}

// classifyIO maps a raw conn read error onto the protocol: deadline
// expiry is the idle reaper firing; anything else is the peer dying,
// which has no one left to classify for.
func classifyIO(err error) *Error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return errf(CodeIdleTimeout, "no frame within the idle deadline")
	}
	return nil
}

// session speaks the protocol on one connection: handshake, admission,
// spool, run, result. The returned error is diagnostic only (it goes to
// Logf); every classifiable failure has already been sent to the peer
// as a REJECT or ERROR frame.
func (s *Server) session(ctx context.Context, conn net.Conn) error {
	br := bufio.NewReader(conn)

	// Handshake. The idle deadline covers it: a connection that never
	// says hello is reaped like one that stalls mid-stream.
	armRead(conn, s.cfg.IdleTimeout)
	typ, payload, err := readFrame(br, DefaultMaxFrame)
	if err != nil {
		var perr *Error
		if errors.As(err, &perr) {
			s.reply(conn, fError, perr)
			return perr
		}
		if ce := classifyIO(err); ce != nil {
			s.reply(conn, fError, ce)
			return ce
		}
		return err
	}
	var h Hello
	if typ != fHello {
		perr := errf(CodeMalformed, "expected HELLO, got frame type %#x", typ)
		s.reply(conn, fError, perr)
		return perr
	}
	if err := json.Unmarshal(payload, &h); err != nil {
		perr := errf(CodeMalformed, "undecodable HELLO: %v", err)
		s.reply(conn, fError, perr)
		return perr
	}
	pipe, perr := buildPipeline(h)
	if perr != nil {
		s.reply(conn, fReject, perr)
		return perr
	}

	// Admission.
	if perr := s.admit(ctx); perr != nil {
		s.reply(conn, fReject, perr)
		return perr
	}
	defer s.releaseSlot()
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	s.reply(conn, fAccept, Accept{Session: id})

	// Spool the trace body under the tenant's byte budget. The reorder
	// window's spill path is accounted separately below; this budget
	// bounds what a tenant can make the server buffer.
	tn := s.tenantFor(h.Tenant)
	var spool bytes.Buffer
	var charged int64
	defer func() { tn.release(charged, 0) }()
	for {
		if ctx.Err() != nil {
			// The server began draining while this client was still
			// uploading; without its remaining bytes the session can
			// never finish, so it is refused rather than kept alive.
			perr := errf(CodeDraining, "server is shutting down")
			s.reply(conn, fError, perr)
			return perr
		}
		armRead(conn, s.cfg.IdleTimeout)
		typ, payload, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			var perr *Error
			if errors.As(err, &perr) {
				s.reply(conn, fError, perr)
				return perr
			}
			if ce := classifyIO(err); ce != nil {
				s.reply(conn, fError, ce)
				return ce
			}
			return err
		}
		switch typ {
		case fData:
			if perr := tn.chargeBytes(int64(len(payload))); perr != nil {
				s.reply(conn, fError, perr)
				return perr
			}
			charged += int64(len(payload))
			spool.Write(payload)
		case fPing:
			armWrite(conn, s.cfg.IdleTimeout)
			if err := writeFrame(conn, fPong, nil); err != nil {
				return err
			}
		case fAbort:
			perr := errf(CodeAborted, "client abort")
			s.reply(conn, fError, perr)
			return perr
		case fEOF:
		default:
			perr := errf(CodeMalformed, "unexpected frame type %#x during upload", typ)
			s.reply(conn, fError, perr)
			return perr
		}
		if typ == fEOF {
			break
		}
	}

	return s.run(conn, id, h, pipe, tn, spool.Bytes())
}

// run indexes the spooled trace and executes the correction session,
// streaming the corrected bytes back when asked and always reporting
// the output checksum.
func (s *Server) run(conn net.Conn, id uint64, h Hello, pipe stream.Pipeline, tn *tenant, data []byte) error {
	src, err := stream.NewSourceOpts(bytes.NewReader(data), stream.SourceOptions{
		Salvage: h.Salvage, MaxSkipBytes: h.MaxSkipBytes,
	})
	if err != nil {
		perr := errf(CodeBadTrace, "%v", err)
		s.reply(conn, fError, perr)
		return perr
	}
	var events int64
	for _, ph := range src.Procs() {
		events += int64(ph.EventCount)
	}
	if perr := tn.checkEvents(events); perr != nil {
		s.reply(conn, fError, perr)
		return perr
	}

	// Spill writes charge the tenant budget through the decorated FS;
	// the session owns (and removes) its spill directory when no FS was
	// configured.
	qfs, spillCleanup, err := newSessionSpill(s.cfg.SpillFS, tn)
	if err != nil {
		perr := errf(CodeInternal, "spill dir: %v", err)
		s.reply(conn, fError, perr)
		return perr
	}
	defer spillCleanup()
	pipe.Options.SpillFS = qfs
	defer func() { tn.release(0, qfs.spilled()) }()

	sess := stream.NewSession(pipe, src)
	s.register(id, sess)
	defer s.unregister(id)

	hash := fnv.New64a()
	var out io.Writer = hash
	if h.WantTrace {
		out = io.MultiWriter(hash, &frameWriter{conn: conn, idle: s.cfg.IdleTimeout})
	}
	// The session runs under its own root: drain must not cancel it
	// implicitly — in-flight work gets the grace period, and abortAll
	// ends it explicitly through sess.Abort after that.
	res, err := sess.Run(context.Background(), out, h.Init, h.Fin)
	if err != nil {
		perr := classifyRun(err, sess.State())
		if perr == nil {
			return err // conn-level write failure: no peer left to tell
		}
		s.reply(conn, fError, perr)
		return perr
	}
	done := Done{
		Result:   res,
		Checksum: fmt.Sprintf("%016x", hash.Sum64()),
		Partial:  src.Salvaged(),
	}
	s.reply(conn, fDone, done)
	return nil
}

// classifyRun maps a pipeline failure onto the protocol's error codes.
// A nil return means the failure was the connection itself dying — the
// one case with nothing useful to send.
func classifyRun(err error, st stream.SessionState) *Error {
	var perr *Error
	switch {
	case errors.As(err, &perr):
		return perr // quota errors travel out of the spill FS intact
	case errors.Is(err, stream.ErrWindowExceeded):
		return errf(CodeWindow, "%v", err)
	case errors.Is(err, stream.ErrUnsupported):
		return errf(CodeUnsupported, "%v", err)
	case errors.Is(err, trace.ErrBadFormat), errors.Is(err, trace.ErrSalvageBudget):
		return errf(CodeBadTrace, "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if st == stream.SessionAborted {
			return errf(CodeAborted, "session aborted by server drain")
		}
		return errf(CodeAborted, "%v", err)
	case isConnError(err):
		return nil
	}
	return errf(CodeInternal, "%v", err)
}

// isConnError reports failures whose cause is the transport: the
// corrected-trace writer hit a dead or stalled peer.
func isConnError(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// buildPipeline translates a Hello into the same stream.Pipeline the
// CLI would build from equal flags; any discrepancy here would break
// the bit-identity contract, so it deliberately shares the parser
// entry points (core.ParseBase, stream.ParsePolicy) with cmd/tracesync.
func buildPipeline(h Hello) (stream.Pipeline, *Error) {
	var pipe stream.Pipeline
	if h.Base != "" {
		b, err := core.ParseBase(h.Base)
		if err != nil {
			return pipe, errf(CodeMalformed, "%v", err)
		}
		pipe.Base = b
	}
	policy := stream.PolicySpill
	if h.Policy != "" {
		p, err := stream.ParsePolicy(h.Policy)
		if err != nil {
			return pipe, errf(CodeMalformed, "%v", err)
		}
		policy = p
	}
	pipe.CLC = h.CLC
	pipe.Options = stream.Options{
		Window: h.Window, Policy: policy, Shards: h.Shards, Batch: h.Batch, Salvage: h.Salvage,
	}
	return pipe, nil
}

// frameWriter chunks the corrected trace into RESULT frames, refreshing
// the write deadline per chunk so one stalled client cannot wedge its
// handler past the idle budget.
type frameWriter struct {
	conn net.Conn
	idle time.Duration
}

func (w *frameWriter) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > resultChunk {
			n = resultChunk
		}
		armWrite(w.conn, w.idle)
		if err := writeFrame(w.conn, fResult, p[:n]); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}
