// Package interp is the negative fixture: a sanctioned correction
// package may rewrite Event.Time directly.
package interp

import "tsync/internal/trace"

// Apply maps local timestamps through a correction, as the real
// interpolation layer does.
func Apply(evs []trace.Event, f func(float64) float64) {
	for i := range evs {
		evs[i].Time = f(evs[i].Time)
	}
}
