package clock

import (
	"tsync/internal/xrand"
)

// Clock is one readable processor clock: an oscillator (possibly shared by
// all cores of a chip) plus per-reader properties — initial offset,
// resolution quantization, read noise, read overhead, and OS jitter.
//
// Read is stateful when monotonic enforcement is on; reads must arrive in
// non-decreasing true-time order, which the discrete-event simulation
// guarantees per reader (each simulated core owns its Clock).
type Clock struct {
	name       string
	osc        *Oscillator
	offset     float64 // local value at true time 0
	resolution float64 // quantization step in seconds; 0 disables
	readNoise  float64 // std dev of per-read error in seconds
	overhead   float64 // mean read overhead in seconds
	overheadSD float64 // std dev of read overhead
	jitterProb float64 // probability a read is hit by OS jitter
	jitterMean float64 // mean extra delay of a jittered read (exponential)
	monotonic  bool
	rng        *xrand.Source
	last       float64
	hasLast    bool
}

// Config carries the per-reader properties of a Clock.
type Config struct {
	Name           string
	Offset         float64
	Resolution     float64
	ReadNoise      float64
	Overhead       float64
	OverheadJitter float64
	JitterProb     float64
	JitterMean     float64
	Monotonic      bool
}

// New creates a Clock reading the given oscillator. rng must be a private
// stream for this reader.
func New(cfg Config, osc *Oscillator, rng *xrand.Source) *Clock {
	return &Clock{
		name:       cfg.Name,
		osc:        osc,
		offset:     cfg.Offset,
		resolution: cfg.Resolution,
		readNoise:  cfg.ReadNoise,
		overhead:   cfg.Overhead,
		overheadSD: cfg.OverheadJitter,
		jitterProb: cfg.JitterProb,
		jitterMean: cfg.JitterMean,
		monotonic:  cfg.Monotonic,
		rng:        rng,
	}
}

// Name returns the clock's diagnostic name.
func (c *Clock) Name() string { return c.name }

// Resolution returns the quantization step in seconds (0 if none).
func (c *Clock) Resolution() float64 { return c.resolution }

// Offset returns the configured initial offset (local value at true time 0).
func (c *Clock) Offset() float64 { return c.offset }

// Oscillator returns the underlying oscillator (shared by clocks on the
// same chip).
func (c *Clock) Oscillator() *Oscillator { return c.osc }

// Read returns the local timestamp observed at true time t.
func (c *Clock) Read(t float64) float64 {
	v := c.offset + c.osc.Elapsed(t)
	if c.readNoise > 0 {
		v += c.rng.Normal(0, c.readNoise)
	}
	if c.resolution > 0 {
		// floor to the previous representable tick, like a real counter
		steps := int64(v / c.resolution)
		v = float64(steps) * c.resolution
	}
	if c.monotonic {
		if c.hasLast && v <= c.last {
			step := c.resolution
			if step == 0 {
				step = 1e-9
			}
			v = c.last + step
		}
		c.last = v
		c.hasLast = true
	}
	return v
}

// ReadOverhead samples the simulated-time cost of one clock read, including
// occasional OS-jitter interference (daemon wakeups, interrupts —
// Section III.c). The discrete-event layer advances simulated time by this
// amount around each timestamp.
func (c *Clock) ReadOverhead() float64 {
	d := c.overhead
	if c.overheadSD > 0 {
		d += c.rng.Normal(0, c.overheadSD)
	}
	if d < 0 {
		d = 0
	}
	if c.jitterProb > 0 && c.rng.Bool(c.jitterProb) {
		d += c.rng.Exponential(c.jitterMean)
	}
	return d
}

// Ideal returns the noiseless, unquantized local time at true time t. The
// analyses use it to separate drift effects from measurement effects; the
// experiments that mimic the paper use Read.
func (c *Clock) Ideal(t float64) float64 {
	return c.offset + c.osc.Elapsed(t)
}
