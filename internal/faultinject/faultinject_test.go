package faultinject

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestFlipsDeterministic(t *testing.T) {
	a := NewFlips(42, 1<<16, 1e-3)
	b := NewFlips(42, 1<<16, 1e-3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different flip sets")
	}
	c := NewFlips(43, 1<<16, 1e-3)
	if reflect.DeepEqual(a.offs, c.offs) {
		t.Fatal("different seeds produced identical flip offsets")
	}
	if a.Count() == 0 {
		t.Fatal("rate 1e-3 over 64 KiB produced no flips")
	}
	for i, m := range a.masks {
		if m == 0 {
			t.Fatalf("flip %d has zero mask", i)
		}
	}
	for i := 1; i < len(a.offs); i++ {
		if a.offs[i] <= a.offs[i-1] {
			t.Fatalf("offsets not strictly increasing at %d", i)
		}
	}
}

func TestBurstFlips(t *testing.T) {
	f := NewBurstFlips(7, 4096, 3, 16)
	if f.Count() == 0 || f.Count() > 3*16 {
		t.Fatalf("burst flip count %d out of range", f.Count())
	}
	for i := 1; i < len(f.offs); i++ {
		if f.offs[i] <= f.offs[i-1] {
			t.Fatalf("offsets not strictly increasing at %d", i)
		}
	}
}

// TestApplyWindows checks that applying flips window-by-window at any
// window size produces the same corrupted image as one whole-buffer
// application — the property that makes ReaderAt consistent across
// readers with different chunk sizes.
func TestApplyWindows(t *testing.T) {
	const size = 1 << 12
	clean := make([]byte, size)
	for i := range clean {
		clean[i] = byte(i)
	}
	f := NewFlips(99, size, 0.01)
	whole := append([]byte(nil), clean...)
	f.Apply(whole, 0)
	if bytes.Equal(whole, clean) {
		t.Fatal("flips changed nothing")
	}
	for _, win := range []int{1, 3, 64, 1000} {
		img := append([]byte(nil), clean...)
		for off := 0; off < size; off += win {
			end := off + win
			if end > size {
				end = size
			}
			f.Apply(img[off:end], int64(off))
		}
		if !bytes.Equal(img, whole) {
			t.Fatalf("window size %d produced a different image", win)
		}
	}
}

func TestReaderAt(t *testing.T) {
	clean := make([]byte, 1024)
	for i := range clean {
		clean[i] = 0xAA
	}
	f := NewFlips(5, 1024, 0.05)
	r := &ReaderAt{R: bytes.NewReader(clean), F: f}
	got := make([]byte, 1024)
	if _, err := r.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), clean...)
	f.Apply(want, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("ReaderAt image differs from direct Apply")
	}
	// sequential Reader sees the same image
	sr := &Reader{R: bytes.NewReader(clean), F: f}
	seq, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, want) {
		t.Fatal("Reader image differs from ReaderAt image")
	}
}

func TestTruncatedReaderAt(t *testing.T) {
	data := []byte("0123456789")
	r := &TruncatedReaderAt{R: bytes.NewReader(data), N: 4}
	p := make([]byte, 10)
	n, err := r.ReadAt(p, 0)
	if n != 4 || (err != nil && err != io.EOF) {
		t.Fatalf("got n=%d err=%v, want 4 bytes and EOF", n, err)
	}
	if string(p[:n]) != "0123" {
		t.Fatalf("got %q", p[:n])
	}
	if _, err := r.ReadAt(p, 4); err != io.EOF {
		t.Fatalf("read past truncation: %v, want EOF", err)
	}
}

func TestShortReader(t *testing.T) {
	data := bytes.Repeat([]byte("abc"), 1000)
	sr := NewShortReader(bytes.NewReader(data), 11, 0)
	got, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("short reads corrupted the stream")
	}
}

func TestQuotaWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &QuotaWriter{W: &buf, Remaining: 10}
	if n, err := w.Write([]byte("0123456")); n != 7 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err := w.Write([]byte("789AB"))
	if n != 3 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overflowing write: n=%d err=%v, want 3, ErrNoSpace", n, err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("post-quota write: %v, want ErrNoSpace", err)
	}
	if buf.String() != "0123456789" {
		t.Fatalf("wrote %q", buf.String())
	}
}

func TestFS(t *testing.T) {
	fs := NewFS(8)
	w, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := w.Write([]byte("0123")); n != 4 || err != nil {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("456789")); n != 4 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("quota write: n=%d err=%v, want 4, ErrNoSpace", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	if string(got) != "01234567" {
		t.Fatalf("read back %q", got)
	}
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
	fs.FailCreates(1)
	if _, err := fs.Create("b"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("failed create: %v, want ErrNoSpace", err)
	}
	if _, err := fs.Create("b"); err != nil {
		t.Fatalf("create after fail budget: %v", err)
	}
}

func TestHookReaderAt(t *testing.T) {
	data := make([]byte, 100)
	fired := 0
	h := &HookReaderAt{R: bytes.NewReader(data), Offset: 50, Fn: func() { fired++ }}
	p := make([]byte, 10)
	if _, err := h.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("hook fired before its offset")
	}
	if _, err := h.ReadAt(p, 45); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times after crossing offset, want 1", fired)
	}
	if _, err := h.ReadAt(p, 60); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times total, want exactly 1", fired)
	}
}

func TestDistort(t *testing.T) {
	d := Distort([]ClockFault{
		{Rank: 1, Kind: Step, At: 1.0, Delta: 0.5},
		{Rank: -1, Kind: FreqJump, At: 2.0, Delta: 1e-3},
		{Rank: 2, Kind: Reset, At: 3.0, Delta: 0.0},
	})
	if got := d(1, 0.5, 0.5); got != 0.5 {
		t.Fatalf("pre-fault reading distorted: %v", got) //tsync:exact — constants below the first fault's At; the distorter must return the reading bit-identically untouched
	}
	if got := d(1, 1.5, 1.5); got != 2.0 {
		t.Fatalf("step: got %v, want 2.0", got) //tsync:exact — a Step fault adds Delta exactly once: 1.5 + 0.5 is exact in binary
	}
	if got := d(0, 1.5, 1.5); got != 1.5 {
		t.Fatalf("step leaked to rank 0: %v", got) //tsync:exact — fault targets rank 1 only; rank 0's reading must pass through bit-identical
	}
	if got := d(0, 3.0, 3.0); got != 3.0+1e-3 {
		t.Fatalf("freq jump: got %v", got) //tsync:exact — single rounding: 3.0 + 1e-3 is computed the same way by the distorter
	}
	// rank 2 at t=4: step skipped (rank 1 only), freq jump applies, then
	// reset discards everything → 0 + (4-3) = 1
	if got := d(2, 4.0, 4.0); got != 1.0 {
		t.Fatalf("reset: got %v, want 1.0", got) //tsync:exact — reset discards state then adds elapsed 1.0; both operands exact
	}
}

// TestDistortPureComposition is the determinism contract the fingerprint
// accuracy matrix depends on: Distort must be a pure function of
// (rank, t, c) — stateless across calls, immune to caller mutation of
// the fault slice, and bit-identical however many times or in whatever
// order readings are evaluated. That is what makes a distorted synth
// trace identical no matter how many workers or what batch size the
// consuming pipeline uses.
func TestDistortPureComposition(t *testing.T) {
	faults := []ClockFault{
		{Rank: 1, Kind: Step, At: 0.3, Delta: 2e-3},
		{Rank: -1, Kind: FreqJump, At: 0.6, Delta: 4e-4},
		{Rank: 2, Kind: Reset, At: 0.9, Delta: 0.25},
		{Rank: 1, Kind: Step, At: 1.2, Delta: -1e-3},
	}
	d := Distort(faults)

	// the distorter snapshots the slice: later caller mutation must not
	// leak in
	mutated := Distort(faults)
	faults[0].Delta = 99

	type key struct {
		rank int
		t    float64
	}
	grid := make(map[key]float64)
	for rank := 0; rank < 4; rank++ {
		for i := 0; i <= 60; i++ {
			tt := float64(i) * 0.025
			grid[key{rank, tt}] = d(rank, tt, tt*(1+3e-5))
		}
	}
	// re-evaluate in reverse order and interleaved across ranks: every
	// reading must reproduce bit for bit (tsync:exact justification:
	// determinism IS the property under test)
	for i := 60; i >= 0; i-- {
		tt := float64(i) * 0.025
		for rank := 3; rank >= 0; rank-- {
			c := tt * (1 + 3e-5)
			if got := d(rank, tt, c); got != grid[key{rank, tt}] {
				t.Fatalf("rank %d t=%v: re-evaluation gave %v, first pass %v", rank, tt, got, grid[key{rank, tt}]) //tsync:exact — bit-determinism of re-evaluation is the property under test
			}
			if got := mutated(rank, tt, c); got != grid[key{rank, tt}] {
				t.Fatalf("rank %d t=%v: caller mutation of the fault slice leaked into the distorter", rank, tt) //tsync:exact — the snapshot semantics are the property under test
			}
		}
	}

	// composition is ordered and monotone in application: a reset after
	// a step discards the step; a step after a reset survives it
	stepThenReset := Distort([]ClockFault{
		{Rank: 0, Kind: Step, At: 0.2, Delta: 5.0},
		{Rank: 0, Kind: Reset, At: 0.5, Delta: 0},
	})
	if got := stepThenReset(0, 1.0, 1.0); got != 0.5 {
		t.Errorf("reset after step: got %v, want 0.5 (step discarded)", got) //tsync:exact — 0 + (1.0-0.5) is exact; the reset must erase the step entirely
	}
	resetThenStep := Distort([]ClockFault{
		{Rank: 0, Kind: Reset, At: 0.2, Delta: 0},
		{Rank: 0, Kind: Step, At: 0.5, Delta: 5.0},
	})
	if got := resetThenStep(0, 1.0, 1.0); got != 5.8 {
		t.Errorf("step after reset: got %v, want 5.8", got) //tsync:exact — (1.0-0.2) + 5.0 is exact; the step must survive the earlier reset
	}
}
