// Package errest implements the error-estimation family of postmortem
// synchronization methods surveyed in Section V of the paper: difference
// functions between clock pairs are bounded from both sides by the
// timestamps of exchanged messages (a receive can be no earlier than its
// send plus l_min), and a medial smoothing function between the bounds
// estimates the pairwise offset function.
//
//   - Duda et al.: regression analysis and convex-hull algorithms to
//     determine the smoothing function;
//   - Hofmann: a simpler minimum/maximum strategy;
//   - Jézéquel: propagation to arbitrary processor topologies along a
//     minimum spanning tree rooted at the master.
//
// The estimators produce an interp.Correction mapping every rank onto the
// master (rank 0) time base, directly comparable with offset alignment,
// linear interpolation, and CLC in the ablation benchmarks.
package errest

import (
	"fmt"
	"math"
	"sort"

	"tsync/internal/interp"
	"tsync/internal/lclock"
	"tsync/internal/stats"
	"tsync/internal/trace"
)

// Method selects the smoothing strategy.
type Method int

const (
	// Regression fits least-squares lines to the lower and upper bound
	// point sets and takes their average (Duda).
	Regression Method = iota
	// ConvexHull fits the medial line between the upper hull of the
	// lower bounds and the lower hull of the upper bounds (Duda).
	ConvexHull
	// MinMax uses Hofmann's minimum/maximum strategy: the tightest
	// bounds in the first and last thirds of the run define two medial
	// points, through which the line passes.
	MinMax
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Regression:
		return "duda-regression"
	case ConvexHull:
		return "duda-convex-hull"
	case MinMax:
		return "hofmann-minmax"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// pairData accumulates, for an ordered rank pair (a < b), the bound points
// on the mapping f: local time of b -> local time of a.
//   - lower bounds come from messages a->b: f(recv_b) >= send_a + l_min
//   - upper bounds come from messages b->a: f(send_b) <= recv_a - l_min
type pairData struct {
	lower []stats.Point
	upper []stats.Point
}

// gatherPairs walks all happened-before edges (messages plus
// collective-derived logical messages) and files bound points per
// unordered rank pair.
func gatherPairs(t *trace.Trace) (map[[2]int]*pairData, error) {
	edges, err := lclock.CrossEdges(t)
	if err != nil {
		return nil, err
	}
	pairs := map[[2]int]*pairData{}
	for _, e := range edges {
		from, to := e.From.Rank, e.To.Rank
		sendT := t.Procs[from].Events[e.From.Idx].Time
		recvT := t.Procs[to].Events[e.To.Idx].Time
		lmin := t.MinLatencyBetween(from, to)
		a, b := from, to
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		pd, ok := pairs[key]
		if !ok {
			pd = &pairData{}
			pairs[key] = pd
		}
		if from == a {
			// message a->b: lower bound on f at x=recv_b
			pd.lower = append(pd.lower, stats.Point{X: recvT, Y: sendT + lmin})
		} else {
			// message b->a: upper bound on f at x=send_b
			pd.upper = append(pd.upper, stats.Point{X: sendT, Y: recvT - lmin})
		}
	}
	return pairs, nil
}

// fitPair computes the medial affine map f: local_b -> local_a for one
// pair. It needs bounds from both directions; otherwise it returns an
// error (one-sided communication topologies are a known limitation of
// error estimation, Section V).
func fitPair(pd *pairData, method Method) (stats.Line, error) {
	if len(pd.lower) < 2 || len(pd.upper) < 2 {
		return stats.Line{}, fmt.Errorf("errest: pair needs messages in both directions (%d lower, %d upper bounds)",
			len(pd.lower), len(pd.upper))
	}
	switch method {
	case Regression:
		lo, err := stats.LeastSquares(xs(pd.lower), ys(pd.lower))
		if err != nil {
			return stats.Line{}, err
		}
		hi, err := stats.LeastSquares(xs(pd.upper), ys(pd.upper))
		if err != nil {
			return stats.Line{}, err
		}
		return average(lo, hi), nil
	case ConvexHull:
		loHull := stats.UpperHull(pd.lower) // tightest lower bounds
		hiHull := stats.LowerHull(pd.upper) // tightest upper bounds
		lo, err := hullLine(loHull)
		if err != nil {
			return stats.Line{}, err
		}
		hi, err := hullLine(hiHull)
		if err != nil {
			return stats.Line{}, err
		}
		return average(lo, hi), nil
	case MinMax:
		return minMaxLine(pd)
	default:
		return stats.Line{}, fmt.Errorf("errest: unknown method %d", int(method))
	}
}

func xs(p []stats.Point) []float64 {
	out := make([]float64, len(p))
	for i := range p {
		out[i] = p[i].X
	}
	return out
}

func ys(p []stats.Point) []float64 {
	out := make([]float64, len(p))
	for i := range p {
		out[i] = p[i].Y
	}
	return out
}

func average(a, b stats.Line) stats.Line {
	return stats.Line{Slope: (a.Slope + b.Slope) / 2, Intercept: (a.Intercept + b.Intercept) / 2}
}

// hullLine fits a line through a hull's vertices (least squares over the
// hull, which by construction hugs the tightest bounds). A single-vertex
// hull yields a unit-slope line through the vertex.
func hullLine(h []stats.Point) (stats.Line, error) {
	if len(h) == 0 {
		return stats.Line{}, fmt.Errorf("errest: empty hull")
	}
	if len(h) == 1 {
		return stats.Line{Slope: 1, Intercept: h[0].Y - h[0].X}, nil
	}
	return stats.LeastSquares(xs(h), ys(h))
}

// minMaxLine implements Hofmann's strategy: within the earliest and latest
// thirds of the pair's samples, the tightest lower and upper bounds give a
// medial point each; the line passes through both.
func minMaxLine(pd *pairData) (stats.Line, error) {
	all := append(append([]stats.Point(nil), pd.lower...), pd.upper...)
	sort.Slice(all, func(i, j int) bool { return all[i].X < all[j].X })
	xlo, xhi := all[0].X, all[len(all)-1].X
	if xhi <= xlo {
		return stats.Line{}, fmt.Errorf("errest: degenerate time range")
	}
	third := (xhi - xlo) / 3
	p1, err := medialPoint(pd, xlo, xlo+third)
	if err != nil {
		return stats.Line{}, fmt.Errorf("errest: first window: %w", err)
	}
	p2, err := medialPoint(pd, xhi-third, xhi)
	if err != nil {
		return stats.Line{}, fmt.Errorf("errest: last window: %w", err)
	}
	if p2.X <= p1.X {
		return stats.Line{}, fmt.Errorf("errest: windows collapsed")
	}
	slope := (p2.Y - p1.Y) / (p2.X - p1.X)
	return stats.Line{Slope: slope, Intercept: p1.Y - slope*p1.X}, nil
}

// medialPoint finds the midpoint between the tightest (offset-wise) lower
// and upper bounds within an x-window. Offsets are measured as y - x to
// stay numerically tame.
func medialPoint(pd *pairData, x0, x1 float64) (stats.Point, error) {
	maxLower := math.Inf(-1)
	var maxLowerX float64
	for _, p := range pd.lower {
		if p.X < x0 || p.X > x1 {
			continue
		}
		if off := p.Y - p.X; off > maxLower {
			maxLower = off
			maxLowerX = p.X
		}
	}
	minUpper := math.Inf(1)
	var minUpperX float64
	for _, p := range pd.upper {
		if p.X < x0 || p.X > x1 {
			continue
		}
		if off := p.Y - p.X; off < minUpper {
			minUpper = off
			minUpperX = p.X
		}
	}
	if math.IsInf(maxLower, -1) || math.IsInf(minUpper, 1) {
		return stats.Point{}, fmt.Errorf("no bounds in window [%v, %v]", x0, x1)
	}
	x := (maxLowerX + minUpperX) / 2
	return stats.Point{X: x, Y: x + (maxLower+minUpper)/2}, nil
}

// Estimate builds a correction onto the master time base: pairwise medial
// maps are computed with the chosen method, then propagated from rank 0
// along a minimum spanning tree (Jézéquel) whose edge weight is the
// pairwise uncertainty (fewer bound points = heavier edge).
func Estimate(t *trace.Trace, method Method) (*interp.Correction, error) {
	n := len(t.Procs)
	if n == 0 {
		return nil, fmt.Errorf("errest: empty trace")
	}
	pairs, err := gatherPairs(t)
	if err != nil {
		return nil, err
	}
	toMaster, err := propagate(n, pairs, method)
	if err != nil {
		return nil, err
	}
	return interp.FromLines(toMaster), nil
}

// compose returns g∘f as an affine map.
func compose(g, f stats.Line) stats.Line {
	return stats.Line{Slope: g.Slope * f.Slope, Intercept: g.Slope*f.Intercept + g.Intercept}
}

// invert returns f^{-1} for an affine map with nonzero slope.
func invert(f stats.Line) (stats.Line, error) {
	if f.Slope == 0 {
		return stats.Line{}, fmt.Errorf("errest: non-invertible pair map")
	}
	return stats.Line{Slope: 1 / f.Slope, Intercept: -f.Intercept / f.Slope}, nil
}

// EstimateWindowed fits the pairwise medial maps per time window and
// stitches them into a piecewise correction — the windowed refinement that
// handles drift-rate changes (NTP slews) a single line cannot. Windows
// without enough bidirectional traffic inherit the whole-trace fit. With
// windows < 2 it reduces to Estimate.
func EstimateWindowed(t *trace.Trace, method Method, windows int) (*interp.Correction, error) {
	if windows < 2 {
		return Estimate(t, method)
	}
	n := len(t.Procs)
	if n == 0 {
		return nil, fmt.Errorf("errest: empty trace")
	}
	pairs, err := gatherPairs(t)
	if err != nil {
		return nil, err
	}
	// global fallback lines
	global, err := Estimate(t, method)
	if err != nil {
		return nil, err
	}
	// the x range of all bound points (receiver/sender local times)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pd := range pairs { //tsync:unordered — pure min/max reduction over exact float comparisons; every visit order yields the same extrema
		for _, p := range append(append([]stats.Point(nil), pd.lower...), pd.upper...) {
			if p.X < lo {
				lo = p.X
			}
			if p.X > hi {
				hi = p.X
			}
		}
	}
	if !(hi > lo) {
		return global, nil
	}
	width := (hi - lo) / float64(windows)
	knots := make([]float64, windows)
	perRank := make([][]stats.Line, n)
	for r := range perRank {
		perRank[r] = make([]stats.Line, windows)
	}
	for w := 0; w < windows; w++ {
		w0 := lo + float64(w)*width
		w1 := w0 + width
		knots[w] = w0
		sub := map[[2]int]*pairData{}
		for key, pd := range pairs {
			filtered := &pairData{}
			for _, p := range pd.lower {
				if p.X >= w0 && p.X < w1 {
					filtered.lower = append(filtered.lower, p)
				}
			}
			for _, p := range pd.upper {
				if p.X >= w0 && p.X < w1 {
					filtered.upper = append(filtered.upper, p)
				}
			}
			sub[key] = filtered
		}
		lines, err := propagate(n, sub, method)
		for r := 0; r < n; r++ {
			if err != nil || lines == nil {
				// window too sparse: sample the whole-trace fit as the
				// piece for this window
				y0, y1 := global.Map(r, w0), global.Map(r, w1)
				slope := (y1 - y0) / (w1 - w0)
				perRank[r][w] = stats.Line{Slope: slope, Intercept: y0 - slope*w0}
				continue
			}
			perRank[r][w] = lines[r]
		}
	}
	return interp.FromPiecewiseLines(knots, perRank)
}

// propagate runs the fit + MST propagation over a pair set, returning the
// per-rank local->master lines, or an error when the graph is not
// connected by usable pairs.
func propagate(n int, pairs map[[2]int]*pairData, method Method) ([]stats.Line, error) {
	type fitted struct {
		line stats.Line
		w    float64
	}
	fits := map[[2]int]fitted{}
	for key, pd := range pairs {
		line, err := fitPair(pd, method)
		if err != nil {
			continue
		}
		fits[key] = fitted{line: line, w: 1 / float64(len(pd.lower)+len(pd.upper))}
	}
	// Map iteration order is randomized, so the edge scan below must not
	// range over fits directly: pair weights tie frequently (equal bound
	// counts), and breaking ties by iteration order made the spanning
	// tree — and with it every errest correction — differ from run to
	// run. Scanning keys in sorted order breaks ties toward the smallest
	// rank pair, deterministically.
	keys := make([][2]int, 0, len(fits))
	for key := range fits {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	toMaster := make([]stats.Line, n)
	reached := make([]bool, n)
	toMaster[0] = stats.Line{Slope: 1}
	reached[0] = true
	for {
		best := [2]int{-1, -1}
		bestW := math.Inf(1)
		var bestNew int
		for _, key := range keys {
			f, ok := fits[key]
			if !ok {
				continue
			}
			a, b := key[0], key[1]
			if reached[a] == reached[b] {
				continue
			}
			if f.w < bestW {
				bestW = f.w
				best = key
				if reached[a] {
					bestNew = b
				} else {
					bestNew = a
				}
			}
		}
		if best[0] < 0 {
			break
		}
		a, b := best[0], best[1]
		f := fits[best].line
		if bestNew == b {
			toMaster[b] = compose(toMaster[a], f)
		} else {
			inv, err := invert(f)
			if err != nil {
				delete(fits, best)
				continue
			}
			toMaster[a] = compose(toMaster[b], inv)
		}
		reached[bestNew] = true
	}
	for i, ok := range reached {
		if !ok {
			return nil, fmt.Errorf("errest: rank %d not connected", i)
		}
	}
	return toMaster, nil
}
