package wallclock_test

import (
	"testing"

	"tsync/internal/lint/linttest"
	"tsync/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	linttest.Run(t, wallclock.Analyzer,
		"a",                    // positive: simulation code reading host time/randomness
		"tsync/internal/xrand", // negative: the sanctioned randomness package
		"tsync/cmd/bench",      // negative: cmd/ front-ends may measure the host
		"d",                    // directive: justified suppressions stay silent
	)
}
