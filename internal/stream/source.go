package stream

import (
	"context"
	"fmt"
	"io"
	"sync"

	"tsync/internal/trace"
)

// SourceOptions tune how a trace file is indexed.
type SourceOptions struct {
	// Salvage enables resynchronizing decode for v2 framed traces: on a
	// checksum or structure failure the index pass scans forward to the
	// next valid block instead of failing, records the damage per rank,
	// and keeps every event that survived intact. v1 traces carry no
	// checksums, so for them Salvage changes nothing — corruption still
	// fails the index pass.
	Salvage bool
	// MaxSkipBytes bounds the total bytes salvage may discard before the
	// run fails with trace.ErrSalvageBudget; zero means unlimited.
	MaxSkipBytes int64
	// MaxSkipEvents bounds the known-lost event count the same way.
	MaxSkipEvents int64
}

// Source is an indexed .etr file: the header and per-process metadata
// are held in memory (O(ranks + regions)), while events stay on disk and
// are decoded on demand through per-rank cursors. The index is built by
// one linear decode pass, so a corrupt or truncated file fails here with
// trace.ErrBadFormat before any analysis starts — unless salvage is
// enabled, in which case the damage is recorded instead and the index
// covers exactly the events that survived.
type Source struct {
	r     io.ReaderAt
	head  trace.Header
	procs []trace.ProcHeader
	// eventOff[i] and endOff[i] bound proc i's event bytes.
	eventOff, endOff []int64
	// firstRaw[i] is proc i's first event Time (0 when it has none);
	// the Lamport schedule and summary passes need it without a decode.
	firstRaw []float64
	events   int64

	version  int
	pol      trace.ResyncPolicy
	rep      trace.CorruptionReport
	loss     []RankLoss
	salvaged bool
}

// NewSource indexes a trace readable at r with strict (no salvage)
// decoding. The reader must cover the whole encoded trace.
func NewSource(r io.ReaderAt) (*Source, error) {
	return NewSourceOpts(r, SourceOptions{})
}

// NewSourceOpts indexes a trace readable at r under the given options.
// It is NewSourceContext with a background context; indexing a large
// file that a caller may want to abandon should go through
// NewSourceContext.
func NewSourceOpts(r io.ReaderAt, o SourceOptions) (*Source, error) {
	return NewSourceContext(context.Background(), r, o)
}

// NewSourceContext indexes a trace readable at r under the given
// options. The index pass is one linear decode of the whole file;
// cancelling ctx aborts it between events (checked every ctxCheckEvery
// events, like the streaming engine) and returns ctx.Err().
func NewSourceContext(ctx context.Context, r io.ReaderAt, o SourceOptions) (*Source, error) {
	const probe = 1 << 62 // section length; reads stop at EOF
	pol := trace.ResyncPolicy{Enabled: o.Salvage, MaxSkipBytes: o.MaxSkipBytes, MaxSkipEvents: o.MaxSkipEvents}
	er, err := trace.NewEventReaderOpts(io.NewSectionReader(r, 0, probe), pol)
	if err != nil {
		return nil, err
	}
	s := &Source{r: r, head: er.Header(), pol: pol, version: er.Version()}
	s.loss = make([]RankLoss, s.head.ProcCount)
	for i := range s.loss {
		s.loss[i].Rank = i
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ph, err := er.NextProc()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := s.admitRank(ph.Rank, o.Salvage); err != nil {
			return nil, err
		}
		declared := ph.EventCount
		start := er.SectionStart()
		first := 0.0
		prevTrue := 0.0
		n := 0
		var ev trace.Event
		for {
			if n&(ctxCheckEvery-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			err := er.Read(&ev)
			if err == io.EOF {
				er.TookGap() // a trailing gap severs nothing further
				break
			}
			if err != nil {
				return nil, err
			}
			gap := er.TookGap()
			if n == 0 {
				first = ev.Time
			}
			if n == 0 || gap {
				// a gap severs the monotonicity chain: the events on
				// either side are each internally ordered, but the lost
				// span between them is gone
				prevTrue = ev.True
			} else if ev.True < prevTrue {
				return nil, fmt.Errorf("%w: rank %d event %d: oracle time regressed", trace.ErrBadFormat, ph.Rank, n)
			} else {
				prevTrue = ev.True
			}
			n++
			s.events++
		}
		ph.EventCount = n
		s.procs = append(s.procs, ph)
		s.eventOff = append(s.eventOff, start)
		s.endOff = append(s.endOff, er.Position())
		s.firstRaw = append(s.firstRaw, first)
		if ph.Rank < len(s.loss) {
			l := &s.loss[ph.Rank]
			switch {
			case declared < 0:
				l.Unknown = true
			case declared > n:
				l.LostEvents += int64(declared - n)
			}
		}
	}
	// ranks missing at the tail (their headers and frames all lost)
	for r := len(s.procs); r < s.head.ProcCount; r++ {
		if !o.Salvage {
			return nil, fmt.Errorf("%w: trace declares %d processes, found %d", trace.ErrBadFormat, s.head.ProcCount, len(s.procs))
		}
		s.placeholderRank(r)
	}
	s.rep = *er.Report()
	for _, inc := range s.rep.Incidents {
		if inc.Rank >= 0 && inc.Rank < len(s.loss) {
			s.loss[inc.Rank].Incidents++
			s.loss[inc.Rank].SkippedBytes += inc.SkippedBytes
		}
	}
	s.salvaged = len(s.rep.Incidents) > 0 || s.rep.LostEvents > 0 || s.rep.UnknownLoss
	return s, nil
}

// admitRank enforces that processes appear in contiguous rank order,
// filling ranks whose sections were lost entirely with empty
// placeholders under salvage.
func (s *Source) admitRank(rank int, salvage bool) error {
	next := len(s.procs)
	if rank < next || rank >= s.head.ProcCount {
		return fmt.Errorf("stream: proc %d has rank %d", next, rank)
	}
	if rank == next {
		return nil
	}
	if !salvage {
		return fmt.Errorf("stream: proc %d has rank %d", next, rank)
	}
	for r := next; r < rank; r++ {
		s.placeholderRank(r)
	}
	return nil
}

// placeholderRank stands in for a rank whose whole section was lost: no
// events, unknown loss.
func (s *Source) placeholderRank(r int) {
	s.procs = append(s.procs, trace.ProcHeader{Rank: r, Clock: "?"})
	s.eventOff = append(s.eventOff, 0)
	s.endOff = append(s.endOff, 0)
	s.firstRaw = append(s.firstRaw, 0)
	if r < len(s.loss) {
		s.loss[r].Unknown = true
	}
}

// Header returns the file header.
func (s *Source) Header() trace.Header { return s.head }

// Procs returns the per-process headers. Under salvage, EventCount is
// the retained count, not the (possibly lost) declared one.
func (s *Source) Procs() []trace.ProcHeader { return s.procs }

// Ranks returns the process count.
func (s *Source) Ranks() int { return len(s.procs) }

// Events returns the total (retained) event count.
func (s *Source) Events() int64 { return s.events }

// Version reports the codec version of the file (trace.Version1 or
// trace.Version2).
func (s *Source) Version() int { return s.version }

// Salvaged reports whether the index pass recovered from corruption:
// some bytes were skipped, events lost, or loss left uncountable. A
// salvage-enabled source over an intact file reports false.
func (s *Source) Salvaged() bool { return s.salvaged }

// Report returns the corruption report of the index pass.
func (s *Source) Report() *trace.CorruptionReport { return &s.rep }

// Losses returns per-rank decode-loss records (index 0..Ranks-1). The
// engine-side counters (dropped sends, orphaned receives, broken
// collectives) are zero here; Pipeline.Run fills them in its Stats. The
// slice is a copy — callers own it.
func (s *Source) Losses() []RankLoss {
	out := make([]RankLoss, len(s.loss))
	copy(out, s.loss)
	return out
}

// FirstTime returns rank's first event timestamp (its raw local Time),
// or 0 when the rank recorded no events.
func (s *Source) FirstTime(rank int) float64 { return s.firstRaw[rank] }

// eventDecoder is the per-rank section decoder: EventDecoder for v1
// bare event bytes, FrameDecoder for v2 framed blocks. Both deliver the
// same events the index pass retained, in the same order.
type eventDecoder interface {
	Decode(*trace.Event) error
	DecodeBatch([]trace.Event) (int, error)
}

// Cursor is a sequential decoder over one rank's events.
type Cursor struct {
	d         eventDecoder
	remaining int
}

// Cursor opens a fresh decoder over rank's events. Cursors are
// independent; any number may be open at once. For salvaged v2 sources
// the cursor re-resynchronizes over the same section with the same
// policy, so it retains exactly the events the index pass counted.
func (s *Source) Cursor(rank int) *Cursor {
	sec := io.NewSectionReader(s.r, s.eventOff[rank], s.endOff[rank]-s.eventOff[rank])
	var d eventDecoder
	if s.version == trace.Version2 {
		d = trace.NewFrameDecoder(sec, rank, s.pol)
	} else {
		d = trace.NewEventDecoder(sec)
	}
	return &Cursor{d: d, remaining: s.procs[rank].EventCount}
}

// Next decodes the rank's next event into ev, returning io.EOF after the
// last one.
func (c *Cursor) Next(ev *trace.Event) error {
	if c.remaining == 0 {
		return io.EOF
	}
	if err := c.d.Decode(ev); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	c.remaining--
	return nil
}

// slab is one fixed-capacity batch of decoded events — the unit of work
// the staged pipeline hands between decode, merge, and encode.
type slab struct {
	evs []trace.Event
}

// slabPool recycles slabs of one batch size, so the steady state of a
// pass allocates no event storage at all: the working set is the handful
// of slabs in flight between stages.
type slabPool struct {
	p sync.Pool
}

func newSlabPool(batch int) *slabPool {
	sp := &slabPool{}
	sp.p.New = func() any { return &slab{evs: make([]trace.Event, 0, batch)} }
	return sp
}

func (sp *slabPool) get() *slab { return sp.p.Get().(*slab) }

func (sp *slabPool) put(s *slab) {
	s.evs = s.evs[:0]
	sp.p.Put(s)
}

// fill decodes the rank's next batch of events into s, up to its
// capacity. It returns io.EOF (with an empty slab) once the rank is
// exhausted, and classifies a short batch exactly like Next would: a
// stream that ends while events are still owed is a truncation.
func (c *Cursor) fill(s *slab) error {
	n := min(cap(s.evs), c.remaining)
	if n == 0 {
		s.evs = s.evs[:0]
		return io.EOF
	}
	s.evs = s.evs[:n]
	m, err := c.d.DecodeBatch(s.evs)
	s.evs = s.evs[:m]
	c.remaining -= m
	if m < n {
		if err == nil || err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// slabMsg carries one decoded slab downstream; a non-nil err means the
// decode failed after s's events (which are still valid).
type slabMsg struct {
	s   *slab
	err error
}

// decodeRank is the per-rank decode stage: it fills pooled slabs ahead
// of the merge and sends them over a bounded channel. It exits when the
// rank is exhausted (closing ch), after sending a decode error, or when
// stop closes (the engine quit early). All state arrives as arguments —
// the goroutine captures nothing.
func decodeRank(cur *Cursor, pool *slabPool, ch chan<- slabMsg, stop <-chan struct{}) {
	defer close(ch)
	for {
		s := pool.get()
		err := cur.fill(s)
		if err == io.EOF {
			pool.put(s)
			return
		}
		select {
		case ch <- slabMsg{s: s, err: err}:
		case <-stop:
			pool.put(s)
			return
		}
		if err != nil {
			return
		}
	}
}

// slabCursor drains a decode stage one event at a time, recycling each
// slab as it empties.
type slabCursor struct {
	ch   <-chan slabMsg
	pool *slabPool
	s    *slab
	pos  int
	err  error
}

// slabCursor starts a decode-ahead stage over rank's events. Closing
// stop releases the stage's goroutine if the caller quits before
// draining it.
func (s *Source) slabCursor(rank int, pool *slabPool, stop <-chan struct{}) *slabCursor {
	ch := make(chan slabMsg, 1)
	go decodeRank(s.Cursor(rank), pool, ch, stop)
	return &slabCursor{ch: ch, pool: pool}
}

// nextRef returns a pointer to the rank's next event, or io.EOF after
// the last one. The pointee lives in the current slab: it stays valid
// until the slab drains (at most cap(evs) further nextRef calls), which
// is exactly as long as the merge engine holds a rank's head.
func (c *slabCursor) nextRef() (*trace.Event, error) {
	for c.s == nil || c.pos == len(c.s.evs) {
		if c.s != nil {
			c.pool.put(c.s)
			c.s = nil
		}
		if c.err != nil {
			return nil, c.err
		}
		msg, ok := <-c.ch
		if !ok {
			return nil, io.EOF
		}
		c.s, c.pos, c.err = msg.s, 0, msg.err
	}
	ev := &c.s.evs[c.pos]
	c.pos++
	return ev, nil
}
