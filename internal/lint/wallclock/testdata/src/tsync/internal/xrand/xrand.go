// Package xrand is the negative fixture: the sanctioned randomness choke
// point may reference math/rand (e.g. to cross-check streams in tests)
// without being flagged.
package xrand

import "math/rand"

// Cross checks our stream against the stdlib generator.
func Cross(seed int64) float64 { return rand.New(rand.NewSource(seed)).Float64() }
