package stream

// White-box tests for the engine's tunables and slab plumbing: option
// normalization must be the single clamping point, and the slab pool
// must recycle without per-event (or per-slab) allocations.

import (
	"io"
	"testing"

	"tsync/internal/trace"
)

func TestOptionsNormalize(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want Options
	}{
		{"zero", Options{}, Options{Window: DefaultWindow, Workers: 1, Batch: DefaultBatch}},
		{"negative", Options{Window: -5, Workers: -2, Batch: -1}, Options{Window: DefaultWindow, Workers: 1, Batch: DefaultBatch}},
		{"kept", Options{Window: 7, Workers: 3, Batch: 9, Policy: PolicyError},
			Options{Window: 7, Workers: 3, Batch: 9, Policy: PolicyError}},
		{"worker-floor", Options{Window: 1, Workers: 0, Batch: 1}, Options{Window: 1, Workers: 1, Batch: 1}},
		{"shards-negative", Options{Shards: -3}, Options{Window: DefaultWindow, Workers: 1, Batch: DefaultBatch}},
		{"shards-kept", Options{Shards: 4}, Options{Window: DefaultWindow, Workers: 1, Batch: DefaultBatch, Shards: 4}},
	}
	for _, tc := range cases {
		if got := tc.in.Normalize(); got != tc.want {
			t.Errorf("%s: Normalize(%+v) = %+v, want %+v", tc.name, tc.in, got, tc.want)
		}
	}
}

// TestShardCount pins the shard-count resolution: explicit requests are
// honored (clamped to the rank count), automatic selection keeps small
// jobs on the flat merge and bounds the fan-out of large ones.
func TestShardCount(t *testing.T) {
	cases := []struct {
		ranks, req, want int
	}{
		{4, 0, 1},                  // small auto: flat
		{autoShardRanks - 1, 0, 1}, // just under the auto threshold
		{autoShardRanks, 0, 2},     // at the threshold: minimum tree
		{1024, 0, 4},               // 1024/256
		{100000, 0, maxAutoShards}, // capped fan-out
		{4, 3, 3},                  // explicit honored
		{4, 100, 4},                // explicit clamped to ranks
		{4, 1, 1},                  // explicit flat
		{10000, 0, 10000 / shardRankTarget},
	}
	for _, tc := range cases {
		if got := shardCount(tc.ranks, tc.req); got != tc.want {
			t.Errorf("shardCount(%d, %d) = %d, want %d", tc.ranks, tc.req, got, tc.want)
		}
	}
}

// TestShardBounds: the shard ranges must partition [0, n) contiguously
// with every shard non-empty.
func TestShardBounds(t *testing.T) {
	for _, n := range []int{1, 2, 7, 128, 10000} {
		for _, s := range []int{1, 2, 3, 7, 64} {
			if s > n {
				continue
			}
			prev := 0
			for i := 0; i < s; i++ {
				lo, hi := shardBounds(i, s, n)
				if lo != prev || hi <= lo {
					t.Fatalf("shardBounds(%d, %d, %d) = [%d, %d): not a contiguous non-empty partition after %d", i, s, n, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("shards of %d over %d end at %d", s, n, prev)
			}
		}
	}
}

// TestWorkerSlabCap: per-rank slabs shrink with the total rank count but
// never below the floor and never above the pipeline batch.
func TestWorkerSlabCap(t *testing.T) {
	cases := []struct {
		batch, ranks, want int
	}{
		{4096, 16, 4096}, // 65536/16 = 4096 = batch
		{4096, 8, 4096},  // capped by batch
		{4096, 10000, 8}, // floor
		{4096, 256, 256}, // 65536/256
		{64, 256, 64},    // capped by small batch
		{4, 100000, 8},   // floor beats batch
	}
	for _, tc := range cases {
		if got := workerSlabCap(tc.batch, tc.ranks); got != tc.want {
			t.Errorf("workerSlabCap(%d, %d) = %d, want %d", tc.batch, tc.ranks, got, tc.want)
		}
	}
}

// TestSynthAllocs pins Synth to O(ranks) total allocations: emitting 40×
// more steps must not add meaningfully to the allocation count, because
// the per-event path reuses one emitter and writer-owned scratch.
func TestSynthAllocs(t *testing.T) {
	run := func(steps int) float64 {
		spec := SynthSpec{Ranks: 8, Steps: steps, CollEvery: 5, Seed: 3}
		return testing.AllocsPerRun(3, func() {
			if _, _, err := Synth(spec, io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := run(50), run(2000)
	if big > small+16 {
		t.Errorf("Synth allocations scale with steps: %.0f at 50 steps, %.0f at 2000", small, big)
	}
}

// TestSlabRecycleAllocs pins the steady-state slab cycle — get, fill to
// capacity, put — to zero allocations once the pool is warm.
func TestSlabRecycleAllocs(t *testing.T) {
	pool := newSlabPool(64)
	warm := pool.get()
	pool.put(warm)
	ev := trace.Event{Kind: trace.Send, Time: 1, True: 2}
	if avg := testing.AllocsPerRun(1000, func() {
		s := pool.get()
		for len(s.evs) < cap(s.evs) {
			s.evs = append(s.evs, ev)
		}
		pool.put(s)
	}); avg > 0.02 {
		// sync.Pool may drop items across GC cycles; anything beyond
		// that noise means the cycle itself allocates.
		t.Errorf("slab recycle allocates %.3f per cycle, want ~0", avg)
	}
}
