package stream

import (
	"tsync/internal/analysis"
	"tsync/internal/clc"
	"tsync/internal/trace"
)

// censusSink accumulates two analysis.Census records in one walk — one
// over the tail/head Raw timestamps, one over the Mapped ones — plus the
// γ-scaled violation count clc.Correct would report on the mapped trace.
// All its quantities are sums, counts, or maxima over edges and events,
// so they do not depend on the processing order and match the in-memory
// analysis bit for bit.
type censusSink struct {
	gamma      float64
	raw        analysis.Census
	mapped     analysis.Census
	violations int
}

func (s *censusSink) event(rank, idx int, ev *trace.Event, mapped float64, in []InEdge) (EdgeData, error) {
	s.raw.TotalEvents++
	s.mapped.TotalEvents++
	if ev.Kind == trace.Send || ev.Kind == trace.Recv {
		s.raw.MessageEvents++
		s.mapped.MessageEvents++
	}
	for _, e := range in {
		lmin := e.LMin
		if e.Logical {
			s.raw.LogicalMessages++
			s.mapped.LogicalMessages++
			if ev.Time < e.Data.Raw {
				s.raw.ReversedLogical++
			}
			if mapped < e.Data.Mapped {
				s.mapped.ReversedLogical++
			}
		} else {
			s.raw.Messages++
			s.mapped.Messages++
			if ev.Time < e.Data.Raw {
				s.raw.Reversed++
			}
			if ev.Time < e.Data.Raw+lmin {
				s.raw.ClockCondition++
			}
			if mapped < e.Data.Mapped {
				s.mapped.Reversed++
			}
			if mapped < e.Data.Mapped+lmin {
				s.mapped.ClockCondition++
			}
		}
		if clc.Violated(e.Data.Mapped, mapped, lmin, s.gamma) {
			s.violations++
		}
	}
	return EdgeData{Raw: ev.Time, Mapped: mapped}, nil
}

func (s *censusSink) final(EventRef) error { return nil }
func (s *censusSink) rankDone(int) error   { return nil }
func (s *censusSink) flush() error         { return nil }
