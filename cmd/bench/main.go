// Command bench times the paper's Fig. 7, Fig. 8 and §V drivers at
// workers=1 and at a chosen worker count and verifies that the parallel
// runs produce bit-identical results (via the experiment checksums). It
// writes a JSON report (wall-clock, speedup, checksums, CPU counts) and
// exits non-zero on any checksum mismatch — determinism is the contract,
// speedup is the payoff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tsync/internal/clock"
	"tsync/internal/experiments"
	"tsync/internal/topology"
)

// benchCase is one timed driver comparison in the report.
type benchCase struct {
	Name             string  `json:"name"`
	SerialSeconds    float64 `json:"serial_seconds"`
	ParallelSeconds  float64 `json:"parallel_seconds"`
	Speedup          float64 `json:"speedup"`
	SerialChecksum   string  `json:"serial_checksum"`
	ParallelChecksum string  `json:"parallel_checksum"`
	Match            bool    `json:"match"`
}

type report struct {
	Workers    int         `json:"workers"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Reps       int         `json:"reps"`
	Ranks      int         `json:"ranks"`
	Threads    int         `json:"threads"`
	Regions    int         `json:"regions"`
	Scale      float64     `json:"scale"`
	Smoke      bool        `json:"smoke"`
	Cases      []benchCase `json:"cases"`
	AllMatch   bool        `json:"all_match"`
}

// timed runs f at a given worker bound and returns elapsed seconds plus
// the result checksum.
func timed(f func(workers int) (string, error), workers int) (float64, string, error) {
	start := time.Now()
	sum, err := f(workers)
	return time.Since(start).Seconds(), sum, err
}

func runCase(name string, workers int, f func(workers int) (string, error)) (benchCase, error) {
	serialSec, serialSum, err := timed(f, 1)
	if err != nil {
		return benchCase{}, fmt.Errorf("%s (workers=1): %w", name, err)
	}
	parSec, parSum, err := timed(f, workers)
	if err != nil {
		return benchCase{}, fmt.Errorf("%s (workers=%d): %w", name, workers, err)
	}
	c := benchCase{
		Name:             name,
		SerialSeconds:    serialSec,
		ParallelSeconds:  parSec,
		SerialChecksum:   serialSum,
		ParallelChecksum: parSum,
		Match:            serialSum == parSum,
	}
	if parSec > 0 {
		c.Speedup = serialSec / parSec
	}
	return c, nil
}

func main() {
	out := flag.String("o", "BENCH_PR2.json", "output JSON report path")
	workers := flag.Int("workers", 0, "parallel worker bound to compare against workers=1 (0 = all CPUs)")
	reps := flag.Int("reps", 3, "repetitions per driver (the paper used 3)")
	ranks := flag.Int("ranks", 16, "MPI ranks for the Fig. 7 runs")
	scale := flag.Float64("scale", 0.1, "workload scale for the Fig. 7 runs")
	threads := flag.Int("threads", 4, "OpenMP threads for the Fig. 8 runs")
	regions := flag.Int("regions", 50, "parallel regions for the Fig. 8 runs")
	smoke := flag.Bool("smoke", false, "CI smoke mode: 1 rep, tiny workloads")
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if *smoke {
		*reps = 1
		*ranks = 8
		*scale = 0.05
		*regions = 10
	}

	const seed = 42
	m := topology.Xeon()

	rep := report{
		Workers:    w,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       *reps,
		Ranks:      *ranks,
		Threads:    *threads,
		Regions:    *regions,
		Scale:      *scale,
		Smoke:      *smoke,
		AllMatch:   true,
	}

	// §V needs a raw trace with its offset tables; trace it once up front
	// so the CompareCorrections case times only the correction fan-out.
	base, err := experiments.AppViolations(experiments.AppViolationsConfig{
		App: experiments.AppPOP, Machine: m, Timer: clock.TSC,
		Ranks: *ranks, Reps: 1, Seed: seed, Scale: *scale,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: tracing §V input: %v\n", err)
		os.Exit(1)
	}

	cases := []struct {
		name string
		f    func(workers int) (string, error)
	}{
		{"fig7-pop-appviolations", func(workers int) (string, error) {
			res, err := experiments.AppViolations(experiments.AppViolationsConfig{
				App: experiments.AppPOP, Machine: m, Timer: clock.TSC,
				Ranks: *ranks, Reps: *reps, Seed: seed, Scale: *scale,
				Workers: workers,
			})
			if err != nil {
				return "", err
			}
			return res.Checksum()
		}},
		{"fig8-ompstudy", func(workers int) (string, error) {
			res, err := experiments.OMPStudy(experiments.OMPStudyConfig{
				Machine: m, Timer: clock.TSC,
				Threads: *threads, Regions: *regions, Reps: *reps,
				Seed: seed, Workers: workers,
			})
			if err != nil {
				return "", err
			}
			return res.Checksum()
		}},
		{"secV-comparecorrections", func(workers int) (string, error) {
			rows, err := experiments.CompareCorrections(
				base.RawTrace, base.InitOffsets, base.FinOffsets, workers)
			if err != nil {
				return "", err
			}
			return experiments.ChecksumMethods(rows), nil
		}},
	}

	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "bench: %s (workers 1 vs %d)...\n", c.name, w)
		bc, err := runCase(c.name, w, c.f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		rep.Cases = append(rep.Cases, bc)
		rep.AllMatch = rep.AllMatch && bc.Match
		fmt.Fprintf(os.Stderr, "bench: %s: %.2fs -> %.2fs (%.2fx), match=%v\n",
			bc.Name, bc.SerialSeconds, bc.ParallelSeconds, bc.Speedup, bc.Match)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
	if !rep.AllMatch {
		fmt.Fprintln(os.Stderr, "bench: FAIL: parallel checksums differ from serial")
		os.Exit(1)
	}
}
