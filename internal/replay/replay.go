// Package replay re-executes a traced computation under arbitrary
// causally consistent interleavings drawn from the RepCl-feasible order
// set (DESIGN.md §11): every seeded replay is a linear extension of the
// happened-before graph whose scheduling freedom is bounded by the
// replay clock's skew window ε, and every replay checks the invariants
// a sound timestamp correction must preserve — message sends precede
// receives, collectives complete atomically per communicator, per-rank
// program order survives, and the summary checksum is bit-identical to
// the canonical order's. The canonical (timestamp-order) replay is the
// consumer-side differential test of a correction: a wrong correction
// inverts happened-before edges, and the counts here catch it.
package replay

import (
	"fmt"
	"math"
	"sort"

	"tsync/internal/lclock"
	"tsync/internal/runner"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// Options configure a replay engine.
type Options struct {
	// Clock parameterizes the RepCl stamping pass (zero value: defaults
	// of lclock.RepClConfig.Normalize).
	Clock lclock.RepClConfig
	// Tolerant degrades unmatched messages and broken collectives to
	// dropped edges instead of failing — the mode for salvaged traces,
	// where severed ranks legitimately leave orphans behind. Results
	// then carry Partial=true and the dropped-edge count.
	Tolerant bool
}

// Counts breaks invariant violations down by kind.
type Counts struct {
	// MessageOrder counts matched messages whose receive executed (or,
	// canonically, was timestamped) before its send.
	MessageOrder int
	// Collective counts collective happened-before edges executed tail
	// before head — a collective instance torn apart on its
	// communicator.
	Collective int
	// ProgramOrder counts per-rank adjacent event pairs executed out of
	// their program order.
	ProgramOrder int
	// EpochSkew counts events whose corrected local time lagged more
	// than ε behind causally known time during RepCl stamping (an
	// order-independent property of the corrected trace).
	EpochSkew int
}

// HB is the total of order violations (everything except EpochSkew).
func (c Counts) HB() int { return c.MessageOrder + c.Collective + c.ProgramOrder }

// Total sums every violation kind.
func (c Counts) Total() int { return c.HB() + c.EpochSkew }

// Result is the outcome of one replay.
type Result struct {
	// Seed identifies the interleaving (0 for the canonical order).
	Seed   uint64
	Events int
	Ranks  int
	Counts Counts
	// Breadth is Σ log2 |eligible frontier| over the replay's steps: the
	// (log-scale) number of ε-feasible interleavings the scheduler could
	// have chosen among. Zero for the canonical order.
	Breadth float64
	// Checksum is the FNV-64a digest of per-rank event content and
	// RepCl stamps, folded in execution order. It is bit-identical
	// across every valid interleaving (each rank's events execute in
	// program order), so differing checksums mean a broken replay.
	Checksum string
	// MaxEpoch is the highest RepCl epoch reached during stamping.
	MaxEpoch uint64
	// Partial marks a tolerant replay that had to drop edges.
	Partial bool
	// DroppedEdges counts messages and collective edges the tolerant
	// graph build discarded.
	DroppedEdges int
}

// Engine holds the immutable replay state for one corrected trace: the
// happened-before graph in CSR form, the RepCl stamps, and the per-rank
// event metadata. Safe for concurrent replays once built.
type Engine struct {
	t   *trace.Trace
	opt Options

	ranks  int
	counts []int   // events per rank
	base   []int32 // global id offset per rank
	events int

	msgs  []lclock.Edge
	colls []lclock.Edge

	// CSR out-adjacency and in-degrees over global event ids.
	outStart []int32
	outList  []int32
	indeg    []int32

	stamps   [][]lclock.RepCl
	skew     int
	maxEpoch uint64

	dropped int
}

// New builds a replay engine over a (corrected) trace.
func New(t *trace.Trace, opt Options) (*Engine, error) {
	if t == nil {
		return nil, fmt.Errorf("replay: nil trace")
	}
	opt.Clock = opt.Clock.Normalize()
	e := &Engine{t: t, opt: opt, ranks: len(t.Procs)}
	e.counts = make([]int, e.ranks)
	e.base = make([]int32, e.ranks)
	for r, p := range t.Procs {
		e.base[r] = int32(e.events)
		e.counts[r] = len(p.Events)
		e.events += len(p.Events)
	}
	if err := e.buildEdges(); err != nil {
		return nil, err
	}
	edges := make([]lclock.Edge, 0, len(e.msgs)+len(e.colls))
	edges = append(edges, e.msgs...)
	edges = append(edges, e.colls...)
	var err error
	e.stamps, e.skew, err = lclock.RepClStampsEdges(t, opt.Clock, edges)
	if err != nil {
		return nil, err
	}
	for _, rank := range e.stamps {
		for _, c := range rank {
			if c.Mx > e.maxEpoch {
				e.maxEpoch = c.Mx
			}
		}
	}
	// CSR adjacency over cross edges (program order stays implicit in
	// the per-rank head pointers).
	e.indeg = make([]int32, e.events)
	deg := make([]int32, e.events)
	for _, ed := range edges {
		deg[e.id(ed.From)]++
		e.indeg[e.id(ed.To)]++
	}
	e.outStart = make([]int32, e.events+1)
	for i := 0; i < e.events; i++ {
		e.outStart[i+1] = e.outStart[i] + deg[i]
	}
	e.outList = make([]int32, e.outStart[e.events])
	fill := append([]int32(nil), e.outStart[:e.events]...)
	for _, ed := range edges {
		f := e.id(ed.From)
		e.outList[fill[f]] = e.id(ed.To)
		fill[f]++
	}
	return e, nil
}

func (e *Engine) id(ref lclock.EventRef) int32 { return e.base[ref.Rank] + int32(ref.Idx) }

// Stamps returns the per-rank RepCl stamp arrays.
func (e *Engine) Stamps() [][]lclock.RepCl { return e.stamps }

// SkewClamps returns the ε-skew violations found during stamping.
func (e *Engine) SkewClamps() int { return e.skew }

// DroppedEdges returns how many edges the tolerant build dropped.
func (e *Engine) DroppedEdges() int { return e.dropped }

// buildEdges resolves the trace's cross-process happened-before edges,
// strictly (any mismatch is an error) or tolerantly (mismatches become
// dropped edges, counted).
func (e *Engine) buildEdges() error {
	msgs, merr := e.t.Messages()
	colls, cerr := e.t.Collectives()
	if (merr != nil || cerr != nil) && !e.opt.Tolerant {
		if merr != nil {
			return merr
		}
		return cerr
	}
	if merr == nil {
		for _, m := range msgs {
			e.msgs = append(e.msgs, lclock.Edge{
				From: lclock.EventRef{Rank: m.From, Idx: m.FromIdx},
				To:   lclock.EventRef{Rank: m.To, Idx: m.ToIdx},
			})
		}
	} else {
		e.tolerantMessages()
	}
	if cerr == nil {
		for _, c := range colls {
			e.colls = append(e.colls, lclock.CollEdges(c)...)
		}
	} else {
		e.tolerantCollectives()
	}
	return nil
}

// tolerantMessages redoes FIFO matching in merged (True, rank) order
// with the streaming engine's oracle-time guard: a queued send at or
// past a receive's oracle time belongs to a later message whose real
// sender was lost, so the receive stays an orphan. Unmatched events on
// either side become dropped edges.
func (e *Engine) tolerantMessages() {
	type chanKey struct{ from, to, tag, comm int32 }
	type pendingSend struct {
		ref lclock.EventRef
		tru float64
	}
	type ordered struct {
		tru  float64
		ref  lclock.EventRef
		recv bool
		key  chanKey
	}
	var evs []ordered
	for rank, p := range e.t.Procs {
		for idx, ev := range p.Events {
			switch ev.Kind {
			case trace.Send:
				evs = append(evs, ordered{ev.True, lclock.EventRef{Rank: rank, Idx: idx}, false,
					chanKey{int32(rank), ev.Partner, ev.Tag, ev.Comm}})
			case trace.Recv:
				evs = append(evs, ordered{ev.True, lclock.EventRef{Rank: rank, Idx: idx}, true,
					chanKey{ev.Partner, int32(rank), ev.Tag, ev.Comm}})
			}
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].tru != evs[j].tru { //tsync:exact — merge order on oracle times, ties broken by (rank, idx) below
			return evs[i].tru < evs[j].tru
		}
		if evs[i].ref.Rank != evs[j].ref.Rank {
			return evs[i].ref.Rank < evs[j].ref.Rank
		}
		return evs[i].ref.Idx < evs[j].ref.Idx
	})
	fifos := map[chanKey][]pendingSend{}
	for _, o := range evs {
		if !o.recv {
			fifos[o.key] = append(fifos[o.key], pendingSend{o.ref, o.tru})
			continue
		}
		q := fifos[o.key]
		if len(q) == 0 || q[0].tru >= o.tru { //tsync:exact — genuine pairs strictly increase oracle time; a head at or past the receive belongs to a later, half-lost message
			e.dropped++ // orphan receive
			continue
		}
		e.msgs = append(e.msgs, lclock.Edge{From: q[0].ref, To: o.ref})
		fifos[o.key] = q[1:]
	}
	for _, q := range fifos {
		e.dropped += len(q) // sends whose receive was lost
	}
}

// tolerantCollectives groups collective events by (comm, instance) and
// expands whatever edges the surviving participants support, dropping
// op-mismatched strays.
func (e *Engine) tolerantCollectives() {
	type key struct{ comm, inst int32 }
	insts := map[key]*trace.Collective{}
	var order []key
	for rank, p := range e.t.Procs {
		for idx, ev := range p.Events {
			if ev.Kind != trace.CollBegin && ev.Kind != trace.CollEnd {
				continue
			}
			k := key{ev.Comm, ev.Instance}
			c, ok := insts[k]
			if !ok {
				c = &trace.Collective{Op: ev.Op, Comm: ev.Comm, Instance: ev.Instance,
					Root: ev.Root, Begin: map[int]int{}, End: map[int]int{}}
				insts[k] = c
				order = append(order, k)
			}
			if c.Op != ev.Op {
				e.dropped++ // op mismatch from a half-lost instance
				continue
			}
			if ev.Kind == trace.CollBegin {
				if _, dup := c.Begin[rank]; dup {
					e.dropped++
					continue
				}
				c.Begin[rank] = idx
			} else {
				if _, dup := c.End[rank]; dup {
					e.dropped++
					continue
				}
				c.End[rank] = idx
			}
		}
	}
	for _, k := range order {
		c := insts[k]
		before := len(c.Begin) + len(c.End)
		got := lclock.CollEdges(*c)
		e.colls = append(e.colls, got...)
		// a one-sided instance (root's begin lost, say) yields fewer
		// edges than participants; book the shortfall as dropped
		if len(got) == 0 && before > 1 {
			e.dropped += before - 1
		}
	}
}

// checkOrder verifies an execution order (a permutation of all events,
// as global positions per event) against every invariant and folds the
// checksum. It is independent of how the order was produced, which is
// what gives seeded replays a checker the scheduler cannot fool.
func (e *Engine) checkOrder(pos []int32) (Counts, string) {
	var c Counts
	c.EpochSkew = e.skew
	for r := 0; r < e.ranks; r++ {
		b := e.base[r]
		for i := 1; i < e.counts[r]; i++ {
			if pos[b+int32(i)] < pos[b+int32(i-1)] {
				c.ProgramOrder++
			}
		}
	}
	for _, m := range e.msgs {
		if pos[e.id(m.To)] < pos[e.id(m.From)] {
			c.MessageOrder++
		}
	}
	for _, ce := range e.colls {
		if pos[e.id(ce.To)] < pos[e.id(ce.From)] {
			c.Collective++
		}
	}
	return c, e.checksum(pos)
}

// checksum folds per-rank digests over event content and RepCl stamps
// in the order each rank's events appear in the execution, then
// combines them in rank order. Any valid interleaving visits a rank's
// events in program order, so the digest is interleaving-invariant.
func (e *Engine) checksum(pos []int32) string {
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	word := func(d, w uint64) uint64 {
		for i := 0; i < 8; i++ {
			d = (d ^ (w & 0xff)) * fnvPrime64
			w >>= 8
		}
		return d
	}
	// execution order per rank: sort each rank's indices by position
	digest := uint64(fnvOffset64)
	idxs := make([]int, 0)
	for r := 0; r < e.ranks; r++ {
		idxs = idxs[:0]
		for i := 0; i < e.counts[r]; i++ {
			idxs = append(idxs, i)
		}
		b := e.base[r]
		sort.Slice(idxs, func(i, j int) bool { return pos[b+int32(idxs[i])] < pos[b+int32(idxs[j])] })
		d := uint64(fnvOffset64)
		for _, i := range idxs {
			ev := &e.t.Procs[r].Events[i]
			d = word(d, uint64(ev.Kind))
			d = word(d, math.Float64bits(ev.Time))
			d = word(d, math.Float64bits(ev.True))
			d = word(d, uint64(uint32(ev.Partner))|uint64(uint32(ev.Tag))<<32)
			st := e.stamps[r][i]
			d = word(d, st.Mx)
			d = word(d, uint64(st.Ctr))
		}
		digest = word(digest, d)
	}
	return fmt.Sprintf("%016x", digest)
}

// Canonical replays the trace in corrected-timestamp order — the order
// a consumer trusting the timestamps would process it in — and counts
// the invariant violations that order commits. A sound correction
// yields zero; this is the replay engine's differential test of every
// correction the repository produces.
func (e *Engine) Canonical() (*Result, error) {
	type ordered struct {
		time float64
		ref  lclock.EventRef
	}
	evs := make([]ordered, 0, e.events)
	for rank, p := range e.t.Procs {
		for idx := range p.Events {
			evs = append(evs, ordered{p.Events[idx].Time, lclock.EventRef{Rank: rank, Idx: idx}})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].time != evs[j].time { //tsync:exact — replay order on corrected timestamps; ties break by (rank, idx) below
			return evs[i].time < evs[j].time
		}
		if evs[i].ref.Rank != evs[j].ref.Rank {
			return evs[i].ref.Rank < evs[j].ref.Rank
		}
		return evs[i].ref.Idx < evs[j].ref.Idx
	})
	pos := make([]int32, e.events)
	for p, o := range evs {
		pos[e.id(o.ref)] = int32(p)
	}
	counts, sum := e.checkOrder(pos)
	return &Result{
		Events: e.events, Ranks: e.ranks, Counts: counts, Checksum: sum,
		MaxEpoch: e.maxEpoch, Partial: e.dropped > 0, DroppedEdges: e.dropped,
	}, nil
}

// Replay executes one seeded ε-feasible interleaving: at every step the
// scheduler gathers the frontier (each rank's next event whose cross
// in-edges have all executed), restricts it to heads within ε epochs of
// the frontier's minimum RepCl epoch, and picks uniformly from that
// eligible set. The produced order is then verified by the same checker
// the canonical replay uses — the scheduler earns no trust.
func (e *Engine) Replay(seed uint64) (*Result, error) {
	rng := xrand.NewSource(seed)
	indeg := append([]int32(nil), e.indeg...)
	next := make([]int, e.ranks)
	pos := make([]int32, e.events)
	eligible := make([]int, 0, e.ranks)
	var breadth float64
	eps := uint64(e.opt.Clock.Epsilon)
	for step := 0; step < e.events; step++ {
		// frontier: ready ranks and their minimum head epoch
		minMx, haveMin := uint64(0), false
		for r := 0; r < e.ranks; r++ {
			i := next[r]
			if i >= e.counts[r] || indeg[e.base[r]+int32(i)] != 0 {
				continue
			}
			if mx := e.stamps[r][i].Mx; !haveMin || mx < minMx {
				minMx, haveMin = mx, true
			}
		}
		if !haveMin {
			return nil, fmt.Errorf("replay: deadlock at step %d/%d (cyclic happened-before graph?)", step, e.events)
		}
		eligible = eligible[:0]
		for r := 0; r < e.ranks; r++ {
			i := next[r]
			if i >= e.counts[r] || indeg[e.base[r]+int32(i)] != 0 {
				continue
			}
			if e.stamps[r][i].Mx <= minMx+eps {
				eligible = append(eligible, r)
			}
		}
		breadth += math.Log2(float64(len(eligible)))
		r := eligible[rng.Intn(len(eligible))]
		gid := e.base[r] + int32(next[r])
		pos[gid] = int32(step)
		next[r]++
		for k := e.outStart[gid]; k < e.outStart[gid+1]; k++ {
			indeg[e.outList[k]]--
		}
	}
	counts, sum := e.checkOrder(pos)
	return &Result{
		Seed: seed, Events: e.events, Ranks: e.ranks, Counts: counts,
		Breadth: breadth, Checksum: sum, MaxEpoch: e.maxEpoch,
		Partial: e.dropped > 0, DroppedEdges: e.dropped,
	}, nil
}

// ReplaySeeds runs one replay per seed on a bounded worker pool. Each
// replay reads only the engine's immutable state and its own seed, so
// results are bit-identical for every worker count.
func (e *Engine) ReplaySeeds(seeds []uint64, workers int) ([]*Result, error) {
	return runner.Map(runner.New(workers), len(seeds), func(i int) (*Result, error) {
		return e.Replay(seeds[i])
	})
}

// Seeds derives n replay seeds from a base seed with the repository's
// O(1) splitmix64 derivation, so seed lists are stable across tools.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = xrand.SeedAt(base, uint64(i))
	}
	return out
}
