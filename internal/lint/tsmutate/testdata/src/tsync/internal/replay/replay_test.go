package replay

import "tsync/internal/trace"

// Tests legitimately forge broken timestamps to build the scenarios under
// study, so _test.go files are exempt.
func forgeViolation(evs []trace.Event) {
	evs[0].Time = 0.9
}
