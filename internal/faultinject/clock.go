package faultinject

// ClockFaultKind selects the distortion a ClockFault applies to a
// rank's clock readings.
type ClockFaultKind int

const (
	// Step adds a constant offset from the fault time on: the signature
	// of an NTP step adjustment yanking the clock.
	Step ClockFaultKind = iota
	// FreqJump adds drift accumulating at rate Delta from the fault
	// time on: a thermal event or a CPU frequency change altering the
	// oscillator rate.
	FreqJump
	// Reset restarts the clock at value Delta at the fault time,
	// ticking at the nominal rate afterwards: a counter reset or
	// rollover. The pre-fault history is discarded entirely, the
	// harshest case for interpolation.
	Reset
)

// ClockFault is one distortion of a recorded clock. Faults model what
// the paper's non-constant-drift analysis must survive: clocks that do
// not merely drift smoothly but step, change rate, or start over.
type ClockFault struct {
	// Rank the fault hits; -1 hits every rank.
	Rank int
	// Kind of distortion.
	Kind ClockFaultKind
	// At is the oracle time at which the fault takes effect; readings
	// before it are untouched.
	At float64
	// Delta parameterizes the fault: the step size (s) for Step, the
	// added drift rate (s/s) for FreqJump, the restart value (s) for
	// Reset.
	Delta float64
}

// Distort composes faults into a SynthSpec.DistortClock callback.
// Faults apply in order, each seeing the previous one's output, so a
// Reset after a Step discards the step as a real reset would.
func Distort(faults []ClockFault) func(rank int, t, c float64) float64 {
	fs := append([]ClockFault(nil), faults...)
	return func(rank int, t, c float64) float64 {
		for _, f := range fs {
			if f.Rank >= 0 && f.Rank != rank {
				continue
			}
			if t < f.At {
				continue
			}
			switch f.Kind {
			case Step:
				c += f.Delta
			case FreqJump:
				c += f.Delta * (t - f.At)
			case Reset:
				c = f.Delta + (t - f.At)
			}
		}
		return c
	}
}
