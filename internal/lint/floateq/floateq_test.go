package floateq_test

import (
	"testing"

	"tsync/internal/lint/floateq"
	"tsync/internal/lint/linttest"
)

func TestFloateq(t *testing.T) {
	linttest.Run(t, floateq.Analyzer, "a")
}
