package stream

import (
	"context"
	"io"

	"tsync/internal/trace"
)

// Summarize computes the same trace.Summary as trace.Summarize without
// materializing the trace: one rank-major pass over the source, holding a
// single event at a time. Every Summary field is either an integer count
// or a running min/max, so the result is bit-identical to the in-memory
// one regardless of traversal order; rank-major is used anyway to mirror
// trace.Summarize exactly. For salvaged sources the summary covers the
// retained events, and the returned loss records say what is missing
// (nil for clean sources).
func Summarize(src *Source) (trace.Summary, []RankLoss, error) {
	return SummarizeContext(context.Background(), src)
}

// SummarizeContext is Summarize under a context.
func SummarizeContext(ctx context.Context, src *Source) (trace.Summary, []RankLoss, error) {
	h := src.Header()
	s := trace.Summary{
		Machine: h.Machine,
		Timer:   h.Timer,
		Procs:   src.Ranks(),
		ByKind:  map[string]int{},
		Regions: map[string]int{},
	}
	regionName := func(id int32) string {
		if id >= 0 && int(id) < len(h.Regions) {
			return h.Regions[id]
		}
		return "?"
	}
	minT, maxT := 0.0, 0.0
	minTrue, maxTrue := 0.0, 0.0
	first := true
	ticks := 0
	for rank := 0; rank < src.Ranks(); rank++ {
		cur := src.Cursor(rank)
		for {
			if ticks&(ctxCheckEvery-1) == 0 {
				if err := ctx.Err(); err != nil {
					return trace.Summary{}, nil, err
				}
			}
			ticks++
			var ev trace.Event
			if err := cur.Next(&ev); err == io.EOF {
				break
			} else if err != nil {
				return trace.Summary{}, nil, err
			}
			s.Events++
			s.ByKind[ev.Kind.String()]++
			if ev.Kind == trace.Enter {
				s.Regions[regionName(ev.Region)]++
			}
			if ev.Kind == trace.Send {
				s.Bytes += int64(ev.Bytes)
			}
			if first {
				minT, maxT = ev.Time, ev.Time
				minTrue, maxTrue = ev.True, ev.True
				first = false
				continue
			}
			if ev.Time < minT {
				minT = ev.Time
			}
			if ev.Time > maxT {
				maxT = ev.Time
			}
			if ev.True < minTrue {
				minTrue = ev.True
			}
			if ev.True > maxTrue {
				maxTrue = ev.True
			}
		}
	}
	s.SpanTime = maxT - minT
	s.SpanTrue = maxTrue - minTrue
	var loss []RankLoss
	if src.Salvaged() {
		loss = src.Losses()
	}
	return s, loss, nil
}
