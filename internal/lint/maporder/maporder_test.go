package maporder_test

import (
	"testing"

	"tsync/internal/lint/linttest"
	"tsync/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "a")
}

// TestHistoricalPrePR2Finding runs maporder against a reconstruction of
// errest.propagate as it shipped before PR 2 — the MST edge scan that
// ranged over the fitted-pair map and broke weight ties by randomized
// iteration order, making every errest correction nondeterministic. The
// fixture's expectations assert the analyzer reports the exact
// assignments that carried the bug, proving this wave would have caught
// it at review time instead of by hand.
func TestHistoricalPrePR2Finding(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "errest_prepr2")
}
