package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary trace format (".etr"):
//
//	magic "ETRC" | version u8
//	machine string | timer string
//	minLatency [4]f64
//	regionCount uvarint | region strings
//	procCount uvarint
//	per proc: rank uvarint | core (3 uvarints) | clock string |
//	          eventCount uvarint | events
//	per event: kind u8 | op u8 | time f64 | true f64 |
//	           region varint | instance varint | partner varint |
//	           tag varint | bytes varint | comm varint | root varint
//
// All integers are varints; floats are IEEE-754 bits little-endian.

const (
	codecMagic   = "ETRC"
	codecVersion = 1
)

// ErrBadFormat reports a malformed or truncated trace file.
var ErrBadFormat = errors.New("trace: bad file format")

// decodeChunk bounds how many elements Read materializes ahead of the
// bytes that back them (64 Ki events ≈ 3 MiB). Counts in the header are
// attacker-controlled varints: a count must never be trusted with a
// pre-allocation before the corresponding payload has actually been
// decoded, or a 12-byte file claiming 2^30 events would allocate ~48 GiB
// up front. Growing chunkwise keeps memory proportional to the bytes
// consumed, and a truncated or corrupt file fails with ErrBadFormat after
// at most one chunk of over-allocation.
const decodeChunk = 1 << 16

// badFormat tags err with ErrBadFormat unless it already is one; io.EOF
// inside a structure whose header promised more data is a truncation, not
// a clean end of stream.
func badFormat(context string, err error) error {
	if errors.Is(err, ErrBadFormat) {
		return err
	}
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("%w: %s: %v", ErrBadFormat, context, err)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w *bufio.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func writeFloat(w *bufio.Writer, f float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	_, err := w.Write(buf[:])
	return err
}

// Write encodes the trace to w. It returns the number of bytes written.
// It is a thin wrapper over EventWriter, so the bytes are identical to
// streaming the same events incrementally.
func Write(w io.Writer, t *Trace) (int64, error) {
	ew, err := NewEventWriter(w, HeaderOf(t))
	if err != nil {
		if ew == nil {
			return 0, err
		}
		return ew.cw.n, err
	}
	for _, p := range t.Procs {
		ph := ProcHeader{Rank: p.Rank, Core: p.Core, Clock: p.Clock, EventCount: len(p.Events)}
		if err := ew.BeginProc(ph); err != nil {
			return ew.cw.n, err
		}
		for i := range p.Events {
			if err := ew.Write(&p.Events[i]); err != nil {
				return ew.cw.n, err
			}
		}
	}
	return ew.cw.n, ew.Close()
}

func writeEvent(w *bufio.Writer, ev *Event) error {
	if err := w.WriteByte(byte(ev.Kind)); err != nil {
		return err
	}
	if err := w.WriteByte(byte(ev.Op)); err != nil {
		return err
	}
	if err := writeFloat(w, ev.Time); err != nil {
		return err
	}
	if err := writeFloat(w, ev.True); err != nil {
		return err
	}
	for _, v := range [7]int32{ev.Region, ev.Instance, ev.Partner, ev.Tag, ev.Bytes, ev.Comm, ev.Root} {
		if err := writeVarint(w, int64(v)); err != nil {
			return err
		}
	}
	return nil
}

func readString(r *bufio.Reader, maxLen uint64) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("%w: string length %d exceeds limit", ErrBadFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readFloat(r *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// Read decodes a trace from r. It is a thin wrapper over EventReader, so
// the accepted inputs and failure modes are identical to decoding the
// same stream incrementally.
func Read(r io.Reader) (*Trace, error) {
	er, err := NewEventReader(r)
	if err != nil {
		return nil, err
	}
	h := er.Header()
	t := &Trace{
		Machine:    h.Machine,
		Timer:      h.Timer,
		Regions:    h.Regions,
		MinLatency: h.MinLatency,
		Procs:      make([]Proc, 0, min(h.ProcCount, decodeChunk)),
	}
	for {
		ph, err := er.NextProc()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		p := Proc{Rank: ph.Rank, Core: ph.Core, Clock: ph.Clock}
		if p.Events, err = readEvents(er, ph.EventCount); err != nil {
			return nil, err
		}
		t.Procs = append(t.Procs, p)
	}
}

// readEvents decodes nEvents events, growing the slice one decodeChunk at
// a time so the allocation never runs ahead of the bytes actually read.
func readEvents(er *EventReader, nEvents int) ([]Event, error) {
	var events []Event
	for remaining := nEvents; remaining > 0; {
		n := min(remaining, decodeChunk)
		start := len(events)
		events = append(events, make([]Event, n)...)
		for j := start; j < len(events); j++ {
			if err := er.Read(&events[j]); err != nil {
				return nil, err
			}
		}
		remaining -= n
	}
	return events, nil
}

func readEvent(r *bufio.Reader, ev *Event) error {
	kind, err := r.ReadByte()
	if err != nil {
		return err
	}
	ev.Kind = Kind(kind)
	op, err := r.ReadByte()
	if err != nil {
		return err
	}
	ev.Op = CollOp(op)
	if ev.Time, err = readFloat(r); err != nil {
		return err
	}
	if ev.True, err = readFloat(r); err != nil {
		return err
	}
	dst := [7]*int32{&ev.Region, &ev.Instance, &ev.Partner, &ev.Tag, &ev.Bytes, &ev.Comm, &ev.Root}
	for _, p := range dst {
		v, err := binary.ReadVarint(r)
		if err != nil {
			return err
		}
		if v > math.MaxInt32 || v < math.MinInt32 {
			return fmt.Errorf("%w: field overflows int32", ErrBadFormat)
		}
		*p = int32(v)
	}
	return nil
}
