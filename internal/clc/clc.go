// Package clc implements the controlled logical clock algorithm
// (Rabenseifner 1997; Becker, Rabenseifner, Wolf 2007/2008) discussed in
// Section V of the paper: the retroactive correction of clock-condition
// violations in event traces by shifting message events forward in time
// while trying to preserve the length of intervals between local events.
//
// The algorithm walks the trace's happened-before graph (program order,
// matched point-to-point messages, and collective operations mapped onto
// point-to-point edges per their 1-to-N / N-to-1 / N-to-N semantics). A
// receive that violates t_recv >= t_send + γ·l_min is advanced to the
// bound. Two amortization mechanisms protect local interval lengths:
//
//   - forward amortization: the correction offset is carried to subsequent
//     events on the same process and decays at a bounded rate instead of
//     vanishing instantly (which would compress the next interval);
//   - backward amortization: events in a window before the corrected
//     receive are pre-shifted along a linear ramp, clamped so no send is
//     pushed past its own receiver's bound, smoothing the jump.
//
// Corrected timestamps never move backward (t' >= t), local event order is
// preserved, and after correction no happened-before edge violates the
// γ-scaled clock condition. These invariants are enforced by tests.
//
// Two implementations are provided with identical results: a sequential
// topological replay and a parallel replay (Becker et al. 2008) with one
// goroutine per process exchanging corrected send times over channels,
// mirroring the original communication.
package clc

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"tsync/internal/lclock"
	"tsync/internal/trace"
)

// Options tune the algorithm.
type Options struct {
	// Gamma is the fraction of the minimum message latency enforced
	// between matched sends and receives, in (0, 1]. Use values slightly
	// below 1 on real systems where l_min may be overestimated; the
	// simulator's l_min is a guaranteed lower bound, so the default
	// enforces the full clock condition.
	Gamma float64
	// MinSpacing is the minimal corrected distance between consecutive
	// events of one process (δ).
	MinSpacing float64
	// ForwardDecay is the rate (seconds of correction removed per second
	// of local time) at which a carried correction offset decays back
	// toward the original clock. Smaller values preserve intervals
	// better but keep the process on the shifted time base longer.
	ForwardDecay float64
	// BackwardWindow is the maximal local-time window (seconds) before a
	// corrected receive across which backward amortization spreads the
	// jump.
	BackwardWindow float64
	// SharedMemory additionally enforces the POMP shared-memory
	// happened-before conditions (fork before region events, region
	// events before join, overlapping barriers) — the extension the
	// paper lists as an open limitation of the original CLC.
	SharedMemory bool
	// Domains groups ranks whose clocks are physically synchronized
	// (e.g. processes on one SMP node sharing the node crystal). When a
	// correction advances one member's timestamps, co-located members'
	// events near that time are advanced in step (a second forward pass
	// lifts them onto the domain's correction envelope), addressing the
	// paper's concluding observation that "timestamps of processes
	// co-located on the same SMP node that are close to the modified
	// time may need to be modified as well".
	Domains [][]int
}

// DefaultOptions returns the calibration used throughout the experiments.
func DefaultOptions() Options {
	return Options{
		Gamma:          1.0,
		MinSpacing:     1e-9,
		ForwardDecay:   1e-4,
		BackwardWindow: 0.5,
	}
}

func (o Options) validate() error {
	if o.Gamma <= 0 || o.Gamma > 1 {
		return fmt.Errorf("clc: Gamma must be in (0,1], got %v", o.Gamma)
	}
	if o.MinSpacing < 0 {
		return fmt.Errorf("clc: MinSpacing must be non-negative, got %v", o.MinSpacing)
	}
	if o.ForwardDecay < 0 {
		return fmt.Errorf("clc: ForwardDecay must be non-negative, got %v", o.ForwardDecay)
	}
	if o.BackwardWindow < 0 {
		return fmt.Errorf("clc: BackwardWindow must be non-negative, got %v", o.BackwardWindow)
	}
	return nil
}

// Report summarizes a correction run.
type Report struct {
	// ViolationsBefore and ViolationsAfter count happened-before edges
	// violating the γ-scaled clock condition before and after.
	ViolationsBefore int
	ViolationsAfter  int
	// EventsMoved counts events whose timestamp changed.
	EventsMoved int
	// MaxAdvance is the largest forward shift applied to any event.
	MaxAdvance float64
}

// edgeLMin returns the γ-scaled minimal latency of an edge.
func edgeLMin(t *trace.Trace, e lclock.Edge, gamma float64) float64 {
	return gamma * t.MinLatencyBetween(e.From.Rank, e.To.Rank)
}

// Violated reports whether one happened-before edge violates the
// γ-scaled clock condition, with the small tolerance used by violation
// counting throughout. lmin is the unscaled minimum latency of the edge.
// Shared with the streaming replay (internal/stream) so both paths apply
// bit-identical arithmetic.
func Violated(from, to, lmin, gamma float64) bool {
	return to < from+gamma*lmin-1e-12
}

// countViolations counts edges whose Time stamps violate the γ-scaled
// clock condition.
func countViolations(t *trace.Trace, edges []lclock.Edge, gamma float64) int {
	n := 0
	for _, e := range edges {
		from := t.Procs[e.From.Rank].Events[e.From.Idx].Time
		to := t.Procs[e.To.Rank].Events[e.To.Idx].Time
		if Violated(from, to, t.MinLatencyBetween(e.From.Rank, e.To.Rank), gamma) {
			n++
		}
	}
	return n
}

// Violations counts clock-condition violations of a trace under the
// γ-scaled condition, exposed for before/after reporting by callers.
func Violations(t *trace.Trace, gamma float64) (int, error) {
	edges, err := lclock.CrossEdges(t)
	if err != nil {
		return 0, err
	}
	return countViolations(t, edges, gamma), nil
}

// ViolationsShared is Violations including the POMP shared-memory edges.
func ViolationsShared(t *trace.Trace, gamma float64) (int, error) {
	edges, err := lclock.CrossEdges(t)
	if err != nil {
		return 0, err
	}
	edges = append(edges, lclock.POMPEdges(t)...)
	return countViolations(t, edges, gamma), nil
}

// Correct applies the controlled logical clock sequentially and returns
// the corrected trace and a report. The input is not modified.
func Correct(t *trace.Trace, opt Options) (*trace.Trace, Report, error) {
	return correct(t, opt, false, 0)
}

// CorrectParallel applies the parallel replay implementation with one
// goroutine per process. Results are identical to Correct.
func CorrectParallel(t *trace.Trace, opt Options) (*trace.Trace, Report, error) {
	return correct(t, opt, true, 0)
}

func correct(t *trace.Trace, opt Options, parallel bool, _ int) (*trace.Trace, Report, error) {
	if err := opt.validate(); err != nil {
		return nil, Report{}, err
	}
	var err error
	edges, err := lclock.CrossEdges(t)
	if err != nil {
		return nil, Report{}, err
	}
	if opt.SharedMemory {
		edges = append(edges, lclock.POMPEdges(t)...)
	}
	rep := Report{ViolationsBefore: countViolations(t, edges, opt.Gamma)}

	forward := func(extra func(rank, idx int) float64) ([][]float64, error) {
		if parallel {
			return forwardParallel(t, edges, opt, extra)
		}
		return forwardSequential(t, edges, opt, extra)
	}
	t1, err := forward(nil)
	if err != nil {
		return nil, Report{}, err
	}
	if len(opt.Domains) > 0 {
		// second pass: co-located ranks pick up their domain's correction
		// envelope (see Options.Domains); raises propagate through the
		// happened-before edges because the pass replays them.
		env, err := buildEnvelopes(t, t1, opt)
		if err != nil {
			return nil, Report{}, err
		}
		t1, err = forward(env)
		if err != nil {
			return nil, Report{}, err
		}
	}
	t2 := backwardAmortize(t, edges, t1, opt)

	out := t.Clone()
	for rank := range out.Procs {
		evs := out.Procs[rank].Events
		for idx := range evs {
			nt := t2[rank][idx]
			if nt != evs[idx].Time { //tsync:exact — EventsMoved counts bit-level changes; unmoved events pass through the pipeline untouched
				rep.EventsMoved++
				if adv := nt - evs[idx].Time; adv > rep.MaxAdvance {
					rep.MaxAdvance = adv
				}
			}
			evs[idx].Time = nt
		}
	}
	rep.ViolationsAfter = countViolations(out, edges, opt.Gamma)
	return out, rep, nil
}

// ForwardCore exposes the forward-amortization step for the streaming
// replay in internal/stream: sharing the arithmetic keeps the two paths
// bit-identical. Because the step is a max of monotone bounds, its
// fixpoint over the happened-before graph is the same for every
// topological processing order.
func ForwardCore(orig, prevOrig, prevCorr, inBound float64, first bool, opt Options) float64 {
	return forwardCore(orig, prevOrig, prevCorr, inBound, first, opt)
}

// Validate checks the option values, exposed for callers (the streaming
// pipeline) that bypass Correct.
func (o Options) Validate() error { return o.validate() }

// forwardCore computes one event's corrected time from its original time,
// the process's previous event (original and corrected), and the maximal
// bound imposed by incoming edges.
func forwardCore(orig, prevOrig, prevCorr, inBound float64, first bool, opt Options) float64 {
	v := orig
	if !first {
		// carry the decayed correction offset forward
		carried := (prevCorr - prevOrig) - opt.ForwardDecay*(orig-prevOrig)
		if carried > 0 {
			v = math.Max(v, orig+carried)
		}
		// strict local order
		v = math.Max(v, prevCorr+opt.MinSpacing)
	}
	return math.Max(v, inBound)
}

// forwardSequential replays the trace in a topological order of the
// happened-before graph (Kahn's algorithm with a deterministic queue).
func forwardSequential(t *trace.Trace, edges []lclock.Edge, opt Options, extra func(rank, idx int) float64) ([][]float64, error) {
	n := len(t.Procs)
	out := make([][]float64, n)
	indeg := make([][]int, n)
	total := 0
	for i, p := range t.Procs {
		out[i] = make([]float64, len(p.Events))
		indeg[i] = make([]int, len(p.Events))
		for j := range indeg[i] {
			if j > 0 {
				indeg[i][j]++
			}
		}
		total += len(p.Events)
	}
	inEdges := map[lclock.EventRef][]lclock.Edge{}
	for _, e := range edges {
		indeg[e.To.Rank][e.To.Idx]++
		inEdges[e.To] = append(inEdges[e.To], e)
	}
	outEdges := map[lclock.EventRef][]lclock.Edge{}
	for _, e := range edges {
		outEdges[e.From] = append(outEdges[e.From], e)
	}
	// deterministic ready queue ordered by (rank, idx)
	var ready []lclock.EventRef
	push := func(r lclock.EventRef) {
		ready = append(ready, r)
	}
	for rank := range t.Procs {
		if len(t.Procs[rank].Events) > 0 && indeg[rank][0] == 0 {
			push(lclock.EventRef{Rank: rank, Idx: 0})
		}
	}
	done := 0
	for len(ready) > 0 {
		// pop the smallest (rank, idx) for determinism
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i].Rank < ready[best].Rank ||
				(ready[i].Rank == ready[best].Rank && ready[i].Idx < ready[best].Idx) {
				best = i
			}
		}
		cur := ready[best]
		ready[best] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]

		ev := t.Procs[cur.Rank].Events[cur.Idx]
		inBound := math.Inf(-1)
		for _, e := range inEdges[cur] {
			b := out[e.From.Rank][e.From.Idx] + edgeLMin(t, e, opt.Gamma)
			if b > inBound {
				inBound = b
			}
		}
		var prevOrig, prevCorr float64
		first := cur.Idx == 0
		if !first {
			prevOrig = t.Procs[cur.Rank].Events[cur.Idx-1].Time
			prevCorr = out[cur.Rank][cur.Idx-1]
		}
		v := forwardCore(ev.Time, prevOrig, prevCorr, inBound, first, opt)
		if extra != nil {
			if b := extra(cur.Rank, cur.Idx); b > v {
				v = b
				if !first && v < prevCorr+opt.MinSpacing {
					v = prevCorr + opt.MinSpacing
				}
			}
		}
		out[cur.Rank][cur.Idx] = v
		done++

		// release successors
		if next := cur.Idx + 1; next < len(t.Procs[cur.Rank].Events) {
			indeg[cur.Rank][next]--
			if indeg[cur.Rank][next] == 0 {
				push(lclock.EventRef{Rank: cur.Rank, Idx: next})
			}
		}
		for _, e := range outEdges[cur] {
			indeg[e.To.Rank][e.To.Idx]--
			if indeg[e.To.Rank][e.To.Idx] == 0 {
				push(e.To)
			}
		}
	}
	if done != total {
		return nil, fmt.Errorf("clc: happened-before graph is cyclic (%d of %d events ordered)", done, total)
	}
	return out, nil
}

// forwardParallel is the replay-based parallel implementation: one
// goroutine per process walks its own events in order; every cross edge is
// a buffered channel carrying the head's corrected time. Because the edge
// set mirrors a communication that actually executed, the replay is
// deadlock-free for valid traces; cycles (corrupt traces) are detected by
// a completion check.
func forwardParallel(t *trace.Trace, edges []lclock.Edge, opt Options, extra func(rank, idx int) float64) ([][]float64, error) {
	n := len(t.Procs)
	out := make([][]float64, n)
	for i, p := range t.Procs {
		out[i] = make([]float64, len(p.Events))
	}
	// each cross edge becomes a buffered channel; the tail sends its
	// corrected time plus the edge's γ·l_min, so the head receives the
	// complete bound
	type outEdge struct {
		ch   chan float64
		lmin float64
	}
	inCh := map[lclock.EventRef][]chan float64{}
	outCh := map[lclock.EventRef][]outEdge{}
	for _, e := range edges {
		ch := make(chan float64, 1)
		inCh[e.To] = append(inCh[e.To], ch)
		outCh[e.From] = append(outCh[e.From], outEdge{ch: ch, lmin: edgeLMin(t, e, opt.Gamma)})
	}
	var wg sync.WaitGroup
	completed := make([]bool, n)
	for rank := range t.Procs {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			evs := t.Procs[rank].Events
			for idx := range evs {
				ref := lclock.EventRef{Rank: rank, Idx: idx}
				inBound := math.Inf(-1)
				for _, ch := range inCh[ref] {
					v := <-ch
					if v > inBound {
						inBound = v
					}
				}
				var prevOrig, prevCorr float64
				first := idx == 0
				if !first {
					prevOrig = evs[idx-1].Time
					prevCorr = out[rank][idx-1]
				}
				v := forwardCore(evs[idx].Time, prevOrig, prevCorr, inBound, first, opt)
				if extra != nil {
					if b := extra(rank, idx); b > v {
						v = b
						if !first && v < prevCorr+opt.MinSpacing {
							v = prevCorr + opt.MinSpacing
						}
					}
				}
				out[rank][idx] = v //tsync:locked — goroutine rank owns row out[rank]; rows are joined only after wg.Wait
				for _, oe := range outCh[ref] {
					oe.ch <- out[rank][idx] + oe.lmin
				}
			}
			completed[rank] = true //tsync:locked — disjoint index per goroutine, read only after wg.Wait
		}(rank)
	}
	wg.Wait()
	for rank, ok := range completed {
		if !ok {
			return nil, fmt.Errorf("clc: parallel replay stalled on rank %d", rank)
		}
	}
	return out, nil
}

// backwardAmortize smooths each forward jump across a window of preceding
// events on the same process, respecting send constraints toward other
// processes.
func backwardAmortize(t *trace.Trace, edges []lclock.Edge, t1 [][]float64, opt Options) [][]float64 {
	if opt.BackwardWindow == 0 {
		return t1
	}
	// upper bound per event from its outgoing edges: an event may not be
	// pushed past head_corrected_time - γ·l_min of any edge it heads.
	// Using the post-forward times of the other side is conservative,
	// because backward amortization only moves events forward.
	ub := map[lclock.EventRef]float64{}
	for _, e := range edges {
		bound := t1[e.To.Rank][e.To.Idx] - edgeLMin(t, e, opt.Gamma)
		if cur, ok := ub[e.From]; !ok || bound < cur {
			ub[e.From] = bound
		}
	}
	out := make([][]float64, len(t1))
	for rank := range t1 {
		times := append([]float64(nil), t1[rank]...)
		evs := t.Procs[rank].Events
		// locate jump points: increases of the correction offset caused
		// by incoming edges
		for k := 1; k < len(times); k++ {
			deltaPrev := times[k-1] - evs[k-1].Time
			deltaCur := times[k] - evs[k].Time
			jump := deltaCur - deltaPrev
			if jump <= opt.MinSpacing {
				continue
			}
			rampEnd := times[k]
			rampStart := rampEnd - opt.BackwardWindow
			if rampStart >= rampEnd {
				continue
			}
			for j := k - 1; j >= 0; j-- {
				if times[j] <= rampStart {
					break
				}
				desired := jump * (times[j] - rampStart) / (rampEnd - rampStart)
				if desired <= 0 {
					continue
				}
				allowed := desired
				ref := lclock.EventRef{Rank: rank, Idx: j}
				if bound, ok := ub[ref]; ok {
					if slack := bound - times[j]; slack < allowed {
						allowed = slack
					}
				}
				if allowed > 0 {
					times[j] += allowed
				}
			}
			// restore strict local order below the jump point (clamping
			// down is always safe: it moves times toward their forward
			// pass values)
			for j := k - 1; j >= 0; j-- {
				if max := times[j+1] - opt.MinSpacing; times[j] > max {
					times[j] = max
				}
				if times[j] < t1[rank][j] {
					times[j] = t1[rank][j]
				}
			}
		}
		out[rank] = times
	}
	return out
}

// JumpProfile describes the corrections applied per process, for
// diagnostics and the ablation benches: sorted absolute advances.
func JumpProfile(orig, corrected *trace.Trace) ([][]float64, error) {
	if len(orig.Procs) != len(corrected.Procs) {
		return nil, fmt.Errorf("clc: trace shapes differ")
	}
	out := make([][]float64, len(orig.Procs))
	for i := range orig.Procs {
		a, b := orig.Procs[i].Events, corrected.Procs[i].Events
		if len(a) != len(b) {
			return nil, fmt.Errorf("clc: proc %d event counts differ", i)
		}
		for j := range a {
			out[i] = append(out[i], b[j].Time-a[j].Time)
		}
		sort.Float64s(out[i])
	}
	return out, nil
}

// jumpRecord is one correction observed in the first forward pass.
type jumpRecord struct {
	at    float64 // original timestamp where the correction applied
	delta float64 // total correction at that point
}

// buildEnvelopes derives, per domain, the correction envelope of the first
// forward pass: Δ_d(t) = max over the domain's corrections of
// (delta - ForwardDecay·|t - at|), floored at zero. Co-located events near
// a correction in time are lifted onto the envelope in the second pass, so
// the relative timing of processes sharing a synchronized clock survives
// the correction. Returns an extra-bound function over (rank, idx).
func buildEnvelopes(t *trace.Trace, t1 [][]float64, opt Options) (func(rank, idx int) float64, error) {
	n := len(t.Procs)
	domainOf := make([]int, n)
	for i := range domainOf {
		domainOf[i] = -1
	}
	for d, members := range opt.Domains {
		for _, rank := range members {
			if rank < 0 || rank >= n {
				return nil, fmt.Errorf("clc: domain %d contains invalid rank %d", d, rank)
			}
			if domainOf[rank] != -1 {
				return nil, fmt.Errorf("clc: rank %d appears in two domains", rank)
			}
			domainOf[rank] = d
		}
	}
	records := make([][]jumpRecord, len(opt.Domains))
	for rank, p := range t.Procs {
		d := domainOf[rank]
		if d < 0 {
			continue
		}
		prevDelta := 0.0
		for idx := range p.Events {
			delta := t1[rank][idx] - p.Events[idx].Time
			if delta-prevDelta > opt.MinSpacing && delta > 0 {
				records[d] = append(records[d], jumpRecord{at: p.Events[idx].Time, delta: delta})
			}
			prevDelta = delta
		}
	}
	return func(rank, idx int) float64 {
		d := domainOf[rank]
		if d < 0 || len(records[d]) == 0 {
			return math.Inf(-1)
		}
		tt := t.Procs[rank].Events[idx].Time
		best := 0.0
		for _, rec := range records[d] {
			v := rec.delta - opt.ForwardDecay*math.Abs(tt-rec.at)
			if v > best {
				best = v
			}
		}
		if best <= 0 {
			return math.Inf(-1)
		}
		return tt + best
	}, nil
}
