// Package stream models the long-running streaming layer for the
// ctxflow analyzer: entry points here carry the PR 5 cancellation
// contract.
package stream

import "context"

// Pump runs until its input closes but cannot be told to stop early.
func Pump(in chan int) int { // want `exported Pump runs unbounded work \(a range over a channel\) without a context.Context`
	n := 0
	for v := range in {
		n += v
	}
	return n
}

// Index decodes until EOF with no way to abandon a huge file.
func Index(next func() (int, bool)) int { // want `exported Index runs unbounded work \(a for loop with no condition\) without a context.Context`
	n := 0
	for {
		v, ok := next()
		if !ok {
			return n
		}
		n += v
	}
}

// FanOut spawns workers that outlive any caller deadline.
func FanOut(task func(int)) { // want `exported FanOut runs unbounded work \(a spawned goroutine\) without a context.Context`
	for i := 0; i < 4; i++ {
		go task(i)
	}
}

// Walk takes a context but its decode loop can never observe it.
func Walk(ctx context.Context, next func() (int, bool)) (int, error) {
	n := 0
	for { // want `condition-less loop never observes ctx`
		v, ok := next()
		if !ok {
			return n, nil
		}
		n += v
	}
}

// MisplacedCtx buries the context mid-signature.
func MisplacedCtx(n int, ctx context.Context) error { // want `context.Context is parameter 2 of MisplacedCtx`
	return ctx.Err()
}

// engine stores the context it was started with: cancellation decouples
// from the calls that follow.
type engine struct {
	ctx context.Context // want `context.Context stored in a struct field`
	n   int
}

// --- negatives ---

// IndexContext is the fixed Index: the loop polls on a stride.
func IndexContext(ctx context.Context, next func() (int, bool)) (int, error) {
	n := 0
	for {
		if n&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		v, ok := next()
		if !ok {
			return n, nil
		}
		n += v
	}
}

// IndexCompat is the convenience wrapper: no loop in its own body, so no
// contract applies — the callee enforces it.
func IndexCompat(next func() (int, bool)) int {
	n, _ := IndexContext(context.Background(), next)
	return n
}

// WalkDelegating passes ctx to the blocking callee each iteration.
func WalkDelegating(ctx context.Context, step func(context.Context) bool) {
	for {
		if !step(ctx) {
			return
		}
	}
}

// drain is unexported: internal helpers inherit their caller's contract.
func drain(in chan int) {
	for range in {
	}
}

// Bounded loops with conditions are not unbounded work.
func Sum(ctx context.Context, xs []int) (int, error) {
	n := 0
	for i := 0; i < len(xs); i++ {
		n += xs[i]
	}
	return n, ctx.Err()
}

// --- directive-suppressed ---

// Retire runs a loop that is bounded by construction (the queue is
// finite and closed before the call); the directive records why prompt
// cancellation is not needed.
func Retire(pop func() (int, bool)) int {
	n := 0
	for { //tsync:nocancel — the retire queue is closed and finite before Retire is called; the loop is bounded by its length
		v, ok := pop()
		if !ok {
			return n
		}
		n += v
	}
}
