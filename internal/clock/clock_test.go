package clock

import (
	"math"
	"testing"
	"testing/quick"

	"tsync/internal/stats"
	"tsync/internal/xrand"
)

func TestConstantDriftExact(t *testing.T) {
	osc := NewOscillator(ConstantDrift{Rate: 50e-6})
	for _, tt := range []float64{0, 1, 100, 3600, 1e6} {
		want := (1 + 50e-6) * tt
		if got := osc.Elapsed(tt); math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("Elapsed(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestElapsedMonotoneNondecreasing(t *testing.T) {
	rng := xrand.NewSource(1)
	procs := []DriftProcess{
		ConstantDrift{Rate: -100e-6},
		NewRandomWalkDrift(0, 1e-9, 1, rng.Sub("w")),
		NewNTPDrift(30e-6, rng.Sub("n")),
		NewPowerManagedDrift([]float64{0, -0.5}, 2, rng.Sub("p")),
	}
	for i, p := range procs {
		osc := NewOscillator(p)
		prev := -1.0
		for tt := 0.0; tt <= 2000; tt += 0.7 {
			e := osc.Elapsed(tt)
			if e < prev {
				t.Fatalf("process %d: Elapsed decreased at t=%v: %v < %v", i, tt, e, prev)
			}
			prev = e
		}
	}
}

func TestElapsedRandomAccessConsistent(t *testing.T) {
	// querying out of order must give the same values as in order
	mk := func() *Oscillator {
		return NewOscillator(NewRandomWalkDrift(10e-6, 1e-9, 5, xrand.NewSource(7)))
	}
	a, b := mk(), mk()
	times := []float64{100, 3, 2500, 7, 900, 0, 1800}
	inOrder := map[float64]float64{}
	for _, tt := range []float64{0, 3, 7, 100, 900, 1800, 2500} {
		inOrder[tt] = a.Elapsed(tt)
	}
	for _, tt := range times {
		if got := b.Elapsed(tt); got != inOrder[tt] {
			t.Fatalf("out-of-order Elapsed(%v) = %v, want %v", tt, got, inOrder[tt])
		}
	}
}

func TestElapsedPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Elapsed(-1) did not panic")
		}
	}()
	NewOscillator(ConstantDrift{}).Elapsed(-1)
}

func TestRandomWalkWanderScale(t *testing.T) {
	// the deviation from the best-fit line over an hour should be in the
	// tens of microseconds for the TSC calibration (Fig. 5a shape)
	rng := xrand.NewSource(42)
	var worst float64
	for trial := 0; trial < 10; trial++ {
		osc := NewOscillator(NewRandomWalkDrift(0, 1.0e-10, 10, rng.Sub(string(rune('a'+trial)))))
		// offsets relative to true time at the two endpoints define the
		// interpolation line, mirroring Eq. 3
		end := 3600.0
		o1 := osc.Elapsed(0) - 0
		o2 := osc.Elapsed(end) - end
		var maxdev float64
		for tt := 0.0; tt <= end; tt += 30 {
			line := o1 + (o2-o1)*tt/end
			dev := math.Abs((osc.Elapsed(tt) - tt) - line)
			if dev > maxdev {
				maxdev = dev
			}
		}
		if maxdev > worst {
			worst = maxdev
		}
	}
	if worst < 1e-6 || worst > 500e-6 {
		t.Fatalf("wander residual out of expected band: %v s (want ~1e-6..5e-4)", worst)
	}
}

func TestNTPKeepsOffsetBounded(t *testing.T) {
	rng := xrand.NewSource(9)
	for trial := 0; trial < 5; trial++ {
		osc := NewOscillator(NewNTPDrift(rng.Normal(0, 30e-6), rng.Sub(string(rune('a'+trial)))))
		// after the PLL settles, the clock must stay within ~10 ms of
		// true time (NTP's accuracy class), even after many hours
		for _, tt := range []float64{20000, 40000, 80000} {
			off := osc.Elapsed(tt) - tt
			if math.Abs(off) > 20e-3 {
				t.Fatalf("trial %d: NTP offset at t=%v is %v s, out of bounds", trial, tt, off)
			}
		}
	}
}

func TestNTPHasAbruptRateChanges(t *testing.T) {
	// the signature of Figs. 4a/4b: distinct constant-rate segments
	osc := NewOscillator(NewNTPDrift(25e-6, xrand.NewSource(11)))
	osc.Elapsed(4000)
	segs := osc.Segments()
	if len(segs) < 4 {
		t.Fatalf("expected several NTP poll segments in 4000 s, got %d", len(segs))
	}
	changed := 0
	for i := 1; i < len(segs); i++ {
		if segs[i].Rate != segs[i-1].Rate {
			changed++
		}
	}
	if changed == 0 {
		t.Fatalf("NTP drift never adjusted the rate")
	}
}

func TestNTPSlewClamped(t *testing.T) {
	n := NewNTPDrift(0, xrand.NewSource(3))
	n.ServerError = 0
	// enormous offset must still respect the slew clamp
	rate, _ := n.NextSegment(0, 0, 10.0)
	if math.Abs(rate) > n.MaxSlew+1e-12 {
		t.Fatalf("slew rate %v exceeds clamp %v", rate, n.MaxSlew)
	}
}

func TestPowerManagedSwitchesLevels(t *testing.T) {
	osc := NewOscillator(NewPowerManagedDrift([]float64{0, -0.5}, 1, xrand.NewSource(5)))
	osc.Elapsed(100)
	segs := osc.Segments()
	seen := map[float64]bool{}
	for _, s := range segs {
		seen[s.Rate] = true
	}
	if len(seen) != 2 {
		t.Fatalf("power-managed drift visited %d levels, want 2", len(seen))
	}
}

func TestCompositeDriftSums(t *testing.T) {
	c := NewCompositeDrift(ConstantDrift{Rate: 10e-6}, ConstantDrift{Rate: 5e-6})
	osc := NewOscillator(c)
	tt := 1000.0
	want := (1 + 15e-6) * tt
	if got := osc.Elapsed(tt); math.Abs(got-want) > 1e-9 {
		t.Fatalf("composite Elapsed = %v, want %v", got, want)
	}
}

func TestCompositeDriftSegmentsAtEveryBoundary(t *testing.T) {
	rng := xrand.NewSource(8)
	c := NewCompositeDrift(
		NewPowerManagedDrift([]float64{0, -0.25}, 1, rng.Sub("a")),
		NewPowerManagedDrift([]float64{0, -0.125}, 1.7, rng.Sub("b")),
	)
	osc := NewOscillator(c)
	osc.Elapsed(50)
	segs := osc.Segments()
	if len(segs) < 20 {
		t.Fatalf("composite produced too few segments: %d", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start <= segs[i-1].Start {
			t.Fatalf("segments not strictly ordered")
		}
	}
}

func TestClockReadQuantization(t *testing.T) {
	osc := NewOscillator(ConstantDrift{})
	c := New(Config{Resolution: 1e-6}, osc, xrand.NewSource(1))
	v := c.Read(0.1234567891)
	rem := math.Mod(v, 1e-6)
	if rem > 1e-12 && rem < 1e-6-1e-12 {
		t.Fatalf("Read not quantized to 1µs: %v (rem %v)", v, rem)
	}
}

func TestClockMonotonicEnforcement(t *testing.T) {
	osc := NewOscillator(ConstantDrift{})
	c := New(Config{ReadNoise: 1e-6, Resolution: 1e-9, Monotonic: true}, osc, xrand.NewSource(2))
	prev := -math.MaxFloat64
	// closely spaced reads with large read noise would go backwards
	// without enforcement
	for i := 0; i < 5000; i++ {
		v := c.Read(float64(i) * 1e-8)
		if v <= prev {
			t.Fatalf("monotonic clock went backwards at read %d: %v <= %v", i, v, prev)
		}
		prev = v
	}
}

func TestClockOffsetApplied(t *testing.T) {
	osc := NewOscillator(ConstantDrift{})
	c := New(Config{Offset: 42}, osc, xrand.NewSource(3))
	if got := c.Read(1); math.Abs(got-43) > 1e-9 {
		t.Fatalf("Read(1) = %v, want 43", got)
	}
	if !stats.ApproxEqual(c.Offset(), 42, 1e-12) {
		t.Fatalf("Offset() = %v", c.Offset())
	}
}

func TestReadOverheadPositiveAndJittered(t *testing.T) {
	osc := NewOscillator(ConstantDrift{})
	c := New(Config{Overhead: 50e-9, OverheadJitter: 10e-9, JitterProb: 0.01, JitterMean: 50e-6}, osc, xrand.NewSource(4))
	var max float64
	for i := 0; i < 20000; i++ {
		d := c.ReadOverhead()
		if d < 0 {
			t.Fatalf("negative overhead %v", d)
		}
		if d > max {
			max = d
		}
	}
	if max < 10e-6 {
		t.Fatalf("OS jitter never fired in 20000 reads (max %v)", max)
	}
}

func TestIdealIgnoresNoise(t *testing.T) {
	osc := NewOscillator(ConstantDrift{Rate: 1e-5})
	c := New(Config{Offset: 1, ReadNoise: 1e-3, Resolution: 1e-6}, osc, xrand.NewSource(5))
	want := 1 + (1+1e-5)*7.5
	if got := c.Ideal(7.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Ideal = %v, want %v", got, want)
	}
}

func TestKindStringAndParse(t *testing.T) {
	kinds := []Kind{TSC, TB, RTC, Gettimeofday, MPIWtime, CycleCounter, GlobalHW}
	spellings := []string{"tsc", "tb", "rtc", "gtod", "mpiwtime", "cycle", "global"}
	for i, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty String for kind %d", i)
		}
		got, err := ParseKind(spellings[i])
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = (%v,%v), want %v", spellings[i], got, err, k)
		}
	}
	if _, err := ParseKind("sundial"); err == nil {
		t.Fatalf("ParseKind of unknown spelling must error")
	}
	if Kind(99).String() == "" {
		t.Fatalf("unknown kind must still print")
	}
}

func TestPresetsBuildAndBehave(t *testing.T) {
	rng := xrand.NewSource(77)
	for _, k := range []Kind{TSC, TB, RTC, Gettimeofday, MPIWtime, CycleCounter, GlobalHW} {
		p := PresetFor(k, "xeon")
		osc := p.NewOscillator(rng.Sub(k.String()))
		c := p.NewClock("r", 0, osc, rng.Sub(k.String()+"/r"))
		v1 := c.Read(1)
		v2 := c.Read(2)
		if v2 <= v1 {
			t.Fatalf("%v: clock not advancing: %v then %v", k, v1, v2)
		}
		// all presets are loosely synchronized to true time at the
		// seconds scale over short horizons
		if math.Abs(v2-2) > 0.1 {
			t.Fatalf("%v: clock wildly off true time: %v at t=2", k, v2)
		}
	}
}

func TestGlobalHWIsDriftFree(t *testing.T) {
	p := PresetFor(GlobalHW, "xeon")
	osc := p.NewOscillator(xrand.NewSource(6))
	for _, tt := range []float64{10, 1000, 3600} {
		if dev := osc.Elapsed(tt) - tt; math.Abs(dev) > 1e-12 {
			t.Fatalf("global clock drifted by %v at t=%v", dev, tt)
		}
	}
}

func TestPresetDeterminism(t *testing.T) {
	build := func() []float64 {
		rng := xrand.NewSource(123)
		p := PresetFor(TSC, "xeon")
		osc := p.NewOscillator(rng.Sub("osc"))
		c := p.NewClock("x", 0.5, osc, rng.Sub("read"))
		var out []float64
		for tt := 0.0; tt < 100; tt += 3.3 {
			out = append(out, c.Read(tt))
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("preset clock not deterministic at read %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestTwoTSCsDivergeLinearly(t *testing.T) {
	// Fig. 4c: after offset alignment only, hardware counters stride
	// apart at a near-constant rate
	rng := xrand.NewSource(55)
	p := PresetFor(TSC, "xeon")
	a := p.NewOscillator(rng.Sub("a"))
	b := p.NewOscillator(rng.Sub("b"))
	dev := func(tt float64) float64 { return a.Elapsed(tt) - b.Elapsed(tt) }
	d1, d2, d4 := dev(900), dev(1800), dev(3600)
	if math.Abs(d4) < 1e-6 {
		t.Fatalf("TSC pair suspiciously synchronized: %v at 3600 s", d4)
	}
	// near-linear: halving time should roughly halve the deviation
	if ratio := d4 / d2; ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("TSC divergence not near-linear: dev(3600)/dev(1800) = %v", ratio)
	}
	if ratio := d2 / d1; ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("TSC divergence not near-linear: dev(1800)/dev(900) = %v", ratio)
	}
}

func TestPropertyElapsedAdditiveForConstant(t *testing.T) {
	// Elapsed(t1+t2) == Elapsed(t1) + (Elapsed(t1+t2)-Elapsed(t1)) is
	// trivial; the meaningful property is proportionality for constant
	// drift: Elapsed(t) / t is constant
	check := func(rate int16, tRaw uint16) bool {
		r := float64(rate) * 1e-9
		tt := 1 + float64(tRaw)
		osc := NewOscillator(ConstantDrift{Rate: r})
		got := osc.Elapsed(tt) / tt
		return math.Abs(got-(1+r)) < 1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOscillatorElapsedTSC(b *testing.B) {
	p := PresetFor(TSC, "xeon")
	osc := p.NewOscillator(xrand.NewSource(1))
	osc.Elapsed(3600) // pre-generate segments
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		osc.Elapsed(float64(i%3600) + 0.5)
	}
}

func BenchmarkClockRead(b *testing.B) {
	p := PresetFor(Gettimeofday, "xeon")
	osc := p.NewOscillator(xrand.NewSource(1))
	c := p.NewClock("bench", 0, osc, xrand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(float64(i) * 1e-6)
	}
}

func TestTSCWanderHasRandomWalkSignature(t *testing.T) {
	// the TSC preset's drift wander is a random walk on frequency; its
	// Allan deviation must grow with tau (roughly sqrt), unlike white
	// noise (falling) or pure drift (zero) — the physics behind Fig. 5a
	p := PresetFor(TSC, "xeon")
	rng := xrand.NewSource(31)
	osc := p.NewOscillator(rng.Sub("osc"))
	const interval = 10.0
	samples := make([]float64, 720) // two hours
	for i := range samples {
		tt := float64(i) * interval
		samples[i] = osc.Elapsed(tt) - tt
	}
	s1, err := stats.AllanDeviation(samples, interval, 1)
	if err != nil {
		t.Fatal(err)
	}
	s16, err := stats.AllanDeviation(samples, interval, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s16 <= s1 {
		t.Fatalf("random-walk FM must grow with tau: sigma(10s)=%g sigma(160s)=%g", s1, s16)
	}
}

func TestClockAccessors(t *testing.T) {
	osc := NewOscillator(ConstantDrift{Rate: 1e-6})
	c := New(Config{Name: "probe", Resolution: 1e-9}, osc, xrand.NewSource(1))
	if c.Name() != "probe" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.Resolution() != 1e-9 {
		t.Fatalf("Resolution = %v", c.Resolution())
	}
	if c.Oscillator() != osc {
		t.Fatalf("Oscillator accessor broken")
	}
}

func TestRateAt(t *testing.T) {
	osc := NewOscillator(NewPowerManagedDrift([]float64{0, -0.5}, 1, xrand.NewSource(2)))
	osc.Elapsed(50)
	seen := map[float64]bool{}
	for tt := 0.0; tt < 50; tt += 0.5 {
		seen[osc.RateAt(tt)] = true
	}
	if len(seen) != 2 {
		t.Fatalf("RateAt saw %d levels, want 2", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("RateAt(-1) did not panic")
		}
	}()
	osc.RateAt(-1)
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"random walk zero interval": func() { NewRandomWalkDrift(0, 1e-9, 0, xrand.NewSource(1)) },
		"power managed no levels":   func() { NewPowerManagedDrift(nil, 1, xrand.NewSource(1)) },
		"composite empty":           func() { NewCompositeDrift() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
