// Command appviolations regenerates Fig. 7: the frequency of
// clock-condition violations in traces of the two MPI applications (the
// POP-like ocean stencil and the SMG2000-like multigrid solver), traced
// with Scalasca methodology — offsets measured at MPI_Init/MPI_Finalize,
// linear offset interpolation postmortem — on 32 scheduler-placed ranks.
//
// With -compare, it additionally applies every correction method in the
// repository (Section V ablation) to the last repetition's trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"tsync/internal/clock"
	"tsync/internal/experiments"
	"tsync/internal/render"
	"tsync/internal/topology"
)

func main() {
	var (
		machine = flag.String("machine", "xeon", "machine: xeon, ppc, opteron")
		timer   = flag.String("timer", "tsc", "timer the tracer uses")
		ranks   = flag.Int("ranks", 32, "MPI processes")
		reps    = flag.Int("reps", 3, "repetitions to average (paper used 3)")
		seed    = flag.Uint64("seed", 11, "random seed")
		scale   = flag.Float64("scale", 1, "workload duration multiplier")
		apps    = flag.String("apps", "pop,smg", "comma-separated app list")
		compare = flag.Bool("compare", false, "run the Section V correction ablation")
		waits   = flag.Bool("waitstates", false, "quantify the wait-state analysis error caused by timestamp inaccuracy")
		workers = flag.Int("workers", 0, "parallel worker bound for repetitions and the ablation (0 = all CPUs); results are identical for any value")
	)
	flag.Parse()

	m, err := topology.ParseMachine(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "appviolations:", err)
		os.Exit(1)
	}
	k, err := clock.ParseKind(*timer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "appviolations:", err)
		os.Exit(1)
	}

	fmt.Printf("FIG. 7 — %s: %% messages with reversed send/receive order and %% message\n", m.Name)
	fmt.Printf("transfer events of total events (%d ranks, %d reps, linear interpolation)\n\n", *ranks, *reps)

	var rows [][]string
	var results []*experiments.AppViolationsResult
	for _, name := range splitList(*apps) {
		res, err := experiments.AppViolations(experiments.AppViolationsConfig{
			App:     experiments.AppKind(name),
			Machine: m,
			Timer:   k,
			Ranks:   *ranks,
			Reps:    *reps,
			Seed:    *seed,
			Scale:   *scale,
			Workers: *workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "appviolations:", err)
			os.Exit(1)
		}
		results = append(results, res)
		rows = append(rows, []string{
			string(res.App),
			fmt.Sprintf("%.2f", res.PctReversed),
			fmt.Sprintf("%.2f", res.PctReversedLogical),
			fmt.Sprintf("%.1f", res.PctMessageEvents),
			fmt.Sprintf("%d", res.Census.Messages),
			fmt.Sprintf("%d", res.Census.TotalEvents),
		})
	}
	fmt.Print(render.Table(
		[]string{"app", "% reversed msgs", "% reversed incl. logical", "% msg events", "messages", "events"},
		rows))
	var labels []string
	var revVals, evVals []float64
	for _, res := range results {
		labels = append(labels, string(res.App))
		revVals = append(revVals, res.PctReversed)
		evVals = append(evVals, res.PctMessageEvents)
	}
	fmt.Println()
	fmt.Print(render.Bars("% messages reversed (front row of Fig. 7)", labels, revVals, 50))
	fmt.Print(render.Bars("% message transfer events of total (back row)", labels, evVals, 50))

	if *waits {
		for _, res := range results {
			impact, err := experiments.WaitStateStudy(res.RawTrace, res.InitOffsets, res.FinOffsets)
			if err != nil {
				fmt.Fprintln(os.Stderr, "appviolations:", err)
				os.Exit(1)
			}
			fmt.Printf("\nLate Sender wait states — %s (last repetition):\n", res.App)
			fmt.Printf("  ground truth:          %6d instances, total %10.1f µs\n",
				impact.Oracle.LateSenders, impact.Oracle.TotalWait*1e6)
			fmt.Printf("  raw timestamps:        %6d instances, total %10.1f µs (error %+.2f%%)\n",
				impact.Raw.LateSenders, impact.Raw.TotalWait*1e6, impact.RawErrPct)
			fmt.Printf("  after interpolation:   %6d instances, total %10.1f µs (error %+.2f%%)\n",
				impact.Measured.LateSenders, impact.Measured.TotalWait*1e6, impact.MeasuredErrPct)
			fmt.Printf("  after interp + CLC:    %6d instances, total %10.1f µs (error %+.2f%%)\n",
				impact.Corrected.LateSenders, impact.Corrected.TotalWait*1e6, impact.CorrectedErrPct)
		}
	}

	if *compare {
		for _, res := range results {
			fmt.Printf("\nSection V ablation — %s (last repetition):\n\n", res.App)
			cmp, err := experiments.CompareCorrections(res.RawTrace, res.InitOffsets, res.FinOffsets, *workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "appviolations:", err)
				os.Exit(1)
			}
			var rows [][]string
			for _, r := range cmp {
				if r.Err != nil {
					rows = append(rows, []string{r.Method, "error: " + r.Err.Error(), "", ""})
					continue
				}
				rows = append(rows, []string{
					r.Method,
					fmt.Sprintf("%d", r.Violations),
					render.Micro(r.Distortion.MaxAbs),
					render.Micro(r.Distortion.MeanAbs),
				})
			}
			fmt.Print(render.Table(
				[]string{"method", "violations left", "max |Δinterval| µs", "mean |Δinterval| µs"},
				rows))
		}
	}
}

func splitList(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(c)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
