package interp_test

import (
	"fmt"

	"tsync/internal/interp"
	"tsync/internal/measure"
)

// ExampleLinear demonstrates Eq. 3 of the paper: mapping a worker clock
// onto the master time base from offsets measured at initialization and
// finalization.
func ExampleLinear() {
	// worker measured 1 ms ahead at init, 3 ms ahead at finalize (its
	// clock runs fast by 2 µs per second over the 1000 s run)
	init := []measure.Offset{
		{Rank: 0, WorkerTime: 0, Offset: 0},
		{Rank: 1, WorkerTime: 0, Offset: -1e-3},
	}
	fin := []measure.Offset{
		{Rank: 0, WorkerTime: 1000, Offset: 0},
		{Rank: 1, WorkerTime: 1000, Offset: -3e-3},
	}
	corr, err := interp.Linear(init, fin)
	if err != nil {
		panic(err)
	}
	// halfway through the run, the worker's local 500.002 s is really
	// master time 500.000 s
	fmt.Printf("%.3f\n", corr.Map(1, 500.002))
	// Output: 500.000
}
