package tsyncd_test

// The fault-matrix acceptance: 100 seeded sessions run against one
// server while deterministic network faults tear at them — mid-stream
// connection resets on either side, partial writes, corrupted trace
// bytes, garbage frames. The bar (ISSUE 10): at least 99% of sessions
// either complete bit-identically to the one-shot pipeline or fail with
// a classified error; the server survives every case, still serves a
// clean session afterwards, and drains to zero goroutines and an empty
// TMPDIR.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"tsync/internal/faultinject"
	"tsync/internal/stream"
	"tsync/internal/tsyncd"
	"tsync/internal/xrand"
)

const matrixSeed = 0xfa017

type faultKind int

const (
	faultNone faultKind = iota
	faultWriteReset
	faultReadReset
	faultShortWrites
	faultCorruptTrace
	faultGarbageFrame
	faultKinds
)

func (k faultKind) String() string {
	switch k {
	case faultNone:
		return "none"
	case faultWriteReset:
		return "write-reset"
	case faultReadReset:
		return "read-reset"
	case faultShortWrites:
		return "short-writes"
	case faultCorruptTrace:
		return "corrupt-trace"
	case faultGarbageFrame:
		return "garbage-frame"
	}
	return "?"
}

// garbageConn injects one garbage frame ahead of the client's second
// write — a protocol-level malformed frame the server must classify.
type garbageConn struct {
	net.Conn
	writes int
}

func (c *garbageConn) Write(p []byte) (int, error) {
	c.writes++
	if c.writes == 2 {
		if _, err := c.Conn.Write([]byte{0x7f, 4, 0, 0, 0, 'j', 'u', 'n', 'k'}); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}

func TestFaultMatrix(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	base := runtime.NumGoroutine()

	c := &corpus{}
	c.data, _, c.hello = synthBytes(t, stream.SynthSpec{
		Ranks: 3, Steps: 300, CollEvery: 5, Seed: xrand.SeedAt(matrixSeed, 0),
	})
	reference(t, c)
	t.Logf("trace: %d bytes up, %d bytes back", len(c.data), len(c.wantBytes))

	ts := startServer(t, tsyncd.Config{MaxSessions: 4, MaxQueue: 32})

	const cases = 100
	counts := map[string]int{}
	unclassified := 0
	for i := 0; i < cases; i++ {
		rng := xrand.NewSource(xrand.SeedAt(matrixSeed, 100+uint64(i)))
		kind := faultKind(rng.Intn(int(faultKinds)))
		outcome := runFaultCase(t, ts, c, kind, rng)
		counts[kind.String()+"/"+outcome]++
		if outcome == "unclassified" {
			unclassified++
			t.Logf("case %d (%v): unclassified outcome", i, kind)
		}
	}
	for k, n := range counts {
		t.Logf("%-28s %d", k, n) //tsync:unordered — test log only; the assertion below is order-free
	}
	if unclassified > cases/100 {
		t.Fatalf("%d/%d sessions ended unclassified; the bar is ≥99%% identical-or-classified", unclassified, cases)
	}

	// The server must still serve a clean, bit-identical session.
	var out bytes.Buffer
	done, err := ts.client(xrand.SeedAt(matrixSeed, 999)).Sync(context.Background(), c.hello, bytes.NewReader(c.data), &out)
	if err != nil {
		t.Fatalf("clean session after the fault matrix: %v", err)
	}
	if done.Checksum != c.wantChecksum || !bytes.Equal(out.Bytes(), c.wantBytes) {
		t.Fatal("post-matrix session is not bit-identical to the pipeline")
	}

	if err := ts.shutdown(); err != nil {
		t.Fatalf("drain after the fault matrix: %v", err)
	}
	waitGoroutines(t, base)
	assertEmptyDir(t, tmp)
}

// runFaultCase runs one session under the given fault and classifies
// its outcome: "identical" (completed, bytes and checksum equal the
// pipeline's), "classified" (a typed protocol error or the injected
// fault's own connection error), "completed" (corrupt-trace input that
// still decoded; no clean reference exists), or "unclassified".
func runFaultCase(t *testing.T, ts *testServer, c *corpus, kind faultKind, rng *xrand.Source) string {
	t.Helper()
	data := c.data
	if kind == faultCorruptTrace {
		flips := faultinject.NewBurstFlips(rng.Uint64(), int64(len(data)), 2, 48)
		corrupted := make([]byte, len(data))
		copy(corrupted, data)
		flips.Apply(corrupted, 0)
		data = corrupted
	}

	cl := tsyncd.NewClient(tsyncd.ClientConfig{
		Seed: rng.Uint64(), Attempts: 1, Timeout: 10 * time.Second,
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			conn, err := d.DialContext(ctx, "tcp", ts.addr())
			if err != nil {
				return nil, err
			}
			switch kind {
			case faultWriteReset:
				return &faultinject.FaultConn{Conn: conn,
					WriteResetAfter: 1 + int64(rng.Intn(len(c.data)+2000))}, nil
			case faultReadReset:
				return &faultinject.FaultConn{Conn: conn,
					ReadResetAfter: 1 + int64(rng.Intn(len(c.wantBytes)+2000))}, nil
			case faultShortWrites:
				return &faultinject.FaultConn{Conn: conn,
					ShortWrites: xrand.NewSource(rng.Uint64()), ShortMax: 1 + rng.Intn(1000)}, nil
			case faultGarbageFrame:
				return &garbageConn{Conn: conn}, nil
			}
			return conn, nil
		},
	})

	var out bytes.Buffer
	done, err := cl.Sync(context.Background(), c.hello, bytes.NewReader(data), &out)
	switch {
	case err == nil:
		if kind == faultCorruptTrace {
			// The flips happened to leave a decodable trace; the session
			// ran it faithfully. There is no clean-input reference to
			// compare against, but nothing was mishandled.
			return "completed"
		}
		if done.Checksum == c.wantChecksum && bytes.Equal(out.Bytes(), c.wantBytes) {
			return "identical"
		}
		return "unclassified"
	case isClassified(err, kind):
		return "classified"
	}
	t.Logf("fault %v: unclassified error: %v", kind, err)
	return "unclassified"
}

// isClassified accepts the two legitimate failure shapes: a typed
// protocol error from the server, or the connection-level error the
// injected fault itself produces (a real reset surfaces exactly the
// same way to a real client).
func isClassified(err error, kind faultKind) bool {
	var perr *tsyncd.Error
	if errors.As(err, &perr) {
		return true
	}
	if kind == faultNone || kind == faultShortWrites {
		return false // no fault was injected; any error is a real bug
	}
	var ne net.Error
	return errors.Is(err, faultinject.ErrReset) ||
		errors.As(err, &ne) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, os.ErrDeadlineExceeded) ||
		isBrokenPipe(err)
}

func isBrokenPipe(err error) bool {
	var oe *net.OpError
	if errors.As(err, &oe) {
		return true
	}
	return err != nil && (contains(err.Error(), "broken pipe") || contains(err.Error(), "connection reset"))
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
