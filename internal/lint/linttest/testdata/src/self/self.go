// Package self is the harness's own fixture.
package self

func boom() {}

func use() {
	boom() // want `call to boom`
}
