package linttest

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// boomAnalyzer flags every call to a function literally named boom. It is
// the minimal analyzer needed to exercise the harness itself.
var boomAnalyzer = &analysis.Analyzer{
	Name: "boom",
	Doc:  "flags calls to boom()",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
						pass.Reportf(call.Pos(), "call to boom")
					}
				}
				return true
			})
		}
		return nil, nil
	},
}

// silentAnalyzer reports nothing, so every want in a fixture goes
// unmatched — the shape of a broken analyzer against a positive fixture.
var silentAnalyzer = &analysis.Analyzer{
	Name: "silent",
	Doc:  "reports nothing",
	Run:  func(pass *analysis.Pass) (any, error) { return nil, nil },
}

// recorder captures harness failures instead of failing the test.
type recorder struct{ errs []string }

func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
	panic("linttest recorder: fatal")
}

// TestHarnessMatches: a correct analyzer against annotated fixtures
// produces no failures.
func TestHarnessMatches(t *testing.T) {
	rec := &recorder{}
	run(rec, boomAnalyzer, "self")
	if len(rec.errs) != 0 {
		t.Fatalf("expected clean run, got: %v", rec.errs)
	}
}

// TestHarnessCatchesSilentAnalyzer: if the analyzer under test stops
// reporting, the positive fixture's want expectations must fail the test.
// This is the property the acceptance criteria lean on: a fixture test
// passing proves the analyzer really fires.
func TestHarnessCatchesSilentAnalyzer(t *testing.T) {
	rec := &recorder{}
	run(rec, silentAnalyzer, "self")
	if len(rec.errs) == 0 {
		t.Fatal("silent analyzer against a positive fixture must fail the harness")
	}
	for _, e := range rec.errs {
		if !strings.Contains(e, "no diagnostic matching") {
			t.Fatalf("unexpected failure kind: %q", e)
		}
	}
}

// TestHarnessCatchesUnexpectedDiagnostic: diagnostics with no want
// expectation fail the test too (no silent over-reporting).
func TestHarnessCatchesUnexpectedDiagnostic(t *testing.T) {
	rec := &recorder{}
	run(rec, boomAnalyzer, "noisy")
	found := false
	for _, e := range rec.errs {
		if strings.Contains(e, "unexpected diagnostic") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an unexpected-diagnostic failure, got: %v", rec.errs)
	}
}
