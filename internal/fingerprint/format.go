package fingerprint

import (
	"fmt"
	"io"
)

// WriteText renders the report as the CLI table cmd/tracestat and
// cmd/tracesync print under -fingerprint: one row per rank with its
// dominant drift rate, jitter signature, stability, and a break list.
// All quantities are plain %g/%f renderings of finite floats (the
// tracker never produces NaN or Inf), so the table is byte-identical
// whenever the reports are.
func (r *Report) WriteText(w io.Writer) error {
	anom := r.Anomalous()
	if _, err := fmt.Fprintf(w, "drift fingerprint: %d ranks, %d breaks, %d anomalous\n",
		len(r.Ranks), r.Breaks(), len(anom)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%5s %12s %12s %9s %5s  %s\n",
		"rank", "drift(ppm)", "jitter(s)", "stability", "segs", "breaks"); err != nil {
		return err
	}
	for i := range r.Ranks {
		rk := &r.Ranks[i]
		flag := " "
		if rk.Anomalous {
			flag = "!"
		}
		if _, err := fmt.Fprintf(w, "%4d%s %+12.3f %12.3e %9.3f %5d  %s\n",
			rk.Rank, flag, rk.DriftPPM, rk.JitterRMS, rk.Stability,
			len(rk.Segments), breakList(rk.Breaks)); err != nil {
			return err
		}
	}
	return nil
}

// breakList renders a rank's breaks compactly: kind@t=...s(Δ=...).
func breakList(bs []Break) string {
	if len(bs) == 0 {
		return "-"
	}
	s := ""
	for i, b := range bs {
		if i > 0 {
			s += " "
		}
		mag := b.Jump
		if b.Kind == KindFreqJump {
			mag = b.DriftChange
		}
		s += fmt.Sprintf("%s@t=%.4gs(Δ=%+.3g)", b.Kind, b.At, mag)
	}
	return s
}
