package experiments

// Worker-count invariance: the deterministic runner (internal/runner)
// promises that every experiment driver produces bit-identical results
// for any worker bound. These tests pin that contract at the driver
// level, comparing full-result checksums (floats by their IEEE-754 bits,
// traces by their codec encoding) across worker counts 1, 2 and 8.

import (
	"testing"

	"tsync/internal/clock"
	"tsync/internal/topology"
)

var invarianceWorkers = []int{1, 2, 8}

func TestAppViolationsWorkerInvariance(t *testing.T) {
	sums := make(map[string]int)
	for _, w := range invarianceWorkers {
		res, err := AppViolations(AppViolationsConfig{
			App: AppPOP, Machine: topology.Xeon(), Timer: clock.TSC,
			Ranks: 8, Reps: 3, Seed: 42, Scale: 0.1, Workers: w,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sum, err := res.Checksum()
		if err != nil {
			t.Fatalf("workers=%d: checksum: %v", w, err)
		}
		sums[sum]++
		t.Logf("workers=%d: %s", w, sum)
	}
	if len(sums) != 1 {
		t.Fatalf("AppViolations results differ across worker counts: %v", sums)
	}
}

func TestOMPStudyWorkerInvariance(t *testing.T) {
	sums := make(map[string]int)
	for _, w := range invarianceWorkers {
		res, err := OMPStudy(OMPStudyConfig{
			Machine: topology.Xeon(), Timer: clock.TSC,
			Threads: 4, Regions: 20, Reps: 3, Seed: 42, Workers: w,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sum, err := res.Checksum()
		if err != nil {
			t.Fatalf("workers=%d: checksum: %v", w, err)
		}
		sums[sum]++
		t.Logf("workers=%d: %s", w, sum)
	}
	if len(sums) != 1 {
		t.Fatalf("OMPStudy results differ across worker counts: %v", sums)
	}
}

func TestCompareCorrectionsWorkerInvariance(t *testing.T) {
	base, err := AppViolations(AppViolationsConfig{
		App: AppPOP, Machine: topology.Xeon(), Timer: clock.TSC,
		Ranks: 8, Reps: 1, Seed: 42, Scale: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	sums := make(map[string]int)
	for _, w := range invarianceWorkers {
		rows, err := CompareCorrections(base.RawTrace, base.InitOffsets, base.FinOffsets, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sums[ChecksumMethods(rows)]++
	}
	if len(sums) != 1 {
		t.Fatalf("CompareCorrections rows differ across worker counts: %v", sums)
	}
}

func TestRankTimersWorkerInvariance(t *testing.T) {
	var base []TimerRanking
	for _, w := range invarianceWorkers {
		rows, err := RankTimers(topology.Xeon(), nil, 300, 42, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := rows
		if base == nil {
			base = got
			continue
		}
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d rows, want %d", w, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] { //tsync:exact — invariance demands bit-identical scores and ordering
				t.Fatalf("workers=%d: row %d = %+v, want %+v", w, i, got[i], base[i])
			}
		}
	}
}
