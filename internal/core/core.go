// Package core assembles the paper's primary contribution into a single
// postmortem timestamp-synchronization pipeline: a base correction that
// compensates offset and drift (offset alignment, linear offset
// interpolation per Eq. 3, piecewise interpolation, or one of the
// error-estimation baselines of Section V) optionally followed by the
// controlled logical clock, which removes the residual clock-condition
// violations the base correction cannot (the paper's concluding
// recommendation: "linear offset interpolation ... is still insufficient
// when applied in isolation. A viable option for removing remaining
// inconsistencies is the CLC algorithm").
package core

import (
	"fmt"

	"tsync/internal/analysis"
	"tsync/internal/clc"
	"tsync/internal/errest"
	"tsync/internal/interp"
	"tsync/internal/measure"
	"tsync/internal/trace"
)

// Base selects the first pipeline stage.
type Base string

// Base correction strategies.
const (
	// BaseNone leaves raw local timestamps.
	BaseNone Base = "none"
	// BaseAlign subtracts offsets measured at initialization.
	BaseAlign Base = "align"
	// BaseInterp applies Eq. 3 between initialization and finalization
	// offsets (the Scalasca approach).
	BaseInterp Base = "interp"
	// BaseRegression applies Duda's regression estimator.
	BaseRegression Base = "duda-regression"
	// BaseConvexHull applies Duda's convex-hull estimator.
	BaseConvexHull Base = "duda-convex-hull"
	// BaseMinMax applies Hofmann's minimum/maximum estimator.
	BaseMinMax Base = "hofmann-minmax"
)

// ParseBase maps a command-line spelling onto a Base.
func ParseBase(s string) (Base, error) {
	switch Base(s) {
	case BaseNone, BaseAlign, BaseInterp, BaseRegression, BaseConvexHull, BaseMinMax:
		return Base(s), nil
	}
	return "", fmt.Errorf("core: unknown base correction %q", s)
}

// Pipeline is a configured synchronization pipeline.
type Pipeline struct {
	Base Base
	// Windows, when >= 2 and Base is an error-estimation method, fits
	// the pairwise maps per time window (errest.EstimateWindowed), which
	// tracks drift-rate changes a single line cannot — at the cost of
	// noisier fits in windows with little bidirectional traffic.
	Windows int
	// CLC enables the controlled logical clock stage.
	CLC bool
	// CLCOptions tunes the CLC stage; zero value selects defaults.
	CLCOptions clc.Options
	// Parallel selects the replay-based parallel CLC implementation.
	Parallel bool
}

// Result reports what the pipeline did.
type Result struct {
	// Trace is the corrected trace.
	Trace *trace.Trace
	// Before and After are violation censuses of input and output.
	Before, After analysis.Census
	// CLCReport is populated when the CLC stage ran.
	CLCReport clc.Report
	// Distortion compares local inter-event intervals of output vs input.
	Distortion analysis.Distortion
}

// Run executes the pipeline on a raw trace. The offset tables are required
// by BaseAlign (init only) and BaseInterp (both); other bases ignore them.
// The input trace is never modified.
func (p Pipeline) Run(raw *trace.Trace, init, fin []measure.Offset) (*Result, error) {
	if raw == nil {
		return nil, fmt.Errorf("core: nil trace")
	}
	res := &Result{}
	var err error
	if res.Before, err = analysis.CensusOf(raw); err != nil {
		return nil, err
	}
	cur := raw
	switch p.Base {
	case BaseNone, "":
		// keep raw timestamps
	case BaseAlign:
		corr, err := interp.AlignOnly(init)
		if err != nil {
			return nil, err
		}
		cur = corr.Apply(cur)
	case BaseInterp:
		corr, err := interp.Linear(init, fin)
		if err != nil {
			return nil, err
		}
		cur = corr.Apply(cur)
	case BaseRegression, BaseConvexHull, BaseMinMax:
		method := map[Base]errest.Method{
			BaseRegression: errest.Regression,
			BaseConvexHull: errest.ConvexHull,
			BaseMinMax:     errest.MinMax,
		}[p.Base]
		var corr *interp.Correction
		var err error
		if p.Windows >= 2 {
			corr, err = errest.EstimateWindowed(cur, method, p.Windows)
		} else {
			corr, err = errest.Estimate(cur, method)
		}
		if err != nil {
			return nil, err
		}
		cur = corr.Apply(cur)
	default:
		return nil, fmt.Errorf("core: unknown base correction %q", p.Base)
	}
	if p.CLC {
		opts := p.CLCOptions
		if opts.Gamma == 0 {
			// zero value: the pipeline was built without explicit CLC
			// options
			opts = clc.DefaultOptions()
		}
		var corrected *trace.Trace
		if p.Parallel {
			corrected, res.CLCReport, err = clc.CorrectParallel(cur, opts)
		} else {
			corrected, res.CLCReport, err = clc.Correct(cur, opts)
		}
		if err != nil {
			return nil, err
		}
		cur = corrected
	}
	if cur == raw {
		cur = raw.Clone()
	}
	res.Trace = cur
	if res.After, err = analysis.CensusOf(cur); err != nil {
		return nil, err
	}
	if res.Distortion, err = analysis.DistortionBetween(raw, cur); err != nil {
		return nil, err
	}
	return res, nil
}

// Recommended returns the pipeline the paper's conclusion advocates for
// message-passing traces: hardware-clock timestamps pre-synchronized by
// linear offset interpolation, then CLC to restore the clock condition.
func Recommended() Pipeline {
	return Pipeline{Base: BaseInterp, CLC: true, Parallel: true}
}
