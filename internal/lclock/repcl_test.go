package lclock

// RepCl unit tests: tick/merge monotonicity under Before, agreement of
// the ε-window ordering with vector-clock happened-before, counter
// overflow under all three policies, ε clamping, the canonical wire
// codec, and the stamper's bounded-memory release contract.

import (
	"errors"
	"math"
	"strings"
	"testing"

	"tsync/internal/trace"
)

func repClTestCfg() RepClConfig {
	return RepClConfig{Interval: 1e-3, Epsilon: 4, MaxCounter: 1<<16 - 1}.Normalize()
}

func TestRepClConfigNormalizeDefaults(t *testing.T) {
	cfg := RepClConfig{}.Normalize()
	if cfg.Interval != 1e-3 || cfg.Epsilon != 4 || cfg.MaxCounter != 1<<16-1 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	// Normalize is idempotent and preserves explicit values.
	set := RepClConfig{Interval: 2, Epsilon: 7, MaxCounter: 9, Overflow: OverflowSaturate}
	if got := set.Normalize(); got != set {
		t.Fatalf("Normalize clobbered explicit config: %+v", got)
	}
}

func TestRepClEpoch(t *testing.T) {
	cfg := repClTestCfg()
	cases := []struct {
		t    float64
		want uint64
	}{
		{-1, 0}, {0, 0}, {0.0005, 0}, {0.001, 1}, {0.0049, 4}, {1.0, 1000},
	}
	for _, c := range cases {
		if got := cfg.Epoch(c.t); got != c.want {
			t.Errorf("Epoch(%g) = %d, want %d", c.t, got, c.want)
		}
	}
	// degenerate interval never divides by ~zero into an overflowing epoch
	if e := (RepClConfig{Interval: 1e-300}).Epoch(1); e != math.MaxUint64/2 {
		t.Errorf("tiny-interval epoch not capped: %d", e)
	}
}

// TestRepClTickMonotone: successive local events on one rank must be
// strictly ordered by Before, whether they share an epoch (counter
// orders them) or not (epochs order them).
func TestRepClTickMonotone(t *testing.T) {
	cfg := repClTestCfg()
	c := NewRepCl(2)
	times := []float64{0, 0.0002, 0.0004, 0.0011, 0.0012, 0.0063, 0.02}
	prev := c.Clone()
	for i, tm := range times {
		clamped, err := c.Tick(cfg, 0, tm)
		if err != nil {
			t.Fatalf("Tick(%g): %v", tm, err)
		}
		if clamped {
			t.Fatalf("Tick(%g): unexpected ε clamp on a forward-moving clock", tm)
		}
		if i > 0 && !cfg.Before(prev, c) {
			t.Fatalf("event %d at t=%g not Before its successor: %+v vs %+v", i-1, tm, prev, c)
		}
		if i > 0 && cfg.Before(c, prev) {
			t.Fatalf("Before inverted at event %d: %+v vs %+v", i, c, prev)
		}
		prev = c.Clone()
	}
	if e, ok := c.EpochAt(0); !ok || e != cfg.Epoch(0.02) {
		t.Fatalf("own epoch = %d/%v, want %d", e, ok, cfg.Epoch(0.02))
	}
	if _, ok := c.EpochAt(1); ok {
		t.Fatal("never-heard-of rank reported as known")
	}
}

// TestRepClMergeRecvOrdersSendBeforeReceive: a receive that merges its
// matched send's stamp must compare strictly after it, even when both
// events share the epoch configuration.
func TestRepClMergeRecvOrdersSendBeforeReceive(t *testing.T) {
	cfg := repClTestCfg()
	send := NewRepCl(2)
	if _, err := send.Tick(cfg, 0, 0.0001); err != nil {
		t.Fatal(err)
	}
	recv := NewRepCl(2)
	if _, err := recv.MergeRecv(cfg, 1, 0.0002, send); err != nil {
		t.Fatal(err)
	}
	if !cfg.Before(send, recv) {
		t.Fatalf("send %+v not Before its receive %+v", send, recv)
	}
	if cfg.Before(recv, send) || cfg.Concurrent(send, recv) {
		t.Fatalf("receive does not strictly follow send: %+v vs %+v", send, recv)
	}
	// the receive learned the sender's epoch
	if e, ok := recv.EpochAt(0); !ok || e != cfg.Epoch(0.0001) {
		t.Fatalf("receive knows sender epoch %d/%v, want %d", e, ok, cfg.Epoch(0.0001))
	}
}

// TestRepClConcurrentTicks: two ranks ticking independently within the
// ε window are concurrent — a replay may order them either way.
func TestRepClConcurrentTicks(t *testing.T) {
	cfg := repClTestCfg()
	a, b := NewRepCl(2), NewRepCl(2)
	if _, err := a.Tick(cfg, 0, 0.0001); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Tick(cfg, 1, 0.0032); err != nil { // 3 epochs apart < ε=4
		t.Fatal(err)
	}
	if !cfg.Concurrent(a, b) {
		t.Fatalf("independent in-window ticks not concurrent: %+v vs %+v", a, b)
	}
	// more than ε epochs apart, physical time orders them
	c := NewRepCl(2)
	if _, err := c.Tick(cfg, 1, 0.0061); err != nil { // 6 epochs > ε
		t.Fatal(err)
	}
	if !cfg.Before(a, c) || cfg.Before(c, a) {
		t.Fatalf("out-of-window ticks not ordered by epoch: %+v vs %+v", a, c)
	}
}

// TestRepClBeforeAgreesWithVectors: on a hand-built message chain the
// RepCl Before relation must contain no inversion of vector-clock
// happened-before — whenever vectors say a → b, RepCl must never claim
// b Before a.
func TestRepClBeforeAgreesWithVectors(t *testing.T) {
	cfg := repClTestCfg()
	tr := chainTrace()
	stamps, skew, err := RepClStamps(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if skew != 0 {
		t.Fatalf("clean chain produced %d ε clamps", skew)
	}
	vecs, err := Vectors(tr)
	if err != nil {
		t.Fatal(err)
	}
	type ev struct{ r, i int }
	var all []ev
	for r, p := range tr.Procs {
		for i := range p.Events {
			all = append(all, ev{r, i})
		}
	}
	for _, a := range all {
		for _, b := range all {
			if vecs[a.r][a.i].Less(vecs[b.r][b.i]) && cfg.Before(stamps[b.r][b.i], stamps[a.r][a.i]) {
				t.Errorf("RepCl inverted HB: (%d,%d) → (%d,%d) but Before claims the reverse",
					a.r, a.i, b.r, b.i)
			}
		}
	}
	// the chain itself is fully ordered end to end
	if !cfg.Before(stamps[0][0], stamps[2][0]) {
		t.Fatalf("chain endpoints not ordered: %+v vs %+v", stamps[0][0], stamps[2][0])
	}
}

// TestRepClEpsilonClamp: a rank whose corrected clock lags more than ε
// epochs behind causally-known time is clamped into the window and the
// clamp is reported.
func TestRepClEpsilonClamp(t *testing.T) {
	cfg := repClTestCfg()
	fast := NewRepCl(2)
	if _, err := fast.Tick(cfg, 0, 0.0100); err != nil { // epoch 10
		t.Fatal(err)
	}
	lag := NewRepCl(2)
	clamped, err := lag.MergeRecv(cfg, 1, 0.0001, fast) // own epoch 0, 10 behind
	if err != nil {
		t.Fatal(err)
	}
	if !clamped {
		t.Fatal("lagging receive not reported as clamped")
	}
	if lag.Off[1] != cfg.Epsilon {
		t.Fatalf("clamped offset = %d, want ε = %d", lag.Off[1], cfg.Epsilon)
	}
	if err := lag.Validate(cfg); err != nil {
		t.Fatalf("clamped stamp fails Validate: %v", err)
	}
}

// TestRepClWindowForgets: knowledge older than ε epochs falls off the
// window (OffUnknown) rather than growing the stamp.
func TestRepClWindowForgets(t *testing.T) {
	cfg := repClTestCfg()
	send := NewRepCl(2)
	if _, err := send.Tick(cfg, 0, 0.0001); err != nil {
		t.Fatal(err)
	}
	c := NewRepCl(2)
	if _, err := c.MergeRecv(cfg, 1, 0.0002, send); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.EpochAt(0); !ok {
		t.Fatal("fresh knowledge already unknown")
	}
	if _, err := c.Tick(cfg, 1, 0.0200); err != nil { // 20 epochs later
		t.Fatal(err)
	}
	if _, ok := c.EpochAt(0); ok {
		t.Fatalf("stale knowledge survived past ε: %+v", c)
	}
	if c.Off[0] != OffUnknown {
		t.Fatalf("stale offset = %d, want OffUnknown", c.Off[0])
	}
}

// TestRepClOverflowPolicies: the three counter-overflow policies at a
// pinned MaxCounter.
func TestRepClOverflowPolicies(t *testing.T) {
	base := RepClConfig{Interval: 1, Epsilon: 4, MaxCounter: 2}

	t.Run("advance", func(t *testing.T) {
		cfg := base
		cfg.Overflow = OverflowAdvance
		c := NewRepCl(1)
		var prev RepCl
		for i := 0; i < 4; i++ { // Ctr 0,1,2, then overflow
			prev = c.Clone()
			if _, err := c.Tick(cfg, 0, 0.5); err != nil {
				t.Fatal(err)
			}
		}
		if c.Mx != 1 || c.Ctr != 0 || c.Off[0] != 0 {
			t.Fatalf("overflow did not advance the epoch: %+v", c)
		}
		if !cfg.Before(prev, c) {
			t.Fatalf("advance broke strict ordering: %+v vs %+v", prev, c)
		}
	})

	t.Run("saturate", func(t *testing.T) {
		cfg := base
		cfg.Overflow = OverflowSaturate
		c := NewRepCl(1)
		for i := 0; i < 10; i++ {
			if _, err := c.Tick(cfg, 0, 0.5); err != nil {
				t.Fatal(err)
			}
		}
		if c.Mx != 0 || c.Ctr != cfg.MaxCounter {
			t.Fatalf("saturate did not pin the counter: %+v", c)
		}
	})

	t.Run("error", func(t *testing.T) {
		cfg := base
		cfg.Overflow = OverflowError
		c := NewRepCl(1)
		var err error
		for i := 0; i < 4 && err == nil; i++ {
			_, err = c.Tick(cfg, 0, 0.5)
		}
		if err == nil || !strings.Contains(err.Error(), "overflow") {
			t.Fatalf("overflow not reported: %v", err)
		}
	})
}

// TestRepClCodecRoundTrip: encode∘decode is the identity, trailing
// bytes and malformed inputs are ErrBadFormat.
func TestRepClCodecRoundTrip(t *testing.T) {
	cfg := repClTestCfg()
	c := NewRepCl(3)
	if _, err := c.Tick(cfg, 1, 0.0042); err != nil {
		t.Fatal(err)
	}
	other := NewRepCl(3)
	if _, err := other.Tick(cfg, 0, 0.0040); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MergeRecv(cfg, 1, 0.0043, other); err != nil {
		t.Fatal(err)
	}

	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec RepCl
	if err := dec.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(c) {
		t.Fatalf("round trip changed the stamp: %+v vs %+v", dec, c)
	}
	if err := dec.Validate(cfg); err != nil {
		t.Fatalf("decoded stamp invalid: %v", err)
	}

	// trailing garbage is a format error
	if err := dec.UnmarshalBinary(append(append([]byte(nil), data...), 0)); !errors.Is(err, trace.ErrBadFormat) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
	// every truncation is a format error, never a panic
	for i := 0; i < len(data); i++ {
		if _, _, err := DecodeRepCl(data[:i]); !errors.Is(err, trace.ErrBadFormat) {
			t.Errorf("truncation at %d: %v", i, err)
		}
	}
	// an attacker-sized length claim is rejected before allocation
	huge := []byte{0x00}                                                // Mx = 0
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // len = huge
	if _, _, err := DecodeRepCl(huge); !errors.Is(err, trace.ErrBadFormat) {
		t.Fatalf("oversized length accepted: %v", err)
	}
}

func TestRepClValidate(t *testing.T) {
	cfg := repClTestCfg()
	bad := RepCl{Mx: 5, Off: []uint32{cfg.Epsilon + 1}, Ctr: 0}
	if err := bad.Validate(cfg); !errors.Is(err, trace.ErrBadFormat) {
		t.Fatalf("out-of-window offset accepted: %v", err)
	}
	bad = RepCl{Mx: 5, Off: []uint32{0}, Ctr: cfg.MaxCounter + 1}
	if err := bad.Validate(cfg); !errors.Is(err, trace.ErrBadFormat) {
		t.Fatalf("oversized counter accepted: %v", err)
	}
	ok := RepCl{Mx: 5, Off: []uint32{0, OffUnknown, cfg.Epsilon}, Ctr: cfg.MaxCounter}
	if err := ok.Validate(cfg); err != nil {
		t.Fatalf("valid stamp rejected: %v", err)
	}
}

// TestRepClStamperReleaseBoundsHeld: the stamper retains stamps only
// until Release — the contract that bounds the streaming pass's memory.
func TestRepClStamperReleaseBoundsHeld(t *testing.T) {
	st := NewRepClStamper(2, RepClConfig{})
	if _, err := st.Stamp(0, 0, 0.001, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Stamp(1, 0, 0.002, []EventRef{{Rank: 0, Idx: 0}}); err != nil {
		t.Fatal(err)
	}
	if st.Held() != 2 {
		t.Fatalf("held = %d, want 2", st.Held())
	}
	st.Release(EventRef{Rank: 0, Idx: 0})
	st.Release(EventRef{Rank: 1, Idx: 0})
	if st.Held() != 0 {
		t.Fatalf("held = %d after releases, want 0", st.Held())
	}
	if st.Events() != 2 {
		t.Fatalf("events = %d, want 2", st.Events())
	}
	// a released (or never-seen) source is skipped, not fatal — the
	// salvage path depends on that
	if _, err := st.Stamp(1, 1, 0.003, []EventRef{{Rank: 0, Idx: 0}}); err != nil {
		t.Fatalf("merge with released source failed: %v", err)
	}
	if _, err := st.Stamp(2, 0, 0, nil); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

// TestRepClStampsDigestStable: the in-memory stamping pass is
// deterministic and StampsDigest reproduces the stamper's digest.
func TestRepClStampsDigestStable(t *testing.T) {
	cfg := repClTestCfg()
	tr := chainTrace()
	s1, _, err := RepClStamps(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := RepClStamps(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := StampsDigest(s1), StampsDigest(s2)
	if d1 != d2 {
		t.Fatalf("stamping pass not deterministic: %s vs %s", d1, d2)
	}
	// every event got a distinct, ordered stamp along the chain
	if !cfg.Before(s1[0][0], s1[1][0]) || !cfg.Before(s1[1][0], s1[1][1]) || !cfg.Before(s1[1][1], s1[2][0]) {
		t.Fatalf("chain stamps out of order: %+v", s1)
	}
}

func TestRepClEqualShapes(t *testing.T) {
	a := RepCl{Mx: 1, Off: []uint32{0, 1}, Ctr: 2}
	if a.Equal(RepCl{Mx: 1, Off: []uint32{0}, Ctr: 2}) {
		t.Error("length mismatch reported equal")
	}
	if a.Equal(RepCl{Mx: 1, Off: []uint32{0, 1}, Ctr: 3}) {
		t.Error("counter mismatch reported equal")
	}
	if a.Equal(RepCl{Mx: 1, Off: []uint32{0, 2}, Ctr: 2}) {
		t.Error("offset mismatch reported equal")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal")
	}
}

// TestRepClMergeMismatchedWidth: a remote stamp carrying more offsets
// than the local clock (a decoded stamp from a wider deployment) merges
// without panicking — extra slots are ignored.
func TestRepClMergeMismatchedWidth(t *testing.T) {
	cfg := repClTestCfg()
	wide := RepCl{Mx: 0, Off: []uint32{0, 0, 0, 0}, Ctr: 1}
	c := NewRepCl(2)
	if _, err := c.MergeRecv(cfg, 0, 0.0001, wide); err != nil {
		t.Fatal(err)
	}
	if e, ok := c.EpochAt(1); !ok || e != 0 {
		t.Fatalf("in-range knowledge not merged: %d/%v", e, ok)
	}
}

// TestRepClStamperAccessors: the stamper's reporting surface agrees
// with the stamps it handed out.
func TestRepClStamperAccessors(t *testing.T) {
	cfg := RepClConfig{Interval: 1e-3, Epsilon: 4}
	st := NewRepClStamper(2, cfg)
	if got := st.Config(); got != cfg.Normalize() {
		t.Fatalf("Config() = %+v, want %+v", got, cfg.Normalize())
	}
	stamps := [][]RepCl{{}, {}}
	for i, ev := range []struct {
		rank int
		t    float64
	}{{0, 0.001}, {1, 0.002}, {0, 0.006}} {
		s, err := st.Stamp(ev.rank, i, ev.t, nil)
		if err != nil {
			t.Fatal(err)
		}
		stamps[ev.rank] = append(stamps[ev.rank], s)
	}
	if st.MaxEpoch() != cfg.Normalize().Epoch(0.006) {
		t.Fatalf("MaxEpoch = %d", st.MaxEpoch())
	}
	if len(st.RankDigests()) != 2 {
		t.Fatalf("RankDigests = %v", st.RankDigests())
	}
	if st.Digest() != StampsDigest(stamps) {
		t.Fatalf("Digest %s != StampsDigest %s", st.Digest(), StampsDigest(stamps))
	}
}

// TestRepClStampsErrors: graph and overflow failures surface from the
// in-memory stamping pass instead of producing bogus stamps.
func TestRepClStampsErrors(t *testing.T) {
	cfg := repClTestCfg()
	orphan := &trace.Trace{Procs: []trace.Proc{
		{Rank: 0, Events: []trace.Event{{Kind: trace.Recv, Time: 1, True: 1, Partner: 0}}},
	}}
	if _, _, err := RepClStamps(orphan, cfg); err == nil {
		t.Fatal("orphan receive accepted by strict stamping")
	}

	hot := &trace.Trace{Procs: []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.Enter, Time: 0.1, True: 0.1},
			{Kind: trace.Exit, Time: 0.2, True: 0.2},
			{Kind: trace.Enter, Time: 0.3, True: 0.3},
		}},
	}}
	over := RepClConfig{Interval: 1, Epsilon: 4, MaxCounter: 1, Overflow: OverflowError}
	if _, _, err := RepClStamps(hot, over); err == nil {
		t.Fatal("counter overflow not surfaced under OverflowError")
	}
}

func TestRepClDecodeNonMinimal(t *testing.T) {
	// 0x80 0x00 is a padded encoding of zero; the canonical codec
	// rejects it so encode∘decode stays the identity byte for byte
	if _, _, err := DecodeRepCl([]byte{0x80, 0x00}); !errors.Is(err, trace.ErrBadFormat) {
		t.Fatalf("non-minimal uvarint accepted: %v", err)
	}
	var r RepCl
	if err := r.UnmarshalBinary([]byte{0x80}); !errors.Is(err, trace.ErrBadFormat) {
		t.Fatalf("truncated unmarshal accepted: %v", err)
	}
}
