package trace

// Tests for the columnar/delta v2 frame encoding: lossless round trips
// against the row codec, salvage behavior identical in spirit to row
// frames (drops possible, fabrications impossible), and the payload
// validator's rejection of malformed columns.

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"tsync/internal/xrand"
)

// v2ColBytes encodes tr in the v2 codec with columnar frames.
func v2ColBytes(t testing.TB, tr *Trace, frameEvents int) []byte {
	t.Helper()
	var buf bytes.Buffer
	opts := WriterOptions{Version: Version2, FrameEvents: frameEvents, Columnar: true}
	if _, err := WriteOpts(&buf, tr, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestColFrameRoundTrip: a columnar encode/decode cycle must reproduce
// the trace bit-exactly across frame geometries, including a frame size
// of one (every frame a single-event column set).
func TestColFrameRoundTrip(t *testing.T) {
	for _, frameEvents := range []int{0, 1, 3, 256, maxColFrameEvents} {
		tr := genTrace(3, 50, 11)
		data := v2ColBytes(t, tr, frameEvents)
		back, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("frameEvents=%d: %v", frameEvents, err)
		}
		var v1a, v1b bytes.Buffer
		if _, err := Write(&v1a, tr); err != nil {
			t.Fatal(err)
		}
		if _, err := Write(&v1b, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v1a.Bytes(), v1b.Bytes()) {
			t.Fatalf("frameEvents=%d: columnar round trip changed the trace", frameEvents)
		}
	}
}

// TestColFrameSmaller: on synthetic traces with smoothly increasing
// timestamps the delta encoding must beat the row encoding — the reason
// the format exists.
func TestColFrameSmaller(t *testing.T) {
	tr := genTrace(2, 2000, 31)
	// Smooth the timestamps: monotone per rank, small increments, the
	// shape real traces have.
	for r := range tr.Procs {
		base := float64(r)
		for i := range tr.Procs[r].Events {
			base += 1e-4
			tr.Procs[r].Events[i].Time = base
			tr.Procs[r].Events[i].True = base + 1e-6
		}
	}
	row := v2Bytes(t, tr, 256)
	col := v2ColBytes(t, tr, 256)
	if len(col) >= len(row) {
		t.Fatalf("columnar encoding (%d bytes) not smaller than row (%d bytes)", len(col), len(row))
	}
}

// TestColFrameTinyTrace covers the collective/string edge cases through
// the incremental reader.
func TestColFrameTinyTrace(t *testing.T) {
	tr := tinyTrace()
	data := v2ColBytes(t, tr, 2)
	got, rep, err := readAllOpts(t, data, ResyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) != 0 {
		t.Fatalf("clean read produced incidents: %+v", rep.Incidents)
	}
	for r, p := range tr.Procs {
		if len(got[r]) != len(p.Events) {
			t.Fatalf("rank %d: got %d events, want %d", r, len(got[r]), len(p.Events))
		}
		for i := range p.Events {
			if !sameEventBits(got[r][i], p.Events[i]) {
				t.Fatalf("rank %d event %d differs", r, i)
			}
		}
	}
}

// TestColFrameDecoder runs a rank's columnar section through
// FrameDecoder — the path internal/stream's cursors use — and checks
// both the one-at-a-time and the batch interface.
func TestColFrameDecoder(t *testing.T) {
	tr := genTrace(1, 700, 17)
	data := v2ColBytes(t, tr, 64)
	offs, typs := findBlocks(t, data)
	sec := -1
	for i, typ := range typs {
		if typ == blockColFrame {
			sec = offs[i]
			break
		}
	}
	if sec < 0 {
		t.Fatal("no columnar block in columnar file")
	}
	want := tr.Procs[0].Events

	d := NewFrameDecoder(bytes.NewReader(data[sec:]), 0, ResyncPolicy{})
	var ev Event
	for i := range want {
		if err := d.Decode(&ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !sameEventBits(ev, want[i]) {
			t.Fatalf("event %d differs", i)
		}
	}
	if err := d.Decode(&ev); err != io.EOF {
		t.Fatalf("after last event: got %v, want io.EOF", err)
	}

	d = NewFrameDecoder(bytes.NewReader(data[sec:]), 0, ResyncPolicy{})
	got := make([]Event, len(want)+1)
	n, err := d.DecodeBatch(got)
	if n != len(want) || err != io.EOF {
		t.Fatalf("DecodeBatch: got (%d, %v), want (%d, io.EOF)", n, err, len(want))
	}
	for i := range want {
		if !sameEventBits(got[i], want[i]) {
			t.Fatalf("batch event %d differs", i)
		}
	}
}

// TestColFrameSingleFlipSalvage: single-byte corruption of a columnar
// file must fail strict reads and salvage to a per-rank subsequence —
// never a fabrication — under resync.
func TestColFrameSingleFlipSalvage(t *testing.T) {
	tr := genTrace(3, 120, 23)
	data := v2ColBytes(t, tr, 8)
	firstBlock := bytes.Index(data, frameMarker[:])
	rng := xrand.NewSource(99)
	for trial := 0; trial < 40; trial++ {
		off := firstBlock + rng.Intn(len(data)-firstBlock)
		mut := append([]byte(nil), data...)
		mut[off] ^= byte(1 << rng.Intn(8))
		if mut[off] == data[off] {
			continue
		}

		if _, _, err := readAllOpts(t, mut, ResyncPolicy{}); err == nil {
			t.Fatalf("trial %d (byte %d): strict read accepted corrupt input", trial, off)
		} else if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("trial %d: strict error not ErrBadFormat: %v", trial, err)
		}

		got, rep, err := readAllOpts(t, mut, ResyncPolicy{Enabled: true})
		if err != nil {
			t.Fatalf("trial %d (byte %d): resync read failed: %v", trial, off, err)
		}
		if len(rep.Incidents) == 0 {
			t.Fatalf("trial %d (byte %d): corruption recovered without an incident", trial, off)
		}
		for r, p := range tr.Procs {
			if !isSubsequence(got[r], p.Events) {
				t.Fatalf("trial %d (byte %d): rank %d salvaged events are not a subsequence of the original", trial, off, r)
			}
		}
	}
}

// TestColPayloadRejects exercises parseColPayload's validation branches
// on hand-built payloads.
func TestColPayloadRejects(t *testing.T) {
	tr := genTrace(1, 4, 7)
	good := appendColFrame(nil, tr.Procs[0].Events)
	prefix := []byte{0, 4} // rank 0, count 4 (single-byte uvarints)
	payload := append(append([]byte(nil), prefix...), good...)
	if _, err := parseColPayload(payload, nil); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	cases := []struct {
		name string
		p    []byte
	}{
		{"empty", nil},
		{"zero count", []byte{0, 0}},
		{"oversized count", binary_AppendUvarint([]byte{0}, uint64(maxColFrameEvents+1))},
		{"truncated body", payload[:len(payload)-1]},
		{"trailing bytes", append(append([]byte(nil), payload...), 0)},
		{"short for count", []byte{0, 200, 1, 2, 3}},
	}
	for _, c := range cases {
		if _, err := parseColPayload(c.p, nil); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// binary_AppendUvarint avoids importing encoding/binary just for one
// helper call in the rejection table.
func binary_AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// TestColumnarNeedsV2: requesting columnar frames with the v1 codec must
// be rejected at writer construction.
func TestColumnarNeedsV2(t *testing.T) {
	var buf bytes.Buffer
	_, err := NewEventWriterOpts(&buf, Header{}, WriterOptions{Version: Version1, Columnar: true})
	if err == nil {
		t.Fatal("columnar v1 writer accepted")
	}
}

// TestColFrameMixedRead: a stream interleaving row and columnar frames
// for the same rank must read cleanly — readers accept both types
// wherever a frame is legal.
func TestColFrameMixedRead(t *testing.T) {
	tr := genTrace(1, 40, 13)
	evs := tr.Procs[0].Events

	var buf bytes.Buffer
	ew, err := NewEventWriterOpts(&buf, HeaderOf(tr), WriterOptions{Version: Version2, FrameEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ew.BeginProc(ProcHeader{Rank: 0, Core: tr.Procs[0].Core, Clock: tr.Procs[0].Clock, EventCount: len(evs)}); err != nil {
		t.Fatal(err)
	}
	// First half row-framed through the writer's normal path, second
	// half hand-emitted as columnar blocks on the same frameWriter.
	half := len(evs) / 2
	for i := 0; i < half; i++ {
		if err := ew.Write(&evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ew.fw.flushFrame(); err != nil {
		t.Fatal(err)
	}
	ew.fw.columnar = true
	ew.fw.evBuf = make([]Event, 0, len(evs)-half)
	for i := half; i < len(evs); i++ {
		if err := ew.Write(&evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ew.Close(); err != nil {
		t.Fatal(err)
	}

	got, rep, err := readAllOpts(t, buf.Bytes(), ResyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) != 0 {
		t.Fatalf("clean mixed read produced incidents: %+v", rep.Incidents)
	}
	if len(got[0]) != len(evs) {
		t.Fatalf("got %d events, want %d", len(got[0]), len(evs))
	}
	for i := range evs {
		if !sameEventBits(got[0][i], evs[i]) {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestColFrameTruncatedTail: truncating a columnar file mid-block loses
// the tail frames but salvages everything before them.
func TestColFrameTruncatedTail(t *testing.T) {
	tr := genTrace(2, 100, 41)
	data := v2ColBytes(t, tr, 8)
	cut := len(data) - len(data)/4
	got, rep, err := readAllOpts(t, data[:cut], ResyncPolicy{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostEvents == 0 && !rep.UnknownLoss {
		t.Fatal("truncation reported no loss")
	}
	for r, p := range tr.Procs {
		if !isSubsequence(got[r], p.Events) {
			t.Fatalf("rank %d salvaged events are not a subsequence", r)
		}
	}
}

// TestColFrameEventOrderPreserved: the column transform must not reorder
// events — a quick structural check on the raw payload layout.
func TestColFrameEventOrderPreserved(t *testing.T) {
	evs := []Event{
		{Kind: Send, Time: 1, True: 1.5, Partner: 1},
		{Kind: Recv, Time: 2, True: 2.5, Partner: 0},
		{Kind: Enter, Time: 3, True: 3.5},
	}
	p := appendColFrame(nil, evs)
	wantKinds := []byte{byte(Send), byte(Recv), byte(Enter)}
	if !bytes.Equal(p[:3], wantKinds) {
		t.Fatalf("kind column = %v, want %v", p[:3], wantKinds)
	}
	payload := append([]byte{0, 3}, p...)
	parsed, err := parseColPayload(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		if !sameEventBits(parsed.decoded[i], evs[i]) {
			t.Fatalf("event %d differs after decode", i)
		}
	}
}
