package stream

import (
	"context"
	"fmt"
	"io"
	"math"

	"tsync/internal/trace"
)

// lamportSink computes Lamport clocks online. Because the engine's merge
// order is topological, the single pass lc = max(prev+1, max src+1)
// reaches the same fixpoint as lclock.Lamport's iterative sweeps; clock
// values travel along edges in EdgeData.Value (exact in a float64 far
// beyond any realistic trace length).
type lamportSink struct {
	base, delta float64
	prev        []uint64
	writers     []*spillWriter
}

func newLamportSink(src *Source, delta float64, spills *spillSet) (*lamportSink, error) {
	base := math.Inf(1)
	for r := 0; r < src.Ranks(); r++ {
		if src.Procs()[r].EventCount > 0 && src.FirstTime(r) < base {
			base = src.FirstTime(r)
		}
	}
	if math.IsInf(base, 1) {
		base = 0
	}
	s := &lamportSink{base: base, delta: delta, prev: make([]uint64, src.Ranks()), writers: make([]*spillWriter, src.Ranks())}
	for r := range s.writers {
		w, err := spills.writer(r)
		if err != nil {
			return nil, err
		}
		s.writers[r] = w
	}
	return s, nil
}

func (s *lamportSink) event(rank, idx int, ev *trace.Event, mapped float64, in []InEdge) (EdgeData, error) {
	v := s.prev[rank] + 1
	for _, e := range in {
		if sv := uint64(e.Data.Value) + 1; sv > v {
			v = sv
		}
	}
	s.prev[rank] = v
	if err := s.writers[rank].write(s.base + float64(v)*s.delta); err != nil {
		return EdgeData{}, err
	}
	return EdgeData{Raw: ev.Time, Mapped: mapped, Value: float64(v)}, nil
}

func (s *lamportSink) final(EventRef) error { return nil }
func (s *lamportSink) rankDone(int) error   { return nil }

func (s *lamportSink) flush() error {
	for _, w := range s.writers {
		if err := w.close(); err != nil {
			return err
		}
	}
	return nil
}

// LamportSchedule streams the purely logical schedule (lclock's baseline:
// Time = firstTime + LC·delta) from src to out, bit-identical to
// lclock.LamportSchedule followed by trace.Write.
func LamportSchedule(src *Source, delta float64, out io.Writer, opt Options) (Stats, error) {
	return LamportScheduleContext(context.Background(), src, delta, out, opt)
}

// LamportScheduleContext is LamportSchedule under a context.
func LamportScheduleContext(ctx context.Context, src *Source, delta float64, out io.Writer, opt Options) (Stats, error) {
	if delta <= 0 {
		return Stats{}, fmt.Errorf("stream: LamportSchedule needs positive delta, got %v", delta)
	}
	opt = opt.Normalize()
	var stats Stats
	stats.Events = src.Events()
	if opt.Salvage || src.Salvaged() {
		stats.Loss = src.Losses()
	}
	spills, err := newSpillSet(src.Ranks(), opt.SpillFS)
	if err != nil {
		return stats, err
	}
	defer spills.Close()
	snk, err := newLamportSink(src, delta, spills)
	if err != nil {
		return stats, err
	}
	if err := walk(ctx, src, identityMapper{}, snk, opt, newAccounting(src.Ranks(), opt, &stats), stats.Loss); err != nil {
		return stats, err
	}
	m := spills.mapper()
	defer m.close()
	return stats, assemble(ctx, src, m, out, opt)
}
