package errform_test

import (
	"testing"

	"tsync/internal/lint/errform"
	"tsync/internal/lint/linttest"
)

func TestErrform(t *testing.T) {
	linttest.Run(t, errform.Analyzer,
		"tsync/internal/trace", // decode package: positive, negative, directive cases
		"b",                    // non-decode package: exempt
	)
}
