package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"tsync/internal/xrand"
)

func TestMapPreservesTaskOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		got, err := Map(New(workers), 37, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 37 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(New(4), 0, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(got) != 0 {
		t.Fatalf("n=0: %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// tasks 3, 5 and 11 fail; the reported error must be task 3's on
	// every worker count, even though completion order varies
	for _, workers := range []int{1, 2, 8} {
		ran := make([]bool, 16)
		_, err := Map(New(workers), 16, func(i int) (int, error) {
			ran[i] = true //tsync:locked — disjoint index per task, read after Map returns
			if i == 3 || i == 5 || i == 11 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want task 3's", workers, err)
		}
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: task %d skipped after failure; all tasks must run", workers, i)
			}
		}
	}
}

func TestSeedMatchesSplitmixStream(t *testing.T) {
	// Seed(base, i) must be the i-th output of a sequentially advanced
	// splitmix64 stream — the O(1) jump may not diverge from the walk
	const base = 0xfeedface
	state := uint64(base)
	for i := 0; i < 1000; i++ {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		want := z ^ (z >> 31)
		if got := Seed(base, i); got != want {
			t.Fatalf("Seed(%#x, %d) = %#x, want %#x", uint64(base), i, got, want)
		}
	}
}

func TestSeedsDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		s := Seed(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("Seed(42, %d) == Seed(42, %d)", i, j)
		}
		seen[s] = i
	}
}

// simulate mimics an experiment repetition: a chain of floating-point
// work driven entirely by the task seed. Any cross-task state leak or
// order dependence would change its output.
func simulate(seed uint64) float64 {
	src := xrand.NewSource(seed)
	acc := 0.0
	for i := 0; i < 2000; i++ {
		acc += math.Sin(src.Normal(0, 1)) * src.Exponential(0.5)
	}
	return acc
}

// TestMapInvariance is the engine's core property test: for arbitrary base
// seeds and task counts, the fan-out must produce bit-identical results at
// every worker count.
func TestMapInvariance(t *testing.T) {
	check := func(base uint64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		var ref []float64
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := Map(New(workers), n, func(i int) (float64, error) {
				return simulate(Seed(base, i)), nil
			})
			if err != nil {
				return false
			}
			if ref == nil {
				ref = got
				continue
			}
			for i := range got {
				// bit-identical, not approximately equal
				if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMapContextPreCancelled: an already-cancelled context dispatches no
// tasks at all, on both the serial and the parallel path.
func TestMapContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		results, err := MapContext(ctx, New(workers), 8, func(i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d tasks ran under a pre-cancelled context", workers, ran.Load())
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(results) != 8 {
			t.Errorf("workers=%d: len(results) = %d, want 8", workers, len(results))
		}
	}
}

// TestMapContextCancelMidway: cancelling during the run stops dispatch;
// tasks already handed out complete, the rest fail with ctx.Err(), and
// the reported error is the lowest-index failure.
func TestMapContextCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var completed atomic.Int32
	results, err := MapContext(ctx, New(2), 16, func(i int) (int, error) {
		if i == 0 {
			cancel()       // stop dispatch as early as possible
			close(release) // and let any in-flight peers finish
		} else {
			<-release
		}
		completed.Add(1)
		return i * i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := completed.Load(); n < 1 || n > 15 {
		t.Fatalf("completed = %d, want at least task 0 and not all 16", n)
	}
	// every index either completed with its result or was never dispatched
	if results[0] != 0 {
		t.Errorf("results[0] = %d, want 0", results[0])
	}
}

// TestMapContextBackgroundMatchesMap: with an uncancelled context,
// MapContext and Map agree bit for bit.
func TestMapContextBackgroundMatchesMap(t *testing.T) {
	task := func(i int) (uint64, error) { return xrand.SeedAt(42, uint64(i)), nil }
	a, errA := Map(New(4), 32, task)
	b, errB := MapContext(context.Background(), New(4), 32, task)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: Map %d != MapContext %d", i, a[i], b[i])
		}
	}
}

// TestPoolDefaults: the zero worker count and the nil pool both fall back
// to one worker per CPU.
func TestPoolDefaults(t *testing.T) {
	if got := New(0).Workers(); got != runtime.NumCPU() {
		t.Fatalf("New(0).Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	var nilPool *Pool
	if got := nilPool.Workers(); got != runtime.NumCPU() {
		t.Fatalf("(nil).Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

// TestMapContextCancelWhileSendBlocked: cancellation must also reach a
// dispatcher that is parked handing out the next index because every
// worker is busy — the select's Done arm, not just the pre-dispatch poll.
func TestMapContextCancelWhileSendBlocked(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	done := make(chan struct{})
	var results []int
	var err error
	go func() {
		defer close(done)
		results, err = MapContext(ctx, New(2), 6, func(i int) (int, error) { //tsync:locked — written before close(done); the test reads them only after <-done
			started <- struct{}{}
			<-release
			return i + 1, nil
		})
	}()
	<-started
	<-started // both workers hold a task; the dispatcher is parked sending index 2
	cancel()
	// let the parked select observe Done before freeing the workers, so
	// the send arm cannot win the post-cancel race instead
	time.Sleep(50 * time.Millisecond) //tsync:wallclock — test-only scheduling delay; never enters a simulation result
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results[0] != 1 || results[1] != 2 {
		t.Fatalf("in-flight tasks 0,1 must complete: got %v", results[:2])
	}
	for i := 2; i < 6; i++ {
		if results[i] != 0 {
			t.Fatalf("results[%d] = %d, want zero (never dispatched)", i, results[i])
		}
	}
}
