// Popcorrection traces a POP-like ocean simulation with Scalasca-style
// methodology (Fig. 7 of the paper), shows the clock-condition violations
// that linear interpolation leaves behind, and compares every correction
// method in the repository on the same trace — ending with the controlled
// logical clock, which removes all of them.
//
// Run with: go run ./examples/popcorrection
// (takes ~10-20 s; pass a smaller scale via code if impatient)
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"tsync/internal/clock"
	"tsync/internal/experiments"
	"tsync/internal/render"
	"tsync/internal/topology"
)

func main() {
	cfg := experiments.AppViolationsConfig{
		App:     experiments.AppPOP,
		Machine: topology.Xeon(),
		Timer:   clock.TSC,
		Ranks:   32,
		Reps:    1,
		Seed:    11,
	}
	if err := run(os.Stdout, cfg); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, cfg experiments.AppViolationsConfig) error {
	fmt.Fprintln(w, "tracing a POP-like run: 32 ranks, 9000-iteration equivalent,")
	fmt.Fprintln(w, "iterations 3500-5500 traced, offsets measured at Init and Finalize...")
	res, err := experiments.AppViolations(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nafter linear interpolation (the Scalasca default):\n")
	fmt.Fprintf(w, "  %d messages, %.2f%% with reversed send/receive order\n",
		res.Census.Messages, res.PctReversed)
	fmt.Fprintf(w, "  %d messages violate the clock condition t_recv >= t_send + l_min\n",
		res.Census.ClockCondition)
	fmt.Fprintf(w, "  message transfer events are %.1f%% of the %d trace events\n\n",
		res.PctMessageEvents, res.Census.TotalEvents)

	fmt.Fprintln(w, "comparing all correction methods on the raw trace:")
	rows, err := experiments.CompareCorrections(res.RawTrace, res.InitOffsets, res.FinOffsets, 0)
	if err != nil {
		return err
	}
	var cells [][]string
	for _, r := range rows {
		if r.Err != nil {
			cells = append(cells, []string{r.Method, "error: " + r.Err.Error(), ""})
			continue
		}
		cells = append(cells, []string{
			r.Method,
			fmt.Sprintf("%d", r.Violations),
			render.Micro(r.Distortion.MeanAbs),
		})
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, render.Table([]string{"method", "violations left", "mean |Δinterval| µs"}, cells))
	fmt.Fprintln(w, "\nthe paper's conclusion in one table: alignment and interpolation help but")
	fmt.Fprintln(w, "cannot guarantee the clock condition; the CLC restores it completely while")
	fmt.Fprintln(w, "disturbing local intervals by only ~1 µs on average — unlike the pure")
	fmt.Fprintln(w, "Lamport schedule, which orders perfectly but destroys all timing.")
	return nil
}
