// Package apps provides the synthetic workloads standing in for the two
// MPI applications of the paper's Fig. 7 experiment:
//
//   - POP, the Parallel Ocean Program (SPEC MPI2007): a 2-D domain
//     decomposition performing halo exchanges with its four grid neighbours
//     every step and frequent small allreduce operations (POP's barotropic
//     solver is famous for them). The paper ran 9000 iterations (~25 min)
//     and traced iterations 3500-5500.
//
//   - SMG2000 (ASC): a semi-coarsening multigrid solver with a "complex
//     communication pattern and a large number of non-nearest-neighbour
//     point-to-point operations": V-cycles whose exchange distance doubles
//     with each coarsening level. The paper inserted sleeps before and
//     after the solve so that it ran ten minutes after initialization and
//     ten minutes before finalization.
//
// The bodies are plain rank programs composable with offset measurement
// (internal/measure) in an experiment harness. Workload sizes are scaled
// so a simulation finishes in seconds of host time while preserving the
// property that matters — the simulated wall-clock span between the offset
// measurements and the traced window, which determines interpolation error.
package apps

import (
	"fmt"

	"tsync/internal/mpi"
	"tsync/internal/xrand"
)

// POPConfig parameterizes the POP-like stencil.
type POPConfig struct {
	// Px, Py define the process grid; Px*Py must equal the job size.
	Px, Py int
	// Iterations is the total number of time steps.
	Iterations int
	// TraceStart and TraceEnd bound the traced iteration window
	// [TraceStart, TraceEnd).
	TraceStart, TraceEnd int
	// StepTime is the mean computation time per step (seconds).
	StepTime float64
	// Imbalance is the relative per-rank/per-step jitter of StepTime.
	Imbalance float64
	// HaloBytes is the per-neighbour halo message size.
	HaloBytes int
	// AllreduceEvery inserts a small allreduce every k-th iteration
	// (1 = every iteration, 0 = never).
	AllreduceEvery int
	// Seed drives the workload's private randomness.
	Seed uint64
}

// DefaultPOP returns a scaled configuration mirroring the paper's setup
// (mref: 9000 iterations over ~25 min, iterations 3500-5500 traced) at
// one-tenth the iteration count with the same total simulated duration.
func DefaultPOP(px, py int) POPConfig {
	return POPConfig{
		Px: px, Py: py,
		Iterations:     900,
		TraceStart:     350,
		TraceEnd:       550,
		StepTime:       1.67,
		Imbalance:      0.05,
		HaloBytes:      8192,
		AllreduceEvery: 1,
		Seed:           1,
	}
}

// Validate checks the configuration against a job size.
func (c POPConfig) Validate(size int) error {
	if c.Px*c.Py != size {
		return fmt.Errorf("apps: POP grid %dx%d does not match %d ranks", c.Px, c.Py, size)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("apps: POP needs positive iterations")
	}
	if c.TraceStart < 0 || c.TraceEnd > c.Iterations || c.TraceStart > c.TraceEnd {
		return fmt.Errorf("apps: POP trace window [%d,%d) invalid for %d iterations", c.TraceStart, c.TraceEnd, c.Iterations)
	}
	return nil
}

// POP returns the rank program. The body toggles tracing around the
// configured iteration window (partial tracing, as recommended practice
// for long codes).
func POP(cfg POPConfig) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		if err := cfg.Validate(r.Size()); err != nil {
			panic(err)
		}
		rng := xrand.NewSource(cfg.Seed).Sub(fmt.Sprintf("pop/%d", r.Rank()))
		x := r.Rank() % cfg.Px
		y := r.Rank() / cfg.Px
		// torus neighbours: west, east, north, south
		nb := [4]int{
			((x-1+cfg.Px)%cfg.Px + y*cfg.Px),
			((x+1)%cfg.Px + y*cfg.Px),
			(x + ((y-1+cfg.Py)%cfg.Py)*cfg.Px),
			(x + ((y+1)%cfg.Py)*cfg.Px),
		}
		wasTracing := r.Tracing()
		r.SetTracing(false)
		for iter := 0; iter < cfg.Iterations; iter++ {
			if iter == cfg.TraceStart {
				r.Barrier() // quiesce in-flight messages, then enable
				r.SetTracing(true)
			}
			if iter == cfg.TraceEnd {
				r.Barrier()
				r.SetTracing(false)
			}
			r.EnterRegion("step")
			r.Compute(cfg.StepTime * (1 + cfg.Imbalance*(2*rng.Float64()-1)))
			r.ExitRegion("step")
			// halo exchange with all four neighbours
			for d, peer := range nb {
				if peer != r.Rank() {
					r.Send(peer, iter*8+d, cfg.HaloBytes, nil)
				}
			}
			// receive from the opposite directions
			for d, peer := range nb {
				if peer != r.Rank() {
					r.Recv(peer, iter*8+(d^1))
				}
			}
			if cfg.AllreduceEvery > 0 && iter%cfg.AllreduceEvery == 0 {
				r.Allreduce(8, nil, nil)
			}
		}
		r.SetTracing(wasTracing)
	}
}

// SMGConfig parameterizes the SMG2000-like multigrid solver.
type SMGConfig struct {
	// Cycles is the number of V-cycles (the paper configured 5 solver
	// iterations).
	Cycles int
	// Levels is the multigrid depth; the exchange distance doubles per
	// level, producing the non-nearest-neighbour traffic.
	Levels int
	// LevelTime is the computation per level at the finest grid; coarser
	// levels cost half the previous one.
	LevelTime float64
	// Imbalance is the relative per-rank jitter of computation times.
	Imbalance float64
	// CellBytes scales message sizes (finest level sends 4*CellBytes,
	// halving per level).
	CellBytes int
	// IdleBefore and IdleAfter are untraced quiet phases around the
	// solve, emulating the paper's inserted sleeps (10 min each) that
	// widen the interpolation interval.
	IdleBefore, IdleAfter float64
	// Seed drives the workload's private randomness.
	Seed uint64
}

// DefaultSMG mirrors the paper's setup: a short solve embedded in ~10
// minutes of idle time on each side.
func DefaultSMG() SMGConfig {
	return SMGConfig{
		Cycles:     5,
		Levels:     6,
		LevelTime:  0.02,
		Imbalance:  0.10,
		CellBytes:  4096,
		IdleBefore: 600,
		IdleAfter:  600,
		Seed:       1,
	}
}

// Validate checks the configuration.
func (c SMGConfig) Validate() error {
	if c.Cycles <= 0 || c.Levels <= 0 {
		return fmt.Errorf("apps: SMG needs positive cycles and levels")
	}
	if c.IdleBefore < 0 || c.IdleAfter < 0 {
		return fmt.Errorf("apps: SMG idle phases must be non-negative")
	}
	return nil
}

// SMG returns the rank program: idle, traced V-cycles, idle. Exchange
// partners at level l sit 2^l ranks away (modulo the job size), so most
// traffic is non-nearest-neighbour.
func SMG(cfg SMGConfig) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		if err := cfg.Validate(); err != nil {
			panic(err)
		}
		rng := xrand.NewSource(cfg.Seed).Sub(fmt.Sprintf("smg/%d", r.Rank()))
		n := r.Size()
		wasTracing := r.Tracing()
		r.SetTracing(false)
		r.Compute(cfg.IdleBefore)
		r.Barrier()
		r.SetTracing(true)
		tag := 0
		level := func(l, cycle int) {
			work := cfg.LevelTime / float64(int(1)<<l)
			bytes := 4 * cfg.CellBytes / (1 << l)
			if bytes < 16 {
				bytes = 16
			}
			r.EnterRegion(fmt.Sprintf("level%d", l))
			r.Compute(work * (1 + cfg.Imbalance*(2*rng.Float64()-1)))
			r.ExitRegion(fmt.Sprintf("level%d", l))
			dist := 1 << l % n
			if dist == 0 || n == 1 {
				return
			}
			dst := (r.Rank() + dist) % n
			src := (r.Rank() - dist + n) % n
			r.Send(dst, tag, bytes, nil)
			r.Recv(src, tag)
			tag++
		}
		for cycle := 0; cycle < cfg.Cycles; cycle++ {
			// down sweep: fine to coarse
			for l := 0; l < cfg.Levels; l++ {
				level(l, cycle)
			}
			// coarse solve synchronization
			r.Allreduce(8, nil, nil)
			// up sweep: coarse to fine
			for l := cfg.Levels - 1; l >= 0; l-- {
				level(l, cycle)
			}
			// residual norm
			r.Allreduce(8, nil, nil)
		}
		r.Barrier()
		r.SetTracing(false)
		r.Compute(cfg.IdleAfter)
		r.SetTracing(wasTracing)
	}
}

// TransposeConfig parameterizes a 2-D FFT-style workload built on split
// communicators: ranks form a Px×Py grid, and every step performs a row
// transpose (alltoall within the row communicator) followed by a column
// reduction — the communicator idiom that spectral codes use. It is not
// one of the paper's two applications; it exists to exercise
// sub-communicator tracing in the violation studies.
type TransposeConfig struct {
	Px, Py    int
	Steps     int
	StepTime  float64
	Imbalance float64
	CellBytes int
	Seed      uint64
}

// DefaultTranspose returns a moderate configuration for the given grid.
func DefaultTranspose(px, py int) TransposeConfig {
	return TransposeConfig{
		Px: px, Py: py,
		Steps:     200,
		StepTime:  0.5,
		Imbalance: 0.05,
		CellBytes: 2048,
		Seed:      1,
	}
}

// Validate checks the configuration against a job size.
func (c TransposeConfig) Validate(size int) error {
	if c.Px*c.Py != size {
		return fmt.Errorf("apps: transpose grid %dx%d does not match %d ranks", c.Px, c.Py, size)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("apps: transpose needs positive steps")
	}
	return nil
}

// Transpose returns the rank program.
func Transpose(cfg TransposeConfig) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		if err := cfg.Validate(r.Size()); err != nil {
			panic(err)
		}
		rng := xrand.NewSource(cfg.Seed).Sub(fmt.Sprintf("transpose/%d", r.Rank()))
		world := r.CommWorld()
		row := world.Split(r.Rank()/cfg.Px, r.Rank()%cfg.Px)
		col := world.Split(r.Rank()%cfg.Px, r.Rank()/cfg.Px)
		for step := 0; step < cfg.Steps; step++ {
			r.EnterRegion("fft-compute")
			r.Compute(cfg.StepTime * (1 + cfg.Imbalance*(2*rng.Float64()-1)))
			r.ExitRegion("fft-compute")
			row.Alltoall(cfg.CellBytes)
			col.Reduce(0, 8, nil, nil)
			if step%20 == 0 {
				world.Allreduce(8, nil, nil)
			}
		}
	}
}
