package stream

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"

	"tsync/internal/analysis"
	"tsync/internal/clc"
	"tsync/internal/core"
	"tsync/internal/fingerprint"
	"tsync/internal/interp"
	"tsync/internal/measure"
	"tsync/internal/runner"
	"tsync/internal/trace"
)

// Pipeline is the streaming counterpart of core.Pipeline: the same base
// correction and CLC stages, run over an indexed trace file in bounded
// memory. Its censuses, CLC report, distortion figures, and output trace
// bytes are bit-identical to the in-memory path; the differential tests
// in this package enforce that.
type Pipeline struct {
	// Base selects the base correction. The error-estimation bases need
	// the full trace in memory and return ErrUnsupported.
	Base core.Base
	// Correction, when non-nil, overrides Base with a prebuilt
	// piecewise correction — cmd/tracesync -autoknots builds one from a
	// fingerprint report so the interpolation knots land on detected
	// clock breaks.
	Correction *interp.Correction
	// CLC enables the controlled logical clock stage.
	CLC bool
	// CLCOptions tunes the CLC stage; zero value selects defaults.
	// SharedMemory and Domains need the in-memory path.
	CLCOptions clc.Options
	// Fingerprint, when non-nil, tees the first walk into a per-rank
	// drift fingerprint tracker (internal/fingerprint) and fills
	// Result.Fingerprint. The stage observes raw timestamps only: every
	// other output stays bit-identical to a run without it.
	Fingerprint *fingerprint.Options
	// Options tune the streaming engine itself.
	Options Options
}

// Result mirrors core.Result without the materialized trace.
type Result struct {
	Before, After analysis.Census
	CLCReport     clc.Report
	Distortion    analysis.Distortion
	// Fingerprint holds the per-rank drift report when the fingerprint
	// stage was enabled (nil otherwise).
	Fingerprint *fingerprint.Report
	Stats       Stats
}

// baseMapper builds the base-correction time mapper, or ErrUnsupported
// for bases that need the full trace. A prebuilt Correction takes
// precedence over Base.
func (p Pipeline) baseMapper(init, fin []measure.Offset) (timeMapper, error) {
	if p.Correction != nil {
		return newCorrMapper(p.Correction), nil
	}
	switch p.Base {
	case core.BaseNone, "":
		return identityMapper{}, nil
	case core.BaseAlign:
		corr, err := interp.AlignOnly(init)
		if err != nil {
			return nil, err
		}
		return newCorrMapper(corr), nil
	case core.BaseInterp:
		corr, err := interp.Linear(init, fin)
		if err != nil {
			return nil, err
		}
		return newCorrMapper(corr), nil
	case core.BaseRegression, core.BaseConvexHull, core.BaseMinMax:
		return nil, fmt.Errorf("%w: base %q fits pairwise maps over the full trace", ErrUnsupported, p.Base)
	}
	return nil, fmt.Errorf("stream: unknown base correction %q", p.Base)
}

// Run executes the pipeline over src, writing the corrected trace to out
// unless out is nil (analysis only). The offset tables serve BaseAlign
// (init) and BaseInterp (both), exactly as in core.Pipeline.Run.
func (p Pipeline) Run(src *Source, out io.Writer, init, fin []measure.Offset) (*Result, error) {
	return p.RunContext(context.Background(), src, out, init, fin)
}

// RunContext is Run under a context: cancellation surfaces (as
// ctx.Err()) within about one slab's worth of work, the decode
// goroutines are released before it returns, and the deferred spill
// teardown closes and removes every temp file even on that path. It is
// sugar for running a one-shot Session; long-lived callers that need to
// observe or abort the run from outside construct the Session directly.
func (p Pipeline) RunContext(ctx context.Context, src *Source, out io.Writer, init, fin []measure.Offset) (*Result, error) {
	return NewSession(p, src).Run(ctx, out, init, fin)
}

// runContext is the pipeline body shared by every entry path; Session
// owns the lifecycle around it.
func (p Pipeline) runContext(ctx context.Context, src *Source, out io.Writer, init, fin []measure.Offset) (*Result, error) {
	opt := p.Options.Normalize()
	mapper, err := p.baseMapper(init, fin)
	if err != nil {
		return nil, err
	}
	opts := p.CLCOptions
	if opts.Gamma == 0 {
		opts = clc.DefaultOptions()
	}
	if p.CLC {
		if opts.SharedMemory {
			return nil, fmt.Errorf("%w: shared-memory CLC", ErrUnsupported)
		}
		if len(opts.Domains) > 0 {
			return nil, fmt.Errorf("%w: clock domains", ErrUnsupported)
		}
		if err := opts.Validate(); err != nil {
			return nil, err
		}
	}

	res := &Result{}
	res.Stats.Events = src.Events()
	if opt.Salvage || src.Salvaged() {
		// start from the decode-side losses; the first walk adds the
		// engine-side counters in place
		res.Stats.Loss = src.Losses()
	}
	first := &censusSink{gamma: opts.Gamma}
	// The fingerprint stage tees into the first walk as a pure
	// observer; its EdgeData is discarded (the tee keeps the b side's).
	var fpTracker *fingerprint.Tracker
	firstSink := sink(first)
	if p.Fingerprint != nil {
		fpTracker = fingerprint.NewTracker(src.Ranks(), *p.Fingerprint)
		firstSink = teeSink{a: &fingerprintSink{tr: fpTracker}, b: first}
	}
	var spills *spillSet

	if p.CLC {
		spills, err = newSpillSet(src.Ranks(), opt.SpillFS)
		if err != nil {
			return nil, err
		}
		defer spills.Close()
		acct := newAccounting(src.Ranks(), opt, &res.Stats)
		clcS, err := newCLCSink(src.Ranks(), opts, acct, &res.CLCReport, spills)
		if err != nil {
			return nil, err
		}
		if err := walk(ctx, src, mapper, teeSink{a: firstSink, b: clcS}, opt, acct, res.Stats.Loss); err != nil {
			return nil, err
		}
		res.CLCReport.ViolationsBefore = first.violations

		second := &censusSink{gamma: opts.Gamma}
		sm := spills.mapper()
		err = walk(ctx, src, sm, second, opt, newAccounting(src.Ranks(), opt, &res.Stats), nil)
		if cerr := sm.close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		res.CLCReport.ViolationsAfter = second.violations
		res.Before = first.raw
		res.After = second.mapped
	} else {
		if err := walk(ctx, src, mapper, firstSink, opt, newAccounting(src.Ranks(), opt, &res.Stats), res.Stats.Loss); err != nil {
			return nil, err
		}
		res.Before = first.raw
		res.After = first.mapped
	}
	if fpTracker != nil {
		res.Fingerprint = fpTracker.Report()
	}

	finalMapper := func() (timeMapper, func() error) {
		if spills != nil {
			m := spills.mapper()
			return m, m.close
		}
		return mapper, func() error { return nil }
	}

	if out != nil && (opt.Workers <= 1 || src.Ranks() <= 1) {
		// Serial output: fuse the distortion and assembly sweeps into one
		// pass — both walk the trace rank-major calling the final mapper
		// once per event, so a single traversal feeds the distortion
		// accumulators and the encode stage while saving a full decode of
		// the trace. The accumulation order, mapper call sequence, and
		// output bytes are exactly those of the separate passes.
		dm, closeDM := finalMapper()
		res.Distortion, err = assembleMeasure(ctx, src, dm, out, opt)
		if cerr := closeDM(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		return res, nil
	}

	dm, closeDM := finalMapper()
	res.Distortion, err = distortion(ctx, src, dm)
	if cerr := closeDM(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}

	if out != nil {
		am, closeAM := finalMapper()
		err = assemble(ctx, src, am, out, opt)
		if cerr := closeAM(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Census scans src's raw timestamps in one streaming pass, matching
// analysis.CensusOf on the materialized trace bit for bit.
func Census(src *Source, opt Options) (analysis.Census, Stats, error) {
	return CensusContext(context.Background(), src, opt)
}

// CensusContext is Census under a context.
func CensusContext(ctx context.Context, src *Source, opt Options) (analysis.Census, Stats, error) {
	opt = opt.Normalize()
	var stats Stats
	stats.Events = src.Events()
	if opt.Salvage || src.Salvaged() {
		stats.Loss = src.Losses()
	}
	s := &censusSink{gamma: clc.DefaultOptions().Gamma}
	if err := walk(ctx, src, identityMapper{}, s, opt, newAccounting(src.Ranks(), opt, &stats), stats.Loss); err != nil {
		return analysis.Census{}, stats, err
	}
	return s.raw, stats, nil
}

// distortion replicates analysis.DistortionBetween over (raw, mapped)
// timestamp pairs: one sequential rank-major sweep, so the float
// accumulation order — and therefore every bit of MeanAbs — matches the
// in-memory comparison.
func distortion(ctx context.Context, src *Source, final timeMapper) (analysis.Distortion, error) {
	var d analysis.Distortion
	var sum float64
	var ev trace.Event
	ticks := 0
	for rank := 0; rank < src.Ranks(); rank++ {
		cur := src.Cursor(rank)
		var prevRaw, prevFin float64
		for idx := 0; idx < src.Procs()[rank].EventCount; idx++ {
			if ticks&(ctxCheckEvery-1) == 0 {
				if err := ctx.Err(); err != nil {
					return d, err
				}
			}
			ticks++
			if err := cur.Next(&ev); err != nil {
				return d, err
			}
			ft, err := final.mapTime(rank, idx, &ev)
			if err != nil {
				return d, err
			}
			if idx > 0 {
				origIv := ev.Time - prevRaw
				corrIv := ft - prevFin
				delta := corrIv - origIv
				if math.Abs(delta) > d.MaxAbs {
					d.MaxAbs = math.Abs(delta)
				}
				if corrIv < origIv {
					d.Shrunk++
				}
				sum += math.Abs(delta)
				d.N++
			}
			prevRaw, prevFin = ev.Time, ft
		}
	}
	if d.N > 0 {
		d.MeanAbs = sum / float64(d.N)
	}
	return d, nil
}

// encMsg is one unit of the encode stage's input: a process header
// opening a rank's block, or a slab of already-mapped events to append
// to it.
type encMsg struct {
	ph *trace.ProcHeader
	s  *slab
}

// encodeStage is the pipeline's encode stage: it owns the EventWriter,
// consuming headers and slabs in arrival order (one bounded channel, so
// rank order is preserved) while the producer decodes and maps the next
// slab. After a failure it keeps draining — recycling slabs — so the
// producer never blocks, and reports the first error on res.
func encodeStage(ew *trace.EventWriter, pool *slabPool, in <-chan encMsg, res chan<- error) {
	var err error
	for msg := range in {
		if msg.s == nil {
			if err == nil {
				err = ew.BeginProc(*msg.ph)
			}
			continue
		}
		if err == nil {
			for i := range msg.s.evs {
				if werr := ew.Write(&msg.s.evs[i]); werr != nil {
					err = werr
					break
				}
			}
		}
		pool.put(msg.s)
	}
	if err == nil {
		err = ew.Close()
	}
	res <- err
}

// assembleMeasure runs the fused final pass: one rank-major decode whose
// slabs are timestamp-mapped in place, measured for distortion, and
// handed to the concurrent encode stage. Bit-equality with the separate
// distortion + assemble passes holds because the traversal order, the
// mapper call per event, the float accumulation order of the distortion
// sums, and the encoder are all identical — only the number of decode
// passes changes.
func assembleMeasure(ctx context.Context, src *Source, m timeMapper, out io.Writer, opt Options) (analysis.Distortion, error) {
	var d analysis.Distortion
	ew, err := trace.NewEventWriter(out, src.Header())
	if err != nil {
		return d, err
	}
	pool := newSlabPool(opt.Batch)
	in := make(chan encMsg, 1)
	res := make(chan error, 1)
	go encodeStage(ew, pool, in, res)
	finish := func(err error) (analysis.Distortion, error) {
		close(in)
		if werr := <-res; err == nil {
			err = werr
		}
		return d, err
	}
	var sum float64
	for rank := 0; rank < src.Ranks(); rank++ {
		ph := src.Procs()[rank]
		in <- encMsg{ph: &ph}
		cur := src.Cursor(rank)
		var prevRaw, prevFin float64
		for idx := 0; idx < ph.EventCount; {
			if cerr := ctx.Err(); cerr != nil {
				return finish(cerr)
			}
			s := pool.get()
			if ferr := cur.fill(s); ferr != nil {
				pool.put(s)
				if ferr == io.EOF {
					ferr = io.ErrUnexpectedEOF
				}
				return finish(ferr)
			}
			for i := range s.evs {
				ev := &s.evs[i]
				ft, merr := m.mapTime(rank, idx, ev)
				if merr != nil {
					pool.put(s)
					return finish(merr)
				}
				if idx > 0 {
					origIv := ev.Time - prevRaw
					corrIv := ft - prevFin
					delta := corrIv - origIv
					if math.Abs(delta) > d.MaxAbs {
						d.MaxAbs = math.Abs(delta)
					}
					if corrIv < origIv {
						d.Shrunk++
					}
					sum += math.Abs(delta)
					d.N++
				}
				prevRaw, prevFin = ev.Time, ft
				ev.SetTime(ft)
				idx++
			}
			in <- encMsg{s: s}
		}
	}
	d2, err := finish(nil)
	if err != nil {
		return d2, err
	}
	if d2.N > 0 {
		d2.MeanAbs = sum / float64(d2.N)
	}
	return d2, nil
}

// assemble writes the output trace: src's events with their mapped
// timestamps, through the same encoder the in-memory trace.Write uses,
// so the bytes are identical. With workers > 1 the per-rank event blocks
// are encoded concurrently into temp files and spliced in rank order —
// the bytes cannot differ, only the wall time.
func assemble(ctx context.Context, src *Source, m timeMapper, out io.Writer, opt Options) error {
	ew, err := trace.NewEventWriter(out, src.Header())
	if err != nil {
		return err
	}
	if opt.Workers > 1 && src.Ranks() > 1 {
		return assembleParallel(ctx, src, m, ew, opt)
	}
	var ev trace.Event
	ticks := 0
	for rank := 0; rank < src.Ranks(); rank++ {
		ph := src.Procs()[rank]
		if err := ew.BeginProc(ph); err != nil {
			return err
		}
		cur := src.Cursor(rank)
		for idx := 0; idx < ph.EventCount; idx++ {
			if ticks&(ctxCheckEvery-1) == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			ticks++
			if err := cur.Next(&ev); err != nil {
				return err
			}
			ft, err := m.mapTime(rank, idx, &ev)
			if err != nil {
				return err
			}
			ev.SetTime(ft)
			if err := ew.Write(&ev); err != nil {
				return err
			}
		}
	}
	return ew.Close()
}

// asmFS returns the temp store for parallel assembly blocks: the
// injected SpillFS when one is set (with a cleanup that closes nothing —
// the FS owner removes its files), or a dedicated OS temp directory.
func asmFS(opt Options) (SpillFS, func(), error) {
	if opt.SpillFS != nil {
		return opt.SpillFS, func() {}, nil
	}
	fs, err := newOSFS()
	if err != nil {
		return nil, nil, err
	}
	return fs, func() { os.RemoveAll(fs.dir) }, nil
}

func assembleParallel(ctx context.Context, src *Source, m timeMapper, ew *trace.EventWriter, opt Options) error {
	fs, cleanup, err := asmFS(opt)
	if err != nil {
		return err
	}
	defer cleanup()
	names, err := runner.Map(runner.New(opt.Workers), src.Ranks(), func(rank int) (string, error) {
		name := fmt.Sprintf("asm%06d.e", rank)
		f, err := fs.Create(name)
		if err != nil {
			return "", err
		}
		defer f.Close()
		enc := trace.NewEventEncoder(f)
		cur := src.Cursor(rank)
		var ev trace.Event
		for idx := 0; idx < src.Procs()[rank].EventCount; idx++ {
			if idx&(ctxCheckEvery-1) == 0 {
				if err := ctx.Err(); err != nil {
					return "", err
				}
			}
			if err := cur.Next(&ev); err != nil {
				return "", err
			}
			ft, err := m.mapTime(rank, idx, &ev)
			if err != nil {
				return "", err
			}
			ev.SetTime(ft)
			if err := enc.Encode(&ev); err != nil {
				return "", err
			}
		}
		if err := enc.Flush(); err != nil {
			return "", err
		}
		return name, f.Close()
	})
	if err != nil {
		return err
	}
	for rank, name := range names {
		if err := ew.BeginProc(src.Procs()[rank]); err != nil {
			return err
		}
		f, err := fs.Open(name)
		if err != nil {
			return err
		}
		err = ew.CopyEvents(f, src.Procs()[rank].EventCount)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return ew.Close()
}
