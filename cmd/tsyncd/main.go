// Command tsyncd serves streaming trace-sync sessions over TCP: each
// connection uploads a trace, runs the same correction pipeline as
// cmd/tracesync (bit-identical results, enforced by the differential
// tests in internal/tsyncd), and streams the corrected trace and its
// analysis back. The server admits a bounded number of concurrent
// sessions, queues a bounded overflow, enforces per-tenant byte/event/
// spill quotas, reaps stalled clients, and drains gracefully on
// SIGINT/SIGTERM: it stops admitting, gives in-flight sessions the
// drain grace period, then aborts whatever remains — leaving no
// goroutines and no spill files.
//
// Exit status: 0 after a clean drain, 1 on a server error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tsync/internal/tsyncd"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7474", "TCP listen address")
		maxSessions  = flag.Int("max-sessions", 4, "max concurrent correction sessions")
		maxQueue     = flag.Int("max-queue", 16, "max admissions waiting for a session slot (negative: reject immediately when full)")
		queueTimeout = flag.Duration("queue-timeout", 5*time.Second, "max wait for a session slot before a queue-timeout reject")
		idleTimeout  = flag.Duration("idle-timeout", 30*time.Second, "reap clients that stall this long between frames")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace for in-flight sessions after SIGTERM before they are aborted")
		maxBytes     = flag.Int64("max-bytes", 0, "per-tenant cap on buffered trace bytes across active sessions (0 = unlimited)")
		maxEvents    = flag.Int64("max-events", 0, "per-tenant cap on events in a single trace (0 = unlimited)")
		maxSpill     = flag.Int64("max-spill", 0, "per-tenant cap on spill bytes across active sessions (0 = unlimited)")
		quiet        = flag.Bool("quiet", false, "suppress per-session log lines")
	)
	flag.Parse()

	cfg := tsyncd.Config{
		MaxSessions:  *maxSessions,
		MaxQueue:     *maxQueue,
		QueueTimeout: *queueTimeout,
		IdleTimeout:  *idleTimeout,
		DrainTimeout: *drainTimeout,
		DefaultQuota: tsyncd.Quota{MaxBytes: *maxBytes, MaxEvents: *maxEvents, MaxSpillBytes: *maxSpill},
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "tsyncd: "+format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsyncd:", err)
		os.Exit(1)
	}
	// The resolved address goes to stderr unconditionally so scripts can
	// bind ":0" and discover the port.
	fmt.Fprintf(os.Stderr, "tsyncd: listening on %s\n", ln.Addr())

	if err := tsyncd.New(cfg).Serve(ctx, ln); err != nil {
		fmt.Fprintln(os.Stderr, "tsyncd:", err)
		os.Exit(1)
	}
}
