// Package noisy triggers a diagnostic that no want expectation covers.
package noisy

func boom() {}

func use() {
	boom()
}
