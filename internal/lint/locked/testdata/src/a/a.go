// Package a is the fixture for the locked analyzer: goroutine-captured
// loop variables, unsynchronized writes through captured variables, and
// WaitGroup.Add inside the spawned goroutine.
package a

import "sync"

// FanOutBad spawns one goroutine per rank with every racy pattern.
func FanOutBad(ranks []int) error {
	var wg sync.WaitGroup
	var err error
	total := 0
	out := make([]int, len(ranks))
	for i, r := range ranks {
		go func() {
			wg.Add(1) // want `sync.WaitGroup.Add inside the goroutine it accounts for`
			defer wg.Done()
			out[i] = r // want `goroutine captures loop variable "i"` `goroutine captures loop variable "r"` `write to captured "out" inside goroutine`
			total += r // want `write to captured "total" inside goroutine`
			err = nil  // want `write to captured "err" inside goroutine`
		}()
	}
	wg.Wait()
	return err
}

// Counter is shared state written through a captured pointer receiver.
type Counter struct{ n int }

// SpawnBad writes a captured struct's field from the goroutine.
func SpawnBad(c *Counter) {
	go func() {
		c.n++ // want `write to captured "c" inside goroutine`
	}()
}

// FanOutGood is the same fan-out written the sanctioned way: Add before
// the go statement, the iteration state passed as arguments, results
// joined through goroutine-private state or justified writes.
func FanOutGood(ranks []int) []int {
	var wg sync.WaitGroup
	out := make([]int, len(ranks))
	for i, r := range ranks {
		wg.Add(1)
		go func(i, r int) {
			defer wg.Done()
			out[i] = r //tsync:locked — disjoint index per goroutine, joined by wg.Wait
		}(i, r)
	}
	wg.Wait()
	return out
}

// ChannelGood communicates instead of sharing: sends and goroutine-local
// state are not writes through captured variables.
func ChannelGood(ranks []int) int {
	ch := make(chan int, len(ranks))
	for _, r := range ranks {
		go func(r int) {
			local := r * 2
			local++
			ch <- local
		}(r)
	}
	sum := 0
	for range ranks {
		sum += <-ch
	}
	return sum
}
