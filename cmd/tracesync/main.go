// Command tracesync applies postmortem timestamp synchronization to a
// trace file produced by tracegen: a base correction (offset alignment,
// linear interpolation, or an error-estimation method) optionally followed
// by the controlled logical clock, reporting clock-condition violations
// before and after. With -all it compares every method side by side.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tsync/internal/analysis"
	"tsync/internal/core"
	"tsync/internal/experiments"
	"tsync/internal/measure"
	"tsync/internal/render"
	"tsync/internal/trace"
)

type sidecar struct {
	Init []measure.Offset `json:"init"`
	Fin  []measure.Offset `json:"fin"`
}

func main() {
	var (
		in      = flag.String("i", "trace.etr", "input trace file")
		out     = flag.String("o", "", "write the corrected trace here (optional)")
		base    = flag.String("base", "interp", "base correction: none, align, interp, duda-regression, duda-convex-hull, hofmann-minmax")
		withCLC = flag.Bool("clc", true, "apply the controlled logical clock after the base correction")
		all     = flag.Bool("all", false, "compare all correction methods instead")
		workers = flag.Int("workers", 0, "parallel worker bound for the -all method sweep (0 = all CPUs); results are identical for any value")
	)
	flag.Parse()

	if err := run(*in, *out, *base, *withCLC, *all, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "tracesync:", err)
		os.Exit(1)
	}
}

func run(in, out, base string, withCLC, all bool, workers int) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	var tr *trace.Trace
	if strings.HasSuffix(in, ".json") {
		tr, err = trace.ReadJSON(f)
	} else {
		tr, err = trace.Read(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	var side sidecar
	haveOffsets := false
	if blob, err := os.ReadFile(in + ".offsets.json"); err == nil {
		if err := json.Unmarshal(blob, &side); err != nil {
			return fmt.Errorf("offset sidecar: %w", err)
		}
		haveOffsets = true
	}
	needsOffsets := all || base == "align" || base == "interp"
	if needsOffsets && !haveOffsets {
		return fmt.Errorf("no %s.offsets.json sidecar: alignment/interpolation need the offset tables (generate traces with tracegen, or use -base none/duda-*/hofmann-minmax)", in)
	}

	if all {
		rows, err := experiments.CompareCorrections(tr, side.Init, side.Fin, workers)
		if err != nil {
			return err
		}
		var cells [][]string
		for _, r := range rows {
			if r.Err != nil {
				cells = append(cells, []string{r.Method, "error: " + r.Err.Error(), "", ""})
				continue
			}
			cells = append(cells, []string{
				r.Method,
				fmt.Sprintf("%d", r.Violations),
				render.Micro(r.Distortion.MaxAbs),
				render.Micro(r.Distortion.MeanAbs),
			})
		}
		fmt.Print(render.Table(
			[]string{"method", "violations left", "max |Δinterval| µs", "mean |Δinterval| µs"},
			cells))
		return nil
	}

	b, err := core.ParseBase(base)
	if err != nil {
		return err
	}
	res, err := (core.Pipeline{Base: b, CLC: withCLC, Parallel: true}).Run(tr, side.Init, side.Fin)
	if err != nil {
		return err
	}
	printCensus := func(label string, c analysis.Census) {
		fmt.Printf("%-8s %6d messages, %5d reversed (%.2f%%), %5d clock-condition violations (incl. %d logical reversed)\n",
			label, c.Messages, c.Reversed, c.PctReversed(), c.ClockCondition, c.ReversedLogical)
	}
	fmt.Printf("trace: %s on %s with %s timer, %d events\n\n", in, tr.Machine, tr.Timer, tr.EventCount())
	printCensus("before:", res.Before)
	printCensus("after:", res.After)
	if withCLC {
		fmt.Printf("\nCLC: %d -> %d violations (γ-scaled), %d events moved, max advance %s µs\n",
			res.CLCReport.ViolationsBefore, res.CLCReport.ViolationsAfter,
			res.CLCReport.EventsMoved, render.Micro(res.CLCReport.MaxAdvance))
	}
	fmt.Printf("interval distortion: max %s µs, mean %s µs, %d of %d intervals shrunk\n",
		render.Micro(res.Distortion.MaxAbs), render.Micro(res.Distortion.MeanAbs),
		res.Distortion.Shrunk, res.Distortion.N)

	if out != "" {
		g, err := os.Create(out)
		if err != nil {
			return err
		}
		_, err = trace.Write(g, res.Trace)
		if cerr := g.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("corrected trace written to %s\n", out)
	}
	return nil
}
