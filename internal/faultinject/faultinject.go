// Package faultinject provides deterministic fault models for testing
// the trace codec, the streaming engine, and the CLIs against damaged
// inputs and failing infrastructure. Every fault is derived from an
// explicit xrand seed, so a failing run reproduces byte-for-byte: the
// same seed produces the same flipped bits, the same short reads, and
// the same write failures, independent of scheduling or worker count.
//
// The package deliberately has no notion of wall-clock time. "Latency
// stall" faults are modeled by HookReaderAt with a blocking callback:
// the test decides when the stall ends by releasing a channel, which
// keeps the fault schedule deterministic under -race and on loaded CI
// machines.
package faultinject

import (
	"errors"
	"io"
	"sort"
	"sync"

	"tsync/internal/xrand"
)

// Flips is a precomputed set of single-byte corruptions: at each offset
// the stored mask is XORed into the byte read. The set is immutable
// after construction and safe for concurrent use, so one Flips can back
// an io.ReaderAt shared by parallel pipeline workers.
type Flips struct {
	offs  []int64
	masks []byte
}

// NewFlips corrupts each byte of a size-byte stream independently with
// probability rate. Masks are never zero, so every listed offset is a
// real corruption.
func NewFlips(seed uint64, size int64, rate float64) *Flips {
	rng := xrand.NewSource(seed)
	f := &Flips{}
	for off := int64(0); off < size; off++ {
		if rng.Bool(rate) {
			f.offs = append(f.offs, off)
			f.masks = append(f.masks, byte(1+rng.Intn(255)))
		}
	}
	return f
}

// NewBurstFlips corrupts `bursts` contiguous runs of burstLen bytes at
// uniformly chosen start offsets: the model for a lost disk sector or a
// mangled network packet, where damage clusters instead of scattering.
func NewBurstFlips(seed uint64, size int64, bursts, burstLen int) *Flips {
	rng := xrand.NewSource(seed)
	hit := make(map[int64]byte)
	for b := 0; b < bursts; b++ {
		start := int64(rng.Intn(int(size)))
		for i := 0; i < burstLen; i++ {
			off := start + int64(i)
			if off >= size {
				break
			}
			hit[off] = byte(1 + rng.Intn(255))
		}
	}
	f := &Flips{offs: make([]int64, 0, len(hit)), masks: make([]byte, 0, len(hit))}
	for off := range hit {
		f.offs = append(f.offs, off)
	}
	sort.Slice(f.offs, func(i, j int) bool { return f.offs[i] < f.offs[j] })
	for _, off := range f.offs {
		f.masks = append(f.masks, hit[off])
	}
	return f
}

// Count reports how many bytes the set corrupts.
func (f *Flips) Count() int { return len(f.offs) }

// Apply XORs the masks of all flips that land inside [off, off+len(p))
// into p.
func (f *Flips) Apply(p []byte, off int64) {
	end := off + int64(len(p))
	i := sort.Search(len(f.offs), func(i int) bool { return f.offs[i] >= off })
	for ; i < len(f.offs) && f.offs[i] < end; i++ {
		p[f.offs[i]-off] ^= f.masks[i]
	}
}

// ReaderAt serves R's bytes with F's corruptions applied. Reads at
// different offsets see a consistent corrupted image, as a damaged file
// on disk would present.
type ReaderAt struct {
	R io.ReaderAt
	F *Flips
}

func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := r.R.ReadAt(p, off)
	r.F.Apply(p[:n], off)
	return n, err
}

// Reader is the sequential counterpart of ReaderAt.
type Reader struct {
	R   io.Reader
	F   *Flips
	off int64
}

func (r *Reader) Read(p []byte) (int, error) {
	n, err := r.R.Read(p)
	r.F.Apply(p[:n], r.off)
	r.off += int64(n)
	return n, err
}

// TruncatedReaderAt presents only the first N bytes of R, as if the
// file had been cut off mid-write.
type TruncatedReaderAt struct {
	R io.ReaderAt
	N int64
}

func (t *TruncatedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= t.N {
		return 0, io.EOF
	}
	if off+int64(len(p)) > t.N {
		p = p[:t.N-off]
		n, err := t.R.ReadAt(p, off)
		if err == nil {
			err = io.EOF
		}
		return n, err
	}
	return t.R.ReadAt(p, off)
}

// ShortReader delivers each Read in deterministically sized partial
// chunks (1..maxChunk bytes), exercising the resynchronization and
// buffering logic that full-buffer reads never reach.
type ShortReader struct {
	R   io.Reader
	rng *xrand.Source
	max int
}

// NewShortReader wraps r; maxChunk <= 0 selects 7, an awkward prime
// that misaligns every fixed-width field.
func NewShortReader(r io.Reader, seed uint64, maxChunk int) *ShortReader {
	if maxChunk <= 0 {
		maxChunk = 7
	}
	return &ShortReader{R: r, rng: xrand.NewSource(seed), max: maxChunk}
}

func (s *ShortReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return s.R.Read(p)
	}
	n := 1 + s.rng.Intn(s.max)
	if n > len(p) {
		n = len(p)
	}
	return s.R.Read(p[:n])
}

// ErrNoSpace is the error QuotaWriter and FS return once their byte
// budget is exhausted, standing in for ENOSPC.
var ErrNoSpace = errors.New("faultinject: no space left on device")

// QuotaWriter passes writes through to W until Remaining bytes have
// been written, then fails with ErrNoSpace; the failing write is
// partial, as a real full filesystem produces.
type QuotaWriter struct {
	W         io.Writer
	Remaining int64
}

func (q *QuotaWriter) Write(p []byte) (int, error) {
	if q.Remaining <= 0 {
		return 0, ErrNoSpace
	}
	if int64(len(p)) > q.Remaining {
		n, err := q.W.Write(p[:q.Remaining])
		q.Remaining -= int64(n)
		if err == nil {
			err = ErrNoSpace
		}
		return n, err
	}
	n, err := q.W.Write(p)
	q.Remaining -= int64(n)
	return n, err
}

// HookReaderAt invokes Fn exactly once, before the first read that
// touches byte Offset or beyond. Tests use it to trigger a context
// cancellation at a precise point in the input, or — with an Fn that
// blocks on a channel — to model a latency stall whose end the test
// controls.
type HookReaderAt struct {
	R      io.ReaderAt
	Offset int64
	Fn     func()
	once   sync.Once
}

func (h *HookReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > h.Offset {
		h.once.Do(h.Fn)
	}
	return h.R.ReadAt(p, off)
}
