// Popcorrection traces a POP-like ocean simulation with Scalasca-style
// methodology (Fig. 7 of the paper), shows the clock-condition violations
// that linear interpolation leaves behind, and compares every correction
// method in the repository on the same trace — ending with the controlled
// logical clock, which removes all of them.
//
// Run with: go run ./examples/popcorrection
// (takes ~10-20 s; pass a smaller scale via code if impatient)
package main

import (
	"fmt"
	"log"

	"tsync/internal/clock"
	"tsync/internal/experiments"
	"tsync/internal/render"
	"tsync/internal/topology"
)

func main() {
	fmt.Println("tracing a POP-like run: 32 ranks, 9000-iteration equivalent,")
	fmt.Println("iterations 3500-5500 traced, offsets measured at Init and Finalize...")
	res, err := experiments.AppViolations(experiments.AppViolationsConfig{
		App:     experiments.AppPOP,
		Machine: topology.Xeon(),
		Timer:   clock.TSC,
		Ranks:   32,
		Reps:    1,
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter linear interpolation (the Scalasca default):\n")
	fmt.Printf("  %d messages, %.2f%% with reversed send/receive order\n",
		res.Census.Messages, res.PctReversed)
	fmt.Printf("  %d messages violate the clock condition t_recv >= t_send + l_min\n",
		res.Census.ClockCondition)
	fmt.Printf("  message transfer events are %.1f%% of the %d trace events\n\n",
		res.PctMessageEvents, res.Census.TotalEvents)

	fmt.Println("comparing all correction methods on the raw trace:")
	rows, err := experiments.CompareCorrections(res.RawTrace, res.InitOffsets, res.FinOffsets, 0)
	if err != nil {
		log.Fatal(err)
	}
	var cells [][]string
	for _, r := range rows {
		if r.Err != nil {
			cells = append(cells, []string{r.Method, "error: " + r.Err.Error(), ""})
			continue
		}
		cells = append(cells, []string{
			r.Method,
			fmt.Sprintf("%d", r.Violations),
			render.Micro(r.Distortion.MeanAbs),
		})
	}
	fmt.Println()
	fmt.Print(render.Table([]string{"method", "violations left", "mean |Δinterval| µs"}, cells))
	fmt.Println("\nthe paper's conclusion in one table: alignment and interpolation help but")
	fmt.Println("cannot guarantee the clock condition; the CLC restores it completely while")
	fmt.Println("disturbing local intervals by only ~1 µs on average — unlike the pure")
	fmt.Println("Lamport schedule, which orders perfectly but destroys all timing.")
}
