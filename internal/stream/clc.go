package stream

import (
	"fmt"
	"math"

	"tsync/internal/clc"
	"tsync/internal/trace"
)

// clcSink replays the controlled logical clock online.
//
// Forward amortization is clc.ForwardCore verbatim: it only needs the
// previous event's original and corrected times (two scalars per rank)
// plus the incoming-edge bound, which the engine delivers resolved. The
// forward value t1 is a max of monotone bounds, so any topological
// processing order yields the same fixpoint as the in-memory replay.
//
// Backward amortization needs look-back: each forward jump at event k
// ramps events j < k whose corrected time lies within BackwardWindow
// before t1[k], capped by per-event upper bounds derived from outgoing
// edges. The sink keeps a per-rank deque of not-yet-emitted entries and
// a FIFO of pending ramp jobs, and applies a job only once every entry
// the ramp can reach has its upper bound finalized (the engine's final
// notification: all out-edge heads delivered). Entries leave the deque
// once no future ramp or clamp can move them:
//
//   - no job is pending on the rank (jobs apply strictly in order);
//   - cur <= latestT1 - BackwardWindow, so any later jump's ramp —
//     whose rampStart is t1[k] - BackwardWindow >= latestT1's successor
//     minus the window — starts above the entry (t1 grows by at least
//     MinSpacing per event);
//   - cur <= t1[next] - MinSpacing, so the order-restoring clamp, which
//     never pushes an entry below its own t1 floor, stops at the
//     successor.
//
// The emitted value is therefore the entry's settled backward-amortized
// time, bit-identical to the in-memory two-pass result: jump detection
// reads exactly times[k-1] and times[k] before any later ramp touches
// them, jobs apply in the same ascending order over the same current
// values, and the clamp sweep can never reach below the deque front.
type clcSink struct {
	opt    clc.Options
	acct   *accounting
	ranks  []clcRank
	rep    *clc.Report // EventsMoved / MaxAdvance accumulate here
	spills *spillSet
}

type clcEntry struct {
	orig, t1, cur, ub float64
	final             bool
}

type rampJob struct {
	k                        int // event index of the jump
	rampStart, rampEnd, jump float64
}

type clcRank struct {
	started          bool
	prevOrig, prevT1 float64
	deque            []clcEntry
	base             int // event index of deque[0]
	jobs             []rampJob
	closed           bool
	w                *spillWriter
}

func newCLCSink(ranks int, opt clc.Options, acct *accounting, rep *clc.Report, spills *spillSet) (*clcSink, error) {
	s := &clcSink{opt: opt, acct: acct, ranks: make([]clcRank, ranks), rep: rep, spills: spills}
	for r := range s.ranks {
		w, err := spills.writer(r)
		if err != nil {
			return nil, err
		}
		s.ranks[r].w = w
	}
	return s, nil
}

func (s *clcSink) event(rank, idx int, ev *trace.Event, mapped float64, in []InEdge) (EdgeData, error) {
	r := &s.ranks[rank]
	inBound := math.Inf(-1)
	for _, e := range in {
		if b := e.Data.Value + s.opt.Gamma*e.LMin; b > inBound {
			inBound = b
		}
	}
	t1 := clc.ForwardCore(mapped, r.prevOrig, r.prevT1, inBound, !r.started, s.opt)

	if r.started && s.opt.BackwardWindow > 0 {
		deltaPrev := r.prevT1 - r.prevOrig
		deltaCur := t1 - mapped
		jump := deltaCur - deltaPrev
		if jump > s.opt.MinSpacing {
			rampEnd := t1
			rampStart := rampEnd - s.opt.BackwardWindow
			if rampStart < rampEnd {
				r.jobs = append(r.jobs, rampJob{k: idx, rampStart: rampStart, rampEnd: rampEnd, jump: jump})
			}
		}
	}

	r.deque = append(r.deque, clcEntry{orig: mapped, t1: t1, cur: t1, ub: math.Inf(1)})
	if err := s.acct.add(rank, 1); err != nil {
		return EdgeData{}, err
	}
	for _, e := range in {
		s.resolveUB(e.From, t1-s.opt.Gamma*e.LMin)
	}
	r.prevOrig, r.prevT1, r.started = mapped, t1, true
	if err := s.pump(rank); err != nil {
		return EdgeData{}, err
	}
	return EdgeData{Raw: ev.Time, Mapped: mapped, Value: t1}, nil
}

// resolveUB lowers the upper bound of an edge tail: it may not be pushed
// past head_t1 - γ·l_min (the same conservative bound the in-memory
// backward pass computes from post-forward times).
func (s *clcSink) resolveUB(ref EventRef, bound float64) {
	r := &s.ranks[ref.Rank]
	pos := ref.Idx - r.base
	if pos < 0 {
		// already emitted: only entries never reached by any ramp are
		// emitted before their bounds settle, so the bound is moot
		return
	}
	if bound < r.deque[pos].ub {
		r.deque[pos].ub = bound
	}
}

// final marks an entry's out-edges complete, possibly unblocking jobs.
func (s *clcSink) final(ref EventRef) error {
	r := &s.ranks[ref.Rank]
	pos := ref.Idx - r.base
	if pos < 0 {
		return nil
	}
	r.deque[pos].final = true
	return s.pump(ref.Rank)
}

func (s *clcSink) rankDone(rank int) error {
	s.ranks[rank].closed = true
	return s.pump(rank)
}

// pump applies every ready ramp job in order, then emits settled
// entries from the deque front.
func (s *clcSink) pump(rank int) error {
	r := &s.ranks[rank]
	for len(r.jobs) > 0 {
		job := r.jobs[0]
		pos := job.k - 1 - r.base
		if pos < 0 {
			return fmt.Errorf("stream: clc ramp target below deque base (rank %d)", rank)
		}
		ready := true
		for j := pos; j >= 0; j-- {
			if r.deque[j].cur <= job.rampStart {
				break
			}
			if !r.deque[j].final {
				ready = false
				break
			}
		}
		if !ready {
			break
		}
		for j := pos; j >= 0; j-- {
			e := &r.deque[j]
			if e.cur <= job.rampStart {
				break
			}
			desired := job.jump * (e.cur - job.rampStart) / (job.rampEnd - job.rampStart)
			if desired <= 0 {
				continue
			}
			allowed := desired
			if slack := e.ub - e.cur; slack < allowed {
				allowed = slack
			}
			if allowed > 0 {
				e.cur += allowed
			}
		}
		for j := pos; j >= 0; j-- {
			if m := r.deque[j+1].cur - s.opt.MinSpacing; r.deque[j].cur > m {
				r.deque[j].cur = m
			}
			if r.deque[j].cur < r.deque[j].t1 {
				r.deque[j].cur = r.deque[j].t1
			}
		}
		r.jobs = r.jobs[1:]
	}

	for len(r.jobs) == 0 && len(r.deque) > 0 {
		if !r.closed {
			if len(r.deque) < 2 {
				// the newest entry may still be ramped by the next jump
				break
			}
			front := r.deque[0]
			if front.cur > r.prevT1-s.opt.BackwardWindow {
				break
			}
			if front.cur > r.deque[1].t1-s.opt.MinSpacing {
				break
			}
		}
		front := r.deque[0]
		if err := r.w.write(front.cur); err != nil {
			return err
		}
		if front.cur != front.orig { //tsync:exact — EventsMoved counts bit-level changes, mirroring clc.Correct
			s.rep.EventsMoved++
			if adv := front.cur - front.orig; adv > s.rep.MaxAdvance {
				s.rep.MaxAdvance = adv
			}
		}
		r.deque = r.deque[1:]
		r.base++
		if err := s.acct.add(rank, -1); err != nil {
			return err
		}
	}
	return nil
}

func (s *clcSink) flush() error {
	for rank := range s.ranks {
		r := &s.ranks[rank]
		if !r.closed {
			return fmt.Errorf("stream: clc flush with rank %d still open", rank)
		}
		if err := s.pump(rank); err != nil {
			return err
		}
		if len(r.jobs) > 0 || len(r.deque) > 0 {
			return fmt.Errorf("stream: clc flush left rank %d with %d jobs, %d entries (missing finality)", rank, len(r.jobs), len(r.deque))
		}
		if err := r.w.close(); err != nil {
			return err
		}
	}
	return nil
}

// teeSink fans one engine walk out to two sinks; the second sink's edge
// data is what travels along the graph.
type teeSink struct{ a, b sink }

func (t teeSink) event(rank, idx int, ev *trace.Event, mapped float64, in []InEdge) (EdgeData, error) {
	if _, err := t.a.event(rank, idx, ev, mapped, in); err != nil {
		return EdgeData{}, err
	}
	return t.b.event(rank, idx, ev, mapped, in)
}

func (t teeSink) final(ref EventRef) error {
	if err := t.a.final(ref); err != nil {
		return err
	}
	return t.b.final(ref)
}

func (t teeSink) rankDone(rank int) error {
	if err := t.a.rankDone(rank); err != nil {
		return err
	}
	return t.b.rankDone(rank)
}

func (t teeSink) flush() error {
	if err := t.a.flush(); err != nil {
		return err
	}
	return t.b.flush()
}
