package experiments

import (
	"strings"
	"testing"

	"tsync/internal/clock"
	"tsync/internal/topology"
)

func TestClockStudyValidation(t *testing.T) {
	if _, err := ClockStudy(ClockStudyConfig{Procs: 1, Duration: 10, Interval: 1}); err == nil {
		t.Fatalf("single worker accepted")
	}
	cfg := ClockStudyConfig{Machine: topology.Xeon(), Timer: clock.TSC, Procs: 2}
	if _, err := ClockStudy(cfg); err == nil {
		t.Fatalf("zero duration accepted")
	}
	cfg.Duration, cfg.Interval = 10, 1
	cfg.Correction = "bogus"
	if _, err := ClockStudy(cfg); err == nil {
		t.Fatalf("unknown correction accepted")
	}
}

func TestFig4ShapesShort(t *testing.T) {
	// scaled-down panel a: NTP-disciplined software clock diverges past
	// the half-latency bound quickly even after offset alignment
	cfg, err := Fig4Config("a", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Duration, cfg.Interval = 120, 2
	res, err := ClockStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exceeded {
		t.Fatalf("software clock never exceeded half latency in 120 s")
	}
	if res.Series.MaxAbsDeviation() < 10e-6 {
		t.Fatalf("MPI_Wtime deviation implausibly small: %v", res.Series.MaxAbsDeviation())
	}
}

func TestFig4PanelsDiffer(t *testing.T) {
	if _, err := Fig4Config("z", 1); err == nil {
		t.Fatalf("bad panel accepted")
	}
	a, _ := Fig4Config("a", 1)
	c, _ := Fig4Config("c", 1)
	if a.Timer == c.Timer || a.Duration == c.Duration {
		t.Fatalf("panels a and c must differ in timer and duration")
	}
}

func TestFig5InterpBeatsAlignment(t *testing.T) {
	// the central comparison: interpolation removes most of the drift
	// the align-only baseline leaves in
	base, err := Fig5Config("a", 7)
	if err != nil {
		t.Fatal(err)
	}
	base.Duration, base.Interval = 600, 10
	interp, err := ClockStudy(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Correction = CorrectAlign
	align, err := ClockStudy(base)
	if err != nil {
		t.Fatal(err)
	}
	if interp.Series.MaxAbsDeviation() >= align.Series.MaxAbsDeviation()/5 {
		t.Fatalf("interpolation (%v) did not clearly beat alignment (%v)",
			interp.Series.MaxAbsDeviation(), align.Series.MaxAbsDeviation())
	}
	if _, err := Fig5Config("q", 1); err == nil {
		t.Fatalf("bad panel accepted")
	}
}

func TestFig6ResidualScale(t *testing.T) {
	cfg := Fig6Config(1)
	res, err := ClockStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	max := res.Series.MaxAbsDeviation()
	// the Fig. 6 claim: residuals after interpolation over a short run
	// are of the same order as the latency bound, slightly exceeding it
	if max < 0.2e-6 || max > 20e-6 {
		t.Fatalf("short-run residual %v s out of the latency order", max)
	}
	if !res.Exceeded {
		t.Fatalf("seed 1 is calibrated to exceed the half-latency bound")
	}
}

func TestIntraNodeNoise(t *testing.T) {
	// §IV end: co-located Xeon clocks essentially agree (shared node
	// crystal; only read noise remains)
	m := topology.Xeon()
	pin, err := topology.InterChip(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClockStudy(ClockStudyConfig{
		Machine: m, Timer: clock.TSC, Procs: 2, Pinning: pin,
		Duration: 60, Interval: 1, Correction: CorrectAlign, Seed: 2, Measured: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if max := res.Series.MaxAbsDeviation(); max > 0.5e-6 {
		t.Fatalf("intra-node deviation %v s, want sub-half-microsecond noise", max)
	}
}

func TestLatencyStudyTableII(t *testing.T) {
	rows, err := LatencyStudy(topology.Xeon(), clock.TSC, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	get := func(name string) float64 {
		for _, r := range rows {
			if strings.Contains(r.Name, name) {
				return r.Result.Mean
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	node := get("Inter node message")
	chip := get("Inter chip")
	core := get("Inter core")
	coll := get("collective")
	if !(node > chip && chip > core) {
		t.Fatalf("latency ordering violated: %v %v %v", node, chip, core)
	}
	if coll < 1.5*node {
		t.Fatalf("collective latency %v not clearly above message latency %v", coll, node)
	}
	// Table II magnitudes: 4.29 / 0.86 / 0.47 / 12.86 µs
	if node < 3.5e-6 || node > 5.5e-6 {
		t.Fatalf("inter-node mean %v s off Table II scale", node)
	}
	if core > 1e-6 {
		t.Fatalf("inter-core mean %v s off Table II scale", core)
	}
}

func TestLatencyStudySmallReps(t *testing.T) {
	// regression: reps in 1..3 passed reps/4 == 0 to measure.Collective,
	// which rejects non-positive rep counts and failed the whole study
	for _, reps := range []int{1, 2, 3} {
		rows, err := LatencyStudy(topology.Xeon(), clock.TSC, reps, 11)
		if err != nil {
			t.Fatalf("reps=%d: %v", reps, err)
		}
		found := false
		for _, r := range rows {
			if strings.Contains(r.Name, "collective") {
				found = true
				if !(r.Result.Mean > 0) {
					t.Fatalf("reps=%d: collective row has mean %v, want > 0", reps, r.Result.Mean)
				}
			}
		}
		if !found {
			t.Fatalf("reps=%d: collective row missing", reps)
		}
	}
}

func TestLatencyStudySkipsMissingChipRow(t *testing.T) {
	// the Opteron nodes have a single chip: no inter-chip row
	rows, err := LatencyStudy(topology.Opteron(), clock.Gettimeofday, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if strings.Contains(r.Name, "chip") {
			t.Fatalf("single-chip machine produced an inter-chip row")
		}
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
}

func TestAppViolationsSmallPOP(t *testing.T) {
	res, err := AppViolations(AppViolationsConfig{
		App: AppPOP, Machine: topology.Xeon(), Timer: clock.TSC,
		Ranks: 16, Reps: 1, Seed: 5, Scale: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Census.Messages == 0 {
		t.Fatalf("no messages traced")
	}
	if res.PctMessageEvents <= 0 || res.PctMessageEvents >= 100 {
		t.Fatalf("message event fraction %v implausible", res.PctMessageEvents)
	}
	if res.Trace == nil || len(res.InitOffsets) != 16 || len(res.FinOffsets) != 16 {
		t.Fatalf("result lacks trace or offset tables")
	}
}

func TestAppViolationsValidation(t *testing.T) {
	if _, err := AppViolations(AppViolationsConfig{App: AppPOP, Ranks: 1}); err == nil {
		t.Fatalf("single rank accepted")
	}
	if _, err := AppViolations(AppViolationsConfig{App: "quake", Machine: topology.Xeon(), Timer: clock.TSC, Ranks: 4, Reps: 1}); err == nil {
		t.Fatalf("unknown app accepted")
	}
}

func TestOMPStudyFig8Shape(t *testing.T) {
	pct := map[int]float64{}
	for _, th := range []int{4, 16} {
		res, err := OMPStudy(OMPStudyConfig{
			Machine: topology.Itanium(), Timer: clock.TSC,
			Threads: th, Regions: 40, Reps: 3, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		pct[th] = res.PctAny
		if res.Trace == nil {
			t.Fatalf("missing trace")
		}
	}
	if pct[4] < 50 {
		t.Fatalf("4 threads: %v%% violated, expected a large majority", pct[4])
	}
	if pct[16] > 3 {
		t.Fatalf("16 threads: %v%% violated, expected ~none", pct[16])
	}
}

func TestCompareCorrections(t *testing.T) {
	app, err := AppViolations(AppViolationsConfig{
		App: AppPOP, Machine: topology.Xeon(), Timer: clock.TSC,
		Ranks: 8, Reps: 1, Seed: 3, Scale: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CompareCorrections(app.RawTrace, app.InitOffsets, app.FinOffsets, 0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MethodResult{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	clcRow, ok := byName["interp+clc"]
	if !ok {
		t.Fatalf("missing CLC row: %+v", rows)
	}
	if clcRow.Err != nil {
		t.Fatalf("CLC failed: %v", clcRow.Err)
	}
	if clcRow.Violations != 0 {
		t.Fatalf("CLC left %d violations", clcRow.Violations)
	}
	none, ok := byName["none"]
	if !ok || none.Err != nil {
		t.Fatalf("missing baseline row")
	}
	if _, err := CompareCorrections(nil, nil, nil, 0); err == nil {
		t.Fatalf("nil trace accepted")
	}
}

func TestGrid2D(t *testing.T) {
	cases := map[int][2]int{
		32: {8, 4}, 16: {4, 4}, 8: {4, 2}, 7: {7, 1}, 36: {6, 6},
	}
	for n, want := range cases {
		px, py := grid2D(n)
		if px*py != n || px != want[0] || py != want[1] {
			t.Fatalf("grid2D(%d) = %dx%d, want %dx%d", n, px, py, want[0], want[1])
		}
	}
}

func BenchmarkClockStudyShort(b *testing.B) {
	cfg := Fig6Config(1)
	cfg.Duration, cfg.Interval = 60, 5
	for i := 0; i < b.N; i++ {
		if _, err := ClockStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPiecewiseBeatsLinearOnNTPClock(t *testing.T) {
	// the Doleschal-style extension: extra mid-run measurements track the
	// NTP slope changes that a single line cannot
	base := ClockStudyConfig{
		Machine: topology.Xeon(), Timer: clock.Gettimeofday,
		Procs: 3, Duration: 1200, Interval: 10, Seed: 8,
	}
	base.Correction = CorrectInterp
	linear, err := ClockStudy(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Correction = CorrectPiecewise
	base.MidMeasurements = 7
	piecewise, err := ClockStudy(base)
	if err != nil {
		t.Fatal(err)
	}
	if piecewise.Series.MaxAbsDeviation() >= linear.Series.MaxAbsDeviation() {
		t.Fatalf("piecewise (%v) did not beat linear (%v) on an NTP clock",
			piecewise.Series.MaxAbsDeviation(), linear.Series.MaxAbsDeviation())
	}
}

func TestWaitStateStudy(t *testing.T) {
	app, err := AppViolations(AppViolationsConfig{
		App: AppPOP, Machine: topology.Xeon(), Timer: clock.TSC,
		Ranks: 16, Reps: 1, Seed: 5, Scale: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	impact, err := WaitStateStudy(app.RawTrace, app.InitOffsets, app.FinOffsets)
	if err != nil {
		t.Fatal(err)
	}
	if impact.Oracle.Messages == 0 {
		t.Fatalf("no messages analysed")
	}
	if impact.Oracle.TotalWait <= 0 {
		t.Fatalf("POP workload produced no ground-truth wait states")
	}
	// CLC must not make the quantification worse than plain interpolation
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	if abs(impact.CorrectedErrPct) > abs(impact.MeasuredErrPct)+1 {
		t.Fatalf("CLC worsened wait-state error: %.2f%% vs %.2f%%",
			impact.CorrectedErrPct, impact.MeasuredErrPct)
	}
	if _, err := WaitStateStudy(nil, nil, nil); err == nil {
		t.Fatalf("nil trace accepted")
	}
}

func TestCompareCorrectionsIncludesLamport(t *testing.T) {
	app, err := AppViolations(AppViolationsConfig{
		App: AppPOP, Machine: topology.Xeon(), Timer: clock.TSC,
		Ranks: 16, Reps: 1, Seed: 3, Scale: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CompareCorrections(app.RawTrace, app.InitOffsets, app.FinOffsets, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lamport, clcRow *MethodResult
	for i := range rows {
		switch rows[i].Method {
		case "lamport":
			lamport = &rows[i]
		case "interp+clc":
			clcRow = &rows[i]
		}
	}
	if lamport == nil || lamport.Err != nil {
		t.Fatalf("lamport row missing or failed: %+v", rows)
	}
	// the logical schedule restores order (few or no reversed edges) but
	// distorts intervals vastly more than CLC — the reason CLC exists
	if clcRow == nil || clcRow.Err != nil {
		t.Fatalf("clc row missing")
	}
	if lamport.Distortion.MeanAbs <= clcRow.Distortion.MeanAbs {
		t.Fatalf("lamport distortion (%v) not worse than CLC (%v): baseline meaningless",
			lamport.Distortion.MeanAbs, clcRow.Distortion.MeanAbs)
	}
}

func TestOMPStudyCorrections(t *testing.T) {
	// the paper's open question, answered: both offset alignment and the
	// shared-memory CLC eliminate the POMP violations at 4 threads
	base := OMPStudyConfig{
		Machine: topology.Itanium(), Timer: clock.TSC,
		Threads: 4, Regions: 40, Reps: 2, Seed: 2,
	}
	raw, err := OMPStudy(base)
	if err != nil {
		t.Fatal(err)
	}
	if raw.PctAny < 30 {
		t.Fatalf("uncorrected run too clean (%v%%), nothing to alleviate", raw.PctAny)
	}
	base.Correct = "align"
	aligned, err := OMPStudy(base)
	if err != nil {
		t.Fatal(err)
	}
	if aligned.PctAny > raw.PctAny/4 {
		t.Fatalf("alignment did not alleviate: %v%% -> %v%%", raw.PctAny, aligned.PctAny)
	}
	base.Correct = "clc"
	fixed, err := OMPStudy(base)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.PctAny != 0 {
		t.Fatalf("shared-memory CLC left %v%% violated regions", fixed.PctAny)
	}
	base.Correct = "bogus"
	if _, err := OMPStudy(base); err == nil {
		t.Fatalf("unknown correction accepted")
	}
}

func TestRankTimers(t *testing.T) {
	// 900 s separates the classes clearly (at very short durations the
	// global clock and the TSC both sit at the Cristian-error floor)
	rows, err := RankTimers(topology.Xeon(),
		[]clock.Kind{clock.GlobalHW, clock.TSC, clock.Gettimeofday}, 900, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// the paper's ordering: global clock beats hardware counter beats
	// NTP software clock
	if rows[0].Timer != clock.GlobalHW || rows[1].Timer != clock.TSC || rows[2].Timer != clock.Gettimeofday {
		t.Fatalf("ranking order wrong: %v %v %v", rows[0].Timer, rows[1].Timer, rows[2].Timer)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxDevInterp < rows[i-1].MaxDevInterp {
			t.Fatalf("rows not sorted")
		}
	}
	// for hardware counters (near-constant drift) interpolation must be
	// a large improvement over alignment; for the NTP clock it may even
	// be worse — the paper's very point about deliberately non-constant
	// drifts — so no assertion there
	for _, r := range rows {
		if r.Timer != clock.TSC {
			continue
		}
		if r.MaxDevInterp > r.MaxDevAlign/100 {
			t.Fatalf("TSC: interp (%v) not clearly better than align (%v)", r.MaxDevInterp, r.MaxDevAlign)
		}
	}
}
