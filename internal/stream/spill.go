package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"tsync/internal/interp"
	"tsync/internal/trace"
)

// timeMapper produces the pipeline's current timestamp for an event. The
// engine and the assembly/distortion passes consume events of each rank
// strictly in order, so mappers may be sequential readers.
type timeMapper interface {
	// mapTime returns the mapped timestamp of rank's idx-th event.
	mapTime(rank, idx int, ev *trace.Event) (float64, error)
}

// identityMapper keeps raw local timestamps (BaseNone).
type identityMapper struct{}

func (identityMapper) mapTime(_, _ int, ev *trace.Event) (float64, error) { return ev.Time, nil }

// corrMapper applies an interp correction through a monotone cursor:
// every pass feeds each rank's events in file order, whose local times
// are (in practice) nondecreasing, so the piece lookup is amortized O(1)
// instead of a binary search per event. The cursor falls back to the
// exact search whenever a time regresses — including the restart between
// passes that share one mapper — so its values are bit-identical to the
// in-memory Correction.Apply on every input. Concurrent per-rank use
// (assembleParallel) is safe: the cursor state is per-rank.
type corrMapper struct{ cur *interp.MonotoneCursor }

func newCorrMapper(c *interp.Correction) corrMapper {
	return corrMapper{cur: c.NewCursor()}
}

func (m corrMapper) mapTime(rank, _ int, ev *trace.Event) (float64, error) {
	return m.cur.Map(rank, ev.Time), nil
}

// spillSet is a directory of per-rank float64 streams holding finalized
// corrected timestamps: the CLC and Lamport sinks write them as entries
// finalize, and later passes read them back in lockstep with the events.
type spillSet struct {
	dir   string
	paths []string
}

func newSpillSet(ranks int) (*spillSet, error) {
	dir, err := os.MkdirTemp("", "tsync-stream-")
	if err != nil {
		return nil, err
	}
	s := &spillSet{dir: dir, paths: make([]string, ranks)}
	for i := range s.paths {
		s.paths[i] = filepath.Join(dir, fmt.Sprintf("rank%06d.t", i))
	}
	return s, nil
}

func (s *spillSet) Close() error { return os.RemoveAll(s.dir) }

// spillWriter appends float64s to one rank's stream. The scratch field
// keeps the hot path allocation-free: a stack buffer passed to the
// io.Writer interface would escape on every call.
type spillWriter struct {
	f       *os.File
	bw      *bufio.Writer
	n       int64
	scratch [8]byte
}

func (s *spillSet) writer(rank int) (*spillWriter, error) {
	f, err := os.Create(s.paths[rank])
	if err != nil {
		return nil, err
	}
	return &spillWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

func (w *spillWriter) write(v float64) error {
	binary.LittleEndian.PutUint64(w.scratch[:], math.Float64bits(v))
	_, err := w.bw.Write(w.scratch[:])
	w.n++
	return err
}

func (w *spillWriter) close() error {
	err := w.bw.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// spillMapper replays a spillSet as a timeMapper: each rank's floats are
// read sequentially, one per event.
type spillMapper struct {
	set     *spillSet
	readers []*bufio.Reader
	files   []*os.File
	next    []int
	// scratch holds one read buffer per rank (not one shared one):
	// assembleParallel maps different ranks from different goroutines,
	// and a per-rank slot keeps that race-free and allocation-free.
	scratch [][8]byte
}

func (s *spillSet) mapper() *spillMapper {
	return &spillMapper{
		set:     s,
		readers: make([]*bufio.Reader, len(s.paths)),
		files:   make([]*os.File, len(s.paths)),
		next:    make([]int, len(s.paths)),
		scratch: make([][8]byte, len(s.paths)),
	}
}

func (m *spillMapper) mapTime(rank, idx int, _ *trace.Event) (float64, error) {
	if m.readers[rank] == nil {
		f, err := os.Open(m.set.paths[rank])
		if err != nil {
			return 0, err
		}
		m.files[rank] = f
		m.readers[rank] = bufio.NewReader(f)
	}
	if idx != m.next[rank] {
		return 0, fmt.Errorf("stream: spill read out of order: rank %d idx %d (want %d)", rank, idx, m.next[rank])
	}
	m.next[rank]++
	buf := m.scratch[rank][:]
	if _, err := io.ReadFull(m.readers[rank], buf); err != nil {
		return 0, fmt.Errorf("stream: spill read rank %d idx %d: %w", rank, idx, err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf)), nil
}

func (m *spillMapper) close() error {
	var err error
	for _, f := range m.files {
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
