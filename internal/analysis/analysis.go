// Package analysis computes the quantities the paper's evaluation reports:
// clock-condition violation censuses over message-passing traces (Fig. 7),
// POMP-semantics violation classes over OpenMP traces (Figs. 3 and 8),
// clock deviation time series under a given correction (Figs. 4-6), and
// interval-distortion metrics that quantify how much a correction disturbs
// local timing (the property CLC's amortization protects).
package analysis

import (
	"fmt"
	"math"

	"tsync/internal/clock"
	"tsync/internal/interp"
	"tsync/internal/lclock"
	"tsync/internal/stats"
	"tsync/internal/trace"
)

// Census counts clock-condition violations in a message-passing trace, the
// quantities behind Fig. 7.
type Census struct {
	TotalEvents int
	// MessageEvents counts Send and Recv records.
	MessageEvents int
	// Messages counts matched point-to-point messages.
	Messages int
	// Reversed counts messages whose receive is timestamped before the
	// send — the "arrows pointing backward" of Fig. 7's front row.
	Reversed int
	// ClockCondition counts messages violating Eq. 1
	// (t_recv < t_send + l_min); a superset of Reversed.
	ClockCondition int
	// LogicalMessages counts the point-to-point edges derived from
	// collective operations ("logical messages", Section IV).
	LogicalMessages int
	// ReversedLogical counts logical messages with reversed order.
	ReversedLogical int
}

// PctReversed returns the percentage of point-to-point messages with
// reversed send/receive order (Fig. 7 front row).
func (c Census) PctReversed() float64 {
	if c.Messages == 0 {
		return 0
	}
	return 100 * float64(c.Reversed) / float64(c.Messages)
}

// PctReversedLogical returns the percentage over both real and logical
// messages.
func (c Census) PctReversedLogical() float64 {
	total := c.Messages + c.LogicalMessages
	if total == 0 {
		return 0
	}
	return 100 * float64(c.Reversed+c.ReversedLogical) / float64(total)
}

// PctMessageEvents returns the fraction of message transfer events in
// relation to the total number of events (Fig. 7 back row).
func (c Census) PctMessageEvents() float64 {
	if c.TotalEvents == 0 {
		return 0
	}
	return 100 * float64(c.MessageEvents) / float64(c.TotalEvents)
}

// CensusOf analyses a trace's Time stamps.
func CensusOf(t *trace.Trace) (Census, error) {
	var c Census
	c.TotalEvents = t.EventCount()
	for _, p := range t.Procs {
		for _, ev := range p.Events {
			if ev.Kind == trace.Send || ev.Kind == trace.Recv {
				c.MessageEvents++
			}
		}
	}
	msgs, err := t.Messages()
	if err != nil {
		return Census{}, err
	}
	c.Messages = len(msgs)
	for _, m := range msgs {
		send := t.Procs[m.From].Events[m.FromIdx].Time
		recv := t.Procs[m.To].Events[m.ToIdx].Time
		if recv < send {
			c.Reversed++
		}
		if recv < send+t.MinLatencyBetween(m.From, m.To) {
			c.ClockCondition++
		}
	}
	colls, err := t.Collectives()
	if err != nil {
		return Census{}, err
	}
	for _, coll := range colls {
		for _, e := range lclock.CollEdges(coll) {
			c.LogicalMessages++
			from := t.Procs[e.From.Rank].Events[e.From.Idx].Time
			to := t.Procs[e.To.Rank].Events[e.To.Idx].Time
			if to < from {
				c.ReversedLogical++
			}
		}
	}
	return c, nil
}

// POMPCensus classifies violations of shared-memory event semantics per
// parallel-region instance, the quantities of Fig. 8: at region entry (a
// thread's first event precedes the fork), at region exit (a thread's last
// event follows the join), and during the implicit barrier (one thread
// exits before another enters, Fig. 2(d)).
type POMPCensus struct {
	Regions int
	// Any counts regions with at least one violation of any class.
	Any int
	// Entry counts regions where the fork is not the first event.
	Entry int
	// Exit counts regions where the join is not the last event.
	Exit int
	// Barrier counts regions whose implicit barrier executions do not
	// overlap across all thread pairs.
	Barrier int
}

// Pct returns the four percentages (any, entry, exit, barrier) over the
// region count.
func (c POMPCensus) Pct() (anyPct, entry, exit, barrier float64) {
	if c.Regions == 0 {
		return 0, 0, 0, 0
	}
	f := 100 / float64(c.Regions)
	return f * float64(c.Any), f * float64(c.Entry), f * float64(c.Exit), f * float64(c.Barrier)
}

// regionKey identifies one dynamic parallel-region instance.
type regionKey struct {
	region   int32
	instance int32
}

// POMPCensusOf analyses an OpenMP trace recorded under the POMP event
// model: per parallel-region instance, a Fork and Join on the master
// thread, and Enter/BarrierEnter/BarrierExit/Exit on every thread.
func POMPCensusOf(t *trace.Trace) (POMPCensus, error) {
	type regionData struct {
		forkTime, joinTime    float64
		hasFork, hasJoin      bool
		firstEvent, lastEvent float64
		hasEvents             bool
		barrierEnter          []float64
		barrierExit           []float64
	}
	regions := map[regionKey]*regionData{}
	var order []regionKey
	get := func(k regionKey) *regionData {
		d, ok := regions[k]
		if !ok {
			d = &regionData{}
			regions[k] = d
			order = append(order, k)
		}
		return d
	}
	for _, p := range t.Procs {
		for _, ev := range p.Events {
			k := regionKey{ev.Region, ev.Instance}
			switch ev.Kind {
			case trace.Fork:
				d := get(k)
				if d.hasFork {
					return POMPCensus{}, fmt.Errorf("analysis: duplicate Fork for region %d instance %d", ev.Region, ev.Instance)
				}
				d.hasFork, d.forkTime = true, ev.Time
			case trace.Join:
				d := get(k)
				if d.hasJoin {
					return POMPCensus{}, fmt.Errorf("analysis: duplicate Join for region %d instance %d", ev.Region, ev.Instance)
				}
				d.hasJoin, d.joinTime = true, ev.Time
			case trace.Enter, trace.Exit:
				d := get(k)
				if !d.hasEvents || ev.Time < d.firstEvent {
					d.firstEvent = ev.Time
				}
				if !d.hasEvents || ev.Time > d.lastEvent {
					d.lastEvent = ev.Time
				}
				d.hasEvents = true
			case trace.BarrierEnter:
				d := get(k)
				d.barrierEnter = append(d.barrierEnter, ev.Time)
				if !d.hasEvents || ev.Time < d.firstEvent {
					d.firstEvent = ev.Time
				}
				if !d.hasEvents || ev.Time > d.lastEvent {
					d.lastEvent = ev.Time
				}
				d.hasEvents = true
			case trace.BarrierExit:
				d := get(k)
				d.barrierExit = append(d.barrierExit, ev.Time)
				if !d.hasEvents || ev.Time < d.firstEvent {
					d.firstEvent = ev.Time
				}
				if !d.hasEvents || ev.Time > d.lastEvent {
					d.lastEvent = ev.Time
				}
				d.hasEvents = true
			}
		}
	}
	var c POMPCensus
	for _, k := range order {
		d := regions[k]
		if !d.hasFork || !d.hasJoin {
			return POMPCensus{}, fmt.Errorf("analysis: region %d instance %d lacks fork/join", k.region, k.instance)
		}
		c.Regions++
		entry := d.hasEvents && d.firstEvent < d.forkTime
		exit := d.hasEvents && d.lastEvent > d.joinTime
		// barrier overlap: every thread's barrier interval must
		// intersect every other's; equivalently max(enter) <= min(exit)
		barrier := false
		if len(d.barrierEnter) > 1 && len(d.barrierEnter) == len(d.barrierExit) {
			maxEnter := d.barrierEnter[0]
			for _, v := range d.barrierEnter[1:] {
				if v > maxEnter {
					maxEnter = v
				}
			}
			minExit := d.barrierExit[0]
			for _, v := range d.barrierExit[1:] {
				if v < minExit {
					minExit = v
				}
			}
			barrier = minExit < maxEnter
		}
		if entry {
			c.Entry++
		}
		if exit {
			c.Exit++
		}
		if barrier {
			c.Barrier++
		}
		if entry || exit || barrier {
			c.Any++
		}
	}
	return c, nil
}

// Series is a sampled deviation time series: Dev[i][k] is the deviation of
// clock i from clock 0 (after correction) at time T[k]. This is the data
// behind Figs. 4, 5 and 6.
type Series struct {
	T   []float64
	Dev [][]float64
}

// MaxAbsDeviation returns the largest |deviation| of any clock at any
// sample.
func (s Series) MaxAbsDeviation() float64 {
	m := 0.0
	for _, d := range s.Dev {
		if v := stats.MaxAbs(d); v > m {
			m = v
		}
	}
	return m
}

// FirstExceeds returns the earliest sample time at which any clock's
// |deviation| exceeds the bound, or (0, false) if none does. The paper uses
// this to show deviations crossing the half-latency threshold "after a few
// minutes or even earlier".
func (s Series) FirstExceeds(bound float64) (float64, bool) {
	for k, tt := range s.T {
		for _, d := range s.Dev {
			if math.Abs(d[k]) > bound {
				return tt, true
			}
		}
	}
	return 0, false
}

// DeviationSeries samples the deviation of each clock from clocks[0] over
// [0, duration] at the given interval, after mapping every clock through
// the correction. It uses the noiseless clock trajectories (the paper's
// plots show the underlying drift, not read noise).
func DeviationSeries(clocks []*clock.Clock, corr *interp.Correction, duration, interval float64) (Series, error) {
	if len(clocks) < 2 {
		return Series{}, fmt.Errorf("analysis: need at least two clocks, got %d", len(clocks))
	}
	if duration <= 0 || interval <= 0 {
		return Series{}, fmt.Errorf("analysis: non-positive duration or interval")
	}
	if corr == nil {
		corr = interp.Identity(len(clocks))
	}
	var s Series
	for tt := 0.0; tt <= duration+interval/2; tt += interval {
		s.T = append(s.T, tt)
	}
	s.Dev = make([][]float64, len(clocks)-1)
	for i := range s.Dev {
		s.Dev[i] = make([]float64, len(s.T))
	}
	for k, tt := range s.T {
		master := corr.Map(0, clocks[0].Ideal(tt))
		for i := 1; i < len(clocks); i++ {
			s.Dev[i-1][k] = corr.Map(i, clocks[i].Ideal(tt)) - master
		}
	}
	return s, nil
}

// DeviationSeriesMeasured is DeviationSeries with noisy clock reads
// instead of ideal trajectories: read noise, quantization and monotonic
// enforcement are included, as in the paper's intra-node "noise
// oscillating around zero" measurements (end of Section IV). Reads happen
// in time order, respecting the clocks' monotonic state.
func DeviationSeriesMeasured(clocks []*clock.Clock, corr *interp.Correction, duration, interval float64) (Series, error) {
	if len(clocks) < 2 {
		return Series{}, fmt.Errorf("analysis: need at least two clocks, got %d", len(clocks))
	}
	if duration <= 0 || interval <= 0 {
		return Series{}, fmt.Errorf("analysis: non-positive duration or interval")
	}
	if corr == nil {
		corr = interp.Identity(len(clocks))
	}
	var s Series
	for tt := 0.0; tt <= duration+interval/2; tt += interval {
		s.T = append(s.T, tt)
	}
	s.Dev = make([][]float64, len(clocks)-1)
	for i := range s.Dev {
		s.Dev[i] = make([]float64, len(s.T))
	}
	for k, tt := range s.T {
		master := corr.Map(0, clocks[0].Read(tt))
		for i := 1; i < len(clocks); i++ {
			s.Dev[i-1][k] = corr.Map(i, clocks[i].Read(tt)) - master
		}
	}
	return s, nil
}

// Distortion quantifies how much a correction disturbed local timing: for
// every pair of adjacent events on the same process it compares the
// corrected interval with the original one.
type Distortion struct {
	MaxAbs  float64 // largest |Δinterval| in seconds
	MeanAbs float64
	// Shrunk counts intervals that became shorter (CLC's backward/forward
	// amortization aims to keep this small and bounded).
	Shrunk int
	N      int
}

// DistortionBetween compares per-process adjacent-event intervals of two
// traces with identical structure (original vs corrected).
func DistortionBetween(orig, corrected *trace.Trace) (Distortion, error) {
	if len(orig.Procs) != len(corrected.Procs) {
		return Distortion{}, fmt.Errorf("analysis: traces have %d and %d procs", len(orig.Procs), len(corrected.Procs))
	}
	var d Distortion
	var sum float64
	for i := range orig.Procs {
		a, b := orig.Procs[i].Events, corrected.Procs[i].Events
		if len(a) != len(b) {
			return Distortion{}, fmt.Errorf("analysis: proc %d has %d vs %d events", i, len(a), len(b))
		}
		for j := 1; j < len(a); j++ {
			origIv := a[j].Time - a[j-1].Time
			corrIv := b[j].Time - b[j-1].Time
			delta := corrIv - origIv
			if math.Abs(delta) > d.MaxAbs {
				d.MaxAbs = math.Abs(delta)
			}
			if corrIv < origIv {
				d.Shrunk++
			}
			sum += math.Abs(delta)
			d.N++
		}
	}
	if d.N > 0 {
		d.MeanAbs = sum / float64(d.N)
	}
	return d, nil
}

// TrueError summarizes how far corrected timestamps are from the oracle
// True times, up to a global shift (the master's own drift is
// unobservable): it reports statistics of (Time - True) relative to the
// master's mean (Time - True).
func TrueError(t *trace.Trace) stats.Online {
	var masterBias stats.Online
	if len(t.Procs) > 0 {
		for _, ev := range t.Procs[0].Events {
			masterBias.Add(ev.Time - ev.True)
		}
	}
	var acc stats.Online
	bias := masterBias.Mean()
	for _, p := range t.Procs {
		for _, ev := range p.Events {
			acc.Add(ev.Time - ev.True - bias)
		}
	}
	return acc
}

// WaitStats summarizes Late Sender wait states — the flagship inefficiency
// pattern of Scalasca-style trace analysis (the paper's introduction) — as
// computed from a trace's timestamps.
type WaitStats struct {
	// Messages is the number of matched messages examined.
	Messages int
	// LateSenders counts messages whose receiver entered the receive
	// before the sender sent (the receiver waited).
	LateSenders int
	// TotalWait is the summed waiting time attributed to late senders.
	TotalWait float64
	// MaxWait is the largest single waiting time.
	MaxWait float64
}

// LateSender quantifies Late Sender wait states: for every matched
// message, the time between the receiver entering its receive operation
// and the sender's send event, when positive. With oracle=false it uses
// the recorded timestamps — the quantity a real analyzer reports, which
// inaccurate clocks distort ("inaccurate timestamps may lead to false
// conclusions during trace analysis, for example, when the impact of
// certain behaviors is quantified", Section III); with oracle=true it uses
// the simulation's true times, the ground truth.
func LateSender(t *trace.Trace, oracle bool) (WaitStats, error) {
	msgs, err := t.Messages()
	if err != nil {
		return WaitStats{}, err
	}
	at := func(rank, idx int) float64 {
		ev := t.Procs[rank].Events[idx]
		if oracle {
			return ev.True
		}
		return ev.Time
	}
	var ws WaitStats
	for _, m := range msgs {
		ws.Messages++
		// the Enter of the receive operation immediately precedes the
		// Recv record in PMPI-style traces; scan back defensively
		enterIdx := -1
		for k := m.ToIdx - 1; k >= 0 && k >= m.ToIdx-3; k-- {
			if t.Procs[m.To].Events[k].Kind == trace.Enter {
				enterIdx = k
				break
			}
		}
		if enterIdx < 0 {
			continue
		}
		wait := at(m.From, m.FromIdx) - at(m.To, enterIdx)
		if wait > 0 {
			ws.LateSenders++
			ws.TotalWait += wait
			if wait > ws.MaxWait {
				ws.MaxWait = wait
			}
		}
	}
	return ws, nil
}

// RegionProfile is a per-region time profile computed from Enter/Exit
// nesting — the aggregate view performance tools derive from traces. The
// same timestamp errors that reverse messages also corrupt these sums
// (negative exclusive times are the tell-tale symptom).
type RegionProfile struct {
	Region string
	Visits int
	// Inclusive is the total time between Enter and matching Exit.
	Inclusive float64
	// Exclusive excludes time spent in nested regions.
	Exclusive float64
	// Negative counts visits whose measured duration came out negative —
	// impossible in reality, a direct symptom of clock error.
	Negative int
}

// ProfileRegions computes per-region profiles over all processes from the
// trace's recorded timestamps (oracle=false) or true times (oracle=true).
// Unbalanced Enter/Exit nesting is an error.
func ProfileRegions(t *trace.Trace, oracle bool) ([]RegionProfile, error) {
	at := func(ev *trace.Event) float64 {
		if oracle {
			return ev.True
		}
		return ev.Time
	}
	type frame struct {
		region int32
		start  float64
		nested float64
	}
	acc := map[int32]*RegionProfile{}
	var order []int32
	for rank, p := range t.Procs {
		var stack []frame
		for idx := range p.Events {
			ev := &p.Events[idx]
			switch ev.Kind {
			case trace.Enter:
				stack = append(stack, frame{region: ev.Region, start: at(ev)})
			case trace.Exit:
				if len(stack) == 0 {
					return nil, fmt.Errorf("analysis: rank %d event %d: Exit without Enter", rank, idx)
				}
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if f.region != ev.Region {
					return nil, fmt.Errorf("analysis: rank %d event %d: Exit from region %d inside region %d", rank, idx, ev.Region, f.region)
				}
				dur := at(ev) - f.start
				rp, ok := acc[f.region]
				if !ok {
					rp = &RegionProfile{Region: t.RegionName(f.region)}
					acc[f.region] = rp
					order = append(order, f.region)
				}
				rp.Visits++
				rp.Inclusive += dur
				rp.Exclusive += dur - f.nested
				if dur < 0 {
					rp.Negative++
				}
				if len(stack) > 0 {
					stack[len(stack)-1].nested += dur
				}
			}
		}
		if len(stack) != 0 {
			return nil, fmt.Errorf("analysis: rank %d: %d regions never exited", rank, len(stack))
		}
	}
	out := make([]RegionProfile, 0, len(order))
	for _, id := range order {
		out = append(out, *acc[id])
	}
	return out, nil
}

// LatencyCensus summarizes the apparent one-way message latencies a trace
// analyzer would compute from recorded timestamps (t_recv - t_send). With
// accurate clocks these are genuine network latencies; with drifting
// clocks some come out negative — physically impossible, the per-message
// view of the clock condition.
type LatencyCensus struct {
	Stats    stats.Online
	Negative int // messages with negative apparent latency
}

// MessageLatencies computes the apparent-latency census from recorded
// timestamps (oracle=false) or true times (oracle=true).
func MessageLatencies(t *trace.Trace, oracle bool) (LatencyCensus, error) {
	msgs, err := t.Messages()
	if err != nil {
		return LatencyCensus{}, err
	}
	var c LatencyCensus
	for _, m := range msgs {
		s := t.Procs[m.From].Events[m.FromIdx]
		r := t.Procs[m.To].Events[m.ToIdx]
		var lat float64
		if oracle {
			lat = r.True - s.True
		} else {
			lat = r.Time - s.Time
		}
		c.Stats.Add(lat)
		if lat < 0 {
			c.Negative++
		}
	}
	return c, nil
}
