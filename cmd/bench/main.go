// Command bench times the paper's Fig. 7, Fig. 8 and §V drivers at
// workers=1 and at a chosen worker count and verifies that the parallel
// runs produce bit-identical results (via the experiment checksums). It
// writes a JSON report (wall-clock, speedup, checksums, CPU counts) and
// exits non-zero on any checksum mismatch — determinism is the contract,
// speedup is the payoff.
//
// It also benches the streaming trace pipeline: a differential case that
// runs the same synthetic trace through the in-memory and streaming paths
// and requires equal output checksums, and a bounded-memory case that
// streams a large trace (1M events outside smoke mode) and fails unless
// peak heap stays under a fraction of what materializing the events would
// take — memory must scale with the reorder window, not the trace.
//
// The stream-faults case corrupts a v2-framed trace with a fixed burst
// fault mix (0.01% of bytes) and salvages it at workers 1 and 4: it
// records events/sec and the recovery ratio, and fails unless both
// worker counts produce identical salvaged output and the ratio stays
// at or above 99%.
//
// The replay-1m case re-executes the interp-corrected 1M-event trace
// under seeded RepCl-feasible interleavings (internal/replay) at two
// worker counts and fails unless every interleaving reproduces the
// canonical order's summary checksum bit for bit with zero violations.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tsync/internal/analysis"
	"tsync/internal/clock"
	"tsync/internal/core"
	"tsync/internal/experiments"
	"tsync/internal/faultinject"
	"tsync/internal/fingerprint"
	"tsync/internal/interp"
	"tsync/internal/measure"
	"tsync/internal/prof"
	"tsync/internal/replay"
	"tsync/internal/stream"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/tsyncd"
)

// benchCase is one timed driver comparison in the report.
type benchCase struct {
	Name             string  `json:"name"`
	SerialSeconds    float64 `json:"serial_seconds"`
	ParallelSeconds  float64 `json:"parallel_seconds"`
	Speedup          float64 `json:"speedup"`
	SerialChecksum   string  `json:"serial_checksum"`
	ParallelChecksum string  `json:"parallel_checksum"`
	Match            bool    `json:"match"`
}

// streamCase is one streaming-pipeline measurement in the report. Peak
// heap is the sampled HeapAlloc high-water mark over the run minus the
// post-GC baseline before it; peak RSS is the kernel's VmHWM for the
// whole process (absolute, reported for context). BoundBytes, when set,
// is the ceiling peak heap must stay under for the run to pass.
type streamCase struct {
	Name           string  `json:"name"`
	Events         int64   `json:"events"`
	Window         int     `json:"window"`
	Batch          int     `json:"batch,omitempty"`
	Shards         int     `json:"shards,omitempty"`
	GoMaxProcs     int     `json:"gomaxprocs,omitempty"`
	StreamSeconds  float64 `json:"stream_seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
	PeakRSSBytes   uint64  `json:"peak_rss_bytes"`
	BoundBytes     int64   `json:"bound_bytes,omitempty"`
	Bounded        bool    `json:"bounded"`
	MemorySeconds  float64 `json:"memory_seconds,omitempty"`
	StreamChecksum string  `json:"stream_checksum"`
	MemoryChecksum string  `json:"memory_checksum,omitempty"`
	Match          bool    `json:"match"`
	// fault-injection fields (stream-faults case only)
	CorruptBytes  int64   `json:"corrupt_bytes,omitempty"`
	Incidents     int     `json:"incidents,omitempty"`
	RecoveryRatio float64 `json:"recovery_ratio,omitempty"`
	// fingerprint fields (stream-fingerprint case only): throughput
	// relative to the same workload without the fingerprint stage.
	OverheadRatio float64 `json:"overhead_ratio,omitempty"`
	// service fields (tsyncd-1m case only): concurrent loopback
	// sessions against a resident tsyncd, each required to return the
	// stream-1m output bit for bit.
	Sessions       int     `json:"sessions,omitempty"`
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
	P99Seconds     float64 `json:"p99_seconds,omitempty"`
}

type report struct {
	Workers     int          `json:"workers"`
	NumCPU      int          `json:"num_cpu"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Reps        int          `json:"reps"`
	Ranks       int          `json:"ranks"`
	Threads     int          `json:"threads"`
	Regions     int          `json:"regions"`
	Scale       float64      `json:"scale"`
	Smoke       bool         `json:"smoke"`
	Cases       []benchCase  `json:"cases"`
	StreamCases []streamCase `json:"stream_cases"`
	AllMatch    bool         `json:"all_match"`
}

// timed runs f at a given worker bound and returns elapsed seconds plus
// the result checksum.
func timed(f func(workers int) (string, error), workers int) (float64, string, error) {
	start := time.Now()
	sum, err := f(workers)
	return time.Since(start).Seconds(), sum, err
}

func runCase(name string, workers int, f func(workers int) (string, error)) (benchCase, error) {
	serialSec, serialSum, err := timed(f, 1)
	if err != nil {
		return benchCase{}, fmt.Errorf("%s (workers=1): %w", name, err)
	}
	parSec, parSum, err := timed(f, workers)
	if err != nil {
		return benchCase{}, fmt.Errorf("%s (workers=%d): %w", name, workers, err)
	}
	c := benchCase{
		Name:             name,
		SerialSeconds:    serialSec,
		ParallelSeconds:  parSec,
		SerialChecksum:   serialSum,
		ParallelChecksum: parSum,
		Match:            serialSum == parSum,
	}
	if parSec > 0 {
		c.Speedup = serialSec / parSec
	}
	return c, nil
}

// heapWatch samples runtime.MemStats.HeapAlloc in the background and
// remembers the high-water mark.
type heapWatch struct {
	stop chan struct{}
	done chan uint64
}

func watchHeap() *heapWatch {
	w := &heapWatch{stop: make(chan struct{}), done: make(chan uint64, 1)}
	go func() {
		var peak uint64
		defer func() { w.done <- peak }()
		var ms runtime.MemStats
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-w.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return w
}

func (w *heapWatch) Peak() uint64 {
	close(w.stop)
	return <-w.done
}

// peakRSS reads the process high-water resident set (VmHWM) in bytes;
// zero where /proc is unavailable.
func peakRSS() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// synthToFile streams a synthetic trace into dir and returns the path
// with its offset tables.
func synthToFile(dir string, spec stream.SynthSpec) (string, []measure.Offset, []measure.Offset, error) {
	path := filepath.Join(dir, fmt.Sprintf("synth-%d.etr", spec.Seed))
	f, err := os.Create(path)
	if err != nil {
		return "", nil, nil, err
	}
	init, fin, err := stream.Synth(spec, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", nil, nil, err
	}
	return path, init, fin, nil
}

// runMetrics is what one streaming measurement produces.
type runMetrics struct {
	secs           float64
	peakHeap       uint64
	events         int64
	allocsPerEvent float64
	sum            string
}

// streamRun streams path through the pipeline into outPath, measuring
// wall clock, peak heap over a post-GC baseline, and heap allocations
// per event (runtime Mallocs delta over the run). It returns the output
// checksum (same digest as experiments.ChecksumTrace).
func streamRun(path, outPath string, p stream.Pipeline, init, fin []measure.Offset) (runMetrics, error) {
	var m runMetrics
	f, err := os.Open(path)
	if err != nil {
		return m, err
	}
	defer f.Close()
	src, err := stream.NewSource(f)
	if err != nil {
		return m, err
	}
	out, err := os.Create(outPath)
	if err != nil {
		return m, err
	}
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	watch := watchHeap()
	start := time.Now()
	_, err = p.Run(src, out, init, fin)
	m.secs = time.Since(start).Seconds()
	peak := watch.Peak()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return m, err
	}
	if peak > base.HeapAlloc {
		m.peakHeap = peak - base.HeapAlloc
	}
	m.events = src.Events()
	if m.events > 0 {
		m.allocsPerEvent = float64(end.Mallocs-base.Mallocs) / float64(m.events)
	}
	g, err := os.Open(outPath)
	if err != nil {
		return m, err
	}
	defer g.Close()
	m.sum, err = experiments.ChecksumTraceFile(g)
	return m, err
}

// memRun loads path into memory, runs the in-memory pipeline, and
// returns the wall clock and output checksum. The materialized traces go
// out of scope with the call, so the streaming measurement that follows
// starts from a small post-GC baseline.
func memRun(path string, init, fin []measure.Offset) (float64, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, "", err
	}
	tr, err := trace.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, "", err
	}
	start := time.Now()
	mem, err := (core.Pipeline{Base: core.BaseInterp, CLC: true, Parallel: true}).Run(tr, init, fin)
	secs := time.Since(start).Seconds()
	if err != nil {
		return 0, "", err
	}
	sum, err := experiments.ChecksumTrace(mem.Trace)
	return secs, sum, err
}

// runStreamDiff pits the streaming pipeline against the in-memory one on
// the same synthetic trace and demands equal output checksums.
func runStreamDiff(dir string, spec stream.SynthSpec, window int) (streamCase, error) {
	path, init, fin, err := synthToFile(dir, spec)
	if err != nil {
		return streamCase{}, err
	}
	memSecs, memSum, err := memRun(path, init, fin)
	if err != nil {
		return streamCase{}, err
	}

	p := stream.Pipeline{Base: core.BaseInterp, CLC: true, Options: stream.Options{Window: window}}
	m, err := streamRun(path, filepath.Join(dir, "diff-out.etr"), p, init, fin)
	if err != nil {
		return streamCase{}, err
	}
	c := streamCase{
		Name: "stream-diff", Events: m.events, Window: window, Batch: stream.DefaultBatch, Shards: 1,
		StreamSeconds: m.secs, MemorySeconds: memSecs,
		AllocsPerEvent: m.allocsPerEvent,
		PeakHeapBytes:  m.peakHeap, PeakRSSBytes: peakRSS(),
		StreamChecksum: m.sum, MemoryChecksum: memSum,
		Match: m.sum == memSum, Bounded: true,
	}
	if m.secs > 0 {
		c.EventsPerSec = float64(m.events) / m.secs
	}
	return c, nil
}

// runStreamBounded streams a large trace through the full pipeline at
// one slab size and requires peak heap to stay under a quarter of the
// events' in-memory footprint (~96 bytes each): memory bounded by the
// window, not the trace length.
func runStreamBounded(dir, name, path string, init, fin []measure.Offset, window, batch int) (streamCase, error) {
	p := stream.Pipeline{Base: core.BaseInterp, CLC: true, Options: stream.Options{Window: window, Batch: batch}}
	m, err := streamRun(path, filepath.Join(dir, name+"-out.etr"), p, init, fin)
	if err != nil {
		return streamCase{}, err
	}
	if batch == 0 {
		batch = stream.DefaultBatch
	}
	bound := m.events * 96 / 4
	c := streamCase{
		Name: name, Events: m.events, Window: window, Batch: batch, Shards: 1,
		StreamSeconds:  m.secs,
		AllocsPerEvent: m.allocsPerEvent,
		PeakHeapBytes:  m.peakHeap, PeakRSSBytes: peakRSS(),
		BoundBytes: bound, Bounded: int64(m.peakHeap) < bound,
		StreamChecksum: m.sum, Match: true,
	}
	if m.secs > 0 {
		c.EventsPerSec = float64(m.events) / m.secs
	}
	return c, nil
}

// runStreamFingerprint repeats the stream-1m workload with the drift
// fingerprint stage teed into the first walk. The stage is an observer:
// the output checksum must equal the baseline's, and throughput must
// stay at or above floor of the baseline's events/sec (the smoke floor
// is looser — single-rep CI timings are noisy).
func runStreamFingerprint(dir, path string, init, fin []measure.Offset, baseline streamCase, smoke bool) (streamCase, error) {
	p := stream.Pipeline{
		Base: core.BaseInterp, CLC: true,
		Fingerprint: &fingerprint.Options{},
	}
	floor := 0.9
	if smoke {
		floor = 0.5
	}
	// Single timings at this scale jitter by more than the stage's real
	// cost (~4% in steady state); keep the fastest of up to three runs
	// so the gate measures the stage, not the scheduler.
	var best runMetrics
	for attempt := 0; attempt < 3; attempt++ {
		m, err := streamRun(path, filepath.Join(dir, "fingerprint-out.etr"), p, init, fin)
		if err != nil {
			return streamCase{}, err
		}
		if attempt == 0 || m.secs < best.secs {
			best = m
		}
		if baseline.EventsPerSec > 0 && best.secs > 0 &&
			float64(best.events)/best.secs/baseline.EventsPerSec >= floor {
			break
		}
	}
	c := streamCase{
		Name: "stream-fingerprint", Events: best.events, Window: stream.DefaultWindow, Batch: stream.DefaultBatch, Shards: 1,
		StreamSeconds:  best.secs,
		AllocsPerEvent: best.allocsPerEvent,
		PeakHeapBytes:  best.peakHeap, PeakRSSBytes: peakRSS(),
		StreamChecksum: best.sum, Bounded: true,
	}
	if best.secs > 0 {
		c.EventsPerSec = float64(best.events) / best.secs
	}
	if baseline.EventsPerSec > 0 {
		c.OverheadRatio = c.EventsPerSec / baseline.EventsPerSec
	}
	c.Match = best.sum == baseline.StreamChecksum && c.OverheadRatio >= floor
	return c, nil
}

// censusRun walks path through a census-only streaming pass (the
// deterministic merge with the cheapest sink), measuring wall clock,
// peak heap over a post-GC baseline, and allocations per event. The
// census itself comes back for cross-configuration identity checks.
func censusRun(path string, opt stream.Options) (runMetrics, analysis.Census, error) {
	var m runMetrics
	f, err := os.Open(path)
	if err != nil {
		return m, analysis.Census{}, err
	}
	defer f.Close()
	src, err := stream.NewSource(f)
	if err != nil {
		return m, analysis.Census{}, err
	}
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	watch := watchHeap()
	start := time.Now()
	census, stats, err := stream.Census(src, opt)
	m.secs = time.Since(start).Seconds()
	peak := watch.Peak()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	if err != nil {
		return m, census, err
	}
	if peak > base.HeapAlloc {
		m.peakHeap = peak - base.HeapAlloc
	}
	m.events = stats.Events
	if m.events > 0 {
		m.allocsPerEvent = float64(end.Mallocs-base.Mallocs) / float64(m.events)
	}
	m.sum = fmt.Sprintf("census:%+v", census)
	return m, census, nil
}

// scaleCase assembles one census-run measurement into a report entry.
func scaleCase(name string, m runMetrics, shards int, bound int64) streamCase {
	c := streamCase{
		Name: name, Events: m.events, Window: stream.DefaultWindow,
		Batch: stream.DefaultBatch, Shards: shards,
		StreamSeconds:  m.secs,
		AllocsPerEvent: m.allocsPerEvent,
		PeakHeapBytes:  m.peakHeap, PeakRSSBytes: peakRSS(),
		BoundBytes: bound, Bounded: bound == 0 || int64(m.peakHeap) < bound,
		StreamChecksum: m.sum,
	}
	if m.secs > 0 {
		c.EventsPerSec = float64(m.events) / m.secs
	}
	return c
}

// runStreamScale exercises the two-level merge tree at topology scale.
// stream-10k merges a 10,000-rank trace through the sharded tree under
// a 96 KiB-per-open-rank heap budget (decode buffer, frame scratch,
// pooled slab share, and merge-window share — independent of the trace
// length); stream-10k-flat repeats the walk on the flat single-heap
// merge, whose per-rank decode-ahead slabs scale with the batch size
// and therefore blow that budget (recorded unbounded, for comparison —
// the case fails only if its census diverges from the tree's).
// stream-1b streams a billion-event trace (smoke: a million) through
// the tree with peak heap pinned to the topology's reorder window —
// ranks × window events — three orders of magnitude under what
// materializing the events would take.
func runStreamScale(dir string, smoke bool) ([]streamCase, error) {
	const seed = 0xbe9c14
	steps10k, ranks1b, steps1b := 250, 256, 976563 // 10M and 1.0B events
	if smoke {
		steps10k, steps1b = 25, 1000 // 1M and 1.0M events
	}
	spec10k := stream.SynthSpec{
		Ranks: 10000, Steps: steps10k, Seed: seed + 5,
		Version: trace.Version2, Columnar: true, FrameEvents: 64,
	}
	path, _, _, err := synthToFile(dir, spec10k)
	if err != nil {
		return nil, fmt.Errorf("stream-10k: %w", err)
	}
	mTree, cTree, err := censusRun(path, stream.Options{})
	if err != nil {
		return nil, fmt.Errorf("stream-10k: %w", err)
	}
	mFlat, cFlat, err := censusRun(path, stream.Options{Shards: 1})
	if err != nil {
		return nil, fmt.Errorf("stream-10k-flat: %w", err)
	}
	os.Remove(path)
	tree := scaleCase("stream-10k", mTree, stream.ShardCount(spec10k.Ranks, 0), int64(spec10k.Ranks)*(96<<10))
	flat := scaleCase("stream-10k-flat", mFlat, 1, 0)
	tree.Match = cTree == cFlat
	flat.Match = tree.Match

	spec1b := stream.SynthSpec{
		Ranks: ranks1b, Steps: steps1b, Seed: seed + 6,
		Version: trace.Version2, Columnar: true, FrameEvents: 64,
	}
	path, _, _, err = synthToFile(dir, spec1b)
	if err != nil {
		return nil, fmt.Errorf("stream-1b: %w", err)
	}
	m1b, _, err := censusRun(path, stream.Options{})
	if err != nil {
		return nil, fmt.Errorf("stream-1b: %w", err)
	}
	os.Remove(path)
	huge := scaleCase("stream-1b", m1b, stream.ShardCount(spec1b.Ranks, 0), int64(spec1b.Ranks)*int64(stream.DefaultWindow)*96)
	huge.Match = true
	return []streamCase{tree, flat, huge}, nil
}

// runStreamFaults streams a v2 trace corrupted by a fixed burst-fault
// mix through the salvage pipeline at workers 1 and 4, reporting the
// recovery ratio and demanding identical salvaged output checksums at
// both worker counts — fault recovery must be as deterministic as the
// clean path.
func runStreamFaults(spec stream.SynthSpec, totalEvents int64) (streamCase, error) {
	var buf bytes.Buffer
	if _, _, err := stream.Synth(spec, &buf); err != nil {
		return streamCase{}, err
	}
	data := buf.Bytes()
	const burstLen = 256
	corrupt := int64(len(data)) / 10000 // 0.01% of bytes
	bursts := int(corrupt / burstLen)
	if bursts < 2 {
		bursts = 2
	}
	flips := faultinject.NewBurstFlips(spec.Seed^0xfa017, int64(len(data)), bursts, burstLen)

	var c streamCase
	var sums [2]string
	for i, workers := range []int{1, 4} {
		r := &faultinject.ReaderAt{R: bytes.NewReader(data), F: flips}
		src, err := stream.NewSourceOpts(r, stream.SourceOptions{Salvage: true})
		if err != nil {
			return c, err
		}
		var out bytes.Buffer
		start := time.Now()
		_, err = (stream.Pipeline{
			Base: core.BaseNone, CLC: true,
			Options: stream.Options{Workers: workers, Salvage: true},
		}).Run(src, &out, nil, nil)
		secs := time.Since(start).Seconds()
		if err != nil {
			return c, err
		}
		sums[i], err = experiments.ChecksumTraceFile(bytes.NewReader(out.Bytes()))
		if err != nil {
			return c, err
		}
		if workers == 1 {
			c = streamCase{
				Name: "stream-faults", Events: src.Events(), Window: stream.DefaultWindow, Shards: 1,
				StreamSeconds: secs, StreamChecksum: sums[i], Bounded: true,
				CorruptBytes: int64(flips.Count()), Incidents: len(src.Report().Incidents),
				RecoveryRatio: float64(src.Events()) / float64(totalEvents),
			}
			if secs > 0 {
				c.EventsPerSec = float64(src.Events()) / secs
			}
		}
	}
	c.Match = sums[0] == sums[1] && c.RecoveryRatio >= 0.99
	return c, nil
}

// runReplay1M replays the interp-corrected 1M-event trace through the
// RepCl engine: the canonical (timestamp-order) replay plus three
// seeded ε-feasible interleavings at workers 1 and 4. Determinism is
// enforced the hard way — every interleaving's summary checksum must be
// bit-identical to the canonical order's, the canonical replay must be
// violation-free under the sound correction, and worker counts must not
// move a bit.
func runReplay1M(path string, init, fin []measure.Offset) (streamCase, error) {
	f, err := os.Open(path)
	if err != nil {
		return streamCase{}, err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return streamCase{}, err
	}
	corr, err := interp.Linear(init, fin)
	if err != nil {
		return streamCase{}, err
	}
	eng, err := replay.New(corr.Apply(tr), replay.Options{})
	if err != nil {
		return streamCase{}, err
	}
	canon, err := eng.Canonical()
	if err != nil {
		return streamCase{}, err
	}
	seeds := replay.Seeds(1, 3)
	match := canon.Counts.Total() == 0
	start := time.Now()
	var first []*replay.Result
	for _, workers := range []int{1, 4} {
		reps, err := eng.ReplaySeeds(seeds, workers)
		if err != nil {
			return streamCase{}, err
		}
		for i, r := range reps {
			match = match && r.Checksum == canon.Checksum && r.Counts.Total() == 0
			if first != nil {
				match = match && r.Checksum == first[i].Checksum && r.Counts == first[i].Counts
			}
		}
		if first == nil {
			first = reps
		}
	}
	secs := time.Since(start).Seconds()
	c := streamCase{
		Name: "replay-1m", Events: int64(canon.Events),
		StreamSeconds: secs, StreamChecksum: canon.Checksum,
		Bounded: true, Match: match,
	}
	if secs > 0 {
		// six replays of the full trace; report aggregate replay throughput
		c.EventsPerSec = float64(canon.Events) * 6 / secs
	}
	return c, nil
}

// runTsyncd1M pushes the stream-1m trace through a resident tsyncd
// server over loopback: a fixed number of concurrent sessions upload
// the trace, the service runs the identical interp+CLC pipeline, and
// every session's returned bytes must hash to the same digest as the
// direct streaming run (want). The case records aggregate event
// throughput, sessions per second, and the p99 session latency —
// concurrency must buy throughput without costing a single bit.
func runTsyncd1M(ctx context.Context, path string, init, fin []measure.Offset, want streamCase, smoke bool) (streamCase, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return streamCase{}, err
	}
	concurrent, sessions := 4, 8
	if smoke {
		concurrent, sessions = 2, 4
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return streamCase{}, err
	}
	srv := tsyncd.New(tsyncd.Config{MaxSessions: concurrent, MaxQueue: sessions})
	ctx, cancel := context.WithCancel(ctx)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln) }()

	h := tsyncd.Hello{
		Base: "interp", CLC: true, WantTrace: true, Init: init, Fin: fin,
	}
	type outcome struct {
		secs float64
		sum  string
		err  error
	}
	results := make([]outcome, sessions)
	sem := make(chan struct{}, concurrent)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cl := tsyncd.NewClient(tsyncd.ClientConfig{
				Addr: ln.Addr().String(), Seed: uint64(i + 1), Timeout: 5 * time.Minute,
			})
			var out bytes.Buffer
			var r outcome
			t0 := time.Now()
			_, err := cl.Sync(ctx, h, bytes.NewReader(data), &out)
			r.secs = time.Since(t0).Seconds()
			if err == nil {
				r.sum, err = experiments.ChecksumTraceFile(bytes.NewReader(out.Bytes()))
			}
			r.err = err
			results[i] = r //tsync:locked — wg: each goroutine owns slot i exclusively and wg.Wait happens-before the reads below
		}(i)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	cancel()
	if err := <-serveErr; err != nil {
		return streamCase{}, fmt.Errorf("serve: %w", err)
	}

	match := true
	lat := make([]float64, 0, sessions)
	for i, r := range results {
		if r.err != nil {
			return streamCase{}, fmt.Errorf("session %d: %w", i, r.err)
		}
		match = match && r.sum == want.StreamChecksum
		lat = append(lat, r.secs)
	}
	sort.Float64s(lat)
	c := streamCase{
		Name: "tsyncd-1m", Events: want.Events, Window: want.Window,
		Sessions: sessions, GoMaxProcs: concurrent,
		StreamSeconds:  secs,
		P99Seconds:     lat[(len(lat)*99+99)/100-1],
		StreamChecksum: results[0].sum, MemoryChecksum: want.StreamChecksum,
		Bounded: true, Match: match,
	}
	if secs > 0 {
		c.EventsPerSec = float64(want.Events) * float64(sessions) / secs
		c.SessionsPerSec = float64(sessions) / secs
	}
	return c, nil
}

func runStreamCases(smoke bool) ([]streamCase, error) {
	dir, err := os.MkdirTemp("", "tsync-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	const seed = 0xbe9c14
	diffSpec := stream.SynthSpec{Ranks: 6, Steps: 8000, CollEvery: 8, Seed: seed}
	bigSpec := stream.SynthSpec{Ranks: 8, Steps: 31250, CollEvery: 10, Seed: seed + 1}
	if smoke {
		diffSpec = stream.SynthSpec{Ranks: 4, Steps: 1500, CollEvery: 6, Seed: seed}
		bigSpec = stream.SynthSpec{Ranks: 4, Steps: 25000, CollEvery: 10, Seed: seed + 1}
	}
	diff, err := runStreamDiff(dir, diffSpec, 0)
	if err != nil {
		return nil, fmt.Errorf("stream-diff: %w", err)
	}
	bigPath, init, fin, err := synthToFile(dir, bigSpec)
	if err != nil {
		return nil, fmt.Errorf("stream-1m: %w", err)
	}
	big, err := runStreamBounded(dir, "stream-1m", bigPath, init, fin, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("stream-1m: %w", err)
	}
	// the same trace with one-event slabs: the legacy (unbatched)
	// configuration must produce byte-identical output
	legacy, err := runStreamBounded(dir, "stream-1m-batch1", bigPath, init, fin, 0, 1)
	if err != nil {
		return nil, fmt.Errorf("stream-1m-batch1: %w", err)
	}
	legacy.Match = legacy.StreamChecksum == big.StreamChecksum

	// the same trace again with the drift-fingerprint stage on: output
	// must be bit-identical and throughput within bounds
	fp, err := runStreamFingerprint(dir, bigPath, init, fin, big, smoke)
	if err != nil {
		return nil, fmt.Errorf("stream-fingerprint: %w", err)
	}

	// a fixed fault mix over the v2 framing: 0.01% of bytes corrupted in
	// bursts, salvaged deterministically at both worker counts
	faultSpec := stream.SynthSpec{Ranks: 4, Steps: 62500, Seed: seed + 2, Version: trace.Version2}
	if smoke {
		faultSpec.Steps = 12500
	}
	faultEvents := int64(faultSpec.Ranks) * int64(faultSpec.Steps) * 4
	faults, err := runStreamFaults(faultSpec, faultEvents)
	if err != nil {
		return nil, fmt.Errorf("stream-faults: %w", err)
	}

	// the 1M-event trace again through the RepCl replay engine: seeded
	// ε-feasible interleavings must reproduce the canonical checksum
	rep, err := runReplay1M(bigPath, init, fin)
	if err != nil {
		return nil, fmt.Errorf("replay-1m: %w", err)
	}

	// the 1M-event trace once more, served by a resident tsyncd over
	// loopback: concurrent sessions, each bit-identical to stream-1m
	svc, err := runTsyncd1M(context.Background(), bigPath, init, fin, big, smoke)
	if err != nil {
		return nil, fmt.Errorf("tsyncd-1m: %w", err)
	}
	cases := []streamCase{diff, big, legacy, fp, faults, rep, svc}

	// the merge tree at topology scale: 10k ranks under a per-rank heap
	// budget, and a billion events (smoke: a million) under the window
	// bound
	scale, err := runStreamScale(dir, smoke)
	if err != nil {
		return nil, err
	}
	return append(cases, scale...), nil
}

func main() {
	out := flag.String("o", "BENCH_PR10.json", "output JSON report path")
	workers := flag.Int("workers", 0, "parallel worker bound to compare against workers=1 (0 = all CPUs)")
	reps := flag.Int("reps", 3, "repetitions per driver (the paper used 3)")
	ranks := flag.Int("ranks", 16, "MPI ranks for the Fig. 7 runs")
	scale := flag.Float64("scale", 0.1, "workload scale for the Fig. 7 runs")
	threads := flag.Int("threads", 4, "OpenMP threads for the Fig. 8 runs")
	regions := flag.Int("regions", 50, "parallel regions for the Fig. 8 runs")
	smoke := flag.Bool("smoke", false, "CI smoke mode: 1 rep, tiny workloads")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file after the run")
	flag.Parse()

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	err = benchMain(*out, *workers, *reps, *ranks, *threads, *regions, *scale, *smoke)
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

func benchMain(out string, workers, reps, ranks, threads, regions int, scale float64, smoke bool) error {
	w := workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if smoke {
		reps = 1
		ranks = 8
		scale = 0.05
		regions = 10
	}

	const seed = 42
	m := topology.Xeon()

	rep := report{
		Workers:    w,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Ranks:      ranks,
		Threads:    threads,
		Regions:    regions,
		Scale:      scale,
		Smoke:      smoke,
		AllMatch:   true,
	}

	// the streaming cases run first, before the §V base trace is pinned
	// live in the heap, so their peak-memory figures are not polluted
	fmt.Fprintf(os.Stderr, "bench: streaming pipeline (diff + bounded-memory)...\n")
	streamCases, err := runStreamCases(smoke)
	if err != nil {
		return err
	}
	for _, sc := range streamCases {
		sc.GoMaxProcs = runtime.GOMAXPROCS(0)
		rep.StreamCases = append(rep.StreamCases, sc)
		rep.AllMatch = rep.AllMatch && sc.Match && sc.Bounded
		fmt.Fprintf(os.Stderr, "bench: %s: %d events in %.2fs (%.0f ev/s, %.2f allocs/ev), peak heap %.1f MiB, peak RSS %.1f MiB, match=%v bounded=%v\n",
			sc.Name, sc.Events, sc.StreamSeconds, sc.EventsPerSec, sc.AllocsPerEvent,
			float64(sc.PeakHeapBytes)/(1<<20), float64(sc.PeakRSSBytes)/(1<<20), sc.Match, sc.Bounded)
	}

	// §V needs a raw trace with its offset tables; trace it once up front
	// so the CompareCorrections case times only the correction fan-out.
	base, err := experiments.AppViolations(experiments.AppViolationsConfig{
		App: experiments.AppPOP, Machine: m, Timer: clock.TSC,
		Ranks: ranks, Reps: 1, Seed: seed, Scale: scale,
	})
	if err != nil {
		return fmt.Errorf("tracing §V input: %w", err)
	}

	cases := []struct {
		name string
		f    func(workers int) (string, error)
	}{
		{"fig7-pop-appviolations", func(workers int) (string, error) {
			res, err := experiments.AppViolations(experiments.AppViolationsConfig{
				App: experiments.AppPOP, Machine: m, Timer: clock.TSC,
				Ranks: ranks, Reps: reps, Seed: seed, Scale: scale,
				Workers: workers,
			})
			if err != nil {
				return "", err
			}
			return res.Checksum()
		}},
		{"fig8-ompstudy", func(workers int) (string, error) {
			res, err := experiments.OMPStudy(experiments.OMPStudyConfig{
				Machine: m, Timer: clock.TSC,
				Threads: threads, Regions: regions, Reps: reps,
				Seed: seed, Workers: workers,
			})
			if err != nil {
				return "", err
			}
			return res.Checksum()
		}},
		{"secV-comparecorrections", func(workers int) (string, error) {
			rows, err := experiments.CompareCorrections(
				base.RawTrace, base.InitOffsets, base.FinOffsets, workers)
			if err != nil {
				return "", err
			}
			return experiments.ChecksumMethods(rows), nil
		}},
	}

	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "bench: %s (workers 1 vs %d)...\n", c.name, w)
		bc, err := runCase(c.name, w, c.f)
		if err != nil {
			return err
		}
		rep.Cases = append(rep.Cases, bc)
		rep.AllMatch = rep.AllMatch && bc.Match
		fmt.Fprintf(os.Stderr, "bench: %s: %.2fs -> %.2fs (%.2fx), match=%v\n",
			bc.Name, bc.SerialSeconds, bc.ParallelSeconds, bc.Speedup, bc.Match)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", out)
	if !rep.AllMatch {
		return fmt.Errorf("FAIL: checksum mismatch or streaming memory bound exceeded")
	}
	return nil
}
