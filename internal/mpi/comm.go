package mpi

import (
	"fmt"
	"sort"

	"tsync/internal/trace"
)

// group is the execution context of one collective: a set of world ranks,
// this rank's position among them, and the communicator id used for trace
// records and tag-space separation. All collective algorithms operate over
// groups, so they work identically for the world communicator and for
// split sub-communicators.
type group struct {
	r       *Rank
	members []int // world ranks, in communicator-rank order
	vrank   int   // this rank's position in members
	comm    int32
}

// internalCommOf maps a communicator id to the reserved id its internal
// (untraced) collective traffic uses.
func internalCommOf(comm int32) int32 { return -(comm + 2) }

// collTag builds an internal tag unique to (instance, round).
func collTag(instance int32, round int) int {
	return int(instance)*64 + round
}

func (g group) size() int { return len(g.members) }

// post sends an internal message to the group member with virtual rank v.
func (g group) post(v, tag, bytes int, data any) {
	g.r.post(g.members[v], tag, internalCommOf(g.comm), bytes, data)
}

// recv blocks for an internal message from the member with virtual rank v.
func (g group) recv(v, tag int) Msg {
	return g.r.recvFrom(g.members[v], tag, internalCommOf(g.comm))
}

// recvAny blocks for an internal message from any member.
func (g group) recvAny(tag int) Msg {
	return g.r.recvFrom(AnySource, tag, internalCommOf(g.comm))
}

// vrankOf translates a world rank to the virtual rank within the group
// (-1 if not a member).
func (g group) vrankOf(world int) int {
	for v, m := range g.members {
		if m == world {
			return v
		}
	}
	return -1
}

// disseminate runs the dissemination pattern (Hensgen/Finkel/Manber): in
// round k every member sends to (v+2^k) mod N and receives from
// (v-2^k) mod N — the synchronization core of Barrier and the N-to-N
// collectives.
func (g group) disseminate(instance int32, bytes int) {
	n := g.size()
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		g.r.proc.Sleep(roundOverhead)
		g.post((g.vrank+k)%n, collTag(instance, round), bytes, nil)
		g.recv((g.vrank-k+n)%n, collTag(instance, round))
	}
}

// bcastTree sends data down a binomial tree rooted at virtual rank root.
func (g group) bcastTree(instance int32, root, bytes int, data any, baseRound int) any {
	n := g.size()
	vrank := (g.vrank - root + n) % n
	if vrank != 0 {
		parent := vrank & (vrank - 1) // clear lowest set bit
		m := g.recv((parent+root)%n, collTag(instance, baseRound))
		data = m.Data
	}
	for k := 1; k < n; k <<= 1 {
		if vrank&(k-1) != 0 || vrank&k != 0 {
			continue
		}
		child := vrank + k
		if child >= n {
			break
		}
		g.post((child+root)%n, collTag(instance, baseRound), bytes, data)
	}
	return data
}

// reduceTree gathers up a binomial tree to virtual rank root.
func (g group) reduceTree(instance int32, root, bytes int, data any, combine func(a, b any) any, baseRound int) any {
	n := g.size()
	vrank := (g.vrank - root + n) % n
	acc := data
	for k := 1; k < n; k <<= 1 {
		if vrank&(k-1) != 0 {
			break
		}
		if vrank&k != 0 {
			parent := vrank &^ k
			g.post((parent+root)%n, collTag(instance, baseRound), bytes, acc)
			return acc
		}
		child := vrank + k
		if child >= n {
			continue
		}
		m := g.recv((child+root)%n, collTag(instance, baseRound))
		if combine != nil {
			acc = combine(acc, m.Data)
		}
	}
	return acc
}

// Barrier blocks until all group members have entered it.
func (g group) Barrier() {
	inst := g.r.nextInstance(g.comm)
	g.r.beginColl(trace.OpBarrier, g.comm, inst, 0, -1)
	if g.size() > 1 {
		g.disseminate(inst, 0)
	}
	g.r.endColl(trace.OpBarrier, g.comm, inst, 0, -1)
}

// Bcast broadcasts from the member with virtual rank root.
func (g group) Bcast(root, bytes int, data any) any {
	inst := g.r.nextInstance(g.comm)
	g.r.beginColl(trace.OpBcast, g.comm, inst, bytes, g.members[root])
	out := data
	if g.size() > 1 {
		out = g.bcastTree(inst, root, bytes, data, 0)
	}
	g.r.endColl(trace.OpBcast, g.comm, inst, bytes, g.members[root])
	return out
}

// Reduce combines toward the member with virtual rank root.
func (g group) Reduce(root, bytes int, data any, combine func(a, b any) any) any {
	inst := g.r.nextInstance(g.comm)
	g.r.beginColl(trace.OpReduce, g.comm, inst, bytes, g.members[root])
	out := data
	if g.size() > 1 {
		out = g.reduceTree(inst, root, bytes, data, combine, 0)
	}
	g.r.endColl(trace.OpReduce, g.comm, inst, bytes, g.members[root])
	return out
}

// Allreduce combines across the group (recursive doubling for powers of
// two, reduce+bcast otherwise).
func (g group) Allreduce(bytes int, data any, combine func(a, b any) any) any {
	inst := g.r.nextInstance(g.comm)
	g.r.beginColl(trace.OpAllreduce, g.comm, inst, bytes, -1)
	out := data
	n := g.size()
	switch {
	case n == 1:
	case n&(n-1) == 0:
		for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
			partner := g.vrank ^ k
			g.r.proc.Sleep(roundOverhead)
			g.post(partner, collTag(inst, round), bytes, out)
			m := g.recv(partner, collTag(inst, round))
			if combine != nil {
				out = combine(out, m.Data)
			}
		}
	default:
		out = g.reduceTree(inst, 0, bytes, data, combine, 0)
		out = g.bcastTree(inst, 0, bytes, out, 32)
	}
	g.r.endColl(trace.OpAllreduce, g.comm, inst, bytes, -1)
	return out
}

// Gather collects every member's data at the member with virtual rank
// root; the root returns a slice indexed by virtual rank.
func (g group) Gather(root, bytes int, data any) []any {
	inst := g.r.nextInstance(g.comm)
	g.r.beginColl(trace.OpGather, g.comm, inst, bytes, g.members[root])
	var out []any
	n := g.size()
	if n == 1 {
		out = []any{data}
	} else if g.vrank == root {
		out = make([]any, n)
		out[root] = data
		for i := 0; i < n-1; i++ {
			m := g.recvAny(collTag(inst, 0))
			out[g.vrankOf(m.Source)] = m.Data
		}
	} else {
		g.post(root, collTag(inst, 0), bytes, data)
	}
	g.r.endColl(trace.OpGather, g.comm, inst, bytes, g.members[root])
	return out
}

// Scatter distributes per-member data from the member with virtual rank
// root.
func (g group) Scatter(root, bytes int, pieces []any) any {
	inst := g.r.nextInstance(g.comm)
	g.r.beginColl(trace.OpScatter, g.comm, inst, bytes, g.members[root])
	var out any
	n := g.size()
	if n == 1 {
		if len(pieces) > 0 {
			out = pieces[0]
		}
	} else if g.vrank == root {
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			var d any
			if i < len(pieces) {
				d = pieces[i]
			}
			g.post(i, collTag(inst, 0), bytes, d)
		}
		if root < len(pieces) {
			out = pieces[root]
		}
	} else {
		m := g.recv(root, collTag(inst, 0))
		out = m.Data
	}
	g.r.endColl(trace.OpScatter, g.comm, inst, bytes, g.members[root])
	return out
}

// Allgather distributes every member's data to all members (dissemination
// timing; payloads synthetic).
func (g group) Allgather(bytes int) {
	inst := g.r.nextInstance(g.comm)
	g.r.beginColl(trace.OpAllgather, g.comm, inst, bytes, -1)
	if g.size() > 1 {
		g.disseminate(inst, bytes)
	}
	g.r.endColl(trace.OpAllgather, g.comm, inst, bytes, -1)
}

// Alltoall exchanges bytes between every member pair (pairwise rounds).
func (g group) Alltoall(bytes int) {
	inst := g.r.nextInstance(g.comm)
	g.r.beginColl(trace.OpAlltoall, g.comm, inst, bytes, -1)
	n := g.size()
	for round := 1; round < n; round++ {
		g.r.proc.Sleep(roundOverhead)
		g.post((g.vrank+round)%n, collTag(inst, round), bytes, nil)
		g.recv((g.vrank-round+n)%n, collTag(inst, round))
	}
	g.r.endColl(trace.OpAlltoall, g.comm, inst, bytes, -1)
}

// Scan computes an inclusive prefix reduction over the group.
func (g group) Scan(bytes int, data any, combine func(a, b any) any) any {
	inst := g.r.nextInstance(g.comm)
	g.r.beginColl(trace.OpAllreduce, g.comm, inst, bytes, -1)
	acc := data
	n := g.size()
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		g.r.proc.Sleep(roundOverhead)
		if peer := g.vrank + k; peer < n {
			g.post(peer, collTag(inst, round), bytes, acc)
		}
		if peer := g.vrank - k; peer >= 0 {
			m := g.recv(peer, collTag(inst, round))
			if combine != nil {
				acc = combine(m.Data, acc)
			}
		}
	}
	g.r.endColl(trace.OpAllreduce, g.comm, inst, bytes, -1)
	return acc
}

// Comm is a communicator: an ordered subset of world ranks with its own
// rank numbering, tag space and collective context — the MPI_Comm_split
// idiom grid codes use for row/column communication.
type Comm struct {
	g group
}

// CommWorld returns this rank's view of the world communicator.
func (r *Rank) CommWorld() *Comm {
	return &Comm{g: r.worldGroup()}
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.g.vrank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.g.size() }

// ID returns the communicator id recorded in trace events.
func (c *Comm) ID() int32 { return c.g.comm }

// WorldRank translates a communicator rank to the world rank.
func (c *Comm) WorldRank(rank int) int { return c.g.members[rank] }

// splitEntry carries one member's split arguments.
type splitEntry struct {
	World, Color, Key int
}

// Split partitions the communicator like MPI_Comm_split: members with the
// same color form a new communicator, ordered by (key, world rank).
// Members passing a negative color receive nil (MPI_UNDEFINED). Every
// member must call Split collectively.
func (c *Comm) Split(color, key int) *Comm {
	r := c.g.r
	// allgather the (color, key) table via gather+bcast on this comm
	me := splitEntry{World: r.rank, Color: color, Key: key}
	gathered := c.g.Gather(0, 16, me)
	table, _ := c.g.Bcast(0, 16*c.Size(), gathered).([]any)
	entries := make([]splitEntry, 0, len(table))
	for _, raw := range table {
		e, ok := raw.(splitEntry)
		if !ok {
			panic(fmt.Sprintf("mpi: Split gathered %T", raw))
		}
		entries = append(entries, e)
	}
	if color < 0 {
		return nil
	}
	var members []splitEntry
	for _, e := range entries {
		if e.Color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].World < members[j].World
	})
	worldRanks := make([]int, len(members))
	vrank := -1
	for i, e := range members {
		worldRanks[i] = e.World
		if e.World == r.rank {
			vrank = i
		}
	}
	// deterministic global id: every member derives the same value from
	// the parent id, this rank's per-parent split counter, and the color
	seq := r.splitSeq[c.g.comm]
	r.splitSeq[c.g.comm] = seq + 1
	id := (c.g.comm+1)*1000 + int32(seq)*64 + int32(color%64) + 1
	return &Comm{g: group{r: r, members: worldRanks, vrank: vrank, comm: id}}
}

// Send transmits a message to a communicator rank (traced like Rank.Send,
// with the communicator's id and the destination's world rank recorded).
func (c *Comm) Send(dst, tag, bytes int, data any) {
	r := c.g.r
	world := c.g.members[dst]
	if world == r.rank {
		panic(fmt.Sprintf("mpi: comm %d: Send to self", c.g.comm))
	}
	traced := r.tracing
	if traced {
		r.EnterRegion("MPI_Send")
		r.record(trace.Event{Kind: trace.Send, Partner: int32(world), Tag: int32(tag),
			Bytes: int32(bytes), Comm: c.g.comm, Region: -1, Root: -1})
	}
	if bytes > eagerLimit {
		r.rendezvous(world, tag, c.g.comm, bytes, data)
	} else {
		r.post(world, tag, c.g.comm, bytes, data)
	}
	if traced {
		r.ExitRegion("MPI_Send")
	}
}

// Recv blocks for a message from a communicator rank (or AnySource).
// The returned Msg's Source is the communicator rank of the sender.
func (c *Comm) Recv(src, tag int) Msg {
	r := c.g.r
	world := src
	if src != AnySource {
		world = c.g.members[src]
	}
	traced := r.tracing
	if traced {
		r.EnterRegion("MPI_Recv")
	}
	m := r.recvFrom(world, tag, c.g.comm)
	if traced {
		r.record(trace.Event{Kind: trace.Recv, Partner: int32(m.Source), Tag: int32(m.Tag),
			Bytes: int32(m.Bytes), Comm: c.g.comm, Region: -1, Root: -1})
		r.ExitRegion("MPI_Recv")
	}
	m.Source = c.g.vrankOf(m.Source)
	return m
}

// Barrier blocks until all communicator members entered it.
func (c *Comm) Barrier() { c.g.Barrier() }

// Bcast broadcasts from the communicator rank root.
func (c *Comm) Bcast(root, bytes int, data any) any { return c.g.Bcast(root, bytes, data) }

// Reduce combines toward the communicator rank root.
func (c *Comm) Reduce(root, bytes int, data any, combine func(a, b any) any) any {
	return c.g.Reduce(root, bytes, data, combine)
}

// Allreduce combines across the communicator.
func (c *Comm) Allreduce(bytes int, data any, combine func(a, b any) any) any {
	return c.g.Allreduce(bytes, data, combine)
}

// Gather collects at the communicator rank root.
func (c *Comm) Gather(root, bytes int, data any) []any { return c.g.Gather(root, bytes, data) }

// Scatter distributes from the communicator rank root.
func (c *Comm) Scatter(root, bytes int, pieces []any) any { return c.g.Scatter(root, bytes, pieces) }

// Allgather distributes every member's data to all members.
func (c *Comm) Allgather(bytes int) { c.g.Allgather(bytes) }

// Alltoall exchanges between every member pair.
func (c *Comm) Alltoall(bytes int) { c.g.Alltoall(bytes) }

// Scan computes an inclusive prefix over the communicator.
func (c *Comm) Scan(bytes int, data any, combine func(a, b any) any) any {
	return c.g.Scan(bytes, data, combine)
}
