package interp

// Tests for the monotone-cursor mapper: it must agree with
// Correction.Map bit-for-bit on every input sequence — monotone,
// regressing, repeated, or out of range — and must not allocate in
// steady state.

import (
	"math"
	"testing"

	"tsync/internal/measure"
	"tsync/internal/stats"
	"tsync/internal/xrand"
)

// cursorCorrections builds a spread of correction shapes: single piece,
// many pieces, identity, and a dense piecewise map with discontinuities.
func cursorCorrections(t *testing.T) map[string]*Correction {
	t.Helper()
	out := map[string]*Correction{}

	init := offsetTable([2]float64{0, 0}, [2]float64{0, 1e-3}, [2]float64{0, -2e-3})
	fin := offsetTable([2]float64{1000, 0}, [2]float64{1000, 3e-3}, [2]float64{1000, 5e-4})
	lin, err := Linear(init, fin)
	if err != nil {
		t.Fatal(err)
	}
	out["linear"] = lin

	align, err := AlignOnly(init)
	if err != nil {
		t.Fatal(err)
	}
	out["align"] = align

	tables := make([][]measure.Offset, 9)
	for k := range tables {
		w := float64(k) * 125
		tables[k] = offsetTable(
			[2]float64{w, 0},
			[2]float64{w, 1e-4 * float64(k*k)},
			[2]float64{w, -3e-4 * float64(k)},
		)
	}
	pw, err := Piecewise(tables...)
	if err != nil {
		t.Fatal(err)
	}
	out["piecewise"] = pw

	// Discontinuous pieces: each window has an unrelated affine map, so
	// landing on the wrong piece changes the result by a lot.
	knots := []float64{0, 10, 20, 30, 40, 50}
	perRank := make([][]stats.Line, 3)
	for r := range perRank {
		lines := make([]stats.Line, len(knots))
		for i := range lines {
			lines[i] = stats.Line{Slope: 1 + 0.01*float64(i*r), Intercept: float64(100*i - 7*r)}
		}
		perRank[r] = lines
	}
	disc, err := FromPiecewiseLines(knots, perRank)
	if err != nil {
		t.Fatal(err)
	}
	out["discontinuous"] = disc

	out["identity"] = Identity(3)
	return out
}

// TestCursorMatchesMapMonotone feeds nondecreasing times per rank — the
// streaming merge's access pattern — and requires bit equality with Map.
func TestCursorMatchesMapMonotone(t *testing.T) {
	for name, c := range cursorCorrections(t) {
		t.Run(name, func(t *testing.T) {
			rng := xrand.NewSource(11)
			cur := c.NewCursor()
			ts := make([]float64, c.Ranks())
			for i := range ts {
				ts[i] = -50
			}
			for i := 0; i < 5000; i++ {
				r := rng.Intn(c.Ranks())
				ts[r] += rng.Uniform(0, 2) // includes zero-step repeats
				want := c.Map(r, ts[r])
				got := cur.Map(r, ts[r])
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("step %d rank %d t=%v: cursor %v, Map %v", i, r, ts[r], got, want)
				}
			}
		})
	}
}

// TestCursorMatchesMapArbitrary feeds arbitrary (regressing) times; the
// cursor must fall back to the exact search and still match Map.
func TestCursorMatchesMapArbitrary(t *testing.T) {
	for name, c := range cursorCorrections(t) {
		t.Run(name, func(t *testing.T) {
			rng := xrand.NewSource(23)
			cur := c.NewCursor()
			for i := 0; i < 5000; i++ {
				r := rng.Intn(c.Ranks())
				tt := rng.Uniform(-200, 1400)
				want := c.Map(r, tt)
				got := cur.Map(r, tt)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("step %d rank %d t=%v: cursor %v, Map %v", i, r, tt, got, want)
				}
			}
		})
	}
}

// TestCursorKnotBoundaries hits every knot exactly, plus the adjacent
// representable floats, where picking the wrong piece is most likely.
func TestCursorKnotBoundaries(t *testing.T) {
	c := cursorCorrections(t)["discontinuous"]
	cur := c.NewCursor()
	for r := 0; r < c.Ranks(); r++ {
		for _, k := range []float64{0, 10, 20, 30, 40, 50} {
			for _, tt := range []float64{math.Nextafter(k, -1e9), k, math.Nextafter(k, 1e9)} {
				want := c.Map(r, tt)
				if got := cur.Map(r, tt); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("rank %d t=%v: cursor %v, Map %v", r, tt, got, want)
				}
			}
		}
	}
}

// TestCursorOutOfRange mirrors Map's out-of-range behavior: unknown
// ranks pass times through unchanged.
func TestCursorOutOfRange(t *testing.T) {
	c := Identity(2)
	cur := c.NewCursor()
	for _, r := range []int{-1, 2, 100} {
		if got := cur.Map(r, 3.5); got != 3.5 {
			t.Fatalf("Map(%d, 3.5) = %v, want 3.5", r, got)
		}
	}
}

// TestCursorEmptyRank mirrors Map on a rank with no pieces (a correction
// that covers the rank but never measured it): times pass through.
func TestCursorEmptyRank(t *testing.T) {
	c := &Correction{perRank: make([]pieces, 2)}
	cur := c.NewCursor()
	for _, tt := range []float64{-1, 0, 3.5} {
		if got := cur.Map(1, tt); got != tt {
			t.Fatalf("Map(1, %v) = %v, want pass-through", tt, got)
		}
		if got := c.Map(1, tt); got != tt {
			t.Fatalf("Correction.Map(1, %v) = %v, want pass-through", tt, got)
		}
	}
}

// TestConstructorErrors covers the table-shape rejections shared by the
// cursor's underlying corrections.
func TestConstructorErrors(t *testing.T) {
	if _, err := AlignOnly(nil); err == nil {
		t.Error("AlignOnly(nil): want error")
	}
	good := offsetTable([2]float64{0, 0}, [2]float64{0, 1e-3})
	bad := offsetTable([2]float64{10, 0}, [2]float64{10, 2e-3})
	bad[1].Rank = 5
	if _, err := Piecewise(good, bad); err == nil {
		t.Error("Piecewise with mislabeled rank: want error")
	}
}

// TestCursorAllocs pins the mapper hot path to zero allocations.
func TestCursorAllocs(t *testing.T) {
	c := cursorCorrections(t)["piecewise"]
	cur := c.NewCursor()
	tt := 0.0
	if avg := testing.AllocsPerRun(5000, func() {
		tt += 0.25
		cur.Map(1, tt)
	}); avg != 0 {
		t.Errorf("MonotoneCursor.Map allocates %.2f per call, want 0", avg)
	}
}
