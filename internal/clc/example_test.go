package clc_test

import (
	"fmt"

	"tsync/internal/clc"
	"tsync/internal/topology"
	"tsync/internal/trace"
)

// ExampleCorrect shows the controlled logical clock repairing a message
// whose receive was timestamped before its send (a clock-condition
// violation) while leaving the sender untouched.
func ExampleCorrect() {
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0, 0, 4e-6} // 4 µs inter-node l_min
	tr.Procs = []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.Send, Time: 1.000000, True: 1.0, Partner: 1, Region: -1, Root: -1},
		}},
		{Rank: 1, Core: topology.CoreID{Node: 1}, Events: []trace.Event{
			// received "before" it was sent: the receiver's clock is slow
			{Kind: trace.Recv, Time: 0.999990, True: 1.000005, Partner: 0, Region: -1, Root: -1},
		}},
	}
	fixed, report, err := clc.Correct(tr, clc.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("violations: %d -> %d\n", report.ViolationsBefore, report.ViolationsAfter)
	fmt.Printf("receive moved to %.6f (send + l_min)\n", fixed.Procs[1].Events[0].Time)
	// Output:
	// violations: 1 -> 0
	// receive moved to 1.000004 (send + l_min)
}
