package replay_test

// Hand-built degradation cases for the tolerant graph build: collective
// instances with mixed ops, duplicate begin/end records, and one-sided
// instances (the shapes salvage leaves behind when a burst takes out
// part of a collective round) must degrade to counted dropped edges,
// and the surviving graph must still replay consistently.

import (
	"testing"

	"tsync/internal/replay"
	"tsync/internal/stream"
	"tsync/internal/trace"
)

// brokenCollectiveTrace: instance 0 is a healthy barrier on all three
// ranks; instance 1 mixes ops (rank 1's records pretend it was a
// reduce); instance 2 exists only as rank 2's end (begin lost); rank 2
// also logs a duplicate begin for instance 3.
func brokenCollectiveTrace() *trace.Trace {
	coll := func(kind trace.Kind, tm float64, op trace.CollOp, inst int32) trace.Event {
		return trace.Event{Kind: kind, Time: tm, True: tm, Op: op, Instance: inst, Partner: -1}
	}
	return &trace.Trace{Procs: []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			coll(trace.CollBegin, 1.0, trace.OpBarrier, 0),
			coll(trace.CollEnd, 2.0, trace.OpBarrier, 0),
			coll(trace.CollBegin, 6.1, trace.OpBarrier, 3),
			coll(trace.CollEnd, 7.1, trace.OpBarrier, 3),
		}},
		{Rank: 1, Events: []trace.Event{
			coll(trace.CollBegin, 1.1, trace.OpBarrier, 0),
			coll(trace.CollEnd, 2.1, trace.OpBarrier, 0),
			coll(trace.CollBegin, 3.1, trace.OpReduce, 1), // op mismatch vs rank 2's barrier record
			coll(trace.CollEnd, 4.1, trace.OpReduce, 1),
		}},
		{Rank: 2, Events: []trace.Event{
			coll(trace.CollBegin, 1.2, trace.OpBarrier, 0),
			coll(trace.CollEnd, 2.2, trace.OpBarrier, 0),
			coll(trace.CollBegin, 3.0, trace.OpBarrier, 1),
			coll(trace.CollEnd, 4.2, trace.OpBarrier, 1),
			coll(trace.CollEnd, 5.0, trace.OpBarrier, 2), // begin lost to corruption
			coll(trace.CollBegin, 6.0, trace.OpBarrier, 3),
			coll(trace.CollBegin, 6.5, trace.OpBarrier, 3), // duplicate record
			coll(trace.CollEnd, 7.0, trace.OpBarrier, 3),
		}},
	}}
}

func TestTolerantCollectiveDegradation(t *testing.T) {
	tr := brokenCollectiveTrace()

	if _, err := replay.New(tr, replay.Options{}); err == nil {
		t.Fatal("strict engine accepted mixed-op collectives")
	}

	eng, err := replay.New(tr, replay.Options{Tolerant: true})
	if err != nil {
		t.Fatalf("tolerant engine: %v", err)
	}
	// rank 1's two mismatched records and rank 2's duplicate begin must
	// all be dropped
	if eng.DroppedEdges() < 3 {
		t.Fatalf("dropped %d edges, want >= 3", eng.DroppedEdges())
	}
	if eng.SkewClamps() != 0 {
		t.Fatalf("synchronized hand-built trace produced %d ε clamps", eng.SkewClamps())
	}
	if got := eng.Stamps(); len(got) != 3 || len(got[2]) != 8 {
		t.Fatalf("stamps shape wrong: %d ranks", len(got))
	}
	canon, err := eng.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !canon.Partial || canon.Counts.HB() != 0 {
		t.Fatalf("surviving graph should replay cleanly but partially: %+v", canon)
	}
	rep, err := eng.Replay(42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checksum != canon.Checksum || rep.Counts.HB() != 0 {
		t.Fatalf("tolerant replay diverged: %+v vs %+v", rep, canon)
	}
}

func TestNewRejectsNilTrace(t *testing.T) {
	if _, err := replay.New(nil, replay.Options{}); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := replay.Score(nil, nil, nil, replay.ScoreConfig{}); err == nil {
		t.Fatal("Score accepted nil trace")
	}
}

// TestScorePartialFailures: methods that need the offset sidecar fail
// row-by-row when it is absent; the others still score.
func TestScorePartialFailures(t *testing.T) {
	tr, _, _ := synthTrace(t, stream.SynthSpec{Ranks: 3, Steps: 40, CollEvery: 4, Seed: 0x77})
	scores, err := replay.Score(tr, nil, nil, replay.ScoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]error{}
	for _, s := range scores {
		got[s.Method] = s.Err
	}
	for _, m := range []string{"align", "interp"} {
		if got[m] == nil {
			t.Errorf("method %s scored without offset tables", m)
		}
	}
	for _, m := range []string{"none", "errest-minmax", "autoknots"} {
		if e, ok := got[m]; !ok || e != nil {
			t.Errorf("method %s should not need offset tables: %v", m, e)
		}
	}
}
