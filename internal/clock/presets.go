package clock

import (
	"fmt"

	"tsync/internal/xrand"
)

// Kind enumerates the timer technologies evaluated in the paper
// (Sections II and IV).
type Kind int

const (
	// TSC is Intel's timestamp counter register (Xeon, Itanium ITC):
	// a free-running per-chip hardware counter with approximately
	// constant drift plus slow wander.
	TSC Kind = iota
	// TB is IBM's time base register (PowerPC 970MP).
	TB
	// RTC is IBM's real-time clock register (seconds + nanoseconds).
	RTC
	// Gettimeofday is the system clock under NTP discipline.
	Gettimeofday
	// MPIWtime is Open MPI's MPI_Wtime, which defaults to
	// gettimeofday plus wrapper overhead.
	MPIWtime
	// CycleCounter is a raw CPU-cycle counter subject to dynamic
	// frequency scaling; unusable across chips, included for the
	// Section II taxonomy.
	CycleCounter
	// GlobalHW is a globally accessible hardware clock in the style of
	// IBM Blue Gene/P: drift-free by construction but with a network
	// access cost. Used as an ablation baseline.
	GlobalHW
)

// String returns the conventional name of the timer.
func (k Kind) String() string {
	switch k {
	case TSC:
		return "TSC"
	case TB:
		return "TB"
	case RTC:
		return "RTC"
	case Gettimeofday:
		return "gettimeofday"
	case MPIWtime:
		return "MPI_Wtime"
	case CycleCounter:
		return "cycle-counter"
	case GlobalHW:
		return "global-hw"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a command-line spelling onto a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "tsc", "TSC":
		return TSC, nil
	case "tb", "TB":
		return TB, nil
	case "rtc", "RTC":
		return RTC, nil
	case "gtod", "gettimeofday":
		return Gettimeofday, nil
	case "mpiwtime", "MPI_Wtime", "wtime":
		return MPIWtime, nil
	case "cycle", "cycle-counter":
		return CycleCounter, nil
	case "global", "global-hw":
		return GlobalHW, nil
	}
	return 0, fmt.Errorf("clock: unknown timer kind %q", s)
}

// Preset bundles the calibrated parameters of one timer technology on one
// machine family. The constants are chosen so that simulated magnitudes
// match what the paper reports (see DESIGN.md §5 and EXPERIMENTS.md):
// software clocks diverge by >100 µs within minutes with abrupt NTP slope
// changes, hardware counters stay near-linear with tens-of-µs wander per
// hour, and co-located clocks disagree by ~0.1 µs noise.
type Preset struct {
	Kind Kind
	// oscillator
	BaseDriftSigma float64 // per-oscillator intrinsic drift ~ N(0, sigma)
	WanderStep     float64 // random-walk rate step per WanderInterval
	WanderInterval float64
	NTP            bool // discipline the oscillator with an NTP PLL
	PowerLevels    []float64
	PowerDwell     float64
	// reader
	Resolution     float64
	ReadNoise      float64
	Overhead       float64
	OverheadJitter float64
	JitterProb     float64
	JitterMean     float64
	Monotonic      bool
	// topology guidance (consumed by internal/topology)
	PerChip       bool    // oscillator per chip (true) or per node (false)
	NodeOffsetMax float64 // initial offset spread across nodes (s)
	ChipOffsetMax float64 // additional offset spread across chips of a node (s)
}

// PresetFor returns the calibrated preset for a timer kind on the given
// machine family ("xeon", "ppc", "opteron", "itanium"). Unknown families
// fall back to the Xeon calibration; kinds not natively present on a family
// (e.g. TB on Xeon) still build, because the study deliberately compares
// timer technologies across systems.
func PresetFor(kind Kind, family string) Preset {
	p := Preset{
		Kind:          kind,
		PerChip:       true,
		NodeOffsetMax: 5.0,    // boot-time skew across nodes, seconds scale
		ChipOffsetMax: 1.2e-6, // chips of one node agree to ~a microsecond
	}
	switch kind {
	case TSC:
		p.BaseDriftSigma = 15e-6 // ±tens of ppm crystal tolerance
		p.WanderStep = 3.0e-9
		p.WanderInterval = 10
		p.Resolution = 1.0 / 3.0e9 // 3.0 GHz Xeon
		p.ReadNoise = 2e-9
		p.Overhead = 35e-9
		p.OverheadJitter = 6e-9
		p.JitterProb = 2e-4
		p.JitterMean = 30e-6
		p.Monotonic = true
		if family == "itanium" {
			// the ITC on the 4-chip Itanium node: same physics,
			// 1.6 GHz step size; each chip has its own oscillator,
			// which is what makes the Fig. 8 violations possible
			p.Resolution = 1.0 / 1.6e9
			p.ChipOffsetMax = 1.0e-6
		} else {
			// Xeon-era boards clock all sockets from one crystal, so
			// TSCs of co-located chips stay synchronized — the paper
			// measured only ±0.1 µs noise within a node (end of §IV)
			p.PerChip = false
			p.ChipOffsetMax = 0
		}
	case TB:
		p.BaseDriftSigma = 20e-6
		p.WanderStep = 3.4e-9 // slightly busier wander than TSC (Fig. 5b)
		p.WanderInterval = 10
		p.Resolution = 1.0 / 14.3e6 // PowerPC timebase tick
		p.ReadNoise = 10e-9
		p.Overhead = 50e-9
		p.OverheadJitter = 10e-9
		p.JitterProb = 2e-4
		p.JitterMean = 30e-6
		p.Monotonic = true
	case RTC:
		p.BaseDriftSigma = 20e-6
		p.WanderStep = 3.2e-9
		p.WanderInterval = 10
		p.Resolution = 1e-9
		p.ReadNoise = 10e-9
		p.Overhead = 60e-9
		p.OverheadJitter = 12e-9
		p.JitterProb = 2e-4
		p.JitterMean = 30e-6
		p.Monotonic = true
	case Gettimeofday, MPIWtime:
		p.BaseDriftSigma = 25e-6
		p.NTP = true
		p.WanderStep = 5e-11 // residual wander on top of the discipline
		p.WanderInterval = 10
		p.Resolution = 1e-6
		p.ReadNoise = 5e-8
		p.Overhead = 6e-8
		p.OverheadJitter = 2e-8
		p.JitterProb = 5e-4
		p.JitterMean = 40e-6
		p.Monotonic = true
		p.PerChip = false // the system clock is per node
		p.NodeOffsetMax = 2e-3
		p.ChipOffsetMax = 0
		if kind == MPIWtime {
			p.Overhead = 9e-8 // PMPI wrapper on top of gettimeofday
		}
		if family == "opteron" {
			// the Catamount-era Opteron system clock shows the
			// largest post-interpolation residuals in Fig. 5c
			p.BaseDriftSigma = 40e-6
			p.WanderStep = 1.5e-9
		}
	case CycleCounter:
		p.PowerLevels = []float64{0, -1.0 / 3.0, -1.0 / 2.0}
		p.PowerDwell = 5
		p.Resolution = 1.0 / 3.0e9
		p.ReadNoise = 2e-9
		p.Overhead = 20e-9
		p.OverheadJitter = 4e-9
		p.Monotonic = true
	case GlobalHW:
		// Blue Gene/P style: every processor reads the same clock;
		// access costs more but needs no synchronization (Section II)
		p.BaseDriftSigma = 0
		p.Resolution = 1.0 / 850e6
		p.ReadNoise = 0
		p.Overhead = 100e-9
		p.OverheadJitter = 5e-9
		p.Monotonic = true
		p.PerChip = false
		p.NodeOffsetMax = 0
		p.ChipOffsetMax = 0
	default:
		panic(fmt.Sprintf("clock: PresetFor: unknown kind %v", kind))
	}
	return p
}

// NewOscillator builds an oscillator instance for this preset, drawing the
// per-instance drift parameters from rng.
func (p Preset) NewOscillator(rng *xrand.Source) *Oscillator {
	var parts []DriftProcess
	base := 0.0
	if p.BaseDriftSigma > 0 {
		base = rng.Normal(0, p.BaseDriftSigma)
	}
	if p.NTP {
		parts = append(parts, NewNTPDrift(base, rng.Sub("ntp")))
	} else if len(p.PowerLevels) > 0 {
		parts = append(parts, NewPowerManagedDrift(p.PowerLevels, p.PowerDwell, rng.Sub("power")))
	} else {
		parts = append(parts, ConstantDrift{Rate: base})
	}
	if p.WanderStep > 0 {
		parts = append(parts, NewRandomWalkDrift(0, p.WanderStep, p.WanderInterval, rng.Sub("wander")))
	}
	if len(parts) == 1 {
		return NewOscillator(parts[0])
	}
	return NewOscillator(NewCompositeDrift(parts...))
}

// NewClock builds a reader for this preset over osc with the given initial
// offset. name identifies the reader in diagnostics, rng must be private.
func (p Preset) NewClock(name string, offset float64, osc *Oscillator, rng *xrand.Source) *Clock {
	return New(Config{
		Name:           name,
		Offset:         offset,
		Resolution:     p.Resolution,
		ReadNoise:      p.ReadNoise,
		Overhead:       p.Overhead,
		OverheadJitter: p.OverheadJitter,
		JitterProb:     p.JitterProb,
		JitterMean:     p.JitterMean,
		Monotonic:      p.Monotonic,
	}, osc, rng)
}
