package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tsync/internal/topology"
)

// Summary aggregates descriptive statistics of a trace for tooling
// (cmd/tracestat) and sanity checks.
type Summary struct {
	Machine string
	Timer   string
	Procs   int
	Events  int
	// ByKind counts events per kind name.
	ByKind map[string]int
	// Regions maps region names to visit counts (Enter events).
	Regions map[string]int
	// SpanTime is the measured timestamp span (max Time - min Time).
	SpanTime float64
	// SpanTrue is the oracle time span.
	SpanTrue float64
	// Bytes is the total payload volume of Send events.
	Bytes int64
}

// Summarize computes a Summary.
func Summarize(t *Trace) Summary {
	s := Summary{
		Machine: t.Machine,
		Timer:   t.Timer,
		Procs:   len(t.Procs),
		ByKind:  map[string]int{},
		Regions: map[string]int{},
	}
	minT, maxT := 0.0, 0.0
	minTrue, maxTrue := 0.0, 0.0
	first := true
	for _, p := range t.Procs {
		for _, ev := range p.Events {
			s.Events++
			s.ByKind[ev.Kind.String()]++
			if ev.Kind == Enter {
				s.Regions[t.RegionName(ev.Region)]++
			}
			if ev.Kind == Send {
				s.Bytes += int64(ev.Bytes)
			}
			if first {
				minT, maxT = ev.Time, ev.Time
				minTrue, maxTrue = ev.True, ev.True
				first = false
				continue
			}
			if ev.Time < minT {
				minT = ev.Time
			}
			if ev.Time > maxT {
				maxT = ev.Time
			}
			if ev.True < minTrue {
				minTrue = ev.True
			}
			if ev.True > maxTrue {
				maxTrue = ev.True
			}
		}
	}
	s.SpanTime = maxT - minT
	s.SpanTrue = maxTrue - minTrue
	return s
}

// String renders the summary as aligned text.
func (s Summary) String() string {
	out := fmt.Sprintf("machine %s, timer %s: %d procs, %d events, span %.3f s (true %.3f s), %d payload bytes\n",
		s.Machine, s.Timer, s.Procs, s.Events, s.SpanTime, s.SpanTrue, s.Bytes)
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		out += fmt.Sprintf("  %-13s %d\n", k, s.ByKind[k])
	}
	regions := make([]string, 0, len(s.Regions))
	for r := range s.Regions {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	for _, r := range regions {
		out += fmt.Sprintf("  region %-20q %d visits\n", r, s.Regions[r])
	}
	return out
}

// jsonEvent is the JSON view of an Event (field names match the struct).
type jsonEvent struct {
	Kind     string  `json:"kind"`
	Time     float64 `json:"time"`
	True     float64 `json:"true"`
	Region   string  `json:"region,omitempty"`
	Instance int32   `json:"instance,omitempty"`
	Partner  int32   `json:"partner,omitempty"`
	Tag      int32   `json:"tag,omitempty"`
	Bytes    int32   `json:"bytes,omitempty"`
	Comm     int32   `json:"comm,omitempty"`
	Op       string  `json:"op,omitempty"`
	Root     int32   `json:"root,omitempty"`
}

type jsonProc struct {
	Rank   int         `json:"rank"`
	Core   string      `json:"core"`
	Clock  string      `json:"clock"`
	Events []jsonEvent `json:"events"`
}

type jsonTrace struct {
	Machine    string     `json:"machine"`
	Timer      string     `json:"timer"`
	MinLatency [4]float64 `json:"minLatency"`
	Procs      []jsonProc `json:"procs"`
}

// WriteJSON exports the trace as JSON for external tooling. The format is
// self-describing (region and op names inline) and lossy only in that
// region ids are resolved to names.
func WriteJSON(w io.Writer, t *Trace) error {
	out := jsonTrace{Machine: t.Machine, Timer: t.Timer, MinLatency: t.MinLatency}
	for _, p := range t.Procs {
		jp := jsonProc{Rank: p.Rank, Core: p.Core.String(), Clock: p.Clock}
		for _, ev := range p.Events {
			je := jsonEvent{
				Kind:     ev.Kind.String(),
				Time:     ev.Time,
				True:     ev.True,
				Instance: ev.Instance,
				Partner:  ev.Partner,
				Tag:      ev.Tag,
				Bytes:    ev.Bytes,
				Comm:     ev.Comm,
				Root:     ev.Root,
			}
			if ev.Region >= 0 {
				je.Region = t.RegionName(ev.Region)
			}
			if ev.Op != OpNone {
				je.Op = ev.Op.String()
			}
			jp.Events = append(jp.Events, je)
		}
		out.Procs = append(out.Procs, jp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// parseKindName maps an event-kind name back to its Kind.
func parseKindName(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("%w: unknown event kind %q", ErrBadFormat, s)
}

// parseCollOpName maps a collective-op name back to its CollOp.
func parseCollOpName(s string) (CollOp, error) {
	if s == "" {
		return OpNone, nil
	}
	for o, name := range collNames {
		if name == s {
			return CollOp(o), nil
		}
	}
	return 0, fmt.Errorf("%w: unknown collective op %q", ErrBadFormat, s)
}

// ReadJSON imports a trace from the WriteJSON format, so traces produced
// by external tools (or edited by hand) can enter the synchronization
// pipeline. Region names are re-interned; core ids parse from the
// "node:chip:core" form.
func ReadJSON(r io.Reader) (*Trace, error) {
	var in jsonTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("%w: json import: %v", ErrBadFormat, err)
	}
	t := &Trace{Machine: in.Machine, Timer: in.Timer, MinLatency: in.MinLatency}
	for i, jp := range in.Procs {
		if jp.Rank != i {
			return nil, fmt.Errorf("%w: json import: proc %d has rank %d", ErrBadFormat, i, jp.Rank)
		}
		var node, chip, core int
		if _, err := fmt.Sscanf(jp.Core, "%d:%d:%d", &node, &chip, &core); err != nil {
			return nil, fmt.Errorf("trace: json import: proc %d core %q: %w", i, jp.Core, err)
		}
		p := Proc{Rank: jp.Rank, Core: topology.CoreID{Node: node, Chip: chip, Core: core}, Clock: jp.Clock}
		for j, je := range jp.Events {
			kind, err := parseKindName(je.Kind)
			if err != nil {
				return nil, fmt.Errorf("trace: json import: proc %d event %d: %w", i, j, err)
			}
			op, err := parseCollOpName(je.Op)
			if err != nil {
				return nil, fmt.Errorf("trace: json import: proc %d event %d: %w", i, j, err)
			}
			region := int32(-1)
			if je.Region != "" {
				region = t.RegionID(je.Region)
			}
			p.Events = append(p.Events, Event{
				Kind:     kind,
				Time:     je.Time,
				True:     je.True,
				Region:   region,
				Instance: je.Instance,
				Partner:  je.Partner,
				Tag:      je.Tag,
				Bytes:    je.Bytes,
				Comm:     je.Comm,
				Op:       op,
				Root:     je.Root,
			})
		}
		t.Procs = append(t.Procs, p)
	}
	return t, nil
}
